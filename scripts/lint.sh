#!/usr/bin/env bash
# lint.sh — build the simlint determinism & billing-integrity analyzer
# suite (cmd/simlint) and run it over the whole module through go
# vet's -vettool protocol, exactly as CI does.
#
# Usage:
#   scripts/lint.sh              # lint the whole module
#   scripts/lint.sh ./internal/kernel/...   # lint selected packages
#
# Individual analyzers can be selected the usual vet way:
#   scripts/lint.sh -mapiter ./...
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p bin
go build -o bin/simlint ./cmd/simlint

args=("$@")
if [ ${#args[@]} -eq 0 ]; then
    args=(./...)
fi
exec go vet -vettool="$(pwd)/bin/simlint" "${args[@]}"
