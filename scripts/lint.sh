#!/usr/bin/env bash
# lint.sh — build the simlint determinism & billing-integrity analyzer
# suite (cmd/simlint) and run it over the whole module through go
# vet's -vettool protocol, exactly as CI does.
#
# Usage:
#   scripts/lint.sh              # lint the whole module
#   scripts/lint.sh ./internal/kernel/...   # lint selected packages
#
# Individual analyzers can be selected the usual vet way:
#   scripts/lint.sh -mapiter ./...
#
# SIMLINT_BIN, when set to an existing executable, is reused instead
# of rebuilding — CI builds the vettool once per job (restoring it
# from the actions cache when the sources are unchanged) and shares it
# across the vet gate and the clismoke lint smoke.
#
# On findings the script fails with a per-analyzer count summary, and
# under GitHub Actions (GITHUB_ACTIONS=true) each finding is also
# emitted as a ::error workflow annotation so it lands on the PR diff.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${SIMLINT_BIN:-bin/simlint}"
if [ -z "${SIMLINT_BIN:-}" ] || [ ! -x "$BIN" ]; then
    # Only an explicitly provided SIMLINT_BIN is trusted as current;
    # otherwise rebuild so local analyzer edits are never linted with
    # a stale binary.
    mkdir -p "$(dirname "$BIN")"
    go build -o "$BIN" ./cmd/simlint
fi

args=("$@")
if [ ${#args[@]} -eq 0 ]; then
    args=(./...)
fi

out="$(mktemp)"
trap 'rm -f "$out"' EXIT
status=0
go vet -vettool="$(pwd)/$BIN" "${args[@]}" 2>&1 | tee "$out" >&2 || status=$?

if [ "$status" -ne 0 ]; then
    # Findings print as "path/file.go:line:col: message [analyzer]";
    # anything else (package headers, build errors) passes through
    # above and is not counted.
    total=0
    analyzers=""
    while IFS= read -r line; do
        if [[ "$line" =~ ^(.+\.go):([0-9]+):([0-9]+):\ (.*)\ \[([A-Za-z0-9_-]+)\]$ ]]; then
            file="${BASH_REMATCH[1]}"
            lno="${BASH_REMATCH[2]}"
            col="${BASH_REMATCH[3]}"
            msg="${BASH_REMATCH[4]}"
            an="${BASH_REMATCH[5]}"
            total=$((total + 1))
            analyzers="$analyzers$an"$'\n'
            if [ "${GITHUB_ACTIONS:-}" = "true" ]; then
                printf '::error file=%s,line=%s,col=%s,title=simlint/%s::%s\n' \
                    "$file" "$lno" "$col" "$an" "$msg"
            fi
        fi
    done <"$out"
    if [ "$total" -gt 0 ]; then
        echo "simlint: $total finding(s):" >&2
        printf '%s' "$analyzers" | sort | uniq -c | sort -rn |
            awk '{ printf "  %-14s %d\n", $2, $1 }' >&2
    fi
fi
exit "$status"
