#!/usr/bin/env bash
# clismoke.sh — drive every meterlab command and mode with tiny
# parameters, so a flag or wiring regression surfaces in CI instead of
# at release. Output is discarded; what this gates is "every
# documented invocation still runs to completion".
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="$(mktemp -d)/meterlab"
trap 'rm -rf "$(dirname "$BIN")"' EXIT
go build -o "$BIN" ./cmd/meterlab

SCALE="${SMOKE_SCALE:-0.01}"

say() { echo "clismoke: $*" >&2; }

say "list"
"$BIN" list >/dev/null

# Every registered artifact, one by one, through the campaign engine.
for id in $("$BIN" list); do
    say "run $id"
    "$BIN" run "$id" -scale "$SCALE" >/dev/null
done

# Every workload and every attack through the meter path.
for w in O P W B; do
    say "meter $w"
    "$BIN" meter "$w" -scale "$SCALE" >/dev/null
done
for a in shell ctor subst sched thrash irqflood excflood; do
    say "meter O -attack $a"
    "$BIN" meter O -attack "$a" -scale "$SCALE" >/dev/null
done

# Cluster mode across its wire-shaping flag surface: defaults, lossy
# tuning, lossless replay, RED/ECN, EWMA RED, and both qdiscs.
say "cluster default"
"$BIN" cluster -victims O,O -pps 5000 -scale "$SCALE" >/dev/null
say "cluster lossy tuning"
"$BIN" cluster -victims O -pps 8000 -link-pps 20000 -queue-depth 32 -scale "$SCALE" >/dev/null
say "cluster lossless"
"$BIN" cluster -victims O -pps 5000 -lossless -scale "$SCALE" >/dev/null
say "cluster red"
"$BIN" cluster -victims O -pps 8000 -link-pps 20000 -red-min 8 -red-max 24 -scale "$SCALE" >/dev/null
say "cluster ewma red + drr"
"$BIN" cluster -victims O -pps 8000 -link-pps 20000 -qdisc drr -quantum-bytes 3000 \
    -red-min 8 -red-max 24 -red-weight 6 -scale "$SCALE" >/dev/null
say "cluster fifo explicit"
"$BIN" cluster -victims O -pps 8000 -link-pps 20000 -qdisc fifo -scale "$SCALE" >/dev/null

# Chaos mode across the fault-injection surface: healthy, transient
# syscall faults, a mid-flood router crash, and the full overlay with
# reboot plus a flapping egress. The command exits nonzero on any
# conservation-ledger violation, so these double as integrity gates.
say "chaos healthy"
"$BIN" chaos -pps 10000 -scale "$SCALE" >/dev/null
say "chaos transient faults"
"$BIN" chaos -pps 10000 -fault-ppm 20000 -fault-syscalls sendto,read -fault-errno eagain -scale "$SCALE" >/dev/null
say "chaos router crash"
"$BIN" chaos -pps 10000 -crash-at 0.15 -scale "$SCALE" >/dev/null
say "chaos crash+reboot+flap"
"$BIN" chaos -pps 10000 -fault-ppm 20000 -crash-at 0.15 -restart-after 0.08 \
    -flap 0.1:0.03:0.1 -scale "$SCALE" >/dev/null

# The parallel campaign engine end to end (every artifact, all cores).
say "all"
"$BIN" all -scale "$SCALE" >/dev/null

# Checkpoint round trip: snapshot writes a replay manifest, resume
# replays it, restores an independent fork, and runs the fork to
# completion; a missing manifest must fail up front.
CKPT="$(dirname "$BIN")/checkpoint.json"
say "snapshot"
"$BIN" snapshot -out "$CKPT" >/dev/null
[ -s "$CKPT" ] || { say "snapshot manifest missing or empty"; exit 1; }
say "resume"
"$BIN" resume -from "$CKPT" >/dev/null
say "resume validation"
if "$BIN" resume -from "$(dirname "$BIN")/absent.json" >/dev/null 2>&1; then
    say "resume accepted a missing manifest"; exit 1
fi

# The pprof plumbing: a profiled run must leave non-empty profiles
# behind, and an unwritable destination must fail up front.
PROFDIR="$(dirname "$BIN")"
say "meter with profiles"
"$BIN" meter O -scale "$SCALE" -cpuprofile "$PROFDIR/cpu.pb.gz" -memprofile "$PROFDIR/mem.pb.gz" >/dev/null
[ -s "$PROFDIR/cpu.pb.gz" ] || { say "cpu profile missing or empty"; exit 1; }
[ -s "$PROFDIR/mem.pb.gz" ] || { say "mem profile missing or empty"; exit 1; }
say "profile path validation"
if "$BIN" meter O -scale "$SCALE" -cpuprofile /nonexistent-dir/cpu.pb >/dev/null 2>&1; then
    say "unwritable -cpuprofile path was accepted"; exit 1
fi

# Lint smoke: the vettool must load and run clean over the CLI package
# (CI restores SIMLINT_BIN from the per-job cache; locally lint.sh
# builds it once into bin/).
say "lint smoke"
scripts/lint.sh ./cmd/... >/dev/null

say "ok"
