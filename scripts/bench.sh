#!/usr/bin/env bash
# bench.sh — run the benchmark suite and write BENCH_<n>.json with
# ns/op plus each benchmark's headline metric, seeding the repo's perf
# trajectory (BENCH_1.json, BENCH_2.json, ... across PRs).
#
# Usage:
#   scripts/bench.sh [output.json]
#   BENCHTIME=3x scripts/bench.sh      # more samples per benchmark
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_1.json}"
BENCHTIME="${BENCHTIME:-1x}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench . -benchtime "$BENCHTIME" . | tee "$RAW" >&2

awk -v benchtime="$BENCHTIME" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix if present
    iters = $2
    ns = $3
    metric_value = ""
    metric_unit = ""
    if (NF >= 6) { metric_value = $5; metric_unit = $6 }
    entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (metric_unit != "")
        entry = entry sprintf(", \"metric\": {\"unit\": \"%s\", \"value\": %s}", metric_unit, metric_value)
    entry = entry "}"
    entries[n++] = entry
}
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
END {
    print "{"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    # Seed baseline: BenchmarkMachineSteps as measured on the v0 seed
    # tree (sequential channel-handoff kernel, pre-optimization), the
    # reference the >=25% ns/op improvement target is judged against.
    print "  \"baseline\": {"
    print "    \"benchmark\": \"BenchmarkMachineSteps\","
    print "    \"ns_per_op\": 143700000,"
    print "    \"recorded\": \"seed tree, PR 1, pre-optimization\""
    print "  },"
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++)
        printf "%s%s\n", entries[i], (i < n - 1 ? "," : "")
    print "  ]"
    print "}"
}
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
