#!/usr/bin/env bash
# bench.sh — run the benchmark suite and write BENCH_<n>.json with
# ns/op plus each benchmark's headline metric, seeding the repo's perf
# trajectory (BENCH_1.json, BENCH_2.json, ... across PRs) — or, in
# --check mode, gate on that trajectory.
#
# Usage:
#   scripts/bench.sh [output.json]     # record the full suite
#   scripts/bench.sh --check           # regression gate: run the pinned
#                                      # benchmarks and fail on a >30%
#                                      # ns/op regression against the
#                                      # latest committed BENCH_<n>.json
#   BENCHTIME=3x scripts/bench.sh      # more samples per benchmark
set -euo pipefail
cd "$(dirname "$0")/.."

# The pinned gate set: the kernel hot path (both guest drivers), the
# resident-memory footprint, the heaviest cluster artifacts (the
# routed fabric, the qdisc layer, and the chaos overlay with its
# crash/restart machinery), and the checkpoint/fork campaign path.
# BenchmarkMachineSteps also matches the BenchmarkMachineStepsDriver
# flyweight/goroutine A/B pair.
PINNED='BenchmarkMachineSteps|BenchmarkResidentMachines|BenchmarkRouterFlood|BenchmarkFairFlood|BenchmarkChaosFlood|BenchmarkForkedCampaign'
MAX_REGRESSION_PCT="${MAX_REGRESSION_PCT:-30}"

if [ "${1:-}" = "--check" ]; then
    BASE="$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)"
    if [ -z "$BASE" ]; then
        echo "bench check: no committed BENCH_<n>.json baseline found" >&2
        exit 1
    fi
    echo "bench check: comparing against $BASE (fail at >${MAX_REGRESSION_PCT}% ns/op regression)" >&2
    # ns/op is hardware-relative: flag when the baseline was recorded
    # on a different CPU so a cross-machine miss is diagnosable (raise
    # MAX_REGRESSION_PCT rather than trusting absolute numbers there).
    BASE_CPU="$(sed -n 's/.*"cpu": "\(.*\)",/\1/p' "$BASE" | head -1)"
    HOST_CPU="$(sed -n 's/^model name[[:space:]]*: //p' /proc/cpuinfo 2>/dev/null | head -1 || true)"
    if [ -n "$BASE_CPU" ] && [ -n "$HOST_CPU" ] && [ "$BASE_CPU" != "$HOST_CPU" ]; then
        echo "bench check: WARNING baseline cpu is \"$BASE_CPU\" but this host is \"$HOST_CPU\" — ns/op deltas include hardware skew" >&2
    fi
    RAW="$(mktemp)"
    trap 'rm -f "$RAW"' EXIT
    go test -run '^$' -bench "$PINNED" -benchtime "${BENCHTIME:-3x}" . | tee "$RAW" >&2
    awk -v base="$BASE" -v limit="$MAX_REGRESSION_PCT" '
    BEGIN {
        # Harvest baseline ns/op per benchmark from the committed JSON
        # (portable awk: quote-split for the name, sub() for the value).
        while ((getline line < base) > 0) {
            if (line !~ /"name": "Benchmark/ || line !~ /"ns_per_op": /)
                continue
            split(line, q, "\"")
            name = q[4]
            val = line
            sub(/.*"ns_per_op": /, "", val)
            sub(/[,}].*/, "", val)
            ref[name] = val + 0
        }
        close(base)
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = $3 + 0
        if (!(name in ref)) {
            printf "  %-28s %12.0f ns/op  (no baseline in %s — skipped)\n", name, ns, base
            next
        }
        pct = (ns / ref[name] - 1) * 100
        verdict = "ok"
        if (pct > limit) { verdict = "REGRESSION"; failed = 1 }
        printf "  %-28s %12.0f ns/op  vs %12.0f  (%+6.1f%%)  %s\n", name, ns, ref[name], pct, verdict
        checked++
    }
    END {
        if (checked == 0) { print "bench check: no pinned benchmarks ran"; exit 1 }
        if (failed) { printf "bench check: ns/op regressed more than %s%% against %s\n", limit, base; exit 1 }
        print "bench check: within budget"
    }
    ' "$RAW"
    exit $?
fi

OUT="${1:-BENCH_1.json}"
BENCHTIME="${BENCHTIME:-1x}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench . -benchtime "$BENCHTIME" . | tee "$RAW" >&2

awk -v benchtime="$BENCHTIME" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix if present
    iters = $2
    ns = $3
    metric_value = ""
    metric_unit = ""
    if (NF >= 6) { metric_value = $5; metric_unit = $6 }
    entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (metric_unit != "")
        entry = entry sprintf(", \"metric\": {\"unit\": \"%s\", \"value\": %s}", metric_unit, metric_value)
    entry = entry "}"
    entries[n++] = entry
}
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
END {
    print "{"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    # Seed baseline: BenchmarkMachineSteps as measured on the v0 seed
    # tree (sequential channel-handoff kernel, pre-optimization), the
    # reference the >=25% ns/op improvement target is judged against.
    print "  \"baseline\": {"
    print "    \"benchmark\": \"BenchmarkMachineSteps\","
    print "    \"ns_per_op\": 143700000,"
    print "    \"recorded\": \"seed tree, PR 1, pre-optimization\""
    print "  },"
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++)
        printf "%s%s\n", entries[i], (i < n - 1 ? "," : "")
    print "  ]"
    print "}"
}
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
