package cpumeter

import (
	"strings"
	"testing"
)

func TestWorkloadKeys(t *testing.T) {
	keys := WorkloadKeys()
	if len(keys) != 4 || keys[0] != "O" || keys[3] != "B" {
		t.Fatalf("WorkloadKeys = %v", keys)
	}
}

func TestExperimentsListedAndUnknownRejected(t *testing.T) {
	ids := Experiments()
	if len(ids) != 20 {
		t.Fatalf("Experiments() = %d ids: %v", len(ids), ids)
	}
	for _, want := range []string{"figure4", "figure11", "comparison", "mitigation", "ablation1", "cluster", "multiflood", "swapflood", "routerflood", "fairflood", "chaosflood"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, err := Reproduce("figure99", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAllAttacksDefaults(t *testing.T) {
	if got := len(AllAttacks(0)); got != 7 {
		t.Fatalf("AllAttacks = %d, want 7", got)
	}
}

func TestMeterEndToEnd(t *testing.T) {
	out, err := Meter(JobSpec{Workload: "O", Options: Options{Scale: 0.005}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Done {
		t.Fatal("job incomplete")
	}
	if out.Victim.Total("tsc") <= 0 {
		t.Fatal("no metered time")
	}
}

func TestMeterUnknownWorkload(t *testing.T) {
	if _, err := Meter(JobSpec{Workload: "Z"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestBuildReportAndAuditRoundTrip(t *testing.T) {
	opts := Options{Scale: 0.01}
	ref, err := Meter(JobSpec{Workload: "O", Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildReport(ref, LegacyScheme, "aik", "n1")
	if err != nil {
		t.Fatal(err)
	}
	aud := &Auditor{
		Manifest: ManifestFromReference(ref),
		AIKSeed:  "aik",
		Nonce:    "n1",
	}
	v := aud.Audit(rep)
	if !v.Trustworthy {
		t.Fatalf("honest run rejected: %v", v.Violations())
	}

	// A shell-attacked run must be rejected by the same auditor.
	attacked, err := Meter(JobSpec{Workload: "O", Attack: AllAttacks(opts.Freq)[0], Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	badRep, err := BuildReport(attacked, LegacyScheme, "aik", "n1")
	if err != nil {
		t.Fatal(err)
	}
	bv := aud.Audit(badRep)
	if bv.Trustworthy {
		t.Fatal("shell-attacked run accepted")
	}
}

func TestBuildReportWithoutJob(t *testing.T) {
	if _, err := BuildReport(&RunOut{}, LegacyScheme, "a", "n"); err == nil {
		t.Fatal("report without job accepted")
	}
}

func TestReproduceSmallFigure(t *testing.T) {
	fig, err := Reproduce("figure4", Options{Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Bars) != 8 {
		t.Fatalf("figure4 bars = %d, want 8 (4 programs x normal/attack)", len(fig.Bars))
	}
	text := fig.Render()
	for _, want := range []string{"Figure 4", "Shell Attack", "user", "note:"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// The attack bars must exceed their baselines for every program.
	for i := 0; i+1 < len(fig.Bars); i += 2 {
		if fig.Bars[i+1].Total() <= fig.Bars[i].Total() {
			t.Errorf("group %s: attack %f <= normal %f",
				fig.Bars[i].Group, fig.Bars[i+1].Total(), fig.Bars[i].Total())
		}
	}
}
