package textplot

import (
	"strings"
	"testing"
)

func TestRenderBarsBasic(t *testing.T) {
	bars := []Bar{
		{Group: "O", Label: "normal", Segments: []Segment{{"user", 50}, {"sys", 1}}},
		{Group: "O", Label: "attack", Segments: []Segment{{"user", 84}, {"sys", 1}}},
		{Group: "P", Label: "normal", Segments: []Segment{{"user", 110}, {"sys", 0.5}}},
	}
	out := RenderBars("Figure 4: Shell Attack", "seconds", bars, 40)
	if !strings.Contains(out, "Figure 4") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "user=84.0") || !strings.Contains(out, "total 85.0") {
		t.Fatalf("values missing:\n%s", out)
	}
	// Group label printed once per group.
	if strings.Count(out, "\n  O ") != 1 {
		t.Fatalf("group dedup failed:\n%s", out)
	}
	// Widest bar should reach close to the width budget.
	if !strings.Contains(out, strings.Repeat("█", 35)) {
		t.Fatalf("bar scaling off:\n%s", out)
	}
}

func TestRenderBarsEdgeCases(t *testing.T) {
	if out := RenderBars("t", "s", nil, 0); !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart: %q", out)
	}
	// All-zero bars must not divide by zero.
	out := RenderBars("t", "s", []Bar{{Group: "g", Label: "l", Segments: []Segment{{"user", 0}}}}, 10)
	if !strings.Contains(out, "total 0.0") {
		t.Fatalf("zero bar: %q", out)
	}
	// Tiny non-zero values still render one glyph.
	out = RenderBars("t", "s", []Bar{
		{Group: "g", Label: "big", Segments: []Segment{{"user", 100}}},
		{Group: "g", Label: "tiny", Segments: []Segment{{"user", 0.01}}},
	}, 10)
	lines := strings.Split(out, "\n")
	var tinyLine string
	for _, l := range lines {
		if strings.Contains(l, "tiny") {
			tinyLine = l
		}
	}
	if !strings.Contains(tinyLine, "█") {
		t.Fatalf("tiny bar invisible: %q", tinyLine)
	}
}

func TestBarTotal(t *testing.T) {
	b := Bar{Segments: []Segment{{"a", 1.5}, {"b", 2.5}}}
	if b.Total() != 4.0 {
		t.Fatalf("Total = %v", b.Total())
	}
}

func TestTable(t *testing.T) {
	out := Table("Comparison", []string{"attack", "strength"}, [][]string{
		{"shell", "unbounded"},
		{"interrupt flooding", "weak"},
	})
	if !strings.Contains(out, "Comparison") || !strings.Contains(out, "interrupt flooding") {
		t.Fatalf("table content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table lines = %d, want 5 (title+header+rule+2 rows)", len(lines))
	}
	// Header and rows aligned: rule line as wide as header line.
	if len(lines[2]) < len(lines[1]) {
		t.Fatalf("rule narrower than header:\n%s", out)
	}
}

func TestTableRowWiderThanHeader(t *testing.T) {
	out := Table("", []string{"a"}, [][]string{{"longvalue", "extra"}})
	if !strings.Contains(out, "longvalue") || !strings.Contains(out, "extra") {
		t.Fatalf("overflow cells lost:\n%s", out)
	}
}
