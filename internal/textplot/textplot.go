// Package textplot renders the experiment figures as plain-text
// grouped bar charts and tables, standing in for the paper's matlab
// plots. Bars are horizontal, stacked by segment (user time then
// system time), and scaled to the widest bar.
package textplot

import (
	"fmt"
	"strings"
)

// Segment is one stacked component of a bar (e.g. user vs system).
type Segment struct {
	Name  string
	Value float64
}

// Bar is one horizontal bar: a group (the x-axis position, e.g. the
// program or the nice value) and a label within the group (e.g.
// "normal" vs "attack").
type Bar struct {
	Group    string
	Label    string
	Segments []Segment
}

// Total returns the bar's stacked sum.
func (b Bar) Total() float64 {
	var t float64
	for _, s := range b.Segments {
		t += s.Value
	}
	return t
}

// segmentGlyphs cycles per segment index: user time renders solid,
// system time light, further segments hatched.
var segmentGlyphs = []rune{'█', '░', '▒', '▓'}

// RenderBars draws a grouped, stacked horizontal bar chart. width is
// the maximum bar width in runes (default 50 when <= 0).
func RenderBars(title, unit string, bars []Bar, width int) string {
	if width <= 0 {
		width = 50
	}
	var max float64
	groupW, labelW := len("group"), 0
	for _, b := range bars {
		if t := b.Total(); t > max {
			max = t
		}
		if len(b.Group) > groupW {
			groupW = len(b.Group)
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	if len(bars) == 0 {
		sb.WriteString("  (no data)\n")
		return sb.String()
	}
	if max <= 0 {
		max = 1
	}
	legend := make([]string, 0, 4)
	seen := map[string]bool{}
	for _, b := range bars {
		for i, s := range b.Segments {
			if !seen[s.Name] {
				seen[s.Name] = true
				legend = append(legend, fmt.Sprintf("%c %s", glyph(i), s.Name))
			}
		}
	}
	fmt.Fprintf(&sb, "  [%s]  %s\n", unit, strings.Join(legend, "  "))

	prevGroup := ""
	for _, b := range bars {
		group := b.Group
		if group == prevGroup {
			group = ""
		} else {
			prevGroup = b.Group
		}
		var bar strings.Builder
		for i, s := range b.Segments {
			n := int(s.Value / max * float64(width))
			if s.Value > 0 && n == 0 {
				n = 1
			}
			bar.WriteString(strings.Repeat(string(glyph(i)), n))
		}
		parts := make([]string, len(b.Segments))
		for i, s := range b.Segments {
			parts[i] = fmt.Sprintf("%s=%.1f", s.Name, s.Value)
		}
		fmt.Fprintf(&sb, "  %-*s %-*s |%-*s| %s (total %.1f)\n",
			groupW, group, labelW, b.Label, width, bar.String(),
			strings.Join(parts, " "), b.Total())
	}
	return sb.String()
}

func glyph(i int) rune {
	return segmentGlyphs[i%len(segmentGlyphs)]
}

// Table renders rows with aligned columns and a header rule.
func Table(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	line := func(cells []string) {
		sb.WriteString("  ")
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
			if i != len(cells)-1 {
				sb.WriteString("  ")
			}
		}
		sb.WriteString("\n")
	}
	line(header)
	rule := make([]string, len(header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range rows {
		line(row)
	}
	return sb.String()
}
