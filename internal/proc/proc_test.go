package proc

import (
	"testing"
	"testing/quick"
)

func TestTablePIDsMonotonic(t *testing.T) {
	tbl := NewTable()
	a := tbl.Create("init", nil)
	b := tbl.Create("shell", a)
	c := tbl.Create("job", b)
	if a.PID != 1 || b.PID != 2 || c.PID != 3 {
		t.Fatalf("pids = %d,%d,%d want 1,2,3", a.PID, b.PID, c.PID)
	}
	if got, _ := tbl.Get(2); got != b {
		t.Fatal("Get(2) != shell")
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tbl.Len())
	}
}

func TestParentChildLinkage(t *testing.T) {
	tbl := NewTable()
	parent := tbl.Create("parent", nil)
	child := tbl.Create("child", parent)
	if child.Parent != parent {
		t.Fatal("child parent not set")
	}
	if len(parent.Children) != 1 || parent.Children[0] != child {
		t.Fatal("parent children not updated")
	}
}

func TestEnvInheritanceIsCopied(t *testing.T) {
	tbl := NewTable()
	parent := tbl.Create("shell", nil)
	parent.Env["LD_PRELOAD"] = "/tmp/evil.so"
	child := tbl.Create("job", parent)
	if child.Env["LD_PRELOAD"] != "/tmp/evil.so" {
		t.Fatal("env not inherited")
	}
	child.Env["LD_PRELOAD"] = "other"
	if parent.Env["LD_PRELOAD"] != "/tmp/evil.so" {
		t.Fatal("child env mutation leaked to parent")
	}
}

func TestNiceClamping(t *testing.T) {
	p := New(1, "p", nil)
	p.SetNice(-100)
	if p.Nice() != MinNice {
		t.Fatalf("nice = %d, want %d", p.Nice(), MinNice)
	}
	p.SetNice(100)
	if p.Nice() != MaxNice {
		t.Fatalf("nice = %d, want %d", p.Nice(), MaxNice)
	}
	p.SetNice(-5)
	if p.Nice() != -5 {
		t.Fatalf("nice = %d, want -5", p.Nice())
	}
}

func TestSignalFIFO(t *testing.T) {
	p := New(1, "p", nil)
	p.PushSignal(SIGSTOP)
	p.PushSignal(SIGCONT)
	s1, ok1 := p.PopSignal()
	s2, ok2 := p.PopSignal()
	_, ok3 := p.PopSignal()
	if !ok1 || !ok2 || ok3 {
		t.Fatal("pop availability wrong")
	}
	if s1 != SIGSTOP || s2 != SIGCONT {
		t.Fatalf("order = %v,%v want STOP,CONT", s1, s2)
	}
}

func TestDebugRegsMatch(t *testing.T) {
	d := DebugRegs{DR0: 0x1000, DR7: 1}
	if !d.Matches(0x1000, false) || !d.Matches(0x1000, true) {
		t.Fatal("any-access watchpoint missed")
	}
	if d.Matches(0x2000, false) {
		t.Fatal("matched wrong address")
	}
	d.OnWrite = true
	if d.Matches(0x1000, false) {
		t.Fatal("write-only watchpoint fired on read")
	}
	if !d.Matches(0x1000, true) {
		t.Fatal("write-only watchpoint missed write")
	}
	d.DR7 = 0
	if d.Matches(0x1000, true) {
		t.Fatal("disabled watchpoint fired")
	}
}

func TestStateAndLifecyclePredicates(t *testing.T) {
	p := New(1, "p", nil)
	if p.State != Embryo || p.Runnable() || !p.Alive() {
		t.Fatal("embryo predicates wrong")
	}
	p.State = Ready
	if !p.Runnable() {
		t.Fatal("ready not runnable")
	}
	p.State = Zombie
	if p.Alive() {
		t.Fatal("zombie reported alive")
	}
}

func TestThreadIdentity(t *testing.T) {
	tbl := NewTable()
	leader := tbl.Create("brute", nil)
	th := tbl.Create("brute-worker", leader)
	th.TGID = leader.PID
	if leader.IsThread() {
		t.Fatal("leader reported as thread")
	}
	if !th.IsThread() {
		t.Fatal("worker not reported as thread")
	}
}

func TestTableRemove(t *testing.T) {
	tbl := NewTable()
	a := tbl.Create("a", nil)
	b := tbl.Create("b", nil)
	tbl.Remove(a.PID)
	if _, ok := tbl.Get(a.PID); ok {
		t.Fatal("removed task still present")
	}
	all := tbl.All()
	if len(all) != 1 || all[0] != b {
		t.Fatalf("All after remove = %v", all)
	}
	tbl.Remove(999) // no-op
}

func TestStateStrings(t *testing.T) {
	states := map[State]string{
		Embryo: "embryo", Ready: "ready", Running: "running",
		Blocked: "blocked", Stopped: "stopped", Zombie: "zombie",
		Reaped: "reaped", State(0): "invalid",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Errorf("State(%d) = %q want %q", int(s), got, want)
		}
	}
	if SIGSTOP.String() != "SIGSTOP" || Signal(40).String() != "SIG(40)" {
		t.Error("signal strings wrong")
	}
}

func TestPIDUniquenessProperty(t *testing.T) {
	f := func(n uint8) bool {
		tbl := NewTable()
		seen := map[PID]bool{}
		for i := 0; i < int(n); i++ {
			p := tbl.Create("p", nil)
			if seen[p.PID] {
				return false
			}
			seen[p.PID] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
