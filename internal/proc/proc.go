// Package proc defines the simulated process control block: identity,
// the process state machine, the parent/child tree, nice values,
// pending signals, and ptrace linkage. Scheduling policy lives in
// package sched and accounting in package metering; both attach their
// own per-task data to the PCB via opaque slots so neither package
// needs to know the other's types.
package proc

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// PID is a process identifier. As in Linux 2.6, threads are tasks
// with their own PID sharing an address space; the thread-group id
// (TGID) identifies the containing "process" for billing.
type PID int

// State is the task state machine. It mirrors the subset of Linux
// task states the attacks manipulate.
type State int

const (
	// Embryo: created by fork but never scheduled yet.
	Embryo State = iota + 1
	// Ready: runnable, waiting in a runqueue.
	Ready
	// Running: currently on the CPU.
	Running
	// Blocked: sleeping on I/O, a wait(), or another event.
	Blocked
	// Stopped: stopped by SIGSTOP or a ptrace trap; runnable again
	// only after SIGCONT / PTRACE_CONT.
	Stopped
	// Zombie: exited, waiting for the parent to reap it.
	Zombie
	// Reaped: fully gone.
	Reaped
)

func (s State) String() string {
	switch s {
	case Embryo:
		return "embryo"
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Stopped:
		return "stopped"
	case Zombie:
		return "zombie"
	case Reaped:
		return "reaped"
	default:
		return "invalid"
	}
}

// Signal numbers used by the simulation.
type Signal int

const (
	SIGCHLD Signal = 17
	SIGCONT Signal = 18
	SIGSTOP Signal = 19
	SIGTRAP Signal = 5
	SIGKILL Signal = 9
	SIGSEGV Signal = 11
)

func (s Signal) String() string {
	switch s {
	case SIGCHLD:
		return "SIGCHLD"
	case SIGCONT:
		return "SIGCONT"
	case SIGSTOP:
		return "SIGSTOP"
	case SIGTRAP:
		return "SIGTRAP"
	case SIGKILL:
		return "SIGKILL"
	case SIGSEGV:
		return "SIGSEGV"
	default:
		return fmt.Sprintf("SIG(%d)", int(s))
	}
}

// MinNice and MaxNice bound the nice range (Linux convention:
// -20 is the highest priority, 19 the lowest).
const (
	MinNice = -20
	MaxNice = 19
)

// DebugRegs models the x86 debug registers the thrashing attack
// programs through ptrace: DR0 holds a linear address and DR7 the
// enable/condition bits. We model a single enabled watchpoint.
type DebugRegs struct {
	DR0     uint64 // watched linear address
	DR7     uint64 // non-zero enables the watchpoint
	OnWrite bool   // condition: break on write (else on any access)
}

// Enabled reports whether the watchpoint is armed.
func (d DebugRegs) Enabled() bool { return d.DR7 != 0 }

// Matches reports whether an access at addr (write flag w) triggers
// the watchpoint. Real hardware compares within the watched span; the
// simulation watches a page-granularity address already, so equality
// suffices.
func (d DebugRegs) Matches(addr uint64, write bool) bool {
	if !d.Enabled() || d.DR0 != addr {
		return false
	}
	if d.OnWrite && !write {
		return false
	}
	return true
}

// Proc is the simulated task_struct.
type Proc struct {
	PID  PID
	TGID PID // equal to PID for a process leader; leader's PID for threads
	Name string

	Parent   *Proc
	Children []*Proc

	State    State
	ExitCode int
	nice     int

	// Space is the task's address space. Threads share the leader's.
	Space *mem.Space

	// Pending is the FIFO of undelivered signals.
	Pending []Signal

	// Ptrace linkage: Tracer is the attached tracing task; debug
	// registers belong to the tracee and are programmed by the
	// tracer via POKEUSER.
	Tracer *Proc
	Debug  DebugRegs

	// SchedData and AcctData are opaque per-task slots owned by the
	// scheduler and the accounting layer respectively.
	SchedData any
	AcctData  any

	// Env is the per-process environment. The library attacks use
	// LD_PRELOAD exactly as the paper does.
	Env map[string]string

	// KernelStack marks that the task is currently executing in
	// kernel context (syscall or fault service) for accounting.
	InKernel bool
}

// New creates a task in the Embryo state.
func New(pid PID, name string, parent *Proc) *Proc {
	p := &Proc{
		PID:   pid,
		TGID:  pid,
		Name:  name,
		State: Embryo,
		Env:   map[string]string{},
	}
	if parent != nil {
		p.Parent = parent
		parent.Children = append(parent.Children, p)
		// Children inherit the parent's environment (copied, so a
		// per-victim LD_PRELOAD does not leak to siblings).
		for k, v := range parent.Env {
			p.Env[k] = v
		}
	}
	return p
}

// IsThread reports whether the task is a non-leader thread.
func (p *Proc) IsThread() bool { return p.TGID != p.PID }

// Nice returns the task's nice value.
func (p *Proc) Nice() int { return p.nice }

// SetNice clamps and stores the nice value.
func (p *Proc) SetNice(n int) {
	if n < MinNice {
		n = MinNice
	}
	if n > MaxNice {
		n = MaxNice
	}
	p.nice = n
}

// Runnable reports whether the scheduler may pick this task.
func (p *Proc) Runnable() bool { return p.State == Ready }

// Alive reports whether the task has not yet exited.
func (p *Proc) Alive() bool {
	return p.State != Zombie && p.State != Reaped
}

// PushSignal queues a signal for delivery.
func (p *Proc) PushSignal(s Signal) { p.Pending = append(p.Pending, s) }

// PopSignal dequeues the oldest pending signal.
func (p *Proc) PopSignal() (Signal, bool) {
	if len(p.Pending) == 0 {
		return 0, false
	}
	s := p.Pending[0]
	p.Pending = p.Pending[1:]
	return s, true
}

// String implements fmt.Stringer for diagnostics.
func (p *Proc) String() string {
	return fmt.Sprintf("%s[%d]", p.Name, p.PID)
}

// RemoveChild unlinks a reaped child from this task's Children list.
// Keeping the list pruned bounds wait-scan cost under fork storms.
func (p *Proc) RemoveChild(c *Proc) {
	for i, q := range p.Children {
		if q == c {
			p.Children = append(p.Children[:i:i], p.Children[i+1:]...)
			return
		}
	}
}

// Table allocates PIDs and tracks live tasks.
type Table struct {
	next  PID
	tasks map[PID]*Proc
}

// NewTable returns an empty table; PIDs start at 1 (init).
func NewTable() *Table {
	return &Table{next: 1, tasks: make(map[PID]*Proc)}
}

// Create allocates the next PID and registers a new task.
func (t *Table) Create(name string, parent *Proc) *Proc {
	p := New(t.next, name, parent)
	t.tasks[p.PID] = p
	t.next++
	return p
}

// Get looks up a task by PID.
func (t *Table) Get(pid PID) (*Proc, bool) {
	p, ok := t.tasks[pid]
	return p, ok
}

// All returns registered tasks in ascending PID order (a copy).
func (t *Table) All() []*Proc {
	out := make([]*Proc, 0, len(t.tasks))
	for _, p := range t.tasks {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// Len reports the number of registered tasks.
func (t *Table) Len() int { return len(t.tasks) }

// Remove forgets a reaped task.
func (t *Table) Remove(pid PID) {
	delete(t.tasks, pid)
}

// Clone returns an independent deep copy of the table and every
// registered task, plus the old→new task mapping so callers can
// re-point their own references (scheduler queues, ptrace links,
// address spaces). SchedData/AcctData slots are copied by reference
// value only when nil; non-nil slots are left nil for their owning
// subsystem's clone to rebuild, since proc cannot deep-copy opaque
// state.
func (t *Table) Clone() (*Table, map[*Proc]*Proc) {
	ct := &Table{next: t.next, tasks: make(map[PID]*Proc, len(t.tasks))}
	pmap := make(map[*Proc]*Proc, len(t.tasks))
	//simlint:unordered-ok deep copy into a map keyed identically; linkage below resolves via pmap, not iteration order
	for pid, p := range t.tasks {
		cp := &Proc{
			PID:      p.PID,
			TGID:     p.TGID,
			Name:     p.Name,
			State:    p.State,
			ExitCode: p.ExitCode,
			nice:     p.nice,
			Debug:    p.Debug,
			InKernel: p.InKernel,
		}
		if p.Pending != nil {
			cp.Pending = append([]Signal(nil), p.Pending...)
		}
		if p.Env != nil {
			cp.Env = make(map[string]string, len(p.Env))
			//simlint:unordered-ok deep copy into a map keyed identically
			for k, v := range p.Env {
				cp.Env[k] = v
			}
		}
		ct.tasks[pid] = cp
		pmap[p] = cp
	}
	// Second pass: re-link the tree and ptrace edges through the
	// mapping. A parent/tracer outside the table (already reaped and
	// removed) keeps pointing at the old object only if unmapped —
	// preserve it as-is so diagnostics stay truthful.
	//simlint:unordered-ok linkage pass; each task's edges are rewritten independently of visit order
	for p, cp := range pmap {
		if p.Parent != nil {
			if np, ok := pmap[p.Parent]; ok {
				cp.Parent = np
			} else {
				cp.Parent = p.Parent
			}
		}
		if p.Tracer != nil {
			if np, ok := pmap[p.Tracer]; ok {
				cp.Tracer = np
			} else {
				cp.Tracer = p.Tracer
			}
		}
		if len(p.Children) > 0 {
			cp.Children = make([]*Proc, len(p.Children))
			for i, c := range p.Children {
				if nc, ok := pmap[c]; ok {
					cp.Children[i] = nc
				} else {
					cp.Children[i] = c
				}
			}
		}
	}
	return ct, pmap
}
