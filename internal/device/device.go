// Package device models the interrupt-raising hardware the attacks
// exploit: a network adapter whose receive interrupts fire per packet
// (interrupt flooding, Fig. 10) and a swap disk whose completion
// latency blocks faulting processes (exception flooding, Fig. 11).
// Devices know nothing about processes; they schedule deliveries on
// the machine's event queue and invoke a sink callback supplied by
// the kernel, which charges handler time per the active accountant.
package device

import (
	"repro/internal/sim"
)

// IRQ identifies an interrupt line.
type IRQ int

// Interrupt lines in the simulated machine.
const (
	IRQTimer IRQ = 0
	IRQNIC   IRQ = 1
	IRQDisk  IRQ = 2
)

func (i IRQ) String() string {
	switch i {
	case IRQTimer:
		return "timer"
	case IRQNIC:
		return "nic"
	case IRQDisk:
		return "disk"
	default:
		return "unknown"
	}
}

// Addr is a fabric address: the network-visible identity of one
// machine's NIC. Zero means "unaddressed" (a solo machine outside any
// fabric); a cluster assigns each member a nonzero address.
type Addr uint16

// Frame is one addressed network frame. Frames are plain values —
// they travel by copy through pipes, NIC queues, and the kernel's
// receive buffer, so carrying them allocates nothing.
type Frame struct {
	// Src and Dst are fabric addresses. The kernel's send path stamps
	// Src with the sending NIC's own address; a forwarding router
	// retransmits frames with Src preserved, which is what lets a
	// receiver ack the original sender through intermediate hops.
	Src, Dst Addr
	// Flow distinguishes traffic classes sharing a path (a responder
	// acks its flow's data frames and drains everything else).
	Flow uint32
	// Bytes is the frame's payload size; zero means a minimum-size
	// frame (WireBytes clamps it to MinFrameBytes). Wires serialise
	// byte-accurately: a frame's service time scales with its wire
	// occupancy, so zero-Bytes frames replay the per-frame slot model
	// bit-for-bit.
	Bytes uint32
	// ECN marks the frame ECN-capable: a RED queue under congestion
	// marks it (sets CE) instead of early-dropping it.
	ECN bool
	// CE is the congestion-experienced mark, set by a RED queue on an
	// ECN-capable frame. A responder echoes the mark in its ack so
	// the sender can back off.
	CE bool
	// ECE is the congestion echo a responder sets on its ack when the
	// data frame it acknowledges carried CE. It is distinct from CE:
	// a RED queue on the ack's own return path may stamp the ack with
	// a fresh CE, which the sender ignores — only the echo of the
	// data path's congestion drives backoff.
	ECE bool
}

// NIC is the simulated network adapter. When flooding is active it
// raises one receive interrupt per arriving packet. The paper floods
// the victim host with junk IP packets from a second PC; Rate models
// that sender's packet rate.
type NIC struct {
	queue   *sim.EventQueue
	clock   *sim.Clock
	rng     *sim.Rand
	deliver func() // kernel's IRQ entry for IRQNIC

	rate     uint64 // packets per second
	rateFrac uint64 // Freq%rate accumulator carried across packets
	jitter   bool
	active   bool
	pending  *sim.Event
	received uint64
	rxFire   func() // reusable per-packet event callback
	extFire  func() // reusable callback for externally injected packets

	// Addressed receive path: injected frames wait in a min-heap
	// ordered exactly like their delivery events, so frameFire pops
	// the frame belonging to the event that is firing. lastFrame
	// holds that frame for the kernel's rx handler to collect.
	frameFire func()
	frameQ    []pendingFrame
	frameSeq  uint64
	lastFrame Frame
	hasFrame  bool

	// Transmit path: routes are the wires this NIC can push frames
	// onto (a cluster registers one per outgoing link direction); each
	// reports whether the frame was carried or dropped downstream.
	// table maps destination fabric addresses to route indices, so
	// transmits are resolved by address instead of hard-wired route.
	addr      Addr
	table     map[Addr]int
	routes    []func(Frame) bool
	txCarried uint64
	txDropped uint64
}

// pendingFrame is one injected frame awaiting its delivery event.
type pendingFrame struct {
	at  sim.Cycles
	seq uint64
	f   Frame
}

// Restore tags for "nic-rx" events (sim.Event.Tag): which of the
// NIC's three reusable fire callbacks a pending delivery uses, so a
// checkpoint restore can rebuild the Fire closure from the tag alone.
const (
	nicRxFlood uint64 = 1 // rxFire: the local flood generator's next packet
	nicRxExt   uint64 = 2 // extFire: an injected payload-less packet
	nicRxFrame uint64 = 3 // frameFire: an injected addressed frame
)

// NewNIC wires a NIC to the machine's event queue and clock. deliver
// is invoked once per received packet in event context.
func NewNIC(queue *sim.EventQueue, clock *sim.Clock, rng *sim.Rand, deliver func()) *NIC {
	n := &NIC{queue: queue, clock: clock, rng: rng, deliver: deliver}
	n.rxFire = func() {
		n.pending = nil
		if !n.active {
			return
		}
		n.received++
		n.deliver()
		if n.active {
			n.scheduleNext()
		}
	}
	n.extFire = func() {
		n.received++
		n.deliver()
	}
	n.frameFire = func() {
		n.lastFrame = n.popFrame()
		n.hasFrame = true
		n.received++
		n.deliver()
		n.hasFrame = false
	}
	return n
}

// InjectRx schedules delivery of one externally generated packet with
// no frame payload (a remote-swap request notification) at virtual
// time at. Injected packets are independent events — each raises one
// receive interrupt — and are unaffected by StartFlood/StopFlood,
// which drive the local flood generator only.
func (n *NIC) InjectRx(at sim.Cycles) {
	n.queue.ScheduleTagged(at, "nic-rx", nicRxExt, n.extFire)
}

// InjectRxFrame schedules delivery of one addressed frame (arriving
// over a cluster link) at virtual time at. The frame raises one
// receive interrupt and is handed to the kernel's receive buffer,
// where guests read it via NetRecv.
func (n *NIC) InjectRxFrame(at sim.Cycles, f Frame) {
	n.pushFrame(pendingFrame{at: at, seq: n.frameSeq, f: f})
	n.frameSeq++
	n.queue.ScheduleTagged(at, "nic-rx", nicRxFrame, n.frameFire)
}

// TakeRxFrame returns the frame belonging to the receive interrupt
// currently being delivered, if any (local flood packets and
// payload-less injections carry none). The kernel's rx handler calls
// it exactly once per delivery.
func (n *NIC) TakeRxFrame() (Frame, bool) {
	if !n.hasFrame {
		return Frame{}, false
	}
	n.hasFrame = false
	return n.lastFrame, true
}

// pushFrame/popFrame maintain the pending-frame min-heap ordered by
// (arrival time, injection order) — the same order the event queue
// fires equal-time events in, so each frameFire pops its own frame.
func (n *NIC) pushFrame(p pendingFrame) {
	n.frameQ = append(n.frameQ, p)
	i := len(n.frameQ) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !frameLess(n.frameQ[i], n.frameQ[parent]) {
			break
		}
		n.frameQ[i], n.frameQ[parent] = n.frameQ[parent], n.frameQ[i]
		i = parent
	}
}

func (n *NIC) popFrame() Frame {
	top := n.frameQ[0].f
	last := len(n.frameQ) - 1
	n.frameQ[0] = n.frameQ[last]
	n.frameQ[last] = pendingFrame{}
	n.frameQ = n.frameQ[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && frameLess(n.frameQ[l], n.frameQ[small]) {
			small = l
		}
		if r < last && frameLess(n.frameQ[r], n.frameQ[small]) {
			small = r
		}
		if small == i {
			break
		}
		n.frameQ[i], n.frameQ[small] = n.frameQ[small], n.frameQ[i]
		i = small
	}
	return top
}

func frameLess(a, b pendingFrame) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Received reports total packets delivered since construction.
func (n *NIC) Received() uint64 { return n.received }

// Now reads this NIC's machine clock. An egress pipe whose service
// timer lives on this machine samples it when the timer fires.
func (n *NIC) Now() sim.Cycles { return n.clock.Now() }

// ScheduleEgress schedules fn at virtual time at on this NIC's
// machine event queue: the service timer a queueing-discipline pipe
// arms so backlogged frames still drain after the last sender goes
// quiet. The event counts as pending non-timer work, so a cluster
// does not mistake a machine waiting on queued frames for a stall.
func (n *NIC) ScheduleEgress(at sim.Cycles, fn func()) {
	n.queue.Schedule(at, "pipe-service", fn)
}

// ScheduleEgressTagged is ScheduleEgress with a caller-chosen restore
// tag (a cluster passes the pipe's id, so a checkpoint restore can
// rebuild the service timer's Fire closure from the event image).
func (n *NIC) ScheduleEgressTagged(at sim.Cycles, tag uint64, fn func()) {
	n.queue.ScheduleTagged(at, "pipe-service", tag, fn)
}

// SetAddr assigns this NIC its fabric address (a cluster does this at
// wiring time). The kernel's send path stamps outgoing frames' Src
// with it.
func (n *NIC) SetAddr(a Addr) { n.addr = a }

// Addr reports the NIC's fabric address (zero outside any fabric).
func (n *NIC) Addr() Addr { return n.addr }

// AddTxRoute registers an outgoing wire and returns its route index.
// send is invoked once per transmitted frame in the sender's context
// and reports whether the frame was carried (false: dropped at the
// wire's queue or by a dead destination).
func (n *NIC) AddTxRoute(send func(Frame) bool) int {
	n.routes = append(n.routes, send)
	return len(n.routes) - 1
}

// SetRoute points frames addressed to dst at the given route index.
// The table is allocated lazily so solo machines carry none.
func (n *NIC) SetRoute(dst Addr, route int) {
	if n.table == nil {
		n.table = make(map[Addr]int)
	}
	n.table[dst] = route
}

// RouteTo resolves a destination address to a route index.
func (n *NIC) RouteTo(dst Addr) (int, bool) {
	route, ok := n.table[dst]
	return route, ok
}

// TxRoutes reports the number of registered transmit routes.
func (n *NIC) TxRoutes() int { return len(n.routes) }

// Transmit pushes one frame out the given route. It reports whether
// the frame was carried; frames to an unknown route (a machine with
// no uplink) or refused by the wire count as transmit drops. The
// kernel charges the tx-path CPU time around this call.
func (n *NIC) Transmit(route int, f Frame) bool {
	if route < 0 || route >= len(n.routes) || !n.routes[route](f) {
		n.txDropped++
		return false
	}
	n.txCarried++
	return true
}

// TransmitTo resolves f.Dst through the routing table and pushes the
// frame out the resolved route. Frames to destinations with no route
// count as transmit drops, mirroring a missing FIB entry.
func (n *NIC) TransmitTo(f Frame) bool {
	route, ok := n.table[f.Dst]
	if !ok {
		n.txDropped++
		return false
	}
	return n.Transmit(route, f)
}

// Transmitted reports frames successfully handed to a wire.
func (n *NIC) Transmitted() uint64 { return n.txCarried }

// TxDropped reports transmit attempts that were not carried.
func (n *NIC) TxDropped() uint64 { return n.txDropped }

// Active reports whether a flood is in progress.
func (n *NIC) Active() bool { return n.active }

// StartFlood begins delivering packets at the given rate (packets per
// second) with small deterministic inter-arrival jitter. A second
// call replaces the current rate.
func (n *NIC) StartFlood(packetsPerSecond uint64) {
	n.StopFlood()
	if packetsPerSecond == 0 {
		return
	}
	n.rate = packetsPerSecond
	n.jitter = true
	n.active = true
	n.scheduleNext()
}

// StopFlood cancels any pending delivery and resets the generator's
// rate, jitter, and fractional-interval state, so a later StartFlood
// at the same rate replays exactly like a flood started on a fresh
// NIC (given the same random-source position).
func (n *NIC) StopFlood() {
	if n.pending != nil {
		n.queue.Cancel(n.pending)
		n.pending = nil
	}
	n.active = false
	n.rate = 0
	n.rateFrac = 0
	n.jitter = false
}

func (n *NIC) scheduleNext() {
	// Freq/rate truncates; carry the remainder across packets so the
	// achieved rate matches the requested one over any horizon instead
	// of drifting high by up to rate/Freq packets per second.
	freq := uint64(n.clock.Freq())
	interval := sim.Cycles(freq / n.rate)
	n.rateFrac += freq % n.rate
	if n.rateFrac >= n.rate {
		n.rateFrac -= n.rate
		interval++
	}
	if interval == 0 {
		interval = 1
	}
	if n.jitter {
		interval = n.rng.Jitter(interval, interval/4+1)
		if interval == 0 {
			interval = 1
		}
	}
	n.pending = n.queue.ScheduleTagged(n.clock.Now()+interval, "nic-rx", nicRxFlood, n.rxFire)
}

// Clone returns a NIC for a restored machine, wired to the new
// machine's queue, clock, rng, and IRQ-delivery sink, carrying over
// all generator, receive-path, and counter state. Transmit routes are
// deliberately NOT cloned — they are closures into external wiring
// (cluster link pipes) that the owner re-registers after restore; the
// address→route table is carried so re-registration in the original
// order resolves identically.
func (n *NIC) Clone(queue *sim.EventQueue, clock *sim.Clock, rng *sim.Rand, deliver func()) *NIC {
	c := NewNIC(queue, clock, rng, deliver)
	c.rate, c.rateFrac, c.jitter, c.active = n.rate, n.rateFrac, n.jitter, n.active
	c.received = n.received
	if len(n.frameQ) > 0 {
		c.frameQ = append([]pendingFrame(nil), n.frameQ...)
	}
	c.frameSeq = n.frameSeq
	c.lastFrame, c.hasFrame = n.lastFrame, n.hasFrame
	c.addr = n.addr
	if n.table != nil {
		c.table = make(map[Addr]int, len(n.table))
		//simlint:unordered-ok deep copy into a map keyed identically
		for a, r := range n.table {
			c.table[a] = r
		}
	}
	c.txCarried, c.txDropped = n.txCarried, n.txDropped
	return c
}

// RestoreFire resolves a pending "nic-rx" event's restore tag to the
// matching reusable fire callback on this (restored) NIC.
func (n *NIC) RestoreFire(tag uint64) (func(), bool) {
	switch tag {
	case nicRxFlood:
		return n.rxFire, true
	case nicRxExt:
		return n.extFire, true
	case nicRxFrame:
		return n.frameFire, true
	}
	return nil, false
}

// FloodTag reports whether a "nic-rx" restore tag identifies the
// flood generator's own in-flight delivery (the one event the NIC
// holds a cancellable pointer to).
func FloodTag(tag uint64) bool { return tag == nicRxFlood }

// AdoptPending re-points the flood generator's in-flight delivery at
// the restored event, so StopFlood on the restored machine cancels
// the right entry.
func (n *NIC) AdoptPending(e *sim.Event) { n.pending = e }

// DiskChannel is the occupancy state of one physical swap device:
// the completion horizons of its read and write channels. Each Disk
// owns a private channel by default; a cluster may point several
// machines' Disks at one shared channel so their I/O contends for the
// same spindle (a swap partition on shared network storage).
type DiskChannel struct {
	readBusy  sim.Cycles
	writeBusy sim.Cycles
}

// NewDiskChannel returns an idle shared-device state.
func NewDiskChannel() *DiskChannel { return &DiskChannel{} }

// Clone returns an independent channel with the same completion
// horizons (checkpoint restore).
func (ch *DiskChannel) Clone() *DiskChannel {
	cp := *ch
	return &cp
}

// Disk is the swap device. Reads (swap-ins, which block a faulting
// process) serialise on the read channel; writebacks go through a
// separate write channel modelling the drive's write cache and the
// kernel's background writeback, so a dirty-page storm cannot starve
// demand paging. Both channels have the same per-page latency.
type Disk struct {
	queue   *sim.EventQueue
	clock   *sim.Clock
	latency sim.Cycles

	ch     *DiskChannel
	notify func(complete sim.Cycles)
	ios    uint64
	writes uint64
}

// NewDisk returns a disk with the given per-page access latency.
func NewDisk(queue *sim.EventQueue, clock *sim.Clock, latency sim.Cycles) *Disk {
	return &Disk{queue: queue, clock: clock, latency: latency, ch: &DiskChannel{}}
}

// Share points this disk at a shared device channel, so its I/O
// serialises against every other disk sharing the channel. Call
// before any I/O is submitted.
func (d *Disk) Share(ch *DiskChannel) { d.ch = ch }

// Channel returns the device channel this disk's I/O serialises on.
func (d *Disk) Channel() *DiskChannel { return d.ch }

// Clone returns a Disk for a restored machine, wired to the new
// machine's queue and clock, with the channel horizons and I/O
// counters carried over. A disk that shared a channel must be
// re-pointed (Share) at the restored shared channel afterwards; the
// OnIO hook, a closure into external wiring, is likewise the owner's
// to re-register.
func (d *Disk) Clone(queue *sim.EventQueue, clock *sim.Clock) *Disk {
	return &Disk{
		queue:   queue,
		clock:   clock,
		latency: d.latency,
		ch:      d.ch.Clone(),
		ios:     d.ios,
		writes:  d.writes,
	}
}

// OnIO registers a per-submission hook invoked with each I/O's
// completion time, in the submitter's context. A cluster uses it to
// bill the host serving a remotely mounted swap device.
func (d *Disk) OnIO(fn func(complete sim.Cycles)) { d.notify = fn }

// IOs reports the number of completed read accesses.
func (d *Disk) IOs() uint64 { return d.ios }

// Writes reports the number of completed writebacks.
func (d *Disk) Writes() uint64 { return d.writes }

// Submit enqueues one blocking page read (swap-in) and schedules done
// at completion. Reads serialise behind in-flight reads only.
func (d *Disk) Submit(done func()) { d.SubmitTagged(0, done) }

// SubmitTagged is Submit with a restore tag recorded on the
// completion event (the kernel passes the faulting PID, so a restore
// can rebuild the wake-up closure from the event image alone).
func (d *Disk) SubmitTagged(tag uint64, done func()) {
	start := d.clock.Now()
	if d.ch.readBusy > start {
		start = d.ch.readBusy
	}
	complete := start + d.latency
	d.ch.readBusy = complete
	d.ios++
	d.queue.ScheduleTagged(complete, "disk-read", tag, done)
	if d.notify != nil {
		d.notify(complete)
	}
}

// maxWriteBacklog caps the write channel's backlog, in pages: a write
// submitted when the channel is already this far behind is absorbed
// by the cache and completes at the backlog horizon instead of
// queueing further out, modelling writeback throttling rather than
// unbounded queueing.
const maxWriteBacklog = 64

// SubmitWrite enqueues one background writeback (swap-out) and
// schedules done at completion. No completion is ever scheduled past
// now + maxWriteBacklog*latency (the backlog horizon), and writeBusy
// always reflects the last scheduled completion so a later submit
// sees a consistent channel.
func (d *Disk) SubmitWrite(done func()) {
	now := d.clock.Now()
	start := d.ch.writeBusy
	if start < now {
		start = now
	}
	complete := start + d.latency
	if horizon := now + sim.Cycles(maxWriteBacklog)*d.latency; complete > horizon {
		complete = horizon
	}
	d.ch.writeBusy = complete
	d.writes++
	d.queue.Schedule(complete, "disk-write", done)
	if d.notify != nil {
		d.notify(complete)
	}
}
