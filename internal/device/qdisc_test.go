package device

import "testing"

func entry(flow uint32, cost uint64) QdiscEntry {
	return QdiscEntry{F: Frame{Flow: flow, Bytes: uint32(cost)}, Cost: cost}
}

func TestWireBytesClampsToMinimum(t *testing.T) {
	if got := WireBytes(Frame{}); got != MinFrameBytes {
		t.Errorf("WireBytes(zero) = %d, want %d", got, MinFrameBytes)
	}
	if got := WireBytes(Frame{Bytes: 40}); got != MinFrameBytes {
		t.Errorf("WireBytes(40) = %d, want %d (runt frames pad to minimum)", got, MinFrameBytes)
	}
	if got := WireBytes(Frame{Bytes: 1500}); got != 1500 {
		t.Errorf("WireBytes(1500) = %d", got)
	}
}

// TestDRRQuantumShare pins the scheduler's fairness mechanics: with an
// MTU hog and a minimum-frame flow both backlogged, served bytes per
// ring rotation track the quantum, so the sparse flow's frames
// interleave with the hog's instead of waiting out its whole queue.
func TestDRRQuantumShare(t *testing.T) {
	d := NewDRR(1514)
	for i := 0; i < 10; i++ {
		d.Enqueue(entry(1, 1500)) // hog
	}
	for i := 0; i < 10; i++ {
		d.Enqueue(entry(2, 84)) // sparse
	}
	served := map[uint32]uint64{}
	for i := 0; i < 10; i++ {
		e, ok := d.Dequeue()
		if !ok {
			t.Fatal("queue drained early")
		}
		served[e.F.Flow] += e.Cost
	}
	// Ten dequeues cover several rotations; each flow's served bytes
	// must stay within one quantum+MTU of the other's — round-robin by
	// byte, not by packet count.
	h, s := served[1], served[2]
	if h == 0 || s == 0 {
		t.Fatalf("one flow starved across rotations: hog=%d sparse=%d bytes", h, s)
	}
	diff := int64(h) - int64(s)
	if diff < 0 {
		diff = -diff
	}
	if diff > 1514+1500 {
		t.Errorf("served bytes diverged beyond a quantum+MTU: hog=%d sparse=%d", h, s)
	}
}

// TestDRRDequeueDrainsInFIFOPerFlow pins per-flow ordering: frames of
// one flow depart in their enqueue order regardless of interleaving.
func TestDRRDequeueDrainsInFIFOPerFlow(t *testing.T) {
	d := NewDRR(200)
	for i := 0; i < 5; i++ {
		e := entry(7, 100)
		e.Tag = uint32(i)
		d.Enqueue(e)
		d.Enqueue(entry(9, 100))
	}
	var last int64 = -1
	for d.Len() > 0 {
		e, _ := d.Dequeue()
		if e.F.Flow != 7 {
			continue
		}
		if int64(e.Tag) <= last {
			t.Fatalf("flow 7 reordered: tag %d after %d", e.Tag, last)
		}
		last = int64(e.Tag)
	}
	if last != 4 {
		t.Fatalf("flow 7 drained %d of 5 frames", last+1)
	}
}

// TestDRRStealFromLongest pins the buffer-steal policy: LongestFlow
// deterministically names the fattest backlog and StealFrom sheds its
// newest frame first, leaving head-of-line order intact.
func TestDRRStealFromLongest(t *testing.T) {
	d := NewDRR(1514)
	d.Enqueue(entry(1, 1500))
	d.Enqueue(entry(1, 1500))
	d.Enqueue(entry(2, 84))
	hog, ok := d.LongestFlow()
	if !ok || hog != 1 {
		t.Fatalf("LongestFlow = %d,%v, want flow 1", hog, ok)
	}
	before := d.Bytes()
	e, ok := d.StealFrom(hog)
	if !ok || e.F.Flow != 1 {
		t.Fatalf("StealFrom(1) = %+v,%v", e, ok)
	}
	if d.Bytes() != before-1500 || d.Len() != 2 {
		t.Errorf("after steal: %d bytes / %d frames, want %d / 2", d.Bytes(), d.Len(), before-1500)
	}
	// Draining the rest still serves both flows.
	seen := map[uint32]int{}
	for d.Len() > 0 {
		e, _ := d.Dequeue()
		seen[e.F.Flow]++
	}
	if seen[1] != 1 || seen[2] != 1 {
		t.Errorf("post-steal drain = %v, want one frame per flow", seen)
	}
	if _, ok := d.StealFrom(42); ok {
		t.Error("StealFrom an idle flow reported success")
	}
}

// TestDRRExpire pins the restart purge primitive: Expire removes
// exactly the entries matching the predicate in ring-then-FIFO order,
// keeps count/byte totals exact, deactivates flows it empties, and
// leaves surviving flows schedulable in their original ring order.
func TestDRRExpire(t *testing.T) {
	d := NewDRR(200)
	// Flow 1: tags 0,1 (1 dead). Flow 2: tags 2,3 (all dead).
	// Flow 3: tag 4 (survives untouched).
	for i, spec := range []struct {
		flow uint32
		cost uint64
	}{{1, 100}, {1, 100}, {2, 84}, {2, 84}, {3, 84}} {
		e := entry(spec.flow, spec.cost)
		e.Tag = uint32(i)
		d.Enqueue(e)
	}
	dead := map[uint32]bool{1: true, 2: true, 3: true}
	var order []uint32
	n := d.Expire(
		func(e QdiscEntry) bool { return dead[e.Tag] },
		func(e QdiscEntry) { order = append(order, e.Tag) })
	if n != 3 || len(order) != 3 {
		t.Fatalf("Expire removed %d entries (observed %d), want 3", n, len(order))
	}
	// Ring order is activation order (1, 2, 3), FIFO within each flow.
	want := []uint32{1, 2, 3}
	for i, tag := range want {
		if order[i] != tag {
			t.Fatalf("expiry order = %v, want %v (ring then FIFO)", order, want)
		}
	}
	if d.Len() != 2 || d.Bytes() != 100+84 {
		t.Errorf("after expiry: %d frames / %d bytes, want 2 / %d", d.Len(), d.Bytes(), 100+84)
	}
	// The emptied flow is out of the ring; survivors drain normally.
	var tags []uint32
	for d.Len() > 0 {
		e, _ := d.Dequeue()
		tags = append(tags, e.Tag)
	}
	if len(tags) != 2 || tags[0] != 0 || tags[1] != 4 {
		t.Errorf("post-expiry drain tags = %v, want [0 4]", tags)
	}
	if n := d.Expire(func(QdiscEntry) bool { return true }, nil); n != 0 {
		t.Errorf("Expire on an empty scheduler removed %d entries", n)
	}
	// An expired flow can re-activate: a fresh enqueue serves normally.
	d.Enqueue(entry(2, 84))
	if e, ok := d.Dequeue(); !ok || e.F.Flow != 2 {
		t.Errorf("re-activated flow 2 did not serve: %+v, %v", e, ok)
	}
}
