package device

import (
	"testing"

	"repro/internal/sim"
)

// drain runs the event loop until the queue empties or limit events fire.
func drain(t *testing.T, q *sim.EventQueue, c *sim.Clock, limit int) int {
	t.Helper()
	n := 0
	for q.Len() > 0 && n < limit {
		e := q.Pop()
		c.AdvanceTo(e.At)
		e.Fire()
		n++
	}
	return n
}

func TestNICDeliversAtRate(t *testing.T) {
	q := sim.NewEventQueue()
	c := sim.NewClock(1_000_000) // 1 MHz for easy math
	rng := sim.NewRand(1)
	var delivered int
	nic := NewNIC(q, c, rng, func() { delivered++ })
	nic.StartFlood(1000) // 1000 pps => every ~1000 cycles

	// Run one virtual second of events.
	for q.Len() > 0 && c.Now() < 1_000_000 {
		e := q.Pop()
		c.AdvanceTo(e.At)
		e.Fire()
	}
	nic.StopFlood()
	// With ±12.5% jitter the count should be near 1000.
	if delivered < 800 || delivered > 1200 {
		t.Fatalf("delivered = %d packets in 1s at 1000pps", delivered)
	}
	if nic.Received() != uint64(delivered) {
		t.Fatalf("Received() = %d, want %d", nic.Received(), delivered)
	}
}

func TestNICStopCancelsPending(t *testing.T) {
	q := sim.NewEventQueue()
	c := sim.NewClock(1_000_000)
	nic := NewNIC(q, c, sim.NewRand(1), func() { t.Fatal("delivery after stop") })
	nic.StartFlood(10)
	if !nic.Active() {
		t.Fatal("not active after StartFlood")
	}
	nic.StopFlood()
	if nic.Active() {
		t.Fatal("active after StopFlood")
	}
	if q.Len() != 0 {
		t.Fatalf("pending events after stop: %d", q.Len())
	}
}

func TestNICZeroRateIsNoop(t *testing.T) {
	q := sim.NewEventQueue()
	c := sim.NewClock(1_000_000)
	nic := NewNIC(q, c, sim.NewRand(1), func() {})
	nic.StartFlood(0)
	if nic.Active() || q.Len() != 0 {
		t.Fatal("zero-rate flood scheduled events")
	}
}

// TestNICRateExactWithoutJitter pins the truncation-drift fix: at a
// rate that does not divide the clock frequency, the fractional
// remainder must carry across packets so one virtual second delivers
// the requested count, not freq/(freq/rate) of it. With jitter
// disabled, 1 MHz at 3000 pps must deliver 3000±1 packets (the old
// integer-division schedule delivered 3003).
func TestNICRateExactWithoutJitter(t *testing.T) {
	q := sim.NewEventQueue()
	c := sim.NewClock(1_000_000)
	var delivered int
	nic := NewNIC(q, c, sim.NewRand(1), func() { delivered++ })
	nic.StartFlood(3000)
	nic.jitter = false // white-box: isolate the rate schedule from its stochastic spread
	for q.Len() > 0 && c.Now() < 1_000_000 {
		e := q.Pop()
		c.AdvanceTo(e.At)
		e.Fire()
	}
	nic.StopFlood()
	if delivered < 2999 || delivered > 3001 {
		t.Fatalf("delivered = %d packets in 1 s at 3000 pps, want 3000±1", delivered)
	}
}

// TestNICRestartReplaysLikeFresh pins the StopFlood state-reset fix:
// after stop, a second StartFlood at the same rate must produce a
// delivery schedule bit-identical to a flood started on a fresh NIC
// whose random source sits at the same position. Stale rate/jitter or
// a carried fractional remainder would shift the restarted schedule.
func TestNICRestartReplaysLikeFresh(t *testing.T) {
	const rate = 777 // does not divide 1 MHz: exercises the fractional carry
	const warm = 50  // packets delivered before the stop
	const compare = 50

	intervals := func(nic *NIC, q *sim.EventQueue, c *sim.Clock, n int) []sim.Cycles {
		var out []sim.Cycles
		last := c.Now()
		for len(out) < n && q.Len() > 0 {
			e := q.Pop()
			c.AdvanceTo(e.At)
			before := int(nic.Received())
			e.Fire()
			if int(nic.Received()) > before {
				out = append(out, c.Now()-last)
				last = c.Now()
			}
		}
		return out
	}

	// NIC A: start, deliver warm packets, stop, start again.
	qa := sim.NewEventQueue()
	ca := sim.NewClock(1_000_000)
	na := NewNIC(qa, ca, sim.NewRand(99), func() {})
	na.StartFlood(rate)
	intervals(na, qa, ca, warm)
	na.StopFlood()
	na.StartFlood(rate)
	got := intervals(na, qa, ca, compare)

	// NIC B: fresh, with its random source advanced by the draws A's
	// first flood consumed (one per scheduleNext: the start plus one
	// per delivered packet).
	qb := sim.NewEventQueue()
	cb := sim.NewClock(1_000_000)
	rb := sim.NewRand(99)
	for i := 0; i < warm+1; i++ {
		rb.Int63()
	}
	nb := NewNIC(qb, cb, rb, func() {})
	nb.StartFlood(rate)
	want := intervals(nb, qb, cb, compare)

	if len(got) != compare || len(want) != compare {
		t.Fatalf("collected %d/%d intervals, want %d", len(got), len(want), compare)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("interval %d: restarted flood %d cycles, fresh flood %d cycles (stale StopFlood state)", i, got[i], want[i])
		}
	}
}

func TestNICRestartReplacesRate(t *testing.T) {
	q := sim.NewEventQueue()
	c := sim.NewClock(1_000_000)
	var delivered int
	nic := NewNIC(q, c, sim.NewRand(1), func() { delivered++ })
	nic.StartFlood(10)
	nic.StartFlood(100000) // replaces; no double stream
	for q.Len() > 0 && c.Now() < 10_000 {
		e := q.Pop()
		c.AdvanceTo(e.At)
		e.Fire()
	}
	nic.StopFlood()
	if q.Len() != 0 {
		t.Fatalf("leftover events: %d", q.Len())
	}
	if delivered == 0 {
		t.Fatal("no deliveries after restart")
	}
}

func TestDiskSerialises(t *testing.T) {
	q := sim.NewEventQueue()
	c := sim.NewClock(1_000_000)
	d := NewDisk(q, c, 100)
	var done []sim.Cycles
	d.Submit(func() { done = append(done, c.Now()) })
	d.Submit(func() { done = append(done, c.Now()) })
	d.Submit(func() { done = append(done, c.Now()) })
	drain(t, q, c, 100)
	if len(done) != 3 {
		t.Fatalf("completions = %d, want 3", len(done))
	}
	want := []sim.Cycles{100, 200, 300}
	for i, at := range done {
		if at != want[i] {
			t.Fatalf("completion %d at %d, want %d (serialised)", i, at, want[i])
		}
	}
	if d.IOs() != 3 {
		t.Fatalf("IOs = %d, want 3", d.IOs())
	}
}

// TestDiskWritebackHorizon pins the writeback throttling fix: no
// completion may land past now + maxWriteBacklog*latency, and the
// channel state must stay consistent so post-throttle writes still
// serialise correctly.
func TestDiskWritebackHorizon(t *testing.T) {
	q := sim.NewEventQueue()
	c := sim.NewClock(1_000_000)
	const latency = 100
	d := NewDisk(q, c, latency)

	var done []sim.Cycles
	const n = maxWriteBacklog + 10
	for i := 0; i < n; i++ {
		d.SubmitWrite(func() { done = append(done, c.Now()) })
	}
	horizon := sim.Cycles(maxWriteBacklog * latency)
	drain(t, q, c, 10*n)
	if len(done) != n {
		t.Fatalf("completions = %d, want %d", len(done), n)
	}
	for i, at := range done {
		if at > horizon {
			t.Fatalf("write %d completed at %d, past the backlog horizon %d", i, at, horizon)
		}
	}
	// The unthrottled prefix serialises one latency apart; the
	// throttled tail is absorbed at the horizon.
	for i := 0; i < maxWriteBacklog; i++ {
		if want := sim.Cycles((i + 1) * latency); done[i] != want {
			t.Fatalf("write %d completed at %d, want %d (serialised)", i, done[i], want)
		}
	}
	for i := maxWriteBacklog; i < n; i++ {
		if done[i] != horizon {
			t.Fatalf("throttled write %d completed at %d, want horizon %d", i, done[i], horizon)
		}
	}
	if d.Writes() != n {
		t.Fatalf("Writes = %d, want %d", d.Writes(), n)
	}

	// After the backlog drains, the channel behaves normally again:
	// the next write completes one latency out.
	var after sim.Cycles
	d.SubmitWrite(func() { after = c.Now() })
	drain(t, q, c, 10)
	if want := horizon + latency; after != want {
		t.Fatalf("post-drain write completed at %d, want %d", after, want)
	}
}

// TestNICFloodStartStopAllocates pins Cancel's event recycling end to
// end: repeated flood start/stop cycles must not allocate.
func TestNICFloodStartStopAllocates(t *testing.T) {
	q := sim.NewEventQueue()
	c := sim.NewClock(1_000_000)
	nic := NewNIC(q, c, sim.NewRand(1), func() {})
	nic.StartFlood(1000)
	nic.StopFlood() // warm the free list
	if allocs := testing.AllocsPerRun(200, func() {
		nic.StartFlood(1000)
		nic.StopFlood()
	}); allocs > 0 {
		t.Fatalf("flood start/stop cycle allocates %.1f objects per run", allocs)
	}
}

func TestIRQString(t *testing.T) {
	for _, tc := range []struct {
		irq  IRQ
		want string
	}{{IRQTimer, "timer"}, {IRQNIC, "nic"}, {IRQDisk, "disk"}, {IRQ(99), "unknown"}} {
		if got := tc.irq.String(); got != tc.want {
			t.Errorf("IRQ(%d) = %q, want %q", int(tc.irq), got, tc.want)
		}
	}
}
