package device

import (
	"testing"

	"repro/internal/sim"
)

// drain runs the event loop until the queue empties or limit events fire.
func drain(t *testing.T, q *sim.EventQueue, c *sim.Clock, limit int) int {
	t.Helper()
	n := 0
	for q.Len() > 0 && n < limit {
		e := q.Pop()
		c.AdvanceTo(e.At)
		e.Fire()
		n++
	}
	return n
}

func TestNICDeliversAtRate(t *testing.T) {
	q := sim.NewEventQueue()
	c := sim.NewClock(1_000_000) // 1 MHz for easy math
	rng := sim.NewRand(1)
	var delivered int
	nic := NewNIC(q, c, rng, func() { delivered++ })
	nic.StartFlood(1000) // 1000 pps => every ~1000 cycles

	// Run one virtual second of events.
	for q.Len() > 0 && c.Now() < 1_000_000 {
		e := q.Pop()
		c.AdvanceTo(e.At)
		e.Fire()
	}
	nic.StopFlood()
	// With ±12.5% jitter the count should be near 1000.
	if delivered < 800 || delivered > 1200 {
		t.Fatalf("delivered = %d packets in 1s at 1000pps", delivered)
	}
	if nic.Received() != uint64(delivered) {
		t.Fatalf("Received() = %d, want %d", nic.Received(), delivered)
	}
}

func TestNICStopCancelsPending(t *testing.T) {
	q := sim.NewEventQueue()
	c := sim.NewClock(1_000_000)
	nic := NewNIC(q, c, sim.NewRand(1), func() { t.Fatal("delivery after stop") })
	nic.StartFlood(10)
	if !nic.Active() {
		t.Fatal("not active after StartFlood")
	}
	nic.StopFlood()
	if nic.Active() {
		t.Fatal("active after StopFlood")
	}
	if q.Len() != 0 {
		t.Fatalf("pending events after stop: %d", q.Len())
	}
}

func TestNICZeroRateIsNoop(t *testing.T) {
	q := sim.NewEventQueue()
	c := sim.NewClock(1_000_000)
	nic := NewNIC(q, c, sim.NewRand(1), func() {})
	nic.StartFlood(0)
	if nic.Active() || q.Len() != 0 {
		t.Fatal("zero-rate flood scheduled events")
	}
}

func TestNICRestartReplacesRate(t *testing.T) {
	q := sim.NewEventQueue()
	c := sim.NewClock(1_000_000)
	var delivered int
	nic := NewNIC(q, c, sim.NewRand(1), func() { delivered++ })
	nic.StartFlood(10)
	nic.StartFlood(100000) // replaces; no double stream
	for q.Len() > 0 && c.Now() < 10_000 {
		e := q.Pop()
		c.AdvanceTo(e.At)
		e.Fire()
	}
	nic.StopFlood()
	if q.Len() != 0 {
		t.Fatalf("leftover events: %d", q.Len())
	}
	if delivered == 0 {
		t.Fatal("no deliveries after restart")
	}
}

func TestDiskSerialises(t *testing.T) {
	q := sim.NewEventQueue()
	c := sim.NewClock(1_000_000)
	d := NewDisk(q, c, 100)
	var done []sim.Cycles
	d.Submit(func() { done = append(done, c.Now()) })
	d.Submit(func() { done = append(done, c.Now()) })
	d.Submit(func() { done = append(done, c.Now()) })
	drain(t, q, c, 100)
	if len(done) != 3 {
		t.Fatalf("completions = %d, want 3", len(done))
	}
	want := []sim.Cycles{100, 200, 300}
	for i, at := range done {
		if at != want[i] {
			t.Fatalf("completion %d at %d, want %d (serialised)", i, at, want[i])
		}
	}
	if d.IOs() != 3 {
		t.Fatalf("IOs = %d, want 3", d.IOs())
	}
}

func TestIRQString(t *testing.T) {
	for irq, want := range map[IRQ]string{IRQTimer: "timer", IRQNIC: "nic", IRQDisk: "disk", IRQ(99): "unknown"} {
		if got := irq.String(); got != want {
			t.Errorf("IRQ(%d) = %q, want %q", int(irq), got, want)
		}
	}
}
