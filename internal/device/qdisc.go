// Deficit-round-robin queueing: the per-flow fair scheduler a
// congested egress pipe can run instead of FIFO. The structure here is
// pure frame bookkeeping — deterministic, allocation-light, and
// ignorant of time; the cluster's pipe engine owns the wire clock and
// decides *when* to dequeue, this type decides *what* departs next and
// which flow loses buffer space under pressure.
package device

// MinFrameBytes is the wire occupancy of a minimum-size frame
// (64-byte Ethernet frame plus preamble and inter-frame gap): the
// unit one serialisation slot of a packets-per-second wire carries,
// and the fallback size of a Frame with Bytes zero. 100 Mb/s divided
// by 84 bytes is ~148.8k minimum frames per second — the classic
// saturated-fast-Ethernet packet rate the default link speed models.
const MinFrameBytes = 84

// WireBytes reports a frame's wire occupancy: its payload size
// clamped up to the minimum frame, so Bytes zero (the pre-byte-model
// frames and control traffic) costs exactly one serialisation slot.
func WireBytes(f Frame) uint64 {
	if uint64(f.Bytes) < MinFrameBytes {
		return MinFrameBytes
	}
	return uint64(f.Bytes)
}

// QdiscEntry is one frame parked at an egress discipline, with its
// wire cost and the owner's routing tag (a cluster stores the sending
// link's index there so a shared bottleneck pipe can deliver and
// account each frame on the link it was offered to).
type QdiscEntry struct {
	F    Frame
	Cost uint64 // wire occupancy in bytes (WireBytes at enqueue)
	Tag  uint32
}

// DRR is a deficit-round-robin scheduler over per-Frame.Flow queues:
// active flows are served in a fixed round-robin ring, each flow
// accumulating a byte quantum per round and sending head-of-line
// frames while its deficit covers them. A flooding flow therefore
// cannot starve a sparse one — every active flow drains at least one
// quantum's worth of bytes per ring rotation regardless of how deep
// the flood's own queue grows. All state transitions are pure
// functions of the enqueue/dequeue sequence, so lockstep histories
// through a DRR pipe replay bit-for-bit.
type DRR struct {
	quantum uint64
	flows   map[uint32]*drrFlow
	ring    []*drrFlow // active (non-empty) flows in activation order
	count   int
	bytes   uint64
}

// drrFlow is one flow's FIFO backlog plus its deficit counter and a
// running byte total (kept incrementally so the buffer-steal victim
// scan is O(flows), not O(queued frames)).
type drrFlow struct {
	id      uint32
	q       []QdiscEntry
	head    int
	deficit uint64
	bytes   uint64
}

func (fl *drrFlow) len() int { return len(fl.q) - fl.head }

func (fl *drrFlow) push(e QdiscEntry) {
	fl.q = append(fl.q, e)
	fl.bytes += e.Cost
}

func (fl *drrFlow) pop() QdiscEntry {
	e := fl.q[fl.head]
	fl.q[fl.head] = QdiscEntry{}
	fl.head++
	if fl.head == len(fl.q) {
		fl.q = fl.q[:0]
		fl.head = 0
	}
	fl.bytes -= e.Cost
	return e
}

// popTail removes the most recently queued entry (the drop-from-
// longest buffer-steal discards fresh backlog, not the frame about to
// be served).
func (fl *drrFlow) popTail() QdiscEntry {
	last := len(fl.q) - 1
	e := fl.q[last]
	fl.q[last] = QdiscEntry{}
	fl.q = fl.q[:last]
	if fl.head == len(fl.q) {
		fl.q = fl.q[:0]
		fl.head = 0
	}
	fl.bytes -= e.Cost
	return e
}

// NewDRR returns a scheduler granting each active flow quantumBytes
// of wire per round. A quantum of at least one maximum frame keeps
// per-round service work-conserving; the constructor clamps zero to
// one byte so a malformed quantum cannot loop the dequeue.
func NewDRR(quantumBytes uint64) *DRR {
	if quantumBytes == 0 {
		quantumBytes = 1
	}
	return &DRR{quantum: quantumBytes, flows: make(map[uint32]*drrFlow)}
}

// Clone returns an independent deep copy of the scheduler: per-flow
// backlogs (compacted), deficits, byte totals, and the ring's
// activation order are preserved exactly, so the clone's dequeue and
// buffer-steal sequences replay the original's bit-for-bit.
func (d *DRR) Clone() *DRR {
	c := &DRR{
		quantum: d.quantum,
		flows:   make(map[uint32]*drrFlow, len(d.flows)),
		count:   d.count,
		bytes:   d.bytes,
	}
	//simlint:unordered-ok deep copy into a map keyed identically; the order-bearing state is the ring, rebuilt below
	for id, fl := range d.flows {
		cf := &drrFlow{id: fl.id, deficit: fl.deficit, bytes: fl.bytes}
		if n := fl.len(); n > 0 {
			cf.q = append(make([]QdiscEntry, 0, n), fl.q[fl.head:]...)
		}
		c.flows[id] = cf
	}
	if len(d.ring) > 0 {
		c.ring = make([]*drrFlow, len(d.ring))
		for i, fl := range d.ring {
			c.ring[i] = c.flows[fl.id]
		}
	}
	return c
}

// Len reports queued frames across all flows.
func (d *DRR) Len() int { return d.count }

// Bytes reports queued wire bytes across all flows.
func (d *DRR) Bytes() uint64 { return d.bytes }

// Enqueue parks one entry on its flow's queue, activating the flow
// (ring tail, zero deficit) if it was idle. Capacity enforcement is
// the caller's: decide with LongestFlow/StealFrom before enqueueing.
func (d *DRR) Enqueue(e QdiscEntry) {
	fl := d.flows[e.F.Flow]
	if fl == nil {
		fl = &drrFlow{id: e.F.Flow}
		d.flows[e.F.Flow] = fl
	}
	if fl.len() == 0 {
		fl.deficit = 0
		d.ring = append(d.ring, fl)
	}
	fl.push(e)
	d.count++
	d.bytes += e.Cost
}

// Dequeue removes and returns the next departing entry per the DRR
// round: the head-of-ring flow earns a quantum whenever its deficit
// cannot cover its head frame and rotates to the tail; the first flow
// whose deficit covers its head frame sends it. A flow emptied by its
// send leaves the ring and forfeits its remaining deficit.
func (d *DRR) Dequeue() (QdiscEntry, bool) {
	if d.count == 0 {
		return QdiscEntry{}, false
	}
	for {
		fl := d.ring[0]
		cost := fl.q[fl.head].Cost
		if fl.deficit < cost {
			fl.deficit += d.quantum
			copy(d.ring, d.ring[1:])
			d.ring[len(d.ring)-1] = fl
			continue
		}
		e := fl.pop()
		fl.deficit -= cost
		d.count--
		d.bytes -= e.Cost
		if fl.len() == 0 {
			fl.deficit = 0
			copy(d.ring, d.ring[1:])
			d.ring = d.ring[:len(d.ring)-1]
		}
		return e, true
	}
}

// Expire removes every queued entry matching dead, visiting flows in
// ring order and each flow's backlog in FIFO order so the removal
// sequence — and therefore the caller's drop accounting — is a pure
// function of the queue state. Surviving flows keep their ring
// position and deficit; a flow emptied by the purge leaves the ring
// and forfeits its deficit exactly as if its last frame had departed.
// expired (optional) observes each removed entry; the return value is
// the number removed. The cluster uses this at machine restart to
// write a dead incarnation's residual backlog off as drops rather
// than deliver stale frames into the fresh incarnation.
func (d *DRR) Expire(dead func(QdiscEntry) bool, expired func(QdiscEntry)) int {
	removed := 0
	kept := d.ring[:0]
	for _, fl := range d.ring {
		w := 0
		for i := fl.head; i < len(fl.q); i++ {
			e := fl.q[i]
			if dead(e) {
				fl.bytes -= e.Cost
				d.count--
				d.bytes -= e.Cost
				removed++
				if expired != nil {
					expired(e)
				}
				continue
			}
			fl.q[w] = e
			w++
		}
		for i := w; i < len(fl.q); i++ {
			fl.q[i] = QdiscEntry{}
		}
		fl.q = fl.q[:w]
		fl.head = 0
		if w == 0 {
			fl.deficit = 0
			continue
		}
		kept = append(kept, fl)
	}
	for i := len(kept); i < len(d.ring); i++ {
		d.ring[i] = nil
	}
	d.ring = kept
	return removed
}

// LongestFlow reports the flow with the most queued wire bytes (ring
// order breaks ties, so the choice is deterministic), and false when
// nothing is queued. This is the buffer-steal victim: under pressure
// the discipline sheds backlog from whoever hogs the buffer, which is
// what keeps a sparse flow admissible while a flood fills the queue.
func (d *DRR) LongestFlow() (uint32, bool) {
	if d.count == 0 {
		return 0, false
	}
	var (
		best      *drrFlow
		bestBytes uint64
	)
	for _, fl := range d.ring {
		if best == nil || fl.bytes > bestBytes {
			best, bestBytes = fl, fl.bytes
		}
	}
	return best.id, true
}

// StealFrom drops the newest queued entry of the given flow,
// returning it for the caller's drop accounting. ok is false when the
// flow has no backlog.
func (d *DRR) StealFrom(flow uint32) (QdiscEntry, bool) {
	fl := d.flows[flow]
	if fl == nil || fl.len() == 0 {
		return QdiscEntry{}, false
	}
	e := fl.popTail()
	d.count--
	d.bytes -= e.Cost
	if fl.len() == 0 {
		fl.deficit = 0
		for i, rfl := range d.ring {
			if rfl == fl {
				copy(d.ring[i:], d.ring[i+1:])
				d.ring = d.ring[:len(d.ring)-1]
				break
			}
		}
	}
	return e, true
}
