// Package simlint aggregates the repo's determinism and
// billing-integrity analyzers into the suite cmd/simlint ships and CI
// runs via `go vet -vettool`. Adding an analyzer here is all it takes
// to enroll it in the binary, the CI gate, and the registration test.
package simlint

import (
	"repro/internal/analysis"
	"repro/internal/analysis/passes/errnocheck"
	"repro/internal/analysis/passes/mapiter"
	"repro/internal/analysis/passes/syscallname"
	"repro/internal/analysis/passes/wallclock"
)

// All returns the full simlint suite in registration order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		mapiter.Analyzer,
		wallclock.Analyzer,
		errnocheck.Analyzer,
		syscallname.Analyzer,
	}
}
