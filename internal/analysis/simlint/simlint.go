// Package simlint aggregates the repo's determinism and
// billing-integrity analyzers into the suite cmd/simlint ships and CI
// runs via `go vet -vettool`. Adding an analyzer here is all it takes
// to enroll it in the binary, the CI gate, and the registration test.
package simlint

import (
	"repro/internal/analysis"
	"repro/internal/analysis/passes/callsummary"
	"repro/internal/analysis/passes/errnocheck"
	"repro/internal/analysis/passes/floatdet"
	"repro/internal/analysis/passes/gotime"
	"repro/internal/analysis/passes/ledgerbalance"
	"repro/internal/analysis/passes/mapiter"
	"repro/internal/analysis/passes/syscallname"
	"repro/internal/analysis/passes/wallclock"
)

// All returns the full simlint suite in registration order.
// callsummary reports nothing itself but is enrolled so its facts
// pass is addressable from the command line and counted by the
// registration test; the driver would run it anyway as a prerequisite
// of wallclock, floatdet, and gotime.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		mapiter.Analyzer,
		wallclock.Analyzer,
		errnocheck.Analyzer,
		syscallname.Analyzer,
		callsummary.Analyzer,
		floatdet.Analyzer,
		ledgerbalance.Analyzer,
		gotime.Analyzer,
	}
}
