// Package unit drives internal/analysis analyzers under the command
// protocol `go vet -vettool=...` speaks (the protocol implemented
// upstream by golang.org/x/tools/go/analysis/unitchecker):
//
//	simlint -V=full    describe the executable (for build caching)
//	simlint -flags     describe supported flags in JSON
//	simlint foo.cfg    analyze the compilation unit foo.cfg describes
//
// The build tool hands the unit over as a JSON config naming the Go
// files, the import map, the export-data file of every dependency,
// and each dependency's facts (.vetx) file, so analysis here
// piggybacks on the compiler's type information instead of
// re-typechecking the world, and facts exported by dependency units
// flow in for cross-package analysis. Diagnostics go to stderr in the
// usual file:line:col form (suffixed with the reporting analyzer's
// name in brackets) and make the process — and therefore `go vet` —
// exit nonzero; with -json they go to stdout as structured records
// instead and the exit status stays zero, the upstream unitchecker
// convention that lets `go vet -vettool=... -json` stream findings to
// tooling.
package unit

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/annotation"
	"repro/internal/analysis/detscope"
)

// config mirrors the JSON compilation-unit description `go vet`
// writes (unitchecker.Config upstream). Fields the simlint suite
// does not consume are omitted; unknown JSON keys are ignored.
type config struct {
	ID                        string
	Compiler                  string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vettool built from the given
// analyzers. It terminates the process.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	// The build tool probes -V=full and -flags before any unit work;
	// answer those before general flag parsing.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion(progname)
			os.Exit(0)
		case "-flags", "--flags":
			printFlags(analyzers)
			os.Exit(0)
		}
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics and suppression records as JSON to stdout (exit status 0)")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = fs.Bool(a.Name, false, doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-analyzer...] unit.cfg\n\nanalyzers:\n", progname)
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(os.Stderr, "  -%s\n\t%s\n", a.Name, doc)
		}
		os.Exit(2)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		log.Fatal(err)
	}

	// Vet flag convention: naming any analyzer runs only the named
	// ones; naming none runs everything (minus explicit -name=false).
	explicitTrue := false
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) {
		if _, ok := enabled[f.Name]; ok {
			explicit[f.Name] = true
			if *enabled[f.Name] {
				explicitTrue = true
			}
		}
	})
	var selected []*analysis.Analyzer
	for _, a := range analyzers {
		switch {
		case explicitTrue && *enabled[a.Name]:
			selected = append(selected, a)
		case !explicitTrue && (!explicit[a.Name] || *enabled[a.Name]):
			selected = append(selected, a)
		}
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fs.Usage()
	}
	os.Exit(run(args[0], selected, *jsonOut))
}

// printVersion emits the executable-identity line `go vet` hashes
// into its build cache key: rebuilding the vettool with different
// code changes the line and invalidates cached vet results.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil)[:16])
}

// printFlags describes the tool's flags as the JSON array `go vet`
// expects, so analyzer-selection flags typed after `go vet` reach us.
func printFlags(analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := make([]jsonFlag, 0, len(analyzers)+1)
	flags = append(flags, jsonFlag{Name: "json", Bool: true, Usage: "emit diagnostics and suppression records as JSON"})
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: doc})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// run analyzes one compilation unit and returns the process exit
// code: 0 clean, 1 diagnostics or failure (JSON mode always exits 0;
// the records are the result).
func run(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// Merge every dependency's facts before any analysis, in sorted
	// path order so collisions (there should be none: entries are
	// namespaced by exporting package) resolve deterministically.
	registerFactTypes(analyzers)
	facts := NewFacts()
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, path)
	}
	sort.Strings(vetxPaths)
	for _, path := range vetxPaths {
		f, err := os.Open(cfg.PackageVetx[path])
		if err != nil {
			log.Fatalf("failed to read facts file for %s: %v", path, err)
		}
		err = facts.Decode(f)
		f.Close()
		if err != nil {
			log.Fatalf("failed to decode facts file for %s: %v", path, err)
		}
	}

	// The build tool expects a facts file for downstream units: this
	// unit's own exports plus a re-export of everything imported, so
	// facts flow transitively through direct dependencies.
	writeVetx := func() {
		if cfg.VetxOutput == "" {
			return
		}
		var buf bytes.Buffer
		if err := facts.Encode(&buf); err != nil {
			log.Fatalf("failed to encode facts: %v", err)
		}
		if err := os.WriteFile(cfg.VetxOutput, buf.Bytes(), 0o666); err != nil {
			log.Fatalf("failed to write facts file: %v", err)
		}
	}

	// Fact-only dependency units outside the tracked scope (the
	// standard library, mainly) originate no facts — re-exporting the
	// dependencies' tables is the complete answer, no parsing or
	// type-checking needed. That keeps `go vet` fast over the vast
	// untracked dependency graph.
	if cfg.VetxOnly && !detscope.Tracked(cfg.ImportPath) {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler will report it
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	// Resolve imports through the compiler's export data, exactly as
	// the build tool laid it out in the config.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatal(err)
	}

	// A tracked fact-only unit runs just the fact-producing analyzers
	// (and their prerequisites): downstream units need the facts, not
	// the diagnostics, which the unit's own full run reports.
	if cfg.VetxOnly {
		if producers := factProducers(analyzers); len(producers) > 0 {
			if _, err := AnalyzeWithFacts(producers, fset, files, pkg, info, facts); err != nil {
				log.Fatal(err)
			}
		}
		writeVetx()
		return 0
	}

	diags, err := AnalyzeWithFacts(analyzers, fset, files, pkg, info, facts)
	if err != nil {
		log.Fatal(err)
	}
	writeVetx()
	if jsonOut {
		printJSON(os.Stdout, cfg.ImportPath, fset, files, diags)
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Diagnostic.Pos), d.Diagnostic.Message, d.Analyzer.Name)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printJSON emits one structured record per unit: the diagnostics
// plus every simlint suppression annotation in force, so tooling (CI
// annotators, dashboards) sees both what fired and what was
// deliberately silenced — a suppression is a decision worth auditing,
// not an absence of signal.
func printJSON(w io.Writer, pkgPath string, fset *token.FileSet, files []*ast.File, diags []Finding) {
	type jsonDiag struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	type jsonSupp struct {
		File   string `json:"file"`
		Line   int    `json:"line"`
		Key    string `json:"key"`
		Reason string `json:"reason"`
	}
	out := struct {
		Package      string     `json:"package"`
		Findings     []jsonDiag `json:"findings"`
		Suppressions []jsonSupp `json:"suppressions"`
	}{Package: pkgPath, Findings: []jsonDiag{}, Suppressions: []jsonSupp{}}
	for _, d := range diags {
		pos := fset.Position(d.Diagnostic.Pos)
		out.Findings = append(out.Findings, jsonDiag{
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Analyzer: d.Analyzer.Name, Message: d.Diagnostic.Message,
		})
	}
	for _, n := range annotation.New(fset, files).All() {
		out.Suppressions = append(out.Suppressions, jsonSupp{File: n.File, Line: n.Line, Key: n.Key, Reason: n.Reason})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

// A Finding pairs a diagnostic with the analyzer that produced it.
type Finding struct {
	Analyzer   *analysis.Analyzer
	Diagnostic analysis.Diagnostic
}

// Analyze runs the analyzers (and, first, their transitive Requires)
// over one type-checked package and collects every diagnostic in
// file/position order, with a private fact store (facts cannot arrive
// from or survive to other units). Multi-unit drivers use
// AnalyzeWithFacts.
func Analyze(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Finding, error) {
	return AnalyzeWithFacts(analyzers, fset, files, pkg, info, NewFacts())
}

// AnalyzeWithFacts runs the analyzers (and, first, their transitive
// Requires) over one type-checked package and collects every
// diagnostic in file/position order. Fact imports resolve against
// facts, and exports land there — pass the same store across units
// (dependencies first) and cross-package facts flow exactly as they
// do through the vettool's .vetx files. It is the driver core shared
// by the vettool path and the analysistest harness.
func AnalyzeWithFacts(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *Facts) ([]Finding, error) {
	if facts == nil {
		facts = NewFacts()
	}
	type action struct {
		result any
		err    error
		done   bool
	}
	actions := make(map[*analysis.Analyzer]*action)
	var findings []Finding

	var exec func(a *analysis.Analyzer) *action
	exec = func(a *analysis.Analyzer) *action {
		act := actions[a]
		if act == nil {
			act = new(action)
			actions[a] = act
		}
		if act.done {
			return act
		}
		act.done = true
		inputs := make(map[*analysis.Analyzer]any)
		for _, req := range a.Requires {
			reqact := exec(req)
			if reqact.err != nil {
				act.err = fmt.Errorf("%s: failed prerequisite %s: %w", a.Name, req.Name, reqact.err)
				return act
			}
			inputs[req] = reqact.result
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			ResultOf:  inputs,
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, Finding{Analyzer: a, Diagnostic: d})
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				facts.exportObject(a, obj, fact)
			},
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				return facts.importObject(a, obj, fact)
			},
			ExportPackageFact: func(fact analysis.Fact) {
				facts.exportPackage(a, pkg.Path(), fact)
			},
			ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
				return facts.importPackage(a, p.Path(), fact)
			},
		}
		act.result, act.err = a.Run(pass)
		return act
	}
	for _, a := range analyzers {
		if act := exec(a); act.err != nil {
			return nil, act.err
		}
	}

	// Report in a stable order regardless of analyzer registration:
	// position first, then analyzer name, then message.
	sortFindings(fset, findings)
	return findings, nil
}

func sortFindings(fset *token.FileSet, findings []Finding) {
	less := func(x, y Finding) bool {
		px, py := fset.Position(x.Diagnostic.Pos), fset.Position(y.Diagnostic.Pos)
		if px.Filename != py.Filename {
			return px.Filename < py.Filename
		}
		if px.Offset != py.Offset {
			return px.Offset < py.Offset
		}
		if x.Analyzer.Name != y.Analyzer.Name {
			return x.Analyzer.Name < y.Analyzer.Name
		}
		return x.Diagnostic.Message < y.Diagnostic.Message
	}
	// Insertion sort: finding counts are tiny and the comparator is
	// only needed here.
	for i := 1; i < len(findings); i++ {
		for j := i; j > 0 && less(findings[j], findings[j-1]); j-- {
			findings[j], findings[j-1] = findings[j-1], findings[j]
		}
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
