// Package unit drives internal/analysis analyzers under the command
// protocol `go vet -vettool=...` speaks (the protocol implemented
// upstream by golang.org/x/tools/go/analysis/unitchecker):
//
//	simlint -V=full    describe the executable (for build caching)
//	simlint -flags     describe supported flags in JSON
//	simlint foo.cfg    analyze the compilation unit foo.cfg describes
//
// The build tool hands the unit over as a JSON config naming the Go
// files, the import map, and the export-data file of every
// dependency, so analysis here piggybacks on the compiler's type
// information instead of re-typechecking the world. Diagnostics go to
// stderr in the usual file:line:col form and make the process — and
// therefore `go vet` — exit nonzero.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// config mirrors the JSON compilation-unit description `go vet`
// writes (unitchecker.Config upstream). Fields the simlint suite
// does not consume are omitted; unknown JSON keys are ignored.
type config struct {
	ID                        string
	Compiler                  string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vettool built from the given
// analyzers. It terminates the process.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	// The build tool probes -V=full and -flags before any unit work;
	// answer those before general flag parsing.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion(progname)
			os.Exit(0)
		case "-flags", "--flags":
			printFlags(analyzers)
			os.Exit(0)
		}
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = fs.Bool(a.Name, false, doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-analyzer...] unit.cfg\n\nanalyzers:\n", progname)
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(os.Stderr, "  -%s\n\t%s\n", a.Name, doc)
		}
		os.Exit(2)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		log.Fatal(err)
	}

	// Vet flag convention: naming any analyzer runs only the named
	// ones; naming none runs everything (minus explicit -name=false).
	explicitTrue := false
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) {
		if _, ok := enabled[f.Name]; ok {
			explicit[f.Name] = true
			if *enabled[f.Name] {
				explicitTrue = true
			}
		}
	})
	var selected []*analysis.Analyzer
	for _, a := range analyzers {
		switch {
		case explicitTrue && *enabled[a.Name]:
			selected = append(selected, a)
		case !explicitTrue && (!explicit[a.Name] || *enabled[a.Name]):
			selected = append(selected, a)
		}
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fs.Usage()
	}
	os.Exit(run(args[0], selected))
}

// printVersion emits the executable-identity line `go vet` hashes
// into its build cache key: rebuilding the vettool with different
// code changes the line and invalidates cached vet results.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil)[:16])
}

// printFlags describes the tool's flags as the JSON array `go vet`
// expects, so analyzer-selection flags typed after `go vet` reach us.
func printFlags(analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := make([]jsonFlag, 0, len(analyzers))
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: doc})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// run analyzes one compilation unit and returns the process exit
// code: 0 clean, 1 diagnostics or failure.
func run(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// The build tool expects a facts file for downstream units.
	// Simlint analyzers export no facts, so for fact-only (VetxOnly)
	// dependency units an empty facts file is the complete answer —
	// no parsing or typechecking needed.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatalf("failed to write facts file: %v", err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler will report it
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	// Resolve imports through the compiler's export data, exactly as
	// the build tool laid it out in the config.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatal(err)
	}

	diags, err := Analyze(analyzers, fset, files, pkg, info)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Diagnostic.Pos), d.Diagnostic.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// A Finding pairs a diagnostic with the analyzer that produced it.
type Finding struct {
	Analyzer   *analysis.Analyzer
	Diagnostic analysis.Diagnostic
}

// Analyze runs the analyzers (and, first, their transitive Requires)
// over one type-checked package and collects every diagnostic in
// file/position order. It is the driver core shared by the vettool
// path and the analysistest harness.
func Analyze(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Finding, error) {
	type action struct {
		result any
		err    error
		done   bool
	}
	actions := make(map[*analysis.Analyzer]*action)
	var findings []Finding

	var exec func(a *analysis.Analyzer) *action
	exec = func(a *analysis.Analyzer) *action {
		act := actions[a]
		if act == nil {
			act = new(action)
			actions[a] = act
		}
		if act.done {
			return act
		}
		act.done = true
		inputs := make(map[*analysis.Analyzer]any)
		for _, req := range a.Requires {
			reqact := exec(req)
			if reqact.err != nil {
				act.err = fmt.Errorf("%s: failed prerequisite %s: %w", a.Name, req.Name, reqact.err)
				return act
			}
			inputs[req] = reqact.result
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			ResultOf:  inputs,
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, Finding{Analyzer: a, Diagnostic: d})
			},
		}
		act.result, act.err = a.Run(pass)
		return act
	}
	for _, a := range analyzers {
		if act := exec(a); act.err != nil {
			return nil, act.err
		}
	}

	// Report in a stable order regardless of analyzer registration:
	// position first, then analyzer name, then message.
	sortFindings(fset, findings)
	return findings, nil
}

func sortFindings(fset *token.FileSet, findings []Finding) {
	less := func(x, y Finding) bool {
		px, py := fset.Position(x.Diagnostic.Pos), fset.Position(y.Diagnostic.Pos)
		if px.Filename != py.Filename {
			return px.Filename < py.Filename
		}
		if px.Offset != py.Offset {
			return px.Offset < py.Offset
		}
		if x.Analyzer.Name != y.Analyzer.Name {
			return x.Analyzer.Name < y.Analyzer.Name
		}
		return x.Diagnostic.Message < y.Diagnostic.Message
	}
	// Insertion sort: finding counts are tiny and the comparator is
	// only needed here.
	for i := 1; i < len(findings); i++ {
		for j := i; j > 0 && less(findings[j], findings[j-1]); j-- {
			findings[j], findings[j-1] = findings[j-1], findings[j]
		}
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
