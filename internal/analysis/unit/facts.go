// Facts storage for the unit driver: the in-process table each
// analysis run reads and writes through the Pass fact hooks, plus the
// gob serialization that carries facts between compilation units
// through the .vetx files of the `go vet -vettool` protocol.
//
// Facts cross the package boundary by name, not by pointer: a fact on
// repro/internal/lib.Helper is serialized as ("callsummary",
// "repro/internal/lib", "Helper") and re-resolved when a downstream
// unit's type-check imports that package from export data. Only
// objects a downstream unit can name survive serialization —
// package-level objects and methods of package-level types; facts on
// anything else (locals, closures) remain visible within the unit
// that exported them, which is all an intra-package fixed point
// needs. Every unit re-exports the facts it imported, so a fact flows
// transitively: lib → core → kernel works even though kernel's unit
// only reads its direct dependencies' .vetx files.
package unit

import (
	"encoding/gob"
	"fmt"
	"go/types"
	"io"
	"reflect"
	"sort"

	"repro/internal/analysis"
)

// A Facts store holds every fact exported during a driver run plus
// the facts decoded from dependency units' .vetx files. One store is
// shared by all analyzers of a run; entries are namespaced by
// analyzer, so an analyzer only ever observes its own facts.
type Facts struct {
	// byObj resolves same-process lookups by object identity — the
	// fast path within a unit, and the only path for facts on objects
	// that have no cross-unit name.
	byObj map[objFactKey]analysis.Fact
	// byName resolves cross-unit lookups (and serialization): facts
	// keyed by analyzer, package path, and object path ("" names the
	// package itself).
	byName map[nameFactKey]analysis.Fact
}

type objFactKey struct {
	analyzer string
	obj      types.Object
}

type nameFactKey struct {
	analyzer string
	pkgPath  string
	object   string // "" = package fact
}

// NewFacts returns an empty store.
func NewFacts() *Facts {
	return &Facts{
		byObj:  make(map[objFactKey]analysis.Fact),
		byName: make(map[nameFactKey]analysis.Fact),
	}
}

// exportObject records fact against obj for analyzer a.
func (f *Facts) exportObject(a *analysis.Analyzer, obj types.Object, fact analysis.Fact) {
	if obj == nil || fact == nil {
		panic(fmt.Sprintf("%s: ExportObjectFact with nil object or fact", a.Name))
	}
	f.byObj[objFactKey{a.Name, obj}] = fact
	if path := objectPath(obj); path != "" && obj.Pkg() != nil {
		f.byName[nameFactKey{a.Name, obj.Pkg().Path(), path}] = fact
	}
}

// importObject copies the fact analyzer a attached to obj into dst,
// reporting whether a fact of dst's concrete type existed. Lookup
// tries object identity first (facts exported in this process), then
// the serialized name table (facts decoded from dependency units).
func (f *Facts) importObject(a *analysis.Analyzer, obj types.Object, dst analysis.Fact) bool {
	if obj == nil || dst == nil {
		panic(fmt.Sprintf("%s: ImportObjectFact with nil object or fact", a.Name))
	}
	if src, ok := f.byObj[objFactKey{a.Name, obj}]; ok && copyFact(dst, src) {
		return true
	}
	if path := objectPath(obj); path != "" && obj.Pkg() != nil {
		if src, ok := f.byName[nameFactKey{a.Name, obj.Pkg().Path(), path}]; ok && copyFact(dst, src) {
			return true
		}
	}
	return false
}

// exportPackage records fact against the package with the given path.
func (f *Facts) exportPackage(a *analysis.Analyzer, pkgPath string, fact analysis.Fact) {
	if fact == nil {
		panic(fmt.Sprintf("%s: ExportPackageFact with nil fact", a.Name))
	}
	f.byName[nameFactKey{a.Name, pkgPath, ""}] = fact
}

// importPackage copies analyzer a's fact for the package into dst.
func (f *Facts) importPackage(a *analysis.Analyzer, pkgPath string, dst analysis.Fact) bool {
	if dst == nil {
		panic(fmt.Sprintf("%s: ImportPackageFact with nil fact", a.Name))
	}
	src, ok := f.byName[nameFactKey{a.Name, pkgPath, ""}]
	return ok && copyFact(dst, src)
}

// copyFact copies src's value into dst when their concrete types
// match. A type mismatch is not an error: the store may hold a fact
// of a different concrete type under the same key, which simply does
// not answer this import.
func copyFact(dst, src analysis.Fact) bool {
	dv, sv := reflect.ValueOf(dst), reflect.ValueOf(src)
	if dv.Type() != sv.Type() || dv.Kind() != reflect.Pointer || dv.IsNil() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// objectPath names obj in a way a downstream unit can reproduce from
// export data: "Name" for package-level objects, "Type.Method" for
// methods of package-level named types, "" for everything else
// (which therefore cannot cross the unit boundary).
func objectPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if p, ok := types.Unalias(rt).(*types.Pointer); ok {
				rt = p.Elem()
			}
			named, ok := types.Unalias(rt).(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return ""
			}
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name()
	}
	return ""
}

// factRecord is the serialized form of one fact: who exported it,
// where it lives, and the gob-registered fact value itself.
type factRecord struct {
	Analyzer string
	PkgPath  string
	Object   string // "" = package fact
	Fact     analysis.Fact
}

// Encode writes the store's name-addressable facts — its own exports
// plus everything it imported, so downstream units see transitive
// facts through direct dependencies — as one deterministic gob
// stream, sorted by (analyzer, package, object).
func (f *Facts) Encode(w io.Writer) error {
	records := make([]factRecord, 0, len(f.byName))
	for k, fact := range f.byName { //simlint:unordered-ok records are sorted before encoding
		records = append(records, factRecord{Analyzer: k.analyzer, PkgPath: k.pkgPath, Object: k.object, Fact: fact})
	}
	sort.Slice(records, func(i, j int) bool {
		a, b := records[i], records[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		return a.Object < b.Object
	})
	return gob.NewEncoder(w).Encode(records)
}

// Decode merges one .vetx stream's records into the store. An empty
// stream (the facts file of a unit that exported nothing) is valid
// and merges nothing. Records naming objects that no longer resolve
// in the current type graph are harmless: they sit in the name table
// and never answer an import.
func (f *Facts) Decode(r io.Reader) error {
	var records []factRecord
	if err := gob.NewDecoder(r).Decode(&records); err != nil {
		if err == io.EOF {
			return nil // empty facts file
		}
		return err
	}
	for _, rec := range records {
		if rec.Fact == nil {
			continue
		}
		f.byName[nameFactKey{rec.Analyzer, rec.PkgPath, rec.Object}] = rec.Fact
	}
	return nil
}

// registerFactTypes makes every fact type declared by the analyzers
// (and their transitive requirements) known to gob, so Encode/Decode
// can carry them through interface-typed records.
func registerFactTypes(analyzers []*analysis.Analyzer) {
	seen := make(map[*analysis.Analyzer]bool)
	var visit func(a *analysis.Analyzer)
	visit = func(a *analysis.Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, ft := range a.FactTypes {
			gob.Register(ft)
		}
		for _, req := range a.Requires {
			visit(req)
		}
	}
	for _, a := range analyzers {
		visit(a)
	}
}

// factProducers filters the analyzers' transitive closure down to
// those that declare fact types — the set a fact-only (VetxOnly)
// dependency run must execute so downstream units see their facts.
func factProducers(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	seen := make(map[*analysis.Analyzer]bool)
	var out []*analysis.Analyzer
	var visit func(a *analysis.Analyzer)
	visit = func(a *analysis.Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, req := range a.Requires {
			visit(req)
		}
		if len(a.FactTypes) > 0 {
			out = append(out, a)
		}
	}
	for _, a := range analyzers {
		visit(a)
	}
	return out
}
