package unit

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// effectFact is the test's stand-in for an analyzer fact that crosses
// the unit boundary through a .vetx stream.
type effectFact struct{ N int }

func (*effectFact) AFact() {}

// otherFact shares no concrete type with effectFact; an import asking
// for it must not be answered by an effectFact under the same key.
type otherFact struct{ S string }

func (*otherFact) AFact() {}

func init() {
	gob.Register(&effectFact{})
	gob.Register(&otherFact{})
}

// typecheckLib parses and checks the fixture's upstream package from
// scratch. Calling it twice yields two object graphs with distinct
// identities for the same names — exactly the relationship between
// the unit that exported a fact and a downstream unit that re-imports
// the package from export data.
func typecheckLib(t *testing.T) *types.Package {
	t.Helper()
	const src = `package lib

type Meter struct{}

func (m *Meter) Read() int { return 0 }

func Stamp() int { return 1 }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "lib.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := (&types.Config{}).Check("fix/internal/lib", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func lookupFunc(t *testing.T, pkg *types.Package, path string) *types.Func {
	t.Helper()
	var obj types.Object
	if name, method, ok := strings.Cut(path, "."); ok {
		named := pkg.Scope().Lookup(name).(*types.TypeName).Type().(*types.Named)
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == method {
				obj = named.Method(i)
			}
		}
	} else {
		obj = pkg.Scope().Lookup(path)
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("fixture object %s is %T, want *types.Func", path, obj)
	}
	return fn
}

// TestFactsCrossUnitRoundTrip pins the .vetx fact path end to end at
// the store level: facts exported against one type graph, encoded,
// decoded into a fresh store (the downstream-only re-run: nothing in
// the identity table), and imported against a *different* type graph
// for the same package — plus the stale-record guarantee that a
// serialized fact naming an object the current graph cannot resolve
// merges harmlessly and never answers an import.
func TestFactsCrossUnitRoundTrip(t *testing.T) {
	az := &analysis.Analyzer{Name: "fx", Doc: "test", Run: func(*analysis.Pass) (interface{}, error) { return nil, nil }}
	libA := typecheckLib(t)

	up := NewFacts()
	up.exportObject(az, lookupFunc(t, libA, "Stamp"), &effectFact{N: 7})
	up.exportObject(az, lookupFunc(t, libA, "Meter.Read"), &effectFact{N: 3})
	up.exportPackage(az, libA.Path(), &effectFact{N: 99})
	// A stale record: the exporting unit knew an object that the
	// downstream unit's (newer) version of the package no longer has.
	up.byName[nameFactKey{az.Name, libA.Path(), "Removed"}] = &effectFact{N: 1}

	var vetx bytes.Buffer
	if err := up.Encode(&vetx); err != nil {
		t.Fatal(err)
	}

	// The downstream unit: a fresh store (no object identities carry
	// over between vet processes) and a freshly checked package whose
	// objects are distinct from libA's.
	down := NewFacts()
	if err := down.Decode(bytes.NewReader(vetx.Bytes())); err != nil {
		t.Fatal(err)
	}
	libB := typecheckLib(t)

	var got effectFact
	if !down.importObject(az, lookupFunc(t, libB, "Stamp"), &got) || got.N != 7 {
		t.Errorf("Stamp fact after round trip = %+v, %v; want N=7 via the name table", got, got.N == 7)
	}
	if !down.importObject(az, lookupFunc(t, libB, "Meter.Read"), &got) || got.N != 3 {
		t.Errorf("Meter.Read fact after round trip = %+v; want N=3", got)
	}
	var pf effectFact
	if !down.importPackage(az, libB.Path(), &pf) || pf.N != 99 {
		t.Errorf("package fact after round trip = %+v; want N=99", pf)
	}

	// Namespacing: the same object under a different analyzer name has
	// no fact.
	other := &analysis.Analyzer{Name: "fy", Doc: "test", Run: az.Run}
	if down.importObject(other, lookupFunc(t, libB, "Stamp"), &got) {
		t.Error("fact leaked across analyzer namespaces")
	}
	// Type discipline: a fact of one concrete type never answers an
	// import asking for another.
	var of otherFact
	if down.importObject(az, lookupFunc(t, libB, "Stamp"), &of) {
		t.Error("effectFact answered an otherFact import")
	}

	// The stale "Removed" record survived the merge without harm: it is
	// present in the name table but no resolvable object reaches it.
	if _, ok := down.byName[nameFactKey{az.Name, libB.Path(), "Removed"}]; !ok {
		t.Error("stale record was dropped at decode; it should merge inert")
	}
	for key := range down.byObj {
		t.Errorf("decode populated the identity table: %v", key)
	}
}

// TestFactsDecodeEmptyStream pins the empty-.vetx convention: a unit
// that exported nothing writes an empty file, and decoding it is a
// no-op, not an error.
func TestFactsDecodeEmptyStream(t *testing.T) {
	f := NewFacts()
	if err := f.Decode(bytes.NewReader(nil)); err != nil {
		t.Fatalf("Decode(empty) = %v, want nil", err)
	}
	if len(f.byName) != 0 {
		t.Errorf("Decode(empty) merged %d records", len(f.byName))
	}
}

// TestFactsEncodeDeterministic pins the byte-determinism of the .vetx
// stream: same facts, same bytes, regardless of map iteration order.
func TestFactsEncodeDeterministic(t *testing.T) {
	az := &analysis.Analyzer{Name: "fx", Doc: "test", Run: func(*analysis.Pass) (interface{}, error) { return nil, nil }}
	build := func() []byte {
		f := NewFacts()
		for i := 0; i < 32; i++ {
			f.exportPackage(az, fmt.Sprintf("fix/p%02d", i), &effectFact{N: i})
		}
		var buf bytes.Buffer
		if err := f.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Error("two encodings of the same facts differ")
	}
}
