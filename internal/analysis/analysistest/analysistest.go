// Package analysistest runs internal/analysis analyzers over small
// fixture packages and checks their diagnostics against expectations
// written in the fixture source, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest convention:
//
//	ctx.Syscall("sendot") // want `unknown syscall name "sendot"`
//
// Fixtures live in a GOPATH-shaped tree, testdata/src/<importpath>/,
// and are resolved with an empty GOROOT: an import of "time" or
// "math/rand" inside a fixture binds to the fixture's own miniature
// stub package, never the real standard library, so suites stay
// hermetic, offline, and fast.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/unit"
)

// TestData returns the absolute path of the calling test's testdata
// directory, the conventional fixture root.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package, runs the analyzer, and reports any
// mismatch between produced diagnostics and the fixtures' `// want`
// expectations as test errors.
//
// Facts flow between fixture packages exactly as they do between the
// vettool's compilation units: before a package is checked, every
// fixture package it (transitively) imports has the suite's
// fact-producing analyzers run over it against one shared store, so a
// fixture in a/internal/kernel observes facts exported from
// a/internal/lib. Diagnostics from those dependency runs are
// discarded; only packages named in paths have their `// want`
// expectations checked.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	if err := analysis.Validate([]*analysis.Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	ld := newLoader(testdata)
	facts := unit.NewFacts()
	producers := factProducers(a)
	factsDone := make(map[string]bool)
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		// Dependency-first fact pass: ld.order lists every loaded
		// package in import post-order, so by the time the target is
		// analyzed its dependencies' facts are in the store.
		for _, dep := range ld.order {
			if dep == path || factsDone[dep] || len(producers) == 0 {
				continue
			}
			factsDone[dep] = true
			dp := ld.pkgs[dep]
			if _, err := unit.AnalyzeWithFacts(producers, ld.fset, dp.files, dp.types, ld.info, facts); err != nil {
				t.Errorf("computing facts for %s: %v", dep, err)
			}
		}
		findings, err := unit.AnalyzeWithFacts([]*analysis.Analyzer{a}, ld.fset, pkg.files, pkg.types, ld.info, facts)
		if err != nil {
			t.Errorf("analyzing %s: %v", path, err)
			continue
		}
		factsDone[path] = true
		checkWants(t, ld.fset, pkg.files, findings)
	}
}

// factProducers returns the fact-declaring analyzers in a's
// transitive Requires closure (including a itself), the set that must
// run over dependency fixtures for their facts to exist.
func factProducers(a *analysis.Analyzer) []*analysis.Analyzer {
	seen := make(map[*analysis.Analyzer]bool)
	var out []*analysis.Analyzer
	var visit func(x *analysis.Analyzer)
	visit = func(x *analysis.Analyzer) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, req := range x.Requires {
			visit(req)
		}
		if len(x.FactTypes) > 0 {
			out = append(out, x)
		}
	}
	visit(a)
	return out
}

// A want is one expectation comment: a line that must receive a
// diagnostic matching rx.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// wantRE captures the expectation list of a `// want` comment.
var wantRE = regexp.MustCompile(`(?://|/\*)\s*want\s+(.*)`)

// checkWants matches findings against the fixtures' expectations.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, findings []unit.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSuffix(strings.TrimSpace(m[1]), "*/")
				for rest != "" {
					rx, tail, err := cutPattern(rest)
					if err != nil {
						t.Errorf("%s: bad want comment: %v", pos, err)
						break
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
					rest = strings.TrimSpace(tail)
				}
			}
		}
	}

	for _, f := range findings {
		pos := fset.Position(f.Diagnostic.Pos)
		msg := f.Diagnostic.Message
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(msg) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, msg)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// cutPattern pops one quoted or backquoted regexp off the front of a
// want list.
func cutPattern(s string) (*regexp.Regexp, string, error) {
	if s == "" || (s[0] != '"' && s[0] != '`') {
		return nil, "", fmt.Errorf("expected quoted regexp, got %q", s)
	}
	quote := s[0]
	end := -1
	for i := 1; i < len(s); i++ {
		if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
			end = i
			break
		}
	}
	if end < 0 {
		return nil, "", fmt.Errorf("unterminated pattern %q", s)
	}
	lit := s[:end+1]
	text, err := strconv.Unquote(lit)
	if err != nil {
		return nil, "", fmt.Errorf("cannot unquote %s: %v", lit, err)
	}
	rx, err := regexp.Compile(text)
	if err != nil {
		return nil, "", fmt.Errorf("bad regexp %s: %v", lit, err)
	}
	return rx, s[end+1:], nil
}

// loader type-checks GOPATH-shaped fixture trees from source,
// memoizing packages so shared stubs (a fixture "time") check once.
type loader struct {
	ctxt build.Context
	fset *token.FileSet
	info *types.Info
	pkgs map[string]*fixturePkg
	// order records successfully loaded packages in import post-order
	// (dependencies before importers) — the order fact passes run in.
	order []string
}

type fixturePkg struct {
	types *types.Package
	files []*ast.File
}

func newLoader(testdata string) *loader {
	ctxt := build.Default
	// An empty GOROOT keeps resolution in pure GOPATH mode: the
	// module-aware `go list` fallback declines to run, stdlib import
	// paths bind to fixture stubs, and everything resolves offline.
	ctxt.GOROOT = ""
	ctxt.GOPATH = testdata
	ctxt.CgoEnabled = false
	ctxt.Dir = ""
	return &loader{
		ctxt: ctxt,
		fset: token.NewFileSet(),
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Instances:  make(map[*ast.Ident]types.Instance),
			Scopes:     make(map[ast.Node]*types.Scope),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
		pkgs: make(map[string]*fixturePkg),
	}
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return p, nil
	}
	if path == "unsafe" {
		p := &fixturePkg{types: types.Unsafe}
		l.pkgs[path] = p
		return p, nil
	}
	l.pkgs[path] = nil // cycle marker

	bp, err := l.ctxt.Import(path, "", 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(bp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			p, err := l.load(imp)
			if err != nil {
				return nil, err
			}
			return p.types, nil
		}),
	}
	tpkg, err := conf.Check(path, l.fset, files, l.info)
	if err != nil {
		return nil, err
	}
	p := &fixturePkg{types: tpkg, files: files}
	l.pkgs[path] = p
	l.order = append(l.order, path)
	return p, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
