// Package analysis is a self-contained reimplementation of the core
// of golang.org/x/tools/go/analysis, built on the standard library
// only. The repo's determinism and billing-integrity invariants (no
// map-iteration order leaks, no wall-clock reads, no discarded guest
// errnos, a closed syscall namespace) are enforced by custom
// analyzers in internal/analysis/passes; this package gives them the
// standard Analyzer/Pass/Diagnostic shape so they stay portable to
// the upstream framework, and internal/analysis/unit drives them
// under the `go vet -vettool` protocol.
//
// Only the subset the simlint suite needs is implemented: named
// analyzers with doc strings, optional Requires dependencies whose
// results flow through Pass.ResultOf, and position-carrying
// diagnostics. Facts (cross-package information flow) are not
// supported; every simlint analyzer is a single-unit check.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name for selection on the
// command line, documentation, optional prerequisite analyzers, and
// the Run function that inspects a package and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in CLI flags and diagnostics. It
	// must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation. The first line is used as
	// a summary in flag listings.
	Doc string

	// Requires lists analyzers whose results this analyzer consumes
	// via Pass.ResultOf. The graph must be acyclic.
	Requires []*Analyzer

	// Run inspects the package described by pass and reports
	// diagnostics through pass.Report. The returned value is made
	// available to dependents via ResultOf.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass describes one analyzer's single unit of work: one package,
// parsed and type-checked.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer

	// Fset maps positions for Files.
	Fset *token.FileSet

	// Files is the package's parsed syntax, comments included.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds type information for Files.
	TypesInfo *types.Info

	// ResultOf maps each analyzer in Analyzer.Requires to its result
	// for this package.
	ResultOf map[*Analyzer]any

	// Report delivers one diagnostic. The driver supplies it.
	Report func(Diagnostic)
}

func (p *Pass) String() string {
	return fmt.Sprintf("%s@%s", p.Analyzer.Name, p.Pkg.Path())
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message, plus an
// optional category for grouping.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: zero means unknown
	Category string    // optional
	Message  string
}

// Validate checks that the analyzers are well formed: non-empty
// distinct names, non-nil Run functions, and an acyclic Requires
// graph. Drivers call it before running anything.
func Validate(analyzers []*Analyzer) error {
	names := make(map[string]bool)
	// Colors for the cycle walk: missing = white, false = in
	// progress (grey), true = done (black).
	state := make(map[*Analyzer]bool)
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		if a == nil {
			return fmt.Errorf("analysis: nil analyzer in Requires graph")
		}
		if done, seen := state[a]; seen {
			if !done {
				return fmt.Errorf("analysis: cycle through analyzer %q", a.Name)
			}
			return nil
		}
		state[a] = false
		if a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name")
		}
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q has nil Run", a.Name)
		}
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[a] = true
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return err
		}
		if names[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	return nil
}
