// Package analysis is a self-contained reimplementation of the core
// of golang.org/x/tools/go/analysis, built on the standard library
// only. The repo's determinism and billing-integrity invariants (no
// map-iteration order leaks, no wall-clock reads, no discarded guest
// errnos, a closed syscall namespace) are enforced by custom
// analyzers in internal/analysis/passes; this package gives them the
// standard Analyzer/Pass/Diagnostic shape so they stay portable to
// the upstream framework, and internal/analysis/unit drives them
// under the `go vet -vettool` protocol.
//
// Only the subset the simlint suite needs is implemented: named
// analyzers with doc strings, optional Requires dependencies whose
// results flow through Pass.ResultOf, position-carrying diagnostics,
// and facts — typed values an analyzer attaches to objects or
// packages in one compilation unit and reads back when analyzing a
// downstream unit. Facts are what make an analyzer modular: the
// callsummary pass records per-function transitive effects
// (wall-clock reads, float arithmetic, goroutine spawns) as facts,
// and the unit driver carries them across package boundaries through
// the .vetx files of the `go vet -vettool` protocol, so a violation
// buried two packages below the deterministic scope still surfaces
// at the call site inside it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// An Analyzer is one static check: a name for selection on the
// command line, documentation, optional prerequisite analyzers, and
// the Run function that inspects a package and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in CLI flags and diagnostics. It
	// must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation. The first line is used as
	// a summary in flag listings.
	Doc string

	// Requires lists analyzers whose results this analyzer consumes
	// via Pass.ResultOf. The graph must be acyclic.
	Requires []*Analyzer

	// FactTypes lists the concrete Fact types this analyzer exports
	// or imports, as typed nil pointers (e.g. (*EffectFact)(nil)).
	// Declaring a fact type is what opts the analyzer into the
	// cross-package protocol: the driver runs fact-declaring analyzers
	// on dependency units too (the VetxOnly runs `go vet` schedules)
	// and serializes their facts into the unit's .vetx file. Each type
	// must be a pointer to a gob-encodable struct; the driver
	// registers it with encoding/gob.
	FactTypes []Fact

	// Run inspects the package described by pass and reports
	// diagnostics through pass.Report. The returned value is made
	// available to dependents via ResultOf.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass describes one analyzer's single unit of work: one package,
// parsed and type-checked.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer

	// Fset maps positions for Files.
	Fset *token.FileSet

	// Files is the package's parsed syntax, comments included.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds type information for Files.
	TypesInfo *types.Info

	// ResultOf maps each analyzer in Analyzer.Requires to its result
	// for this package.
	ResultOf map[*Analyzer]any

	// Report delivers one diagnostic. The driver supplies it.
	Report func(Diagnostic)

	// ExportObjectFact attaches fact to obj for downstream units.
	// Facts survive the package boundary only on objects a downstream
	// unit can name through export data: package-level objects and
	// methods of package-level types. Facts on anything else stay
	// visible within the current unit. The analyzer must declare the
	// fact's type in FactTypes. The driver supplies the hook.
	ExportObjectFact func(obj types.Object, fact Fact)

	// ImportObjectFact copies into fact the fact of the same concrete
	// type this analyzer attached to obj in an earlier unit (or
	// earlier in this one), reporting whether one existed. The driver
	// supplies the hook.
	ImportObjectFact func(obj types.Object, fact Fact) bool

	// ExportPackageFact attaches fact to the current package.
	ExportPackageFact func(fact Fact)

	// ImportPackageFact copies into fact the fact of the same
	// concrete type this analyzer attached to pkg, reporting whether
	// one existed.
	ImportPackageFact func(pkg *types.Package, fact Fact) bool
}

// A Fact is a typed value an analyzer attaches to an object or a
// package in one compilation unit and imports in another. Concrete
// fact types implement the marker method and must be gob-encodable
// pointers; each analyzer sees only its own facts, so two analyzers
// may use the same concrete type without interference.
type Fact interface {
	AFact() // marker method
}

// An ObjectFact is one exported (object, fact) pair, as enumerated by
// drivers when serializing a unit's facts.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// A PackageFact is one exported (package, fact) pair.
type PackageFact struct {
	Package *types.Package
	Fact    Fact
}

func (p *Pass) String() string {
	return fmt.Sprintf("%s@%s", p.Analyzer.Name, p.Pkg.Path())
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message, plus an
// optional category for grouping.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: zero means unknown
	Category string    // optional
	Message  string
}

// Validate checks that the analyzers are well formed: non-empty
// distinct names, non-nil Run functions, and an acyclic Requires
// graph. Drivers call it before running anything.
func Validate(analyzers []*Analyzer) error {
	names := make(map[string]bool)
	// Colors for the cycle walk: missing = white, false = in
	// progress (grey), true = done (black).
	state := make(map[*Analyzer]bool)
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		if a == nil {
			return fmt.Errorf("analysis: nil analyzer in Requires graph")
		}
		if done, seen := state[a]; seen {
			if !done {
				return fmt.Errorf("analysis: cycle through analyzer %q", a.Name)
			}
			return nil
		}
		state[a] = false
		if a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name")
		}
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q has nil Run", a.Name)
		}
		for _, ft := range a.FactTypes {
			if ft == nil {
				return fmt.Errorf("analysis: analyzer %q declares a nil fact type", a.Name)
			}
			if reflect.TypeOf(ft).Kind() != reflect.Pointer {
				return fmt.Errorf("analysis: analyzer %q fact type %T is not a pointer", a.Name, ft)
			}
		}
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[a] = true
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return err
		}
		if names[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	return nil
}
