// Package annotation parses simlint suppression comments. A finding
// is suppressed by a justified annotation on the offending line or
// the line directly above it:
//
//	//simlint:unordered-ok close order is commutative: each close
//	// wakes an independent parked goroutine
//	for _, t := range m.tasks {
//
// The justification is mandatory: an annotation without one is itself
// reported by the analyzers, so every suppression in the tree carries
// its reasoning next to the code it excuses.
package annotation

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Prefix opens every simlint annotation comment.
const Prefix = "simlint:"

// A Note is one parsed annotation: its key (e.g. "unordered-ok"),
// the justification text that followed it, and the file and line it
// sits on.
type Note struct {
	Key    string
	Reason string
	File   string
	Line   int
}

// An Index holds every simlint annotation in a package, addressable
// by file and line.
type Index struct {
	fset *token.FileSet
	// byFileLine keys on token.File name + line so lookups need only
	// a position.
	byFileLine map[string]map[int][]Note
}

// New scans the files' comments and builds the package's index.
func New(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{fset: fset, byFileLine: make(map[string]map[int][]Note)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments are never annotations
				}
				text = strings.TrimLeft(text, " \t")
				text, ok = strings.CutPrefix(text, Prefix)
				if !ok {
					continue
				}
				key, reason, _ := strings.Cut(text, " ")
				pos := fset.Position(c.Pos())
				n := Note{Key: key, Reason: strings.TrimSpace(reason), File: pos.Filename, Line: pos.Line}
				lines := ix.byFileLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]Note)
					ix.byFileLine[pos.Filename] = lines
				}
				lines[n.Line] = append(lines[n.Line], n)
			}
		}
	}
	return ix
}

// All returns every annotation in the package, ordered by file, line,
// and key — the suppression inventory the driver's JSON mode reports
// alongside diagnostics.
func (ix *Index) All() []Note {
	var out []Note
	//simlint:unordered-ok notes are fully sorted below
	for _, lines := range ix.byFileLine {
		//simlint:unordered-ok notes are fully sorted below
		for _, notes := range lines {
			out = append(out, notes...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// At returns the annotation with the given key attached to pos: on
// the same line (a trailing comment) or on the line directly above.
func (ix *Index) At(pos token.Pos, key string) (Note, bool) {
	p := ix.fset.Position(pos)
	lines := ix.byFileLine[p.Filename]
	if lines == nil {
		return Note{}, false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, n := range lines[line] {
			if n.Key == key {
				return n, true
			}
		}
	}
	return Note{}, false
}
