// Package detscope decides which packages are inside the simulator's
// deterministic core — the code whose every observable effect must be
// a pure function of the seed, because ledgers, goldens, and the
// chaos subsystem's bit-for-bit replay guarantee are computed there.
// The mapiter and wallclock analyzers only fire inside this scope;
// CLI frontends, examples, and the cpumeter timing wrappers live
// outside it and may touch the wall clock freely.
package detscope

import "strings"

// deterministic lists the package-path tails of the deterministic
// core. Matching by tail rather than full path keeps the predicate
// independent of the module name, which also lets analyzer testdata
// packages (e.g. "a/internal/kernel") opt in naturally.
var deterministic = []string{
	"internal/kernel",
	"internal/cluster",
	"internal/device",
	"internal/metering",
	"internal/experiments",
	"internal/sim",
	"internal/guest",
}

// billing lists the package-path tails of the billing scope: the
// subset of the deterministic core whose arithmetic lands in ledgers
// and replayed bills, where floatdet forbids float computation. The
// detector/report/textplot layers sit outside it and may render
// percentages freely.
var billing = []string{
	"internal/kernel",
	"internal/cluster",
	"internal/device",
	"internal/metering",
}

// Deterministic reports whether the import path names a package in
// the deterministic core. Test binaries for such a package (go vet
// analyzes "pkg [pkg.test]" and "pkg_test [pkg.test]" units too)
// count: golden files and replay assertions are produced there.
func Deterministic(path string) bool {
	return matchTail(path, deterministic)
}

// Billing reports whether the import path names a package in the
// billing scope, floatdet's narrower slice of the deterministic core.
func Billing(path string) bool {
	return matchTail(path, billing)
}

// Tracked reports whether the callsummary facts pass summarizes the
// package: any package with an "internal" path segment — the module's
// own helper layers plus analyzer fixture trees — but never the
// standard library. Effects (wall-clock reads, float arithmetic,
// goroutine spawns) propagate as facts only out of tracked packages;
// root APIs like time.Now are recognized directly at call sites, so
// stdlib units need no summaries and the driver can skip type-checking
// them entirely on fact-only runs.
func Tracked(path string) bool {
	path = normalize(path)
	if path == "internal" || strings.HasPrefix(path, "internal/") {
		return true
	}
	return strings.Contains(path, "/internal/") || strings.HasSuffix(path, "/internal")
}

func matchTail(path string, tails []string) bool {
	path = normalize(path)
	for _, tail := range tails {
		if path == tail || strings.HasSuffix(path, "/"+tail) {
			return true
		}
	}
	return false
}

// normalize strips the unit decorations go vet adds: a test variant's
// path looks like "repro/internal/kernel [repro/internal/kernel.test]";
// the external-test package is "repro/internal/kernel_test [...]".
func normalize(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}
