// Package detscope decides which packages are inside the simulator's
// deterministic core — the code whose every observable effect must be
// a pure function of the seed, because ledgers, goldens, and the
// chaos subsystem's bit-for-bit replay guarantee are computed there.
// The mapiter and wallclock analyzers only fire inside this scope;
// CLI frontends, examples, and the cpumeter timing wrappers live
// outside it and may touch the wall clock freely.
package detscope

import "strings"

// deterministic lists the package-path tails of the deterministic
// core. Matching by tail rather than full path keeps the predicate
// independent of the module name, which also lets analyzer testdata
// packages (e.g. "a/internal/kernel") opt in naturally.
var deterministic = []string{
	"internal/kernel",
	"internal/cluster",
	"internal/device",
	"internal/metering",
	"internal/experiments",
	"internal/sim",
	"internal/guest",
}

// Deterministic reports whether the import path names a package in
// the deterministic core. Test binaries for such a package (go vet
// analyzes "pkg [pkg.test]" and "pkg_test [pkg.test]" units too)
// count: golden files and replay assertions are produced there.
func Deterministic(path string) bool {
	// A test variant's path looks like "repro/internal/kernel
	// [repro/internal/kernel.test]"; the external-test package is
	// "repro/internal/kernel_test [...]". Normalize both.
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, "_test")
	for _, tail := range deterministic {
		if path == tail || strings.HasSuffix(path, "/"+tail) {
			return true
		}
	}
	return false
}
