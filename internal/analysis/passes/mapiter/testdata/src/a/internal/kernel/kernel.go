// Package kernel is a mapiter fixture on a deterministic import path.
package kernel

func flagged(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m has nondeterministic iteration order`
		keys = append(keys, k)
	}
	return keys
}

func annotated(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	//simlint:unordered-ok map-to-map copy; insertion order cannot be observed
	for k, v := range m {
		out[k] = v
	}
	return out
}

func unjustified(m map[string]int) int {
	n := 0
	//simlint:unordered-ok
	for k := range m { // want `annotation needs a justification`
		n += len(k)
	}
	return n
}

func lenOnly(m map[string]int) int {
	n := 0
	for range m { // observes only len(m): no order to leak
		n++
	}
	return n
}

func sliceRange(s []string) int {
	n := 0
	for _, v := range s { // slices iterate in index order: fine
		n += len(v)
	}
	return n
}
