// Package tool sits outside the deterministic scope; map ranges here
// must produce no findings.
package tool

func Flags(m map[string]bool) int {
	n := 0
	for k, v := range m {
		if v {
			n += len(k)
		}
	}
	return n
}
