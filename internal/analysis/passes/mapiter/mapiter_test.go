package mapiter_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/mapiter"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mapiter.Analyzer,
		"a/internal/kernel", "a/cmd/tool")
}
