// Package mapiter defines the simlint analyzer that forbids ranging
// over maps inside the simulator's deterministic core. Go randomizes
// map iteration order per run, so a `for … range someMap` whose body
// has any observable effect — appending to a slice, firing events,
// writing a ledger — is exactly the bug class that survives every
// unit test and then diverges a golden replay three PRs later.
//
// Loops whose order provably cannot leak (closing a set of channels,
// copying into another map, counting) are suppressed one by one with
// a justified annotation:
//
//	//simlint:unordered-ok each close wakes an independent goroutine
//	for _, t := range m.tasks {
package mapiter

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/annotation"
	"repro/internal/analysis/detscope"
)

// Key is the annotation that suppresses a finding, e.g.
// `//simlint:unordered-ok <why>`.
const Key = "unordered-ok"

// Analyzer flags range-over-map statements in deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flag range over a map in the deterministic core\n\n" +
		"Map iteration order is randomized per run; inside the packages that\n" +
		"must replay bit-for-bit it may only be used under a justified\n" +
		"//simlint:unordered-ok annotation, or after sorting the keys.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !detscope.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	notes := annotation.New(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv := pass.TypesInfo.TypeOf(rs.X)
			if tv == nil {
				return true
			}
			if _, isMap := tv.Underlying().(*types.Map); !isMap {
				return true
			}
			if rs.Key == nil && rs.Value == nil {
				// `for range m {}` observes only len(m): no order to leak.
				return true
			}
			if note, ok := notes.At(rs.For, Key); ok {
				if note.Reason == "" {
					pass.Reportf(rs.For, "simlint:%s annotation needs a justification after the key", Key)
				}
				return true
			}
			pass.Reportf(rs.For, "range over map %s has nondeterministic iteration order in a deterministic package; sort the keys or annotate //simlint:%s <why>",
				types.ExprString(rs.X), Key)
			return true
		})
	}
	return nil, nil
}
