package errnocheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/errnocheck"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errnocheck.Analyzer, "a/app")
}
