// Package errnocheck defines the simlint analyzer that flags guest
// syscall and network calls whose error result is discarded. Since
// the chaos subsystem landed, guest.Context.Syscall, NetSend,
// NetForward, NetRecv and the retry wrappers all report injected
// errnos; a call site that drops the error turns an injected fault
// into silence — the kernel billed the failed request, the guest
// behaved as if it succeeded, and the discrepancy surfaces (if ever)
// as an unexplained golden diff. Deliberate discards — flood senders
// whose drops are the experiment, modeled programs that genuinely
// don't check — carry a justified annotation:
//
//	//simlint:errno-ok flood source: delivery failure is the scenario
//	ctx.NetSend(f)
package errnocheck

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/annotation"
	"repro/internal/analysis/passes/guestapi"
)

// Key is the annotation that suppresses a finding, e.g.
// `//simlint:errno-ok <why>`.
const Key = "errno-ok"

// contextMethods are the error-returning guest.Context methods.
var contextMethods = map[string]bool{
	"Syscall":    true,
	"NetSend":    true,
	"NetForward": true,
	"NetRecv":    true,
}

// wrapperFuncs are the error-returning package-level retry wrappers.
var wrapperFuncs = map[string]bool{
	"SendRetry":    true,
	"ForwardRetry": true,
	"RecvRetry":    true,
	"SyscallRetry": true,
}

// Analyzer flags discarded errors from the guest syscall/net surface.
var Analyzer = &analysis.Analyzer{
	Name: "errnocheck",
	Doc: "flag discarded errors from guest.Context syscalls and net calls\n\n" +
		"An ignored errno from Syscall/NetSend/NetForward/NetRecv or a retry\n" +
		"wrapper silently swallows an injected fault. Handle the error or\n" +
		"annotate the discard with //simlint:errno-ok <why>.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	notes := annotation.New(pass.Fset, pass.Files)

	report := func(n ast.Node, call *ast.CallExpr, how string) {
		fn := guestapi.Callee(pass.TypesInfo, call)
		if fn == nil {
			return
		}
		target := ""
		switch {
		case contextMethods[fn.Name()] && guestapi.IsContextMethod(fn, fn.Name()):
			target = "guest.Context." + fn.Name()
		case wrapperFuncs[fn.Name()] && guestapi.IsGuestFunc(fn, fn.Name()):
			target = "guest." + fn.Name()
		default:
			return
		}
		if note, ok := notes.At(n.Pos(), Key); ok {
			if note.Reason == "" {
				pass.Reportf(n.Pos(), "simlint:%s annotation needs a justification after the key", Key)
			}
			return
		}
		pass.Reportf(n.Pos(), "%s error from %s: an injected fault would vanish here; handle the error or annotate //simlint:%s <why>", how, target, Key)
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					report(stmt, call, "discarded")
				}
			case *ast.GoStmt:
				report(stmt, stmt.Call, "unobservable")
			case *ast.DeferStmt:
				report(stmt, stmt.Call, "unobservable")
			case *ast.AssignStmt:
				// `a, _ := call()` — the error is always the final
				// result, so a blank in the last position discards it.
				if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
					if call, ok := stmt.Rhs[0].(*ast.CallExpr); ok && isBlank(stmt.Lhs[len(stmt.Lhs)-1]) {
						report(stmt, call, "discarded")
					}
					return true
				}
				for i, rhs := range stmt.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok && i < len(stmt.Lhs) && isBlank(stmt.Lhs[i]) {
						report(stmt, call, "discarded")
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
