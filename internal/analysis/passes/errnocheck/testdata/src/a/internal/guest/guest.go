// Package guest is a miniature stub of the real guest surface — just
// the error-returning calls the errnocheck fixtures exercise. The
// analyzer recognizes it by the package-path tail, the Context
// receiver name, and the method/wrapper names.
package guest

type Frame struct {
	Dst  int
	Flow uint32
}

type Context interface {
	Syscall(name string) error
	NetSend(f Frame) (bool, error)
	NetForward(f Frame) (bool, error)
	NetRecv() (Frame, bool, error)
}

func SendRetry(ctx Context, f Frame, budget int64) error {
	_, err := ctx.NetSend(f)
	return err
}

func SyscallRetry(ctx Context, name string, budget int64) error {
	return ctx.Syscall(name)
}
