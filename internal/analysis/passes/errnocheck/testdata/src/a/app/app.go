// Package app exercises every discard shape errnocheck flags, plus
// the handled, annotated, and lookalike cases it must leave alone.
package app

import "a/internal/guest"

func flagged(ctx guest.Context) {
	ctx.Syscall("read")              // want `discarded error from guest.Context.Syscall`
	ctx.NetSend(guest.Frame{Dst: 1}) // want `discarded error from guest.Context.NetSend`
	f, _, _ := ctx.NetRecv()         // want `discarded error from guest.Context.NetRecv`
	_ = f
	go ctx.Syscall("write")                  // want `unobservable error from guest.Context.Syscall`
	defer ctx.NetForward(guest.Frame{})      // want `unobservable error from guest.Context.NetForward`
	guest.SendRetry(ctx, guest.Frame{}, 100) // want `discarded error from guest.SendRetry`
	_ = guest.SyscallRetry(ctx, "read", 100) // want `discarded error from guest.SyscallRetry`
}

func handled(ctx guest.Context) error {
	if err := ctx.Syscall("read"); err != nil {
		return err
	}
	ok, err := ctx.NetSend(guest.Frame{Dst: 1})
	if !ok || err != nil {
		return err
	}
	return guest.SendRetry(ctx, guest.Frame{}, 8)
}

func annotated(ctx guest.Context) {
	//simlint:errno-ok flood source: delivery failure is the scenario
	ctx.NetSend(guest.Frame{Dst: 2})
}

func unjustified(ctx guest.Context) {
	//simlint:errno-ok
	ctx.Syscall("read") // want `annotation needs a justification`
}

type localCtx struct{}

func (localCtx) Syscall(string) error { return nil }

func lookalike() {
	var c localCtx
	c.Syscall("read") // not the guest surface: no finding
}
