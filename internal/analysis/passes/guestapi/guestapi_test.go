package guestapi

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// mapImporter resolves fixture imports from previously typechecked
// packages, so the test needs no GOPATH tree and no export data.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("unknown import %q", path)
}

// check typechecks one in-memory file as package path and returns the
// package plus the use/selection info the resolver consumes.
func check(t *testing.T, fset *token.FileSet, path, src string, deps mapImporter) (*types.Package, *types.Info, *ast.File) {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: deps}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, info, f
}

const guestSrc = `package guest

type Frame struct{ Dst uint16 }

type Context interface {
	Sleep(cycles int64)
	NetSend(f Frame) error
}

func MustSend(ctx Context, f Frame) { ctx.NetSend(f) }
`

// concreteGuestSrc declares a *concrete* Context with a pointer
// receiver in a differently rooted guest package: matching is by path
// tail and receiver type name, not by the module's own import path or
// interface-ness.
const concreteGuestSrc = `package guest

type Context struct{}

func (c *Context) Sleep(cycles int64) {}
`

// sideSrc is the negative space: same API names, wrong package tail.
const sideSrc = `package sideguest

type Context interface{ Sleep(cycles int64) }

func MustSend() {}
`

const kernelSrc = `package kernel

func Boot() {}
`

const mainSrc = `package consumer

import (
	"fix/internal/guest"
	g2 "fix/v2/guest"
	"fix/internal/kernel"
	side "fix/internal/sideguest"
)

func run(ctx guest.Context, c2 *g2.Context, sc side.Context) {
	ctx.Sleep(1)                       // call 0: interface Context method
	ctx.NetSend(guest.Frame{})         // call 1: another Context method
	guest.MustSend(ctx, guest.Frame{}) // call 2: package-level guest func
	c2.Sleep(2)                        // call 3: concrete pointer-receiver Context method
	sc.Sleep(3)                        // call 4: Context from a non-guest package
	side.MustSend()                    // call 5: package func from a non-guest package
	kernel.Boot()                      // call 6: kernel package func
	f := func() {}
	f()            // call 7: dynamic — no callee
	_ = int64(4)   // conversion — not a call expr callee
	println(5)     // call 8: builtin — no callee
}
`

// load typechecks the whole fixture forest and returns the consumer's
// info plus its calls in source order.
func load(t *testing.T) (*types.Info, []*ast.CallExpr) {
	t.Helper()
	fset := token.NewFileSet()
	deps := mapImporter{}
	for _, p := range []struct{ path, src string }{
		{"fix/internal/guest", guestSrc},
		{"fix/v2/guest", concreteGuestSrc},
		{"fix/internal/sideguest", sideSrc},
		{"fix/internal/kernel", kernelSrc},
	} {
		pkg, _, _ := check(t, fset, p.path, p.src, deps)
		deps[p.path] = pkg
	}
	_, info, f := check(t, fset, "fix/consumer", mainSrc, deps)
	var calls []*ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			// int64(4) parses as a CallExpr too; Callee must reject it,
			// so keep it out of the positional list but assert below.
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "int64" {
				if got := Callee(info, call); got != nil {
					t.Errorf("Callee(int64 conversion) = %v, want nil", got)
				}
				return true
			}
			calls = append(calls, call)
		}
		return true
	})
	if len(calls) != 9 {
		t.Fatalf("fixture declares %d calls, want 9", len(calls))
	}
	return info, calls
}

func TestCalleeResolution(t *testing.T) {
	info, calls := load(t)
	wantNames := []string{"Sleep", "NetSend", "MustSend", "Sleep", "Sleep", "MustSend", "Boot", "", ""}
	for i, want := range wantNames {
		fn := Callee(info, calls[i])
		switch {
		case want == "" && fn != nil:
			t.Errorf("call %d: Callee = %s, want nil (dynamic/builtin)", i, fn.Name())
		case want != "" && fn == nil:
			t.Errorf("call %d: Callee = nil, want %s", i, want)
		case want != "" && fn.Name() != want:
			t.Errorf("call %d: Callee = %s, want %s", i, fn.Name(), want)
		}
	}
}

func TestIsContextMethod(t *testing.T) {
	info, calls := load(t)
	cases := []struct {
		call int
		name string
		want bool
	}{
		{0, "Sleep", true},    // interface method on guest.Context
		{0, "NetSend", false}, // right receiver, wrong method name
		{1, "NetSend", true},
		{2, "MustSend", false}, // guest func, but not a method
		{3, "Sleep", true},     // concrete *Context in a /guest package
		{4, "Sleep", false},    // Context from package sideguest
		{6, "Boot", false},
	}
	for _, c := range cases {
		fn := Callee(info, calls[c.call])
		if got := IsContextMethod(fn, c.name); got != c.want {
			t.Errorf("IsContextMethod(call %d, %q) = %v, want %v", c.call, c.name, got, c.want)
		}
	}
	if IsContextMethod(nil, "Sleep") {
		t.Error("IsContextMethod(nil) = true")
	}
}

func TestIsGuestFunc(t *testing.T) {
	info, calls := load(t)
	cases := []struct {
		call int
		name string
		want bool
	}{
		{2, "MustSend", true},
		{2, "Sleep", false},    // wrong name
		{0, "Sleep", false},    // method, not a package func
		{5, "MustSend", false}, // package tail is sideguest, not guest
		{6, "Boot", false},
	}
	for _, c := range cases {
		fn := Callee(info, calls[c.call])
		if got := IsGuestFunc(fn, c.name); got != c.want {
			t.Errorf("IsGuestFunc(call %d, %q) = %v, want %v", c.call, c.name, got, c.want)
		}
	}
	if IsGuestFunc(nil, "MustSend") {
		t.Error("IsGuestFunc(nil) = true")
	}
}

func TestInKernelPackage(t *testing.T) {
	info, calls := load(t)
	if fn := Callee(info, calls[6]); !InKernelPackage(fn) {
		t.Errorf("InKernelPackage(kernel.Boot) = false")
	}
	if fn := Callee(info, calls[2]); InKernelPackage(fn) {
		t.Errorf("InKernelPackage(guest.MustSend) = true")
	}
	if InKernelPackage(nil) {
		t.Error("InKernelPackage(nil) = true")
	}
}
