// Package guestapi recognizes call sites of the guest programming
// interface (guest.Context methods and the package-level retry
// wrappers) from type information. The errnocheck and syscallname
// analyzers share it. Matching is by package-path tail ("guest") and
// receiver type name ("Context") rather than the full module path,
// so analyzer fixtures can declare a miniature guest package and be
// checked by the very same logic as the real tree.
package guestapi

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathMatches reports whether a package path is the named package or
// ends with "/<name>".
func pathMatches(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}

// Callee resolves the *types.Func a call invokes, or nil for dynamic
// calls, conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsContextMethod reports whether fn is the guest Context method with
// the given name (interface or concrete implementation named Context
// in a guest package).
func IsContextMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || !pathMatches(fn.Pkg().Path(), "guest") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "Context"
}

// IsGuestFunc reports whether fn is the package-level guest function
// with the given name (the retry wrappers).
func IsGuestFunc(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || !pathMatches(fn.Pkg().Path(), "guest") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// InKernelPackage reports whether fn is defined in a kernel package
// (the simulator kernel or a fixture kernel).
func InKernelPackage(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && pathMatches(fn.Pkg().Path(), "kernel")
}
