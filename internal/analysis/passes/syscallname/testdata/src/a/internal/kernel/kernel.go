// Package kernel is a fixture twin of the real kernel's stringly
// syscall surface: the analyzer recognizes syscallCost, injectFault,
// SyscallFault, and the cost table by name and package-path tail, but
// validates the strings against the REAL kernel.KnownSyscallNames
// set (brk … write).
package kernel

type SyscallFault struct {
	Name    string
	Errno   int
	ProbPPM uint32
}

var syscallServiceUs = map[string]int64{
	"read":   3,
	"sendot": 4, // want `unknown syscall name "sendot" in the syscall cost table`
}

func syscallCost(name string) int64 { return syscallServiceUs[name] }

func injectFault(name string, f SyscallFault) {}

func use(dynamic string) {
	syscallCost("gettime")
	syscallCost("gettimeofday") // want `unknown syscall name "gettimeofday" in syscallCost`
	syscallCost(dynamic)        // dynamic name: left to runtime validation
	injectFault("sendto", SyscallFault{Name: "sendto"})
	injectFault("sendot", SyscallFault{}) // want `unknown syscall name "sendot" in injectFault`
	_ = SyscallFault{Name: "reed"}        // want `unknown syscall name "reed" in SyscallFault.Name`
	_ = SyscallFault{"reed", 0, 0}        // want `unknown syscall name "reed" in SyscallFault.Name`
	//simlint:syscall-ok probing the default-cost fallback for names off the table
	syscallCost("frobnicate")
}
