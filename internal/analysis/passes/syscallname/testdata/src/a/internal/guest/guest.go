// Package guest is a miniature stub of the guest surface for the
// syscallname fixtures; the analyzer recognizes it by path tail and
// names.
package guest

type Context interface {
	Syscall(name string) error
}

func SyscallRetry(ctx Context, name string, budget int64) error {
	return ctx.Syscall(name)
}
