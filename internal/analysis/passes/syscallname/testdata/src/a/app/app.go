// Package app exercises syscall-name checking at the guest call
// surface.
package app

import "a/internal/guest"

const typoName = "sendot"

func probe(ctx guest.Context, dynamic string) error {
	if err := ctx.Syscall("read"); err != nil {
		return err
	}
	if err := ctx.Syscall("sendot"); err != nil { // want `unknown syscall name "sendot" in guest.Context.Syscall`
		return err
	}
	if err := ctx.Syscall(typoName); err != nil { // want `unknown syscall name "sendot" in guest.Context.Syscall`
		return err
	}
	if err := ctx.Syscall(dynamic); err != nil { // dynamic: left to runtime validation
		return err
	}
	//simlint:syscall-ok probing the unknown-name default-cost fallback
	if err := ctx.Syscall("frobnicate"); err != nil {
		return err
	}
	return guest.SyscallRetry(ctx, "gettiem", 100) // want `unknown syscall name "gettiem" in guest.SyscallRetry`
}
