// Package syscallname defines the simlint analyzer that closes the
// stringly-typed syscall namespace. Syscall classes are identified by
// string everywhere — guest.Context.Syscall("read"), fault tables,
// the kernel's cost map — and a typo ("sendot") does not fail: the
// cost lookup silently falls back to the default service time, and a
// typo'd fault entry injects nothing while the chaos run reports a
// healthy bill. This analyzer checks every string literal (or
// constant) flowing into those positions against the closed set
// exported by internal/kernel and flags the ones outside it.
//
// A deliberate out-of-namespace name (a test probing the unknown-name
// fallback itself) carries a justified annotation:
//
//	//simlint:syscall-ok probing the default-cost fallback
//	ctx.Syscall("frobnicate")
package syscallname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/annotation"
	"repro/internal/analysis/passes/guestapi"
	"repro/internal/kernel"
)

// Key is the annotation that suppresses a finding, e.g.
// `//simlint:syscall-ok <why>`.
const Key = "syscall-ok"

// Analyzer flags syscall-name strings outside the kernel's closed
// namespace.
var Analyzer = &analysis.Analyzer{
	Name: "syscallname",
	Doc: "flag syscall-name strings outside the kernel's known set\n\n" +
		"Names passed to guest.Context.Syscall, guest.SyscallRetry, the\n" +
		"kernel's cost and fault tables, and SyscallFault.Name must be\n" +
		"members of kernel.KnownSyscallNames(); a typo is otherwise a\n" +
		"silently inert fault or a silently default-priced syscall.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	notes := annotation.New(pass.Fset, pass.Files)

	check := func(expr ast.Expr, context string) {
		if expr == nil {
			return
		}
		tv, ok := pass.TypesInfo.Types[expr]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return // dynamic name: left to runtime validation
		}
		name := constant.StringVal(tv.Value)
		if kernel.IsKnownSyscall(name) {
			return
		}
		if note, ok := notes.At(expr.Pos(), Key); ok {
			if note.Reason == "" {
				pass.Reportf(expr.Pos(), "simlint:%s annotation needs a justification after the key", Key)
			}
			return
		}
		pass.Reportf(expr.Pos(), "unknown syscall name %q in %s (known: %s); fix the typo or annotate //simlint:%s <why>",
			name, context, strings.Join(kernel.KnownSyscallNames(), ", "), Key)
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := guestapi.Callee(pass.TypesInfo, n)
				switch {
				case guestapi.IsContextMethod(fn, "Syscall") && len(n.Args) > 0:
					check(n.Args[0], "guest.Context.Syscall")
				case guestapi.IsGuestFunc(fn, "SyscallRetry") && len(n.Args) > 1:
					check(n.Args[1], "guest.SyscallRetry")
				case fn != nil && guestapi.InKernelPackage(fn) && fn.Name() == "syscallCost" && len(n.Args) > 0:
					check(n.Args[0], "syscallCost")
				case fn != nil && guestapi.InKernelPackage(fn) && fn.Name() == "injectFault" && len(n.Args) > 0:
					check(n.Args[0], "injectFault")
				}
			case *ast.CompositeLit:
				if isSyscallFault(pass.TypesInfo, n) {
					check(faultNameField(n), "SyscallFault.Name")
				}
			case *ast.ValueSpec:
				// The kernel cost table itself (and any fixture twin):
				// its keys define prices, so a typo'd key is dead weight
				// that silently never matches a request.
				for i, name := range n.Names {
					if name.Name != "syscallServiceUs" || i >= len(n.Values) {
						continue
					}
					if lit, ok := n.Values[i].(*ast.CompositeLit); ok {
						for _, elt := range lit.Elts {
							if kv, ok := elt.(*ast.KeyValueExpr); ok {
								check(kv.Key, "the syscall cost table")
							}
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// isSyscallFault reports whether the composite literal builds a
// kernel SyscallFault.
func isSyscallFault(info *types.Info, lit *ast.CompositeLit) bool {
	tv := info.TypeOf(lit)
	if tv == nil {
		return false
	}
	named, ok := types.Unalias(tv).(*types.Named)
	if !ok || named.Obj().Name() != "SyscallFault" || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "kernel" || strings.HasSuffix(path, "/kernel")
}

// faultNameField extracts the Name field's value from a SyscallFault
// literal, keyed or positional.
func faultNameField(lit *ast.CompositeLit) ast.Expr {
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Name" {
				return kv.Value
			}
			continue
		}
		if i == 0 {
			return elt // positional: Name is the first field
		}
	}
	return nil
}
