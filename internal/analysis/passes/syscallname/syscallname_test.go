package syscallname_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/syscallname"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), syscallname.Analyzer,
		"a/internal/kernel", "a/app")
}
