// Package ledgerbalance defines the simlint analyzer that guards the
// link conservation identity
//
//	Sent = Delivered + Dropped + Queued
//
// at the source level. The chaos and replay artifacts assert the
// identity over final ledgers; this analyzer enforces the discipline
// that makes it hold — every mutation of a Link counter must be
// paired so the identity's two sides move together — at each function
// that touches the counters, on every control-flow path.
//
// The check is a per-function net-delta analysis: paths through the
// body are enumerated (branches union, loop bodies must balance to
// zero per iteration), counter increments and decrements contribute
// +1/-1 to the "sent" side or the "delivered+dropped+queued" side,
// and calls fold in the callee's summary — computed in-package by
// recursion, or imported as a DeltaFact when the callee lives in
// another package. A function is flagged when some path moves the
// sent side without moving the other side equally. One-sided helpers
// that only move the right side (deliver, a drop-accounting helper)
// are legal: their nonzero net is their contract, exported as a fact
// and folded into callers, which is where the balance must close.
//
// Direct assignment to a counter and non-constant updates defeat the
// accounting and are flagged at the site. Deliberate exceptions carry
// a justified //simlint:ledger-ok annotation on the site or the
// function declaration.
package ledgerbalance

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/annotation"
	"repro/internal/analysis/passes/guestapi"
)

// Key is the annotation that suppresses a finding, e.g.
// `//simlint:ledger-ok <why>`. On a func declaration line it covers
// the whole function.
const Key = "ledger-ok"

// DeltaFact is a function's exported counter summary: how much it
// nets on each side of the identity on every path, or Mixed when its
// paths disagree (callers then fold zero; the disagreement is only a
// defect if one of its paths is itself unbalanced, which is reported
// where the function is declared).
type DeltaFact struct {
	Left  int // net movement of sent
	Right int // net movement of delivered+dropped+queued
	Mixed bool
}

func (*DeltaFact) AFact() {}

func (f *DeltaFact) String() string {
	if f.Mixed {
		return "ledger(mixed)"
	}
	return fmt.Sprintf("ledger(sent%+d, rest%+d)", f.Left, f.Right)
}

// Analyzer checks that Link counter updates stay balanced.
var Analyzer = &analysis.Analyzer{
	Name: "ledgerbalance",
	Doc: "check that Link counter updates keep Sent = Delivered + Dropped + Queued\n\n" +
		"Functions that move the sent side of a cluster Link's ledger must\n" +
		"move the delivered/dropped/queued side equally on every control-flow\n" +
		"path, folding in callee summaries across package boundaries via\n" +
		"facts. Suppress a deliberate exception with a justified\n" +
		"//simlint:ledger-ok annotation.",
	FactTypes: []analysis.Fact{(*DeltaFact)(nil)},
	Run:       run,
}

// counterSide maps Link field names to the identity side they move:
// true is the sent side, false the delivered+dropped+queued side.
// Exported spellings are included so fixture packages can expose
// counters across package boundaries.
var counterSide = map[string]bool{
	"sent": true, "Sent": true,
	"delivered": false, "Delivered": false,
	"dropped": false, "Dropped": false,
	"queued": false, "Queued": false,
}

// delta is a net counter movement: l the sent side, r the other.
type delta struct{ l, r int }

func (d delta) add(o delta) delta { return delta{d.l + o.l, d.r + o.r} }

// exit classifies how a path left a statement sequence.
type exit uint8

const (
	fall exit = iota // ran off the end
	brk              // break/continue/goto: ends the enclosing body's path
	ret              // return: ends the function's path
)

type outcome struct {
	d delta
	x exit
}

// maxOutcomes caps path enumeration; a function that still has more
// distinct outcomes after deduplication is summarized as Mixed.
const maxOutcomes = 64

type report struct {
	pos token.Pos
	msg string
}

// summary is one function's analysis result.
type summary struct {
	d        delta
	mixed    bool
	touched  bool
	variable bool // a loop iterates a legal nonzero delta: net depends on trip count
	badPath  *delta
	badLoop  token.Pos
	reports  []report
}

type checker struct {
	pass  *analysis.Pass
	info  *types.Info
	notes *annotation.Index
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*summary
	busy  map[*types.Func]bool
	lits  []*ast.FuncLit
	seen  map[*ast.FuncLit]bool
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:  pass,
		info:  pass.TypesInfo,
		notes: annotation.New(pass.Fset, pass.Files),
		decls: make(map[*types.Func]*ast.FuncDecl),
		sums:  make(map[*types.Func]*summary),
		busy:  make(map[*types.Func]bool),
		seen:  make(map[*ast.FuncLit]bool),
	}
	var order []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
				order = append(order, fn)
			}
		}
	}

	for _, fn := range order {
		s := c.summarize(fn)
		c.finish(c.decls[fn].Pos(), s)
		if s.touched || s.d != (delta{}) || s.mixed {
			pass.ExportObjectFact(fn, &DeltaFact{Left: s.d.l, Right: s.d.r, Mixed: s.mixed})
		}
	}
	// Closures found along the way are checked as functions of their
	// own: their deltas never fold into the encloser (they may run
	// later, elsewhere), so their bodies must balance independently.
	for i := 0; i < len(c.lits); i++ {
		lit := c.lits[i]
		s := c.eval(lit.Body)
		c.finish(lit.Pos(), s)
	}
	return nil, nil
}

// finish emits a summary's reports, honoring a function-level
// annotation at pos.
func (c *checker) finish(pos token.Pos, s *summary) {
	if note, ok := c.notes.At(pos, Key); ok {
		if note.Reason == "" {
			c.pass.Reportf(pos, "simlint:%s annotation needs a justification after the key", Key)
		}
		return
	}
	for _, r := range s.reports {
		c.pass.Reportf(r.pos, "%s", r.msg)
	}
	if s.badLoop != token.NoPos {
		c.pass.Reportf(s.badLoop, "Link counter updates in this loop body move sent and delivered+dropped+queued unequally per iteration; pair the movements within the iteration or annotate //simlint:%s <why>", Key)
	}
	if s.badPath != nil {
		c.pass.Reportf(pos, "Link counters net sent%+d but delivered+dropped+queued%+d on some path; every sent frame must land in exactly one of delivered/dropped/queued — pair the updates or annotate //simlint:%s <why>", s.badPath.l, s.badPath.r, Key)
	}
}

// summarize returns fn's summary: computed from its declaration when
// it lives in this package, imported as a fact otherwise. Recursion
// cycles contribute nothing (their balanced base cases dominate).
func (c *checker) summarize(fn *types.Func) *summary {
	if s, ok := c.sums[fn]; ok {
		return s
	}
	if c.busy[fn] {
		return &summary{}
	}
	decl, ok := c.decls[fn]
	if !ok {
		s := &summary{}
		var f DeltaFact
		if c.pass.ImportObjectFact(fn, &f) {
			s.d = delta{f.Left, f.Right}
			s.mixed = f.Mixed
			s.touched = true
		}
		c.sums[fn] = s
		return s
	}
	c.busy[fn] = true
	s := c.eval(decl.Body)
	delete(c.busy, fn)
	c.sums[fn] = s
	return s
}

// eval runs the path analysis over one function body.
func (c *checker) eval(body *ast.BlockStmt) *summary {
	fe := &funcEval{c: c, sum: &summary{badLoop: token.NoPos}}
	outs := fe.block(body.List, []outcome{{}})
	if len(outs) > maxOutcomes {
		fe.sum.mixed = true
		return fe.sum
	}
	deltas := make(map[delta]bool)
	for _, o := range outs {
		deltas[o.d] = true
		if o.d.l != 0 && o.d.l != o.d.r && fe.sum.badPath == nil {
			d := o.d
			fe.sum.badPath = &d
		}
	}
	if len(deltas) == 1 {
		fe.sum.d = outs[0].d
	} else if len(deltas) > 1 {
		fe.sum.mixed = true
	}
	if fe.sum.variable {
		fe.sum.mixed = true
		fe.sum.d = delta{}
	}
	return fe.sum
}

type funcEval struct {
	c   *checker
	sum *summary
}

func dedup(outs []outcome) []outcome {
	if len(outs) < 2 {
		return outs
	}
	seen := make(map[outcome]bool, len(outs))
	res := outs[:0]
	for _, o := range outs {
		if !seen[o] {
			seen[o] = true
			res = append(res, o)
		}
	}
	return res
}

func addAll(outs []outcome, d delta) []outcome {
	if d == (delta{}) {
		return outs
	}
	res := make([]outcome, len(outs))
	for i, o := range outs {
		res[i] = outcome{o.d.add(d), o.x}
	}
	return res
}

// block threads outcomes through a statement sequence; ended paths
// (returns, breaks) carry through untouched.
func (fe *funcEval) block(stmts []ast.Stmt, in []outcome) []outcome {
	cur := in
	for _, s := range stmts {
		var next []outcome
		for _, o := range cur {
			if o.x != fall {
				next = append(next, o)
				continue
			}
			next = append(next, fe.stmt(s, o)...)
		}
		cur = dedup(next)
		if len(cur) > maxOutcomes {
			return cur
		}
	}
	return cur
}

// apply runs one statement over a set of live outcomes.
func (fe *funcEval) apply(s ast.Stmt, in []outcome) []outcome {
	var out []outcome
	for _, o := range in {
		if o.x != fall {
			out = append(out, o)
			continue
		}
		out = append(out, fe.stmt(s, o)...)
	}
	return dedup(out)
}

func (fe *funcEval) stmt(s ast.Stmt, o outcome) []outcome {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return []outcome{o}
	case *ast.BlockStmt:
		return fe.block(s.List, []outcome{o})
	case *ast.LabeledStmt:
		return fe.stmt(s.Stmt, o)
	case *ast.ReturnStmt:
		d := o.d
		for _, e := range s.Results {
			d = d.add(fe.callDelta(e))
		}
		return []outcome{{d, ret}}
	case *ast.BranchStmt:
		if s.Tok == token.FALLTHROUGH {
			return []outcome{o} // approximate: clause paths stay independent
		}
		return []outcome{{o.d, brk}}
	case *ast.IfStmt:
		base := []outcome{o}
		if s.Init != nil {
			base = fe.apply(s.Init, base)
		}
		base = addAll(base, fe.callDelta(s.Cond))
		outs := fe.block(s.Body.List, base)
		if s.Else != nil {
			outs = append(outs, fe.apply(s.Else, base)...)
		} else {
			outs = append(outs, base...)
		}
		return dedup(outs)
	case *ast.SwitchStmt:
		base := []outcome{o}
		if s.Init != nil {
			base = fe.apply(s.Init, base)
		}
		if s.Tag != nil {
			base = addAll(base, fe.callDelta(s.Tag))
		}
		return fe.clauses(s.Body, base, !hasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		base := []outcome{o}
		if s.Init != nil {
			base = fe.apply(s.Init, base)
		}
		base = fe.apply(s.Assign, base)
		return fe.clauses(s.Body, base, !hasDefault(s.Body))
	case *ast.SelectStmt:
		// Exactly one clause runs (select blocks until one is ready),
		// so no empty path is added even without a default.
		return fe.clauses(s.Body, []outcome{o}, false)
	case *ast.ForStmt:
		base := []outcome{o}
		if s.Init != nil {
			base = fe.apply(s.Init, base)
		}
		if s.Cond != nil {
			base = addAll(base, fe.callDelta(s.Cond))
		}
		var postD delta
		if s.Post != nil {
			if po := fe.apply(s.Post, []outcome{{}}); len(po) == 1 && po[0].x == fall {
				postD = po[0].d
			}
		}
		return fe.loop(s.Pos(), s.Body, base, postD)
	case *ast.RangeStmt:
		base := addAll([]outcome{o}, fe.callDelta(s.X))
		return fe.loop(s.Pos(), s.Body, base, delta{})
	case *ast.AssignStmt:
		return []outcome{{o.d.add(fe.assignDelta(s)), fall}}
	case *ast.IncDecStmt:
		d := fe.callDelta(s.X)
		if side, ok := fe.counterSideOf(s.X); ok {
			unit := 1
			if s.Tok == token.DEC {
				unit = -1
			}
			d = d.add(fe.sideDelta(side, unit))
		}
		return []outcome{{o.d.add(d), fall}}
	case *ast.ExprStmt:
		return []outcome{{o.d.add(fe.callDelta(s.X)), fall}}
	case *ast.SendStmt:
		return []outcome{{o.d.add(fe.callDelta(s.Chan)).add(fe.callDelta(s.Value)), fall}}
	case *ast.GoStmt:
		return []outcome{{o.d.add(fe.callDelta(s.Call)), fall}}
	case *ast.DeferStmt:
		// Approximation: a deferred call's delta applies to every path,
		// which folding it here achieves for the common single-exit case.
		return []outcome{{o.d.add(fe.callDelta(s.Call)), fall}}
	case *ast.DeclStmt:
		d := delta{}
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						d = d.add(fe.callDelta(v))
					}
				}
			}
		}
		return []outcome{{o.d.add(d), fall}}
	default:
		return []outcome{o}
	}
}

// clauses unions the outcomes of a switch/select body's clauses.
// Breaks inside a clause exit the statement, becoming fall-throughs;
// addEmpty adds the no-clause-matched path.
func (fe *funcEval) clauses(body *ast.BlockStmt, base []outcome, addEmpty bool) []outcome {
	var outs []outcome
	for _, cl := range body.List {
		b := base
		var clauseBody []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				b = addAll(b, fe.callDelta(e))
			}
			clauseBody = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				b = fe.apply(cl.Comm, b)
			}
			clauseBody = cl.Body
		}
		for _, r := range fe.block(clauseBody, b) {
			if r.x == brk {
				r.x = fall
			}
			outs = append(outs, r)
		}
	}
	if addEmpty {
		outs = append(outs, base...)
	}
	return dedup(outs)
}

// loop checks each iteration path of a loop body (evaluated from
// zero) against the path rule: a per-iteration delta that moves sent
// without moving the other side equally is unbalanced at any trip
// count and is reported; a legal nonzero delta (a batching loop that
// pairs its movements) makes the function's net depend on the trip
// count, so the summary degrades to Mixed. Returns escape with their
// partial delta; everything else joins the loop-exit path.
func (fe *funcEval) loop(pos token.Pos, body *ast.BlockStmt, base []outcome, postD delta) []outcome {
	var outs []outcome
	for _, b := range fe.block(body.List, []outcome{{}}) {
		if b.x == ret {
			for _, ob := range base {
				outs = append(outs, outcome{ob.d.add(b.d), ret})
			}
			continue
		}
		if db := b.d.add(postD); db != (delta{}) {
			if db.l != 0 && db.l != db.r {
				if fe.sum.badLoop == token.NoPos {
					fe.sum.badLoop = pos
				}
			} else {
				fe.sum.variable = true
			}
		}
	}
	outs = append(outs, base...)
	return dedup(outs)
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// assignDelta handles counter mutations on an assignment's left side
// plus call deltas on both sides.
func (fe *funcEval) assignDelta(s *ast.AssignStmt) delta {
	var d delta
	for _, rhs := range s.Rhs {
		d = d.add(fe.callDelta(rhs))
	}
	for _, lhs := range s.Lhs {
		d = d.add(fe.callDelta(lhs))
		side, ok := fe.counterSideOf(lhs)
		if !ok {
			continue
		}
		name := ast.Unparen(lhs).(*ast.SelectorExpr).Sel.Name
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				if k, ok := intConst(fe.c.info, s.Rhs[0]); ok {
					if s.Tok == token.SUB_ASSIGN {
						k = -k
					}
					d = d.add(fe.sideDelta(side, k))
					continue
				}
			}
			fe.site(lhs.Pos(), "non-constant update to Link counter %q cannot be balance-checked; use unit increments or annotate //simlint:%s <why>", name, Key)
		default:
			fe.site(lhs.Pos(), "direct assignment to Link counter %q bypasses the paired-update discipline (Sent = Delivered + Dropped + Queued); use balanced increments or annotate //simlint:%s <why>", name, Key)
		}
	}
	return d
}

// site records a site-level defect unless a justified annotation
// covers the position.
func (fe *funcEval) site(pos token.Pos, format string, args ...any) {
	fe.sum.touched = true
	if note, ok := fe.c.notes.At(pos, Key); ok {
		if note.Reason == "" {
			fe.sum.reports = append(fe.sum.reports, report{pos, "simlint:" + Key + " annotation needs a justification after the key"})
		}
		return
	}
	fe.sum.reports = append(fe.sum.reports, report{pos, fmt.Sprintf(format, args...)})
}

// sideDelta converts a counter movement into a delta, marking the
// function as touched; a justified site annotation zeroes it.
func (fe *funcEval) sideDelta(left bool, n int) delta {
	fe.sum.touched = true
	if left {
		return delta{l: n}
	}
	return delta{r: n}
}

// counterSideOf recognizes a Link counter field selection, honoring a
// justified site annotation (which removes the site from accounting).
func (fe *funcEval) counterSideOf(e ast.Expr) (left, ok bool) {
	sel, isSel := ast.Unparen(e).(*ast.SelectorExpr)
	if !isSel {
		return false, false
	}
	s := fe.c.info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return false, false
	}
	side, known := counterSide[sel.Sel.Name]
	if !known || !recvIsClusterLink(s.Recv()) {
		return false, false
	}
	if note, found := fe.c.notes.At(sel.Pos(), Key); found && note.Reason != "" {
		fe.sum.touched = true
		return false, false
	}
	return side, true
}

// callDelta folds the summaries of statically resolvable calls inside
// an expression. Closure bodies are excluded (queued for independent
// checking); mixed callees fold zero — their own declaration site
// carries any defect.
func (fe *funcEval) callDelta(e ast.Expr) delta {
	var d delta
	if e == nil {
		return d
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if !fe.c.seen[lit] {
				fe.c.seen[lit] = true
				fe.c.lits = append(fe.c.lits, lit)
			}
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := guestapi.Callee(fe.c.info, call)
		if fn == nil {
			return true
		}
		s := fe.c.summarize(fn)
		if s.d != (delta{}) || s.mixed {
			fe.sum.touched = true
		}
		if !s.mixed {
			d = d.add(s.d)
		}
		return true
	})
	return d
}

func intConst(info *types.Info, e ast.Expr) (int, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return int(v), true
}

// recvIsClusterLink reports whether t is the cluster Link ledger type
// (or a fixture twin: a type named Link in a package whose path ends
// in "cluster").
func recvIsClusterLink(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Name() != "Link" || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path == "cluster" || strings.HasSuffix(path, "/cluster")
}
