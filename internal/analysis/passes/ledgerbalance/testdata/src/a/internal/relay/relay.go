// Package relay consumes the DeltaFact lib exports: whether the
// balance closes is decided two packages away from where the counter
// moves.
package relay

import (
	"a/internal/cluster"
	"a/internal/lib"
)

// Good balances lib's sent-side fact with a delivery.
func Good(l *cluster.Link) {
	lib.SentOnly(l)
	l.Delivered++
}

func Bad(l *cluster.Link) { // want `net sent\+1 but delivered\+dropped\+queued\+0 on some path`
	lib.SentOnly(l)
}
