// Package lib moves Link counters from outside the cluster package;
// its annotated one-sided helper exports a (sent+1, rest+0) fact that
// consumers must balance.
package lib

import "a/internal/cluster"

// SentOnly counts a frame as sent; the caller must land it in
// delivered, dropped, or queued.
//
//simlint:ledger-ok callers account the delivered/dropped/queued side
func SentOnly(l *cluster.Link) {
	l.Sent++
}
