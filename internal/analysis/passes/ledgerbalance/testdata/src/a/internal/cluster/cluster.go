// Package cluster is a ledgerbalance fixture: a Link ledger with the
// four conservation counters (exported, so helper packages can move
// them across package boundaries) and the update shapes the analyzer
// must accept and reject.
package cluster

type Link struct {
	Sent, Delivered, Dropped, Queued int
}

// Deliver is a legal one-sided helper: it moves only the right side;
// callers that counted the sent side close the balance.
func (l *Link) Deliver() {
	l.Delivered++
}

// Send pairs the sent count with an outcome on every path.
func Send(l *Link, up bool) {
	l.Sent++
	if up {
		l.Deliver()
	} else {
		l.Dropped++
	}
}

// CondSend is balanced per path: (0,0) and (+1,+1).
func CondSend(l *Link, ok bool) {
	if ok {
		l.Sent++
		l.Queued++
	}
}

// Expire moves frames from queued to dropped: right side nets zero.
func Expire(l *Link, n int) {
	for i := 0; i < n; i++ {
		l.Queued--
		l.Dropped++
	}
}

// BatchSend pairs its movements inside the loop: legal at any trip
// count (the function's net then depends on it, so callers fold zero).
func BatchSend(l *Link, frames []int) {
	for range frames {
		l.Sent++
		l.Queued++
	}
}

func BadSend(l *Link) { // want `Link counters net sent\+1 but delivered\+dropped\+queued\+0 on some path`
	l.Sent++
}

func BadBranch(l *Link, ok bool) { // want `net sent\+1 but delivered\+dropped\+queued\+0 on some path`
	l.Sent++
	if ok {
		l.Queued++
	}
}

func BadLoop(l *Link, frames []int) {
	for range frames { // want `move sent and delivered\+dropped\+queued unequally per iteration`
		l.Sent++
	}
}

func BadAssign(l *Link) {
	l.Queued = 0 // want `direct assignment to Link counter "Queued"`
}

func BadNonConst(l *Link, n int) {
	l.Dropped += n // want `non-constant update to Link counter "Dropped"`
}

//simlint:ledger-ok fixture: reconciliation helper, callers rebuild the other side
func AnnotatedSentOnly(l *Link) {
	l.Sent++
}

//simlint:ledger-ok
func Unjustified(l *Link) { // want `annotation needs a justification`
	l.Sent++
}

// UseHelper closes the balance through a same-package helper call.
func UseHelper(l *Link) {
	l.Sent++
	l.Deliver()
}

// Closure bodies are checked independently: their execution time is
// unknown, so they must balance on their own.
func BadClosure(l *Link) func() {
	return func() { // want `net sent\+1 but delivered\+dropped\+queued\+0 on some path`
		l.Sent++
	}
}
