package ledgerbalance_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/ledgerbalance"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ledgerbalance.Analyzer,
		"a/internal/cluster", "a/internal/relay")
}
