// Package device exercises the blank-import finding and the sim.Rand
// promoted-method exemption.
package device

import (
	_ "math/rand" // want `import of math/rand in a deterministic package`

	"a/internal/sim"
)

// Jitter draws from the seeded wrapper: the promoted Int63n resolves
// to a math/rand object but must not be flagged.
func Jitter(r *sim.Rand) int64 { return r.Int63n(8) }
