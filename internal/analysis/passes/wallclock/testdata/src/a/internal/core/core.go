// Package core sits between the deterministic scope and lib: the
// wall-clock read it reaches is two packages removed from the call
// site that gets flagged.
package core

import "a/internal/lib"

func Boot() { _ = lib.Stamp() }
