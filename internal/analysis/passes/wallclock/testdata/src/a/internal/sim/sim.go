// Package sim is a fixture twin of the real sim.Rand wrapper: the one
// sanctioned math/rand reference, suppressed file-wide by the
// annotated import line.
package sim

import "math/rand" //simlint:wallclock-ok fixture twin of sim.Rand: rand.New is fed a seeded source

type Rand struct {
	*rand.Rand
}

type fixed struct{ state int64 }

func (f *fixed) Int63() int64    { f.state++; return f.state }
func (f *fixed) Seed(seed int64) { f.state = seed }

func New(seed int64) *Rand {
	return &Rand{Rand: rand.New(&fixed{state: seed})}
}
