// Package kernel is a wallclock fixture on a deterministic import
// path.
package kernel

import (
	"math/rand"
	"time"

	"a/internal/core"
)

func flaggedClock() time.Duration {
	start := time.Now()      // want `time.Now reads the host wall clock`
	return time.Since(start) // want `time.Since reads the host wall clock`
}

func flaggedRand() int {
	return rand.Int() // want `math/rand.Int uses the host rng`
}

func annotatedClock() time.Time {
	//simlint:wallclock-ok fixture: measured outside the simulated timeline
	return time.Now()
}

func unjustified() time.Time {
	//simlint:wallclock-ok
	return time.Now() // want `annotation needs a justification`
}

func methodNotFlagged(a, b time.Time) time.Duration {
	return a.Sub(b) // a method on time.Time reads no clock
}

func indirect() {
	// The time.Now is in lib, two packages below; the fact carries it
	// here through core.
	core.Boot() // want `call to core.Boot reaches the host wall clock or rng`
}

func annotatedIndirect() {
	core.Boot() //simlint:wallclock-ok fixture: startup stamp outside the simulated timeline
}
