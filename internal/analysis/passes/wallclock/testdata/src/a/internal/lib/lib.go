// Package lib is a tracked helper package outside the deterministic
// scope: its wall-clock read is legal here, but becomes a finding at
// any call site inside the scope, via callsummary facts.
package lib

import "time"

func Stamp() time.Time { return time.Now() }
