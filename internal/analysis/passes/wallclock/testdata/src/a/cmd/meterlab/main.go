// Command meterlab sits outside the deterministic scope; wall-clock
// reads here must produce no findings.
package main

import "time"

func main() {
	_ = time.Since(time.Now())
}
