// Package rand is a miniature stub of math/rand for the wallclock
// fixtures; see the time stub for why imports resolve here.
package rand

type Source interface {
	Int63() int64
	Seed(seed int64)
}

type Rand struct{ src Source }

func New(src Source) *Rand { return &Rand{src: src} }

func (r *Rand) Int63() int64 { return r.src.Int63() }

func (r *Rand) Int63n(n int64) int64 { return r.Int63() % n }

func Int() int { return 0 }
