package wallclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/wallclock"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wallclock.Analyzer,
		"a/internal/kernel", "a/internal/sim", "a/internal/device", "a/cmd/meterlab")
}
