// Package wallclock defines the simlint analyzer that keeps the host
// wall clock and the host random number generator out of the
// simulator's deterministic core. Virtual time comes from sim.Clock
// and randomness from sim.Rand's seeded splitmix64 stream; a stray
// time.Now, time.Since, or math/rand call makes a run a function of
// the machine it happened to execute on, which is precisely what the
// replay goldens exist to rule out. Only the cpumeter timing
// wrappers and cmd/meterlab — outside the deterministic scope — may
// measure real time.
//
// The one legitimate math/rand reference (internal/sim/rand.go wraps
// its Rand API around a deterministic source) is suppressed with a
// justified annotation on the import line, which covers the file:
//
//	import "math/rand" //simlint:wallclock-ok seeded source only
//
// Violations need not be direct: a deterministic package calling a
// helper that (transitively) reads the clock is flagged at the call
// site, using the per-function effect facts the callsummary pass
// exports across package boundaries.
package wallclock

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/annotation"
	"repro/internal/analysis/detscope"
	"repro/internal/analysis/passes/callsummary"
	"repro/internal/analysis/passes/guestapi"
)

// Key is the annotation that suppresses a finding, e.g.
// `//simlint:wallclock-ok <why>`. On a math/rand import line it
// suppresses every math/rand use in that file.
const Key = "wallclock-ok"

// Analyzer flags wall-clock reads and host-rng use in deterministic
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "flag time.Now/time.Since and math/rand in the deterministic core\n\n" +
		"Deterministic packages must take time from sim.Clock and randomness\n" +
		"from sim.Rand; host clocks and host rngs make replays\n" +
		"machine-dependent. Indirect reads through helper packages are\n" +
		"flagged at the call site via callsummary facts. Suppress a\n" +
		"deliberate use with a justified //simlint:wallclock-ok annotation.",
	Requires: []*analysis.Analyzer{callsummary.Analyzer},
	Run:      run,
}

// randPaths are the host rng packages; any object from them counts.
var randPaths = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// timeFuncs are the forbidden wall-clock reads from package time.
var timeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !detscope.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	notes := annotation.New(pass.Fset, pass.Files)
	sums := pass.ResultOf[callsummary.Analyzer].(*callsummary.Result)

	for _, f := range pass.Files {
		// An annotated math/rand import suppresses the whole file's
		// rand uses; an unannotated one is itself the finding for
		// side-effect (blank/dot) imports that have no use sites.
		fileRandOK := false
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !randPaths[path] {
				continue
			}
			note, ok := notes.At(imp.Pos(), Key)
			switch {
			case ok && note.Reason == "":
				pass.Reportf(imp.Pos(), "simlint:%s annotation needs a justification after the key", Key)
			case ok:
				fileRandOK = true
			case imp.Name != nil && (imp.Name.Name == "_" || imp.Name.Name == "."):
				pass.Reportf(imp.Pos(), "import of %s in a deterministic package: use sim.Rand's seeded stream or annotate //simlint:%s <why>", path, Key)
			}
		}

		ast.Inspect(f, func(n ast.Node) bool {
			// Indirect use: a call leaving the deterministic scope whose
			// callee transitively reaches the clock or a host rng. Direct
			// sites (callees in time/math/rand) report through the ident
			// check below, and in-scope callees are policed where they
			// are declared, so this only fires for out-of-scope helpers.
			if call, ok := n.(*ast.CallExpr); ok {
				callee := guestapi.Callee(pass.TypesInfo, call)
				if callee != nil && callee.Pkg() != nil &&
					!detscope.Deterministic(callee.Pkg().Path()) &&
					sums.Effects(callee)&callsummary.WallClock != 0 {
					if note, ok := notes.At(call.Pos(), Key); ok {
						if note.Reason == "" {
							pass.Reportf(call.Pos(), "simlint:%s annotation needs a justification after the key", Key)
						}
					} else {
						pass.Reportf(call.Pos(), "call to %s reaches the host wall clock or rng from a deterministic package; take time from sim.Clock and randomness from sim.Rand, or annotate //simlint:%s <why>", callsummary.FuncName(callee), Key)
					}
				}
				return true
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				// Methods promoted from sim.Rand's embedded *rand.Rand
				// resolve to math/rand objects, but drawing from the
				// seeded wrapper is exactly what this analyzer wants
				// code to do: exempt selections rooted at sim.Rand.
				if sel, ok := n.(*ast.SelectorExpr); ok {
					if s, ok := pass.TypesInfo.Selections[sel]; ok && recvIsSimRand(s.Recv()) {
						return false
					}
				}
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch path := obj.Pkg().Path(); {
			case path == "time" && timeFuncs[obj.Name()] && isPkgFunc(obj):
				if note, ok := notes.At(id.Pos(), Key); ok {
					if note.Reason == "" {
						pass.Reportf(id.Pos(), "simlint:%s annotation needs a justification after the key", Key)
					}
					return true
				}
				pass.Reportf(id.Pos(), "time.%s reads the host wall clock in a deterministic package; use the machine's sim.Clock or annotate //simlint:%s <why>", obj.Name(), Key)
			case randPaths[path]:
				if fileRandOK {
					return true
				}
				if note, ok := notes.At(id.Pos(), Key); ok {
					if note.Reason == "" {
						pass.Reportf(id.Pos(), "simlint:%s annotation needs a justification after the key", Key)
					}
					return true
				}
				pass.Reportf(id.Pos(), "%s.%s uses the host rng in a deterministic package; draw from sim.Rand's seeded stream or annotate //simlint:%s <why>", path, obj.Name(), Key)
			}
			return true
		})
	}
	return nil, nil
}

// recvIsSimRand reports whether a method selection's static receiver
// is the deterministic sim.Rand wrapper (or a fixture twin: a type
// named Rand in a package whose path ends in "sim").
func recvIsSimRand(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Name() != "Rand" || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "sim" || strings.HasSuffix(path, "/sim")
}

// isPkgFunc reports whether obj is a package-level function (so a
// local method that happens to be called Now is not confused with
// time.Now — obj.Pkg()=="time" already rules that out, but a method
// on a type defined in package time, like Time.Sub, must not match).
func isPkgFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
