// Package floatdet defines the simlint analyzer that keeps floating
// point out of the billing scope. Billed quantities — ticks, bytes,
// frames — are integers; the moment a float enters the arithmetic, a
// bill becomes a function of rounding mode and evaluation order, and
// two replays of the same seed can disagree by one ulp that a
// comparison then amplifies into a different frame count. The
// analyzer flags non-constant float arithmetic, conversions to or
// from float, maps keyed on floats, and switches on float values
// inside billing packages (detscope.Billing) — and, through the
// callsummary facts, calls from billing code to any function outside
// the scope that transitively performs float arithmetic, however many
// packages down the violation hides.
//
// The report/textplot layers sit outside the billing scope and render
// percentages freely. A deliberate float inside the scope (e.g. a
// presentation-only seconds conversion) is suppressed with a
// justified //simlint:float-ok annotation.
package floatdet

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/annotation"
	"repro/internal/analysis/detscope"
	"repro/internal/analysis/passes/callsummary"
	"repro/internal/analysis/passes/guestapi"
)

// Key is the annotation that suppresses a finding, e.g.
// `//simlint:float-ok <why>`.
const Key = "float-ok"

// Analyzer flags float computation reachable from billing packages.
var Analyzer = &analysis.Analyzer{
	Name: "floatdet",
	Doc: "flag float arithmetic reachable from the billing scope\n\n" +
		"Billed quantities are integer ticks and bytes; float arithmetic,\n" +
		"float conversions, float-keyed maps, and switches on floats make\n" +
		"bills rounding-sensitive. Calls that reach float arithmetic in\n" +
		"helper packages are flagged at the call site via callsummary\n" +
		"facts. Suppress a deliberate use with a justified\n" +
		"//simlint:float-ok annotation.",
	Requires: []*analysis.Analyzer{callsummary.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	if !detscope.Billing(pass.Pkg.Path()) {
		return nil, nil
	}
	notes := annotation.New(pass.Fset, pass.Files)
	sums := pass.ResultOf[callsummary.Analyzer].(*callsummary.Result)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if desc, ok := callsummary.FloatOp(pass.TypesInfo, n); ok {
				if note, found := notes.At(n.Pos(), Key); found {
					if note.Reason == "" {
						pass.Reportf(n.Pos(), "simlint:%s annotation needs a justification after the key", Key)
					}
					return true
				}
				pass.Reportf(n.Pos(), "%s in a billing package; billed quantities must stay in integer ticks and bytes, or annotate //simlint:%s <why>", desc, Key)
				return true
			}
			// A call out of the billing scope whose callee transitively
			// performs float arithmetic: the violation belongs to this
			// call site. Callees inside the scope are policed where they
			// are declared.
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := guestapi.Callee(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil || detscope.Billing(callee.Pkg().Path()) {
				return true
			}
			if sums.Effects(callee)&callsummary.Float == 0 {
				return true
			}
			if note, found := notes.At(call.Pos(), Key); found {
				if note.Reason == "" {
					pass.Reportf(call.Pos(), "simlint:%s annotation needs a justification after the key", Key)
				}
				return true
			}
			pass.Reportf(call.Pos(), "call to %s reaches float arithmetic from a billing package; keep billed math in integer ticks and bytes, or annotate //simlint:%s <why>", callsummary.FuncName(callee), Key)
			return true
		})
	}
	return nil, nil
}
