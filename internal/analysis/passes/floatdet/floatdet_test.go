package floatdet_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/floatdet"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floatdet.Analyzer, "a/internal/kernel")
}
