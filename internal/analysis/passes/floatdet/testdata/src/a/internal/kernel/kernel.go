// Package kernel is a floatdet fixture on a billing import path.
package kernel

import "a/internal/core"

func flaggedArith(a, b int) float64 {
	x := float64(a) // want `conversion to float64 in a billing package`
	y := float64(b) // want `conversion to float64 in a billing package`
	return x / y    // want `float arithmetic \(/\) in a billing package`
}

func flaggedCompound(x float64) float64 {
	x *= 2 // want `float arithmetic \(\*=\) in a billing package`
	return x
}

func flaggedRound(x float64) int {
	return int(x) // want `conversion from float to int in a billing package`
}

func flaggedMap() {
	m := map[float64]int{} // want `map keyed on float in a billing package`
	_ = m
}

func flaggedSwitch(x float64) int {
	switch x { // want `switch on float in a billing package`
	case 1:
		return 1
	}
	return 0
}

func constFolded() int64 {
	// A constant expression folds at compile time, identically
	// everywhere: not a finding.
	const ticksPerSec = int64(1e9 / 2)
	return ticksPerSec
}

func annotated(a int) float64 {
	return float64(a) //simlint:float-ok fixture: presentation-only percentage
}

func unjustified(a int) float64 {
	//simlint:float-ok
	return float64(a) // want `annotation needs a justification`
}

func indirect(n int) {
	// The division is in lib, two packages below; the fact carries it
	// here through core.
	_ = core.Scale(n) // want `call to core.Scale reaches float arithmetic`
}

func annotatedIndirect(n int) {
	_ = core.Scale(n) //simlint:float-ok fixture: debug-only readout
}

func inScopeCalleeNotDoubled(a int) {
	// annotated is inside the billing scope: policed at its own
	// declaration, never re-flagged at call sites.
	_ = annotated(a)
}
