// Package core sits between the billing scope and lib: the float
// arithmetic it reaches is two packages removed from the flagged
// call site.
package core

import "a/internal/lib"

func Scale(n int) float64 { return lib.Ratio(n, 100) }
