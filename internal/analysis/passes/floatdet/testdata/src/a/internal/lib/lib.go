// Package lib is a tracked helper outside the billing scope: float
// arithmetic is legal here, but taints callers inside the scope
// through callsummary facts.
package lib

func Ratio(a, b int) float64 { return float64(a) / float64(b) }
