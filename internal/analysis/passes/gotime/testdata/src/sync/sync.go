// Package sync is a miniature stub of the standard library's sync
// package for the gotime fixtures. The analysistest loader resolves
// imports with an empty GOROOT, so this stub, never the real standard
// library, is what fixtures bind to.
package sync

type Mutex struct{ locked bool }

func (m *Mutex) Lock()   { m.locked = true }
func (m *Mutex) Unlock() { m.locked = false }
