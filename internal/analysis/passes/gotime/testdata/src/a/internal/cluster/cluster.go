// cluster.go is the sanctioned cluster event loop: its lockstep
// barrier machinery is the one place fabric code may use channels.
package cluster

type Cluster struct {
	barrier chan struct{}
}

func (c *Cluster) Run() {
	c.barrier = make(chan struct{})
	go func() { c.barrier <- struct{}{} }()
	<-c.barrier
	close(c.barrier)
}
