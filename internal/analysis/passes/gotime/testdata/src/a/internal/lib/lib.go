// Package lib is a tracked helper outside the deterministic scope:
// its channel use is legal here, but taints callers inside the scope
// through callsummary facts.
package lib

func Spawn() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	<-ch
}
