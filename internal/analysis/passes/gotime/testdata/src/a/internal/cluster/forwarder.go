// forwarder.go is NOT sanctioned: it holds the ported resumable
// forwarding guest, which runs under the simulated scheduler — a
// channel here would smuggle host-scheduler ordering into a guest
// that both drivers must replay identically.
package cluster

func forwarderLeak(wake chan struct{}) {
	go forwardOne()    // want `go statement in a deterministic package`
	wake <- struct{}{} // want `channel send in a deterministic package`
	<-wake             // want `channel receive in a deterministic package`
}

func forwardOne() {}
