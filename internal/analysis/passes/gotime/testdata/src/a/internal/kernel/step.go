// step.go is a sanctioned engine file: the flyweight step driver may
// coordinate with the goroutine driver's channels during shutdown.
package kernel

func drainOnShutdown(grant chan struct{}) {
	close(grant)
	select {
	case <-grant:
	default:
	}
}
