// sched.go is NOT a sanctioned engine file: concurrency here must go
// through the kernel's event loop.
package kernel

import (
	"sync"

	"a/internal/lib"
)

func badSpawn(ch chan int) {
	go helper() // want `go statement in a deterministic package`
	ch <- 1     // want `channel send in a deterministic package`
}

func helper() {}

func badRecv(ch chan int) int {
	return <-ch // want `channel receive in a deterministic package`
}

func badClose(ch chan int) {
	close(ch) // want `close of channel in a deterministic package`
}

func badSelect(a, b chan int) {
	select { // want `select statement in a deterministic package`
	case <-a: // want `channel receive in a deterministic package`
	case <-b: // want `channel receive in a deterministic package`
	}
}

func badRange(ch chan int) {
	for range ch { // want `range over channel in a deterministic package`
	}
}

func badSync() {
	var mu sync.Mutex // want `use of sync.Mutex in a deterministic package`
	mu.Lock()         // want `use of sync.Lock in a deterministic package`
}

func annotatedSend(ch chan int) {
	ch <- 1 //simlint:gotime-ok fixture: replay-safe handoff at shutdown
}

func unjustified(ch chan int) {
	//simlint:gotime-ok
	ch <- 1 // want `annotation needs a justification`
}

func badIndirect() {
	lib.Spawn() // want `call to lib.Spawn reaches goroutine or channel operations`
}

func annotatedIndirect() {
	lib.Spawn() //simlint:gotime-ok fixture: bounded worker pool with ordered merge
}

func inScopeCalleeNotDoubled() {
	// helper and the Machine engine are inside the deterministic
	// scope: policed at their declarations, not at call sites.
	helper()
	new(Machine).Run()
}
