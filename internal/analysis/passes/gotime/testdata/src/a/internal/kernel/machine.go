// machine.go is a sanctioned engine file: the kernel's own coroutine
// scheduler lives here, so goroutines and channels are its business.
package kernel

type Machine struct {
	ready chan int
}

func (m *Machine) Run() {
	m.ready = make(chan int, 1)
	go func() { m.ready <- 1 }()
	<-m.ready
	close(m.ready)
}
