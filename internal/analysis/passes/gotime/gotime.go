// Package gotime defines the simlint analyzer that confines real
// concurrency to the simulator's engine files. The simulator models
// thousands of tasks, but the model itself must execute as one
// deterministic event loop: a stray goroutine or channel in model
// code introduces host-scheduler ordering into state the replay
// goldens assert is a pure function of the seed. Only the sanctioned
// engine files — the kernel's coroutine scheduler (machine.go,
// task.go), its flyweight step driver (step.go) and the cluster event
// loop (cluster.go) — may use go statements, channels, select, or the
// sync package inside the deterministic scope; everywhere else in the
// scope, both direct uses and calls that transitively reach
// concurrency (via the callsummary facts) are flagged. Notably the
// ported resumable guests (cluster/forwarder.go, the experiments'
// flood and ack-flow machines) are NOT sanctioned: a guest runs under
// the simulated scheduler and must never touch the host's.
//
// Deliberate concurrency in the scope — the experiment campaign
// runner's worker pool, which parallelizes independent seeded runs
// and merges their outputs in deterministic order — is suppressed
// with justified //simlint:gotime-ok annotations.
package gotime

import (
	"go/ast"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/annotation"
	"repro/internal/analysis/detscope"
	"repro/internal/analysis/passes/callsummary"
	"repro/internal/analysis/passes/guestapi"
)

// Key is the annotation that suppresses a finding, e.g.
// `//simlint:gotime-ok <why>`.
const Key = "gotime-ok"

// Analyzer flags concurrency outside the sanctioned engine files.
var Analyzer = &analysis.Analyzer{
	Name: "gotime",
	Doc: "flag goroutines and channel operations outside the engine files\n\n" +
		"Deterministic packages run under the kernel's cooperative scheduler;\n" +
		"real goroutines, channels, select, and sync belong only in the\n" +
		"sanctioned engine files (kernel machine.go/task.go/step.go, cluster\n" +
		"cluster.go). Calls that reach concurrency in helper packages are\n" +
		"flagged at the call site via callsummary facts. Suppress a\n" +
		"deliberate use with a justified //simlint:gotime-ok annotation.",
	Requires: []*analysis.Analyzer{callsummary.Analyzer},
	Run:      run,
}

// sanctioned maps a package-path tail to the base names of its engine
// files, where the event loop's own concurrency machinery lives.
var sanctioned = map[string][]string{
	"internal/kernel":  {"machine.go", "task.go", "step.go"},
	"internal/cluster": {"cluster.go"},
}

// sanctionedFile reports whether the file is an engine file of its
// package. Test variants ("pkg [pkg.test]") inherit their package's
// sanction list, but test files themselves are never sanctioned.
func sanctionedFile(pkgPath, filename string) bool {
	base := filepath.Base(filename)
	for tail, files := range sanctioned {
		if pkgPath != tail && !strings.HasSuffix(normalize(pkgPath), "/"+tail) {
			continue
		}
		for _, f := range files {
			if base == f {
				return true
			}
		}
	}
	return false
}

func normalize(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}

func run(pass *analysis.Pass) (any, error) {
	if !detscope.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	notes := annotation.New(pass.Fset, pass.Files)
	sums := pass.ResultOf[callsummary.Analyzer].(*callsummary.Result)

	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if sanctionedFile(pass.Pkg.Path(), filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if desc, ok := callsummary.ConcOp(pass.TypesInfo, n); ok {
				if note, found := notes.At(n.Pos(), Key); found {
					if note.Reason == "" {
						pass.Reportf(n.Pos(), "simlint:%s annotation needs a justification after the key", Key)
					}
					return true
				}
				pass.Reportf(n.Pos(), "%s in a deterministic package outside the engine files; schedule through the kernel's event loop, or annotate //simlint:%s <why>", desc, Key)
				return true
			}
			// Calls that leave the deterministic scope for a callee that
			// transitively touches concurrency are the indirect form of
			// the same leak. In-scope callees are policed at their own
			// declaration sites.
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := guestapi.Callee(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil || detscope.Deterministic(callee.Pkg().Path()) {
				return true
			}
			if sums.Effects(callee)&callsummary.Concurrency == 0 {
				return true
			}
			if note, found := notes.At(call.Pos(), Key); found {
				if note.Reason == "" {
					pass.Reportf(call.Pos(), "simlint:%s annotation needs a justification after the key", Key)
				}
				return true
			}
			pass.Reportf(call.Pos(), "call to %s reaches goroutine or channel operations from a deterministic package; schedule through the kernel's event loop, or annotate //simlint:%s <why>", callsummary.FuncName(callee), Key)
			return true
		})
	}
	return nil, nil
}
