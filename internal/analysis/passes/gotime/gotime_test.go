package gotime_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/gotime"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), gotime.Analyzer,
		"a/internal/kernel", "a/internal/cluster")
}
