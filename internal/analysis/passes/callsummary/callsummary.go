// Package callsummary is the simlint suite's shared inter-procedural
// pass: for every function declared in a tracked package it computes
// a transitive effect summary — does calling this function (or
// anything it reaches) read the host wall clock, perform float
// arithmetic, or touch goroutines and channels? — and exports it as
// an object fact. Downstream analyzers (wallclock, floatdet, gotime)
// consume the summaries through Requires/ResultOf: when code inside
// their policed scope calls a helper two packages below it, the
// helper's fact carries the violation back up to the call site inside
// the scope, which is where the diagnostic belongs.
//
// Effects are collected conservatively from syntax plus type
// information: a closure with effects marks its defining function
// even if the closure is only stored, and dynamic calls (interface
// methods, function values) contribute nothing. Sites suppressed by a
// justified simlint annotation do not contribute either — an
// annotation is a determinism proof for the site, so the taint must
// not outlive it (internal/sim's annotated math/rand wrapper is the
// canonical case: without this rule every machine's rng draw would
// light up the tree).
package callsummary

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/annotation"
	"repro/internal/analysis/detscope"
	"repro/internal/analysis/passes/guestapi"
)

// Effects is a bit set of behaviors a function transitively performs.
type Effects uint8

const (
	// WallClock marks host time reads (time.Now/time.Since) and host
	// rng draws (math/rand outside the seeded sim.Rand wrapper).
	WallClock Effects = 1 << iota
	// Float marks non-constant floating-point arithmetic, conversions
	// to or from float types, maps keyed on floats, and switches on
	// float values.
	Float
	// Concurrency marks goroutine spawns, channel operations, select
	// statements, and any use of sync or sync/atomic.
	Concurrency
)

// String renders the bit set for diagnostics, e.g. "wall-clock+float".
func (e Effects) String() string {
	var parts []string
	if e&WallClock != 0 {
		parts = append(parts, "wall-clock")
	}
	if e&Float != 0 {
		parts = append(parts, "float")
	}
	if e&Concurrency != 0 {
		parts = append(parts, "concurrency")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// EffectFact is the per-function summary serialized through .vetx
// files. Functions whose summary is empty export no fact: absence
// means "no effects".
type EffectFact struct{ E Effects }

func (*EffectFact) AFact() {}

func (f *EffectFact) String() string { return "effects(" + f.E.String() + ")" }

// Analyzer computes and exports per-function effect summaries. It
// reports nothing itself; its value is the facts and the Result
// handed to dependent analyzers.
var Analyzer = &analysis.Analyzer{
	Name: "callsummary",
	Doc: "compute per-function transitive effect summaries as facts\n\n" +
		"Records for every declared function whether it transitively reads\n" +
		"the wall clock, performs float arithmetic, or uses goroutines and\n" +
		"channels, so the wallclock, floatdet, and gotime analyzers can flag\n" +
		"calls whose violation is buried packages below the policed scope.",
	FactTypes: []analysis.Fact{(*EffectFact)(nil)},
	Run:       run,
}

// Annotation keys honored while collecting direct effects. Each must
// mirror the Key constant of the consuming analyzer (which cannot be
// imported here without creating a Requires-graph import cycle); the
// cmd/simlint registration test cross-checks them.
const (
	WallclockKey = "wallclock-ok"
	FloatKey     = "float-ok"
	GotimeKey    = "gotime-ok"
)

// A Result answers effect queries for dependent analyzers: local
// functions from this unit's fixed point, external ones from imported
// facts. It is this package's ResultOf value.
type Result struct {
	local    map[*types.Func]Effects
	imported func(fn *types.Func) Effects
}

// Effects returns fn's transitive effect summary, or zero for nil,
// dynamic, and unsummarized (untracked or effect-free) functions.
func (r *Result) Effects(fn *types.Func) Effects {
	if fn == nil {
		return 0
	}
	if e, ok := r.local[fn]; ok {
		return e
	}
	return r.imported(fn)
}

func run(pass *analysis.Pass) (any, error) {
	notes := annotation.New(pass.Fset, pass.Files)
	res := &Result{
		local: make(map[*types.Func]Effects),
		imported: func(fn *types.Func) Effects {
			var f EffectFact
			if pass.ImportObjectFact(fn, &f) {
				return f.E
			}
			return 0
		},
	}
	// Summaries originate only in tracked packages, mirroring the unit
	// driver's fast path (which never even type-checks untracked
	// fact-only units). A rand or time package would otherwise taint
	// itself through self-references; root APIs are instead recognized
	// directly at call sites in tracked code.
	if !detscope.Tracked(pass.Pkg.Path()) {
		return res, nil
	}

	// Pass 1: per-declaration direct effects and static callees.
	// Closure bodies fold into their enclosing declaration.
	var order []*types.Func
	direct := make(map[*types.Func]Effects)
	callees := make(map[*types.Func][]*types.Func)
	for _, f := range pass.Files {
		randOK := fileRandImportOK(notes, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			e, calls := scanBody(pass.TypesInfo, notes, fd.Body, randOK)
			order = append(order, fn)
			direct[fn] = e
			callees[fn] = calls
		}
	}

	// Pass 2: seed each function with its direct effects plus the
	// imported facts of external callees, then close over the
	// intra-package call graph. Three bits per function bounds the
	// iteration count.
	eff := make(map[*types.Func]Effects, len(order))
	for _, fn := range order {
		e := direct[fn]
		for _, c := range callees[fn] {
			if _, local := direct[c]; !local {
				e |= res.imported(c)
			}
		}
		eff[fn] = e
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			e := eff[fn]
			for _, c := range callees[fn] {
				e |= eff[c] // zero for non-local callees
			}
			if e != eff[fn] {
				eff[fn] = e
				changed = true
			}
		}
	}

	for _, fn := range order {
		res.local[fn] = eff[fn]
		if eff[fn] != 0 {
			pass.ExportObjectFact(fn, &EffectFact{E: eff[fn]})
		}
	}
	return res, nil
}

// scanBody collects a declaration's direct effects (suppressed sites
// excluded) and its statically resolvable callees, closures included.
func scanBody(info *types.Info, notes *annotation.Index, body *ast.BlockStmt, randOK bool) (Effects, []*types.Func) {
	var e Effects
	var calls []*types.Func
	ok := func(pos token.Pos, key string) bool {
		n, found := notes.At(pos, key)
		return found && n.Reason != ""
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			// Methods promoted from sim.Rand's embedded *rand.Rand are
			// the sanctioned seeded stream, not a host rng.
			if s, found := info.Selections[sel]; found && recvIsSimRand(s.Recv()) {
				return false
			}
		}
		if call, isCall := n.(*ast.CallExpr); isCall {
			if fn := guestapi.Callee(info, call); fn != nil {
				calls = append(calls, fn)
			}
		}
		if id, isIdent := n.(*ast.Ident); isIdent {
			if clock, rand := clockRef(info, id); clock && !(rand && randOK) && !ok(id.Pos(), WallclockKey) {
				e |= WallClock
			}
		}
		if _, found := ConcOp(info, n); found && !ok(n.Pos(), GotimeKey) {
			e |= Concurrency
		}
		if _, found := FloatOp(info, n); found && !ok(n.Pos(), FloatKey) {
			e |= Float
		}
		return true
	})
	return e, calls
}

// fileRandImportOK reports whether the file's math/rand import carries
// a justified wallclock-ok annotation, which sanctions every rand use
// in the file (the sim wrapper's convention, shared with wallclock).
func fileRandImportOK(notes *annotation.Index, f *ast.File) bool {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !randPaths[path] {
			continue
		}
		if n, found := notes.At(imp.Pos(), WallclockKey); found && n.Reason != "" {
			return true
		}
	}
	return false
}

// randPaths are the host rng packages.
var randPaths = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// timeFuncs are the wall-clock reads from package time.
var timeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
}

// clockRef classifies an identifier as a wall-clock or host-rng
// reference (and tells the two apart, since rand references can be
// sanctioned file-wide by an annotated import).
func clockRef(info *types.Info, id *ast.Ident) (clock, rand bool) {
	obj := info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return false, false
	}
	switch path := obj.Pkg().Path(); {
	case path == "time" && timeFuncs[obj.Name()] && isPkgFunc(obj):
		return true, false
	case randPaths[path]:
		return true, true
	}
	return false, false
}

// ConcOp classifies a node as a direct concurrency operation,
// returning a human-readable description for diagnostics. The gotime
// analyzer reports these sites; this pass turns them into summary
// bits.
func ConcOp(info *types.Info, n ast.Node) (string, bool) {
	switch n := n.(type) {
	case *ast.GoStmt:
		return "go statement", true
	case *ast.SendStmt:
		return "channel send", true
	case *ast.SelectStmt:
		return "select statement", true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive", true
		}
	case *ast.RangeStmt:
		if t, ok := info.Types[n.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				return "range over channel", true
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
				return "close of channel", true
			}
		}
	case *ast.Ident:
		obj := info.Uses[n]
		if obj != nil && obj.Pkg() != nil {
			if p := obj.Pkg().Path(); p == "sync" || p == "sync/atomic" {
				return "use of " + p + "." + obj.Name(), true
			}
		}
	}
	return "", false
}

// FloatOp classifies a node as a non-constant floating-point
// operation, returning a description for diagnostics. Constant
// expressions are excluded: they fold at compile time, identically on
// every machine. The floatdet analyzer reports these sites; this pass
// turns them into summary bits.
func FloatOp(info *types.Info, n ast.Node) (string, bool) {
	switch n := n.(type) {
	case *ast.BinaryExpr:
		switch n.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			if !isConst(info, n) && (isFloatExpr(info, n.X) || isFloatExpr(info, n.Y)) {
				return "float arithmetic (" + n.Op.String() + ")", true
			}
		}
	case *ast.UnaryExpr:
		if (n.Op == token.SUB || n.Op == token.ADD) && !isConst(info, n) && isFloatExpr(info, n.X) {
			return "float arithmetic (" + n.Op.String() + ")", true
		}
	case *ast.AssignStmt:
		switch n.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(n.Lhs) == 1 && isFloatExpr(info, n.Lhs[0]) {
				return "float arithmetic (" + n.Tok.String() + ")", true
			}
		}
	case *ast.IncDecStmt:
		if isFloatExpr(info, n.X) {
			return "float arithmetic (" + n.Tok.String() + ")", true
		}
	case *ast.CallExpr:
		// A call whose Fun is a type is a conversion; flag those that
		// create float data or round it away.
		if len(n.Args) != 1 || isConst(info, n) {
			break
		}
		tv, ok := info.Types[ast.Unparen(n.Fun)]
		if !ok || !tv.IsType() {
			break
		}
		to, from := isFloatType(tv.Type), isFloatExpr(info, n.Args[0])
		if to && !from {
			return "conversion to " + tv.Type.String(), true
		}
		if from && !to {
			return "conversion from float to " + tv.Type.String(), true
		}
	case *ast.MapType:
		if tv, ok := info.Types[n.Key]; ok && isFloatType(tv.Type) {
			return "map keyed on float", true
		}
	case *ast.SwitchStmt:
		if n.Tag != nil && isFloatExpr(info, n.Tag) {
			return "switch on float", true
		}
	}
	return "", false
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && isFloatType(tv.Type)
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// FuncName renders a function for diagnostics as pkg.Func or
// pkg.Type.Method, the shape readers of the flagged call site expect.
func FuncName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := types.Unalias(rt).(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := types.Unalias(rt).(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// recvIsSimRand reports whether a method selection's static receiver
// is the deterministic sim.Rand wrapper (or a fixture twin).
func recvIsSimRand(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Name() != "Rand" || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "sim" || strings.HasSuffix(path, "/sim")
}

// isPkgFunc reports whether obj is a package-level function, so a
// method on a type defined in package time (Time.Sub) never matches
// the timeFuncs set.
func isPkgFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
