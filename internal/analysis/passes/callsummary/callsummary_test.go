package callsummary_test

import (
	"go/ast"
	"go/types"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/callsummary"
)

// probe reports every declared function's non-empty effect summary at
// its name, so fixtures can assert summaries with `// want` comments
// — including summaries whose effects arrive as facts from other
// fixture packages.
var probe = &analysis.Analyzer{
	Name:     "callsummaryprobe",
	Doc:      "report each declared function's effect summary",
	Requires: []*analysis.Analyzer{callsummary.Analyzer},
	Run: func(pass *analysis.Pass) (any, error) {
		res := pass.ResultOf[callsummary.Analyzer].(*callsummary.Result)
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if e := res.Effects(fn); e != 0 {
					pass.Reportf(fd.Name.Pos(), "effects: %s", e)
				}
			}
		}
		return nil, nil
	},
}

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), probe,
		"a/internal/lib", "a/internal/core")
}
