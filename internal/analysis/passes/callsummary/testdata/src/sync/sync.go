// Package sync is a miniature stub of the standard library's sync
// package for the callsummary fixtures; see the time stub for why
// imports resolve here.
package sync

type Mutex struct{ locked bool }

func (m *Mutex) Lock()   { m.locked = true }
func (m *Mutex) Unlock() { m.locked = false }
