// Package core calls into lib: its summaries must pick up lib's
// effects through facts, and intra-package recursion must reach a
// fixed point.
package core

import "a/internal/lib"

// Indirect reaches the wall clock one package down.
func Indirect() { // want `effects: wall-clock`
	_ = lib.Stamp()
}

// Both reaches float arithmetic and sync use through two different
// helpers.
func Both() { // want `effects: float\+concurrency`
	_ = lib.Ratio(1, 2)
	lib.Locked()
}

// Clean calls only effect-free and annotation-sanctioned helpers.
func Clean() {
	_ = lib.Pure(3)
	_ = lib.Justified()
}

// PingA and PongB are mutually recursive; the fixed point must
// terminate and propagate PongB's wall-clock effect to both.
func PingA(n int) { // want `effects: wall-clock`
	if n > 0 {
		PongB(n - 1)
	}
}

func PongB(n int) { // want `effects: wall-clock`
	PingA(n)
	_ = lib.Stamp()
}
