// Package lib holds the leaf functions whose direct effects the
// callsummary pass must summarize and export as facts.
package lib

import (
	"sync"
	"time"
)

// Stamp reads the host wall clock directly.
func Stamp() time.Time { // want `effects: wall-clock`
	return time.Now()
}

// Ratio converts to float and divides.
func Ratio(a, b int) float64 { // want `effects: float`
	return float64(a) / float64(b)
}

// Locked uses the sync package.
func Locked() { // want `effects: concurrency`
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}

// Pure has no effects and therefore no summary and no fact.
func Pure(x int) int { return x + 1 }

// Justified uses the wall clock behind a justified annotation: the
// suppression is a determinism proof for the site, so no taint
// escapes to callers.
func Justified() time.Time {
	return time.Now() //simlint:wallclock-ok fixture: pretend this is virtualized
}

// Definer only defines a closure with a channel operation, but a
// closure's effects attribute conservatively to its definer.
func Definer() func() { // want `effects: concurrency`
	return func() {
		ch := make(chan int)
		close(ch)
	}
}
