// Package time is a miniature stub of the standard library's time
// package for the callsummary fixtures. The analysistest loader
// resolves imports with an empty GOROOT, so this stub, never the real
// standard library, is what fixtures bind to.
package time

type Time struct{}

type Duration int64

func Now() Time { return Time{} }

func Since(t Time) Duration { return 0 }
