package experiments

import (
	"strings"
	"testing"
)

func tiny() Options {
	o := quick()
	o.Scale = 0.005
	return o
}

// barPairsRise asserts each program's attack bar exceeds its normal
// bar by at least minGain seconds (0 = just not lower by a tick).
func barPairsRise(t *testing.T, fig *Figure, minGain float64) {
	t.Helper()
	if len(fig.Bars) != 8 {
		t.Fatalf("%s: bars = %d, want 8", fig.ID, len(fig.Bars))
	}
	for i := 0; i+1 < len(fig.Bars); i += 2 {
		normal, attack := fig.Bars[i].Total(), fig.Bars[i+1].Total()
		if attack < normal+minGain {
			t.Errorf("%s %s: attack %.3f < normal %.3f + %.3f",
				fig.ID, fig.Bars[i].Group, attack, normal, minGain)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	fig, err := Figure5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Constructor payload is 34*scale = 0.17 s on every program.
	barPairsRise(t, fig, 0.1)
}

func TestFigure6Shape(t *testing.T) {
	fig, err := Figure6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	barPairsRise(t, fig, 0.1)
	// W is the libm-heavy program: its gain must be the largest.
	gains := map[string]float64{}
	for i := 0; i+1 < len(fig.Bars); i += 2 {
		gains[fig.Bars[i].Group] = fig.Bars[i+1].Total() - fig.Bars[i].Total()
	}
	for _, k := range []string{"O", "B"} {
		if gains["W"] <= gains[k] {
			t.Errorf("substitution gain W (%.2f) should exceed %s (%.2f)", gains["W"], k, gains[k])
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	o := tiny()
	o.Scale = 0.02 // storms need some room
	fig, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	// 6 groups x 2 bars.
	if len(fig.Bars) != 12 {
		t.Fatalf("bars = %d, want 12", len(fig.Bars))
	}
	// Victim bars (even indices): no-attack <= nice-20, and the
	// gradient is monotone non-decreasing within tolerance.
	victim := make([]float64, 0, 6)
	for i := 0; i < len(fig.Bars); i += 2 {
		victim = append(victim, fig.Bars[i].Total())
	}
	if victim[5] <= victim[0]*1.05 {
		t.Fatalf("nice-20 victim time %.3f not above baseline %.3f", victim[5], victim[0])
	}
	for i := 2; i < 6; i++ {
		if victim[i] < victim[i-1]-0.05 {
			t.Fatalf("gradient not monotone: %v", victim)
		}
	}
	// Fork's billed time under attack is below its independent run.
	forkAlone := fig.Bars[1].Total()
	forkAttack := fig.Bars[11].Total()
	if forkAttack >= forkAlone {
		t.Fatalf("Fork billed %.3f under attack, %.3f alone: theft not reflected", forkAttack, forkAlone)
	}
}

func TestFigure8ThreadedVictimResists(t *testing.T) {
	o := tiny()
	o.Scale = 0.02
	fig7, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	fig8, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	rel := func(fig *Figure) float64 {
		base := fig.Bars[0].Total()
		last := fig.Bars[10].Total() // victim at nice-20
		return (last - base) / base
	}
	w, b := rel(fig7), rel(fig8)
	if b >= w {
		t.Fatalf("B inflation (%.1f%%) should be below W's (%.1f%%): threads absorb the error", b*100, w*100)
	}
}

func TestFigure9SystemTimeRises(t *testing.T) {
	// B's leader must still be in its accounting phase when the
	// tracer attaches, which needs a bit of scale.
	o := tiny()
	o.Scale = 0.02
	fig, err := Figure9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Bars) != 8 {
		t.Fatalf("bars = %d", len(fig.Bars))
	}
	for i := 0; i+1 < len(fig.Bars); i += 2 {
		sysNormal := fig.Bars[i].Segments[1].Value
		sysAttack := fig.Bars[i+1].Segments[1].Value
		if sysAttack <= sysNormal {
			t.Errorf("%s: system time %.4f -> %.4f under thrashing",
				fig.Bars[i].Group, sysNormal, sysAttack)
		}
	}
}

func TestFigure10SlightSystemRise(t *testing.T) {
	fig, err := Figure10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(fig.Bars); i += 2 {
		normal, attack := fig.Bars[i], fig.Bars[i+1]
		if attack.Segments[1].Value <= normal.Segments[1].Value {
			t.Errorf("%s: no system-time rise", normal.Group)
		}
		// User time must be (nearly) unchanged: the flood costs
		// system time only.
		if du := attack.Segments[0].Value - normal.Segments[0].Value; du > 0.05 {
			t.Errorf("%s: user time moved by %.3f under flood", normal.Group, du)
		}
	}
}

func TestComparisonTableShape(t *testing.T) {
	fig, err := ComparisonTable(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 attacks", len(fig.Rows))
	}
	text := fig.Render()
	for _, want := range []string{"Shell Attack", "Thrashing", "flood", "vulnerability"} {
		if !strings.Contains(text, want) {
			t.Errorf("comparison table missing %q", want)
		}
	}
}

func TestTrustedMitigationRejectsAllAttacks(t *testing.T) {
	// Needs enough scale that every attack's overcharge clears the
	// auditor's 0.25 s absolute noise floor.
	o := tiny()
	o.Scale = 0.02
	fig, err := TrustedMitigation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (baseline + 7 attacks)", len(fig.Rows))
	}
	if fig.Rows[0][6] != "TRUSTED" {
		t.Fatalf("baseline verdict = %s", fig.Rows[0][6])
	}
	for _, row := range fig.Rows[1:] {
		if row[0] == "exception flood" {
			// The weakest attack (paper Section V-C): the OOM killer
			// caps it, so at small scale its overcharge can stay
			// under the auditor's noise floor.
			continue
		}
		if row[6] != "REJECTED" {
			t.Errorf("attack %s verdict = %s, want REJECTED", row[0], row[6])
		}
	}
}

func TestAblationsRun(t *testing.T) {
	o := tiny()
	o.Scale = 0.02
	for _, tc := range []struct {
		name string
		fn   func(Options) (*Figure, error)
	}{
		{"tickrate", AblationTickRate},
		{"sched", AblationScheduler},
		{"irq", AblationIRQAccounting},
		{"detector", AblationDetector},
	} {
		fig, err := tc.fn(o)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(fig.Rows) < 2 {
			t.Fatalf("%s: rows = %d", tc.name, len(fig.Rows))
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	o := tiny()
	a, err := Run(RunSpec{Opts: o, Workload: "P"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(RunSpec{Opts: o, Workload: "P"})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range Schemes {
		if a.Victim.Total(scheme) != b.Victim.Total(scheme) {
			t.Fatalf("scheme %s diverged across identical runs", scheme)
		}
	}
	if a.ElapsedSec != b.ElapsedSec {
		t.Fatal("elapsed diverged")
	}
}
