// Cross-machine exception flood: the paper's memory-hog attack
// (Section IV-B4 / Fig. 11) launched from a neighbor machine against
// shared swap. The victim host physically owns the swap device and
// exports it; the neighbor mounts it remotely and runs a hog whose
// footprint over-commits its own RAM, so every hog page fault becomes
// a remote swap I/O: the request's rx interrupt plus the swap
// server's block-layer work land on the victim host, billed to
// whichever task is current there — the victim job, under commodity
// accounting. The neighbor never runs a single instruction on the
// victim host, yet the victim's bill inflates.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/textplot"
)

// SwapFloodSpec describes one shared-swap pressure scenario: machine
// 0 is the victim host (runs the billed job and serves swap), machine
// 1 the neighbor (runs the hog when Hog is set).
type SwapFloodSpec struct {
	Opts Options
	// Victim is the billed job on the swap host.
	Victim ClusterVictim
	// Hog arms the neighbor's memory hog; false is the baseline.
	Hog bool
	// NeighborMemBytes sizes the neighbor machine's RAM; zero selects
	// 1/8 of the victim host's (small enough that the hog pages
	// constantly without needing a paper-scale footprint).
	NeighborMemBytes uint64
	// HogSeconds bounds the hog's pressure window; zero derives 1.5x
	// the victim's baseline so the pressure outlives the victim.
	HogSeconds float64
	// ServiceUs is the host-side service per remote page; zero
	// selects cluster.DefaultSwapServiceUs.
	ServiceUs uint64
	// LinkLatencyUs is the host↔neighbor link latency; zero selects
	// cluster.DefaultLatencyUs.
	LinkLatencyUs uint64
}

// SwapFloodOut is one shared-swap scenario's harvest.
type SwapFloodOut struct {
	Spec   SwapFloodSpec
	Victim ClusterVictimOut
	// RemoteReads/RemoteWrites count the neighbor's page I/Os against
	// the shared device; each one billed the host an rx interrupt
	// plus swap-server service.
	RemoteReads, RemoteWrites uint64
	// HostRxPackets counts remote-swap request frames the host's NIC
	// received.
	HostRxPackets uint64
	// HogMajorFaults counts the hog's own major faults on the
	// neighbor machine.
	HogMajorFaults uint64
	// ElapsedSec is the slowest machine's virtual wall time.
	ElapsedSec float64
}

// swapHogRate approximates the hog's sustainable page-touch rate: one
// blocking swap-in per touch at mem.DiskLatency, so ~200 touches per
// virtual second. The budget only bounds the pressure window; the
// actual rate is set by the (possibly contended) shared device.
const swapHogRate = 200

// RunSwapFlood executes one shared-swap scenario in deterministic
// lockstep.
func RunSwapFlood(spec SwapFloodSpec) (*SwapFloodOut, error) {
	o := spec.Opts.norm()
	tick := sim.Cycles(uint64(o.Freq) / o.HZ)
	accts, err := victimAccountants(spec.Victim.Billing, tick)
	if err != nil {
		return nil, err
	}
	hogSec := spec.HogSeconds
	if hogSec == 0 {
		s, err := (ClusterRunSpec{Victims: []ClusterVictim{spec.Victim}}).floodSeconds(o)
		if err != nil {
			return nil, err
		}
		hogSec = s
	}
	neighborMem := spec.NeighborMemBytes
	if neighborMem == 0 {
		neighborMem = physMem(o) / 8
	}

	var launch *launched
	hostCfg := o.machineConfig()
	hostCfg.Seed = clusterSeed(o.Seed, 0)
	hostCfg.Accountants = accts
	neighborCfg := o.machineConfig()
	neighborCfg.Seed = clusterSeed(o.Seed, 1)
	neighborCfg.PhysMemBytes = neighborMem

	// The hog sweeps a footprint of twice the neighbor's RAM, so
	// after the first pass every store evicts a dirty page and
	// swap-ins serialise on the shared device. The budget covers one
	// full warmup sweep (minor faults, fast) plus hogSec worth of
	// steady-state device-bound major faulting.
	footprint := 2 * neighborMem
	pages := footprint / mem.DefaultPageSize
	touches := pages + uint64(hogSec*swapHogRate)

	var hogPID proc.PID
	machines := []cluster.MachineSpec{
		{
			Config: hostCfg,
			Boot: func(_ *cluster.Cluster, m *kernel.Machine) error {
				l, err := launchSpec(m, RunSpec{
					Opts:       o,
					Workload:   spec.Victim.Workload,
					VictimNice: spec.Victim.Nice,
				})
				if err != nil {
					return err
				}
				launch = l
				return nil
			},
		},
		{
			Config: neighborCfg,
			Boot: func(_ *cluster.Cluster, m *kernel.Machine) error {
				if !spec.Hog {
					return nil // baseline: the neighbor is quiet
				}
				p, err := m.Spawn(kernel.SpawnConfig{
					Name:    "memhog",
					Content: "remote-swap memory exhaustion attack v1",
					Body: func(ctx guest.Context) {
						base := ctx.Call1("malloc", footprint)
						for n := uint64(0); n < touches; n++ {
							ctx.Store(base + (n%pages)*mem.DefaultPageSize)
							ctx.Compute(2000)
						}
					},
				})
				if p != nil {
					hogPID = p.PID
				}
				return err
			},
		},
	}

	cl, err := cluster.New(cluster.Config{
		Machines: machines,
		Links:    []cluster.LinkSpec{{From: 1, To: 0, LatencyUs: spec.LinkLatencyUs}},
		SharedSwap: &cluster.SharedSwapSpec{
			Host:      0,
			Clients:   []int{1},
			ServiceUs: spec.ServiceUs,
		},
	})
	if err != nil {
		return nil, err
	}
	if err := cl.Run(); err != nil {
		return nil, fmt.Errorf("swapflood %s: %w", swapFloodKey(spec), err)
	}

	host, neighbor := cl.Machine(0), cl.Machine(1)
	billing := spec.Victim.Billing
	if billing == "" {
		billing = "jiffy"
	}
	out := &SwapFloodOut{
		Spec: spec,
		Victim: ClusterVictimOut{
			Billing:         billing,
			Run:             launch.harvest(host),
			PacketsReceived: host.NIC().Received(),
		},
		RemoteReads:   neighbor.Disk().IOs(),
		RemoteWrites:  neighbor.Disk().Writes(),
		HostRxPackets: host.NIC().Received(),
	}
	if hogPID != 0 {
		out.HogMajorFaults = neighbor.Stats(hogPID).MajorFaults
	}
	out.ElapsedSec = clusterElapsedSec(cl)
	return out, nil
}

func swapFloodKey(spec SwapFloodSpec) string {
	hog := "baseline"
	if spec.Hog {
		hog = "hog"
	}
	return fmt.Sprintf("%s/%s", hog, spec.Victim.Billing)
}

// RunAllSwapFloods executes every scenario on its own lockstep
// machine set across the campaign worker pool — the RunAll contract.
//
// Deprecated: RunAllSwapFloods is Campaign("swapflood", ...) over RunSwapFlood;
// new callers should use Campaign directly. Kept as a thin wrapper
// for the pre-generic API.
func RunAllSwapFloods(specs []SwapFloodSpec, parallelism int) ([]*SwapFloodOut, error) {
	return Campaign("swapflood", specs, parallelism, RunSwapFlood, swapFloodKey)
}

// CrossMachineExceptionFlood regenerates the cluster-level exception
// flood: a neighbor machine's memory hog pressures the swap device
// the victim host exports, once against a jiffy-billed host and once
// against a process-aware host. The commodity bill absorbs the remote
// swap service; the process-aware host diverts it to the system
// account.
func CrossMachineExceptionFlood(o Options) (*Figure, error) {
	o = o.norm()
	billings := []string{"jiffy", "process-aware"}
	specs := make([]SwapFloodSpec, 0, 2*len(billings))
	for _, billing := range billings {
		for _, hog := range []bool{false, true} {
			specs = append(specs, SwapFloodSpec{
				Opts:   o,
				Victim: ClusterVictim{Workload: "O", Billing: billing},
				Hog:    hog,
			})
		}
	}
	outs, err := RunAllSwapFloods(specs, o.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("cross-machine exception flood: %w", err)
	}

	fig := &Figure{
		ID:    "Cluster Exception Flood",
		Title: "Cross-Machine Exception Flooding (memory-hog neighbor vs. shared-swap host)",
		Unit:  "CPU seconds (billed by the victim host's own scheme)",
	}
	groups := []string{"jiffy-host", "procaware-host"}
	labels := []string{"no hog", "memhog neighbor"}
	for bi, group := range groups {
		for hi, label := range labels {
			out := outs[bi*2+hi]
			user, sys := victimBillSeconds(out.Victim)
			fig.Bars = append(fig.Bars, textplot.Bar{
				Group: group,
				Label: label,
				Segments: []textplot.Segment{
					{Name: "user", Value: user},
					{Name: "system", Value: sys},
				},
			})
		}
	}
	hogged := outs[1] // jiffy host under pressure
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("neighbor hog took %d major faults, issuing %d remote reads + %d remote writebacks against the host's swap (%d request frames at the host NIC)",
			hogged.HogMajorFaults, hogged.RemoteReads, hogged.RemoteWrites, hogged.HostRxPackets),
		"expectation: jiffy-billed host's system time grows with remote swap service (rx interrupts + block-layer work land on the current task); process-aware host's bill is flat",
		fmt.Sprintf("system account on the process-aware host under pressure: %.2f s", outs[3].Victim.Run.SystemAccountSec),
	)
	return fig, nil
}
