package experiments

import (
	"testing"
)

func quickSwapFloodSpec(billing string, hog bool) SwapFloodSpec {
	return SwapFloodSpec{
		Opts:   quick(),
		Victim: ClusterVictim{Workload: "O", Billing: billing},
		Hog:    hog,
	}
}

// TestSwapFloodPressuresHostThroughSharedSwap pins the scenario's
// mechanics: the neighbor hog actually pages against the shared
// device, its request frames reach the host NIC, and the pressure
// inflates the commodity-billed host without touching the
// process-aware host's own bill.
func TestSwapFloodPressuresHostThroughSharedSwap(t *testing.T) {
	base, err := RunSwapFlood(quickSwapFloodSpec("jiffy", false))
	if err != nil {
		t.Fatal(err)
	}
	hogged, err := RunSwapFlood(quickSwapFloodSpec("jiffy", true))
	if err != nil {
		t.Fatal(err)
	}
	if base.RemoteReads+base.RemoteWrites != 0 || base.HostRxPackets != 0 {
		t.Errorf("baseline saw remote I/O: reads=%d writes=%d rx=%d", base.RemoteReads, base.RemoteWrites, base.HostRxPackets)
	}
	if hogged.HogMajorFaults == 0 {
		t.Fatal("hog took no major faults: no swap pressure generated")
	}
	if hogged.RemoteReads == 0 || hogged.RemoteWrites == 0 {
		t.Fatalf("remote I/O reads=%d writes=%d, want both nonzero", hogged.RemoteReads, hogged.RemoteWrites)
	}
	// One request frame per remote I/O, minus those issued after the
	// host had already finished serving (the hog outlives the victim).
	if hogged.HostRxPackets == 0 || hogged.HostRxPackets > hogged.RemoteReads+hogged.RemoteWrites {
		t.Errorf("host rx = %d, want in (0, %d] (one frame per remote I/O while the host runs)",
			hogged.HostRxPackets, hogged.RemoteReads+hogged.RemoteWrites)
	}

	jiffyGain := hogged.Victim.Run.Victim.Total("jiffy") - base.Victim.Run.Victim.Total("jiffy")
	if jiffyGain <= 0.005 {
		t.Errorf("jiffy bill gained only %.4f s under remote swap pressure, want visible inflation", jiffyGain)
	}

	paBase, err := RunSwapFlood(quickSwapFloodSpec("process-aware", false))
	if err != nil {
		t.Fatal(err)
	}
	paHogged, err := RunSwapFlood(quickSwapFloodSpec("process-aware", true))
	if err != nil {
		t.Fatal(err)
	}
	paGain := paHogged.Victim.Run.Victim.Total("process-aware") - paBase.Victim.Run.Victim.Total("process-aware")
	if paGain > 0.01 {
		t.Errorf("process-aware bill gained %.4f s, want ~0 (remote service lands on the system account)", paGain)
	}
	if sys := paHogged.Victim.Run.SystemAccountSec; sys <= 0 {
		t.Errorf("system account = %.4f s under pressure, want > 0", sys)
	}
}

// TestSwapFloodDeterministic pins exact replay of the lockstep
// shared-swap scenario.
func TestSwapFloodDeterministic(t *testing.T) {
	a, err := RunSwapFlood(quickSwapFloodSpec("jiffy", true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSwapFlood(quickSwapFloodSpec("jiffy", true))
	if err != nil {
		t.Fatal(err)
	}
	if a.HostRxPackets != b.HostRxPackets || a.HogMajorFaults != b.HogMajorFaults || a.ElapsedSec != b.ElapsedSec {
		t.Fatalf("same-seed swapflood diverged: (%d,%d,%f) vs (%d,%d,%f)",
			a.HostRxPackets, a.HogMajorFaults, a.ElapsedSec, b.HostRxPackets, b.HogMajorFaults, b.ElapsedSec)
	}
	for _, scheme := range Schemes {
		if at, bt := a.Victim.Run.Victim.Total(scheme), b.Victim.Run.Victim.Total(scheme); at != bt {
			t.Errorf("%s total %v vs %v across same-seed runs", scheme, at, bt)
		}
	}
}

// TestSwapFloodParallelDeterminism mirrors the campaign contract for
// the artifact.
func TestSwapFloodParallelDeterminism(t *testing.T) {
	opts := func(par int) Options {
		o := quick()
		o.Parallelism = par
		return o
	}
	seq, err := CrossMachineExceptionFlood(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := CrossMachineExceptionFlood(opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if s, p := seq.Render(), par.Render(); s != p {
		t.Errorf("parallel render diverged from sequential\n--- sequential ---\n%s--- parallel ---\n%s", s, p)
	}
}
