// Multi-attacker flood: N attacker machines converge on one victim
// machine through a shared bottleneck wire. Each attacker's packet
// generator transmits through the billed NIC tx path (NetSend), and
// every attacker→victim link's forward direction serialises through
// one shared ingress pipe with deterministic tail-drop, so aggregate
// delivery saturates at the bottleneck's capacity no matter how many
// attackers pile on: the victim's commodity bill inflates with
// delivered — not offered — packet rate.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/textplot"
)

// MultiFloodSpec describes one N-attackers → one-victim scenario
// executed in deterministic lockstep.
type MultiFloodSpec struct {
	Opts Options
	// Attackers is the number of attacker machines (≥ 1).
	Attackers int
	// PerAttackerPPS is each attacker's offered transmit rate.
	PerAttackerPPS uint64
	// Victim is the billed machine at the bottleneck's far end.
	Victim ClusterVictim
	// BottleneckPPS is the shared ingress wire's capacity; zero
	// selects cluster.DefaultLinkPPS.
	BottleneckPPS uint64
	// QueueDepth bounds the shared wire's tail-drop queue; zero
	// selects cluster.DefaultQueueDepth.
	QueueDepth uint64
	// FloodSeconds is each attacker's transmit duration; zero derives
	// 1.5x the victim's baseline so the flood outlives it.
	FloodSeconds float64
	// LinkLatencyUs is the one-way latency of every link; zero
	// selects cluster.DefaultLatencyUs.
	LinkLatencyUs uint64
}

// MultiFloodOut is one multi-attacker scenario's harvest.
type MultiFloodOut struct {
	Spec   MultiFloodSpec
	Victim ClusterVictimOut
	// Offered/Carried/Dropped sum the attacker links' counters:
	// Offered = Carried + Dropped.
	Offered, Carried, Dropped uint64
	// ElapsedSec is the slowest machine's virtual wall time.
	ElapsedSec float64
}

// RunMultiFlood executes one scenario: machines 0..N-1 are the
// attackers, machine N the victim; every attacker link's forward
// direction shares one bottleneck pipe into the victim.
func RunMultiFlood(spec MultiFloodSpec) (*MultiFloodOut, error) {
	o := spec.Opts.norm()
	if spec.Attackers < 1 {
		return nil, fmt.Errorf("multiflood: need at least one attacker, have %d", spec.Attackers)
	}
	if spec.PerAttackerPPS == 0 {
		return nil, fmt.Errorf("multiflood: zero per-attacker rate")
	}
	floodSec := spec.FloodSeconds
	if floodSec == 0 {
		s, err := (ClusterRunSpec{Victims: []ClusterVictim{spec.Victim}}).floodSeconds(o)
		if err != nil {
			return nil, err
		}
		floodSec = s
	}
	tick := sim.Cycles(uint64(o.Freq) / o.HZ)
	accts, err := victimAccountants(spec.Victim.Billing, tick)
	if err != nil {
		return nil, err
	}

	machines := make([]cluster.MachineSpec, 0, spec.Attackers+1)
	pps := spec.PerAttackerPPS
	packets := uint64(floodSec * float64(pps))
	for a := 0; a < spec.Attackers; a++ {
		cfg := o.machineConfig()
		cfg.Seed = clusterSeed(o.Seed, a)
		machines = append(machines, cluster.MachineSpec{
			Config: cfg,
			Boot: func(c *cluster.Cluster, m *kernel.Machine) error {
				// Every attacker addresses the victim machine directly;
				// the NIC's routing table resolves the frame onto the
				// attacker's link into the bottleneck. Transmitting
				// through NetSend (floodBody) bills the tx path and
				// observes the wire's drop feedback; Offered counts
				// what was actually sent.
				_, err := m.Spawn(guestSpawn(o, "pktgen", "junk-ip packet generator v2 (tx-path)",
					floodBodyStep(o.Freq, pps, packets, guest.Frame{Dst: c.AddrOf(spec.Attackers)})))
				return err
			},
		})
	}

	var launch *launched
	victimCfg := o.machineConfig()
	victimCfg.Seed = clusterSeed(o.Seed, spec.Attackers)
	victimCfg.Accountants = accts
	machines = append(machines, cluster.MachineSpec{
		Config: victimCfg,
		Boot: func(_ *cluster.Cluster, m *kernel.Machine) error {
			l, err := launchSpec(m, RunSpec{
				Opts:       o,
				Workload:   spec.Victim.Workload,
				VictimNice: spec.Victim.Nice,
			})
			if err != nil {
				return err
			}
			launch = l
			return nil
		},
	})

	links := make([]cluster.LinkSpec, spec.Attackers)
	for a := 0; a < spec.Attackers; a++ {
		links[a] = cluster.LinkSpec{
			From: a, To: spec.Attackers,
			LatencyUs:        spec.LinkLatencyUs,
			PacketsPerSecond: spec.BottleneckPPS,
			QueueDepth:       spec.QueueDepth,
			Bottleneck:       "victim-ingress",
		}
	}

	cl, err := cluster.New(cluster.Config{Machines: machines, Links: links})
	if err != nil {
		return nil, err
	}
	if err := cl.Run(); err != nil {
		return nil, fmt.Errorf("multiflood %s: %w", multiFloodKey(spec), err)
	}

	vm := cl.Machine(spec.Attackers)
	billing := spec.Victim.Billing
	if billing == "" {
		billing = "jiffy"
	}
	out := &MultiFloodOut{
		Spec: spec,
		Victim: ClusterVictimOut{
			Billing:         billing,
			Run:             launch.harvest(vm),
			PacketsReceived: vm.NIC().Received(),
		},
	}
	for a := 0; a < spec.Attackers; a++ {
		l := cl.Link(a)
		out.Offered += l.Sent()
		out.Carried += l.Delivered()
		out.Dropped += l.Dropped()
	}
	out.ElapsedSec = clusterElapsedSec(cl)
	return out, nil
}

func multiFloodKey(spec MultiFloodSpec) string {
	return fmt.Sprintf("%d-attackers/%dpps/%s", spec.Attackers, spec.PerAttackerPPS, spec.Victim.Billing)
}

// RunAllMultiFloods executes every scenario on its own lockstep
// machine set across the campaign worker pool — the RunAll contract.
//
// Deprecated: RunAllMultiFloods is Campaign("multiflood", ...) over RunMultiFlood;
// new callers should use Campaign directly. Kept as a thin wrapper
// for the pre-generic API.
func RunAllMultiFloods(specs []MultiFloodSpec, parallelism int) ([]*MultiFloodOut, error) {
	return Campaign("multiflood", specs, parallelism, RunMultiFlood, multiFloodKey)
}

// multiFloodBottleneckPPS is the artifact's shared ingress capacity:
// a deliberately modest 100k-frame/s last hop, so four attackers at a
// nominal 40k pps each oversubscribe it (~1.35x effective: each
// send's billed tx time stretches the inter-send period below the
// nominal rate).
const multiFloodBottleneckPPS = 100_000

// multiFloodPerAttackerPPS is each attacker's offered rate in the
// artifact.
const multiFloodPerAttackerPPS = 40_000

// MultiAttackerFlood regenerates the converging-flood scenario: 1, 2,
// and 4 attacker machines flood one victim through a shared 100k-pps
// bottleneck, once against a jiffy-billed host and once against a
// process-aware host. The commodity bill inflates with the delivered
// rate, which the bottleneck caps: beyond saturation, extra attackers
// only raise the drop count, not the victim's bill.
func MultiAttackerFlood(o Options) (*Figure, error) {
	o = o.norm()
	attackerCounts := []int{1, 2, 4}
	billings := []string{"jiffy", "process-aware"}
	specs := make([]MultiFloodSpec, 0, len(attackerCounts)*len(billings))
	for _, billing := range billings {
		for _, n := range attackerCounts {
			specs = append(specs, MultiFloodSpec{
				Opts:           o,
				Attackers:      n,
				PerAttackerPPS: multiFloodPerAttackerPPS,
				Victim:         ClusterVictim{Workload: "O", Billing: billing},
				BottleneckPPS:  multiFloodBottleneckPPS,
			})
		}
	}
	outs, err := RunAllMultiFloods(specs, o.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("multi-attacker flood: %w", err)
	}

	fig := &Figure{
		ID:    "Multi-Attacker Flood",
		Title: "Converging Interrupt Flood (N attacker PCs, one victim host, shared 100k-pps bottleneck)",
		Unit:  "CPU seconds (billed by the victim host's own scheme)",
	}
	groups := []string{"jiffy-host", "procaware-host"}
	for bi, group := range groups {
		for ni, n := range attackerCounts {
			out := outs[bi*len(attackerCounts)+ni]
			user, sys := victimBillSeconds(out.Victim)
			fig.Bars = append(fig.Bars, textplot.Bar{
				Group: group,
				Label: fmt.Sprintf("%d attacker(s)", n),
				Segments: []textplot.Segment{
					{Name: "user", Value: user},
					{Name: "system", Value: sys},
				},
			})
		}
	}
	worst := outs[len(attackerCounts)-1] // jiffy host, 4 attackers
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("4 attackers offered %d frames, wire carried %d, dropped %d (tail-drop at the shared %dk-pps, %d-deep ingress queue, plus frames offered after the victim finished)",
			worst.Offered, worst.Carried, worst.Dropped, multiFloodBottleneckPPS/1000, cluster.DefaultQueueDepth),
		"expectation: jiffy-billed host's system time grows with the delivered rate and saturates at the bottleneck capacity; extra attackers past saturation only raise drops",
		fmt.Sprintf("process-aware host's bill stays flat; its system account at 4 attackers: %.2f s",
			outs[2*len(attackerCounts)-1].Victim.Run.SystemAccountSec),
	)
	return fig, nil
}
