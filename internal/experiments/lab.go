// Package experiments regenerates every figure of the paper's
// evaluation (Section V): one runner per figure plus the qualitative
// comparison of Section V-C and a mitigation study for the trusted
// metering scheme of Section VI-B. Each runner builds a fresh
// simulated machine, launches the victim through the (possibly
// tampered) shell, arms one attack, runs to completion, and reports
// the billed CPU time next to ground truth.
package experiments

import (
	"fmt"

	"repro/internal/attacks"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/metering"
	"repro/internal/proc"
	"repro/internal/shell"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Schemes lists the accounting schemes every run records, in billing
// order: the jiffy scheme is what the provider's getrusage reports.
var Schemes = []string{"jiffy", "tsc", "process-aware"}

// Options configures an experiment campaign.
type Options struct {
	// Seed drives all machine randomness (default 2010, the paper's
	// year).
	Seed int64
	// Freq is the CPU frequency (default 2.53 GHz, the testbed's).
	Freq sim.Hz
	// HZ is the timer tick rate (default 250).
	HZ uint64
	// SchedulerPolicy is "o1" (default) or "cfs".
	SchedulerPolicy string
	// PhysMemBytes sizes RAM (default 1 GiB).
	PhysMemBytes uint64
	// Scale multiplies victim baselines and attack magnitudes;
	// 1.0 (default) is paper scale, tests use ~0.01 for speed.
	Scale float64
	// MaxSteps bounds each machine run (default 400M) so a modelling
	// regression surfaces as an error instead of a hang.
	MaxSteps uint64
	// Parallelism caps how many independent simulated machines a
	// campaign executes concurrently (RunAll's worker pool, and the
	// cross-artifact fan-out of cpumeter.ReproduceAll). Zero selects
	// runtime.GOMAXPROCS(0); 1 forces sequential execution. Every
	// machine is seeded and self-contained, so results — and
	// rendered artifacts — are byte-identical at any setting.
	Parallelism int
	// GoroutineGuests runs the ported hot-path guests (flood sources,
	// ack-paced flows, forwarding and echo daemons) on the compat
	// goroutine driver instead of the flyweight resumable-step driver
	// that is the default. Both drivers issue the identical request
	// sequence — the equivalence suite pins every artifact byte-for-
	// byte — so the knob exists for A/B benchmarking and for bisecting
	// a suspected driver divergence, not for changing results.
	GoroutineGuests bool
}

// guestSpawn builds the spawn config for a ported resumable guest
// under the options' driver selection: the flyweight Step driver by
// default, the goroutine driver (the same state machine wrapped in
// guest.StepRoutine) when GoroutineGuests is set. Callers needing
// extra SpawnConfig fields (Nice, ...) set them on the result.
func guestSpawn(o Options, name, content string, step guest.Step) kernel.SpawnConfig {
	sc := kernel.SpawnConfig{Name: name, Content: content}
	if o.GoroutineGuests {
		sc.Body = guest.StepRoutine(step)
	} else {
		sc.Step = step
	}
	return sc
}

func (o Options) norm() Options {
	if o.Seed == 0 {
		o.Seed = 2010
	}
	if o.Freq == 0 {
		o.Freq = sim.DefaultCPUHz
	}
	if o.HZ == 0 {
		o.HZ = kernel.DefaultHZ
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 400_000_000
	}
	return o
}

// machineConfig builds the kernel config for one run.
func (o Options) machineConfig() kernel.Config {
	return kernel.Config{
		Seed:            o.Seed,
		CPUHz:           o.Freq,
		HZ:              o.HZ,
		SchedulerPolicy: o.SchedulerPolicy,
		PhysMemBytes:    o.PhysMemBytes,
		MaxSteps:        o.MaxSteps,
	}
}

// RunSpec describes one victim execution.
type RunSpec struct {
	Opts Options
	// Workload is "O", "P", "W" or "B"; empty runs no victim (used
	// to measure an attack process alone).
	Workload string
	// Attack, when non-nil, is armed before launch.
	Attack attacks.Attack
	// Touches overrides the victim's hot-variable access count.
	Touches uint64
	// VictimNice sets the victim's priority.
	VictimNice int
}

// PartyUsage is one process's accounted time across schemes, in
// seconds.
type PartyUsage struct {
	Name string
	PID  proc.PID
	// BySheme maps scheme name to (user, system) seconds. The
	// attacker's entry includes its reaped children, as
	// getrusage(RUSAGE_CHILDREN) would report.
	User map[string]float64
	Sys  map[string]float64
}

// Total returns user+system seconds under a scheme.
func (p PartyUsage) Total(scheme string) float64 {
	return p.User[scheme] + p.Sys[scheme]
}

// RunOut is one run's harvest.
type RunOut struct {
	Spec RunSpec
	// Victim is the billed job (zero value if no workload ran).
	Victim PartyUsage
	// Attackers are the attack's own processes (storm, tracer, hog).
	Attackers []PartyUsage
	// VictimStats are the victim group's kernel counters.
	VictimStats kernel.Stats
	// SystemAccount is the process-aware scheme's IRQ bucket.
	SystemAccountSec float64
	// Result is what the victim actually computed.
	Result *workloads.Result
	// Measurements is the machine's code-identity log.
	Measurements []kernel.Measurement
	// ElapsedSec is total virtual wall time.
	ElapsedSec float64
	// Machine is the finished machine, retained so the trusted-
	// metering layer can build attested reports post-run.
	Machine *kernel.Machine
	// VictimPID is the billed job's pid (zero if no workload ran).
	VictimPID proc.PID
}

// usageOf collects a thread group's usage (plus reaped children) in
// seconds across schemes.
func usageOf(m *kernel.Machine, name string, pid proc.PID) PartyUsage {
	freq := m.Clock().Freq()
	pu := PartyUsage{
		Name: name,
		PID:  pid,
		User: make(map[string]float64, len(Schemes)),
		Sys:  make(map[string]float64, len(Schemes)),
	}
	for _, scheme := range Schemes {
		own, _ := m.UsageBy(scheme, pid)
		kids, _ := m.ChildrenUsageBy(scheme, pid)
		total := own.Add(kids)
		u, s := total.Seconds(freq)
		pu.User[scheme] = u
		pu.Sys[scheme] = s
	}
	return pu
}

// launched holds the handles a launched spec needs to harvest its
// results once the machine has finished running. It exists so the
// same launch/harvest pair serves both solo runs (Run) and cluster
// victim machines, which are booted before a lockstep run and
// harvested after it.
type launched struct {
	spec  RunSpec
	prog  *workloads.Result
	sess  *shell.Session
	setup *attacks.Setup
}

// launchSpec arms the spec's attack and launches its workload through
// the shell on m, which the caller has built (from spec.Opts or a
// cluster machine config sharing its frequency and scale).
func launchSpec(m *kernel.Machine, spec RunSpec) (*launched, error) {
	o := spec.Opts.norm()
	shellCfg := shell.Config{Env: map[string]string{}}
	l := &launched{
		spec: spec,
		setup: &attacks.Setup{
			M:      m,
			Shell:  &shellCfg,
			JobEnv: map[string]string{},
		},
	}

	var job *shell.Job
	if spec.Workload != "" {
		wspec, err := workloads.SpecByKey(spec.Workload)
		if err != nil {
			return nil, err
		}
		params := workloads.Params{
			Freq:            o.Freq,
			Touches:         spec.Touches,
			SecondsOverride: wspec.BaselineSeconds * o.Scale,
		}
		p, res := wspec.Build(params)
		l.prog = res
		job = &shell.Job{Prog: p, Env: l.setup.JobEnv, Nice: spec.VictimNice}
		l.setup.VictimName = p.Name
		l.setup.VictimHotAddr = wspec.HotAddr
	} else if spec.Attack != nil {
		// Attack-alone run: the attack process targets itself so it
		// starts immediately and runs its full budget.
		l.setup.VictimName = attacks.AttackerProcName
	}

	if spec.Attack != nil {
		if err := spec.Attack.Arm(l.setup); err != nil {
			return nil, fmt.Errorf("arm %s: %w", spec.Attack.Key(), err)
		}
	}

	if job != nil {
		var err error
		l.sess, err = shell.Launch(m, shellCfg, *job)
		if err != nil {
			return nil, err
		}
	}
	return l, nil
}

// harvest collects the finished machine's accounting into a RunOut.
func (l *launched) harvest(m *kernel.Machine) *RunOut {
	out := &RunOut{
		Spec:         l.spec,
		Result:       l.prog,
		Measurements: m.Measurements(),
		ElapsedSec:   m.Clock().Seconds(m.Clock().Now()),
		Machine:      m,
	}
	if l.sess != nil && len(l.sess.JobPIDs) > 0 {
		vpid := l.sess.JobPIDs[0]
		out.VictimPID = vpid
		out.Victim = usageOf(m, l.spec.Workload, vpid)
		out.VictimStats = m.Stats(vpid)
	}
	for _, ap := range l.setup.Spawned {
		out.Attackers = append(out.Attackers, usageOf(m, ap.Name, ap.PID))
	}
	if sys, ok := m.UsageBy("process-aware", metering.SystemPID); ok {
		_, s := sys.Seconds(m.Clock().Freq())
		out.SystemAccountSec = s
	}
	return out
}

// Run executes one victim/attack combination on a fresh machine.
func Run(spec RunSpec) (*RunOut, error) {
	o := spec.Opts.norm()
	m := kernel.New(o.machineConfig())
	l, err := launchSpec(m, spec)
	if err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("run %s/%s: %w", spec.Workload, key(spec.Attack), err)
	}
	m.NIC().StopFlood()
	return l.harvest(m), nil
}

// physMem resolves the configured RAM size (default 1 GiB).
func physMem(o Options) uint64 {
	if o.PhysMemBytes > 0 {
		return o.PhysMemBytes
	}
	return 1 << 30
}

func key(a attacks.Attack) string {
	if a == nil {
		return "baseline"
	}
	return a.Key()
}

// AttackerTotal sums all attacker parties' billed seconds under a
// scheme.
func (r *RunOut) AttackerTotal(scheme string) float64 {
	var t float64
	for _, a := range r.Attackers {
		t += a.Total(scheme)
	}
	return t
}
