// Campaign execution: figure, table, and ablation runners declare
// their full run matrix up front as a []RunSpec, and a worker pool
// executes the independent machines concurrently. Each RunSpec builds
// a fresh, fully self-contained machine from its own seed, so runs
// share no state and the pool can schedule them in any order; results
// are returned in declaration order, which keeps every aggregation —
// and therefore every rendered artifact — byte-identical to
// sequential execution.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// resolveParallelism maps the Options.Parallelism convention (zero =
// all cores) to a concrete worker count for n runs.
func resolveParallelism(parallelism, n int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return parallelism
}

// RunIndexed executes fn(i) for every i in [0, n) across a worker
// pool of the given size (zero = all cores, clamped to n). fn must
// write its result into its own slot of a caller-owned slice; slots
// are disjoint, so no further synchronization is needed. This is the
// one pool implementation behind Campaign and cpumeter.ReproduceAll.
func RunIndexed(n, parallelism int, fn func(i int)) {
	RunIndexedWorkers(n, parallelism, func(_, i int) { fn(i) })
}

// RunIndexedWorkers is RunIndexed with worker identity: fn(w, i) runs
// spec i on worker w in [0, workers), so callers can give each worker
// private non-thread-safe state (a kernel.Pool of recycled machine
// shells, say) without locking. Worker-to-spec assignment is load-
// driven and NOT deterministic — only per-slot results may depend on
// it, never anything aggregated across slots.
func RunIndexedWorkers(n, parallelism int, fn func(worker, i int)) {
	workers := resolveParallelism(parallelism, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// The pool below is the one sanctioned use of host concurrency
	// outside the engine: every fn(i) is a self-contained seeded run
	// writing a disjoint slot, and aggregation reads slots in index
	// order, so results are byte-identical to sequential execution.
	var wg sync.WaitGroup //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1) //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
		//simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
		go func(w int) {
			defer wg.Done()       //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
			for i := range next { //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
				fn(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
	}
	close(next) //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
	wg.Wait()   //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
}

// Campaign is the one fan-out runner behind every RunAll* helper: it
// executes run(spec) for every spec on the worker pool (parallelism
// zero = all cores) and returns the results in declaration order. On
// failure it reports the error of the earliest-declared failing spec
// — "<kind> run <i> (<desc(spec)>): <cause>" — so error output is as
// deterministic as success output. kind names the campaign family in
// that message; desc renders one spec for it.
func Campaign[Spec, Out any](kind string, specs []Spec, parallelism int,
	run func(Spec) (Out, error), desc func(Spec) string) ([]Out, error) {
	outs := make([]Out, len(specs))
	errs := make([]error, len(specs))
	RunIndexed(len(specs), parallelism, func(i int) {
		outs[i], errs[i] = run(specs[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s run %d (%s): %w", kind, i, desc(specs[i]), err)
		}
	}
	return outs, nil
}

// RunAll executes every spec on its own fresh machine and returns the
// results in declaration order.
//
// Deprecated: RunAll is Campaign over Run; new callers should use
// Campaign directly. Kept as a thin wrapper for the pre-generic API.
func RunAll(specs []RunSpec, parallelism int) ([]*RunOut, error) {
	return Campaign("campaign", specs, parallelism, Run, func(s RunSpec) string {
		return fmt.Sprintf("%s/%s", s.Workload, key(s.Attack))
	})
}

// Matrix accumulates a campaign's run declarations. Runners Add every
// spec first, Run the whole matrix once, and read results back by the
// handle Add returned — separating the declaration of work from its
// (possibly concurrent) execution.
type Matrix struct {
	specs []RunSpec
}

// Add declares one run and returns its handle into Run's result
// slice.
func (mx *Matrix) Add(s RunSpec) int {
	mx.specs = append(mx.specs, s)
	return len(mx.specs) - 1
}

// Len reports the number of declared runs.
func (mx *Matrix) Len() int { return len(mx.specs) }

// Run executes the declared matrix with the given parallelism.
func (mx *Matrix) Run(parallelism int) ([]*RunOut, error) {
	return RunAll(mx.specs, parallelism)
}
