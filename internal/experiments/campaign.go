// Campaign execution: figure, table, and ablation runners declare
// their full run matrix up front as a []RunSpec, and a worker pool
// executes the independent machines concurrently. Each RunSpec builds
// a fresh, fully self-contained machine from its own seed, so runs
// share no state and the pool can schedule them in any order; results
// are returned in declaration order, which keeps every aggregation —
// and therefore every rendered artifact — byte-identical to
// sequential execution.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// resolveParallelism maps the Options.Parallelism convention (zero =
// all cores) to a concrete worker count for n runs.
func resolveParallelism(parallelism, n int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return parallelism
}

// RunIndexed executes fn(i) for every i in [0, n) across a worker
// pool of the given size (zero = all cores, clamped to n). fn must
// write its result into its own slot of a caller-owned slice; slots
// are disjoint, so no further synchronization is needed. This is the
// one pool implementation behind RunAll and cpumeter.ReproduceAll.
func RunIndexed(n, parallelism int, fn func(i int)) {
	workers := resolveParallelism(parallelism, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// The pool below is the one sanctioned use of host concurrency
	// outside the engine: every fn(i) is a self-contained seeded run
	// writing a disjoint slot, and aggregation reads slots in index
	// order, so results are byte-identical to sequential execution.
	var wg sync.WaitGroup //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1) //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
		//simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
		go func() {
			defer wg.Done()       //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
			for i := range next { //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
	}
	close(next) //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
	wg.Wait()   //simlint:gotime-ok campaign pool; runs are independent seeded machines merged in index order
}

// RunAll executes every spec on its own fresh machine, fanning the
// runs across a worker pool of the given size (zero = all cores), and
// returns the results in declaration order. On failure it reports the
// error of the earliest-declared failing spec, so error output is as
// deterministic as success output.
func RunAll(specs []RunSpec, parallelism int) ([]*RunOut, error) {
	outs := make([]*RunOut, len(specs))
	errs := make([]error, len(specs))
	RunIndexed(len(specs), parallelism, func(i int) {
		outs[i], errs[i] = Run(specs[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign run %d (%s/%s): %w",
				i, specs[i].Workload, key(specs[i].Attack), err)
		}
	}
	return outs, nil
}

// Matrix accumulates a campaign's run declarations. Runners Add every
// spec first, Run the whole matrix once, and read results back by the
// handle Add returned — separating the declaration of work from its
// (possibly concurrent) execution.
type Matrix struct {
	specs []RunSpec
}

// Add declares one run and returns its handle into Run's result
// slice.
func (mx *Matrix) Add(s RunSpec) int {
	mx.specs = append(mx.specs, s)
	return len(mx.specs) - 1
}

// Len reports the number of declared runs.
func (mx *Matrix) Len() int { return len(mx.specs) }

// Run executes the declared matrix with the given parallelism.
func (mx *Matrix) Run(parallelism int) ([]*RunOut, error) {
	return RunAll(mx.specs, parallelism)
}
