package experiments

import (
	"testing"

	"repro/internal/attacks"
)

// quick returns options scaled for fast test runs: ~1.5 s victim
// baselines, 1 GHz clock, small RAM so the exception flood bites.
func quick() Options {
	return Options{
		Seed:         7,
		Freq:         1_000_000_000,
		Scale:        0.01,
		PhysMemBytes: 32 << 20,
	}
}

func TestBaselineRun(t *testing.T) {
	out, err := Run(RunSpec{Opts: quick(), Workload: "W"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Done {
		t.Fatal("victim did not complete")
	}
	if out.Victim.Total("jiffy") <= 0 {
		t.Fatalf("no billed time: %+v", out.Victim)
	}
	// Billed (jiffy) should be close to ground truth (tsc) with no
	// attack: within 10%.
	j, ts := out.Victim.Total("jiffy"), out.Victim.Total("tsc")
	if ratio := j / ts; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("baseline jiffy/tsc = %.3f (j=%.2f ts=%.2f), want ~1", ratio, j, ts)
	}
}

func TestShellAttackInflatesUserTime(t *testing.T) {
	o := quick()
	base, err := Run(RunSpec{Opts: o, Workload: "O"})
	if err != nil {
		t.Fatal(err)
	}
	att, err := Run(RunSpec{Opts: o, Workload: "O", Attack: &attacks.ShellAttack{PayloadCycles: payloadCycles(o)}})
	if err != nil {
		t.Fatal(err)
	}
	gain := att.Victim.User["jiffy"] - base.Victim.User["jiffy"]
	want := 34 * o.Scale // 0.34 s
	if gain < want*0.8 || gain > want*1.2 {
		t.Fatalf("user-time gain = %.3f s, want ~%.2f s", gain, want)
	}
	// System time unaffected (within a couple of ticks).
	if att.Victim.Sys["jiffy"] > base.Victim.Sys["jiffy"]+0.05 {
		t.Fatalf("system time moved: %.3f -> %.3f", base.Victim.Sys["jiffy"], att.Victim.Sys["jiffy"])
	}
	// The attack leaves a source-integrity fingerprint: a tampered
	// shell image in the measurement log.
	var tampered bool
	for _, meas := range att.Measurements {
		if meas.Name == "shell" {
			for _, bm := range base.Measurements {
				if bm.Name == "shell" && bm.Digest != meas.Digest {
					tampered = true
				}
			}
		}
	}
	if !tampered {
		t.Fatal("tampered shell not visible in measurement log")
	}
}

func TestCtorAttackMatchesShellAttack(t *testing.T) {
	o := quick()
	shellOut, err := Run(RunSpec{Opts: o, Workload: "P", Attack: &attacks.ShellAttack{PayloadCycles: payloadCycles(o)}})
	if err != nil {
		t.Fatal(err)
	}
	ctorOut, err := Run(RunSpec{Opts: o, Workload: "P", Attack: &attacks.LibraryCtorAttack{PayloadCycles: payloadCycles(o)}})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Fig. 5 ~ Fig. 4 (same payload, different location).
	a, b := shellOut.Victim.Total("jiffy"), ctorOut.Victim.Total("jiffy")
	if diff := a - b; diff < -0.1*a || diff > 0.1*a {
		t.Fatalf("ctor (%.2f) vs shell (%.2f) differ by >10%%", b, a)
	}
}

func TestSubstitutionAmplifiesWithCalls(t *testing.T) {
	o := quick()
	base, err := Run(RunSpec{Opts: o, Workload: "W"})
	if err != nil {
		t.Fatal(err)
	}
	att, err := Run(RunSpec{Opts: o, Workload: "W", Attack: attacks.NewLibrarySubstitutionAttack(o.Freq)})
	if err != nil {
		t.Fatal(err)
	}
	gain := att.Victim.User["jiffy"] - base.Victim.User["jiffy"]
	// W makes ~150k sqrt calls + ~1.9k mallocs at 0.5 ms each
	// => dozens of seconds even in quick mode.
	if gain < 10 {
		t.Fatalf("substitution gain = %.2f s, want >> baseline", gain)
	}
}

func TestThrashingInflatesSystemTime(t *testing.T) {
	o := quick()
	const touches = 20_000
	base, err := Run(RunSpec{Opts: o, Workload: "P", Touches: touches})
	if err != nil {
		t.Fatal(err)
	}
	att, err := Run(RunSpec{Opts: o, Workload: "P", Touches: touches, Attack: attacks.NewThrashingAttack(0)})
	if err != nil {
		t.Fatal(err)
	}
	if att.VictimStats.DebugExceptions < touches/2 {
		t.Fatalf("watchpoint hits = %d, want most of %d", att.VictimStats.DebugExceptions, touches)
	}
	// Ground truth captures the per-trap kernel work exactly; the
	// jiffy view needs full-scale runs for the sampler to see it.
	if att.Victim.Sys["tsc"] < base.Victim.Sys["tsc"]+0.1 {
		t.Fatalf("tsc system time %.3f -> %.3f: thrashing too weak", base.Victim.Sys["tsc"], att.Victim.Sys["tsc"])
	}
}

func TestInterruptFloodRaisesSystemTime(t *testing.T) {
	o := quick()
	base, err := Run(RunSpec{Opts: o, Workload: "O"})
	if err != nil {
		t.Fatal(err)
	}
	att, err := Run(RunSpec{Opts: o, Workload: "O", Attack: attacks.NewInterruptFloodAttack(100_000)})
	if err != nil {
		t.Fatal(err)
	}
	if att.VictimStats.IRQCycles == 0 {
		t.Fatal("no IRQ cycles landed on victim")
	}
	if att.Victim.Sys["jiffy"] <= base.Victim.Sys["jiffy"] {
		t.Fatalf("system time %.3f -> %.3f: flood had no billed effect",
			base.Victim.Sys["jiffy"], att.Victim.Sys["jiffy"])
	}
	// Total inflation should be modest (paper: weakest attack).
	if att.Victim.Total("jiffy") > base.Victim.Total("jiffy")*1.5 {
		t.Fatalf("flood inflated by >50%%: %.2f -> %.2f", base.Victim.Total("jiffy"), att.Victim.Total("jiffy"))
	}
}

func TestExceptionFloodCausesVictimFaults(t *testing.T) {
	o := quick()
	base, err := Run(RunSpec{Opts: o, Workload: "O"})
	if err != nil {
		t.Fatal(err)
	}
	att, err := Run(RunSpec{Opts: o, Workload: "O", Attack: attacks.NewExceptionFloodAttack(2 * o.PhysMemBytes)})
	if err != nil {
		t.Fatal(err)
	}
	if att.VictimStats.MajorFaults == 0 {
		t.Fatal("victim took no major faults under memory pressure")
	}
	// Quick-mode runs are too short for the jiffy sampler to catch
	// the extra fault-handler time reliably; ground truth must show
	// it. The full-scale figure shows the jiffy effect.
	if att.Victim.Sys["tsc"] <= base.Victim.Sys["tsc"] {
		t.Fatalf("tsc system time %.4f -> %.4f under exception flood",
			base.Victim.Sys["tsc"], att.Victim.Sys["tsc"])
	}
}

func TestSchedulingAttackStealsTicks(t *testing.T) {
	o := quick()
	const forks = 3000
	base, err := Run(RunSpec{Opts: o, Workload: "W"})
	if err != nil {
		t.Fatal(err)
	}
	att, err := Run(RunSpec{Opts: o, Workload: "W", Attack: attacks.NewSchedulingAttack(-20, forks)})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth (tsc) must not move: the victim does the same
	// work. Billed (jiffy) must grow: stolen ticks.
	tsBase, tsAtt := base.Victim.Total("tsc"), att.Victim.Total("tsc")
	if d := tsAtt - tsBase; d < -0.1 || d > 0.1 {
		t.Fatalf("tsc ground truth moved: %.3f -> %.3f", tsBase, tsAtt)
	}
	jBase, jAtt := base.Victim.Total("jiffy"), att.Victim.Total("jiffy")
	if jAtt <= jBase+0.05 {
		t.Fatalf("billed time %.3f -> %.3f: no tick theft", jBase, jAtt)
	}
	t.Logf("billed %.3f -> %.3f (+%.1f%%), truth %.3f", jBase, jAtt, (jAtt-jBase)/jBase*100, tsAtt)
}
