package experiments

import (
	"fmt"

	"repro/internal/attacks"
	"repro/internal/core"
	"repro/internal/integrity"
)

// auditNonce is the challenge the simulated customer sends with each
// billing query.
const auditNonce = "audit-nonce-1"

// aikSeed is the platform TPM key material (the customer trusts it
// via a certificate chain in a real deployment).
const aikSeed = "platform-aik"

// TrustedMitigation is the extension experiment for Section VI-B: it
// replays every attack against Whetstone and shows that (a) billing
// from the process-aware TSC scheme removes the inflation the jiffy
// scheme suffered, and (b) the customer-side auditor detects every
// attack from the attested evidence.
func TrustedMitigation(o Options) (*Figure, error) {
	o = o.norm()
	fig := &Figure{
		ID:    "Mitigation",
		Title: "Trusted metering vs all attacks (victim: Whetstone)",
		Header: []string{
			"attack", "billed(jiffy) s", "billed(trusted) s", "truth s",
			"jiffy infl.", "trusted infl.", "audit verdict", "violated property",
		},
	}

	forks := uint64(float64(attacks.DefaultSchedulingForks) * o.Scale)
	if forks < 512 {
		forks = 512
	}
	spec, _ := workloadSpec("W")
	thrashTouches := uint64(float64(spec.DefaultThrashTouches) * o.Scale)
	if thrashTouches < 100 {
		thrashTouches = 100
	}

	cases := []struct {
		label   string
		attack  attacks.Attack
		touches uint64
	}{
		{"none (baseline)", nil, 0},
		{"shell", &attacks.ShellAttack{PayloadCycles: payloadCycles(o)}, 0},
		{"library ctor", &attacks.LibraryCtorAttack{PayloadCycles: payloadCycles(o)}, 0},
		{"substitution", attacks.NewLibrarySubstitutionAttack(o.Freq), 0},
		{"scheduling", attacks.NewSchedulingAttack(-20, forks), 0},
		{"thrashing", attacks.NewThrashingAttack(0), thrashTouches},
		{"interrupt flood", attacks.NewInterruptFloodAttack(0), 0},
		{"exception flood", attacks.NewExceptionFloodAttack(2 * physMem(o)), 0},
	}

	// Declare the whole matrix: the customer's reference run (she
	// profiles the job on her own platform, same spec) plus one run
	// per attack case.
	var mx Matrix
	refIdx := mx.Add(RunSpec{Opts: o, Workload: "W"})
	caseIdx := make([]int, len(cases))
	for i, tc := range cases {
		caseIdx[i] = mx.Add(RunSpec{Opts: o, Workload: "W", Attack: tc.attack, Touches: tc.touches})
	}
	outs, err := mx.Run(o.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("mitigation: %w", err)
	}

	// Harvest the manifest and usage profile from the reference run.
	ref := outs[refIdx]
	refReport, err := core.BuildReport(ref.Machine, ref.VictimPID, "whetstone",
		core.LegacyBillingScheme, aikSeed, auditNonce)
	if err != nil {
		return nil, err
	}
	pairs := map[string]string{}
	for _, e := range refReport.Measurements {
		pairs[e.Name] = e.Digest
	}
	manifest := integrity.NewManifest(pairs)
	tsRef, _ := refReport.Scheme("tsc")
	profile := &core.Profile{UserSec: tsRef.UserSec, SysSec: tsRef.SysSec}

	truthBase := tsRef.Total()
	for i, tc := range cases {
		out := outs[caseIdx[i]]
		// The provider reports under the legacy scheme; the trusted
		// meter bills from the process-aware scheme of the same run.
		rep, err := core.BuildReport(out.Machine, out.VictimPID, "whetstone",
			core.LegacyBillingScheme, aikSeed, auditNonce)
		if err != nil {
			return nil, err
		}
		aud := &core.Auditor{
			Manifest:  manifest,
			Reference: profile,
			AIKSeed:   aikSeed,
			Nonce:     auditNonce,
		}
		verdict := aud.Audit(rep)

		jiffy := out.Victim.Total("jiffy")
		trusted := out.Victim.Total("process-aware")
		truth := out.Victim.Total("tsc")
		verdictStr := "TRUSTED"
		prop := "-"
		if !verdict.Trustworthy {
			verdictStr = "REJECTED"
			seen := map[string]bool{}
			prop = ""
			for _, f := range verdict.Violations() {
				name := f.Property.String()
				if !seen[name] {
					seen[name] = true
					if prop != "" {
						prop += "+"
					}
					prop += name
				}
			}
		}
		fig.Rows = append(fig.Rows, []string{
			tc.label,
			fmt.Sprintf("%.1f", jiffy),
			fmt.Sprintf("%.1f", trusted),
			fmt.Sprintf("%.1f", truth),
			fmt.Sprintf("%+.1f%%", pctOver(jiffy, truthBase)),
			fmt.Sprintf("%+.1f%%", pctOver(trusted, truthBase)),
			verdictStr,
			prop,
		})
	}
	fig.Notes = append(fig.Notes,
		"trusted billing = process-aware TSC attribution of the same run",
		"inflation measured against the reference run's TSC truth",
		"launch attacks still consume real cycles in the job's context; the auditor rejects them via source integrity rather than the meter hiding them",
		"thrashing consumes real victim-context kernel time; detection is via execution-integrity counters")
	return fig, nil
}

// pctOver is the percentage by which a exceeds base.
func pctOver(a, base float64) float64 {
	if base <= 0 {
		return 0
	}
	return (a - base) / base * 100
}
