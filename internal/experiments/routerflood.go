// Router flood: attackers inflate a *third party's* bill. N attacker
// machines flood a victim host through a shared router machine — a
// real kernel.Machine running a forwarding guest whose per-frame
// receive interrupts, lookup work, and retransmit syscalls are billed
// through the router's own metering accountant. The attackers never
// run an instruction on the router, yet the router's metered CPU time
// grows with their offered packet rate: the paper's billing
// distortion crossing a machine boundary twice. The router's
// congested egress wire runs RED/ECN queue feedback, so a
// well-behaved ack-paced ECN flow sharing the path backs off under
// marks while the attackers' junk takes the early drops.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/textplot"
)

// RouterFloodSpec describes one attackers → router → victim scenario
// executed in deterministic lockstep.
type RouterFloodSpec struct {
	Opts Options
	// Attackers is the number of attacker machines (≥ 1; they may all
	// stay silent at PerAttackerPPS 0 for a baseline).
	Attackers int
	// PerAttackerPPS is each attacker's offered rate; zero keeps the
	// attackers silent.
	PerAttackerPPS uint64
	// FloodSeconds is each attacker's transmit duration; zero derives
	// 1.5x the victim's baseline.
	FloodSeconds float64
	// Victim is the billed job on the machine behind the router.
	Victim ClusterVictim
	// RouterLookupUs is the router's per-frame user-mode lookup work;
	// zero selects cluster.DefaultForwardUs.
	RouterLookupUs uint64
	// EgressPPS is the router→victim wire's capacity — the congested
	// hop; zero selects cluster.DefaultLinkPPS.
	EgressPPS uint64
	// EgressQueueDepth bounds the egress queue; zero selects
	// cluster.DefaultQueueDepth.
	EgressQueueDepth uint64
	// RED, when non-nil, arms RED/ECN on the egress wire.
	RED *cluster.REDSpec
	// FlowFrames sizes the well-behaved ack-paced ECN transfer
	// sharing the egress; zero runs no flow.
	FlowFrames uint64
	// FlowWindow is the flow's initial/max congestion window; zero
	// selects 8.
	FlowWindow uint64
	// LinkLatencyUs is every link's one-way latency; zero selects
	// cluster.DefaultLatencyUs.
	LinkLatencyUs uint64
}

// RouterFloodOut is one routed-flood scenario's harvest.
type RouterFloodOut struct {
	Spec   RouterFloodSpec
	Victim ClusterVictimOut
	// Router is the forwarding daemon's accounted time across schemes
	// — the router machine's bill for work the attackers caused.
	Router PartyUsage
	// RouterForwarded counts frames the router retransmitted;
	// RouterRxDropped counts frames lost to the router's own
	// input-queue overflow when forwarding cannot keep up.
	RouterForwarded, RouterRxDropped uint64
	// Offered/Carried/DroppedIngress sum the attacker→router links.
	Offered, Carried, DroppedIngress uint64
	// EgressMarked/EgressEarlyDropped/EgressDropped are the congested
	// router→victim wire's RED marks, RED early drops, and total
	// drops.
	EgressMarked, EgressEarlyDropped, EgressDropped uint64
	// Flow is the ack-paced ECN transfer's harvest.
	Flow AckFlowStats
	// ElapsedSec is the slowest machine's virtual wall time.
	ElapsedSec float64
}

// flowID tags the well-behaved transfer's frames; attacker junk rides
// flow 0 and is drained unacked.
const routerFloodFlowID = 7

// RunRouterFlood executes one scenario: machines 0..A-1 are the
// attackers, A the flow sender, A+1 the router (a Service machine
// running cluster.Forwarder), A+2 the victim host (billed workload
// plus the flow's echo daemon).
func RunRouterFlood(spec RouterFloodSpec) (*RouterFloodOut, error) {
	o := spec.Opts.norm()
	if spec.Attackers < 1 {
		return nil, fmt.Errorf("routerflood: need at least one attacker machine, have %d", spec.Attackers)
	}
	floodSec := spec.FloodSeconds
	if floodSec == 0 {
		s, err := (ClusterRunSpec{Victims: []ClusterVictim{spec.Victim}}).floodSeconds(o)
		if err != nil {
			return nil, err
		}
		floodSec = s
	}
	tick := sim.Cycles(uint64(o.Freq) / o.HZ)
	accts, err := victimAccountants(spec.Victim.Billing, tick)
	if err != nil {
		return nil, err
	}
	lookupUs := spec.RouterLookupUs
	if lookupUs == 0 {
		lookupUs = cluster.DefaultForwardUs
	}
	perUs := sim.Cycles(uint64(o.Freq) / 1_000_000)

	senderIdx := spec.Attackers
	routerIdx := spec.Attackers + 1
	victimIdx := spec.Attackers + 2

	machines := make([]cluster.MachineSpec, 0, victimIdx+1)

	// Attackers: non-ECN junk addressed to the victim, resolved onto
	// each attacker's uplink into the router by the routing table.
	pps := spec.PerAttackerPPS
	for a := 0; a < spec.Attackers; a++ {
		cfg := o.machineConfig()
		cfg.Seed = clusterSeed(o.Seed, a)
		machines = append(machines, cluster.MachineSpec{
			Name:   fmt.Sprintf("attacker-%d", a),
			Config: cfg,
			Boot: func(c *cluster.Cluster, m *kernel.Machine) error {
				if pps == 0 {
					return nil // silent baseline
				}
				packets := uint64(floodSec * float64(pps))
				_, err := m.Spawn(guestSpawn(o, "pktgen", "junk-ip packet generator v3 (routed)",
					floodBodyStep(o.Freq, pps, packets, guest.Frame{Dst: c.AddrOf(victimIdx)})))
				return err
			},
		})
	}

	// Sender: the well-behaved ECN flow.
	flowStats := &AckFlowStats{}
	senderCfg := o.machineConfig()
	senderCfg.Seed = clusterSeed(o.Seed, senderIdx)
	machines = append(machines, cluster.MachineSpec{
		Name:   "sender",
		Config: senderCfg,
		Boot: func(c *cluster.Cluster, m *kernel.Machine) error {
			if spec.FlowFrames == 0 {
				return nil
			}
			_, err := m.Spawn(guestSpawn(o, "flowsend", "ack-paced ecn sender v1",
				AckPacedSenderStep(AckFlowConfig{
					Peer:       c.AddrOf(victimIdx),
					Flow:       routerFloodFlowID,
					Frames:     spec.FlowFrames,
					Window:     spec.FlowWindow,
					PaceCycles: 500 * perUs, // ≤2k pps offered
				}, flowStats)))
			return err
		},
	})

	// Router: a real billed machine running the forwarding daemon.
	var routerPID proc.PID
	routerCfg := o.machineConfig()
	routerCfg.Seed = clusterSeed(o.Seed, routerIdx)
	machines = append(machines, cluster.MachineSpec{
		Name:    "router",
		Config:  routerCfg,
		Service: true,
		Boot: func(_ *cluster.Cluster, m *kernel.Machine) error {
			p, err := m.Spawn(guestSpawn(o, "fwd", "store-and-forward router daemon v1",
				cluster.ForwarderStep(sim.Cycles(lookupUs)*perUs)))
			if p != nil {
				routerPID = p.PID
			}
			return err
		},
	})

	// Victim host: the billed workload plus the flow's echo daemon.
	var launch *launched
	victimCfg := o.machineConfig()
	victimCfg.Seed = clusterSeed(o.Seed, victimIdx)
	victimCfg.Accountants = accts
	machines = append(machines, cluster.MachineSpec{
		Name:   "victim",
		Config: victimCfg,
		// Only the echo daemon makes this a service machine; with no
		// flow the workload keeps exact stall detection.
		Service: spec.FlowFrames > 0,
		Boot: func(_ *cluster.Cluster, m *kernel.Machine) error {
			if spec.FlowFrames > 0 {
				if _, err := m.Spawn(guestSpawn(o, "echod", "per-flow ack echo daemon v1",
					AckEchoStep(routerFloodFlowID))); err != nil {
					return err
				}
			}
			l, err := launchSpec(m, RunSpec{
				Opts:       o,
				Workload:   spec.Victim.Workload,
				VictimNice: spec.Victim.Nice,
			})
			if err != nil {
				return err
			}
			launch = l
			return nil
		},
	})

	// Star topology around the router; the egress hop carries the
	// congestion policy. Static routes send victim-bound traffic
	// through the router and the victim's acks back the same way.
	links := make([]cluster.LinkSpec, 0, victimIdx)
	for a := 0; a < spec.Attackers; a++ {
		links = append(links, cluster.LinkSpec{From: a, To: routerIdx, LatencyUs: spec.LinkLatencyUs})
	}
	links = append(links, cluster.LinkSpec{From: senderIdx, To: routerIdx, LatencyUs: spec.LinkLatencyUs})
	egress := len(links)
	links = append(links, cluster.LinkSpec{
		From: routerIdx, To: victimIdx,
		LatencyUs:        spec.LinkLatencyUs,
		PacketsPerSecond: spec.EgressPPS,
		QueueDepth:       spec.EgressQueueDepth,
		RED:              spec.RED,
	})
	routes := make([]cluster.RouteSpec, 0, spec.Attackers+2)
	for a := 0; a < spec.Attackers; a++ {
		routes = append(routes, cluster.RouteSpec{On: a, Dst: victimIdx, Via: routerIdx})
	}
	routes = append(routes,
		cluster.RouteSpec{On: senderIdx, Dst: victimIdx, Via: routerIdx},
		cluster.RouteSpec{On: victimIdx, Dst: senderIdx, Via: routerIdx},
	)

	cl, err := cluster.New(cluster.Config{Machines: machines, Links: links, Routes: routes})
	if err != nil {
		return nil, err
	}
	if err := cl.Run(); err != nil {
		return nil, fmt.Errorf("routerflood %s: %w", routerFloodKey(spec), err)
	}
	// The victim machine is marked Service for its echo daemon, so
	// quiesce would also retire a stalled workload silently; make
	// that case an error instead of a half-run harvest.
	if launch.prog != nil && !launch.prog.Done {
		return nil, fmt.Errorf("routerflood %s: victim workload retired before completion (stalled behind the service daemon?)", routerFloodKey(spec))
	}

	vm := cl.Machine(victimIdx)
	rm := cl.Machine(routerIdx)
	billing := spec.Victim.Billing
	if billing == "" {
		billing = "jiffy"
	}
	out := &RouterFloodOut{
		Spec: spec,
		Victim: ClusterVictimOut{
			Billing:         billing,
			Run:             launch.harvest(vm),
			PacketsReceived: vm.NIC().Received(),
		},
		Router:          usageOf(rm, "fwd", routerPID),
		RouterForwarded: rm.NIC().Transmitted(),
		RouterRxDropped: rm.RxBufDropped(),
		Flow:            *flowStats,
		ElapsedSec:      clusterElapsedSec(cl),
	}
	for a := 0; a < spec.Attackers; a++ {
		l := cl.Link(a)
		out.Offered += l.Sent()
		out.Carried += l.Delivered()
		out.DroppedIngress += l.Dropped()
	}
	el := cl.Link(egress)
	out.EgressMarked = el.Marked()
	out.EgressEarlyDropped = el.EarlyDropped()
	out.EgressDropped = el.Dropped()
	return out, nil
}

func routerFloodKey(spec RouterFloodSpec) string {
	return fmt.Sprintf("%d-attackers/%dpps/%s", spec.Attackers, spec.PerAttackerPPS, spec.Victim.Billing)
}

// RunAllRouterFloods executes every scenario on its own lockstep
// machine set across the campaign worker pool — the RunAll contract.
//
// Deprecated: RunAllRouterFloods is Campaign("routerflood", ...) over RunRouterFlood;
// new callers should use Campaign directly. Kept as a thin wrapper
// for the pre-generic API.
func RunAllRouterFloods(specs []RouterFloodSpec, parallelism int) ([]*RouterFloodOut, error) {
	return Campaign("routerflood", specs, parallelism, RunRouterFlood, routerFloodKey)
}

// Artifact parameters: two attackers share a router whose 30k-pps
// egress wire runs RED between depths 8 and 24 at up to 50% feedback,
// alongside a 300-frame ack-paced ECN transfer.
const (
	routerFloodAttackers  = 2
	routerFloodEgressPPS  = 30_000
	routerFloodFlowFrames = 300
)

func routerFloodRED() *cluster.REDSpec {
	return &cluster.REDSpec{MinDepth: 8, MaxDepth: 24, MaxPct: 50}
}

// RouterFlood regenerates the routed-fabric scenario: two attacker
// machines flood a victim host through a shared router machine at
// increasing rates while an ack-paced ECN flow shares the router's
// RED-managed egress. The router's own jiffy bill — a machine the
// attackers never touch — grows with the offered rate; the ECN flow
// completes by backing off under marks while the junk absorbs the
// early drops.
func RouterFlood(o Options) (*Figure, error) {
	o = o.norm()
	rates := []uint64{0, 10_000, 20_000}
	specs := make([]RouterFloodSpec, len(rates))
	for i, pps := range rates {
		specs[i] = RouterFloodSpec{
			Opts:           o,
			Attackers:      routerFloodAttackers,
			PerAttackerPPS: pps,
			Victim:         ClusterVictim{Workload: "O", Billing: "jiffy"},
			EgressPPS:      routerFloodEgressPPS,
			RED:            routerFloodRED(),
			FlowFrames:     routerFloodFlowFrames,
		}
	}
	outs, err := RunAllRouterFloods(specs, o.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("router flood: %w", err)
	}

	fig := &Figure{
		ID:    "Router Flood",
		Title: "Routed Interrupt Flood (2 attacker PCs through a shared billed router, RED/ECN egress)",
		Unit:  "CPU seconds (jiffy-billed on each owning machine)",
	}
	for ri, pps := range rates {
		out := outs[ri]
		label := "no flood"
		if pps > 0 {
			label = fmt.Sprintf("%dk pps x2", pps/1000)
		}
		fig.Bars = append(fig.Bars,
			textplot.Bar{Group: "router-fwd", Label: label, Segments: []textplot.Segment{
				{Name: "user", Value: out.Router.User["jiffy"]},
				{Name: "system", Value: out.Router.Sys["jiffy"]},
			}},
			textplot.Bar{Group: "victim-host", Label: label, Segments: []textplot.Segment{
				{Name: "user", Value: out.Victim.Run.Victim.User["jiffy"]},
				{Name: "system", Value: out.Victim.Run.Victim.Sys["jiffy"]},
			}},
		)
	}
	quiet, worst := outs[0], outs[len(outs)-1]
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("attackers offered %d frames; router forwarded %d and overflowed %d at its input queue; egress RED marked %d ECN frames and early-dropped %d junk frames (total egress drops %d)",
			worst.Offered, worst.RouterForwarded, worst.RouterRxDropped, worst.EgressMarked, worst.EgressEarlyDropped, worst.EgressDropped),
		fmt.Sprintf("ECN flow (%d frames): completed with %d acks, %d ECE backoffs, %d write-offs under flood; %d acks and %d backoffs with no flood (acks past the frame count are retransmission duplicates)",
			routerFloodFlowFrames, worst.Flow.Acked, worst.Flow.Backoffs, worst.Flow.Lost, quiet.Flow.Acked, quiet.Flow.Backoffs),
		"expectation: the router's bill — a machine the attackers never run on — grows with offered rate; the ECN flow backs off under marks instead of tail-dropping",
	)
	return fig, nil
}
