package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attacks"
	"repro/internal/sim"
	"repro/internal/textplot"
)

// Figure is one regenerated evaluation artifact.
type Figure struct {
	ID    string
	Title string
	Unit  string
	Bars  []textplot.Bar
	// Rows/Header fill table-style artifacts instead of Bars.
	Header []string
	Rows   [][]string
	// Notes record calibration decisions and paper expectations.
	Notes []string
}

// Render returns the plain-text artifact.
func (f *Figure) Render() string {
	var sb strings.Builder
	if len(f.Bars) > 0 {
		sb.WriteString(textplot.RenderBars(fmt.Sprintf("%s: %s", f.ID, f.Title), f.Unit, f.Bars, 46))
	} else {
		sb.WriteString(textplot.Table(fmt.Sprintf("%s: %s", f.ID, f.Title), f.Header, f.Rows))
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// victimBars renders one workload's normal-vs-attack pair using the
// billed (jiffy) numbers, as the paper's getrusage does.
func victimBars(group string, normal, attacked *RunOut) []textplot.Bar {
	return []textplot.Bar{
		{Group: group, Label: "normal", Segments: []textplot.Segment{
			{Name: "user", Value: normal.Victim.User["jiffy"]},
			{Name: "system", Value: normal.Victim.Sys["jiffy"]},
		}},
		{Group: group, Label: "attack", Segments: []textplot.Segment{
			{Name: "user", Value: attacked.Victim.User["jiffy"]},
			{Name: "system", Value: attacked.Victim.Sys["jiffy"]},
		}},
	}
}

// perProgramFigure declares the normal/attack pair for all four
// programs as one matrix and executes it through the campaign worker
// pool. mkAttack builds a fresh attack per run (machines are not
// shared, and attacks carry per-machine state once armed).
func perProgramFigure(o Options, id, title string, touches func(key string) uint64, mkAttack func() attacks.Attack) (*Figure, error) {
	o = o.norm()
	fig := &Figure{ID: id, Title: title, Unit: "CPU seconds (billed by jiffy accounting)"}
	keys := []string{"O", "P", "W", "B"}

	var mx Matrix
	type pair struct{ normal, attacked int }
	pairs := make([]pair, 0, len(keys))
	for _, key := range keys {
		var tc uint64
		if touches != nil {
			tc = touches(key)
		}
		pairs = append(pairs, pair{
			normal:   mx.Add(RunSpec{Opts: o, Workload: key, Touches: tc}),
			attacked: mx.Add(RunSpec{Opts: o, Workload: key, Touches: tc, Attack: mkAttack()}),
		})
	}
	outs, err := mx.Run(o.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	for i, key := range keys {
		fig.Bars = append(fig.Bars, victimBars(key, outs[pairs[i].normal], outs[pairs[i].attacked])...)
	}
	return fig, nil
}

// payloadCycles scales the paper's ~34 s injected loop.
func payloadCycles(o Options) sim.Cycles {
	return sim.Cycles(34 * o.Scale * float64(o.Freq))
}

// Figure4 reproduces the shell attack: every program's user time
// grows by the same ~34 s payload; system time is untouched.
func Figure4(o Options) (*Figure, error) {
	o = o.norm()
	fig, err := perProgramFigure(o, "Figure 4", "Shell Attack", nil, func() attacks.Attack {
		return &attacks.ShellAttack{PayloadCycles: payloadCycles(o)}
	})
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("payload: %.1f s injected between fork() and execve(); paper: ~34 s (2^34-iteration loop)", 34*o.Scale),
		"expectation: user time +constant for all four programs, system time unchanged")
	return fig, nil
}

// Figure5 reproduces the shared-library constructor attack; the
// paper notes the result is "almost identical" to Fig. 4.
func Figure5(o Options) (*Figure, error) {
	o = o.norm()
	fig, err := perProgramFigure(o, "Figure 5", "Shared Library Constructor Attack", nil, func() attacks.Attack {
		return &attacks.LibraryCtorAttack{PayloadCycles: payloadCycles(o)}
	})
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"LD_PRELOAD-ed constructor runs the same payload before main()",
		"expectation: almost identical to Figure 4 (same code, different location)")
	return fig, nil
}

// Figure6 reproduces the function-substitution attack: fake malloc()
// and sqrt() run attack code per call, so inflation scales with the
// victim's call counts (libm-heavy Whetstone inflates most).
func Figure6(o Options) (*Figure, error) {
	o = o.norm()
	perCall := sim.Cycles(uint64(o.Freq) / 2000) // ~0.5 ms per interposed call
	fig, err := perProgramFigure(o, "Figure 6", "Library Function Substitution Attack", nil, func() attacks.Attack {
		return &attacks.LibrarySubstitutionAttack{PerCallCycles: perCall}
	})
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"fake malloc/sqrt run ~0.5 ms of attack code then call the genuine function",
		"expectation: amplified vs Fig. 5, proportional to per-program call frequency")
	return fig, nil
}

// schedulingSweep produces the Fig. 7/8 artifact for one victim:
// leftmost pair is victim and Fork run independently; subsequent
// pairs run them concurrently with the attacker at each nice value.
func schedulingSweep(o Options, id, victim string) (*Figure, error) {
	o = o.norm()
	forks := uint64(float64(attacks.DefaultSchedulingForks) * o.Scale)
	if forks < 512 {
		forks = 512
	}
	fig := &Figure{
		ID:    id,
		Title: fmt.Sprintf("Process Scheduling Attack on %s", victim),
		Unit:  "CPU seconds (billed by jiffy accounting; Fork includes its children)",
	}

	addPair := func(group string, v, f *RunOut) {
		fig.Bars = append(fig.Bars,
			textplot.Bar{Group: group, Label: victim, Segments: []textplot.Segment{
				{Name: "user", Value: v.Victim.User["jiffy"]},
				{Name: "system", Value: v.Victim.Sys["jiffy"]},
			}},
			textplot.Bar{Group: group, Label: "Fork", Segments: []textplot.Segment{
				{Name: "user", Value: f.AttackerUser("jiffy")},
				{Name: "system", Value: f.AttackerSys("jiffy")},
			}},
		)
	}

	// The full matrix: the two independent runs ("no attack"), then
	// one concurrent victim/attacker run per nice level.
	niceLevels := []int{0, -5, -10, -15, -20}
	var mx Matrix
	vAlone := mx.Add(RunSpec{Opts: o, Workload: victim})
	fAlone := mx.Add(RunSpec{Opts: o, Attack: attacks.NewSchedulingAttack(0, forks)})
	swept := make([]int, 0, len(niceLevels))
	for _, nice := range niceLevels {
		swept = append(swept, mx.Add(RunSpec{Opts: o, Workload: victim, Attack: attacks.NewSchedulingAttack(nice, forks)}))
	}
	outs, err := mx.Run(o.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}

	addPair("no attack", outs[vAlone], outs[fAlone])
	for i, nice := range niceLevels {
		group := "nice"
		if nice != 0 {
			group = fmt.Sprintf("nice%d", nice)
		}
		addPair(group, outs[swept[i]], outs[swept[i]])
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("fork storm: %d forks (paper: 2^21; scaled for tractable simulation)", forks),
		"expectation: victim's billed time rises as attacker priority rises; Fork's falls; sum ~constant")
	return fig, nil
}

// AttackerUser sums attacker user seconds under a scheme.
func (r *RunOut) AttackerUser(scheme string) float64 {
	var t float64
	for _, a := range r.Attackers {
		t += a.User[scheme]
	}
	return t
}

// AttackerSys sums attacker system seconds under a scheme.
func (r *RunOut) AttackerSys(scheme string) float64 {
	var t float64
	for _, a := range r.Attackers {
		t += a.Sys[scheme]
	}
	return t
}

// Figure7 reproduces the scheduling attack on Whetstone.
func Figure7(o Options) (*Figure, error) {
	return schedulingSweep(o, "Figure 7", "W")
}

// Figure8 reproduces the scheduling attack on Brute: the threaded
// victim absorbs no significant inflation.
func Figure8(o Options) (*Figure, error) {
	fig, err := schedulingSweep(o, "Figure 8", "B")
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"paper: no significant change for B — threads scheduled as processes spread the sampling error across per-task rusage",
		"this reproduction bills the whole thread group as one entity, re-aggregating the spread error; see EXPERIMENTS.md")
	return fig, nil
}

// Figure9 reproduces the execution-thrashing attack: watchpoint
// storms inflate mostly system time, proportional to hit counts
// (paper: O/P ~10^7 scaled to 10^6, W 2x10^5, B ~8.95x10^5).
func Figure9(o Options) (*Figure, error) {
	o = o.norm()
	touches := func(key string) uint64 {
		spec, _ := workloadSpec(key)
		n := uint64(float64(spec.DefaultThrashTouches) * o.Scale)
		if n < 100 {
			n = 100
		}
		return n
	}
	fig, err := perProgramFigure(o, "Figure 9", "Execution Thrashing Attack", touches, func() attacks.Attack {
		return attacks.NewThrashingAttack(0)
	})
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"watchpoints on each program's hot variable (O: loop counter, P: y, W: T1, B: count)",
		"expectation: system time rises sharply; ordering follows watchpoint hit counts")
	return fig, nil
}

// Figure10 reproduces the interrupt flooding attack: junk packets
// slightly inflate every program's system time.
func Figure10(o Options) (*Figure, error) {
	o = o.norm()
	fig, err := perProgramFigure(o, "Figure 10", "Interrupt Flooding Attack", nil, func() attacks.Attack {
		return attacks.NewInterruptFloodAttack(40_000)
	})
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"40k junk packets/s raise one NIC rx interrupt each; handler time lands on the current task",
		"expectation: slight system-time increase on all four programs")
	return fig, nil
}

// Figure11 reproduces the exception flooding attack: a >2x-RAM
// memory hog forces victim page faults.
func Figure11(o Options) (*Figure, error) {
	o = o.norm()
	if o.PhysMemBytes == 0 {
		o.PhysMemBytes = 1 << 30
	}
	fig, err := perProgramFigure(o, "Figure 11", "Exception Flooding Attack", nil, func() attacks.Attack {
		return attacks.NewExceptionFloodAttack(2 * o.PhysMemBytes)
	})
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("hog requests 2x physical memory (%d MiB RAM) and continuously re-dirties it", o.PhysMemBytes>>20),
		"expectation: system time increases via page-fault handling and swap-I/O completions; bounded (paper: weakest attack)")
	return fig, nil
}
