// Chaos flood: the routed-flood scenario of routerflood.go run under
// injected infrastructure faults — seeded syscall error injection on
// every machine, a scheduled mid-flood crash (and optional reboot) of
// the router, and outage windows flapping the victim's egress wire.
// The artifact's question is billing *integrity*: when the fabric
// itself misbehaves, does every accounting scheme's ledger still
// balance? Per-link conservation (Sent = Delivered + Dropped +
// Queued) must hold through the crash, per-machine bills must stay
// monotone across incarnations, and with every fault probability
// zero the scenario must replay the healthy history bit-for-bit.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/textplot"
)

// ChaosSpec is the fault-injection overlay on a routed-flood
// scenario. The zero value injects nothing and schedules nothing.
type ChaosSpec struct {
	// FaultPPM is each configured syscall's injection probability in
	// parts per million (0..kernel.PPMScale), applied on every
	// machine from its own seeded stream; zero injects nothing.
	FaultPPM uint32
	// FaultSyscalls lists the syscalls that take injection; empty
	// selects ["sendto", "read"] — the fabric-facing pair.
	FaultSyscalls []string
	// FaultErrno names the injected errno: "eagain" (default,
	// transient — guests retry), "enomem" (transient), or "eio"
	// (hard — guests give up at once).
	FaultErrno string
	// RouterCrashSec, when nonzero, kills the router machine that
	// many virtual seconds into the run.
	RouterCrashSec float64
	// RouterRestartSec, when nonzero, reboots the router that many
	// virtual seconds after the crash with fresh task state (the
	// forwarding daemon is respawned; its pre-crash bill survives
	// only in the retired incarnation's ledger). Requires
	// RouterCrashSec.
	RouterRestartSec float64
	// VictimFlap, when non-nil, arms outage windows on the
	// router→victim egress wire's forward direction.
	VictimFlap *cluster.FlapSpec
}

// chaosErrno resolves a ChaosSpec errno name.
func chaosErrno(name string) (guest.Errno, error) {
	switch name {
	case "", "eagain":
		return guest.EAGAIN, nil
	case "enomem":
		return guest.ENOMEM, nil
	case "eio":
		return guest.EIO, nil
	}
	return 0, fmt.Errorf("chaosflood: unknown fault errno %q (have eio, eagain, enomem)", name)
}

// faultSpec builds one machine's kernel fault table from the overlay
// (nil when no injection is configured, which keeps the kernel's
// zero-fault fast path and its bit-for-bit guarantee).
func (cs ChaosSpec) faultSpec() (*kernel.FaultSpec, error) {
	if cs.FaultPPM == 0 {
		return nil, nil
	}
	errno, err := chaosErrno(cs.FaultErrno)
	if err != nil {
		return nil, err
	}
	names := cs.FaultSyscalls
	if len(names) == 0 {
		names = []string{"sendto", "read"}
	}
	fs := &kernel.FaultSpec{}
	for _, name := range names {
		fs.Syscalls = append(fs.Syscalls, kernel.SyscallFault{
			Name: name, Errno: errno, ProbPPM: cs.FaultPPM,
		})
	}
	if err := fs.Validate(); err != nil {
		return nil, fmt.Errorf("chaosflood: %w", err)
	}
	return fs, nil
}

// ChaosFloodSpec is one chaos scenario: a routed flood plus the
// fault overlay.
type ChaosFloodSpec struct {
	Flood RouterFloodSpec
	Chaos ChaosSpec
}

// LinkAccounting is one link direction's conservation ledger.
type LinkAccounting struct {
	Name                             string
	Sent, Delivered, Dropped, Queued uint64
}

// Balanced reports the per-link conservation identity — every frame
// offered is delivered, dropped, or still queued, crashes and
// outages included.
func (la LinkAccounting) Balanced() bool {
	return la.Sent == la.Delivered+la.Dropped+la.Queued
}

// ChaosFloodOut is one chaos scenario's harvest.
type ChaosFloodOut struct {
	Spec   ChaosFloodSpec
	Victim ClusterVictimOut
	// Router is the forwarding daemon's accounted time across
	// schemes, summed over every router incarnation — the cumulative
	// bill that must stay monotone through crash and reboot.
	Router PartyUsage
	// RouterIncarnations counts router machines that served (1 on a
	// healthy run, 2 after a crash+restart); RouterCrashed reports
	// the scheduled crash actually fired.
	RouterIncarnations int
	RouterCrashed      bool
	// RouterForwarded counts frames retransmitted across all router
	// incarnations.
	RouterForwarded uint64
	// FaultsInjected sums injected syscall errors over every machine
	// (incarnations included); zero on a zero-PPM run by
	// construction.
	FaultsInjected uint64
	// Flow is the well-behaved transfer's harvest.
	Flow AckFlowStats
	// Links holds both directions of every declared link, in
	// declaration order (forward then reverse).
	Links []LinkAccounting
	// ElapsedSec is the slowest machine's virtual wall time.
	ElapsedSec float64
}

// Unbalanced returns the names of link directions whose conservation
// identity fails (empty on every honest run).
func (out *ChaosFloodOut) Unbalanced() []string {
	var bad []string
	for _, la := range out.Links {
		if !la.Balanced() {
			bad = append(bad, la.Name)
		}
	}
	return bad
}

// RunChaosFlood executes one chaos scenario. The topology is the
// routed flood's: machines 0..A-1 attackers, A the flow sender, A+1
// the router (crash/restart target), A+2 the victim host.
func RunChaosFlood(spec ChaosFloodSpec) (*ChaosFloodOut, error) {
	fl := spec.Flood
	cs := spec.Chaos
	o := fl.Opts.norm()
	if fl.Attackers < 1 {
		return nil, fmt.Errorf("chaosflood: need at least one attacker machine, have %d", fl.Attackers)
	}
	if cs.RouterCrashSec < 0 || cs.RouterRestartSec < 0 {
		return nil, fmt.Errorf("chaosflood: crash/restart times must be non-negative (crash %gs, restart %gs)", cs.RouterCrashSec, cs.RouterRestartSec)
	}
	if cs.RouterRestartSec > 0 && cs.RouterCrashSec == 0 {
		return nil, fmt.Errorf("chaosflood: RouterRestartSec %gs without RouterCrashSec (nothing to restart)", cs.RouterRestartSec)
	}
	faults, err := cs.faultSpec()
	if err != nil {
		return nil, err
	}
	floodSec := fl.FloodSeconds
	if floodSec == 0 {
		s, err := (ClusterRunSpec{Victims: []ClusterVictim{fl.Victim}}).floodSeconds(o)
		if err != nil {
			return nil, err
		}
		floodSec = s
	}
	if cs.RouterCrashSec > 0 && cs.RouterCrashSec >= 4*floodSec {
		return nil, fmt.Errorf("chaosflood: RouterCrashSec %gs is past the scenario horizon (~%gs flood): the crash would never land", cs.RouterCrashSec, floodSec)
	}
	tick := sim.Cycles(uint64(o.Freq) / o.HZ)
	accts, err := victimAccountants(fl.Victim.Billing, tick)
	if err != nil {
		return nil, err
	}
	lookupUs := fl.RouterLookupUs
	if lookupUs == 0 {
		lookupUs = cluster.DefaultForwardUs
	}
	perUs := sim.Cycles(uint64(o.Freq) / 1_000_000)
	crashAt := sim.Cycles(cs.RouterCrashSec * float64(o.Freq))
	restartAfter := sim.Cycles(cs.RouterRestartSec * float64(o.Freq))

	senderIdx := fl.Attackers
	routerIdx := fl.Attackers + 1
	victimIdx := fl.Attackers + 2

	machines := make([]cluster.MachineSpec, 0, victimIdx+1)

	// Attackers: non-ECN junk toward the victim, under injection like
	// everyone else (their pktgen forfeits faulted slots).
	pps := fl.PerAttackerPPS
	for a := 0; a < fl.Attackers; a++ {
		cfg := o.machineConfig()
		cfg.Seed = clusterSeed(o.Seed, a)
		cfg.Faults = faults
		machines = append(machines, cluster.MachineSpec{
			Name:   fmt.Sprintf("attacker-%d", a),
			Config: cfg,
			Boot: func(c *cluster.Cluster, m *kernel.Machine) error {
				if pps == 0 {
					return nil // silent baseline
				}
				packets := uint64(floodSec * float64(pps))
				_, err := m.Spawn(guestSpawn(o, "pktgen", "junk-ip packet generator v3 (routed)",
					floodBodyStep(o.Freq, pps, packets, guest.Frame{Dst: c.AddrOf(victimIdx)})))
				return err
			},
		})
	}

	// Sender: the well-behaved flow, on the clock-driven timeout so a
	// dead router makes it give up instead of polling forever.
	flowStats := &AckFlowStats{}
	senderCfg := o.machineConfig()
	senderCfg.Seed = clusterSeed(o.Seed, senderIdx)
	senderCfg.Faults = faults
	machines = append(machines, cluster.MachineSpec{
		Name:   "sender",
		Config: senderCfg,
		Boot: func(c *cluster.Cluster, m *kernel.Machine) error {
			if fl.FlowFrames == 0 {
				return nil
			}
			_, err := m.Spawn(guestSpawn(o, "flowsend", "ack-paced ecn sender v1 (chaos-hardened)",
				AckPacedSenderStep(AckFlowConfig{
					Peer:          c.AddrOf(victimIdx),
					Flow:          routerFloodFlowID,
					Frames:        fl.FlowFrames,
					Window:        fl.FlowWindow,
					PaceCycles:    500 * perUs, // ≤2k pps offered
					TimeoutCycles: 50_000 * perUs,
				}, flowStats)))
			return err
		},
	})

	// Router: the crash/restart target. Boot runs once per
	// incarnation, so the daemon's PID is recorded per incarnation
	// for the cumulative harvest.
	var routerPIDs []proc.PID
	routerCfg := o.machineConfig()
	routerCfg.Seed = clusterSeed(o.Seed, routerIdx)
	routerCfg.Faults = faults
	machines = append(machines, cluster.MachineSpec{
		Name:         "router",
		Config:       routerCfg,
		Service:      true,
		CrashAt:      crashAt,
		RestartAfter: restartAfter,
		Boot: func(_ *cluster.Cluster, m *kernel.Machine) error {
			p, err := m.Spawn(guestSpawn(o, "fwd", "store-and-forward router daemon v1",
				cluster.ForwarderStep(sim.Cycles(lookupUs)*perUs)))
			if p != nil {
				routerPIDs = append(routerPIDs, p.PID)
			}
			return err
		},
	})

	// Victim host: billed workload plus the flow's echo daemon.
	var launch *launched
	victimCfg := o.machineConfig()
	victimCfg.Seed = clusterSeed(o.Seed, victimIdx)
	victimCfg.Accountants = accts
	victimCfg.Faults = faults
	machines = append(machines, cluster.MachineSpec{
		Name:    "victim",
		Config:  victimCfg,
		Service: fl.FlowFrames > 0,
		Boot: func(_ *cluster.Cluster, m *kernel.Machine) error {
			if fl.FlowFrames > 0 {
				if _, err := m.Spawn(guestSpawn(o, "echod", "per-flow ack echo daemon v1",
					AckEchoStep(routerFloodFlowID))); err != nil {
					return err
				}
			}
			l, err := launchSpec(m, RunSpec{
				Opts:       o,
				Workload:   fl.Victim.Workload,
				VictimNice: fl.Victim.Nice,
			})
			if err != nil {
				return err
			}
			launch = l
			return nil
		},
	})

	// Routed star topology, flap armed on the congested egress hop.
	links := make([]cluster.LinkSpec, 0, victimIdx)
	linkNames := make([]string, 0, victimIdx)
	for a := 0; a < fl.Attackers; a++ {
		links = append(links, cluster.LinkSpec{From: a, To: routerIdx, LatencyUs: fl.LinkLatencyUs})
		linkNames = append(linkNames, fmt.Sprintf("attacker-%d/router", a))
	}
	links = append(links, cluster.LinkSpec{From: senderIdx, To: routerIdx, LatencyUs: fl.LinkLatencyUs})
	linkNames = append(linkNames, "sender/router")
	links = append(links, cluster.LinkSpec{
		From: routerIdx, To: victimIdx,
		LatencyUs:        fl.LinkLatencyUs,
		PacketsPerSecond: fl.EgressPPS,
		QueueDepth:       fl.EgressQueueDepth,
		RED:              fl.RED,
		Flap:             cs.VictimFlap,
	})
	linkNames = append(linkNames, "router/victim")
	routes := make([]cluster.RouteSpec, 0, fl.Attackers+2)
	for a := 0; a < fl.Attackers; a++ {
		routes = append(routes, cluster.RouteSpec{On: a, Dst: victimIdx, Via: routerIdx})
	}
	routes = append(routes,
		cluster.RouteSpec{On: senderIdx, Dst: victimIdx, Via: routerIdx},
		cluster.RouteSpec{On: victimIdx, Dst: senderIdx, Via: routerIdx},
	)

	cl, err := cluster.New(cluster.Config{Machines: machines, Links: links, Routes: routes})
	if err != nil {
		return nil, err
	}
	if err := cl.Run(); err != nil {
		return nil, fmt.Errorf("chaosflood %s: %w", chaosFloodKey(spec), err)
	}
	if launch.prog != nil && !launch.prog.Done {
		return nil, fmt.Errorf("chaosflood %s: victim workload retired before completion (stalled behind the service daemon?)", chaosFloodKey(spec))
	}

	vm := cl.Machine(victimIdx)
	billing := fl.Victim.Billing
	if billing == "" {
		billing = "jiffy"
	}
	out := &ChaosFloodOut{
		Spec: spec,
		Victim: ClusterVictimOut{
			Billing:         billing,
			Run:             launch.harvest(vm),
			PacketsReceived: vm.NIC().Received(),
		},
		Router: PartyUsage{
			Name: "fwd",
			User: make(map[string]float64, len(Schemes)),
			Sys:  make(map[string]float64, len(Schemes)),
		},
		RouterCrashed: cl.Crashed(routerIdx),
		Flow:          *flowStats,
		ElapsedSec:    clusterElapsedSec(cl),
	}
	incs := cl.Incarnations(routerIdx)
	out.RouterIncarnations = len(incs)
	for k, inc := range incs {
		var pid proc.PID
		if k < len(routerPIDs) {
			pid = routerPIDs[k]
		}
		u := usageOf(inc, "fwd", pid)
		for _, s := range Schemes {
			out.Router.User[s] += u.User[s]
			out.Router.Sys[s] += u.Sys[s]
		}
		out.RouterForwarded += inc.NIC().Transmitted()
	}
	if len(routerPIDs) > 0 {
		out.Router.PID = routerPIDs[0]
	}
	for i := 0; i < cl.Size(); i++ {
		for _, inc := range cl.Incarnations(i) {
			out.FaultsInjected += inc.FaultsInjected()
		}
	}
	for i := 0; i < cl.Links(); i++ {
		fwd := cl.Link(i)
		rev := fwd.Reverse()
		out.Links = append(out.Links,
			LinkAccounting{Name: linkNames[i] + "/fwd", Sent: fwd.Sent(), Delivered: fwd.Delivered(), Dropped: fwd.Dropped(), Queued: fwd.Queued()},
			LinkAccounting{Name: linkNames[i] + "/rev", Sent: rev.Sent(), Delivered: rev.Delivered(), Dropped: rev.Dropped(), Queued: rev.Queued()},
		)
	}
	return out, nil
}

func chaosFloodKey(spec ChaosFloodSpec) string {
	return fmt.Sprintf("%d-attackers/%dpps/%dppm/crash@%gs",
		spec.Flood.Attackers, spec.Flood.PerAttackerPPS, spec.Chaos.FaultPPM, spec.Chaos.RouterCrashSec)
}

// RunAllChaosFloods executes every scenario on its own lockstep
// machine set across the campaign worker pool — the RunAll contract.
//
// Deprecated: RunAllChaosFloods is Campaign("chaosflood", ...) over RunChaosFlood;
// new callers should use Campaign directly. Kept as a thin wrapper
// for the pre-generic API.
func RunAllChaosFloods(specs []ChaosFloodSpec, parallelism int) ([]*ChaosFloodOut, error) {
	return Campaign("chaosflood", specs, parallelism, RunChaosFlood, chaosFloodKey)
}

// chaosFloodBase is the shared flood under every chaos scenario: the
// routerflood artifact's worst case (two attackers at 20k pps each
// through the RED-managed 30k-pps egress, alongside the ECN flow).
func chaosFloodBase(o Options) RouterFloodSpec {
	return RouterFloodSpec{
		Opts:           o,
		Attackers:      routerFloodAttackers,
		PerAttackerPPS: 20_000,
		Victim:         ClusterVictim{Workload: "O", Billing: "jiffy"},
		EgressPPS:      routerFloodEgressPPS,
		RED:            routerFloodRED(),
		FlowFrames:     routerFloodFlowFrames,
	}
}

// ChaosFlood regenerates the billing-integrity-under-faults artifact:
// the routed flood run healthy, under 2% transient syscall faults,
// with the router killed mid-flood, and with crash+reboot plus a
// flapping victim egress. Every scenario's per-link conservation
// identity and the router's cumulative per-scheme bill are rendered;
// an unbalanced ledger anywhere is an error in the fabric, not a
// rendering choice.
func ChaosFlood(o Options) (*Figure, error) {
	o = o.norm()
	base := chaosFloodBase(o)
	floodSec, err := (ClusterRunSpec{Victims: []ClusterVictim{base.Victim}}).floodSeconds(o)
	if err != nil {
		return nil, err
	}
	flap := &cluster.FlapSpec{
		FirstDownUs: uint64(floodSec * 0.2 * 1e6),
		DownUs:      uint64(floodSec * 0.05 * 1e6),
		UpUs:        uint64(floodSec * 0.2 * 1e6),
	}
	scenarios := []struct {
		label string
		chaos ChaosSpec
	}{
		{"healthy", ChaosSpec{}},
		{"2% faults", ChaosSpec{FaultPPM: 20_000}},
		{"router crash", ChaosSpec{RouterCrashSec: floodSec * 0.45}},
		{"crash+reboot+flap", ChaosSpec{
			FaultPPM:         20_000,
			RouterCrashSec:   floodSec * 0.3,
			RouterRestartSec: floodSec * 0.15,
			VictimFlap:       flap,
		}},
	}
	specs := make([]ChaosFloodSpec, len(scenarios))
	for i, sc := range scenarios {
		specs[i] = ChaosFloodSpec{Flood: base, Chaos: sc.chaos}
	}
	outs, err := RunAllChaosFloods(specs, o.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("chaos flood: %w", err)
	}

	fig := &Figure{
		ID:    "Chaos Flood",
		Title: "Billing Integrity Under Faults (routed flood with syscall faults, router crash/reboot, link flap)",
		Unit:  "CPU seconds (jiffy-billed on each owning machine, summed across incarnations)",
	}
	for i, sc := range scenarios {
		out := outs[i]
		fig.Bars = append(fig.Bars,
			textplot.Bar{Group: "router-fwd", Label: sc.label, Segments: []textplot.Segment{
				{Name: "user", Value: out.Router.User["jiffy"]},
				{Name: "system", Value: out.Router.Sys["jiffy"]},
			}},
			textplot.Bar{Group: "victim-host", Label: sc.label, Segments: []textplot.Segment{
				{Name: "user", Value: out.Victim.Run.Victim.User["jiffy"]},
				{Name: "system", Value: out.Victim.Run.Victim.Sys["jiffy"]},
			}},
		)
		ledger := "every link ledger balanced (Sent = Delivered + Dropped + Queued)"
		if bad := out.Unbalanced(); len(bad) > 0 {
			ledger = fmt.Sprintf("LEDGER VIOLATION on %v", bad)
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: %d faults injected, router incarnations %d (crashed %v), forwarded %d; flow acked %d/%d (gave up %v, send errs %d); %s",
			sc.label, out.FaultsInjected, out.RouterIncarnations, out.RouterCrashed,
			out.RouterForwarded, out.Flow.Acked, routerFloodFlowFrames, out.Flow.GaveUp,
			out.Flow.SendErrors, ledger))
	}
	fig.Notes = append(fig.Notes,
		"expectation: killing the router mid-flood truncates its bill (the crashed incarnation's ledger survives) without breaking any link's conservation identity; injected faults shift work between retries and drops but never un-account a frame",
	)
	return fig, nil
}
