package experiments

import (
	"testing"
)

func quickMultiFloodSpec(attackers int, billing string) MultiFloodSpec {
	return MultiFloodSpec{
		Opts:           quick(),
		Attackers:      attackers,
		PerAttackerPPS: multiFloodPerAttackerPPS,
		Victim:         ClusterVictim{Workload: "O", Billing: billing},
		BottleneckPPS:  multiFloodBottleneckPPS,
	}
}

// TestMultiFloodBottleneckSaturates pins the scenario's physics: one
// attacker fits through the shared wire, four oversubscribe it, so
// tail-drops appear and the delivered aggregate stays below the
// offered aggregate while accounting stays exact. The flood window is
// kept shorter than the victim's run so every drop here is a genuine
// queue drop, not a frame offered after the victim finished.
func TestMultiFloodBottleneckSaturates(t *testing.T) {
	short := func(attackers int) MultiFloodSpec {
		s := quickMultiFloodSpec(attackers, "jiffy")
		s.FloodSeconds = 0.2 // victim "O" at quick scale runs ~0.5 s
		return s
	}
	one, err := RunMultiFlood(short(1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunMultiFlood(short(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range []*MultiFloodOut{one, four} {
		if out.Offered != out.Carried+out.Dropped {
			t.Fatalf("Offered %d != Carried %d + Dropped %d", out.Offered, out.Carried, out.Dropped)
		}
	}
	if one.Dropped > one.Offered/100 {
		t.Errorf("one attacker at 40k pps dropped %d of %d on a 100k wire, want ~none", one.Dropped, one.Offered)
	}
	if four.Dropped < four.Offered/10 {
		t.Errorf("four attackers dropped %d of %d, want heavy tail-drop at 1.6x oversubscription", four.Dropped, four.Offered)
	}
	// Every carried frame lands while the victim still simulates.
	if four.Victim.PacketsReceived != four.Carried {
		t.Errorf("victim received %d, wire carried %d", four.Victim.PacketsReceived, four.Carried)
	}
}

// TestMultiFloodInflatesOnlyCommodityBill mirrors the cluster-flood
// billing contract for the converging scenario.
func TestMultiFloodInflatesOnlyCommodityBill(t *testing.T) {
	jiffyOne, err := RunMultiFlood(quickMultiFloodSpec(1, "jiffy"))
	if err != nil {
		t.Fatal(err)
	}
	jiffyFour, err := RunMultiFlood(quickMultiFloodSpec(4, "jiffy"))
	if err != nil {
		t.Fatal(err)
	}
	gain := jiffyFour.Victim.Run.Victim.Total("jiffy") - jiffyOne.Victim.Run.Victim.Total("jiffy")
	if gain <= 0.01 {
		t.Errorf("jiffy bill gained only %.4f s from 1 to 4 attackers, want visible inflation", gain)
	}
	paOne, err := RunMultiFlood(quickMultiFloodSpec(1, "process-aware"))
	if err != nil {
		t.Fatal(err)
	}
	paFour, err := RunMultiFlood(quickMultiFloodSpec(4, "process-aware"))
	if err != nil {
		t.Fatal(err)
	}
	paGain := paFour.Victim.Run.Victim.Total("process-aware") - paOne.Victim.Run.Victim.Total("process-aware")
	if paGain > 0.01 {
		t.Errorf("process-aware bill gained %.4f s, want ~0 (handler time lands on the system account)", paGain)
	}
	if sys := paFour.Victim.Run.SystemAccountSec; sys <= 0 {
		t.Errorf("system account = %.4f s under a 4-attacker flood, want > 0", sys)
	}
}

// TestMultiFloodParallelDeterminism mirrors the campaign contract:
// the rendered artifact is byte-identical at any pool size.
func TestMultiFloodParallelDeterminism(t *testing.T) {
	opts := func(par int) Options {
		o := quick()
		o.Parallelism = par
		return o
	}
	seq, err := MultiAttackerFlood(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := MultiAttackerFlood(opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if s, p := seq.Render(), par.Render(); s != p {
		t.Errorf("parallel render diverged from sequential\n--- sequential ---\n%s--- parallel ---\n%s", s, p)
	}
}

// TestMultiFloodRejectsBadSpecs covers spec validation.
func TestMultiFloodRejectsBadSpecs(t *testing.T) {
	bad := quickMultiFloodSpec(0, "jiffy")
	if _, err := RunMultiFlood(bad); err == nil {
		t.Error("zero attackers accepted")
	}
	bad = quickMultiFloodSpec(1, "jiffy")
	bad.PerAttackerPPS = 0
	if _, err := RunMultiFlood(bad); err == nil {
		t.Error("zero rate accepted")
	}
	bad = quickMultiFloodSpec(1, "bogus-scheme")
	if _, err := RunMultiFlood(bad); err == nil {
		t.Error("unknown billing scheme accepted")
	}
}
