package experiments

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

func quickClusterSpec(pps uint64) ClusterRunSpec {
	return ClusterRunSpec{
		Opts: quick(),
		Victims: []ClusterVictim{
			{Workload: "O", Billing: "jiffy"},
			{Workload: "O", Billing: "process-aware"},
		},
		FloodPPS: pps,
	}
}

// TestClusterSeedsReproduceExactHistories pins the lockstep engine's
// determinism contract at the scenario level: the same spec replays
// bit-identical victim accounting and packet counts.
func TestClusterSeedsReproduceExactHistories(t *testing.T) {
	a, err := RunCluster(quickClusterSpec(20_000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCluster(quickClusterSpec(20_000))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Victims {
		av, bv := a.Victims[i], b.Victims[i]
		if av.PacketsReceived != bv.PacketsReceived {
			t.Errorf("victim %d received %d vs %d packets across same-seed runs", i, av.PacketsReceived, bv.PacketsReceived)
		}
		if av.PacketsReceived == 0 {
			t.Errorf("victim %d received no packets", i)
		}
		for _, scheme := range Schemes {
			if au, bu := av.Run.Victim.Total(scheme), bv.Run.Victim.Total(scheme); au != bu {
				t.Errorf("victim %d %s total %v vs %v across same-seed runs", i, scheme, au, bu)
			}
		}
	}
	if a.ElapsedSec != b.ElapsedSec {
		t.Errorf("elapsed %v vs %v across same-seed runs", a.ElapsedSec, b.ElapsedSec)
	}
}

// TestClusterFloodInflatesOnlyCommodityBill asserts the scenario's
// headline property: the flood inflates the jiffy-billed host's bill
// (system time, Fig. 10's channel) while the process-aware host's own
// bill stays flat because handler time lands on the system account.
func TestClusterFloodInflatesOnlyCommodityBill(t *testing.T) {
	base, err := RunCluster(quickClusterSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	flooded, err := RunCluster(quickClusterSpec(40_000))
	if err != nil {
		t.Fatal(err)
	}

	jiffyGain := flooded.Victims[0].Run.Victim.Total("jiffy") - base.Victims[0].Run.Victim.Total("jiffy")
	if jiffyGain <= 0.01 {
		t.Errorf("jiffy-billed host gained only %.4f s under 40k pps, want visible inflation", jiffyGain)
	}
	paGain := flooded.Victims[1].Run.Victim.Total("process-aware") - base.Victims[1].Run.Victim.Total("process-aware")
	if paGain > 0.01 {
		t.Errorf("process-aware-billed host gained %.4f s, want ~0 (handler time goes to the system account)", paGain)
	}
	if sys := flooded.Victims[1].Run.SystemAccountSec; sys <= 0 {
		t.Errorf("system account = %.4f s under flood, want > 0", sys)
	}
	// The flood crossed a real link: the attacker's transmit count
	// bounds what each victim saw.
	for i, v := range flooded.Victims {
		if v.PacketsReceived == 0 || v.PacketsReceived > flooded.PacketsSent[i] {
			t.Errorf("victim %d received %d of %d sent", i, v.PacketsReceived, flooded.PacketsSent[i])
		}
	}
}

// TestClusterFloodParallelDeterminism mirrors the campaign contract
// for cluster scenarios: the rendered artifact is byte-identical
// whether clusters run sequentially or sharded across the pool.
func TestClusterFloodParallelDeterminism(t *testing.T) {
	opts := func(par int) Options {
		o := quick()
		o.Parallelism = par
		return o
	}
	seq, err := ClusterFlood(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := ClusterFlood(opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if s, p := seq.Render(), par.Render(); s != p {
		t.Errorf("parallel render diverged from sequential\n--- sequential ---\n%s--- parallel ---\n%s", s, p)
	}
}

// TestLosslessInfiniteRateReplaysClusterArtifact pins backward
// compatibility with the first (idealised) link model: rendering the
// cluster artifact over lossless infinite-rate wires is byte-
// identical to the default finite-capacity wire, whose serialisation
// floor and queue never bind at the artifact's offered rates.
func TestLosslessInfiniteRateReplaysClusterArtifact(t *testing.T) {
	o := quick()
	def, err := clusterFloodWith(o, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := clusterFloodWith(o, cluster.UnlimitedPPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d, i := def.Render(), ideal.Render(); d != i {
		t.Errorf("lossless infinite-rate render diverged from default wire\n--- default ---\n%s--- lossless ---\n%s", d, i)
	}
}

// TestRunAllClustersReportsEarliestError mirrors RunAll's
// deterministic error contract one level up.
func TestRunAllClustersReportsEarliestError(t *testing.T) {
	bad := quickClusterSpec(1000)
	bad.Victims = []ClusterVictim{{Workload: "bogus"}}
	_, err := RunAllClusters([]ClusterRunSpec{quickClusterSpec(1000), bad, bad}, 3)
	if err == nil {
		t.Fatal("want error")
	}
	if got := err.Error(); !strings.Contains(got, "cluster run 1") {
		t.Fatalf("error %q does not name the earliest failing spec", got)
	}
}
