package experiments

import (
	"strings"
	"testing"
)

// TestForkedCampaignMatchesFreshBuilds pins the shared-warmup
// guarantee: a campaign that warms one machine and forks its image
// into every variant is byte-identical to building, warming, and
// perturbing each variant's machine from scratch — the checkpoint
// changes where the warmup cycles are paid, never what the variants
// compute.
func TestForkedCampaignMatchesFreshBuilds(t *testing.T) {
	spec := ForkLabSpec{Seed: 77}
	rates := []uint64{10_000, 20_000, 40_000, 80_000, 160_000}

	// Parallelism 3 over 5 variants forces every worker pool to
	// recycle at least one machine shell through Put/Get.
	got, err := RunForkLabCampaign(spec, DefaultForkLabWarmup, rates, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rates) {
		t.Fatalf("campaign returned %d results, want %d", len(got), len(rates))
	}

	for i, pps := range rates {
		m, err := BuildForkLab(spec)
		if err != nil {
			t.Fatal(err)
		}
		done, err := m.RunUntil(DefaultForkLabWarmup)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatal("fork lab finished before the default warmup barrier; the campaign would have nothing to fork")
		}
		m.NIC().StartFlood(pps)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		want := HarvestForkLab(m)
		m.Shutdown()
		if got[i].Digest != want.Digest {
			t.Fatalf("variant %d (%d pps) diverged from its fresh-built twin:\n--- fresh\n%s--- forked\n%s",
				i, pps, want.Digest, got[i].Digest)
		}
	}

	// And the pool layout must not matter: a serial campaign renders
	// the same bytes as the parallel one.
	serial, err := RunForkLabCampaign(spec, DefaultForkLabWarmup, rates, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rates {
		if serial[i].Digest != got[i].Digest {
			t.Fatalf("variant %d differs between serial and parallel campaigns", i)
		}
	}
}

// TestForkedCampaignWarmupPastEnd pins the refusal: a barrier the
// machine finishes before is a configuration error, not a silent
// fork of a dead machine.
func TestForkedCampaignWarmupPastEnd(t *testing.T) {
	_, err := RunForkLabCampaign(ForkLabSpec{Seed: 5}, 1<<40, []uint64{40_000}, 1)
	if err == nil || !strings.Contains(err.Error(), "warmup finished before") {
		t.Fatalf("campaign with a past-end warmup = %v, want a warmup-finished error", err)
	}
}
