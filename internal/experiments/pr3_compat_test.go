package experiments

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// pr3Artifacts enumerates the PR 3 cluster-family artifacts in fixed
// order. This used to be a map, so golden regeneration wrote files —
// and a multi-artifact failure reported ids — in a different order
// every run; the slice pins one order for the replay test, the
// generator, and TestPR3ArtifactOrderIsPinned below.
var pr3Artifacts = []struct {
	id  string
	run func(Options) (*Figure, error)
}{
	{"cluster", ClusterFlood},
	{"multiflood", MultiAttackerFlood},
	{"swapflood", CrossMachineExceptionFlood},
}

// TestPR3ArtifactsReplayBitForBit pins the addressed-fabric refactor's
// compatibility bar: a router-free, tail-drop-only topology (every
// cluster-family artifact of PR 3) renders byte-for-byte what the
// pre-refactor tree rendered. The goldens under testdata/ were
// generated on the PR 3 tree at quick-test options before the frame/
// routing/RED plumbing landed.
func TestPR3ArtifactsReplayBitForBit(t *testing.T) {
	o := quick()
	for _, a := range pr3Artifacts {
		want, err := os.ReadFile("testdata/pr3_" + a.id + ".golden")
		if err != nil {
			t.Fatal(err)
		}
		fig, err := a.run(o)
		if err != nil {
			t.Fatalf("%s: %v", a.id, err)
		}
		if got := fig.Render(); got != string(want) {
			t.Errorf("%s diverged from the PR 3 golden\n--- got ---\n%s--- want ---\n%s", a.id, got, want)
		}
	}
}

// TestPR3ArtifactOrderIsPinned is the determinism regression for the
// site the simlint mapiter analyzer flagged here: the artifact table
// must stay sorted and duplicate-free, and must cover exactly the
// goldens checked in under testdata/ — so a rename or addition cannot
// silently leave a golden unreplayed or regenerate files in an order
// that churns diffs.
func TestPR3ArtifactOrderIsPinned(t *testing.T) {
	ids := make([]string, len(pr3Artifacts))
	for i, a := range pr3Artifacts {
		ids[i] = a.id
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("pr3Artifacts ids %v are not sorted", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			t.Errorf("pr3Artifacts has duplicate id %q", ids[i])
		}
	}
	goldens, err := filepath.Glob("testdata/pr3_*.golden")
	if err != nil {
		t.Fatal(err)
	}
	var onDisk []string
	for _, g := range goldens {
		base := filepath.Base(g)
		onDisk = append(onDisk, base[len("pr3_"):len(base)-len(".golden")])
	}
	sort.Strings(onDisk)
	if len(onDisk) != len(ids) {
		t.Fatalf("testdata has goldens for %v, table covers %v", onDisk, ids)
	}
	for i := range ids {
		if ids[i] != onDisk[i] {
			t.Fatalf("testdata has goldens for %v, table covers %v", onDisk, ids)
		}
	}
}
