package experiments

import (
	"os"
	"testing"
)

// TestPR3ArtifactsReplayBitForBit pins the addressed-fabric refactor's
// compatibility bar: a router-free, tail-drop-only topology (every
// cluster-family artifact of PR 3) renders byte-for-byte what the
// pre-refactor tree rendered. The goldens under testdata/ were
// generated on the PR 3 tree at quick-test options before the frame/
// routing/RED plumbing landed.
func TestPR3ArtifactsReplayBitForBit(t *testing.T) {
	o := quick()
	for id, run := range map[string]func(Options) (*Figure, error){
		"cluster":    ClusterFlood,
		"multiflood": MultiAttackerFlood,
		"swapflood":  CrossMachineExceptionFlood,
	} {
		want, err := os.ReadFile("testdata/pr3_" + id + ".golden")
		if err != nil {
			t.Fatal(err)
		}
		fig, err := run(o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if got := fig.Render(); got != string(want) {
			t.Errorf("%s diverged from the PR 3 golden\n--- got ---\n%s--- want ---\n%s", id, got, want)
		}
	}
}
