package experiments

import (
	"testing"

	"repro/internal/cluster"
)

func quickRouterFloodSpec(pps uint64) RouterFloodSpec {
	return RouterFloodSpec{
		Opts:           quick(),
		Attackers:      routerFloodAttackers,
		PerAttackerPPS: pps,
		Victim:         ClusterVictim{Workload: "O", Billing: "jiffy"},
		EgressPPS:      routerFloodEgressPPS,
		RED:            routerFloodRED(),
		FlowFrames:     routerFloodFlowFrames,
	}
}

// TestRouterBillGrowsWithOfferedRate pins the scenario's headline:
// the router machine — which the attackers never run an instruction
// on — sees its forwarding daemon's jiffy bill grow with the offered
// attacker packet rate.
func TestRouterBillGrowsWithOfferedRate(t *testing.T) {
	quiet, err := RunRouterFlood(quickRouterFloodSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunRouterFlood(quickRouterFloodSpec(10_000))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunRouterFlood(quickRouterFloodSpec(20_000))
	if err != nil {
		t.Fatal(err)
	}
	q, s, f := quiet.Router.Total("jiffy"), slow.Router.Total("jiffy"), fast.Router.Total("jiffy")
	if !(q < s && s < f) {
		t.Errorf("router jiffy bill not monotone in offered rate: %.3f (0) / %.3f (10k) / %.3f (20k)", q, s, f)
	}
	if f < q+0.05 {
		t.Errorf("router bill grew only %.4f s from silent to 2x20k pps, want visible inflation", f-q)
	}
	// The bill is for genuine forwarding: the router carried the junk
	// onward (minus egress congestion losses).
	if fast.RouterForwarded == 0 || fast.Carried == 0 {
		t.Errorf("no forwarding behind the bill: carried=%d forwarded=%d", fast.Carried, fast.RouterForwarded)
	}
}

// TestECNFlowBacksOffInsteadOfDropping pins the RED/ECN contract
// under congestion: the ack-paced ECN flow sharing the router's
// egress completes its transfer by backing off on CE marks, while the
// attackers' non-ECN junk absorbs the early drops.
func TestECNFlowBacksOffInsteadOfDropping(t *testing.T) {
	out, err := RunRouterFlood(quickRouterFloodSpec(20_000))
	if err != nil {
		t.Fatal(err)
	}
	if out.Flow.GaveUp || out.Flow.Acked != routerFloodFlowFrames {
		t.Fatalf("flow did not complete under flood: %+v", out.Flow)
	}
	if out.Flow.Backoffs == 0 || out.Flow.Marks == 0 {
		t.Errorf("flow saw no congestion feedback: %+v", out.Flow)
	}
	if out.EgressMarked == 0 {
		t.Error("RED marked no ECN frames on the congested egress")
	}
	if out.EgressEarlyDropped == 0 {
		t.Error("RED early-dropped no junk on the congested egress")
	}
	// Every egress drop was an early drop of non-ECN junk: the ECN
	// flow's frames were marked, not discarded.
	if out.EgressDropped != out.EgressEarlyDropped {
		t.Errorf("egress tail-dropped %d frames past RED, want 0 (ECN flow must not bleed tail-drops)",
			out.EgressDropped-out.EgressEarlyDropped)
	}

	// Without the flood the flow runs clean: no backoffs, no marks.
	quiet, err := RunRouterFlood(quickRouterFloodSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Flow.Acked != routerFloodFlowFrames || quiet.Flow.Backoffs != 0 {
		t.Errorf("quiet flow: %+v, want full transfer with zero backoffs", quiet.Flow)
	}
}

// TestRouterFloodVictimStillBilled mirrors the other cluster
// artifacts' billing contract one hop out: the victim host behind the
// router still absorbs delivered-flood rx interrupts under jiffy
// billing.
func TestRouterFloodVictimStillBilled(t *testing.T) {
	quiet, err := RunRouterFlood(quickRouterFloodSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	flooded, err := RunRouterFlood(quickRouterFloodSpec(20_000))
	if err != nil {
		t.Fatal(err)
	}
	gain := flooded.Victim.Run.Victim.Total("jiffy") - quiet.Victim.Run.Victim.Total("jiffy")
	if gain <= 0 {
		t.Errorf("victim jiffy bill gained %.4f s behind the router, want inflation", gain)
	}
}

// TestRouterFloodParallelDeterminism mirrors the campaign contract:
// the rendered artifact is byte-identical at any pool size.
func TestRouterFloodParallelDeterminism(t *testing.T) {
	opts := func(par int) Options {
		o := quick()
		o.Parallelism = par
		return o
	}
	seq, err := RouterFlood(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RouterFlood(opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if s, p := seq.Render(), par.Render(); s != p {
		t.Errorf("parallel render diverged from sequential\n--- sequential ---\n%s--- parallel ---\n%s", s, p)
	}
}

// TestRouterFloodRejectsBadSpecs covers spec validation.
func TestRouterFloodRejectsBadSpecs(t *testing.T) {
	bad := quickRouterFloodSpec(10_000)
	bad.Attackers = 0
	if _, err := RunRouterFlood(bad); err == nil {
		t.Error("zero attacker machines accepted")
	}
	bad = quickRouterFloodSpec(10_000)
	bad.Victim.Billing = "bogus-scheme"
	if _, err := RunRouterFlood(bad); err == nil {
		t.Error("unknown billing scheme accepted")
	}
	bad = quickRouterFloodSpec(10_000)
	bad.RED = &cluster.REDSpec{MinDepth: 32, MaxDepth: 8, MaxPct: 50}
	if _, err := RunRouterFlood(bad); err == nil {
		t.Error("inverted RED thresholds accepted")
	}
}
