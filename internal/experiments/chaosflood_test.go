package experiments

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

func quickChaosSpec(chaos ChaosSpec) ChaosFloodSpec {
	return ChaosFloodSpec{Flood: quickRouterFloodSpec(20_000), Chaos: chaos}
}

// chaosFloodSec mirrors RunChaosFlood's horizon derivation at quick()
// scale, so crash schedules in tests land inside the scenario.
func chaosFloodSec(t *testing.T) float64 {
	t.Helper()
	s, err := (ClusterRunSpec{Victims: []ClusterVictim{{Workload: "O", Billing: "jiffy"}}}).floodSeconds(quick())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestChaosZeroOverlayIsInertAndReplayable pins the compatibility
// contract at the scenario level: an empty ChaosSpec injects nothing,
// crashes nothing, runs one router incarnation, completes the flow,
// balances every ledger, and replays bit-for-bit. (The zero-fault
// kernel/cluster paths themselves are pinned bit-for-bit against the
// pre-chaos goldens by the PR3/PR4 compat tests; the chaos scenario
// is not byte-comparable to RunRouterFlood because its flow sender
// deliberately arms the clock-driven retransmission timeout, so a
// dead router can never hang it.)
func TestChaosZeroOverlayIsInertAndReplayable(t *testing.T) {
	chaos, err := RunChaosFlood(quickChaosSpec(ChaosSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	if chaos.FaultsInjected != 0 || chaos.RouterCrashed || chaos.RouterIncarnations != 1 {
		t.Fatalf("zero overlay was not inert: faults=%d crashed=%v incarnations=%d",
			chaos.FaultsInjected, chaos.RouterCrashed, chaos.RouterIncarnations)
	}
	if chaos.Flow.GaveUp || chaos.Flow.Acked != routerFloodFlowFrames {
		t.Fatalf("healthy flow did not complete: %+v", chaos.Flow)
	}
	if chaos.Flow.SendErrors != 0 || chaos.Flow.RecvErrors != 0 {
		t.Errorf("healthy run surfaced syscall errors: %+v", chaos.Flow)
	}
	if bad := chaos.Unbalanced(); len(bad) > 0 {
		t.Errorf("unbalanced ledgers on a healthy run: %v", bad)
	}
	again, err := RunChaosFlood(quickChaosSpec(ChaosSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	if again.Flow != chaos.Flow || again.Links[len(again.Links)-2] != chaos.Links[len(chaos.Links)-2] ||
		again.Router.Total("jiffy") != chaos.Router.Total("jiffy") {
		t.Errorf("healthy rerun diverged:\nfirst  %+v\nsecond %+v", chaos.Flow, again.Flow)
	}
}

// TestChaosFlowRidesOutTransientFaults pins the guest hardening end
// to end (the ackflow audit satellite): under a few percent of
// transient syscall faults on every machine, the ack-paced flow still
// completes its transfer — the retry wrappers absorb the errors — and
// the injection counter proves the faults actually happened.
func TestChaosFlowRidesOutTransientFaults(t *testing.T) {
	out, err := RunChaosFlood(quickChaosSpec(ChaosSpec{FaultPPM: 50_000})) // 5%
	if err != nil {
		t.Fatal(err)
	}
	if out.FaultsInjected == 0 {
		t.Fatal("5% spec injected nothing across four machines")
	}
	if out.Flow.GaveUp || out.Flow.Acked != routerFloodFlowFrames {
		t.Fatalf("flow did not survive 5%% transient faults: %+v", out.Flow)
	}
	if bad := out.Unbalanced(); len(bad) > 0 {
		t.Errorf("unbalanced ledgers under faults: %v", bad)
	}
}

// TestChaosHardFaultsAbandonWithoutHanging pins the other half of
// the retry contract: at 100% EIO on the send path nothing can get
// through, the sender must abandon the transfer (GaveUp, SendErrors
// counted) and the whole cluster still terminates.
func TestChaosHardFaultsAbandonWithoutHanging(t *testing.T) {
	out, err := RunChaosFlood(quickChaosSpec(ChaosSpec{
		FaultPPM:      1_000_000,
		FaultSyscalls: []string{"sendto"},
		FaultErrno:    "eio",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Flow.GaveUp {
		t.Errorf("flow did not give up under 100%% hard send faults: %+v", out.Flow)
	}
	if out.Flow.SendErrors == 0 {
		t.Error("no send errors recorded under 100% injection")
	}
	if out.Flow.Acked != 0 {
		t.Errorf("flow acked %d frames through a dead send path", out.Flow.Acked)
	}
	if bad := out.Unbalanced(); len(bad) > 0 {
		t.Errorf("unbalanced ledgers: %v", bad)
	}
}

// TestChaosRouterCrashTruncatesBillAndBalances is the artifact's
// headline pin: killing the router mid-flood truncates its cumulative
// bill below the healthy run's, the flow gives up against the dead
// hop, and every link's conservation identity still holds — in-flight
// frames become counted drops, not silent losses.
func TestChaosRouterCrashTruncatesBillAndBalances(t *testing.T) {
	floodSec := chaosFloodSec(t)
	healthy, err := RunChaosFlood(quickChaosSpec(ChaosSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := RunChaosFlood(quickChaosSpec(ChaosSpec{RouterCrashSec: floodSec * 0.45}))
	if err != nil {
		t.Fatal(err)
	}
	if !crashed.RouterCrashed || crashed.RouterIncarnations != 1 {
		t.Fatalf("crash did not fire: crashed=%v incarnations=%d", crashed.RouterCrashed, crashed.RouterIncarnations)
	}
	if h, c := healthy.Router.Total("jiffy"), crashed.Router.Total("jiffy"); c >= h {
		t.Errorf("crashed router's bill %.4f >= healthy %.4f, want truncation", c, h)
	}
	if crashed.Router.Total("jiffy") == 0 {
		t.Error("crashed router billed nothing — the pre-crash incarnation's ledger was lost")
	}
	if !crashed.Flow.GaveUp {
		t.Errorf("flow completed through a dead router: %+v", crashed.Flow)
	}
	if bad := crashed.Unbalanced(); len(bad) > 0 {
		t.Errorf("LEDGER VIOLATION through the crash: %v", bad)
	}
}

// TestChaosRestartRecoversFlowWithMonotoneBill pins the reboot path
// at scenario level: crash+restart yields two incarnations, the flow
// recovers and completes, and the cumulative router bill sits between
// the crashed-forever and healthy runs — monotone in service time.
func TestChaosRestartRecoversFlowWithMonotoneBill(t *testing.T) {
	floodSec := chaosFloodSec(t)
	healthy, err := RunChaosFlood(quickChaosSpec(ChaosSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	down, err := RunChaosFlood(quickChaosSpec(ChaosSpec{RouterCrashSec: floodSec * 0.3}))
	if err != nil {
		t.Fatal(err)
	}
	reboot, err := RunChaosFlood(quickChaosSpec(ChaosSpec{
		RouterCrashSec:   floodSec * 0.3,
		RouterRestartSec: floodSec * 0.15,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if reboot.RouterIncarnations != 2 {
		t.Fatalf("incarnations = %d after crash+restart, want 2", reboot.RouterIncarnations)
	}
	if reboot.Flow.GaveUp || reboot.Flow.Acked != routerFloodFlowFrames {
		t.Errorf("flow did not recover across the reboot: %+v", reboot.Flow)
	}
	d, r, h := down.Router.Total("jiffy"), reboot.Router.Total("jiffy"), healthy.Router.Total("jiffy")
	if !(d < r) {
		t.Errorf("cumulative bill not monotone in service: down-forever %.4f, rebooted %.4f", d, r)
	}
	_ = h // the rebooted run can out-bill healthy: the backlog drained after reboot costs extra forwarding
	if bad := reboot.Unbalanced(); len(bad) > 0 {
		t.Errorf("LEDGER VIOLATION across the reboot: %v", bad)
	}
}

// TestChaosFloodParallelDeterminism mirrors the campaign contract for
// the full four-scenario artifact: the render is byte-identical at
// any worker-pool size, injected faults and all.
func TestChaosFloodParallelDeterminism(t *testing.T) {
	opts := func(par int) Options {
		o := quick()
		o.Parallelism = par
		return o
	}
	seq, err := ChaosFlood(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := ChaosFlood(opts(4))
	if err != nil {
		t.Fatal(err)
	}
	if s, p := seq.Render(), par.Render(); s != p {
		t.Errorf("parallel render diverged from sequential\n--- sequential ---\n%s--- parallel ---\n%s", s, p)
	}
}

// TestChaosFloodRejectsBadSpecs covers the scenario validation.
func TestChaosFloodRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name  string
		chaos ChaosSpec
		mut   func(*ChaosFloodSpec)
		want  string
	}{
		{name: "negative crash time", chaos: ChaosSpec{RouterCrashSec: -1}, want: "non-negative"},
		{name: "restart without crash", chaos: ChaosSpec{RouterRestartSec: 0.5}, want: "without RouterCrashSec"},
		{name: "crash past horizon", chaos: ChaosSpec{RouterCrashSec: 1e6}, want: "past the scenario horizon"},
		{name: "unknown errno", chaos: ChaosSpec{FaultPPM: 10, FaultErrno: "ebadf"}, want: "unknown fault errno"},
		{name: "probability past scale", chaos: ChaosSpec{FaultPPM: 2_000_000}, want: "exceeds"},
		{
			name: "no attackers",
			mut:  func(s *ChaosFloodSpec) { s.Flood.Attackers = 0 },
			want: "at least one attacker",
		},
		{
			name:  "flap on the shared egress with a bottleneck",
			chaos: ChaosSpec{VictimFlap: &cluster.FlapSpec{FirstDownUs: 10}},
			want:  "DownUs 0",
		},
	}
	for _, tc := range cases {
		spec := quickChaosSpec(tc.chaos)
		if tc.mut != nil {
			tc.mut(&spec)
		}
		_, err := RunChaosFlood(spec)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
