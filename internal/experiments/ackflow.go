// ECN-aware ack-paced flows: the well-behaved traffic that shares a
// routed fabric with the attacks. A sender paces a fixed transfer
// under a congestion window; the receiver's echo daemon acks each
// data frame back to the frame's own source address (per-flow
// addressing — the responder acks specific senders, not "the
// uplink"), echoing any CE congestion mark a RED queue stamped on the
// way. The sender halves its window on a mark and grows it additively
// on a clean ack, so an ECN-capable flow backs off under congestion
// instead of bleeding tail-drops.
//
// All three guests here are written as resumable state machines
// (guest.Step) so fleets of them run on the flyweight driver — a few
// words of struct state per guest instead of a parked goroutine
// stack. The Routine constructors wrap the same machines for the
// goroutine driver; either way the request sequence is identical, so
// histories replay bit-for-bit across drivers.
package experiments

import (
	"repro/internal/cluster"
	"repro/internal/guest"
	"repro/internal/sim"
)

// floodGen is the resumable packet generator behind floodBody: send a
// slot's frame (retrying transients within half a period), carry the
// freq%pps remainder into the interval, sleep the jittered slot, and
// repeat until the budget of packets is offered.
type floodGen struct {
	base     sim.Cycles
	rem, pps uint64
	packets  uint64
	frame    guest.Frame
	n, frac  uint64
	retry    guest.RetryStep
	sendOp   guest.RetryOp
	sendDone guest.RetryDone
	wake     guest.Step
}

func (g *floodGen) start(ctx guest.Context, _ guest.Resume) guest.Step {
	g.sendOp = func(ctx guest.Context) {
		//simlint:errno-ok resumable post: the errno arrives in the next activation's Resume
		ctx.NetSend(g.frame)
	}
	g.sendDone = g.afterSend
	g.wake = g.afterSleep
	if g.n >= g.packets {
		return nil
	}
	return g.retry.Begin(ctx, g.sendOp, g.base/2, g.sendDone)
}

// afterSend drops any send error — a transient injected fault retried
// within half a period; a hard fault (or exhausted budget) forfeits
// this slot, and an attacker's lost packet is nobody's problem — then
// sleeps out the slot.
func (g *floodGen) afterSend(ctx guest.Context, _ guest.Resume) guest.Step {
	interval := g.base
	g.frac += g.rem
	if g.frac >= g.pps {
		g.frac -= g.pps
		interval++
	}
	if interval == 0 {
		interval = 1
	}
	ctx.Sleep(ctx.Rand().Jitter(interval, interval/4+1))
	return g.wake
}

func (g *floodGen) afterSleep(ctx guest.Context, _ guest.Resume) guest.Step {
	g.n++
	if g.n >= g.packets {
		return nil
	}
	return g.retry.Begin(ctx, g.sendOp, g.base/2, g.sendDone)
}

// floodBodyStep returns the packet generator as a resumable state
// machine offering `packets` copies of `frame` at a nominal `pps`
// through the billed tx path. The inter-send interval carries the
// freq%pps remainder (like the local flood generator), so the sleep
// schedule itself does not drift; each send's billed kernel time
// still stretches the effective period, so the offered rate runs
// somewhat below nominal — the sending link's Sent counter records
// what actually went out.
func floodBodyStep(freq sim.Hz, pps, packets uint64, frame guest.Frame) guest.Step {
	g := &floodGen{
		base:    sim.Cycles(uint64(freq) / pps),
		rem:     uint64(freq) % pps,
		pps:     pps,
		packets: packets,
		frame:   frame,
	}
	return g.start
}

// floodBody is floodBodyStep for the goroutine driver.
func floodBody(freq sim.Hz, pps, packets uint64, frame guest.Frame) guest.Routine {
	return guest.StepRoutine(floodBodyStep(freq, pps, packets, frame))
}

// AckFlowConfig parameterises one ack-paced transfer.
type AckFlowConfig struct {
	// Peer is the data destination's fabric address.
	Peer cluster.Addr
	// Flow tags the flow's frames; the echo daemon acks only matching
	// frames and silently drains everything else.
	Flow uint32
	// Frames is the transfer length: the sender runs until this many
	// acks arrive (or it gives up).
	Frames uint64
	// Window is the initial and maximum congestion window in frames;
	// zero selects 8.
	Window uint64
	// PaceCycles is the sender's inter-send pacing and its poll tick
	// while the window is closed. Required (the guest has no clock
	// scale of its own).
	PaceCycles sim.Cycles
	// Budget caps total data frames sent (retransmission headroom);
	// zero selects 4x Frames.
	Budget uint64
	// IdleTicks is how many silent poll ticks the sender waits before
	// declaring outstanding frames lost (go-back) — or, with the send
	// budget exhausted, giving up. Zero selects 128. Ignored when
	// TimeoutCycles arms the clock-driven timeout instead.
	IdleTicks int
	// TimeoutCycles, when nonzero, replaces the idle-tick heuristic
	// with a real retransmission timeout on the guest-visible
	// monotonic clock (Context.ClockNow): outstanding frames are
	// written off — or, with the budget spent, the transfer abandoned
	// — once that long passes with no ack progress, independent of
	// how often the sender happens to poll. Zero keeps the idle-tick
	// behaviour bit-for-bit.
	TimeoutCycles sim.Cycles
	// FrameBytes sizes the flow's data frames on the wire; zero sends
	// minimum-size frames (the pre-byte model).
	FrameBytes uint32
}

// AckFlowStats is one transfer's harvest, written by the sender
// routine before it exits.
type AckFlowStats struct {
	// Sent counts data frames transmitted, retransmissions included.
	Sent uint64
	// Acked counts acks received; the transfer completed when Acked
	// reached the configured frame count.
	Acked uint64
	// Marks counts acks carrying the ECE congestion echo.
	Marks uint64
	// Backoffs counts window halvings taken on those echoes.
	Backoffs uint64
	// Lost counts frames written off by the go-back timeout.
	Lost uint64
	// Timeouts counts retransmission-timeout firings (clock-driven
	// with TimeoutCycles set, idle-tick expiries otherwise).
	Timeouts uint64
	// DoneAt is the guest clock when the transfer finished (zero
	// unless TimeoutCycles armed the clock) — the flow's completion
	// instant, comparable across qdisc configurations.
	DoneAt sim.Cycles
	// GaveUp reports the sender abandoning the transfer with its send
	// budget exhausted and no acks arriving — or its sends failing
	// persistently under injected faults.
	GaveUp bool
	// SendErrors counts sends that failed with an injected syscall
	// fault even after the retry budget (zero on healthy machines).
	SendErrors uint64
	// RecvErrors counts polls that died on an injected read fault;
	// the acks stay buffered and a later poll drains them.
	RecvErrors uint64
}

// ackSender is the resumable sending guest. One activation runs from
// resume to the next kernel request; the transfer's whole position —
// window, counters, timeout clocks — lives in this struct, not a
// goroutine stack. Control flow mirrors the original blocking loop
// statement for statement so both drivers replay identically.
type ackSender struct {
	cfg   AckFlowConfig
	stats *AckFlowStats

	maxW, budget uint64
	idleLimit    int
	useClock     bool
	data         guest.Frame

	window, sent, acked, lost uint64
	idle, sendFails           int
	lastProgress              sim.Cycles
	progress                  bool

	retry    guest.RetryStep
	sendOp   guest.RetryOp
	sendDone guest.RetryDone

	initClock, drain, progressClock, sendSlept,
	pollSlept, timeoutClock, resetClock, doneClock guest.Step
}

func (g *ackSender) start(ctx guest.Context, _ guest.Resume) guest.Step {
	g.window = g.maxW
	g.sendOp = func(ctx guest.Context) {
		//simlint:errno-ok resumable post: the errno arrives in the next activation's Resume
		ctx.NetSend(g.data)
	}
	g.sendDone = g.afterSend
	g.initClock = g.afterInitClock
	g.drain = g.afterRecv
	g.progressClock = g.afterProgressClock
	g.sendSlept = g.afterSendSleep
	g.pollSlept = g.afterPollSleep
	g.timeoutClock = g.afterTimeoutClock
	g.resetClock = g.afterResetClock
	g.doneClock = g.afterDoneClock
	if g.useClock {
		ctx.ClockNow()
		return g.initClock
	}
	return g.outer(ctx)
}

func (g *ackSender) afterInitClock(ctx guest.Context, r guest.Resume) guest.Step {
	g.lastProgress = sim.Cycles(r.Ret)
	return g.outer(ctx)
}

// outer is the transfer's top-of-loop: done check, then a fresh drain
// of the ack queue. Not an activation boundary — it runs inline
// inside whichever activation reached it.
func (g *ackSender) outer(ctx guest.Context) guest.Step {
	if g.acked >= g.cfg.Frames {
		return g.finish(ctx)
	}
	g.progress = false
	//simlint:errno-ok resumable post: the errno arrives in the next activation's Resume
	ctx.NetRecv()
	return g.drain
}

func (g *ackSender) afterRecv(ctx guest.Context, r guest.Resume) guest.Step {
	if r.Err != nil {
		// Injected read fault: the acks stay buffered, so surface the
		// error and re-poll after a pace tick instead of mistaking the
		// fault for a drained queue.
		g.stats.RecvErrors++
		return g.afterDrain(ctx)
	}
	if !r.OK {
		return g.afterDrain(ctx)
	}
	if f := r.Frame; f.Flow == g.cfg.Flow {
		g.acked++
		g.progress = true
		// Back off on the data path's congestion echo only; a CE
		// stamped on the ack itself by the return path is not this
		// flow's signal.
		if f.ECE {
			g.stats.Marks++
			if g.window > 1 {
				g.window /= 2
				g.stats.Backoffs++
			}
		} else if g.window < g.maxW {
			g.window++
		}
	}
	//simlint:errno-ok resumable post: the errno arrives in the next activation's Resume
	ctx.NetRecv()
	return g.drain
}

func (g *ackSender) afterDrain(ctx guest.Context) guest.Step {
	if g.progress {
		g.idle = 0
		if g.useClock {
			ctx.ClockNow()
			return g.progressClock
		}
		return g.outer(ctx)
	}
	// Signed: an ack for a frame already written off as lost would
	// otherwise underflow the outstanding count.
	outstanding := int64(g.sent) - int64(g.acked) - int64(g.lost)
	if outstanding < 0 {
		outstanding = 0
	}
	if g.sent < g.budget && uint64(outstanding) < g.window {
		return g.retry.Begin(ctx, g.sendOp, 4*g.cfg.PaceCycles, g.sendDone)
	}
	// Window closed or budget spent: poll for acks. The
	// retransmission decision is clock-driven when TimeoutCycles is
	// armed — real elapsed virtual time since the last ack, whatever
	// the poll cadence — and the old idle-tick count otherwise.
	ctx.Sleep(g.cfg.PaceCycles)
	return g.pollSlept
}

func (g *ackSender) afterProgressClock(ctx guest.Context, r guest.Resume) guest.Step {
	g.lastProgress = sim.Cycles(r.Ret)
	return g.outer(ctx)
}

func (g *ackSender) afterSend(ctx guest.Context, r guest.Resume) guest.Step {
	if r.Err != nil {
		// The frame never left: it is not outstanding, so do not count
		// it sent. Persistent failure (a hard EIO device, or 100%
		// injection) abandons the transfer instead of spinning forever.
		g.stats.SendErrors++
		g.sendFails++
		if g.sendFails >= g.idleLimit {
			g.stats.GaveUp = true
			return g.finish(ctx)
		}
		ctx.Sleep(g.cfg.PaceCycles)
		return g.sendSlept
	}
	g.sendFails = 0
	g.sent++
	ctx.Sleep(g.cfg.PaceCycles)
	return g.sendSlept
}

func (g *ackSender) afterSendSleep(ctx guest.Context, _ guest.Resume) guest.Step {
	return g.outer(ctx)
}

func (g *ackSender) afterPollSleep(ctx guest.Context, _ guest.Resume) guest.Step {
	if g.useClock {
		ctx.ClockNow()
		return g.timeoutClock
	}
	g.idle++
	return g.timeoutDecide(ctx, g.idle >= g.idleLimit)
}

func (g *ackSender) afterTimeoutClock(ctx guest.Context, r guest.Resume) guest.Step {
	return g.timeoutDecide(ctx, sim.Cycles(r.Ret)-g.lastProgress >= g.cfg.TimeoutCycles)
}

func (g *ackSender) timeoutDecide(ctx guest.Context, timedOut bool) guest.Step {
	if !timedOut {
		return g.outer(ctx)
	}
	g.stats.Timeouts++
	if g.sent >= g.budget {
		g.stats.GaveUp = true
		return g.finish(ctx)
	}
	if fresh := int64(g.sent) - int64(g.acked) - int64(g.lost); fresh > 0 {
		g.stats.Lost += uint64(fresh)
	}
	g.lost = g.sent - g.acked
	g.idle = 0
	if g.useClock {
		ctx.ClockNow()
		return g.resetClock
	}
	return g.outer(ctx)
}

func (g *ackSender) afterResetClock(ctx guest.Context, r guest.Resume) guest.Step {
	g.lastProgress = sim.Cycles(r.Ret)
	return g.outer(ctx)
}

func (g *ackSender) finish(ctx guest.Context) guest.Step {
	g.stats.Sent, g.stats.Acked = g.sent, g.acked
	if g.useClock {
		ctx.ClockNow()
		return g.doneClock
	}
	return nil
}

func (g *ackSender) afterDoneClock(ctx guest.Context, r guest.Resume) guest.Step {
	g.stats.DoneAt = sim.Cycles(r.Ret)
	return nil
}

// AckPacedSenderStep returns the flow's sending guest as a resumable
// state machine for the flyweight driver. stats must outlive the run;
// the guest fills it as its last action.
func AckPacedSenderStep(cfg AckFlowConfig, stats *AckFlowStats) guest.Step {
	g := &ackSender{cfg: cfg, stats: stats}
	g.maxW = cfg.Window
	if g.maxW == 0 {
		g.maxW = 8
	}
	g.budget = cfg.Budget
	if g.budget == 0 {
		g.budget = 4 * cfg.Frames
	}
	g.idleLimit = cfg.IdleTicks
	if g.idleLimit == 0 {
		g.idleLimit = 128
	}
	g.useClock = cfg.TimeoutCycles > 0
	g.data = guest.Frame{Dst: cfg.Peer, Flow: cfg.Flow, ECN: true, Bytes: cfg.FrameBytes}
	return g.start
}

// AckPacedSender is AckPacedSenderStep for the goroutine driver.
func AckPacedSender(cfg AckFlowConfig, stats *AckFlowStats) guest.Routine {
	return guest.StepRoutine(AckPacedSenderStep(cfg, stats))
}

// ackEchoGen is the resumable echo daemon: block for traffic, drain
// the receive buffer with briefly-retried reads, and ack each
// matching data frame back to its own source.
type ackEchoGen struct {
	flow uint32
	seen uint64
	ack  guest.Frame

	retry    guest.RetryStep
	recvOp   guest.RetryOp
	recvDone guest.RetryDone
	sendOp   guest.RetryOp
	sendDone guest.RetryDone
	wake     guest.Step
}

func (g *ackEchoGen) start(ctx guest.Context, _ guest.Resume) guest.Step {
	g.recvOp = func(ctx guest.Context) {
		//simlint:errno-ok resumable post: the errno arrives in the next activation's Resume
		ctx.NetRecv()
	}
	g.recvDone = g.afterRecv
	g.sendOp = func(ctx guest.Context) {
		//simlint:errno-ok resumable post: the errno arrives in the next activation's Resume
		ctx.NetSend(g.ack)
	}
	g.sendDone = g.afterSendAck
	g.wake = g.afterWait
	ctx.NetRxWait(g.seen)
	return g.wake
}

func (g *ackEchoGen) afterWait(ctx guest.Context, r guest.Resume) guest.Step {
	g.seen = r.Ret
	// Retry transient injected faults briefly so a buffered data frame
	// is not stranded behind a fault until the next delivery wakes the
	// daemon.
	return g.retry.Begin(ctx, g.recvOp, ackEchoRetryCycles, g.recvDone)
}

func (g *ackEchoGen) afterRecv(ctx guest.Context, r guest.Resume) guest.Step {
	if r.Err != nil || !r.OK {
		ctx.NetRxWait(g.seen)
		return g.wake
	}
	f := r.Frame
	if f.Flow != g.flow {
		return g.retry.Begin(ctx, g.recvOp, ackEchoRetryCycles, g.recvDone)
	}
	g.ack = guest.Frame{Dst: f.Src, Flow: f.Flow, ECN: true, ECE: f.CE}
	return g.retry.Begin(ctx, g.sendOp, ackEchoRetryCycles, g.sendDone)
}

// afterSendAck drops any error — a persistently failing ack send is
// the sender's retransmission timeout's problem — and drains on.
func (g *ackEchoGen) afterSendAck(ctx guest.Context, _ guest.Resume) guest.Step {
	return g.retry.Begin(ctx, g.recvOp, ackEchoRetryCycles, g.recvDone)
}

// AckEchoStep returns the receive-side echo daemon as a resumable
// state machine: for every data frame of the given flow it sends one
// ack to the frame's own Src, raising the ack's ECE bit when the data
// frame arrived CE-marked; frames of other flows (an attacker's junk)
// are drained and ignored. The daemon never exits — run it on a
// cluster machine marked Service.
func AckEchoStep(flow uint32) guest.Step {
	g := &ackEchoGen{flow: flow}
	return g.start
}

// AckEcho is AckEchoStep for the goroutine driver.
func AckEcho(flow uint32) guest.Routine {
	return guest.StepRoutine(AckEchoStep(flow))
}

// ackEchoRetryCycles bounds the echo daemon's backoff on an injected
// fault: long enough to outlast a transient, far shorter than any
// sender's retransmission timeout.
const ackEchoRetryCycles sim.Cycles = 1 << 16
