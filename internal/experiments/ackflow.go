// ECN-aware ack-paced flows: the well-behaved traffic that shares a
// routed fabric with the attacks. A sender paces a fixed transfer
// under a congestion window; the receiver's echo daemon acks each
// data frame back to the frame's own source address (per-flow
// addressing — the responder acks specific senders, not "the
// uplink"), echoing any CE congestion mark a RED queue stamped on the
// way. The sender halves its window on a mark and grows it additively
// on a clean ack, so an ECN-capable flow backs off under congestion
// instead of bleeding tail-drops.
package experiments

import (
	"repro/internal/cluster"
	"repro/internal/guest"
	"repro/internal/sim"
)

// floodBody returns a packet-generator guest offering `packets`
// copies of `frame` at a nominal `pps` through the billed tx path.
// The inter-send interval carries the freq%pps remainder (like the
// local flood generator), so the sleep schedule itself does not
// drift; each send's billed kernel time still stretches the
// effective period, so the offered rate runs somewhat below nominal
// — the sending link's Sent counter records what actually went out.
func floodBody(freq sim.Hz, pps, packets uint64, frame guest.Frame) guest.Routine {
	base := sim.Cycles(uint64(freq) / pps)
	rem := uint64(freq) % pps
	return func(ctx guest.Context) {
		var frac uint64
		for n := uint64(0); n < packets; n++ {
			// A transient injected fault retries within half a period;
			// a hard fault (or exhausted budget) forfeits this slot —
			// an attacker's lost packet is nobody's problem.
			//simlint:errno-ok the flood source forfeits a faulted slot by design
			guest.SendRetry(ctx, frame, base/2)
			interval := base
			frac += rem
			if frac >= pps {
				frac -= pps
				interval++
			}
			if interval == 0 {
				interval = 1
			}
			ctx.Sleep(ctx.Rand().Jitter(interval, interval/4+1))
		}
	}
}

// AckFlowConfig parameterises one ack-paced transfer.
type AckFlowConfig struct {
	// Peer is the data destination's fabric address.
	Peer cluster.Addr
	// Flow tags the flow's frames; the echo daemon acks only matching
	// frames and silently drains everything else.
	Flow uint32
	// Frames is the transfer length: the sender runs until this many
	// acks arrive (or it gives up).
	Frames uint64
	// Window is the initial and maximum congestion window in frames;
	// zero selects 8.
	Window uint64
	// PaceCycles is the sender's inter-send pacing and its poll tick
	// while the window is closed. Required (the guest has no clock
	// scale of its own).
	PaceCycles sim.Cycles
	// Budget caps total data frames sent (retransmission headroom);
	// zero selects 4x Frames.
	Budget uint64
	// IdleTicks is how many silent poll ticks the sender waits before
	// declaring outstanding frames lost (go-back) — or, with the send
	// budget exhausted, giving up. Zero selects 128. Ignored when
	// TimeoutCycles arms the clock-driven timeout instead.
	IdleTicks int
	// TimeoutCycles, when nonzero, replaces the idle-tick heuristic
	// with a real retransmission timeout on the guest-visible
	// monotonic clock (Context.ClockNow): outstanding frames are
	// written off — or, with the budget spent, the transfer abandoned
	// — once that long passes with no ack progress, independent of
	// how often the sender happens to poll. Zero keeps the idle-tick
	// behaviour bit-for-bit.
	TimeoutCycles sim.Cycles
	// FrameBytes sizes the flow's data frames on the wire; zero sends
	// minimum-size frames (the pre-byte model).
	FrameBytes uint32
}

// AckFlowStats is one transfer's harvest, written by the sender
// routine before it exits.
type AckFlowStats struct {
	// Sent counts data frames transmitted, retransmissions included.
	Sent uint64
	// Acked counts acks received; the transfer completed when Acked
	// reached the configured frame count.
	Acked uint64
	// Marks counts acks carrying the ECE congestion echo.
	Marks uint64
	// Backoffs counts window halvings taken on those echoes.
	Backoffs uint64
	// Lost counts frames written off by the go-back timeout.
	Lost uint64
	// Timeouts counts retransmission-timeout firings (clock-driven
	// with TimeoutCycles set, idle-tick expiries otherwise).
	Timeouts uint64
	// DoneAt is the guest clock when the transfer finished (zero
	// unless TimeoutCycles armed the clock) — the flow's completion
	// instant, comparable across qdisc configurations.
	DoneAt sim.Cycles
	// GaveUp reports the sender abandoning the transfer with its send
	// budget exhausted and no acks arriving — or its sends failing
	// persistently under injected faults.
	GaveUp bool
	// SendErrors counts sends that failed with an injected syscall
	// fault even after the retry budget (zero on healthy machines).
	SendErrors uint64
	// RecvErrors counts polls that died on an injected read fault;
	// the acks stay buffered and a later poll drains them.
	RecvErrors uint64
}

// AckPacedSender returns the flow's sending guest. stats must outlive
// the run; the routine fills it as its last action.
func AckPacedSender(cfg AckFlowConfig, stats *AckFlowStats) guest.Routine {
	maxW := cfg.Window
	if maxW == 0 {
		maxW = 8
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = 4 * cfg.Frames
	}
	idleLimit := cfg.IdleTicks
	if idleLimit == 0 {
		idleLimit = 128
	}
	useClock := cfg.TimeoutCycles > 0
	return func(ctx guest.Context) {
		window := maxW
		var sent, acked, lost uint64
		idle := 0
		sendFails := 0
		var lastProgress sim.Cycles
		if useClock {
			lastProgress = ctx.ClockNow()
		}
		for acked < cfg.Frames {
			progress := false
			for {
				f, ok, err := ctx.NetRecv()
				if err != nil {
					// Injected read fault: the acks stay buffered, so
					// surface the error and re-poll after a pace tick
					// instead of mistaking the fault for a drained queue.
					stats.RecvErrors++
					break
				}
				if !ok {
					break
				}
				if f.Flow != cfg.Flow {
					continue
				}
				acked++
				progress = true
				// Back off on the data path's congestion echo only; a
				// CE stamped on the ack itself by the return path is
				// not this flow's signal.
				if f.ECE {
					stats.Marks++
					if window > 1 {
						window /= 2
						stats.Backoffs++
					}
				} else if window < maxW {
					window++
				}
			}
			if progress {
				idle = 0
				if useClock {
					lastProgress = ctx.ClockNow()
				}
				continue
			}
			// Signed: an ack for a frame already written off as lost
			// would otherwise underflow the outstanding count.
			outstanding := int64(sent) - int64(acked) - int64(lost)
			if outstanding < 0 {
				outstanding = 0
			}
			if sent < budget && uint64(outstanding) < window {
				_, err := guest.SendRetry(ctx,
					guest.Frame{Dst: cfg.Peer, Flow: cfg.Flow, ECN: true, Bytes: cfg.FrameBytes},
					4*cfg.PaceCycles)
				if err != nil {
					// The frame never left: it is not outstanding, so do
					// not count it sent. Persistent failure (a hard EIO
					// device, or 100% injection) abandons the transfer
					// instead of spinning forever.
					stats.SendErrors++
					sendFails++
					if sendFails >= idleLimit {
						stats.GaveUp = true
						break
					}
					ctx.Sleep(cfg.PaceCycles)
					continue
				}
				sendFails = 0
				sent++
				ctx.Sleep(cfg.PaceCycles)
				continue
			}
			// Window closed or budget spent: poll for acks. The
			// retransmission decision is clock-driven when
			// TimeoutCycles is armed — real elapsed virtual time since
			// the last ack, whatever the poll cadence — and the old
			// idle-tick count otherwise.
			ctx.Sleep(cfg.PaceCycles)
			timedOut := false
			if useClock {
				timedOut = ctx.ClockNow()-lastProgress >= cfg.TimeoutCycles
			} else {
				idle++
				timedOut = idle >= idleLimit
			}
			if timedOut {
				stats.Timeouts++
				if sent >= budget {
					stats.GaveUp = true
					break
				}
				if fresh := int64(sent) - int64(acked) - int64(lost); fresh > 0 {
					stats.Lost += uint64(fresh)
				}
				lost = sent - acked
				idle = 0
				if useClock {
					lastProgress = ctx.ClockNow()
				}
			}
		}
		stats.Sent, stats.Acked = sent, acked
		if useClock {
			stats.DoneAt = ctx.ClockNow()
		}
	}
}

// AckEcho returns the receive-side echo daemon: for every data frame
// of the given flow it sends one ack to the frame's own Src, raising
// the ack's ECE bit when the data frame arrived CE-marked; frames of
// other flows (an attacker's junk) are drained and ignored. The
// daemon never exits — run it on a cluster machine marked Service.
func AckEcho(flow uint32) guest.Routine {
	return func(ctx guest.Context) {
		seen := uint64(0)
		for {
			seen = ctx.NetRxWait(seen)
			for {
				// Retry transient injected faults briefly so a buffered
				// data frame is not stranded behind a fault until the
				// next delivery wakes the daemon.
				f, ok, err := guest.RecvRetry(ctx, ackEchoRetryCycles)
				if err != nil || !ok {
					break
				}
				if f.Flow != flow {
					continue
				}
				// A persistently failing ack send is dropped: the
				// sender's retransmission timeout owns recovery.
				//simlint:errno-ok a dropped ack is recovered by the sender's retransmission timeout
				guest.SendRetry(ctx,
					guest.Frame{Dst: f.Src, Flow: f.Flow, ECN: true, ECE: f.CE},
					ackEchoRetryCycles)
			}
		}
	}
}

// ackEchoRetryCycles bounds the echo daemon's backoff on an injected
// fault: long enough to outlast a transient, far shorter than any
// sender's retransmission timeout.
const ackEchoRetryCycles sim.Cycles = 1 << 16
