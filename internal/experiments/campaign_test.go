package experiments

import (
	"strings"
	"testing"
)

// TestRunAllMatchesSequentialRun asserts the worker pool returns the
// same results, in declaration order, as calling Run spec by spec.
func TestRunAllMatchesSequentialRun(t *testing.T) {
	o := quick()
	specs := []RunSpec{
		{Opts: o, Workload: "O"},
		{Opts: o, Workload: "P"},
		{Opts: o, Workload: "W"},
	}
	want := make([]*RunOut, len(specs))
	for i, s := range specs {
		out, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	got, err := RunAll(specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if got[i].Spec.Workload != specs[i].Workload {
			t.Errorf("result %d is for %q, want %q (declaration order)", i, got[i].Spec.Workload, specs[i].Workload)
		}
		for _, scheme := range Schemes {
			if g, w := got[i].Victim.Total(scheme), want[i].Victim.Total(scheme); g != w {
				t.Errorf("%s/%s: pooled %v != sequential %v", specs[i].Workload, scheme, g, w)
			}
		}
	}
}

// TestRunAllReportsEarliestError asserts the deterministic error
// contract: with several failing specs, the earliest-declared one is
// reported regardless of completion order.
func TestRunAllReportsEarliestError(t *testing.T) {
	o := quick()
	specs := []RunSpec{
		{Opts: o, Workload: "O"},
		{Opts: o, Workload: "bogus-1"},
		{Opts: o, Workload: "bogus-2"},
	}
	_, err := RunAll(specs, 3)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "run 1") || !strings.Contains(err.Error(), "bogus-1") {
		t.Fatalf("error %q does not name the earliest failing spec", err)
	}
}

// TestMatrixHandles asserts Add's handles index Run's results.
func TestMatrixHandles(t *testing.T) {
	o := quick()
	var mx Matrix
	hW := mx.Add(RunSpec{Opts: o, Workload: "W"})
	hO := mx.Add(RunSpec{Opts: o, Workload: "O"})
	if mx.Len() != 2 {
		t.Fatalf("Len = %d", mx.Len())
	}
	outs, err := mx.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if outs[hW].Spec.Workload != "W" || outs[hO].Spec.Workload != "O" {
		t.Fatalf("handles misindex results: %q, %q", outs[hW].Spec.Workload, outs[hO].Spec.Workload)
	}
}
