// The shared-warmup campaign path: when every variant of a sweep
// shares a common prefix (boot, spawn, a warmup burn-in), building
// and re-running that prefix once per variant is pure waste. A
// ForkedCampaign runs the prefix once, checkpoints the machine at a
// virtual-time barrier, and forks the image into every variant —
// each worker restoring into a recycled shell from its own
// kernel.Pool. The forked path is byte-identical to building and
// warming each variant's machine from scratch: a machine history is a
// pure function of (config, barrier sequence, post-fork inputs), and
// all three match.
package experiments

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// ForkedCampaign amortises one warmup prefix across a variant
// fan-out. build constructs the warmup machine — every guest must be
// a forkable flyweight (kernel.SpawnConfig.Fork), or the checkpoint
// is refused with kernel.ErrNotSnapshottable. The machine runs to the
// warmup barrier (in cycles; zero checkpoints the freshly built
// machine), is snapshotted, and each variant receives its own
// restored copy to perturb, run, and harvest; results return in
// declaration order. The machine a variant receives is owned by the
// campaign: it is recycled into the worker's pool after the variant
// returns, so variants must not retain it.
func ForkedCampaign[Out any](build func() (*kernel.Machine, error), warmup sim.Cycles,
	parallelism int, variants []func(*kernel.Machine) (Out, error)) ([]Out, error) {
	m, err := build()
	if err != nil {
		return nil, fmt.Errorf("forked campaign: warmup build: %w", err)
	}
	if warmup > 0 {
		done, err := m.RunUntil(warmup)
		if err != nil {
			m.Shutdown()
			return nil, fmt.Errorf("forked campaign: warmup: %w", err)
		}
		if done {
			m.Shutdown()
			return nil, fmt.Errorf("forked campaign: warmup finished before the %d-cycle barrier; nothing left to fork", warmup)
		}
	}
	img, err := m.Snapshot()
	m.Shutdown()
	if err != nil {
		return nil, fmt.Errorf("forked campaign: checkpoint: %w", err)
	}
	outs := make([]Out, len(variants))
	errs := make([]error, len(variants))
	workers := resolveParallelism(parallelism, len(variants))
	// One machine pool per worker: Pool is not safe for concurrent
	// use, and per-worker pools need no locking — each index w is
	// touched by exactly one worker goroutine.
	pools := make([]*kernel.Pool, workers)
	for w := range pools {
		pools[w] = new(kernel.Pool)
	}
	RunIndexedWorkers(len(variants), workers, func(w, i int) {
		vm, err := pools[w].Get(img)
		if err != nil {
			errs[i] = fmt.Errorf("restore: %w", err)
			return
		}
		outs[i], errs[i] = variants[i](vm)
		pools[w].Put(vm)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("forked run %d: %w", i, err)
		}
	}
	return outs, nil
}
