package experiments

import (
	"os"
	"testing"
)

// TestPR4RouterFloodReplaysBitForBit pins the qdisc layer's
// compatibility bar one PR further than the PR 3 goldens: the
// routerflood artifact — FIFO egress, instantaneous RED, idle-tick
// ack timeouts — renders byte-for-byte what the pre-qdisc tree
// rendered. The golden under testdata/ was generated on the PR 4
// tree at quick-test options before DRR, byte-accurate serialisation,
// EWMA RED, and the guest clock landed.
func TestPR4RouterFloodReplaysBitForBit(t *testing.T) {
	want, err := os.ReadFile("testdata/pr4_routerflood.golden")
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RouterFlood(quick())
	if err != nil {
		t.Fatal(err)
	}
	if got := fig.Render(); got != string(want) {
		t.Errorf("routerflood diverged from the PR 4 golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGeneratePR4Goldens regenerates the PR 4 routerflood golden
// render. Regenerate only when the byte-compat bar itself is
// intentionally moved:
//
//	GOLDEN_GEN=1 go test ./internal/experiments -run TestGeneratePR4Goldens
func TestGeneratePR4Goldens(t *testing.T) {
	if os.Getenv("GOLDEN_GEN") == "" {
		t.Skip("set GOLDEN_GEN=1 to regenerate")
	}
	fig, err := RouterFlood(quick())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/pr4_routerflood.golden", []byte(fig.Render()), 0o644); err != nil {
		t.Fatal(err)
	}
}
