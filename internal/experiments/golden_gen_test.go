package experiments

import (
	"os"
	"testing"
)

// TestGeneratePR3Goldens regenerates the PR 3 cluster-family golden
// renders. The goldens pin pre-refactor behaviour, so regenerate them
// only when the byte-compat bar itself is intentionally moved:
//
//	GOLDEN_GEN=1 go test ./internal/experiments -run TestGeneratePR3Goldens
func TestGeneratePR3Goldens(t *testing.T) {
	if os.Getenv("GOLDEN_GEN") == "" {
		t.Skip("set GOLDEN_GEN=1 to regenerate")
	}
	o := quick()
	for id, run := range map[string]func(Options) (*Figure, error){
		"cluster":    ClusterFlood,
		"multiflood": MultiAttackerFlood,
		"swapflood":  CrossMachineExceptionFlood,
	} {
		fig, err := run(o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := os.WriteFile("testdata/pr3_"+id+".golden", []byte(fig.Render()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
