package experiments

import (
	"os"
	"testing"
)

// TestGeneratePR3Goldens regenerates the PR 3 cluster-family golden
// renders, in the pinned pr3Artifacts order. The goldens pin
// pre-refactor behaviour, so regenerate them only when the byte-compat
// bar itself is intentionally moved:
//
//	GOLDEN_GEN=1 go test ./internal/experiments -run TestGeneratePR3Goldens
func TestGeneratePR3Goldens(t *testing.T) {
	if os.Getenv("GOLDEN_GEN") == "" {
		t.Skip("set GOLDEN_GEN=1 to regenerate")
	}
	o := quick()
	for _, a := range pr3Artifacts {
		fig, err := a.run(o)
		if err != nil {
			t.Fatalf("%s: %v", a.id, err)
		}
		if err := os.WriteFile("testdata/pr3_"+a.id+".golden", []byte(fig.Render()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
