package experiments

import (
	"testing"

	"repro/internal/cluster"
)

func quickFairFloodSpec(qdisc string, pps uint64) FairFloodSpec {
	spec := FairFloodSpec{
		Opts:        quick(),
		Qdisc:       qdisc,
		AttackerPPS: pps,
		Victim:      ClusterVictim{Workload: "O", Billing: "jiffy"},
		FlowFrames:  fairFloodFlowFrames,
		EgressPPS:   fairFloodEgressPPS,
	}
	if qdisc == cluster.QdiscDRR {
		spec.RED = fairFloodRED()
	}
	return spec
}

// TestDRRBoundsFlowUnderFlood pins the qdisc tentpole's headline: on
// the same congested egress, FIFO lets MTU junk starve the ECN flow
// (clock-driven timeouts fire, frames are written off, completion
// blows up) while DRR bounds the flow's completion time and delivers
// every one of its frames — the junk, not the flow, absorbs the
// drops.
func TestDRRBoundsFlowUnderFlood(t *testing.T) {
	quiet, err := RunFairFlood(quickFairFloodSpec(cluster.QdiscFIFO, 0))
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := RunFairFlood(quickFairFloodSpec(cluster.QdiscFIFO, fairFloodAttackerPPS))
	if err != nil {
		t.Fatal(err)
	}
	drr, err := RunFairFlood(quickFairFloodSpec(cluster.QdiscDRR, fairFloodAttackerPPS))
	if err != nil {
		t.Fatal(err)
	}

	// Quiet baseline: the flow runs clean.
	if quiet.Flow.Acked < fairFloodFlowFrames || quiet.Flow.Timeouts != 0 || quiet.Flow.Lost != 0 {
		t.Fatalf("quiet flow not clean: %+v", quiet.Flow)
	}
	// FIFO under flood: the flow bleeds drops and its completion
	// explodes against the quiet baseline.
	if fifo.Flow.Lost == 0 || fifo.Flow.Timeouts == 0 {
		t.Errorf("fifo flood starved nothing: %+v", fifo.Flow)
	}
	if fifo.FlowDoneSec < 2*quiet.FlowDoneSec {
		t.Errorf("fifo flood completion %.3fs vs quiet %.3fs, want ≥2x blow-up", fifo.FlowDoneSec, quiet.FlowDoneSec)
	}
	// DRR on the same wire: every flow frame delivered, no write-offs,
	// completion bounded well under the FIFO blow-up.
	if drr.Flow.Acked < fairFloodFlowFrames || drr.Flow.Lost != 0 || drr.FlowDropped != 0 {
		t.Errorf("drr flow not protected: %+v (flow drops %d)", drr.Flow, drr.FlowDropped)
	}
	if drr.FlowDoneSec*3 >= fifo.FlowDoneSec*2 {
		t.Errorf("drr completion %.3fs not meaningfully bounded vs fifo %.3fs", drr.FlowDoneSec, fifo.FlowDoneSec)
	}
	// The junk pays instead: heavy drops on the attacker link, ECN
	// marks (not losses) steering the flow.
	if drr.JunkDropped == 0 || drr.EgressMarked == 0 {
		t.Errorf("drr junk/ECN accounting flat: junk dropped %d, marked %d", drr.JunkDropped, drr.EgressMarked)
	}
}

// TestFairFloodParallelDeterminism mirrors the campaign contract: the
// rendered artifact is byte-identical at any pool size.
func TestFairFloodParallelDeterminism(t *testing.T) {
	opts := func(par int) Options {
		o := quick()
		o.Parallelism = par
		return o
	}
	seq, err := FairFlood(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := FairFlood(opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if s, p := seq.Render(), par.Render(); s != p {
		t.Errorf("parallel render diverged from sequential\n--- sequential ---\n%s--- parallel ---\n%s", s, p)
	}
}

// TestFairFloodRejectsBadSpecs covers spec validation end to end
// (including the cluster layer's qdisc checks).
func TestFairFloodRejectsBadSpecs(t *testing.T) {
	bad := quickFairFloodSpec(cluster.QdiscDRR, 1000)
	bad.FlowFrames = 0
	if _, err := RunFairFlood(bad); err == nil {
		t.Error("zero FlowFrames accepted")
	}
	bad = quickFairFloodSpec("sfq", 1000)
	if _, err := RunFairFlood(bad); err == nil {
		t.Error("unknown qdisc accepted")
	}
	bad = quickFairFloodSpec(cluster.QdiscFIFO, 1000)
	bad.QuantumBytes = 512
	if _, err := RunFairFlood(bad); err == nil {
		t.Error("quantum on a FIFO wire accepted")
	}
	bad = quickFairFloodSpec(cluster.QdiscDRR, 1000)
	bad.EgressPPS = cluster.UnlimitedPPS
	if _, err := RunFairFlood(bad); err == nil {
		t.Error("DRR on an infinite-rate wire accepted")
	}
	bad = quickFairFloodSpec(cluster.QdiscDRR, 1000)
	bad.RED = &cluster.REDSpec{MinDepth: 8, MaxDepth: 32, MaxPct: 50, Weight: 40}
	if _, err := RunFairFlood(bad); err == nil {
		t.Error("absurd RED EWMA weight accepted")
	}
}
