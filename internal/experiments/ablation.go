package experiments

import (
	"fmt"

	"repro/internal/attacks"
)

// AblationTickRate measures how the timer frequency changes the
// scheduling attack's yield: finer ticks shrink — but do not
// eliminate — the per-jiffy sampling error the attack converts into
// stolen charge. This quantifies the paper's remark that tick
// granularity, not any particular HZ, is the root defect.
func AblationTickRate(o Options) (*Figure, error) {
	o = o.norm()
	fig := &Figure{
		ID:     "Ablation A1",
		Title:  "Scheduling-attack inflation vs timer frequency (victim: W, attacker nice -20)",
		Header: []string{"HZ", "tick ms", "billed s", "truth s", "inflation"},
	}
	forks := uint64(float64(attacks.DefaultSchedulingForks) * o.Scale)
	if forks < 512 {
		forks = 512
	}
	rates := []uint64{100, 250, 1000}
	var mx Matrix
	for _, hz := range rates {
		oo := o
		oo.HZ = hz
		mx.Add(RunSpec{Opts: oo, Workload: "W", Attack: attacks.NewSchedulingAttack(-20, forks)})
	}
	outs, err := mx.Run(o.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("ablation tick-rate: %w", err)
	}
	for i, hz := range rates {
		billed := outs[i].Victim.Total("jiffy")
		truth := outs[i].Victim.Total("tsc")
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprintf("%d", hz),
			fmt.Sprintf("%.0f", 1000.0/float64(hz)),
			fmt.Sprintf("%.2f", billed),
			fmt.Sprintf("%.2f", truth),
			fmt.Sprintf("%+.1f%%", pctOver(billed, truth)),
		})
	}
	fig.Notes = append(fig.Notes,
		"raising HZ does not close the channel: preemption opportunities scale with the tick rate, so a phase-locked attacker adapts and steals at least as much",
		"only exact (TSC) attribution eliminates the inflation")
	return fig, nil
}

// AblationScheduler compares the O(1)-style and CFS-like policies
// under the scheduling attack, for the paper's remark that CFS
// changes the time composition but remains tick-sampled.
func AblationScheduler(o Options) (*Figure, error) {
	o = o.norm()
	fig := &Figure{
		ID:     "Ablation A2",
		Title:  "Scheduling-attack inflation vs scheduler policy (victim: W, attacker nice -20)",
		Header: []string{"policy", "billed s", "truth s", "inflation"},
	}
	forks := uint64(float64(attacks.DefaultSchedulingForks) * o.Scale)
	if forks < 512 {
		forks = 512
	}
	policies := []string{"o1", "cfs"}
	var mx Matrix
	for _, policy := range policies {
		oo := o
		oo.SchedulerPolicy = policy
		mx.Add(RunSpec{Opts: oo, Workload: "W", Attack: attacks.NewSchedulingAttack(-20, forks)})
	}
	outs, err := mx.Run(o.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("ablation scheduler: %w", err)
	}
	for i, policy := range policies {
		billed := outs[i].Victim.Total("jiffy")
		truth := outs[i].Victim.Total("tsc")
		fig.Rows = append(fig.Rows, []string{
			policy,
			fmt.Sprintf("%.2f", billed),
			fmt.Sprintf("%.2f", truth),
			fmt.Sprintf("%+.1f%%", pctOver(billed, truth)),
		})
	}
	fig.Notes = append(fig.Notes,
		"both policies are vulnerable: the flaw is tick sampling, not the pick-next rule")
	return fig, nil
}

// AblationIRQAccounting isolates the interrupt-attribution defect:
// under a packet flood, the naive TSC scheme still bills handler
// time to the victim while the process-aware scheme diverts it.
func AblationIRQAccounting(o Options) (*Figure, error) {
	o = o.norm()
	fig := &Figure{
		ID:     "Ablation A3",
		Title:  "Interrupt-handler attribution under a 40k pps flood (victim: O)",
		Header: []string{"scheme", "victim system s", "system-account s"},
	}
	var mx Matrix
	flooded := mx.Add(RunSpec{Opts: o, Workload: "O", Attack: attacks.NewInterruptFloodAttack(0)})
	outs, err := mx.Run(o.Parallelism)
	if err != nil {
		return nil, err
	}
	out := outs[flooded]
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		fig.Rows = append(fig.Rows, []string{
			scheme,
			fmt.Sprintf("%.3f", out.Victim.Sys[scheme]),
			map[string]string{"process-aware": fmt.Sprintf("%.3f", out.SystemAccountSec)}[scheme],
		})
	}
	fig.Notes = append(fig.Notes,
		"jiffy and tsc bill the victim for the flood's handler time; process-aware bills the system account")
	return fig, nil
}

// AblationDetector sweeps the auditor's divergence threshold against
// the scheduling attack at several strengths, mapping the detection
// frontier: how much theft slips under each threshold.
func AblationDetector(o Options) (*Figure, error) {
	o = o.norm()
	fig := &Figure{
		ID:     "Ablation A4",
		Title:  "Divergence-detector frontier (victim: W, scheduling attack)",
		Header: []string{"attacker nice", "inflation", "detected @1%", "@3%", "@10%"},
	}
	forks := uint64(float64(attacks.DefaultSchedulingForks) * o.Scale)
	if forks < 512 {
		forks = 512
	}
	strengths := []int{0, -5, -20}
	var mx Matrix
	for _, nice := range strengths {
		mx.Add(RunSpec{Opts: o, Workload: "W", Attack: attacks.NewSchedulingAttack(nice, forks)})
	}
	outs, err := mx.Run(o.Parallelism)
	if err != nil {
		return nil, err
	}
	for i, nice := range strengths {
		out := outs[i]
		billed := out.Victim.Total("jiffy")
		truth := out.Victim.Total("process-aware")
		infl := pctOver(billed, truth)
		row := []string{fmt.Sprintf("%d", nice), fmt.Sprintf("%+.1f%%", infl)}
		for _, thr := range []float64{1, 3, 10} {
			detected := infl > thr && billed-truth > 0.25
			row = append(row, fmt.Sprintf("%v", detected))
		}
		fig.Rows = append(fig.Rows, row)
	}
	fig.Notes = append(fig.Notes,
		"detection requires both relative divergence above threshold and absolute overcharge above the noise floor (0.25 s)")
	return fig, nil
}
