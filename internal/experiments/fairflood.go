// Fair-queueing flood: the qdisc layer's headline artifact. One
// attacker machine floods MTU-size junk through the same congested
// egress wire a well-behaved 300-frame ECN flow needs, and the only
// thing that changes between runs is the wire's queueing discipline.
// Under FIFO the junk owns the queue: the flow's frames tail-drop
// behind it, the clock-driven retransmission timeout fires over and
// over, and the transfer's completion time blows up (or the sender
// abandons it). Under DRR the same wire serves flows round-robin by
// byte quantum and sheds buffer from the fattest flow, so the flow
// completes with bounded latency while the junk takes the drops —
// fair queueing caps the distortion an attacker can impose on traffic
// it never addressed.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/textplot"
)

// FairFloodSpec describes one attacker-vs-flow shared-egress scenario
// executed in deterministic lockstep: machine 0 the attacker, 1 the
// flow sender, 2 the victim host (billed workload plus the flow's
// echo daemon), with both uplinks serialising through one Bottleneck
// egress pipe under the selected discipline.
type FairFloodSpec struct {
	Opts Options
	// Qdisc selects the shared egress discipline: cluster.QdiscFIFO
	// (default) or cluster.QdiscDRR.
	Qdisc string
	// QuantumBytes is DRR's per-flow byte quantum; zero selects
	// cluster.DefaultQuantumBytes. Only meaningful with QdiscDRR.
	QuantumBytes uint64
	// AttackerPPS is the junk rate; zero keeps the attacker silent.
	AttackerPPS uint64
	// AttackerBytes sizes the junk frames; zero selects 1500 (MTU
	// frames, ~18 serialisation slots each).
	AttackerBytes uint32
	// FloodSeconds is the attacker's transmit duration; zero derives
	// 1.5x the victim workload's baseline.
	FloodSeconds float64
	// Victim is the billed job on the victim host.
	Victim ClusterVictim
	// FlowFrames sizes the well-behaved ack-paced ECN transfer
	// (required, ≥ 1 — the flow is the scenario's point).
	FlowFrames uint64
	// FlowBytes sizes the flow's data frames; zero selects 256.
	FlowBytes uint32
	// FlowWindow is the flow's initial/max congestion window; zero
	// selects 8.
	FlowWindow uint64
	// FlowTimeoutUs is the sender's clock-driven retransmission
	// timeout in virtual microseconds; zero selects 20000 (20 ms).
	FlowTimeoutUs uint64
	// EgressPPS is the shared egress wire's capacity in minimum-frame
	// slots per second; zero selects 30000.
	EgressPPS uint64
	// EgressQueueDepth bounds the egress queue in slots; zero selects
	// cluster.DefaultQueueDepth.
	EgressQueueDepth uint64
	// RED, when non-nil, arms RED/ECN on the egress (set Weight for
	// the EWMA estimate).
	RED *cluster.REDSpec
	// LinkLatencyUs is every link's one-way latency; zero selects
	// cluster.DefaultLatencyUs.
	LinkLatencyUs uint64
}

// FairFloodOut is one shared-egress scenario's harvest.
type FairFloodOut struct {
	Spec   FairFloodSpec
	Victim ClusterVictimOut
	// Flow is the ack-paced transfer's harvest; FlowDoneSec is its
	// completion instant on the guest clock in virtual seconds.
	Flow        AckFlowStats
	FlowDoneSec float64
	// JunkOffered/JunkDelivered/JunkDropped are the attacker uplink's
	// counters; FlowOffered/FlowDelivered/FlowDropped the sender
	// uplink's. Drops on either include backlog shed by DRR's
	// buffer-steal policy.
	JunkOffered, JunkDelivered, JunkDropped uint64
	FlowOffered, FlowDelivered, FlowDropped uint64
	// EgressMarked/EgressEarlyDropped are the shared pipe's RED marks
	// (on the flow's ECN frames) and early drops (of non-ECN junk),
	// summed over both uplinks.
	EgressMarked, EgressEarlyDropped uint64
	// ElapsedSec is the slowest machine's virtual wall time.
	ElapsedSec float64
}

// fairFloodFlowID tags the well-behaved transfer; junk rides flow 0.
const fairFloodFlowID = 9

// RunFairFlood executes one scenario.
func RunFairFlood(spec FairFloodSpec) (*FairFloodOut, error) {
	o := spec.Opts.norm()
	if spec.FlowFrames == 0 {
		return nil, fmt.Errorf("fairflood: FlowFrames must be ≥ 1 (the flow is what fairness is measured on)")
	}
	floodSec := spec.FloodSeconds
	if floodSec == 0 {
		s, err := (ClusterRunSpec{Victims: []ClusterVictim{spec.Victim}}).floodSeconds(o)
		if err != nil {
			return nil, err
		}
		floodSec = s
	}
	tick := sim.Cycles(uint64(o.Freq) / o.HZ)
	accts, err := victimAccountants(spec.Victim.Billing, tick)
	if err != nil {
		return nil, err
	}
	perUs := sim.Cycles(uint64(o.Freq) / 1_000_000)
	junkBytes := spec.AttackerBytes
	if junkBytes == 0 {
		junkBytes = 1500
	}
	flowBytes := spec.FlowBytes
	if flowBytes == 0 {
		flowBytes = 256
	}
	timeoutUs := spec.FlowTimeoutUs
	if timeoutUs == 0 {
		timeoutUs = 20_000
	}
	egressPPS := spec.EgressPPS
	if egressPPS == 0 {
		egressPPS = 30_000
	}

	const attackerIdx, senderIdx, victimIdx = 0, 1, 2

	attackerCfg := o.machineConfig()
	attackerCfg.Seed = clusterSeed(o.Seed, attackerIdx)
	senderCfg := o.machineConfig()
	senderCfg.Seed = clusterSeed(o.Seed, senderIdx)
	victimCfg := o.machineConfig()
	victimCfg.Seed = clusterSeed(o.Seed, victimIdx)
	victimCfg.Accountants = accts

	flowStats := &AckFlowStats{}
	var launch *launched
	machines := []cluster.MachineSpec{
		{
			Name:   "attacker",
			Config: attackerCfg,
			Boot: func(c *cluster.Cluster, m *kernel.Machine) error {
				if spec.AttackerPPS == 0 {
					return nil // silent baseline
				}
				packets := uint64(floodSec * float64(spec.AttackerPPS))
				_, err := m.Spawn(guestSpawn(o, "pktgen", "junk-ip packet generator v4 (mtu frames)",
					floodBodyStep(o.Freq, spec.AttackerPPS, packets,
						guest.Frame{Dst: c.AddrOf(victimIdx), Bytes: junkBytes})))
				return err
			},
		},
		{
			Name:   "sender",
			Config: senderCfg,
			Boot: func(c *cluster.Cluster, m *kernel.Machine) error {
				_, err := m.Spawn(guestSpawn(o, "flowsend", "ack-paced ecn sender v2 (clock rto)",
					AckPacedSenderStep(AckFlowConfig{
						Peer:          c.AddrOf(victimIdx),
						Flow:          fairFloodFlowID,
						Frames:        spec.FlowFrames,
						Window:        spec.FlowWindow,
						PaceCycles:    500 * perUs, // ≤2k pps offered
						TimeoutCycles: sim.Cycles(timeoutUs) * perUs,
						FrameBytes:    flowBytes,
					}, flowStats)))
				return err
			},
		},
		{
			Name:    "victim",
			Config:  victimCfg,
			Service: true, // the echo daemon never exits
			Boot: func(_ *cluster.Cluster, m *kernel.Machine) error {
				// The echo daemon runs at high priority, like the
				// softirq half of a real network stack: ack latency
				// then reflects the wire under test, not the victim
				// workload's timeslice.
				echod := guestSpawn(o, "echod", "per-flow ack echo daemon v1",
					AckEchoStep(fairFloodFlowID))
				echod.Nice = -15
				if _, err := m.Spawn(echod); err != nil {
					return err
				}
				l, err := launchSpec(m, RunSpec{
					Opts:       o,
					Workload:   spec.Victim.Workload,
					VictimNice: spec.Victim.Nice,
				})
				if err != nil {
					return err
				}
				launch = l
				return nil
			},
		},
	}

	// Both uplinks serialise through one shared egress pipe — the
	// discipline under test.
	egress := cluster.LinkSpec{
		To:               victimIdx,
		LatencyUs:        spec.LinkLatencyUs,
		PacketsPerSecond: egressPPS,
		QueueDepth:       spec.EgressQueueDepth,
		RED:              spec.RED,
		Qdisc:            spec.Qdisc,
		QuantumBytes:     spec.QuantumBytes,
		Bottleneck:       "egress",
	}
	junkLink := egress
	junkLink.From = attackerIdx
	flowLink := egress
	flowLink.From = senderIdx

	cl, err := cluster.New(cluster.Config{
		Machines: machines,
		Links:    []cluster.LinkSpec{junkLink, flowLink},
	})
	if err != nil {
		return nil, err
	}
	if err := cl.Run(); err != nil {
		return nil, fmt.Errorf("fairflood %s: %w", fairFloodKey(spec), err)
	}
	if launch.prog != nil && !launch.prog.Done {
		return nil, fmt.Errorf("fairflood %s: victim workload retired before completion (stalled behind the service daemon?)", fairFloodKey(spec))
	}

	vm := cl.Machine(victimIdx)
	billing := spec.Victim.Billing
	if billing == "" {
		billing = "jiffy"
	}
	junk, flow := cl.Link(0), cl.Link(1)
	out := &FairFloodOut{
		Spec: spec,
		Victim: ClusterVictimOut{
			Billing:         billing,
			Run:             launch.harvest(vm),
			PacketsReceived: vm.NIC().Received(),
		},
		Flow:               *flowStats,
		FlowDoneSec:        cl.Machine(senderIdx).Clock().Seconds(flowStats.DoneAt),
		JunkOffered:        junk.Sent(),
		JunkDelivered:      junk.Delivered(),
		JunkDropped:        junk.Dropped(),
		FlowOffered:        flow.Sent(),
		FlowDelivered:      flow.Delivered(),
		FlowDropped:        flow.Dropped(),
		EgressMarked:       junk.Marked() + flow.Marked(),
		EgressEarlyDropped: junk.EarlyDropped() + flow.EarlyDropped(),
		ElapsedSec:         clusterElapsedSec(cl),
	}
	return out, nil
}

func fairFloodKey(spec FairFloodSpec) string {
	q := spec.Qdisc
	if q == "" {
		q = cluster.QdiscFIFO
	}
	return fmt.Sprintf("%s/%dpps", q, spec.AttackerPPS)
}

// RunAllFairFloods executes every scenario on its own lockstep
// machine set across the campaign worker pool — the RunAll contract.
//
// Deprecated: RunAllFairFloods is Campaign("fairflood", ...) over RunFairFlood;
// new callers should use Campaign directly. Kept as a thin wrapper
// for the pre-generic API.
func RunAllFairFloods(specs []FairFloodSpec, parallelism int) ([]*FairFloodOut, error) {
	return Campaign("fairflood", specs, parallelism, RunFairFlood, fairFloodKey)
}

// Artifact parameters: MTU junk at 4000 pps (~2.4x the 30k-slot
// egress) against a 300-frame ECN flow, EWMA RED between depths 8
// and 32 at up to 50% feedback with weight 2^-6.
const (
	fairFloodAttackerPPS = 4000
	fairFloodEgressPPS   = 30_000
	fairFloodFlowFrames  = 300
)

func fairFloodRED() *cluster.REDSpec {
	return &cluster.REDSpec{MinDepth: 8, MaxDepth: 32, MaxPct: 50, Weight: 6}
}

// FairFlood regenerates the qdisc-fairness artifact: the same
// attacker-vs-flow shared-egress scenario under FIFO (quiet and
// flooded) and under DRR (flooded). FIFO lets the flood starve the
// flow — its completion time explodes against the quiet baseline —
// while DRR's per-flow round robin bounds the flow's latency on the
// very same wire, and the victim host's bill for the junk it never
// asked for shrinks with the junk the fair queue refuses to carry.
func FairFlood(o Options) (*Figure, error) {
	o = o.norm()
	// FIFO runs bare tail-drop (the commodity wire); the DRR run is
	// the managed configuration — per-flow fairness plus EWMA RED/ECN.
	specs := []FairFloodSpec{
		{Qdisc: cluster.QdiscFIFO, AttackerPPS: 0},
		{Qdisc: cluster.QdiscFIFO, AttackerPPS: fairFloodAttackerPPS},
		{Qdisc: cluster.QdiscDRR, AttackerPPS: fairFloodAttackerPPS, RED: fairFloodRED()},
	}
	labels := []string{"fifo quiet", "fifo flood", "drr flood"}
	for i := range specs {
		specs[i].Opts = o
		specs[i].Victim = ClusterVictim{Workload: "O", Billing: "jiffy"}
		specs[i].FlowFrames = fairFloodFlowFrames
		specs[i].EgressPPS = fairFloodEgressPPS
	}
	outs, err := RunAllFairFloods(specs, o.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("fair flood: %w", err)
	}

	fig := &Figure{
		ID:    "Fair Flood",
		Title: "Per-Flow Fairness on a Congested Egress (FIFO vs DRR, byte-accurate wire, EWMA RED)",
		Unit:  "virtual seconds (flow completion) / CPU seconds (victim bill)",
	}
	for i, out := range outs {
		status := "done"
		if out.Flow.GaveUp {
			status = "gave up"
		}
		fig.Bars = append(fig.Bars,
			textplot.Bar{Group: "flow-done", Label: labels[i], Segments: []textplot.Segment{
				{Name: status, Value: out.FlowDoneSec},
			}},
			textplot.Bar{Group: "victim-bill", Label: labels[i], Segments: []textplot.Segment{
				{Name: "user", Value: out.Victim.Run.Victim.User["jiffy"]},
				{Name: "system", Value: out.Victim.Run.Victim.Sys["jiffy"]},
			}},
		)
	}
	fifo, drr := outs[1], outs[2]
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("fifo flood: flow sent %d for %d acks (%d timeouts, %d written off, gave up: %v); junk %d offered / %d delivered / %d dropped",
			fifo.Flow.Sent, fifo.Flow.Acked, fifo.Flow.Timeouts, fifo.Flow.Lost, fifo.Flow.GaveUp,
			fifo.JunkOffered, fifo.JunkDelivered, fifo.JunkDropped),
		fmt.Sprintf("drr flood: flow sent %d for %d acks (%d timeouts, %d written off); junk %d offered / %d delivered / %d dropped; egress RED marked %d, early-dropped %d",
			drr.Flow.Sent, drr.Flow.Acked, drr.Flow.Timeouts, drr.Flow.Lost,
			drr.JunkOffered, drr.JunkDelivered, drr.JunkDropped, drr.EgressMarked, drr.EgressEarlyDropped),
		"expectation: FIFO lets MTU junk starve the 300-frame ECN flow (completion blows up); DRR bounds the flow's completion on the same wire while the junk absorbs the drops",
	)
	return fig, nil
}
