// The fork lab: a fully checkpointable micro-scenario for the
// shared-warmup campaign path. Every guest is a forkable flyweight
// state machine, so a fork-lab machine can be paused at any
// virtual-time barrier, snapshotted, and forked into variants —
// unlike the shell-launched workload scenarios, whose goroutine
// guests pin them to fresh-build campaigns. The scenario is dense in
// kernel mechanisms on purpose: a memory-churning compute loop (timer
// ticks, preemption, page faults, swap I/O), a paced sender drawing
// syscall-fault rolls, a blocked receiver consuming a background NIC
// flood. It backs the meterlab snapshot/resume verbs and the
// forked-campaign benchmark.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

// ForkLabSpec parameterises the fork-lab machine.
type ForkLabSpec struct {
	// Seed drives every random stream; zero selects 2010.
	Seed int64
	// Freq is the CPU frequency; zero selects the paper testbed's
	// 2.53 GHz.
	Freq sim.Hz
	// Rounds is the churn guest's loop count — the knob that scales
	// total run length; zero selects 60.
	Rounds int
	// FloodPPS is the background NIC flood rate armed at build; zero
	// selects 40k packets/s.
	FloodPPS uint64
}

func (s ForkLabSpec) norm() ForkLabSpec {
	if s.Seed == 0 {
		s.Seed = 2010
	}
	if s.Freq == 0 {
		s.Freq = sim.DefaultCPUHz
	}
	if s.Rounds == 0 {
		s.Rounds = 60
	}
	if s.FloodPPS == 0 {
		s.FloodPPS = 40_000
	}
	return s
}

// DefaultForkLabWarmup is a mid-run checkpoint barrier for the
// default spec: every guest is live and mid-loop there.
const DefaultForkLabWarmup = sim.Cycles(3_000_000)

// forkChurn alternates compute bursts, hot-page stores, and sleeps —
// the loop that drives timer ticks, preemption, faults, and swap.
type forkChurn struct {
	rounds int
	burst  sim.Cycles
	sleep  sim.Cycles
	pages  uint64
	i      int
}

func (g *forkChurn) run(ctx guest.Context, _ guest.Resume) guest.Step {
	if g.i >= g.rounds {
		return nil
	}
	ctx.Compute(g.burst)
	return g.afterCompute
}

func (g *forkChurn) afterCompute(ctx guest.Context, _ guest.Resume) guest.Step {
	ctx.Store(0x400000 + uint64(g.i)%g.pages*mem.DefaultPageSize)
	return g.afterStore
}

func (g *forkChurn) afterStore(ctx guest.Context, _ guest.Resume) guest.Step {
	g.i++
	ctx.Sleep(g.sleep)
	return g.run
}

func (g *forkChurn) fork(cur guest.Step) (guest.Forked, error) {
	c := *g
	s, ok := guest.RebindStep(cur,
		[]guest.Step{g.run, g.afterCompute, g.afterStore},
		[]guest.Step{c.run, c.afterCompute, c.afterStore})
	if !ok {
		return guest.Forked{}, fmt.Errorf("forklab churn: unknown continuation")
	}
	return guest.Forked{Step: s, Fork: c.fork, State: &c}, nil
}

// forkSender transmits flow frames — drawing "sendto" fault rolls —
// with jittered pacing off the machine rng.
type forkSender struct {
	rounds int
	gap    sim.Cycles
	i      int
	fails  int
}

func (g *forkSender) run(ctx guest.Context, _ guest.Resume) guest.Step {
	if g.i >= g.rounds {
		return nil
	}
	g.i++
	//simlint:errno-ok resumable post: the errno arrives in afterSend's Resume
	ctx.NetSend(guest.Frame{Dst: 9, Flow: 7})
	return g.afterSend
}

func (g *forkSender) afterSend(ctx guest.Context, r guest.Resume) guest.Step {
	if r.Err != nil {
		g.fails++
	}
	ctx.Sleep(ctx.Rand().Jitter(g.gap, g.gap/4+1))
	return g.run
}

func (g *forkSender) fork(cur guest.Step) (guest.Forked, error) {
	c := *g
	s, ok := guest.RebindStep(cur,
		[]guest.Step{g.run, g.afterSend},
		[]guest.Step{c.run, c.afterSend})
	if !ok {
		return guest.Forked{}, fmt.Errorf("forklab sender: unknown continuation")
	}
	return guest.Forked{Step: s, Fork: c.fork, State: &c}, nil
}

// forkWatcher blocks in NetRxWait consuming the NIC flood.
type forkWatcher struct {
	rounds int
	seen   uint64
	i      int
}

func (w *forkWatcher) run(ctx guest.Context, r guest.Resume) guest.Step {
	if w.i > 0 {
		w.seen = r.Ret
	}
	if w.i >= w.rounds {
		return nil
	}
	w.i++
	ctx.NetRxWait(w.seen)
	return w.run
}

func (w *forkWatcher) fork(cur guest.Step) (guest.Forked, error) {
	c := *w
	s, ok := guest.RebindStep(cur, []guest.Step{w.run}, []guest.Step{c.run})
	if !ok {
		return guest.Forked{}, fmt.Errorf("forklab watcher: unknown continuation")
	}
	return guest.Forked{Step: s, Fork: c.fork, State: &c}, nil
}

// BuildForkLab constructs the fork-lab machine: tight physical memory
// for swap traffic, an armed sendto fault, three forkable guests, and
// the background flood. The machine is ready to Run, RunUntil, or
// hand to ForkedCampaign as its build function.
func BuildForkLab(spec ForkLabSpec) (*kernel.Machine, error) {
	s := spec.norm()
	m := kernel.New(kernel.Config{
		Seed:         s.Seed,
		CPUHz:        s.Freq,
		PhysMemBytes: 24 * mem.DefaultPageSize,
		Faults: &kernel.FaultSpec{Syscalls: []kernel.SyscallFault{
			{Name: "sendto", Errno: guest.EAGAIN, ProbPPM: 200_000},
		}},
	})
	churn := &forkChurn{rounds: s.Rounds, burst: 150_000, sleep: 90_000, pages: 40}
	sender := &forkSender{rounds: 50, gap: 120_000}
	watcher := &forkWatcher{rounds: 30}
	specs := []kernel.SpawnConfig{
		{Name: "churn", Content: "forklab churn v1", Step: churn.run, Fork: churn.fork},
		{Name: "sender", Content: "forklab sender v1", Nice: -5, Step: sender.run, Fork: sender.fork},
		{Name: "watcher", Content: "forklab watcher v1", Step: watcher.run, Fork: watcher.fork},
	}
	for _, sc := range specs {
		if _, err := m.Spawn(sc); err != nil {
			m.Shutdown()
			return nil, fmt.Errorf("forklab: spawn %s: %w", sc.Name, err)
		}
	}
	m.NIC().StartFlood(s.FloodPPS)
	return m, nil
}

// ForkLabOut is a finished fork-lab machine's deterministic outcome:
// a few headline counters for display plus the full digest the
// byte-identity oracle compares.
type ForkLabOut struct {
	Clock  sim.Cycles
	Faults uint64
	RxSeen uint64
	// Digest serialises everything observable — per-task stats and
	// usage under every billing scheme, machine counters, integrity
	// measurements — so equal histories compare as string equality.
	Digest string
}

// HarvestForkLab digests a finished fork-lab machine.
func HarvestForkLab(m *kernel.Machine) *ForkLabOut {
	var b strings.Builder
	fmt.Fprintf(&b, "clock=%d faults=%d rxdrop=%d nicrx=%d diskio=%d diskw=%d\n",
		m.Clock().Now(), m.FaultsInjected(), m.RxBufDropped(),
		m.NIC().Received(), m.Disk().IOs(), m.Disk().Writes())
	for _, ms := range m.Measurements() {
		fmt.Fprintf(&b, "task=%s pid=%d digest=%s stats=%+v\n", ms.Name, ms.PID, ms.Digest, m.Stats(ms.PID))
		for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
			u, ok := m.UsageBy(scheme, ms.PID)
			fmt.Fprintf(&b, "task=%s %s ok=%v usage=%+v\n", ms.Name, scheme, ok, u)
		}
	}
	return &ForkLabOut{
		Clock:  m.Clock().Now(),
		Faults: m.FaultsInjected(),
		RxSeen: m.NIC().Received(),
		Digest: b.String(),
	}
}

// RunForkLabCampaign is the shared-warmup flood sweep: one fork-lab
// machine warms to the barrier, and its image forks into one variant
// per rate, each re-arming the background flood at rates[i] before
// running to completion. The results are byte-identical to building,
// warming, and perturbing each variant's machine from scratch — the
// warmup just isn't paid len(rates) times.
func RunForkLabCampaign(spec ForkLabSpec, warmup sim.Cycles, rates []uint64, parallelism int) ([]*ForkLabOut, error) {
	if warmup == 0 {
		warmup = DefaultForkLabWarmup
	}
	variants := make([]func(*kernel.Machine) (*ForkLabOut, error), len(rates))
	for i, pps := range rates {
		pps := pps
		variants[i] = func(m *kernel.Machine) (*ForkLabOut, error) {
			m.NIC().StartFlood(pps)
			if err := m.Run(); err != nil {
				return nil, err
			}
			return HarvestForkLab(m), nil
		}
	}
	return ForkedCampaign(func() (*kernel.Machine, error) { return BuildForkLab(spec) },
		warmup, parallelism, variants)
}
