// Cluster scenarios: the paper's interrupt flood (Fig. 10) driven the
// way the paper actually drives it — from a second PC. A cluster run
// builds one attacker machine and N victim machines joined by modeled
// links; the attacker hosts a real packet-generator process whose
// frames cross a link and raise genuine NIC receive interrupts on the
// victims. Each victim machine can bill under a different accounting
// scheme, so one scenario shows the commodity-billed victim's bill
// inflating while the process-aware-billed victim's stays put.
//
// Cluster runs are RunSpec-shaped work for the campaign engine: a
// figure declares its whole []ClusterRunSpec matrix and
// RunAllClusters shards the independent clusters across the same
// worker pool RunAll uses, with the same declaration-order,
// byte-identical-results contract.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/metering"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/workloads"
)

// ClusterVictim describes one victim machine in a cluster scenario.
type ClusterVictim struct {
	// Workload is "O", "P", "W" or "B".
	Workload string
	// Billing selects the machine's billing (first) accountant:
	// "jiffy" (default, the commodity scheme), "tsc", or
	// "process-aware". All three schemes still record in parallel.
	Billing string
	// Nice sets the victim job's priority.
	Nice int
}

// ClusterRunSpec describes one attacker-machine → victim-machines
// flood scenario executed in deterministic lockstep.
type ClusterRunSpec struct {
	Opts    Options
	Victims []ClusterVictim
	// FloodPPS is the attacker's transmit rate per victim link; zero
	// means the attacker machine stays silent (baseline cluster).
	FloodPPS uint64
	// FloodSeconds is the attacker's transmit duration in virtual
	// seconds; zero derives 1.5x the longest victim baseline (so the
	// flood outlives every victim).
	FloodSeconds float64
	// LinkLatencyUs is the one-way link latency; zero selects
	// cluster.DefaultLatencyUs.
	LinkLatencyUs uint64
	// LinkPPS is each attacker→victim wire's serialisation capacity;
	// zero selects cluster.DefaultLinkPPS, cluster.UnlimitedPPS an
	// idealised lossless infinite-rate pipe (the first cluster
	// model, which such a config replays bit-for-bit).
	LinkPPS uint64
	// LinkQueueDepth bounds each wire's tail-drop queue in packets;
	// zero selects cluster.DefaultQueueDepth.
	LinkQueueDepth uint64
	// LinkRED, when non-nil, arms RED/ECN queue feedback on every
	// attacker→victim wire (both directions); nil keeps pure
	// tail-drop, which replays pre-RED histories bit-for-bit.
	LinkRED *cluster.REDSpec
	// LinkQdisc selects every wire's queueing discipline:
	// cluster.QdiscFIFO (default, replays pre-qdisc histories
	// bit-for-bit) or cluster.QdiscDRR.
	LinkQdisc string
	// LinkQuantumBytes is DRR's per-flow byte quantum; zero selects
	// the cluster default. Only meaningful with LinkQdisc DRR.
	LinkQuantumBytes uint64
}

// ClusterVictimOut is one victim machine's harvest.
type ClusterVictimOut struct {
	// Billing names the machine's billing scheme.
	Billing string
	// Run is the victim machine's ordinary run harvest (usage across
	// all schemes, stats, system account, program result).
	Run *RunOut
	// PacketsReceived counts flood frames delivered to this machine's
	// NIC.
	PacketsReceived uint64
}

// ClusterOut is one cluster scenario's harvest.
type ClusterOut struct {
	Spec ClusterRunSpec
	// Victims are in Spec.Victims order.
	Victims []ClusterVictimOut
	// PacketsSent counts frames the attacker offered per victim link.
	PacketsSent []uint64
	// PacketsDropped counts frames per victim link that the wire
	// tail-dropped or that were offered after the victim finished.
	PacketsDropped []uint64
	// ElapsedSec is the slowest machine's virtual wall time.
	ElapsedSec float64
}

// clusterSeed derives machine i's seed from the campaign seed:
// deterministic, collision-free for small i, and distinct from the
// single-machine runs of the same campaign.
func clusterSeed(seed int64, i int) int64 {
	return seed*1_000_003 + int64(i+1)
}

// clusterElapsedSec reports the slowest machine's virtual wall time —
// the shared ElapsedSec semantics of every cluster harvest.
func clusterElapsedSec(cl *cluster.Cluster) float64 {
	var sec float64
	for i := 0; i < cl.Size(); i++ {
		if s := cl.Machine(i).Clock().Seconds(cl.Machine(i).Clock().Now()); s > sec {
			sec = s
		}
	}
	return sec
}

// victimAccountants builds the three schemes with the billing scheme
// first, so the machine's getrusage-alike reads it.
func victimAccountants(billing string, tick sim.Cycles) ([]metering.Accountant, error) {
	mk := map[string]func() metering.Accountant{
		"jiffy":         func() metering.Accountant { return metering.NewJiffy(tick) },
		"tsc":           func() metering.Accountant { return metering.NewTSC() },
		"process-aware": func() metering.Accountant { return metering.NewProcessAware() },
	}
	if billing == "" {
		billing = "jiffy"
	}
	if _, ok := mk[billing]; !ok {
		return nil, fmt.Errorf("cluster: unknown billing scheme %q (have %v)", billing, Schemes)
	}
	accts := []metering.Accountant{mk[billing]()}
	for _, s := range Schemes {
		if s != billing {
			accts = append(accts, mk[s]())
		}
	}
	return accts, nil
}

// floodSeconds resolves the attacker's transmit duration.
func (spec ClusterRunSpec) floodSeconds(o Options) (float64, error) {
	if spec.FloodSeconds > 0 {
		return spec.FloodSeconds, nil
	}
	var longest float64
	for _, v := range spec.Victims {
		w, err := workloads.SpecByKey(v.Workload)
		if err != nil {
			return 0, err
		}
		if s := w.BaselineSeconds * o.Scale; s > longest {
			longest = s
		}
	}
	return longest * 1.5, nil
}

// RunCluster executes one flood scenario: machine 0 is the attacker,
// machines 1..N are the victims, one attacker→victim link each. The
// whole cluster advances in lockstep, so the run is a pure function
// of the spec.
func RunCluster(spec ClusterRunSpec) (*ClusterOut, error) {
	o := spec.Opts.norm()
	if len(spec.Victims) == 0 {
		return nil, fmt.Errorf("cluster: no victim machines in spec")
	}
	floodSec, err := spec.floodSeconds(o)
	if err != nil {
		return nil, err
	}
	tick := sim.Cycles(uint64(o.Freq) / o.HZ)

	launches := make([]*launched, len(spec.Victims))
	machines := make([]cluster.MachineSpec, 0, len(spec.Victims)+1)

	// Machine 0: the attacker. Its packet generator offers FloodPPS
	// frames per second on every victim link for floodSec, with the
	// same deterministic inter-send jitter the local flood model
	// uses, then exits — a finite, replayable transmit schedule.
	attackerCfg := o.machineConfig()
	attackerCfg.Seed = clusterSeed(o.Seed, 0)
	machines = append(machines, cluster.MachineSpec{
		Config: attackerCfg,
		Boot: func(c *cluster.Cluster, m *kernel.Machine) error {
			if spec.FloodPPS == 0 {
				return nil // silent attacker: machine finishes at boot
			}
			type target struct {
				link  *cluster.Link
				frame cluster.Frame
			}
			targets := make([]target, len(spec.Victims))
			for i := range spec.Victims {
				targets[i] = target{
					link:  c.Link(i),
					frame: cluster.Frame{Src: c.AddrOf(0), Dst: c.AddrOf(i + 1)},
				}
			}
			interval := sim.Cycles(uint64(o.Freq) / spec.FloodPPS)
			if interval == 0 {
				interval = 1
			}
			packets := uint64(floodSec * float64(spec.FloodPPS))
			// The generator as a resumable state machine: inject this
			// slot's frames onto every victim link (host-side calls,
			// fine mid-activation), bill one sendto, sleep out the
			// jittered slot, repeat. pc tracks which request the last
			// activation posted.
			var pc int
			var n uint64
			var step guest.Step
			step = func(ctx guest.Context, _ guest.Resume) guest.Step {
				switch pc {
				case 1: // sendto billed; sleep out the slot
					pc = 2
					ctx.Sleep(ctx.Rand().Jitter(interval, interval/4+1))
					return step
				case 2: // slot done
					n++
					pc = 0
				}
				if n >= packets {
					return nil
				}
				for _, tg := range targets {
					tg.link.Send(tg.frame)
				}
				pc = 1
				//simlint:errno-ok modeled flood binary never checks errno; the bill charges the attempt
				ctx.Syscall("sendto")
				return step
			}
			_, err := m.Spawn(guestSpawn(o, "pktgen", "junk-ip packet generator v1", step))
			return err
		},
	})

	for i, v := range spec.Victims {
		i, v := i, v
		accts, err := victimAccountants(v.Billing, tick)
		if err != nil {
			return nil, err
		}
		victimCfg := o.machineConfig()
		victimCfg.Seed = clusterSeed(o.Seed, i+1)
		victimCfg.Accountants = accts
		machines = append(machines, cluster.MachineSpec{
			Config: victimCfg,
			Boot: func(_ *cluster.Cluster, m *kernel.Machine) error {
				l, err := launchSpec(m, RunSpec{
					Opts:       o,
					Workload:   v.Workload,
					VictimNice: v.Nice,
				})
				if err != nil {
					return err
				}
				launches[i] = l
				return nil
			},
		})
	}

	links := make([]cluster.LinkSpec, len(spec.Victims))
	for i := range spec.Victims {
		links[i] = cluster.LinkSpec{
			From: 0, To: i + 1,
			LatencyUs:        spec.LinkLatencyUs,
			PacketsPerSecond: spec.LinkPPS,
			QueueDepth:       spec.LinkQueueDepth,
			RED:              spec.LinkRED,
			Qdisc:            spec.LinkQdisc,
			QuantumBytes:     spec.LinkQuantumBytes,
		}
	}

	cl, err := cluster.New(cluster.Config{Machines: machines, Links: links})
	if err != nil {
		return nil, err
	}
	if err := cl.Run(); err != nil {
		return nil, fmt.Errorf("cluster %s: %w", clusterKey(spec), err)
	}

	out := &ClusterOut{Spec: spec, ElapsedSec: clusterElapsedSec(cl)}
	for i := range spec.Victims {
		m := cl.Machine(i + 1)
		billing := spec.Victims[i].Billing
		if billing == "" {
			billing = "jiffy"
		}
		out.Victims = append(out.Victims, ClusterVictimOut{
			Billing:         billing,
			Run:             launches[i].harvest(m),
			PacketsReceived: m.NIC().Received(),
		})
		out.PacketsSent = append(out.PacketsSent, cl.Link(i).Sent())
		out.PacketsDropped = append(out.PacketsDropped, cl.Link(i).Dropped())
	}
	return out, nil
}

func clusterKey(spec ClusterRunSpec) string {
	return fmt.Sprintf("%d-victims/%dpps", len(spec.Victims), spec.FloodPPS)
}

// RunAllClusters executes every cluster scenario on its own lockstep
// machine set, sharding whole clusters across the campaign worker
// pool, and returns results in declaration order with the earliest
// declared failure reported — the RunAll contract, one level up.
//
// Deprecated: RunAllClusters is Campaign("cluster", ...) over RunCluster;
// new callers should use Campaign directly. Kept as a thin wrapper
// for the pre-generic API.
func RunAllClusters(specs []ClusterRunSpec, parallelism int) ([]*ClusterOut, error) {
	return Campaign("cluster", specs, parallelism, RunCluster, clusterKey)
}

// victimBillSeconds reads a victim's billed (user, system) seconds
// under its own machine's billing scheme.
func victimBillSeconds(v ClusterVictimOut) (user, sys float64) {
	return v.Run.Victim.User[v.Billing], v.Run.Victim.Sys[v.Billing]
}

// ClusterFlood regenerates the cross-machine interrupt-flood
// scenario: one attacker machine floods two victim machines running
// the same job, one billed by the commodity jiffy scheme and one by
// the process-aware scheme, at increasing flood rates. The commodity
// bill inflates with the rate; the process-aware bill does not,
// because handler time lands on the system account.
func ClusterFlood(o Options) (*Figure, error) {
	return clusterFloodWith(o, 0, 0)
}

// clusterFloodWith is ClusterFlood with explicit wire parameters: the
// lossless-replay regression test renders the artifact under an
// idealised infinite-rate link and demands byte-identity with the
// default finite-capacity wire (whose queue never binds at these
// offered rates).
func clusterFloodWith(o Options, linkPPS, queueDepth uint64) (*Figure, error) {
	o = o.norm()
	rates := []uint64{0, 10_000, 40_000}
	victims := []ClusterVictim{
		{Workload: "O", Billing: "jiffy"},
		{Workload: "O", Billing: "process-aware"},
	}
	specs := make([]ClusterRunSpec, len(rates))
	for i, pps := range rates {
		specs[i] = ClusterRunSpec{Opts: o, Victims: victims, FloodPPS: pps, LinkPPS: linkPPS, LinkQueueDepth: queueDepth}
	}
	outs, err := RunAllClusters(specs, o.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("cluster flood: %w", err)
	}

	fig := &Figure{
		ID:    "Cluster Flood",
		Title: "Cross-Machine Interrupt Flooding (one attacker PC, two victim hosts)",
		Unit:  "CPU seconds (billed by each victim host's own scheme)",
	}
	groups := []string{"jiffy-host", "procaware-host"}
	for vi, group := range groups {
		for ri, pps := range rates {
			label := "no flood"
			if pps > 0 {
				label = fmt.Sprintf("%dk pps", pps/1000)
			}
			user, sys := victimBillSeconds(outs[ri].Victims[vi])
			fig.Bars = append(fig.Bars, textplot.Bar{
				Group: group,
				Label: label,
				Segments: []textplot.Segment{
					{Name: "user", Value: user},
					{Name: "system", Value: sys},
				},
			})
		}
	}
	last := outs[len(outs)-1]
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("attacker machine's pktgen sent %d frames per victim link; victims received %d and %d",
			last.PacketsSent[0], last.Victims[0].PacketsReceived, last.Victims[1].PacketsReceived),
		"expectation: jiffy-billed host's system time grows with flood rate; process-aware host's bill is flat (handler time lands on the system account)",
		fmt.Sprintf("system account on the process-aware host at 40k pps: %.2f s", last.Victims[1].Run.SystemAccountSec),
	)
	return fig, nil
}
