package experiments

import (
	"fmt"

	"repro/internal/attacks"
	"repro/internal/workloads"
)

// workloadSpec is a small indirection so figures.go can read thrash
// touch counts without re-importing workloads everywhere.
func workloadSpec(key string) (workloads.Spec, error) {
	return workloads.SpecByKey(key)
}

// sideEffects records Section V-C's qualitative side-effect notes.
var sideEffects = map[string]string{
	"shell":    "inflates every program started from the attacked shell",
	"ctor":     "inflates every program run with the preloaded library",
	"subst":    "inflates every program calling the substituted functions",
	"sched":    "needs root to raise priority; effect depends on runtime factors",
	"thrash":   "least side effect (targets exactly PT); needs ptrace privilege",
	"irqflood": "denial-of-service on the whole system",
	"excflood": "denial-of-service on the whole system",
}

// vulnerability records Section V-C's exploited-vulnerability notes.
var vulnerability = map[string]string{
	"shell":    "alien code billed in process context (launch)",
	"ctor":     "alien code billed in process context (library load)",
	"subst":    "alien code billed in process context (every call)",
	"sched":    "coarse tick sampling misattributes partial jiffies",
	"thrash":   "kernel service for unsolicited traps billed to PT",
	"irqflood": "IRQ handler time billed to the interrupted process",
	"excflood": "fault handling billed to the faulting victim",
}

// ComparisonTable reproduces Section V-C: every attack run against
// Whetstone once, reporting measured billed inflation next to the
// paper's qualitative assessment.
func ComparisonTable(o Options) (*Figure, error) {
	o = o.norm()
	fig := &Figure{
		ID:     "Table V-C",
		Title:  "Attack comparison on Whetstone (billed by jiffy accounting)",
		Header: []string{"attack", "phase", "inflates", "billed s", "baseline s", "inflation", "vulnerability exploited", "side effects"},
	}
	forks := uint64(float64(attacks.DefaultSchedulingForks) * o.Scale)
	if forks < 512 {
		forks = 512
	}
	spec, _ := workloadSpec("W")
	thrashTouches := uint64(float64(spec.DefaultThrashTouches) * o.Scale)
	if thrashTouches < 100 {
		thrashTouches = 100
	}

	cases := []struct {
		attack  attacks.Attack
		touches uint64
	}{
		{&attacks.ShellAttack{PayloadCycles: payloadCycles(o)}, 0},
		{&attacks.LibraryCtorAttack{PayloadCycles: payloadCycles(o)}, 0},
		{attacks.NewLibrarySubstitutionAttack(o.Freq), 0},
		{attacks.NewSchedulingAttack(-20, forks), 0},
		{attacks.NewThrashingAttack(0), thrashTouches},
		{attacks.NewInterruptFloodAttack(0), 0},
		{attacks.NewExceptionFloodAttack(2 * physMem(o)), 0},
	}
	// Declare the whole matrix: the shared baseline, then per attack
	// an optional touch-matched baseline plus the attacked run.
	var mx Matrix
	baseline := mx.Add(RunSpec{Opts: o, Workload: "W"})
	type handles struct{ ref, attacked int }
	rows := make([]handles, 0, len(cases))
	for _, tc := range cases {
		h := handles{ref: baseline}
		if tc.touches != 0 {
			// The thrashing row needs a baseline with matching
			// touch counts.
			h.ref = mx.Add(RunSpec{Opts: o, Workload: "W", Touches: tc.touches})
		}
		h.attacked = mx.Add(RunSpec{Opts: o, Workload: "W", Attack: tc.attack, Touches: tc.touches})
		rows = append(rows, h)
	}
	outs, err := mx.Run(o.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("comparison: %w", err)
	}

	for i, tc := range cases {
		ref := outs[rows[i].ref].Victim.Total("jiffy")
		out := outs[rows[i].attacked]
		billed := out.Victim.Total("jiffy")
		infl := 0.0
		if ref > 0 {
			infl = (billed - ref) / ref * 100
		}
		fig.Rows = append(fig.Rows, []string{
			tc.attack.Name(),
			tc.attack.Phase(),
			tc.attack.Targets(),
			fmt.Sprintf("%.1f", billed),
			fmt.Sprintf("%.1f", ref),
			fmt.Sprintf("%+.1f%%", infl),
			vulnerability[tc.attack.Key()],
			sideEffects[tc.attack.Key()],
		})
	}
	fig.Notes = append(fig.Notes,
		"strength per paper: shell/library unbounded; thrashing tunable via hit count; scheduling depends on runtime factors; flooding weakest")
	return fig, nil
}
