package integrity

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/proc"
)

func meas(tgid proc.PID, kind kernel.MeasurementKind, name, digest string) kernel.Measurement {
	return kernel.Measurement{PID: tgid, TGID: tgid, Kind: kind, Name: name, Digest: digest}
}

func TestPCRExtendIsOrderSensitive(t *testing.T) {
	a := NewTPM("k")
	b := NewTPM("k")
	a.Extend(PCRIndex, "d1")
	a.Extend(PCRIndex, "d2")
	b.Extend(PCRIndex, "d2")
	b.Extend(PCRIndex, "d1")
	if a.PCR(PCRIndex) == b.PCR(PCRIndex) {
		t.Fatal("PCR insensitive to extend order")
	}
	if a.PCR(PCRIndex) == NewTPM("k").PCR(PCRIndex) {
		t.Fatal("extend did not change PCR")
	}
}

func TestQuoteVerifies(t *testing.T) {
	tpm := NewTPM("platform-key")
	tpm.Extend(PCRIndex, "digest-1")
	q := tpm.Quote(PCRIndex, "nonce-42")
	if !VerifyQuote("platform-key", q) {
		t.Fatal("genuine quote rejected")
	}
	if VerifyQuote("other-key", q) {
		t.Fatal("quote verified under wrong AIK")
	}
	forged := q
	forged.PCRValue = strings.Repeat("0", 64)
	if VerifyQuote("platform-key", forged) {
		t.Fatal("forged PCR value verified")
	}
}

func TestLogReplay(t *testing.T) {
	entries := []kernel.Measurement{
		meas(2, kernel.MeasureProgram, "app", "dA"),
		meas(2, kernel.MeasureLibrary, "libc", "dB"),
	}
	log := BuildLog(entries, "aik")
	q := log.Quote("n")
	if !Replay(entries, q) {
		t.Fatal("honest log does not replay")
	}
	// Dropping an entry breaks replay.
	if Replay(entries[:1], q) {
		t.Fatal("truncated log replayed")
	}
	// Editing an entry breaks replay.
	tampered := []kernel.Measurement{entries[0], meas(2, kernel.MeasureLibrary, "libc", "dC")}
	if Replay(tampered, q) {
		t.Fatal("tampered log replayed")
	}
}

func TestManifestCheck(t *testing.T) {
	m := NewManifest(map[string]string{
		"app":  "dA",
		"libc": "dB",
	})
	clean := []kernel.Measurement{
		meas(2, kernel.MeasureProgram, "app", "dA"),
		meas(2, kernel.MeasureLibrary, "libc", "dB"),
		meas(9, kernel.MeasureProgram, "other-job", "dZ"), // different TGID: ignored
	}
	if vs := m.Check(clean, 2); len(vs) != 0 {
		t.Fatalf("clean log flagged: %v", vs)
	}
	evil := append(clean, meas(2, kernel.MeasureLibrary, "libattack.so", "dEvil"))
	vs := m.Check(evil, 2)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	if !strings.Contains(vs[0].String(), "libattack.so") {
		t.Fatalf("violation string = %q", vs[0])
	}
	if !strings.Contains(Describe(vs), "libattack.so") {
		t.Fatal("Describe lost the violation")
	}
	if Describe(nil) != "source integrity verified" {
		t.Fatal("Describe(nil) wrong")
	}
}

func TestManifestNames(t *testing.T) {
	m := NewManifest(map[string]string{"b": "d1", "a": "d2"})
	names := m.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestReplayPropertyAnyLog(t *testing.T) {
	// Property: any measurement log replays against its own quote,
	// and any single-digest mutation breaks it.
	f := func(digests []string, flip uint8) bool {
		if len(digests) == 0 {
			return true
		}
		entries := make([]kernel.Measurement, len(digests))
		for i, d := range digests {
			entries[i] = meas(1, kernel.MeasureLibrary, "x", d)
		}
		log := BuildLog(entries, "k")
		q := log.Quote("n")
		if !Replay(entries, q) {
			return false
		}
		i := int(flip) % len(entries)
		mutated := make([]kernel.Measurement, len(entries))
		copy(mutated, entries)
		mutated[i].Digest += "!"
		return !Replay(mutated, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
