// Package integrity implements the source-integrity property of
// Section VI-B: a TPM-backed integrity measurement architecture
// (after Sailer et al., the paper's reference [15]) for the simulated
// machine. Every code object loaded into a billed process's context —
// the executable, each shared object, the inherited launcher image —
// is hashed into a measurement log whose running digest is sealed in
// a simulated PCR; the provider quotes the PCR and the log, and the
// customer verifies the quote against a manifest of code she expects
// to run. Shell tampering, preloaded constructor libraries, and
// substituted functions all change a digest and break verification.
package integrity

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/kernel"
	"repro/internal/proc"
)

// PCRIndex is the simulated PCR used for process code identity (10,
// the Linux IMA convention).
const PCRIndex = 10

// TPM is a minimal trusted platform module model: PCR extend plus a
// keyed quote. The key stands in for the TPM's attestation identity
// key; the verifier holds the same key material via VerifyQuote
// (modelling certificate-based signature verification without
// needing asymmetric crypto in the simulation).
type TPM struct {
	aik  []byte
	pcrs map[int][]byte
}

// NewTPM returns a TPM with the given attestation identity key seed.
func NewTPM(aikSeed string) *TPM {
	return &TPM{
		aik:  []byte("aik\x00" + aikSeed),
		pcrs: make(map[int][]byte),
	}
}

// Extend folds a measurement digest into a PCR:
// PCR = SHA-256(PCR || digest), the TPM's one-way accumulate.
func (t *TPM) Extend(idx int, digest string) {
	cur := t.pcrs[idx]
	if cur == nil {
		cur = make([]byte, sha256.Size)
	}
	h := sha256.New()
	h.Write(cur)
	h.Write([]byte(digest))
	t.pcrs[idx] = h.Sum(nil)
}

// PCR returns the current value of a PCR (zero block if untouched).
func (t *TPM) PCR(idx int) string {
	cur := t.pcrs[idx]
	if cur == nil {
		cur = make([]byte, sha256.Size)
	}
	return hex.EncodeToString(cur)
}

// Quote signs the PCR value and a caller nonce with the AIK.
type Quote struct {
	PCRIndex int
	PCRValue string
	Nonce    string
	MAC      string
}

// Quote produces a signed attestation of a PCR.
func (t *TPM) Quote(idx int, nonce string) Quote {
	mac := hmac.New(sha256.New, t.aik)
	fmt.Fprintf(mac, "%d\x00%s\x00%s", idx, t.PCR(idx), nonce)
	return Quote{
		PCRIndex: idx,
		PCRValue: t.PCR(idx),
		Nonce:    nonce,
		MAC:      hex.EncodeToString(mac.Sum(nil)),
	}
}

// VerifyQuote checks a quote against the expected AIK and nonce.
func VerifyQuote(aikSeed string, q Quote) bool {
	ref := NewTPM(aikSeed)
	ref.pcrs[q.PCRIndex] = nil
	mac := hmac.New(sha256.New, []byte("aik\x00"+aikSeed))
	fmt.Fprintf(mac, "%d\x00%s\x00%s", q.PCRIndex, q.PCRValue, q.Nonce)
	expect := hex.EncodeToString(mac.Sum(nil))
	return hmac.Equal([]byte(expect), []byte(q.MAC))
}

// Log is the attested measurement log: the kernel's code-identity
// entries in load order plus the PCR they extend into.
type Log struct {
	Entries []kernel.Measurement
	tpm     *TPM
}

// BuildLog replays a machine's measurement log into a fresh TPM,
// exactly as the kernel would have extended at load time.
func BuildLog(meas []kernel.Measurement, aikSeed string) *Log {
	l := &Log{Entries: meas, tpm: NewTPM(aikSeed)}
	for _, m := range meas {
		l.tpm.Extend(PCRIndex, m.Digest)
	}
	return l
}

// Quote returns the TPM quote over the accumulated log.
func (l *Log) Quote(nonce string) Quote {
	return l.tpm.Quote(PCRIndex, nonce)
}

// Replay recomputes the PCR from the log entries alone and reports
// whether it matches the quoted value — the verifier's first check.
func Replay(entries []kernel.Measurement, q Quote) bool {
	t := NewTPM("replay")
	for _, m := range entries {
		t.Extend(q.PCRIndex, m.Digest)
	}
	return t.PCR(q.PCRIndex) == q.PCRValue
}

// Manifest is the customer's allow-list: the digests of every code
// object she expects to execute in her job's context.
type Manifest struct {
	// Allowed maps digest -> human-readable name.
	Allowed map[string]string
}

// NewManifest builds a manifest from name->digest pairs.
func NewManifest(pairs map[string]string) *Manifest {
	m := &Manifest{Allowed: make(map[string]string, len(pairs))}
	for name, digest := range pairs {
		m.Allowed[digest] = name
	}
	return m
}

// Violation is a measured code object the manifest does not allow.
type Violation struct {
	Entry kernel.Measurement
}

func (v Violation) String() string {
	d := v.Entry.Digest
	if len(d) > 12 {
		d = d[:12] + "…"
	}
	return fmt.Sprintf("unexpected %s %q (digest %s)", v.Entry.Kind, v.Entry.Name, d)
}

// Check verifies a job's measured code identity against the
// manifest: every entry whose TGID matches the billed job must be
// allowed. It returns the violations, empty meaning source integrity
// holds.
func (m *Manifest) Check(entries []kernel.Measurement, job proc.PID) []Violation {
	var out []Violation
	for _, e := range entries {
		if e.TGID != job {
			continue
		}
		if _, ok := m.Allowed[e.Digest]; !ok {
			out = append(out, Violation{Entry: e})
		}
	}
	return out
}

// Names lists the manifest's allowed object names, sorted, for
// reports.
func (m *Manifest) Names() []string {
	out := make([]string, 0, len(m.Allowed))
	for _, n := range m.Allowed {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe summarises violations for a report line.
func Describe(vs []Violation) string {
	if len(vs) == 0 {
		return "source integrity verified"
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, "; ")
}
