package core

import (
	"fmt"
	"math"

	"repro/internal/integrity"
)

// Property is one of the paper's three requirements for trustworthy
// metering (Section VI-B).
type Property int

const (
	// SourceIntegrity: only expected code ran in the job's context.
	SourceIntegrity Property = iota + 1
	// ExecutionIntegrity: the job's execution was not interfered
	// with (stopped, single-stepped, control-flow manipulated).
	ExecutionIntegrity
	// FineGrainedMetering: the billed time attributes exactly the
	// cycles the job consumed, at TSC granularity, excluding
	// unrelated interrupt service.
	FineGrainedMetering
)

func (p Property) String() string {
	switch p {
	case SourceIntegrity:
		return "source-integrity"
	case ExecutionIntegrity:
		return "execution-integrity"
	case FineGrainedMetering:
		return "fine-grained-metering"
	default:
		return "unknown"
	}
}

// Finding is one audit observation.
type Finding struct {
	Property Property
	// Violation marks a trust failure; informational findings have
	// it false.
	Violation bool
	Detail    string
}

func (f Finding) String() string {
	tag := "info"
	if f.Violation {
		tag = "VIOLATION"
	}
	return fmt.Sprintf("[%s/%s] %s", f.Property, tag, f.Detail)
}

// Verdict is the audit outcome.
type Verdict struct {
	Trustworthy bool
	// OverchargeSec estimates how much the billed figure exceeds the
	// defensible figure (ground-truth attribution).
	OverchargeSec float64
	Findings      []Finding
}

// Violations returns only the failed findings.
func (v Verdict) Violations() []Finding {
	var out []Finding
	for _, f := range v.Findings {
		if f.Violation {
			out = append(out, f)
		}
	}
	return out
}

// Profile is the customer's reference expectation: the job's usage
// measured on her own platform with the same specification (the
// paper's trust definition, Section III-B).
type Profile struct {
	UserSec float64
	SysSec  float64
	// TolerancePct allows for run-to-run variation (default 5%).
	TolerancePct float64
}

func (p Profile) tolerance() float64 {
	if p.TolerancePct <= 0 {
		return 5
	}
	return p.TolerancePct
}

// Auditor verifies provider reports on the customer's behalf.
type Auditor struct {
	// Manifest allows the digests of every code object expected in
	// the job's context (typically harvested from a clean reference
	// run).
	Manifest *integrity.Manifest
	// Reference is the job's expected usage, if the customer has
	// profiled it.
	Reference *Profile
	// AIKSeed is the platform TPM's attestation key material the
	// customer trusts (certificate chain stand-in).
	AIKSeed string
	// Nonce must match the challenge the customer sent.
	Nonce string
	// SchemeDivergencePct flags fine-grained divergence between the
	// billed figure and the ground-truth scheme (default 3%).
	SchemeDivergencePct float64
	// MinOverchargeSec is the absolute floor under which divergence
	// is treated as sampling noise rather than an attack (default
	// 0.25 s, ~60 jiffies).
	MinOverchargeSec float64
	// MaxTraceStops tolerated before execution integrity fails.
	MaxTraceStops uint64
}

func (a *Auditor) divergence() float64 {
	if a.SchemeDivergencePct <= 0 {
		return 3
	}
	return a.SchemeDivergencePct
}

func (a *Auditor) minOvercharge() float64 {
	if a.MinOverchargeSec <= 0 {
		return 0.25
	}
	return a.MinOverchargeSec
}

// Audit checks one report and returns the verdict.
func (a *Auditor) Audit(r *Report) Verdict {
	var v Verdict

	// --- Attestation plumbing: quote and log replay. ---
	if !integrity.VerifyQuote(a.AIKSeed, r.Quote) {
		v.Findings = append(v.Findings, Finding{SourceIntegrity, true,
			"TPM quote signature invalid"})
	} else if r.Quote.Nonce != a.Nonce {
		v.Findings = append(v.Findings, Finding{SourceIntegrity, true,
			fmt.Sprintf("quote nonce %q does not match challenge %q (replayed report?)", r.Quote.Nonce, a.Nonce)})
	} else if !integrity.Replay(r.Measurements, r.Quote) {
		v.Findings = append(v.Findings, Finding{SourceIntegrity, true,
			"measurement log does not replay to the quoted PCR (log tampered)"})
	}

	// --- Source integrity: every measured object must be expected. ---
	if a.Manifest != nil {
		if vs := a.Manifest.Check(r.Measurements, r.JobPID); len(vs) > 0 {
			v.Findings = append(v.Findings, Finding{SourceIntegrity, true,
				integrity.Describe(vs)})
		} else {
			v.Findings = append(v.Findings, Finding{SourceIntegrity, false,
				"all code objects in job context match the manifest"})
		}
	}

	// --- Execution integrity: interference counters. ---
	if r.Counters.TraceStops > a.MaxTraceStops {
		v.Findings = append(v.Findings, Finding{ExecutionIntegrity, true,
			fmt.Sprintf("job was trace-stopped %d times (debug exceptions: %d): execution thrashing",
				r.Counters.TraceStops, r.Counters.DebugExceptions)})
	} else {
		v.Findings = append(v.Findings, Finding{ExecutionIntegrity, false,
			"no trace interference recorded"})
	}

	// --- Fine-grained metering: cross-scheme divergence. ---
	billed := r.Billed.Total()
	truth := billed
	if pa, ok := r.Scheme(TrustedBillingScheme); ok {
		truth = pa.Total()
		if diffPct(billed, truth) > a.divergence() && billed-truth > a.minOvercharge() {
			v.OverchargeSec = billed - truth
			v.Findings = append(v.Findings, Finding{FineGrainedMetering, true,
				fmt.Sprintf("billed %.2fs but exact attribution is %.2fs (+%.1f%%): tick sampling or interrupt misattribution exploited",
					billed, truth, diffPct(billed, truth))})
		}
		if ts, ok := r.Scheme("tsc"); ok && diffPct(ts.SysSec, pa.SysSec) > a.divergence() && ts.SysSec-pa.SysSec > a.minOvercharge() {
			v.Findings = append(v.Findings, Finding{FineGrainedMetering, true,
				fmt.Sprintf("%.2fs of interrupt-handler time was attributed to the job (process-aware: %.2fs): interrupt flooding",
					ts.SysSec, pa.SysSec)})
		}
	}

	// --- Reference profile comparison (the trust definition). ---
	if a.Reference != nil {
		wantTotal := a.Reference.UserSec + a.Reference.SysSec
		if wantTotal > 0 && diffPct(billed, wantTotal) > a.Reference.tolerance() &&
			math.Abs(billed-wantTotal) > a.minOvercharge() {
			if v.OverchargeSec == 0 {
				v.OverchargeSec = billed - wantTotal
			}
			v.Findings = append(v.Findings, Finding{FineGrainedMetering, true,
				fmt.Sprintf("billed %.2fs vs reference-platform %.2fs (%+.1f%%)",
					billed, wantTotal, (billed-wantTotal)/wantTotal*100)})
		}
		// A user-time jump with matching reference system time is
		// the launch-attack signature; a system-time jump is the
		// kernel-service signature.
		if a.Reference.SysSec >= 0 && r.Billed.SysSec > a.Reference.SysSec*2 && r.Billed.SysSec-a.Reference.SysSec > 0.1 {
			v.Findings = append(v.Findings, Finding{ExecutionIntegrity, true,
				fmt.Sprintf("system time %.2fs vs reference %.2fs: unsolicited kernel service billed to the job",
					r.Billed.SysSec, a.Reference.SysSec)})
		}
	}

	v.Trustworthy = len(v.Violations()) == 0
	return v
}

// diffPct is the relative difference of a over b in percent,
// saturating when b is ~0.
func diffPct(a, b float64) float64 {
	if b <= 0 {
		if a <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / b * 100
}
