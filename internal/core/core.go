package core
