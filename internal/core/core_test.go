package core

import (
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/integrity"
	"repro/internal/kernel"
)

// runJob executes a tiny job and returns the machine and job pid.
func runJob(t *testing.T, tamper func(m *kernel.Machine)) (*kernel.Machine, *Report) {
	t.Helper()
	m := kernel.New(kernel.Config{Seed: 3, CPUHz: 1_000_000_000, MaxSteps: 20_000_000})
	if tamper != nil {
		tamper(m)
	}
	prog := &guest.Program{
		Name:    "job",
		Content: "job-v1",
		Libs:    []string{"libc.so.6"},
		Main: func(ctx guest.Context) {
			ctx.Compute(2_000_000_000) // 2 virtual seconds
			ctx.Call("malloc", 64)
		},
	}
	p, err := m.Spawn(kernel.SpawnConfig{Name: "launcher", Content: "launcher-v1", Body: func(ctx guest.Context) {
		ctx.Exec(prog)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rep, err := BuildReport(m, p.PID, "job", LegacyBillingScheme, "aik", "nonce-1")
	if err != nil {
		t.Fatal(err)
	}
	return m, rep
}

// manifestFrom harvests an allow-list from a report's own log (the
// trust-on-first-use reference run).
func manifestFrom(rep *Report) *integrity.Manifest {
	pairs := map[string]string{}
	for _, e := range rep.Measurements {
		pairs[e.Name] = e.Digest
	}
	return integrity.NewManifest(pairs)
}

func TestBuildReportSchemes(t *testing.T) {
	_, rep := runJob(t, nil)
	if len(rep.Schemes) != 3 {
		t.Fatalf("schemes = %d, want 3", len(rep.Schemes))
	}
	if rep.Billed.Scheme != "jiffy" {
		t.Fatalf("billed scheme = %s", rep.Billed.Scheme)
	}
	ts, ok := rep.Scheme("tsc")
	if !ok || ts.Total() <= 0 {
		t.Fatalf("tsc scheme missing or zero: %+v", ts)
	}
	if _, ok := rep.Scheme("nope"); ok {
		t.Fatal("unknown scheme found")
	}
}

func TestBuildReportUnknownScheme(t *testing.T) {
	m := kernel.New(kernel.Config{Seed: 1, CPUHz: 1_000_000_000, MaxSteps: 1_000_000})
	p, _ := m.Spawn(kernel.SpawnConfig{Name: "j", Body: func(ctx guest.Context) { ctx.Compute(1000) }})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildReport(m, p.PID, "j", "bogus", "aik", "n"); err == nil {
		t.Fatal("unknown billing scheme accepted")
	}
}

func TestAuditCleanRunIsTrustworthy(t *testing.T) {
	_, rep := runJob(t, nil)
	aud := &Auditor{
		Manifest: manifestFrom(rep),
		AIKSeed:  "aik",
		Nonce:    "nonce-1",
	}
	v := aud.Audit(rep)
	if !v.Trustworthy {
		t.Fatalf("clean run distrusted: %v", v.Violations())
	}
	if len(v.Findings) == 0 {
		t.Fatal("no findings at all (expected informational entries)")
	}
}

func TestAuditDetectsWrongNonce(t *testing.T) {
	_, rep := runJob(t, nil)
	aud := &Auditor{AIKSeed: "aik", Nonce: "different"}
	v := aud.Audit(rep)
	if v.Trustworthy {
		t.Fatal("replayed report (wrong nonce) trusted")
	}
}

func TestAuditDetectsWrongAIK(t *testing.T) {
	_, rep := runJob(t, nil)
	aud := &Auditor{AIKSeed: "rogue", Nonce: "nonce-1"}
	if v := aud.Audit(rep); v.Trustworthy {
		t.Fatal("quote under unknown key trusted")
	}
}

func TestAuditDetectsLogTampering(t *testing.T) {
	_, rep := runJob(t, nil)
	rep.Measurements = rep.Measurements[:len(rep.Measurements)-1]
	aud := &Auditor{AIKSeed: "aik", Nonce: "nonce-1"}
	v := aud.Audit(rep)
	if v.Trustworthy {
		t.Fatal("tampered measurement log trusted")
	}
	found := false
	for _, f := range v.Violations() {
		if strings.Contains(f.Detail, "replay") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no replay violation in %v", v.Findings)
	}
}

func TestAuditDetectsForeignCode(t *testing.T) {
	// Manifest from a clean run, report from a run with an extra
	// preloaded library in the job's context.
	_, cleanRep := runJob(t, nil)
	manifest := manifestFrom(cleanRep)

	_, evilRep := runJob(t, nil)
	// Simulate the preload by appending the evil measurement the
	// kernel would have recorded (cheaper than a full shell run
	// here; the experiments package exercises the full path).
	evilRep.Measurements = append(evilRep.Measurements, kernel.Measurement{
		PID: evilRep.JobPID, TGID: evilRep.JobPID,
		Kind: kernel.MeasureLibrary, Name: "libattack.so", Digest: "deadbeef",
	})
	// Rebuild quote over the tampered-with-honesty log: the provider
	// *honestly reports* the evil library (it cannot omit it without
	// breaking replay).
	log := integrity.BuildLog(evilRep.Measurements, "aik")
	evilRep.Quote = log.Quote("nonce-1")

	aud := &Auditor{Manifest: manifest, AIKSeed: "aik", Nonce: "nonce-1"}
	v := aud.Audit(evilRep)
	if v.Trustworthy {
		t.Fatal("foreign code in job context trusted")
	}
	var hit bool
	for _, f := range v.Violations() {
		if f.Property == SourceIntegrity && strings.Contains(f.Detail, "libattack.so") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no source-integrity violation naming libattack.so: %v", v.Findings)
	}
}

func TestAuditDetectsTraceInterference(t *testing.T) {
	_, rep := runJob(t, nil)
	rep.Counters.TraceStops = 895_000
	rep.Counters.DebugExceptions = 895_000
	aud := &Auditor{AIKSeed: "aik", Nonce: "nonce-1"}
	v := aud.Audit(rep)
	if v.Trustworthy {
		t.Fatal("thrashed execution trusted")
	}
	var hit bool
	for _, f := range v.Violations() {
		if f.Property == ExecutionIntegrity {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no execution-integrity violation: %v", v.Findings)
	}
}

func TestAuditDetectsSchemeDivergence(t *testing.T) {
	_, rep := runJob(t, nil)
	// Inflate the billed figure 20% above the process-aware truth.
	rep.Billed.UserSec = rep.Billed.UserSec*1.2 + 1
	aud := &Auditor{AIKSeed: "aik", Nonce: "nonce-1"}
	v := aud.Audit(rep)
	if v.Trustworthy {
		t.Fatal("diverging bill trusted")
	}
	if v.OverchargeSec <= 0 {
		t.Fatalf("overcharge estimate = %v, want > 0", v.OverchargeSec)
	}
}

func TestAuditDetectsReferenceMismatch(t *testing.T) {
	_, rep := runJob(t, nil)
	aud := &Auditor{
		AIKSeed:   "aik",
		Nonce:     "nonce-1",
		Reference: &Profile{UserSec: rep.Billed.UserSec / 3, SysSec: rep.Billed.SysSec},
	}
	v := aud.Audit(rep)
	if v.Trustworthy {
		t.Fatal("3x-reference bill trusted")
	}
}

func TestAuditAcceptsMatchingReference(t *testing.T) {
	_, rep := runJob(t, nil)
	aud := &Auditor{
		AIKSeed: "aik",
		Nonce:   "nonce-1",
		Reference: &Profile{
			UserSec: rep.Billed.UserSec,
			SysSec:  rep.Billed.SysSec,
		},
	}
	if v := aud.Audit(rep); !v.Trustworthy {
		t.Fatalf("matching reference distrusted: %v", v.Violations())
	}
}

func TestPropertyStrings(t *testing.T) {
	for p, want := range map[Property]string{
		SourceIntegrity: "source-integrity", ExecutionIntegrity: "execution-integrity",
		FineGrainedMetering: "fine-grained-metering", Property(0): "unknown",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d = %q want %q", int(p), got, want)
		}
	}
	f := Finding{Property: SourceIntegrity, Violation: true, Detail: "x"}
	if !strings.Contains(f.String(), "VIOLATION") {
		t.Error("violation finding not marked")
	}
}
