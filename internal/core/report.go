// Package core is the paper's constructive contribution made
// concrete: a trustworthy CPU-usage metering scheme with the three
// properties of Section VI-B.
//
//   - Source integrity: every code object executed in the billed
//     process's context is measured into a TPM-sealed log
//     (internal/integrity); the customer verifies the log against a
//     manifest taken from a reference run on her own platform.
//   - Execution integrity: the report carries the kernel's
//     interference counters (trace stops, debug exceptions, forced
//     signal deliveries); a job that was stopped half a million times
//     by a tracer did not execute undisturbed, whatever the bill says.
//   - Fine-grained metering: the bill is computed from the TSC-exact,
//     process-aware accountant rather than tick sampling, and the
//     report exposes all three schemes so divergence itself is
//     evidence.
//
// The Auditor is the customer side: it verifies the quote, replays
// the measurement log, checks the manifest, applies anomaly detectors
// for each attack family, and compares the bill against a reference
// profile, producing a Verdict with per-property findings.
package core

import (
	"fmt"

	"repro/internal/integrity"
	"repro/internal/kernel"
	"repro/internal/metering"
	"repro/internal/proc"
	"repro/internal/sim"
)

// SchemeUsage is one accounting scheme's view of the job, in seconds.
type SchemeUsage struct {
	Scheme  string
	UserSec float64
	SysSec  float64
}

// Total returns user+system seconds.
func (s SchemeUsage) Total() float64 { return s.UserSec + s.SysSec }

// Report is what the provider hands the customer with the bill: the
// billed figure plus the attested evidence needed to verify it.
type Report struct {
	JobName string
	JobPID  proc.PID
	// FreqHz is the platform's advertised clock.
	FreqHz sim.Hz
	// Billed is the amount charged, computed by BillingScheme.
	Billed        SchemeUsage
	BillingScheme string
	// Schemes is every accountant's view of the same run.
	Schemes []SchemeUsage
	// SystemAccountSec is interrupt time the process-aware scheme
	// diverted away from jobs.
	SystemAccountSec float64
	// Counters are the kernel's per-job interference statistics.
	Counters kernel.Stats
	// Measurements is the code-identity log for the whole machine;
	// entries with TGID == JobPID are the job's own.
	Measurements []kernel.Measurement
	// Quote seals the measurement log under the platform TPM's AIK.
	Quote integrity.Quote
	// ElapsedSec is wall time from boot to report.
	ElapsedSec float64
}

// TrustedBillingScheme is the scheme a trustworthy meter bills from.
const TrustedBillingScheme = "process-aware"

// LegacyBillingScheme is the commodity tick-sampled scheme.
const LegacyBillingScheme = "jiffy"

// BuildReport assembles an attested usage report for one job from a
// finished machine. scheme selects the billing figure ("jiffy" for a
// commodity provider, TrustedBillingScheme for the paper's proposal).
func BuildReport(m *kernel.Machine, job proc.PID, jobName, scheme, aikSeed, nonce string) (*Report, error) {
	freq := m.Clock().Freq()
	rep := &Report{
		JobName:          jobName,
		JobPID:           job,
		FreqHz:           freq,
		BillingScheme:    scheme,
		Counters:         m.Stats(job),
		Measurements:     m.Measurements(),
		ElapsedSec:       m.Clock().Seconds(m.Clock().Now()),
		SystemAccountSec: 0,
	}
	for _, acct := range m.Accountants().Accountants() {
		u, ok := m.UsageBy(acct.Name(), job)
		if !ok {
			continue
		}
		us, ss := u.Seconds(freq)
		su := SchemeUsage{Scheme: acct.Name(), UserSec: us, SysSec: ss}
		rep.Schemes = append(rep.Schemes, su)
		if acct.Name() == scheme {
			rep.Billed = su
		}
	}
	if rep.Billed.Scheme == "" {
		return nil, fmt.Errorf("core: billing scheme %q not active on machine", scheme)
	}
	if sys, ok := m.UsageBy(TrustedBillingScheme, metering.SystemPID); ok {
		_, s := sys.Seconds(freq)
		rep.SystemAccountSec = s
	}
	log := integrity.BuildLog(rep.Measurements, aikSeed)
	rep.Quote = log.Quote(nonce)
	return rep, nil
}

// Scheme returns a named scheme's usage from the report.
func (r *Report) Scheme(name string) (SchemeUsage, bool) {
	for _, s := range r.Schemes {
		if s.Scheme == name {
			return s, true
		}
	}
	return SchemeUsage{}, false
}
