package attacks

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/lib"
	"repro/internal/proc"
	"repro/internal/shell"
	"repro/internal/sim"
)

const testFreq sim.Hz = 1_000_000_000

func machine(t *testing.T) *kernel.Machine {
	t.Helper()
	return kernel.New(kernel.Config{Seed: 9, CPUHz: testFreq, MaxSteps: 50_000_000})
}

// victimProg is a CPU-bound victim that calls malloc and sqrt so the
// substitution attack has call sites, and touches a hot address so
// the thrashing attack has a watch target.
func victimProg(calls int) (*guest.Program, *bool) {
	done := new(bool)
	return &guest.Program{
		Name:    "victim",
		Content: "victim-v1",
		Libs:    []string{lib.LibcName, lib.LibmName},
		Main: func(ctx guest.Context) {
			for i := 0; i < calls; i++ {
				ctx.Compute(400_000)
				ctx.Call("malloc", 64)
				ctx.Call("sqrt", 4608308318706860032) // 1e4 bits
				ctx.Load(0x7000)
			}
			*done = true
		},
	}, done
}

// launch runs the victim under cfg/attack and returns its billed and
// exact usage.
// testCalls sizes the victim long enough (~250 ms) that runtime
// attacks attach before it finishes.
const testCalls = 600

func launch(t *testing.T, attack Attack) (jiffy, tsc sim.Cycles, m *kernel.Machine) {
	t.Helper()
	m = machine(t)
	prog, done := victimProg(testCalls)
	shellCfg := shell.Config{Env: map[string]string{}}
	setup := &Setup{
		M:             m,
		Shell:         &shellCfg,
		JobEnv:        map[string]string{},
		VictimName:    "victim",
		VictimHotAddr: 0x7000,
	}
	if attack != nil {
		if err := attack.Arm(setup); err != nil {
			t.Fatal(err)
		}
	}
	sess, err := shell.Launch(m, shellCfg, shell.Job{Prog: prog, Env: setup.JobEnv})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	m.NIC().StopFlood()
	if !*done {
		t.Fatal("victim did not complete under attack")
	}
	j, _ := m.UsageBy("jiffy", sess.JobPIDs[0])
	ts, _ := m.UsageBy("tsc", sess.JobPIDs[0])
	return j.Total(), ts.Total(), m
}

func TestAllReturnsSevenAttacks(t *testing.T) {
	all := All(testFreq)
	if len(all) != 7 {
		t.Fatalf("All() = %d attacks, want 7", len(all))
	}
	keys := map[string]bool{}
	for _, a := range all {
		if a.Key() == "" || a.Name() == "" {
			t.Errorf("attack with empty identity: %T", a)
		}
		if keys[a.Key()] {
			t.Errorf("duplicate key %s", a.Key())
		}
		keys[a.Key()] = true
		if p := a.Phase(); p != "launch" && p != "runtime" {
			t.Errorf("%s phase = %q", a.Key(), p)
		}
		if tg := a.Targets(); tg != "utime" && tg != "stime" {
			t.Errorf("%s targets = %q", a.Key(), tg)
		}
	}
}

func TestShellAttackAddsExactPayload(t *testing.T) {
	base, baseTSC, _ := launch(t, nil)
	const payload = 40_000_000
	att, attTSC, _ := launch(t, &ShellAttack{PayloadCycles: payload})
	// The gain is the payload plus sub-tick scheduling residue (the
	// longer pre-exec phase shifts context-switch charges slightly).
	if gain := attTSC - baseTSC; gain < payload || gain > payload+50_000 {
		t.Fatalf("tsc gain = %d, want ~%d", gain, payload)
	}
	if att <= base {
		t.Fatal("billed time did not grow")
	}
}

func TestCtorAttackRunsBeforeMain(t *testing.T) {
	const payload = 30_000_000
	_, baseTSC, _ := launch(t, nil)
	_, attTSC, m := launch(t, &LibraryCtorAttack{PayloadCycles: payload})
	// Gain is the payload plus the extra preloaded object's
	// dynamic-link and constructor-dispatch overhead.
	if gain := attTSC - baseTSC; gain < payload || gain > payload+1_000_000 {
		t.Fatalf("tsc gain = %d, want ~%d", gain, payload)
	}
	// The evil library must appear in the measurement log.
	var seen bool
	for _, meas := range m.Measurements() {
		if meas.Name == EvilLibName {
			seen = true
		}
	}
	if !seen {
		t.Fatal("evil library not measured at load")
	}
}

func TestCtorAttackWithDestructorDoubles(t *testing.T) {
	const payload = 10_000_000
	_, ctorOnly, _ := launch(t, &LibraryCtorAttack{PayloadCycles: payload})
	_, both, _ := launch(t, &LibraryCtorAttack{PayloadCycles: payload, WithDestructor: true})
	if d := both - ctorOnly; d < payload || d > payload+10_000 {
		t.Fatalf("destructor added %d cycles, want ~%d", d, payload)
	}
}

func TestSubstitutionChargesPerCall(t *testing.T) {
	_, baseTSC, _ := launch(t, nil)
	const perCall = 100_000
	_, attTSC, _ := launch(t, &LibrarySubstitutionAttack{PerCallCycles: perCall})
	// Victim makes testCalls malloc + testCalls sqrt interposed
	// calls; the extra preloaded object also adds one dynamic-link
	// charge at exec.
	gain := attTSC - baseTSC
	want := sim.Cycles(2 * testCalls * perCall)
	if gain < want || gain > want+1_000_000 {
		t.Fatalf("substitution gain = %d, want ~%d", gain, want)
	}
}

func TestSubstitutionPreservesResults(t *testing.T) {
	// The interposer must still delegate to the genuine sqrt: the
	// victim's completion flag already asserts execution; verify the
	// genuine function's effect via a direct resolution check.
	m := machine(t)
	setup := &Setup{M: m, Shell: &shell.Config{}, JobEnv: map[string]string{}}
	if err := NewLibrarySubstitutionAttack(testFreq).Arm(setup); err != nil {
		t.Fatal(err)
	}
	if setup.JobEnv[lib.PreloadEnv] != EvilLibName {
		t.Fatal("LD_PRELOAD not set by substitution attack")
	}
	evil, ok := m.Registry().Get(EvilLibName)
	if !ok {
		t.Fatal("evil library not installed")
	}
	for _, fn := range []string{"malloc", "sqrt"} {
		if _, ok := evil.Funcs[fn]; !ok {
			t.Errorf("interposer missing %s", fn)
		}
	}
}

func TestThrashingStopsVictim(t *testing.T) {
	_, _, m := launch(t, NewThrashingAttack(0))
	var found bool
	for pid := proc.PID(1); pid <= 5; pid++ {
		st := m.Stats(pid)
		if st.DebugExceptions > 0 {
			found = true
			if st.TraceStops < st.DebugExceptions {
				t.Fatalf("trace stops %d < debug exceptions %d", st.TraceStops, st.DebugExceptions)
			}
		}
	}
	if !found {
		t.Fatal("no watchpoint hits recorded on any process")
	}
}

func TestThrashingNeedsWatchAddress(t *testing.T) {
	m := machine(t)
	setup := &Setup{M: m, Shell: &shell.Config{}, JobEnv: map[string]string{}, VictimName: "x"}
	if err := NewThrashingAttack(0).Arm(setup); err == nil {
		t.Fatal("thrashing without a watch address should fail to arm")
	}
}

func TestInterruptFloodDefaultsAndArm(t *testing.T) {
	a := NewInterruptFloodAttack(0)
	if a.PacketsPerSecond == 0 {
		t.Fatal("zero default rate")
	}
	m := machine(t)
	setup := &Setup{M: m, Shell: &shell.Config{}, JobEnv: map[string]string{}}
	if err := a.Arm(setup); err != nil {
		t.Fatal(err)
	}
	if !m.NIC().Active() {
		t.Fatal("flood not started")
	}
	m.NIC().StopFlood()
}

func TestSchedulingAttackDefaults(t *testing.T) {
	a := NewSchedulingAttack(-20, 0)
	if a.Forks != DefaultSchedulingForks {
		t.Fatalf("default forks = %d", a.Forks)
	}
	if a.Nice != -20 {
		t.Fatalf("nice = %d", a.Nice)
	}
}

func TestExceptionFloodDefaults(t *testing.T) {
	a := NewExceptionFloodAttack(0)
	if a.FootprintBytes != 2<<30 {
		t.Fatalf("default footprint = %d, want 2 GiB", a.FootprintBytes)
	}
}
