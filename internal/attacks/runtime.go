package attacks

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

// pollInterval is how often runtime attack processes re-check for
// their victim, in virtual time (2 ms).
func pollInterval(freq sim.Hz) sim.Cycles { return sim.Cycles(uint64(freq) / 500) }

// waitForVictim blocks an attack process until the victim appears,
// returning false if the machine looks victim-less for too long.
func waitForVictim(ctx guest.Context, name string, freq sim.Hz) bool {
	for i := 0; i < 5000; i++ {
		if _, ok := ctx.FindProcess(name); ok {
			return true
		}
		ctx.Sleep(pollInterval(freq))
	}
	return false
}

// --- 4. Process scheduling attack (Section IV-B1, Figs. 7 & 8) ---

// SchedulingAttack runs the paper's "Fork" program concurrently with
// the victim: a cycle of fork, wait for the no-op child to exit, and
// repeat. Every cycle relinquishes the CPU mid-jiffy, so under
// tick-sampled accounting the victim — current whenever the timer
// fires — absorbs whole ticks that the attacker partly used. Raising
// the attacker's priority (lower nice, needs root) tightens the
// interleaving and increases the overlap with the victim's run,
// which is what produces Fig. 7's gradient.
type SchedulingAttack struct {
	// Nice is the attacker's priority (0, -5, -10, -15, -20 in the
	// paper's sweep).
	Nice int
	// Forks is the total fork count; the paper uses 2^21, we default
	// to 2^19 to keep host run time reasonable (see EXPERIMENTS.md).
	Forks uint64
}

// DefaultSchedulingForks is 2^19.
const DefaultSchedulingForks = 1 << 19

// NewSchedulingAttack builds the fork-storm attack at the given nice
// value. forks == 0 selects the default count.
func NewSchedulingAttack(nice int, forks uint64) *SchedulingAttack {
	if forks == 0 {
		forks = DefaultSchedulingForks
	}
	return &SchedulingAttack{Nice: nice, Forks: forks}
}

func (a *SchedulingAttack) Key() string     { return "sched" }
func (a *SchedulingAttack) Name() string    { return "Process Scheduling Attack" }
func (a *SchedulingAttack) Phase() string   { return "runtime" }
func (a *SchedulingAttack) Targets() string { return "utime" }

// AttackerProcName is the storm process's name (the paper calls the
// program "Fork").
const AttackerProcName = "Fork"

// Arm implements Attack: it spawns the Fork process, which waits for
// the victim, raises its own priority, and runs the storm until its
// fork budget is spent or the victim exits.
func (a *SchedulingAttack) Arm(s *Setup) error {
	freq := s.M.Clock().Freq()
	victim := s.VictimName
	nice := a.Nice
	forks := a.Forks
	p, err := s.M.Spawn(kernel.SpawnConfig{
		Name:    AttackerProcName,
		Content: "fork-storm attack v1",
		Body: func(ctx guest.Context) {
			if !waitForVictim(ctx, victim, freq) {
				return
			}
			if nice != 0 {
				ctx.SetNice(nice) // requires root, per the paper
			}
			for i := uint64(0); i < forks; i++ {
				ctx.Fork("fork-child", func(c guest.Context) {
					// The child performs no operation but exits.
				})
				for {
					res, ok := ctx.Wait()
					if !ok || !res.Stopped {
						break
					}
				}
				// Periodically check whether the victim is done;
				// the storm is pointless afterwards.
				if i%512 == 511 {
					if _, ok := ctx.FindProcess(victim); !ok {
						return
					}
				}
			}
		},
	})
	if p != nil {
		s.Spawned = append(s.Spawned, p)
	}
	return err
}

// --- 5. Execution thrashing attack (Section IV-B2, Fig. 9) ---

// ThrashingAttack ptrace-attaches to the victim, programs debug
// registers DR0/DR7 with a hot address, and then continuously
// resumes the victim and waits for the next watchpoint stop. Every
// hit costs the victim a debug exception, signal handling, and two
// context switches — system time billed to the victim.
type ThrashingAttack struct {
	// WatchAddr overrides the watched address; zero uses the
	// victim's published hot address from the Setup.
	WatchAddr uint64
	// OnWrite restricts the watchpoint to stores.
	OnWrite bool
}

// NewThrashingAttack builds the thrashing attack; addr == 0 watches
// the victim's hot variable.
func NewThrashingAttack(addr uint64) *ThrashingAttack {
	return &ThrashingAttack{WatchAddr: addr}
}

func (a *ThrashingAttack) Key() string     { return "thrash" }
func (a *ThrashingAttack) Name() string    { return "Execution Thrashing Attack" }
func (a *ThrashingAttack) Phase() string   { return "runtime" }
func (a *ThrashingAttack) Targets() string { return "stime" }

// Arm implements Attack.
func (a *ThrashingAttack) Arm(s *Setup) error {
	freq := s.M.Clock().Freq()
	victim := s.VictimName
	addr := a.WatchAddr
	if addr == 0 {
		addr = s.VictimHotAddr
	}
	if addr == 0 {
		return fmt.Errorf("thrashing attack: no watch address for victim %q", victim)
	}
	onWrite := a.OnWrite
	p, err := s.M.Spawn(kernel.SpawnConfig{
		Name:    "tracer",
		Content: "ptrace thrash attack v1",
		Body: func(ctx guest.Context) {
			if !waitForVictim(ctx, victim, freq) {
				return
			}
			pid, ok := ctx.FindProcess(victim)
			if !ok {
				return
			}
			if err := ctx.Ptrace(guest.PtraceAttach, pid, 0, 0); err != nil {
				return
			}
			// Consume the attach stop, then arm DR0/DR7.
			ctx.Wait()
			var dr7 uint64 = 1
			if onWrite {
				dr7 |= 1 << 16
			}
			ctx.Ptrace(guest.PtracePokeUser, pid, guest.DR0, addr)
			ctx.Ptrace(guest.PtracePokeUser, pid, guest.DR7, dr7)
			if err := ctx.Ptrace(guest.PtraceCont, pid, 0, 0); err != nil {
				return
			}
			for {
				res, ok := ctx.Wait()
				if !ok {
					return
				}
				if !res.Stopped {
					return // victim exited
				}
				if err := ctx.Ptrace(guest.PtraceCont, pid, 0, 0); err != nil {
					return
				}
			}
		},
	})
	if p != nil {
		s.Spawned = append(s.Spawned, p)
	}
	return err
}

// --- 6. Interrupt flooding attack (Section IV-B3, Fig. 10) ---

// InterruptFloodAttack floods the host NIC with junk IP packets from
// a second machine; every packet's receive interrupt handler runs at
// the expense of whichever task is current — almost always the
// victim on a dedicated platform.
type InterruptFloodAttack struct {
	// PacketsPerSecond is the flood rate; zero selects 40k pps
	// (a saturated 100 Mb/s link of small frames, 2008-era).
	PacketsPerSecond uint64
}

// NewInterruptFloodAttack builds the flood at the given rate.
func NewInterruptFloodAttack(pps uint64) *InterruptFloodAttack {
	if pps == 0 {
		pps = 40_000
	}
	return &InterruptFloodAttack{PacketsPerSecond: pps}
}

func (a *InterruptFloodAttack) Key() string     { return "irqflood" }
func (a *InterruptFloodAttack) Name() string    { return "Interrupt Flooding Attack" }
func (a *InterruptFloodAttack) Phase() string   { return "runtime" }
func (a *InterruptFloodAttack) Targets() string { return "stime" }

// Arm implements Attack: the flood source is outside the host, so it
// simply starts at boot and runs for the whole experiment.
func (a *InterruptFloodAttack) Arm(s *Setup) error {
	s.M.NIC().StartFlood(a.PacketsPerSecond)
	return nil
}

// --- 7. Exception flooding attack (Section IV-B4, Fig. 11) ---

// ExceptionFloodAttack runs a memory hog that over-commits physical
// memory (the paper requests more than 2 GiB against a smaller RAM)
// and keeps re-dirtying it, evicting the victim's pages so the
// victim's own accesses major-fault; the fault handler time is the
// victim's system time.
type ExceptionFloodAttack struct {
	// FootprintBytes is the hog's working set; zero selects 2 GiB.
	FootprintBytes uint64
}

// NewExceptionFloodAttack builds the hog; footprint == 0 selects the
// paper's >2 GiB request.
func NewExceptionFloodAttack(footprint uint64) *ExceptionFloodAttack {
	if footprint == 0 {
		footprint = 2 << 30
	}
	return &ExceptionFloodAttack{FootprintBytes: footprint}
}

func (a *ExceptionFloodAttack) Key() string     { return "excflood" }
func (a *ExceptionFloodAttack) Name() string    { return "Exception Flooding Attack" }
func (a *ExceptionFloodAttack) Phase() string   { return "runtime" }
func (a *ExceptionFloodAttack) Targets() string { return "stime" }

// Arm implements Attack.
func (a *ExceptionFloodAttack) Arm(s *Setup) error {
	freq := s.M.Clock().Freq()
	victim := s.VictimName
	pages := a.FootprintBytes / mem.DefaultPageSize
	p, err := s.M.Spawn(kernel.SpawnConfig{
		Name:    "memhog",
		Content: "memory exhaustion attack v1",
		Body: func(ctx guest.Context) {
			if !waitForVictim(ctx, victim, freq) {
				return
			}
			base := ctx.Call1("malloc", a.FootprintBytes)
			// Continuously write data and read it back later (the
			// paper's loop), forcing allocation and re-allocation.
			for sweep := 0; ; sweep++ {
				for pg := uint64(0); pg < pages; pg += 8 {
					// Touch a block of pages per request batch to
					// bound simulation overhead; stride covers the
					// whole footprint each sweep.
					for b := uint64(0); b < 8 && pg+b < pages; b++ {
						ctx.Store(base + (pg+b)*mem.DefaultPageSize)
					}
					ctx.Compute(2000)
					if (pg/8)%64 == 63 {
						if _, ok := ctx.FindProcess(victim); !ok {
							return
						}
					}
				}
				for pg := uint64(0); pg < pages; pg += 64 {
					ctx.Load(base + pg*mem.DefaultPageSize)
					if _, ok := ctx.FindProcess(victim); !ok {
						return
					}
				}
			}
		},
	})
	if p != nil {
		s.Spawned = append(s.Spawned, p)
	}
	return err
}
