// Package attacks implements the seven CPU-time inflation attacks of
// Section IV against the simulated kernel. Every attack honours the
// paper's threat model: no kernel tampering, no modification of the
// user's submitted binary, no corruption of program output — the
// server only manipulates the environment the program runs in.
package attacks

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/lib"
	"repro/internal/proc"
	"repro/internal/shell"
	"repro/internal/sim"
)

// Setup is what an attack may manipulate before the victim job
// launches: the machine (spawn attack processes, start floods,
// install libraries), the shell configuration (inject launch code),
// and the victim job's environment (LD_PRELOAD).
type Setup struct {
	M *kernel.Machine
	// Shell is the victim's launch shell configuration; launch-time
	// attacks tamper with it.
	Shell *shell.Config
	// JobEnv is merged into the victim job's environment.
	JobEnv map[string]string
	// VictimName is the victim process's name, used by runtime
	// attacks to find their target.
	VictimName string
	// VictimHotAddr is a frequently accessed victim address (known
	// to the provider who can profile or read the submitted binary);
	// the thrashing attack watches it.
	VictimHotAddr uint64
	// Spawned records the attack's own processes, so experiments can
	// bill the attacker side (Fig. 7/8's "Fork" bars).
	Spawned []*proc.Proc
}

// Attack is one CPU-time inflation technique.
type Attack interface {
	// Key is a short stable identifier ("shell", "ctor", ...).
	Key() string
	// Name is the paper's name for the attack.
	Name() string
	// Phase is "launch" or "runtime" (Fig. 1's taxonomy).
	Phase() string
	// Targets is "utime" or "stime", the component the attack
	// inflates (Section V-C).
	Targets() string
	// Arm installs the attack.
	Arm(s *Setup) error
}

// All returns one default-strength instance of every attack, in the
// paper's presentation order.
func All(freq sim.Hz) []Attack {
	return []Attack{
		NewShellAttack(freq),
		NewLibraryCtorAttack(freq),
		NewLibrarySubstitutionAttack(freq),
		NewSchedulingAttack(-20, 0),
		NewThrashingAttack(0),
		NewInterruptFloodAttack(0),
		NewExceptionFloodAttack(0),
	}
}

// attackLoopCycles is the paper's injected payload: a loop of about
// 2^34 iterations, measured at roughly 34 seconds of user time on the
// 2.53 GHz testbed. We charge the equivalent cycles directly.
func attackLoopCycles(freq sim.Hz) sim.Cycles {
	return sim.Cycles(34 * float64(freq))
}

// --- 1. Shell attack (Section IV-A1, Fig. 4) ---

// ShellAttack patches the shell to run a CPU-bound payload between
// fork() and execve(): the paper modifies bash's
// execute_disk_command() between make_child() and shell_execve().
// The payload's time is billed to the newborn victim process.
type ShellAttack struct {
	// PayloadCycles is the injected loop's cost.
	PayloadCycles sim.Cycles
}

// NewShellAttack returns the paper-strength shell attack (~34 s).
func NewShellAttack(freq sim.Hz) *ShellAttack {
	return &ShellAttack{PayloadCycles: attackLoopCycles(freq)}
}

func (a *ShellAttack) Key() string     { return "shell" }
func (a *ShellAttack) Name() string    { return "Shell Attack" }
func (a *ShellAttack) Phase() string   { return "launch" }
func (a *ShellAttack) Targets() string { return "utime" }

// Arm implements Attack.
func (a *ShellAttack) Arm(s *Setup) error {
	s.Shell.Content = shell.StockContent + " PATCHED:execute_disk_command 2^34-loop"
	s.Shell.Inject = func(c guest.Context) {
		c.Compute(a.PayloadCycles)
	}
	return nil
}

// --- 2. Shared-library constructor attack (Section IV-A2, Fig. 5) ---

// EvilLibName is the attack shared object's name.
const EvilLibName = "libattack.so"

// LibraryCtorAttack preloads a shared object whose constructor
// (__attribute__((constructor)) test_init_t) runs the payload before
// main — loaded via LD_PRELOAD exactly as in the paper.
type LibraryCtorAttack struct {
	PayloadCycles sim.Cycles
	// WithDestructor also runs the payload at unload (the paper
	// implements only the constructor; "the destructor is similar").
	WithDestructor bool
}

// NewLibraryCtorAttack returns the paper-strength constructor attack.
func NewLibraryCtorAttack(freq sim.Hz) *LibraryCtorAttack {
	return &LibraryCtorAttack{PayloadCycles: attackLoopCycles(freq)}
}

func (a *LibraryCtorAttack) Key() string     { return "ctor" }
func (a *LibraryCtorAttack) Name() string    { return "Shared Library Constructor Attack" }
func (a *LibraryCtorAttack) Phase() string   { return "launch" }
func (a *LibraryCtorAttack) Targets() string { return "utime" }

// Arm implements Attack.
func (a *LibraryCtorAttack) Arm(s *Setup) error {
	evil := &lib.Library{
		Name:    EvilLibName,
		Content: "attack ctor/dtor payload v1",
		Constructor: func(c guest.Context) {
			c.Compute(a.PayloadCycles)
		},
	}
	if a.WithDestructor {
		evil.Destructor = func(c guest.Context) {
			c.Compute(a.PayloadCycles)
		}
	}
	s.M.Registry().Install(evil)
	s.JobEnv[lib.PreloadEnv] = EvilLibName
	return nil
}

// --- 3. Library function substitution attack (Section IV-A2, Fig. 6) ---

// LibrarySubstitutionAttack preloads fake malloc() and sqrt() that
// first run attack code and then call the genuine implementation, so
// the inflation multiplies with the victim's own call frequency.
type LibrarySubstitutionAttack struct {
	// PerCallCycles is the attack cost added to every interposed
	// call (the paper's in-function loop).
	PerCallCycles sim.Cycles
}

// NewLibrarySubstitutionAttack returns the default-strength
// substitution attack: ~0.5 ms of attack code per call, so a
// libm-heavy victim like Whetstone inflates by tens of seconds.
func NewLibrarySubstitutionAttack(freq sim.Hz) *LibrarySubstitutionAttack {
	return &LibrarySubstitutionAttack{PerCallCycles: sim.Cycles(uint64(freq) / 2000)}
}

func (a *LibrarySubstitutionAttack) Key() string     { return "subst" }
func (a *LibrarySubstitutionAttack) Name() string    { return "Library Function Substitution Attack" }
func (a *LibrarySubstitutionAttack) Phase() string   { return "launch" }
func (a *LibrarySubstitutionAttack) Targets() string { return "utime" }

// Arm implements Attack.
func (a *LibrarySubstitutionAttack) Arm(s *Setup) error {
	reg := s.M.Registry()
	libc, ok := reg.Get(lib.LibcName)
	if !ok {
		return fmt.Errorf("substitution attack: %s not installed", lib.LibcName)
	}
	libm, ok := reg.Get(lib.LibmName)
	if !ok {
		return fmt.Errorf("substitution attack: %s not installed", lib.LibmName)
	}
	genuineMalloc := libc.Funcs["malloc"]
	genuineSqrt := libm.Funcs["sqrt"]
	evil := &lib.Library{
		Name:    EvilLibName,
		Content: "attack malloc/sqrt interposer v1",
		Funcs: map[string]guest.LibFunc{
			"malloc": func(c guest.Context, args []uint64) uint64 {
				c.Compute(a.PerCallCycles)
				return genuineMalloc(c, args)
			},
			"sqrt": func(c guest.Context, args []uint64) uint64 {
				c.Compute(a.PerCallCycles)
				return genuineSqrt(c, args)
			},
		},
	}
	reg.Install(evil)
	s.JobEnv[lib.PreloadEnv] = EvilLibName
	return nil
}
