package kernel

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/lib"
	"repro/internal/proc"
	"repro/internal/sim"
)

// reqKind enumerates guest requests.
type reqKind int

const (
	rqCompute reqKind = iota + 1
	rqAccess
	rqSyscall
	rqFork
	rqThread
	rqWait
	rqExit
	rqYield
	rqSleep
	rqNice
	rqPtrace
	rqUsage
	rqExec
	rqFind
)

// request is one guest action awaiting kernel service. The guest
// goroutine fills the input fields, sends the request, and blocks on
// the task's grant channel; the kernel fills the reply fields before
// granting, so reads after the grant are race-free.
type request struct {
	kind reqKind

	// Inputs.
	cycles sim.Cycles     // rqCompute, rqSleep
	addr   uint64         // rqAccess
	write  bool           // rqAccess
	name   string         // rqSyscall, rqFork, rqThread
	body   guest.Routine  // rqFork, rqThread
	prog   *guest.Program // rqExec
	nice   int            // rqNice
	ptReq  guest.PtraceRequest
	ptPid  proc.PID
	ptAddr uint64
	ptData uint64
	code   int // rqExit

	// Replies.
	ret  uint64
	err  error
	wres guest.WaitResult
	wok  bool
	u, s sim.Cycles
}

// task couples a PCB with its guest goroutine and kernel-side
// execution state.
type task struct {
	p *proc.Proc
	m *Machine

	body guest.Routine

	req     chan *request
	grant   chan struct{}
	started bool
	gone    bool // goroutine finished (exit request seen)

	// cur is the request being serviced. pendingUser is user-mode
	// computation still to burn before cur completes (only rqCompute
	// uses it; kernel services are non-preemptible lumps). completed
	// marks a blocked request (disk wait, wait(), trace stop) whose
	// condition has been satisfied; the grant is delivered when the
	// task is next dispatched. resume, when set, is a continuation
	// run at next dispatch (finishing a watchpoint-interrupted
	// memory access).
	cur         *request
	pendingUser sim.Cycles
	completed   bool
	resume      func()

	// image is the executable identity this task runs (inherited on
	// fork, replaced by exec). linkMap is set by exec.
	image   *guest.Program
	linkMap *lib.LinkMap

	// quantumLeft is the remaining timeslice granted at dispatch.
	quantumLeft sim.Cycles

	// waitingChild marks a task blocked in Wait.
	waitingChild bool

	// watchFired marks that the in-flight memory access already took
	// its watchpoint trap, so the post-resume retry skips the check.
	watchFired bool

	// stopPending defers a SIGSTOP delivered while the task was
	// blocked: the stop takes effect when the blocking condition
	// completes, without corrupting the in-flight request.
	stopPending bool

	// blockedAt records when the task last blocked, for disk-wait
	// statistics.
	blockedAt sim.Cycles

	// tracees are the tasks this one has ptrace-attached to.
	tracees []*task

	// stopReported marks a ptrace stop already delivered to the
	// tracer via Wait.
	stopReported bool

	// wakePending marks a scheduled delayed wake so duplicate wake
	// events are not enqueued.
	wakePending bool

	// billable marks thread groups whose final usage must outlive
	// reaping: directly spawned processes and anything that exec'd a
	// program. Anonymous fork children (the scheduling attack's
	// storm) are not billable; their time folds into the parent.
	billable bool
}

// exitPanic unwinds the guest goroutine on Exit.
type exitPanic struct{ code int }

// killPanic unwinds guest goroutines when the machine shuts down.
type killPanic struct{}

// start launches the guest goroutine. Called at first dispatch; the
// kernel immediately blocks reading the first request, preserving the
// one-runnable-goroutine invariant.
func (t *task) start() {
	t.started = true
	go func() {
		code := 0
		defer func() {
			if r := recover(); r != nil {
				switch v := r.(type) {
				case exitPanic:
					code = v.code
				case killPanic:
					return // machine shut down; vanish silently
				default:
					panic(r)
				}
			}
			t.send(&request{kind: rqExit, code: code})
		}()
		ctx := &guestCtx{t: t}
		t.body(ctx)
	}()
}

// send publishes a request to the kernel, aborting if the machine is
// shutting down.
func (t *task) send(r *request) {
	select {
	case t.req <- r:
	case <-t.m.dead:
		panic(killPanic{})
	}
}

// call publishes a request and blocks until the kernel grants it.
func (t *task) call(r *request) *request {
	t.send(r)
	select {
	case <-t.grant:
	case <-t.m.dead:
		panic(killPanic{})
	}
	return r
}

// guestCtx implements guest.Context on the guest goroutine.
type guestCtx struct {
	t *task
}

var _ guest.Context = (*guestCtx)(nil)

func (c *guestCtx) PID() proc.PID { return c.t.p.PID }

func (c *guestCtx) Compute(d sim.Cycles) {
	if d == 0 {
		return
	}
	c.t.call(&request{kind: rqCompute, cycles: d})
}

func (c *guestCtx) Load(addr uint64) {
	c.t.call(&request{kind: rqAccess, addr: addr})
}

func (c *guestCtx) Store(addr uint64) {
	c.t.call(&request{kind: rqAccess, addr: addr, write: true})
}

func (c *guestCtx) Call(fn string, args ...uint64) uint64 {
	lm := c.t.linkMap
	if lm == nil {
		panic(fmt.Sprintf("kernel: task %v calls %q with no link map (not exec'd)", c.t.p, fn))
	}
	f, from, ok := lm.Resolve(fn)
	if !ok {
		panic(fmt.Sprintf("kernel: undefined symbol %q in %v", fn, c.t.p))
	}
	// PLT indirection cost, then the callee runs in this context.
	c.Compute(pltCost)
	_ = from
	return f(c, args...)
}

func (c *guestCtx) Syscall(name string) {
	c.t.call(&request{kind: rqSyscall, name: name})
}

func (c *guestCtx) Fork(name string, body guest.Routine) proc.PID {
	r := c.t.call(&request{kind: rqFork, name: name, body: body})
	return proc.PID(r.ret)
}

func (c *guestCtx) SpawnThread(name string, body guest.Routine) proc.PID {
	r := c.t.call(&request{kind: rqThread, name: name, body: body})
	return proc.PID(r.ret)
}

func (c *guestCtx) Wait() (guest.WaitResult, bool) {
	r := c.t.call(&request{kind: rqWait})
	return r.wres, r.wok
}

func (c *guestCtx) Exit(code int) {
	panic(exitPanic{code: code})
}

func (c *guestCtx) Yield() {
	c.t.call(&request{kind: rqYield})
}

func (c *guestCtx) Sleep(d sim.Cycles) {
	c.t.call(&request{kind: rqSleep, cycles: d})
}

func (c *guestCtx) SetNice(n int) {
	c.t.call(&request{kind: rqNice, nice: n})
}

func (c *guestCtx) Nice() int {
	// Safe direct read: the kernel is parked in <-t.req while guest
	// code runs, and only this task writes its own nice value.
	return c.t.p.Nice()
}

func (c *guestCtx) Getenv(key string) string {
	// Env is written only by this task or before it first runs
	// (inheritance at fork), and the kernel is parked in <-t.req
	// while guest code executes, so this access is race-free.
	return c.t.p.Env[key]
}

func (c *guestCtx) Setenv(key, value string) {
	c.t.p.Env[key] = value
}

func (c *guestCtx) FindProcess(name string) (proc.PID, bool) {
	r := c.t.call(&request{kind: rqFind, name: name})
	return proc.PID(r.ret), r.wok
}

func (c *guestCtx) Rand() *sim.Rand {
	// Safe for the same reason as Getenv: strict coroutine handoff
	// means exactly one goroutine (this one) is running now.
	return c.t.m.rng
}

func (c *guestCtx) Ptrace(req guest.PtraceRequest, pid proc.PID, addr, data uint64) error {
	r := c.t.call(&request{kind: rqPtrace, ptReq: req, ptPid: pid, ptAddr: addr, ptData: data})
	return r.err
}

func (c *guestCtx) Usage() (user, system sim.Cycles) {
	r := c.t.call(&request{kind: rqUsage})
	return r.u, r.s
}

// Exec loads a program image: the kernel charges execve and dynamic
// linking, builds the link map, and records integrity measurements;
// then constructors, main, and destructors run here in guest context,
// exactly the sandwich of Fig. 2 in the paper.
func (c *guestCtx) Exec(prog *guest.Program) {
	r := c.t.call(&request{kind: rqExec, prog: prog})
	if r.err != nil {
		panic(fmt.Sprintf("kernel: exec %q: %v", prog.Name, r.err))
	}
	libs := c.t.linkMap.Libraries()
	for _, l := range libs {
		if l.Constructor != nil {
			c.Compute(ctorDispatchCost)
			l.Constructor(c)
		}
	}
	if prog.Main != nil {
		prog.Main(c)
	}
	for i := len(libs) - 1; i >= 0; i-- {
		if d := libs[i].Destructor; d != nil {
			c.Compute(ctorDispatchCost)
			d(c)
		}
	}
}

// pltCost is the user-mode cost of one PLT-resolved library call.
const pltCost sim.Cycles = 12

// ctorDispatchCost is the loader's per-routine dispatch overhead
// around constructors/destructors.
const ctorDispatchCost sim.Cycles = 200
