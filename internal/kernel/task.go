package kernel

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/guest"
	"repro/internal/lib"
	"repro/internal/proc"
	"repro/internal/sim"
)

// reqKind enumerates guest requests.
type reqKind int

const (
	rqCompute reqKind = iota + 1
	rqAccess
	rqSyscall
	rqFork
	rqThread
	rqWait
	rqExit
	rqYield
	rqSleep
	rqNice
	rqPtrace
	rqUsage
	rqExec
	rqFind
	rqClock
	rqNetSend
	rqNetForward
	rqNetRecv
	rqNetRx
	rqNetRxWait
)

// request is one guest action awaiting kernel service. The guest
// goroutine fills the input fields, posts the request, and drives the
// machine engine until it is granted; the engine fills the reply
// fields before granting, so reads after the grant are race-free.
type request struct {
	kind reqKind

	// Inputs.
	cycles sim.Cycles     // rqCompute, rqSleep
	addr   uint64         // rqAccess; seen for rqNetRxWait
	frame  device.Frame   // rqNetSend, rqNetForward input; rqNetRecv reply
	write  bool           // rqAccess
	name   string         // rqSyscall, rqFork, rqThread
	body   guest.Routine  // rqFork, rqThread
	prog   *guest.Program // rqExec
	nice   int            // rqNice
	ptReq  guest.PtraceRequest
	ptPid  proc.PID
	ptAddr uint64
	ptData uint64
	code   int // rqExit

	// Replies.
	ret  uint64
	err  error
	wres guest.WaitResult
	wok  bool
	u, s sim.Cycles
}

// task couples a PCB with its guest goroutine and kernel-side
// execution state.
type task struct {
	p *proc.Proc
	m *Machine

	// st is the thread group's stats record, resolved once at task
	// creation so request service does not look it up per action.
	st *Stats

	body guest.Routine

	// stepFn, when non-nil, marks a flyweight task: the guest is a
	// resumable state machine driven by stepRun (see step.go) instead
	// of a goroutine, and stepCtx is its Context. stepFn holds the
	// continuation that receives the next granted request's reply.
	stepFn  guest.Step
	stepCtx stepCtx

	// forkFn clones the flyweight guest's continuation and state for a
	// machine checkpoint (see guest.ForkFunc); nil guests are not
	// snapshottable. guestState is the restored guest's state struct
	// (Forked.State), exposed via Machine.GuestState so a harvest layer
	// can read results out of a forked machine's guests.
	forkFn     guest.ForkFunc
	guestState any

	// grant parks the guest goroutine across task switches: a send
	// both completes the task's request and hands it the engine; a
	// close (machine shutdown) unwinds the guest via killPanic. Nil
	// for flyweight tasks, which never park.
	grant   chan struct{}
	started bool
	gone    bool // goroutine finished (exit request seen)

	// cur is the request being serviced, posted directly by the guest
	// goroutine (the engine is always paused while guest code runs,
	// so there is a single writer). begun marks that the kernel has
	// started servicing it; granted marks completion, read by the
	// guest's drive loop. pendingUser is user-mode computation still
	// to burn before cur completes (only rqCompute uses it; kernel
	// services are non-preemptible lumps). completed marks a blocked
	// request (disk wait, wait(), trace stop) whose condition has
	// been satisfied; the grant is delivered when the task is next
	// dispatched. resume, when set, is a continuation run at next
	// dispatch (finishing a watchpoint-interrupted memory access).
	cur         *request
	begun       bool
	granted     bool
	pendingUser sim.Cycles
	completed   bool
	resume      func()

	// image is the executable identity this task runs (inherited on
	// fork, replaced by exec). linkMap is set by exec.
	image   *guest.Program
	linkMap *lib.LinkMap

	// quantumLeft is the remaining timeslice granted at dispatch.
	quantumLeft sim.Cycles

	// waitingChild marks a task blocked in Wait.
	waitingChild bool

	// watchFired marks that the in-flight memory access already took
	// its watchpoint trap, so the post-resume retry skips the check.
	watchFired bool

	// stopPending defers a SIGSTOP delivered while the task was
	// blocked: the stop takes effect when the blocking condition
	// completes, without corrupting the in-flight request.
	stopPending bool

	// blockedAt records when the task last blocked, for disk-wait
	// statistics.
	blockedAt sim.Cycles

	// tracees are the tasks this one has ptrace-attached to.
	tracees []*task

	// stopReported marks a ptrace stop already delivered to the
	// tracer via Wait.
	stopReported bool

	// wakePending marks a scheduled delayed wake so duplicate wake
	// events are not enqueued. wakeFire is the reusable callback for
	// those events, built once in newTask so the wake path does not
	// allocate a closure per wakeup. sleepFire and swapInFire are the
	// same idea for sleep expiry and blocking swap-in completion: a
	// task has at most one of each in flight, so the steady-state
	// sleep/fault loops of the runtime attacks allocate nothing.
	wakePending bool
	wakeFire    func()
	sleepFire   func()
	swapInFire  func()

	// billable marks thread groups whose final usage must outlive
	// reaping: directly spawned processes and anything that exec'd a
	// program. Anonymous fork children (the scheduling attack's
	// storm) are not billable; their time folds into the parent.
	billable bool
}

// exitPanic unwinds the guest goroutine on Exit.
type exitPanic struct{ code int }

// killPanic unwinds guest goroutines when the machine shuts down.
type killPanic struct{}

// start launches the guest goroutine. Called by handoffTo at the
// task's first dispatch; the new goroutine immediately owns the
// engine and keeps it until its first call hands it elsewhere.
func (t *task) start() {
	t.started = true
	go func() {
		code := 0
		defer func() {
			if r := recover(); r != nil {
				switch v := r.(type) {
				case exitPanic:
					code = v.code
				case killPanic:
					return // machine shut down; vanish silently
				default:
					panic(r)
				}
			}
			t.exitAndDrive(code)
		}()
		ctx := &guestCtx{t: t}
		t.body(ctx)
	}()
}

// call posts a request and drives the machine engine until the
// request is granted, handing the engine to other goroutines across
// task switches and parking until it returns. The fast path — the
// request completes without a task switch — involves no channel
// operation or goroutine handoff at all. When a RunUntil barrier
// fires, the goroutine parks with the engine suspended and resumes
// driving at the next RunUntil.
func (t *task) call(r *request) *request {
	m := t.m
	t.cur = r
	// Service inline when we still own the CPU after the engine's
	// inter-request bookkeeping; otherwise (yielded, preempted, or
	// step budget exhausted) the request waits for dispatch.
	m.beginPosted(t)
	for !t.granted {
		if m.pauseReq {
			m.pausePark(t)
			continue
		}
		if err := m.driveStep(); err != nil {
			m.finish(err)
			panic(killPanic{})
		}
		if u := m.pendingDriver; u != nil {
			m.pendingDriver = nil
			m.handoffTo(u)
			if !t.awaitGrant() {
				panic(killPanic{})
			}
		}
	}
	t.granted = false
	return r
}

// awaitGrant parks until this task is granted (and with the grant,
// handed the engine). It reports false when the machine shut down
// instead.
func (t *task) awaitGrant() bool {
	_, ok := <-t.grant
	return ok
}

// exitAndDrive services this task's exit and then keeps driving the
// engine until it can hand it to another goroutine — or reports the
// run finished when this was the last live task. The goroutine then
// returns (dies) either way.
func (t *task) exitAndDrive(code int) {
	m := t.m
	r := request{kind: rqExit, code: code}
	t.cur = &r
	m.beginPosted(t)
	for {
		if m.live == 0 {
			m.finish(nil)
			return
		}
		if m.pauseReq {
			// Barrier while unwinding: this goroutine is dying, so
			// hand the engine back to the RunUntil caller and vanish.
			m.pauseExit()
			return
		}
		if err := m.driveStep(); err != nil {
			m.finish(err)
			return
		}
		if u := m.pendingDriver; u != nil {
			m.pendingDriver = nil
			m.handoffTo(u)
			return
		}
	}
}

// guestCtx implements guest.Context on the guest goroutine. The
// embedded request is reused for every call: a task has at most one
// request in flight and the kernel releases it (cur = nil) before
// granting, so recycling it guest-side removes a heap allocation per
// guest action. Each use reassigns the whole struct, clearing stale
// reply fields from the previous action.
type guestCtx struct {
	t *task
	r request
	// argbuf backs Call1's argument slice (see guest.LibFunc's
	// aliasing contract).
	argbuf [1]uint64
}

var _ guest.Context = (*guestCtx)(nil)

func (c *guestCtx) PID() proc.PID { return c.t.p.PID }

// do resets the reusable request to r and runs it through the kernel.
func (c *guestCtx) do(r request) *request {
	c.r = r
	return c.t.call(&c.r)
}

func (c *guestCtx) Compute(d sim.Cycles) {
	if d == 0 {
		return
	}
	c.do(request{kind: rqCompute, cycles: d})
}

func (c *guestCtx) Load(addr uint64) {
	c.do(request{kind: rqAccess, addr: addr})
}

func (c *guestCtx) Store(addr uint64) {
	c.do(request{kind: rqAccess, addr: addr, write: true})
}

func (c *guestCtx) Call(fn string, args ...uint64) uint64 {
	return c.callSym(fn, args)
}

func (c *guestCtx) Call1(fn string, a0 uint64) uint64 {
	// The scratch buffer lives in the (heap-resident) context, so
	// slicing it does not allocate; LibFunc implementations are
	// forbidden from retaining args.
	c.argbuf[0] = a0
	return c.callSym(fn, c.argbuf[:1])
}

// callSym resolves fn through the link map and runs it in this
// context, charging the PLT indirection.
func (c *guestCtx) callSym(fn string, args []uint64) uint64 {
	lm := c.t.linkMap
	if lm == nil {
		panic(fmt.Sprintf("kernel: task %v calls %q with no link map (not exec'd)", c.t.p, fn))
	}
	f, _, ok := lm.Resolve(fn)
	if !ok {
		panic(fmt.Sprintf("kernel: undefined symbol %q in %v", fn, c.t.p))
	}
	// PLT indirection cost, then the callee runs in this context.
	c.Compute(pltCost)
	return f(c, args)
}

func (c *guestCtx) Syscall(name string) error {
	r := c.do(request{kind: rqSyscall, name: name})
	return r.err
}

func (c *guestCtx) Fork(name string, body guest.Routine) proc.PID {
	r := c.do(request{kind: rqFork, name: name, body: body})
	return proc.PID(r.ret)
}

func (c *guestCtx) SpawnThread(name string, body guest.Routine) proc.PID {
	r := c.do(request{kind: rqThread, name: name, body: body})
	return proc.PID(r.ret)
}

func (c *guestCtx) Wait() (guest.WaitResult, bool) {
	r := c.do(request{kind: rqWait})
	return r.wres, r.wok
}

func (c *guestCtx) Exit(code int) {
	panic(exitPanic{code: code})
}

func (c *guestCtx) Yield() {
	c.do(request{kind: rqYield})
}

func (c *guestCtx) Sleep(d sim.Cycles) {
	c.do(request{kind: rqSleep, cycles: d})
}

func (c *guestCtx) SetNice(n int) {
	c.do(request{kind: rqNice, nice: n})
}

func (c *guestCtx) Nice() int {
	// Safe direct read: the machine engine is paused while guest
	// code runs, and only this task writes its own nice value.
	return c.t.p.Nice()
}

func (c *guestCtx) Getenv(key string) string {
	// Env is written only by this task or before it first runs
	// (inheritance at fork), and the machine engine is paused while
	// guest code executes, so this access is race-free.
	return c.t.p.Env[key]
}

func (c *guestCtx) Setenv(key, value string) {
	c.t.p.Env[key] = value
}

func (c *guestCtx) FindProcess(name string) (proc.PID, bool) {
	r := c.do(request{kind: rqFind, name: name})
	return proc.PID(r.ret), r.wok
}

func (c *guestCtx) Rand() *sim.Rand {
	// Safe for the same reason as Getenv: strict coroutine handoff
	// means exactly one goroutine (this one) is running now.
	return c.t.m.rng
}

func (c *guestCtx) Ptrace(req guest.PtraceRequest, pid proc.PID, addr, data uint64) error {
	r := c.do(request{kind: rqPtrace, ptReq: req, ptPid: pid, ptAddr: addr, ptData: data})
	return r.err
}

func (c *guestCtx) Usage() (user, system sim.Cycles) {
	r := c.do(request{kind: rqUsage})
	return r.u, r.s
}

func (c *guestCtx) ClockNow() sim.Cycles {
	r := c.do(request{kind: rqClock})
	return sim.Cycles(r.ret)
}

func (c *guestCtx) NetSend(f guest.Frame) (bool, error) {
	r := c.do(request{kind: rqNetSend, frame: f})
	return r.wok, r.err
}

func (c *guestCtx) NetForward(f guest.Frame) (bool, error) {
	r := c.do(request{kind: rqNetForward, frame: f})
	return r.wok, r.err
}

func (c *guestCtx) NetRecv() (guest.Frame, bool, error) {
	r := c.do(request{kind: rqNetRecv})
	return r.frame, r.wok, r.err
}

func (c *guestCtx) NetAddr() guest.Addr {
	// Safe direct read like Nice/Getenv: the engine is paused while
	// guest code runs, and the address is fixed at cluster wiring.
	return c.t.m.nic.Addr()
}

func (c *guestCtx) NetRx() uint64 {
	r := c.do(request{kind: rqNetRx})
	return r.ret
}

func (c *guestCtx) NetRxWait(seen uint64) uint64 {
	r := c.do(request{kind: rqNetRxWait, addr: seen})
	return r.ret
}

// Exec loads a program image: the kernel charges execve and dynamic
// linking, builds the link map, and records integrity measurements;
// then constructors, main, and destructors run here in guest context,
// exactly the sandwich of Fig. 2 in the paper.
func (c *guestCtx) Exec(prog *guest.Program) {
	r := c.do(request{kind: rqExec, prog: prog})
	if r.err != nil {
		panic(fmt.Sprintf("kernel: exec %q: %v", prog.Name, r.err))
	}
	libs := c.t.linkMap.Libraries()
	for _, l := range libs {
		if l.Constructor != nil {
			c.Compute(ctorDispatchCost)
			l.Constructor(c)
		}
	}
	if prog.Main != nil {
		prog.Main(c)
	}
	for i := len(libs) - 1; i >= 0; i-- {
		if d := libs[i].Destructor; d != nil {
			c.Compute(ctorDispatchCost)
			d(c)
		}
	}
}

// pltCost is the user-mode cost of one PLT-resolved library call.
const pltCost sim.Cycles = 12

// ctorDispatchCost is the loader's per-routine dispatch overhead
// around constructors/destructors.
const ctorDispatchCost sim.Cycles = 200
