package kernel

import (
	"fmt"
	"strings"

	"repro/internal/guest"
	"repro/internal/sim"
)

// PPMScale is the denominator of SyscallFault probabilities: one
// million, so ProbPPM is parts-per-million.
const PPMScale = 1_000_000

// SyscallFault arms error injection for one syscall class: each
// request of that class independently fails with the given errno at
// ProbPPM parts-per-million probability. A zero ProbPPM entry is
// inert — it is never installed, draws nothing from the fault stream,
// and leaves the machine byte-identical to an unfaulted one.
type SyscallFault struct {
	Name    string
	Errno   guest.Errno
	ProbPPM uint32
}

// FaultSpec is the machine's chaos configuration: which syscalls can
// fail and how often. Draws come from a dedicated splitmix64 stream
// (never the machine's main rng), so arming faults perturbs only the
// faulted requests and runs replay bit-for-bit for a given Seed.
type FaultSpec struct {
	// Seed seeds the fault stream; zero derives one from the machine
	// seed so distinct machines draw distinct fault histories.
	Seed int64
	// Syscalls lists the armed fault points.
	Syscalls []SyscallFault
}

// Validate reports the first malformed entry: a name outside the
// syscall namespace, an unknown errno, or a probability past
// PPMScale. Upper layers (cluster specs, CLI flags) call it to turn
// bad configs into usage errors before New panics. The name check
// matters most: a typo'd entry would otherwise arm nothing and let a
// chaos run report a clean bill that tested nothing.
func (s *FaultSpec) Validate() error {
	if s == nil {
		return nil
	}
	for _, sf := range s.Syscalls {
		if !IsKnownSyscall(sf.Name) {
			return fmt.Errorf("fault %q: unknown syscall (known: %s)", sf.Name, strings.Join(knownSyscallNames, ", "))
		}
		if sf.ProbPPM > PPMScale {
			return fmt.Errorf("fault %q: probability %d ppm exceeds %d", sf.Name, sf.ProbPPM, PPMScale)
		}
		switch sf.Errno {
		case guest.EIO, guest.EAGAIN, guest.ENOMEM:
		default:
			return fmt.Errorf("fault %q: unknown errno %d (want EIO/EAGAIN/ENOMEM)", sf.Name, sf.Errno)
		}
	}
	return nil
}

// initFaults installs the spec's live entries. Like an unknown
// scheduler policy, a malformed spec is a construction bug and
// panics; validate ahead of New to get an error instead.
func (m *Machine) initFaults(spec *FaultSpec) {
	if spec == nil {
		return
	}
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("kernel: %v", err))
	}
	for _, sf := range spec.Syscalls {
		if sf.ProbPPM == 0 {
			continue
		}
		if m.faults == nil {
			m.faults = make(map[string]SyscallFault, len(spec.Syscalls))
		}
		m.faults[sf.Name] = sf
	}
	if m.faults == nil {
		return
	}
	seed := spec.Seed
	if seed == 0 {
		// Derive from the machine seed with an offset so the fault
		// stream never aliases the machine's own rng stream.
		seed = m.cfg.Seed*0x9e3779b9 + 0x7f4a7c15
	}
	m.faultRNG = sim.NewRand(seed)
}

// injectFault rolls the fault die for one request of the named
// syscall class. Classes with no armed entry draw nothing, so an
// unfaulted machine's histories are untouched.
func (m *Machine) injectFault(name string) (guest.Errno, bool) {
	if m.faults == nil {
		return 0, false
	}
	sf, ok := m.faults[name]
	if !ok {
		return 0, false
	}
	if uint32(m.faultRNG.Int63n(PPMScale)) >= sf.ProbPPM {
		return 0, false
	}
	m.faultsInjected++
	return sf.Errno, true
}

// FaultsInjected reports how many syscalls this machine has failed
// through its FaultSpec.
func (m *Machine) FaultsInjected() uint64 { return m.faultsInjected }
