// Machine checkpointing: Snapshot freezes a quiescent machine's
// entire deterministic state into a MachineImage, Restore builds a
// fresh machine from one, and Fork is the two composed. An image is
// immutable — restoring from it never consumes it, so one warmed-up
// prefix can seed any number of divergent continuations (the campaign
// layer's shared-warmup fan-out).
//
// What an image holds: the virtual clock and CPU cycle ledgers, the
// event queue (every pending event's kind/tag/time and its exact
// insertion sequence number, since same-time events fire in sequence
// order), both splitmix64 streams (machine and fault), the memory
// subsystem with its LRU chain, the process table, scheduler
// runqueues, every metering ledger, NIC and disk device state, the
// kernel receive ring, and each task's kernel-side execution state
// plus — for flyweight guests — a cloned guest continuation obtained
// through the guest's ForkFunc.
//
// What cannot be checkpointed: a guest running on the goroutine
// compat driver (SpawnConfig.Body) that has already started — its
// state lives in a parked goroutine stack the simulator cannot
// serialise — and flyweight guests spawned without a Fork function.
// Snapshot reports both as ErrNotSnapshottable. Events owned by a
// cluster ("pipe-service", "irq-work" scheduled by cluster wiring)
// snapshot fine but only restore through the cluster layer, which
// supplies the resolver for them.
package kernel

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/device"
	"repro/internal/guest"
	"repro/internal/lib"
	"repro/internal/mem"
	"repro/internal/metering"
	"repro/internal/proc"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ErrNotSnapshottable marks machine state that cannot be frozen: a
// started goroutine-driver guest (its continuation is a parked Go
// stack), a flyweight guest without a Fork function, or an engine
// suspended inside a guest goroutine. Callers branch on it with
// errors.Is to fall back to re-running setup from scratch.
var ErrNotSnapshottable = errors.New("kernel: machine state is not snapshottable")

// MachineImage is a frozen machine: a quiescent deep copy of every
// piece of deterministic state, detached from any live machine.
// Images are immutable — Restore clones out of them — and opaque;
// build one with Machine.Snapshot.
type MachineImage struct {
	cfg   Config
	cpu   *cpu.CPU
	queue sim.QueueImage

	rngState      uint64
	hasFaultRNG   bool
	faultRNGState uint64
	faultsInject  uint64

	mem    *mem.Memory
	table  *proc.Table
	spaces map[proc.PID]*mem.Space
	sched  sched.Scheduler
	acct   *metering.Multi
	nic    *device.NIC
	disk   *device.Disk

	tickCycles sim.Cycles
	nextTickAt sim.Cycles

	tasks      []taskImage
	currentPID proc.PID // 0 = CPU idle
	lastRunPID proc.PID // 0 = none (or already reaped, which restores the same)
	live       int

	netWaiterPIDs []proc.PID
	rxFrames      []device.Frame
	rxDropped     uint64

	needResched bool
	steps       uint64

	stats         map[proc.PID]*Stats
	measurements  []Measurement
	measuredKeys  map[measureKey]bool
	groupCount    map[proc.PID]int
	finalUsage    map[string]map[proc.PID]metering.Usage
	finalChildren map[string]map[proc.PID]metering.Usage
}

// taskImage is one task's frozen kernel-side state. For flyweight
// guests stepFn/forkFn hold a cloned continuation private to the
// image; each Restore forks it again, so the image stays reusable.
type taskImage struct {
	pid     proc.PID
	started bool
	gone    bool

	body       guest.Routine // never-started goroutine guests only
	stepFn     guest.Step
	forkFn     guest.ForkFunc
	guestState any

	hasCur    bool
	req       request
	begun     bool
	completed bool
	hasResume bool

	pendingUser sim.Cycles
	image       *guest.Program
	linkMap     *lib.LinkMap
	quantumLeft sim.Cycles

	waitingChild bool
	watchFired   bool
	stopPending  bool
	blockedAt    sim.Cycles
	traceePIDs   []proc.PID
	stopReported bool
	wakePending  bool
	billable     bool
}

// At reports the image's frozen virtual time — the barrier the
// machine was paused at when snapshotted.
func (img *MachineImage) At() sim.Cycles { return img.cpu.Clock().Now() }

// PendingEvents reports how many events the image carries.
func (img *MachineImage) PendingEvents() int { return len(img.queue.Events) }

// Tasks reports how many tasks (live or zombie) the image carries.
func (img *MachineImage) Tasks() int { return len(img.tasks) }

// Snapshot freezes the machine into an image. The machine must be
// quiescent: between Run/RunUntil calls (typically paused at a
// RunUntil barrier) and not shut down. The machine itself is
// untouched and can keep running afterwards. Returns an error
// wrapping ErrNotSnapshottable when the state cannot be frozen.
func (m *Machine) Snapshot() (*MachineImage, error) {
	switch {
	case m.closed:
		return nil, fmt.Errorf("%w: machine is shut down", ErrNotSnapshottable)
	case m.pausedDriver != nil || m.driver != nil:
		return nil, fmt.Errorf("%w: a goroutine guest holds the suspended engine (machines with started Body tasks cannot checkpoint)", ErrNotSnapshottable)
	case m.pendingDriver != nil || m.pauseReq:
		return nil, fmt.Errorf("%w: machine is mid-drive; snapshot between Run/RunUntil calls", ErrNotSnapshottable)
	}

	img := &MachineImage{
		cfg:          m.cfg,
		cpu:          m.cpu.Clone(),
		queue:        m.queue.Snapshot(),
		rngState:     m.rng.State(),
		faultsInject: m.faultsInjected,
		tickCycles:   m.tickCycles,
		nextTickAt:   m.nextTickAt,
		currentPID:   taskPID(m.current),
		live:         m.live,
		rxDropped:    m.rxDropped,
		needResched:  m.needResched,
		steps:        m.steps,
	}
	// The accountants listed in cfg were consumed at construction; the
	// image carries the cloned Multi instead, so drop the aliases.
	img.cfg.Accountants = nil
	if m.faultRNG != nil {
		img.hasFaultRNG = true
		img.faultRNGState = m.faultRNG.State()
	}
	for _, ei := range img.queue.Events {
		if ei.Kind == "barrier" {
			return nil, fmt.Errorf("%w: a RunUntil barrier event is pending", ErrNotSnapshottable)
		}
	}
	if lr := taskPID(m.lastRun); lr != 0 {
		if _, ok := m.tasks[lr]; ok {
			// A reaped lastRun restores as none: both can only compare
			// unequal to every future dispatch, so the context-switch
			// charges are identical.
			img.lastRunPID = lr
		}
	}

	var smap map[*mem.Space]*mem.Space
	img.mem, smap = m.mem.Clone()
	var pmap map[*proc.Proc]*proc.Proc
	img.table, pmap = m.table.Clone()
	img.spaces = make(map[proc.PID]*mem.Space)
	for _, p := range m.table.All() {
		if p.Space != nil {
			img.spaces[p.PID] = smap[p.Space]
		}
	}
	img.sched = m.sched.Clone(pmap)
	img.acct = m.acct.Clone().(*metering.Multi)
	img.nic = m.nic.Clone(nil, nil, nil, nil)
	img.disk = m.disk.Clone(nil, nil)

	pids := make([]proc.PID, 0, len(m.tasks))
	//simlint:unordered-ok key collection is sorted before use
	for pid := range m.tasks {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	img.tasks = make([]taskImage, 0, len(pids))
	for _, pid := range pids {
		ti, err := m.snapshotTask(m.tasks[pid])
		if err != nil {
			return nil, err
		}
		img.tasks = append(img.tasks, ti)
	}

	for _, t := range m.netWaiters {
		img.netWaiterPIDs = append(img.netWaiterPIDs, t.p.PID)
	}
	for i := 0; i < m.rxLen; i++ {
		img.rxFrames = append(img.rxFrames, m.rxBuf[(m.rxHead+i)%len(m.rxBuf)])
	}

	img.stats = make(map[proc.PID]*Stats, len(m.stats))
	//simlint:unordered-ok deep copy into a map keyed identically
	for pid, s := range m.stats {
		cp := *s
		img.stats[pid] = &cp
	}
	img.measurements = append([]Measurement(nil), m.measurements...)
	img.measuredKeys = make(map[measureKey]bool, len(m.measuredKeys))
	//simlint:unordered-ok set copy; membership only
	for k := range m.measuredKeys {
		img.measuredKeys[k] = true
	}
	img.groupCount = make(map[proc.PID]int, len(m.groupCount))
	//simlint:unordered-ok map-to-map copy
	for k, v := range m.groupCount {
		img.groupCount[k] = v
	}
	img.finalUsage = copyFinal(m.finalUsage)
	img.finalChildren = copyFinal(m.finalChildren)
	return img, nil
}

func taskPID(t *task) proc.PID {
	if t == nil {
		return 0
	}
	return t.p.PID
}

func copyFinal(src map[string]map[proc.PID]metering.Usage) map[string]map[proc.PID]metering.Usage {
	out := make(map[string]map[proc.PID]metering.Usage, len(src))
	copyFinalInto(out, src)
	return out
}

func copyFinalInto(dst, src map[string]map[proc.PID]metering.Usage) {
	//simlint:unordered-ok nested map-to-map copy
	for scheme, inner := range src {
		ci := make(map[proc.PID]metering.Usage, len(inner))
		//simlint:unordered-ok nested map-to-map copy
		for pid, u := range inner {
			ci[pid] = u
		}
		dst[scheme] = ci
	}
}

// snapshotTask freezes one task. Flyweight guests are cloned through
// their ForkFunc; started goroutine guests are rejected.
func (m *Machine) snapshotTask(t *task) (taskImage, error) {
	ti := taskImage{
		pid:          t.p.PID,
		started:      t.started,
		gone:         t.gone,
		begun:        t.begun,
		completed:    t.completed,
		hasResume:    t.resume != nil,
		pendingUser:  t.pendingUser,
		image:        t.image,
		linkMap:      t.linkMap,
		quantumLeft:  t.quantumLeft,
		waitingChild: t.waitingChild,
		watchFired:   t.watchFired,
		stopPending:  t.stopPending,
		blockedAt:    t.blockedAt,
		stopReported: t.stopReported,
		wakePending:  t.wakePending,
		billable:     t.billable,
	}
	if t.granted {
		return ti, fmt.Errorf("%w: task %v holds an undelivered grant", ErrNotSnapshottable, t.p)
	}
	switch {
	case t.stepFn != nil:
		if t.forkFn == nil {
			return ti, fmt.Errorf("%w: task %v runs a flyweight guest spawned without a Fork function", ErrNotSnapshottable, t.p)
		}
		fk, err := t.forkFn(t.stepFn)
		if err != nil {
			return ti, fmt.Errorf("snapshot task %v: fork guest: %w", t.p, err)
		}
		if fk.Step == nil || fk.Fork == nil {
			return ti, fmt.Errorf("snapshot task %v: guest fork returned an incomplete clone", t.p)
		}
		ti.stepFn, ti.forkFn, ti.guestState = fk.Step, fk.Fork, fk.State
	case t.body != nil && t.started && !t.gone:
		return ti, fmt.Errorf("%w: task %v runs on the goroutine driver with a parked stack (spawn with Step + Fork to checkpoint)", ErrNotSnapshottable, t.p)
	case !t.started:
		ti.body = t.body
	}
	if t.cur != nil {
		if t.cur != &t.stepCtx.r {
			return ti, fmt.Errorf("%w: task %v has an in-flight goroutine-driver request", ErrNotSnapshottable, t.p)
		}
		ti.hasCur = true
		ti.req = *t.cur
	}
	if ti.hasResume && !ti.hasCur {
		return ti, fmt.Errorf("%w: task %v has a resume continuation with no in-flight request", ErrNotSnapshottable, t.p)
	}
	for _, tr := range t.tracees {
		ti.traceePIDs = append(ti.traceePIDs, tr.p.PID)
	}
	return ti, nil
}

// RestoreResolver supplies Fire callbacks for event kinds the kernel
// does not own ("pipe-service", "irq-work"): the cluster layer passes
// one to RestoreWith so its wiring-held events survive a checkpoint.
type RestoreResolver func(kind string, tag uint64) (func(), bool)

// Restore builds a new machine from an image. The image is not
// consumed: restoring twice yields two independent machines that
// diverge only through post-restore inputs. Restore fails on events
// owned by a cluster — restore those machines through the cluster's
// own Restore, which supplies the resolver for its event kinds.
func Restore(img *MachineImage) (*Machine, error) {
	return img.restore(nil, nil)
}

// RestoreWith is Restore with an external resolver for event kinds
// the kernel does not own. The cluster layer uses it.
func RestoreWith(img *MachineImage, ext RestoreResolver) (*Machine, error) {
	return img.restore(ext, nil)
}

// Fork checkpoints this machine and restores the image into a new,
// fully independent machine frozen at the same instant. The original
// keeps running. Fails with ErrNotSnapshottable exactly when
// Snapshot does.
func (m *Machine) Fork() (*Machine, error) {
	img, err := m.Snapshot()
	if err != nil {
		return nil, err
	}
	return Restore(img)
}

// GuestState returns the state struct a restored flyweight guest's
// fork exposed (guest.Forked.State), so a harvest layer can read
// results out of a forked machine's guests; nil when the task is
// unknown or its guest exposed none.
func (m *Machine) GuestState(pid proc.PID) any {
	if t := m.tasks[pid]; t != nil {
		return t.guestState
	}
	return nil
}

// restore builds a machine from the image, optionally into a
// recycled shell (whose allocated containers are reused) and with an
// external resolver for cluster-owned event kinds.
func (img *MachineImage) restore(ext RestoreResolver, shell *Machine) (*Machine, error) {
	m := shell
	if m == nil {
		m = &Machine{
			queue:         sim.NewEventQueue(),
			rng:           sim.NewRand(0),
			tasks:         make(map[proc.PID]*task),
			stats:         make(map[proc.PID]*Stats),
			measuredKeys:  make(map[measureKey]bool),
			groupCount:    make(map[proc.PID]int),
			finalUsage:    make(map[string]map[proc.PID]metering.Usage),
			finalChildren: make(map[string]map[proc.PID]metering.Usage),
			runDone:       make(chan runSignal, 1),
		}
	} else {
		m.scrub()
	}
	m.cfg = img.cfg
	m.reg = img.cfg.Registry
	m.cpu = img.cpu.Clone()
	m.clock = m.cpu.Clock()
	m.rng.SetState(img.rngState)
	m.tickCycles = img.tickCycles
	m.nextTickAt = img.nextTickAt
	m.steps = img.steps
	m.needResched = img.needResched
	m.live = img.live
	m.rxDropped = img.rxDropped

	m.timerFire = m.timerTick
	m.preemptFire = func() { m.needResched = true }
	m.writebackFire = m.diskIRQ
	m.barrierFire = func() { m.pauseReq = true }

	var smap map[*mem.Space]*mem.Space
	m.mem, smap = img.mem.Clone()
	var pmap map[*proc.Proc]*proc.Proc
	m.table, pmap = img.table.Clone()
	for _, p := range m.table.All() {
		if sp := img.spaces[p.PID]; sp != nil {
			p.Space = smap[sp]
		}
	}
	m.sched = img.sched.Clone(pmap)
	m.acct = img.acct.Clone().(*metering.Multi)
	m.nic = img.nic.Clone(m.queue, m.clock, m.rng, m.nicRx)
	m.disk = img.disk.Clone(m.queue, m.clock)

	m.faults = nil
	m.faultRNG = nil
	m.faultsInjected = img.faultsInject
	m.initFaults(m.cfg.Faults)
	if m.faultRNG != nil && img.hasFaultRNG {
		m.faultRNG.SetState(img.faultRNGState)
	}

	//simlint:unordered-ok deep copy into a map keyed identically
	for pid, s := range img.stats {
		cp := *s
		m.stats[pid] = &cp
	}
	m.measurements = append(m.measurements, img.measurements...)
	//simlint:unordered-ok set copy; membership only
	for k := range img.measuredKeys {
		m.measuredKeys[k] = true
	}
	//simlint:unordered-ok map-to-map copy
	for k, v := range img.groupCount {
		m.groupCount[k] = v
	}
	copyFinalInto(m.finalUsage, img.finalUsage)
	copyFinalInto(m.finalChildren, img.finalChildren)

	for i := range img.tasks {
		if err := m.restoreTask(&img.tasks[i]); err != nil {
			return nil, err
		}
	}
	// Second pass: inter-task references.
	for i := range img.tasks {
		ti := &img.tasks[i]
		if len(ti.traceePIDs) == 0 {
			continue
		}
		t := m.tasks[ti.pid]
		for _, tp := range ti.traceePIDs {
			tr := m.tasks[tp]
			if tr == nil {
				return nil, fmt.Errorf("kernel: restore: task %d traces unknown pid %d", ti.pid, tp)
			}
			t.tracees = append(t.tracees, tr)
		}
	}
	if img.currentPID != 0 {
		m.current = m.tasks[img.currentPID]
		if m.current == nil {
			return nil, fmt.Errorf("kernel: restore: current task %d missing", img.currentPID)
		}
	}
	if img.lastRunPID != 0 {
		m.lastRun = m.tasks[img.lastRunPID]
	}
	for _, pid := range img.netWaiterPIDs {
		t := m.tasks[pid]
		if t == nil {
			return nil, fmt.Errorf("kernel: restore: net waiter %d missing", pid)
		}
		m.netWaiters = append(m.netWaiters, t)
	}
	if n := len(img.rxFrames); n > 0 {
		if len(m.rxBuf) != m.rxBufCap() {
			m.rxBuf = make([]device.Frame, m.rxBufCap())
		}
		copy(m.rxBuf, img.rxFrames)
		m.rxHead, m.rxLen = 0, n
	}

	var resErr error
	restored := m.queue.RestoreInto(img.queue, func(kind string, tag uint64) func() {
		fn, err := m.resolveFire(kind, tag, ext)
		if err != nil && resErr == nil {
			resErr = err
		}
		return fn
	})
	if resErr != nil {
		return nil, resErr
	}
	for i, e := range restored {
		ei := img.queue.Events[i]
		if ei.Kind == "nic-rx" && device.FloodTag(ei.Tag) {
			m.nic.AdoptPending(e)
		}
	}
	return m, nil
}

// resolveFire rebuilds one pending event's Fire callback from its
// (kind, tag) identity on the restored machine.
func (m *Machine) resolveFire(kind string, tag uint64, ext RestoreResolver) (func(), error) {
	nop := func() {}
	taskFire := func(pick func(*task) func()) (func(), error) {
		t := m.tasks[proc.PID(tag)]
		if t == nil {
			return nop, fmt.Errorf("kernel: restore: %q event for unknown pid %d", kind, tag)
		}
		return pick(t), nil
	}
	switch kind {
	case sim.KindTimer:
		return m.timerFire, nil
	case "preempt":
		return m.preemptFire, nil
	case "disk-write":
		return m.writebackFire, nil
	case "wake":
		return taskFire(func(t *task) func() { return t.wakeFire })
	case "sleep-wake":
		return taskFire(func(t *task) func() { return t.sleepFire })
	case "disk-read":
		return taskFire(func(t *task) func() { return t.swapInFire })
	case "nic-rx":
		if fn, ok := m.nic.RestoreFire(tag); ok {
			return fn, nil
		}
		return nop, fmt.Errorf("kernel: restore: unknown nic-rx tag %d", tag)
	default:
		if ext != nil {
			if fn, ok := ext(kind, tag); ok {
				return fn, nil
			}
		}
		return nop, fmt.Errorf("kernel: restore: event kind %q is not kernel-owned (cluster wiring events restore through cluster.Restore)", kind)
	}
}

// restoreTask rebuilds one task from its image, forking the image's
// frozen guest continuation so the image stays reusable.
func (m *Machine) restoreTask(ti *taskImage) error {
	p, ok := m.table.Get(ti.pid)
	if !ok {
		return fmt.Errorf("kernel: restore: task %d missing from process table", ti.pid)
	}
	t := m.newTask(p, ti.body)
	t.started = ti.started
	t.gone = ti.gone
	t.pendingUser = ti.pendingUser
	t.image = ti.image
	t.linkMap = ti.linkMap
	t.quantumLeft = ti.quantumLeft
	t.waitingChild = ti.waitingChild
	t.watchFired = ti.watchFired
	t.stopPending = ti.stopPending
	t.blockedAt = ti.blockedAt
	t.stopReported = ti.stopReported
	t.wakePending = ti.wakePending
	t.billable = ti.billable
	if ti.forkFn != nil {
		fk, err := ti.forkFn(ti.stepFn)
		if err != nil {
			return fmt.Errorf("kernel: restore task %v: fork guest: %w", p, err)
		}
		if fk.Step == nil || fk.Fork == nil {
			return fmt.Errorf("kernel: restore task %v: guest fork returned an incomplete clone", p)
		}
		t.stepFn = fk.Step
		t.forkFn = fk.Fork
		t.guestState = fk.State
		t.stepCtx.t = t
	}
	if ti.hasCur {
		t.stepCtx.t = t
		t.stepCtx.r = ti.req
		t.cur = &t.stepCtx.r
		t.begun = ti.begun
		t.completed = ti.completed
	}
	if ti.hasResume {
		// The only resume continuation the kernel parks is the
		// watchpoint-interrupted access retry (see debugTrap), which is
		// fully determined by the in-flight request.
		req := t.cur
		t.resume = func() { m.serviceAccess(t, req, true) }
	}
	return nil
}

// scrub resets a recycled machine shell for restore, keeping its
// allocated containers (maps, event queue free list, rng, run
// channel) so a Pool.Get allocates far less than a fresh build.
func (m *Machine) scrub() {
	clear(m.tasks)
	clear(m.stats)
	clear(m.measuredKeys)
	clear(m.groupCount)
	clear(m.finalUsage)
	clear(m.finalChildren)
	clear(m.rxBuf)
	m.queue.Reset()
	m.measurements = m.measurements[:0]
	m.netWaiters = m.netWaiters[:0]
	m.rxHead, m.rxLen, m.rxDropped = 0, 0, 0
	m.current, m.lastRun = nil, nil
	m.driver, m.pendingDriver, m.pausedDriver = nil, nil, nil
	m.pauseReq, m.needResched, m.closed = false, false, false
	m.faultsInjected = 0
	m.live, m.steps = 0, 0
	//simlint:gotime-ok shell reset between runs: drains a stale done token from the retired machine's own signal channel; no guest observes it
	select {
	//simlint:gotime-ok shell reset between runs: drains a stale done token from the retired machine's own signal channel; no guest observes it
	case <-m.runDone:
	default:
	}
}

// Pool recycles finished machines' allocated scaffolding across
// Restore calls: Get restores an image into a recycled shell when
// one is available, Put retires a finished machine into the pool.
// Campaigns that restore one warmed-up image per variant use it to
// avoid re-paying machine construction per variant. Not safe for
// concurrent use; give each worker its own Pool.
type Pool struct {
	free []*Machine
}

// Get restores img, reusing a pooled machine shell when available.
func (p *Pool) Get(img *MachineImage) (*Machine, error) {
	var shell *Machine
	if n := len(p.free); n > 0 {
		shell = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	return img.restore(nil, shell)
}

// Put shuts m down and parks its shell for reuse by a later Get.
func (p *Pool) Put(m *Machine) {
	if m == nil {
		return
	}
	m.Shutdown()
	p.free = append(p.free, m)
}
