package kernel

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/proc"
	"repro/internal/sim"
)

// This file is the flyweight guest driver: tasks spawned with
// SpawnConfig.Step run as resumable state machines (guest.Step) with
// no goroutine, no grant channel, and no parked stack. The engine
// invokes one activation per granted request, on whatever goroutine
// is currently driving the machine; an activation posts its next
// request through the same beginPosted entry point the goroutine
// driver uses, so the two drivers produce identical machine
// histories. The goroutine driver (task.go) remains the compat path
// for guests that need Call/Exec or arbitrary blocking Routine code.

// stepCtx implements guest.Context for a flyweight task. Like
// guestCtx it embeds the task's single reusable request; unlike
// guestCtx its posting methods do not block — they post the request,
// run the engine's inter-request bookkeeping (which may service the
// request synchronously), and return zero values. The real reply is
// delivered as the next activation's Resume.
type stepCtx struct {
	t *task
	r request
	// posted marks this activation's single allowed post.
	posted bool
}

var _ guest.Context = (*stepCtx)(nil)

// post offers the request already written into c.r to the engine.
// Mirrors task.call's posting exactly, minus the drive loop: a
// flyweight task never drives the engine, it returns to whoever does.
// Callers assign c.r with a full struct literal first — assigning in
// place rather than passing the request by value keeps a post to a
// single struct copy, which the activation loop is hot enough to feel.
func (c *stepCtx) post() {
	if c.posted {
		panic(fmt.Sprintf("kernel: flyweight task %v posted two requests in one activation (a kernel request must be the activation's last action)", c.t.p))
	}
	c.posted = true
	t := c.t
	t.cur = &c.r
	t.m.beginPosted(t)
}

// takeResume harvests the serviced request's reply fields.
func (c *stepCtx) takeResume() guest.Resume {
	r := &c.r
	return guest.Resume{
		OK:    r.wok,
		Ret:   r.ret,
		Err:   r.err,
		Frame: r.frame,
		Wres:  r.wres,
		User:  r.u,
		Sys:   r.s,
	}
}

func (c *stepCtx) PID() proc.PID { return c.t.p.PID }

func (c *stepCtx) Compute(d sim.Cycles) {
	if d == 0 {
		return
	}
	c.r = request{kind: rqCompute, cycles: d}
	c.post()
}

func (c *stepCtx) Load(addr uint64) {
	c.r = request{kind: rqAccess, addr: addr}
	c.post()
}

func (c *stepCtx) Store(addr uint64) {
	c.r = request{kind: rqAccess, addr: addr, write: true}
	c.post()
}

func (c *stepCtx) Call(fn string, args ...uint64) uint64 {
	panic(fmt.Sprintf("kernel: flyweight task %v used Call (library code has no resumable form; spawn with Body)", c.t.p))
}

func (c *stepCtx) Call1(fn string, a0 uint64) uint64 {
	panic(fmt.Sprintf("kernel: flyweight task %v used Call1 (library code has no resumable form; spawn with Body)", c.t.p))
}

func (c *stepCtx) Syscall(name string) error {
	c.r = request{kind: rqSyscall, name: name}
	c.post()
	return nil
}

func (c *stepCtx) Fork(name string, body guest.Routine) proc.PID {
	c.r = request{kind: rqFork, name: name, body: body}
	c.post()
	return 0
}

func (c *stepCtx) SpawnThread(name string, body guest.Routine) proc.PID {
	c.r = request{kind: rqThread, name: name, body: body}
	c.post()
	return 0
}

func (c *stepCtx) Wait() (guest.WaitResult, bool) {
	c.r = request{kind: rqWait}
	c.post()
	return guest.WaitResult{}, false
}

func (c *stepCtx) Exit(code int) {
	panic(exitPanic{code: code})
}

func (c *stepCtx) Yield() {
	c.r = request{kind: rqYield}
	c.post()
}

func (c *stepCtx) Sleep(d sim.Cycles) {
	c.r = request{kind: rqSleep, cycles: d}
	c.post()
}

func (c *stepCtx) SetNice(n int) {
	c.r = request{kind: rqNice, nice: n}
	c.post()
}

func (c *stepCtx) Nice() int {
	return c.t.p.Nice()
}

func (c *stepCtx) Getenv(key string) string {
	return c.t.p.Env[key]
}

func (c *stepCtx) Setenv(key, value string) {
	c.t.p.Env[key] = value
}

func (c *stepCtx) FindProcess(name string) (proc.PID, bool) {
	c.r = request{kind: rqFind, name: name}
	c.post()
	return 0, false
}

func (c *stepCtx) Rand() *sim.Rand {
	return c.t.m.rng
}

func (c *stepCtx) Ptrace(req guest.PtraceRequest, pid proc.PID, addr, data uint64) error {
	c.r = request{kind: rqPtrace, ptReq: req, ptPid: pid, ptAddr: addr, ptData: data}
	c.post()
	return nil
}

func (c *stepCtx) Usage() (user, system sim.Cycles) {
	c.r = request{kind: rqUsage}
	c.post()
	return 0, 0
}

func (c *stepCtx) ClockNow() sim.Cycles {
	c.r = request{kind: rqClock}
	c.post()
	return 0
}

func (c *stepCtx) NetSend(f guest.Frame) (bool, error) {
	c.r = request{kind: rqNetSend, frame: f}
	c.post()
	return false, nil
}

func (c *stepCtx) NetForward(f guest.Frame) (bool, error) {
	c.r = request{kind: rqNetForward, frame: f}
	c.post()
	return false, nil
}

func (c *stepCtx) NetRecv() (guest.Frame, bool, error) {
	c.r = request{kind: rqNetRecv}
	c.post()
	return guest.Frame{}, false, nil
}

func (c *stepCtx) NetAddr() guest.Addr {
	return c.t.m.nic.Addr()
}

func (c *stepCtx) NetRx() uint64 {
	c.r = request{kind: rqNetRx}
	c.post()
	return 0
}

func (c *stepCtx) NetRxWait(seen uint64) uint64 {
	c.r = request{kind: rqNetRxWait, addr: seen}
	c.post()
	return 0
}

func (c *stepCtx) Exec(prog *guest.Program) {
	panic(fmt.Sprintf("kernel: flyweight task %v used Exec (program images run Routine code; spawn with Body)", c.t.p))
}

// stepRun runs a flyweight task's activations: the first when the
// task has never run, then one per granted request, looping while
// posted requests are serviced synchronously — exactly where a
// goroutine guest would continue inline after a non-blocking call. It
// returns when the task's posted request is left pending (blocked, a
// barrier fired, or the CPU was lost) or the task exited.
func (m *Machine) stepRun(t *task) {
	exited, code := m.stepLoop(t)
	if !exited {
		return
	}
	c := &t.stepCtx
	if c.posted {
		panic(fmt.Sprintf("kernel: flyweight task %v exited with a request in flight", t.p))
	}
	t.stepFn = nil
	// Post the exit through the same entry point task.call uses; if
	// the task no longer owns the CPU the request waits for dispatch
	// like any other.
	c.r = request{kind: rqExit, code: code}
	t.cur = &c.r
	m.beginPosted(t)
}

// stepLoop runs activations until the task blocks (exited false) or
// exits — by returning nil or by an Exit call, whose exitPanic the
// single deferred recover converts into a return. One recover covers
// the whole batch, so a steady-state activation costs a plain
// indirect call, not a defer arm/disarm.
func (m *Machine) stepLoop(t *task) (exited bool, code int) {
	c := &t.stepCtx
	defer func() {
		if r := recover(); r != nil {
			ep, ok := r.(exitPanic)
			if !ok {
				panic(r)
			}
			exited, code = true, ep.code
		}
	}()
	for {
		c.posted = false
		var next guest.Step
		if !t.started {
			t.started = true
			next = t.stepFn(c, guest.Resume{})
		} else if t.granted {
			t.granted = false
			// takeResume in the argument position lets the inlined
			// literal build directly in the callee's frame — one Resume
			// copy per activation, not three.
			next = t.stepFn(c, c.takeResume())
		} else {
			return false, 0
		}
		if next == nil {
			return true, 0
		}
		if !c.posted {
			panic(fmt.Sprintf("kernel: flyweight task %v returned a continuation without posting a request (an activation must post or exit)", t.p))
		}
		t.stepFn = next
	}
}
