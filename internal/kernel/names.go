package kernel

import "sort"

// The syscall-class namespace is closed: every name a guest, a fault
// spec, or a cost lookup may use is a key of syscallServiceUs. The
// set is exported so upper layers (CLI flag validation, the simlint
// syscallname analyzer) can reject a typo'd name — "sendot" —
// up front instead of letting it ride as a silently inert fault or a
// silently default-priced syscall.

// knownSyscallNames is the sorted snapshot of the namespace, built
// once at init.
var knownSyscallNames = func() []string {
	names := make([]string, 0, len(syscallServiceUs))
	//simlint:unordered-ok building a sorted snapshot: sort.Strings below re-establishes a total order
	for name := range syscallServiceUs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}()

// KnownSyscallNames returns the closed set of syscall-class names in
// sorted order. The caller owns the returned slice.
func KnownSyscallNames() []string {
	return append([]string(nil), knownSyscallNames...)
}

// IsKnownSyscall reports whether name is a member of the syscall
// namespace.
func IsKnownSyscall(name string) bool {
	_, ok := syscallServiceUs[name]
	return ok
}
