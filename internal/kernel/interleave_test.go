package kernel

import (
	"testing"

	"repro/internal/guest"
)

// TestPollerInterleavesWithHog: a sleep-polling task must get CPU
// slices during a CPU hog's run at equal priority (at quantum
// boundaries), not only after the hog exits.
func TestPollerInterleavesWithHog(t *testing.T) {
	m := testMachine(t)
	var polls int
	var sawHogAlive int
	m.Spawn(SpawnConfig{Name: "poller", Body: func(ctx guest.Context) {
		for i := 0; i < 50; i++ {
			polls++
			if _, ok := ctx.FindProcess("hog"); ok {
				sawHogAlive++
			}
			ctx.Sleep(2_000_000) // 2ms
		}
	}})
	m.Spawn(SpawnConfig{Name: "hog", Body: func(ctx guest.Context) {
		ctx.Compute(500_000_000) // 500 ms
	}})
	run(t, m)
	t.Logf("polls=%d sawHogAlive=%d", polls, sawHogAlive)
	if sawHogAlive < 2 {
		t.Fatalf("poller saw live hog only %d times: poller starved during hog run", sawHogAlive)
	}
}
