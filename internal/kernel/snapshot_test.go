package kernel

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/proc"
	"repro/internal/sim"
)

// churnGuest is a forkable flyweight guest exercising the compute /
// page-touch / sleep loop that drives timer ticks, preemption,
// faults, swap I/O, and writebacks.
type churnGuest struct {
	rounds int
	burst  sim.Cycles
	sleep  sim.Cycles
	pages  uint64
	i      int
}

func (g *churnGuest) run(ctx guest.Context, _ guest.Resume) guest.Step {
	if g.i >= g.rounds {
		return nil
	}
	ctx.Compute(g.burst)
	return g.afterCompute
}

func (g *churnGuest) afterCompute(ctx guest.Context, _ guest.Resume) guest.Step {
	ctx.Store(0x400000 + uint64(g.i)%g.pages*mem.DefaultPageSize)
	return g.afterStore
}

func (g *churnGuest) afterStore(ctx guest.Context, _ guest.Resume) guest.Step {
	g.i++
	ctx.Sleep(g.sleep)
	return g.run
}

func (g *churnGuest) fork(cur guest.Step) (guest.Forked, error) {
	c := *g
	s, ok := guest.RebindStep(cur,
		[]guest.Step{g.run, g.afterCompute, g.afterStore},
		[]guest.Step{c.run, c.afterCompute, c.afterStore})
	if !ok {
		return guest.Forked{}, fmt.Errorf("churnGuest: unknown continuation")
	}
	return guest.Forked{Step: s, Fork: c.fork, State: &c}, nil
}

// senderGuest transmits flow frames (drawing "sendto" fault rolls)
// with jittered pacing off the machine rng.
type senderGuest struct {
	rounds int
	gap    sim.Cycles
	i      int
	fails  int
}

func (g *senderGuest) run(ctx guest.Context, _ guest.Resume) guest.Step {
	if g.i >= g.rounds {
		return nil
	}
	g.i++
	//simlint:errno-ok resumable post: the errno arrives in the next activation's Resume and is counted in fails there
	ctx.NetSend(guest.Frame{Dst: 9, Flow: 7})
	return g.afterSend
}

func (g *senderGuest) afterSend(ctx guest.Context, r guest.Resume) guest.Step {
	if r.Err != nil {
		g.fails++
	}
	ctx.Sleep(ctx.Rand().Jitter(g.gap, g.gap/4+1))
	return g.run
}

func (g *senderGuest) fork(cur guest.Step) (guest.Forked, error) {
	c := *g
	s, ok := guest.RebindStep(cur,
		[]guest.Step{g.run, g.afterSend},
		[]guest.Step{c.run, c.afterSend})
	if !ok {
		return guest.Forked{}, fmt.Errorf("senderGuest: unknown continuation")
	}
	return guest.Forked{Step: s, Fork: c.fork, State: &c}, nil
}

// rxWatcher blocks in NetRxWait consuming the NIC flood, exercising
// the net-waiter list and wake-latency events across a checkpoint.
type rxWatcher struct {
	rounds int
	seen   uint64
	i      int
}

func (w *rxWatcher) run(ctx guest.Context, r guest.Resume) guest.Step {
	if w.i > 0 {
		w.seen = r.Ret
	}
	if w.i >= w.rounds {
		return nil
	}
	w.i++
	ctx.NetRxWait(w.seen)
	return w.run
}

func (w *rxWatcher) fork(cur guest.Step) (guest.Forked, error) {
	c := *w
	s, ok := guest.RebindStep(cur, []guest.Step{w.run}, []guest.Step{c.run})
	if !ok {
		return guest.Forked{}, fmt.Errorf("rxWatcher: unknown continuation")
	}
	return guest.Forked{Step: s, Fork: c.fork, State: &c}, nil
}

// snapCfg is a machine config dense in mechanisms: tight RAM for
// swap traffic, armed syscall faults, and (via spawnSnapWorkload) a
// NIC flood feeding a blocked reader.
func snapCfg(seed int64) Config {
	return Config{
		Seed:         seed,
		CPUHz:        1_000_000_000,
		PhysMemBytes: 24 * mem.DefaultPageSize,
		Faults: &FaultSpec{Syscalls: []SyscallFault{
			{Name: "sendto", Errno: guest.EAGAIN, ProbPPM: 200_000},
		}},
	}
}

func spawnSnapWorkload(t *testing.T, m *Machine) (pids []proc.PID) {
	t.Helper()
	specs := []SpawnConfig{
		{Name: "churn", Content: "churn v1"},
		{Name: "sender", Content: "sender v1", Nice: -5},
		{Name: "watcher", Content: "watcher v1"},
	}
	guests := []struct {
		step guest.Step
		fork guest.ForkFunc
	}{
		func() (s struct {
			step guest.Step
			fork guest.ForkFunc
		}) {
			g := &churnGuest{rounds: 60, burst: 150_000, sleep: 90_000, pages: 40}
			s.step, s.fork = g.run, g.fork
			return
		}(),
		func() (s struct {
			step guest.Step
			fork guest.ForkFunc
		}) {
			g := &senderGuest{rounds: 50, gap: 120_000}
			s.step, s.fork = g.run, g.fork
			return
		}(),
		func() (s struct {
			step guest.Step
			fork guest.ForkFunc
		}) {
			g := &rxWatcher{rounds: 30}
			s.step, s.fork = g.run, g.fork
			return
		}(),
	}
	for i, sc := range specs {
		sc.Step = guests[i].step
		sc.Fork = guests[i].fork
		p, err := m.Spawn(sc)
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, p.PID)
	}
	m.NIC().StartFlood(40_000)
	return pids
}

// renderFinal serialises everything observable about a finished
// machine, so byte-equality of two renders is the test oracle.
func renderFinal(m *Machine, pids []proc.PID) string {
	var b strings.Builder
	// steps is deliberately absent: it counts engine iterations, which
	// barrier slicing inflates (each RunUntil pause costs bookkeeping
	// steps) without any effect on the simulated history — the same
	// reason TestRunUntilSlicesMatchRun does not compare it.
	fmt.Fprintf(&b, "clock=%d faults=%d rxdrop=%d nicrx=%d diskio=%d diskw=%d\n",
		m.Clock().Now(), m.FaultsInjected(), m.RxBufDropped(),
		m.NIC().Received(), m.Disk().IOs(), m.Disk().Writes())
	for _, pid := range pids {
		st := m.Stats(pid)
		fmt.Fprintf(&b, "pid=%d stats=%+v\n", pid, st)
		for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
			u, ok := m.UsageBy(scheme, pid)
			fmt.Fprintf(&b, "pid=%d %s ok=%v usage=%+v\n", pid, scheme, ok, u)
		}
	}
	for _, ms := range m.Measurements() {
		fmt.Fprintf(&b, "measure=%+v\n", ms)
	}
	return b.String()
}

func runToCompletion(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRestoreByteIdentical pins the core checkpoint
// guarantee: pause at a mid-run barrier, snapshot, restore, run the
// restored machine to completion — the result is byte-identical to
// the uninterrupted run, at every barrier tried, and restoring the
// same image twice yields the same bytes both times.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	ref := New(snapCfg(42))
	refPIDs := spawnSnapWorkload(t, ref)
	runToCompletion(t, ref)
	want := renderFinal(ref, refPIDs)

	for _, barrier := range []sim.Cycles{800_000, 3_333_333, 10_000_000, 25_000_000} {
		m := New(snapCfg(42))
		pids := spawnSnapWorkload(t, m)
		done, err := m.RunUntil(barrier)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatalf("barrier %d: workload finished before the barrier; lengthen it", barrier)
		}
		img, err := m.Snapshot()
		if err != nil {
			t.Fatalf("barrier %d: snapshot: %v", barrier, err)
		}
		// The snapshotted machine keeps running unharmed.
		runToCompletion(t, m)
		if got := renderFinal(m, pids); got != want {
			t.Fatalf("barrier %d: snapshotted original diverged from uninterrupted run:\n got: %s\nwant: %s", barrier, got, want)
		}
		for copyN := 0; copyN < 2; copyN++ {
			r, err := Restore(img)
			if err != nil {
				t.Fatalf("barrier %d copy %d: restore: %v", barrier, copyN, err)
			}
			if r.Clock().Now() != img.At() {
				t.Fatalf("restored clock %d != image time %d", r.Clock().Now(), img.At())
			}
			runToCompletion(t, r)
			if got := renderFinal(r, pids); got != want {
				t.Fatalf("barrier %d copy %d: restored run diverged:\n got: %s\nwant: %s", barrier, copyN, got, want)
			}
		}
	}
}

// TestSnapshotRestoreSlicedBarriers restores an image and drives the
// restored machine in RunUntil slices rather than one Run, pinning
// that a restored machine supports barrier-sliced driving (what the
// cluster does) with identical results.
func TestSnapshotRestoreSlicedBarriers(t *testing.T) {
	ref := New(snapCfg(7))
	pids := spawnSnapWorkload(t, ref)
	runToCompletion(t, ref)
	want := renderFinal(ref, pids)

	m := New(snapCfg(7))
	spawnSnapWorkload(t, m)
	if _, err := m.RunUntil(5_000_000); err != nil {
		t.Fatal(err)
	}
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	limit := r.Clock().Now()
	for i := 0; ; i++ {
		if i > 1_000_000 {
			t.Fatal("sliced restored run did not terminate")
		}
		limit += 777_777
		done, err := r.RunUntil(limit)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if got := renderFinal(r, pids); got != want {
		t.Fatalf("sliced restored run diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestForkDivergence pins fork independence: two restores of one
// image fed identical post-fork inputs match exactly; a third fed a
// different input (a heavier flood) diverges — and none of the three
// perturbs the others.
func TestForkDivergence(t *testing.T) {
	m := New(snapCfg(11))
	pids := spawnSnapWorkload(t, m)
	if _, err := m.RunUntil(4_000_000); err != nil {
		t.Fatal(err)
	}
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	variant := func(extraFlood uint64) string {
		r, err := Restore(img)
		if err != nil {
			t.Fatal(err)
		}
		if extraFlood > 0 {
			r.NIC().StartFlood(extraFlood)
		}
		runToCompletion(t, r)
		return renderFinal(r, pids)
	}
	base1 := variant(0)
	base2 := variant(0)
	heavy := variant(900_000)
	if base1 != base2 {
		t.Fatalf("identical post-fork inputs diverged:\n a: %s\n b: %s", base1, base2)
	}
	if base1 == heavy {
		t.Fatal("post-fork flood input did not diverge the forked machine")
	}
}

// TestSnapshotGuestStateExposed pins the harvest path: a restored
// machine exposes each forked guest's state struct via GuestState.
func TestSnapshotGuestStateExposed(t *testing.T) {
	m := New(snapCfg(3))
	pids := spawnSnapWorkload(t, m)
	if _, err := m.RunUntil(4_000_000); err != nil {
		t.Fatal(err)
	}
	r, err := m.Fork()
	if err != nil {
		t.Fatal(err)
	}
	g, ok := r.GuestState(pids[0]).(*churnGuest)
	if !ok {
		t.Fatalf("GuestState(churn) = %T, want *churnGuest", r.GuestState(pids[0]))
	}
	if g.i == 0 {
		t.Fatal("forked churn guest shows no progress; fork did not carry state")
	}
	if s := m.GuestState(pids[0]); s != nil {
		t.Fatalf("original machine unexpectedly exposes guest state %T", s)
	}
}

// TestSnapshotNotSnapshottable pins the compat-path contract: a
// started goroutine (Body) guest and a Step guest without Fork both
// refuse to checkpoint with ErrNotSnapshottable; a never-started
// Body guest snapshots fine and replays identically.
func TestSnapshotNotSnapshottable(t *testing.T) {
	// Started Body guest.
	m := New(Config{Seed: 1, CPUHz: 1_000_000_000})
	_, err := m.Spawn(SpawnConfig{
		Name: "legacy", Content: "legacy v1",
		Body: func(ctx guest.Context) {
			for i := 0; i < 100; i++ {
				ctx.Compute(100_000)
				ctx.Sleep(50_000)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunUntil(1_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(); !errors.Is(err, ErrNotSnapshottable) {
		t.Fatalf("snapshot of started Body guest: err = %v, want ErrNotSnapshottable", err)
	}

	// Step guest without Fork.
	m2 := New(Config{Seed: 1, CPUHz: 1_000_000_000})
	g := &churnGuest{rounds: 10, burst: 100_000, sleep: 50_000, pages: 4}
	if _, err := m2.Spawn(SpawnConfig{Name: "nofork", Content: "nofork v1", Step: g.run}); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.RunUntil(500_000); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Snapshot(); !errors.Is(err, ErrNotSnapshottable) {
		t.Fatalf("snapshot of forkless Step guest: err = %v, want ErrNotSnapshottable", err)
	}

	// Never-started Body guest: snapshottable (its body re-runs from
	// scratch on the restored machine, which is its exact state).
	body := func(ctx guest.Context) {
		for i := 0; i < 20; i++ {
			ctx.Compute(80_000)
			ctx.Sleep(40_000)
		}
	}
	build := func() (*Machine, proc.PID) {
		mb := New(Config{Seed: 5, CPUHz: 1_000_000_000})
		p, err := mb.Spawn(SpawnConfig{Name: "unstarted", Content: "u v1", Body: body})
		if err != nil {
			t.Fatal(err)
		}
		return mb, p.PID
	}
	ref, refPID := build()
	runToCompletion(t, ref)
	want := renderFinal(ref, []proc.PID{refPID})

	mb, pid := build()
	img, err := mb.Snapshot()
	if err != nil {
		t.Fatalf("snapshot of never-started Body guest: %v", err)
	}
	r, err := Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, r)
	if got := renderFinal(r, []proc.PID{pid}); got != want {
		t.Fatalf("never-started Body restore diverged:\n got: %s\nwant: %s", got, want)
	}
	mb.Shutdown()
}

// TestPoolReusesShells pins the reset-and-reuse path: machines
// restored through a Pool behave byte-identically to plain restores,
// across repeated Get/Put cycles of the same shell.
func TestPoolReusesShells(t *testing.T) {
	m := New(snapCfg(21))
	pids := spawnSnapWorkload(t, m)
	if _, err := m.RunUntil(4_000_000); err != nil {
		t.Fatal(err)
	}
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, plain)
	want := renderFinal(plain, pids)

	var pool Pool
	for cycle := 0; cycle < 3; cycle++ {
		r, err := pool.Get(img)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		runToCompletion(t, r)
		if got := renderFinal(r, pids); got != want {
			t.Fatalf("cycle %d: pooled restore diverged:\n got: %s\nwant: %s", cycle, got, want)
		}
		pool.Put(r)
	}
}
