package kernel

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/guest"
	"repro/internal/sim"
)

// TestFaultSpecValidate pins the usage-error surface: a probability
// past the PPM scale or an errno the guest layer does not define is
// rejected by name, and a nil or healthy spec passes.
func TestFaultSpecValidate(t *testing.T) {
	var nilSpec *FaultSpec
	if err := nilSpec.Validate(); err != nil {
		t.Fatalf("nil spec: %v", err)
	}
	good := &FaultSpec{Syscalls: []SyscallFault{{Name: "sendto", Errno: guest.EAGAIN, ProbPPM: PPMScale}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec: %v", err)
	}
	cases := []struct {
		name string
		spec FaultSpec
		want string
	}{
		{"probability past scale",
			FaultSpec{Syscalls: []SyscallFault{{Name: "read", Errno: guest.EIO, ProbPPM: PPMScale + 1}}},
			"exceeds"},
		{"unknown errno",
			FaultSpec{Syscalls: []SyscallFault{{Name: "read", Errno: 99, ProbPPM: 10}}},
			"unknown errno"},
		{"unknown syscall name",
			//simlint:syscall-ok the rejection of this typo is the property under test
			FaultSpec{Syscalls: []SyscallFault{{Name: "sendot", Errno: guest.EIO, ProbPPM: 10}}},
			"unknown syscall"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// faultProbeBody exercises every injectable request class — named
// syscalls, sends, and receives — with rng-jittered sleeps in
// between, so any divergence between two machines shows up in clocks,
// bills, and counters.
func faultProbeBody(peer device.Addr, sends int) guest.Routine {
	return func(ctx guest.Context) {
		for i := 0; i < sends; i++ {
			//simlint:errno-ok the probe ignores errno by design: divergence must surface in bills and counters alone
			ctx.Syscall("gettime")
			//simlint:errno-ok the probe ignores errno by design: divergence must surface in bills and counters alone
			ctx.NetSend(guest.Frame{Dst: peer, Flow: uint32(i)})
			for {
				if _, ok, err := ctx.NetRecv(); !ok || err != nil {
					break
				}
			}
			ctx.Sleep(ctx.Rand().Jitter(20_000, 5_000))
		}
	}
}

// probeMachine builds one probe machine with a loopback route (every
// tx re-enters the rx buffer) and the given fault table.
func probeMachine(t *testing.T, faults *FaultSpec) *Machine {
	t.Helper()
	m := New(Config{Seed: 42, CPUHz: 1_000_000_000, MaxSteps: 50_000_000, Faults: faults})
	const peer = device.Addr(2)
	tick := m.TickCycles()
	m.NIC().SetRoute(peer, m.NIC().AddTxRoute(func(f device.Frame) bool {
		m.NIC().InjectRxFrame(m.Clock().Now()+tick, f)
		return true
	}))
	if _, err := m.Spawn(SpawnConfig{Name: "probe", Body: faultProbeBody(peer, 50)}); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestZeroPPMFaultSpecIsInert pins the PR's compatibility contract: a
// fault spec whose every probability is zero is never installed,
// draws nothing from any rng stream, and leaves the machine's entire
// history — clock, per-scheme bills, counters — identical to a
// machine with no spec at all.
func TestZeroPPMFaultSpecIsInert(t *testing.T) {
	base := probeMachine(t, nil)
	armed := probeMachine(t, &FaultSpec{Syscalls: []SyscallFault{
		{Name: "sendto", Errno: guest.EIO, ProbPPM: 0},
		{Name: "read", Errno: guest.EAGAIN, ProbPPM: 0},
	}})
	run(t, base)
	run(t, armed)
	if armed.FaultsInjected() != 0 {
		t.Fatalf("FaultsInjected = %d with every probability zero", armed.FaultsInjected())
	}
	if b, a := base.Clock().Now(), armed.Clock().Now(); b != a {
		t.Fatalf("final clocks diverged: %d vs %d", b, a)
	}
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		ub, _ := base.UsageBy(scheme, 1)
		ua, _ := armed.UsageBy(scheme, 1)
		if ub != ua {
			t.Fatalf("%s usage diverged: %+v vs %+v", scheme, ub, ua)
		}
	}
	if sb, sa := base.Stats(1), armed.Stats(1); sb != sa {
		t.Fatalf("task stats diverged: %+v vs %+v", sb, sa)
	}
}

// TestFullPPMInjectsEveryCall pins the injection path end to end: at
// PPMScale every armed request fails with the configured errno — the
// guest sees it, the frame never reaches the wire, and the machine's
// injection counter records each one.
func TestFullPPMInjectsEveryCall(t *testing.T) {
	m := New(Config{Seed: 3, CPUHz: 1_000_000_000, MaxSteps: 50_000_000,
		Faults: &FaultSpec{Syscalls: []SyscallFault{
			{Name: "sendto", Errno: guest.EIO, ProbPPM: PPMScale},
			{Name: "read", Errno: guest.EAGAIN, ProbPPM: PPMScale},
		}}})
	defer m.Shutdown()
	const peer = device.Addr(2)
	var carried int
	m.NIC().SetRoute(peer, m.NIC().AddTxRoute(func(device.Frame) bool {
		carried++
		return true
	}))
	const attempts = 8
	var sendErrs, recvErrs, wrongErrno int
	if _, err := m.Spawn(SpawnConfig{Name: "victim", Body: func(ctx guest.Context) {
		for i := 0; i < attempts; i++ {
			if ok, err := ctx.NetSend(guest.Frame{Dst: peer}); err != nil {
				sendErrs++
				if ok || err != guest.EIO {
					wrongErrno++
				}
			}
			if _, ok, err := ctx.NetRecv(); err != nil {
				recvErrs++
				if ok || err != guest.EAGAIN {
					wrongErrno++
				}
			}
		}
	}}); err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if sendErrs != attempts || recvErrs != attempts || wrongErrno != 0 {
		t.Fatalf("sendErrs=%d recvErrs=%d wrongErrno=%d, want %d/%d/0",
			sendErrs, recvErrs, wrongErrno, attempts, attempts)
	}
	if carried != 0 {
		t.Fatalf("wire carried %d frames past a 100%% sendto fault", carried)
	}
	if got := m.FaultsInjected(); got != 2*attempts {
		t.Fatalf("FaultsInjected = %d, want %d", got, 2*attempts)
	}
	if got := m.NIC().Transmitted(); got != 0 {
		t.Fatalf("Transmitted = %d, want 0 (faulted sends never reach the NIC)", got)
	}
}

// TestPartialFaultsReplayBitForBit pins the dedicated fault stream:
// two machines with the same seed and the same mid-probability spec
// inject the identical fault history, so chaos runs are as replayable
// as healthy ones.
func TestPartialFaultsReplayBitForBit(t *testing.T) {
	spec := func() *FaultSpec {
		return &FaultSpec{Syscalls: []SyscallFault{
			{Name: "sendto", Errno: guest.EAGAIN, ProbPPM: 200_000},
			{Name: "read", Errno: guest.ENOMEM, ProbPPM: 200_000},
		}}
	}
	a := probeMachine(t, spec())
	b := probeMachine(t, spec())
	run(t, a)
	run(t, b)
	if a.FaultsInjected() == 0 {
		t.Fatal("20% spec injected nothing across 50 probe rounds")
	}
	if a.FaultsInjected() != b.FaultsInjected() {
		t.Fatalf("fault histories diverged: %d vs %d injections", a.FaultsInjected(), b.FaultsInjected())
	}
	if ca, cb := a.Clock().Now(), b.Clock().Now(); ca != cb {
		t.Fatalf("final clocks diverged: %d vs %d", ca, cb)
	}
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		ua, _ := a.UsageBy(scheme, 1)
		ub, _ := b.UsageBy(scheme, 1)
		if ua != ub {
			t.Fatalf("%s usage diverged: %+v vs %+v", scheme, ua, ub)
		}
	}
}

// TestRetryWrappersRideOutTransients pins the guest-side hardening: a
// transient errno at moderate probability is absorbed by the retry
// wrappers within their clock budget, while the first-attempt path
// performs zero extra syscalls when nothing faults.
func TestRetryWrappersRideOutTransients(t *testing.T) {
	m := New(Config{Seed: 11, CPUHz: 1_000_000_000, MaxSteps: 50_000_000,
		Faults: &FaultSpec{Syscalls: []SyscallFault{
			{Name: "sendto", Errno: guest.EAGAIN, ProbPPM: 300_000},
		}}})
	const peer = device.Addr(2)
	var carried int
	m.NIC().SetRoute(peer, m.NIC().AddTxRoute(func(device.Frame) bool {
		carried++
		return true
	}))
	const frames = 40
	const budget = sim.Cycles(1_000_000) // 1 ms of virtual retry time
	var hardFails int
	if _, err := m.Spawn(SpawnConfig{Name: "sender", Body: func(ctx guest.Context) {
		for i := 0; i < frames; i++ {
			if _, err := guest.SendRetry(ctx, guest.Frame{Dst: peer}, budget); err != nil {
				hardFails++
			}
		}
	}}); err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if m.FaultsInjected() == 0 {
		t.Fatal("30% spec injected nothing — the retry path was never exercised")
	}
	if hardFails != 0 {
		t.Fatalf("%d sends failed through a %d-cycle budget against transient faults", hardFails, budget)
	}
	if carried != frames {
		t.Fatalf("wire carried %d frames, want %d (every send eventually got through)", carried, frames)
	}
}
