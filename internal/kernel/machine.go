// Package kernel is the simulated operating system: a deterministic
// discrete-event machine tying together the CPU, memory, devices,
// scheduler, and accounting substrates. Guest programs run as
// coroutines driven through guest.Context; exactly one goroutine
// (kernel or one guest) executes at any instant, so identical seeds
// replay identical histories.
//
// The modelled execution mechanisms are the ones the paper's attacks
// exploit: CPU time is sampled per timer tick by the jiffy
// accountant; a fork's child is billed from creation; dynamic-linker
// and library-constructor work is billed to the process; interrupt
// handler time lands on whichever task is current; page-fault service
// is system time; ptrace stops are kernel work in the tracee's
// context; and wakeup preemption takes effect only after a
// priority-dependent latency, reflecting a non-preemptible kernel
// where a user-mode task keeps the CPU until the next scheduling
// point. That latency model is what reproduces Fig. 7's priority
// gradient; see DESIGN.md §2 and EXPERIMENTS.md.
package kernel

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/device"
	"repro/internal/guest"
	"repro/internal/lib"
	"repro/internal/mem"
	"repro/internal/metering"
	"repro/internal/proc"
	"repro/internal/sched"
	"repro/internal/sim"
)

// DefaultHZ is the timer frequency (ticks per second) of the
// simulated kernel, matching a 2.6.29 desktop config (HZ=250, 4 ms
// jiffies; the paper notes ticks of 1–10 ms).
const DefaultHZ = 250

// Config assembles a Machine.
type Config struct {
	// Seed drives all randomness. Runs with equal seeds and equal
	// workloads produce identical reports.
	Seed int64
	// CPUHz is the core frequency; zero selects 2.53 GHz.
	CPUHz sim.Hz
	// HZ is the timer tick rate; zero selects 250.
	HZ uint64
	// PhysMemBytes sizes RAM; zero selects 1 GiB.
	PhysMemBytes uint64
	// SchedulerPolicy is "o1" (default) or "cfs".
	SchedulerPolicy string
	// Registry is the shared-library store; nil selects the genuine
	// libc/libm set.
	Registry *lib.Registry
	// Accountants to run in parallel. Empty selects
	// jiffy + tsc + process-aware. The first is the billing scheme
	// (what getrusage-alike reads).
	Accountants []metering.Accountant
	// WakeLatencyBase scales the wakeup-to-runnable latency. The
	// latency for a task of nice n is Base*(n-MinNice+1)/41, so
	// high-priority tasks become runnable (and preempt) sooner.
	// Zero selects 1 ms worth of cycles.
	WakeLatencyBase sim.Cycles
	// MaxSteps bounds the event loop as a runaway guard; zero means
	// unlimited.
	MaxSteps uint64
	// OOMMajorFaultLimit is the major-fault count after which a task
	// whose footprint dominates RAM is OOM-killed; zero selects 20000
	// (~100 s of sustained swap storming at 2007-era disk speed).
	OOMMajorFaultLimit uint64
	// RxBufFrames bounds the kernel's receive buffer (the frames
	// guests read via NetRecv), in frames; zero selects 1024. Frames
	// arriving with the buffer full are dropped there — input-queue
	// overflow on a host that cannot keep up.
	RxBufFrames uint64
	// Faults arms seeded syscall error injection (see FaultSpec). Nil
	// — or a spec whose probabilities are all zero — leaves every
	// history byte-identical to an unfaulted machine.
	Faults *FaultSpec
	// BootAt starts the machine's clock at a later virtual time — the
	// restart path of a crashed cluster machine, whose replacement
	// must join the fabric at the instant it rebooted rather than at
	// cycle zero. The first timer tick fires at BootAt + one jiffy.
	BootAt sim.Cycles
}

// Machine is one simulated host.
type Machine struct {
	cfg   Config
	cpu   *cpu.CPU
	clock *sim.Clock
	queue *sim.EventQueue
	rng   *sim.Rand
	mem   *mem.Memory
	nic   *device.NIC
	disk  *device.Disk
	table *proc.Table
	sched sched.Scheduler
	acct  *metering.Multi
	reg   *lib.Registry

	tickCycles sim.Cycles
	nextTickAt sim.Cycles

	tasks   map[proc.PID]*task
	current *task
	lastRun *task
	live    int

	// netWaiters are tasks blocked in NetRxWait, in block order; the
	// NIC rx path completes their requests as frames arrive.
	netWaiters []*task

	// rxBuf is the kernel's bounded receive ring: addressed frames the
	// NIC delivered, awaiting a guest's NetRecv. Allocated lazily on
	// the first frame so solo machines (local floods, payload-less
	// injections) carry none. rxDropped counts frames that arrived
	// with the ring full.
	rxBuf     []device.Frame
	rxHead    int
	rxLen     int
	rxDropped uint64

	// Fault injection (Config.Faults): armed entries by syscall class,
	// the dedicated draw stream, and the injected-failure count.
	faults         map[string]SyscallFault
	faultRNG       *sim.Rand
	faultsInjected uint64

	needResched bool
	closed      bool

	// The machine's state engine runs inline on whichever goroutine
	// is "driving": initially the Run caller, thereafter the guest
	// goroutine whose request is being serviced. Control moves to
	// another goroutine only at an actual task switch, so a guest
	// action that completes without rescheduling costs no goroutine
	// handoff at all. driver is the task whose goroutine currently
	// drives (nil while the Run/RunUntil caller does); pendingDriver,
	// when set, tells the driving loop to hand the engine to that
	// task's goroutine and park; runDone carries the run's outcome —
	// finished, failed, or paused at a RunUntil barrier — back to the
	// parked caller after it has handed the engine off.
	driver        *task
	pendingDriver *task
	runDone       chan runSignal

	// RunUntil support: barrierFire is the reusable barrier-event
	// callback that raises pauseReq; a driving goroutine that observes
	// pauseReq suspends the engine and reports back to the RunUntil
	// caller, recording itself in pausedDriver if it parks (a live
	// guest mid-request) so the next RunUntil can resume it.
	pauseReq     bool
	pausedDriver *task
	barrierFire  func()

	// timerFire/preemptFire/writebackFire are the recurring event
	// callbacks, built once so re-arming the timer, scheduling a
	// preemption point, or completing a background writeback does not
	// allocate a closure per occurrence.
	timerFire     func()
	preemptFire   func()
	writebackFire func()

	stats        map[proc.PID]*Stats
	measurements []Measurement
	measuredKeys map[measureKey]bool

	// groupCount tracks live tasks per thread group; the last exit
	// releases the address space and snapshots final usage.
	groupCount map[proc.PID]int
	// finalUsage/finalChildren preserve the accounted time of
	// billable thread groups (spawned or exec'd programs) past their
	// reaping, since reaping folds and drops live ledger entries.
	finalUsage    map[string]map[proc.PID]metering.Usage
	finalChildren map[string]map[proc.PID]metering.Usage

	steps uint64
}

// ErrDeadlock is returned by Run when live tasks remain but nothing
// can ever run again.
var ErrDeadlock = errors.New("kernel: deadlock: live tasks but no runnable task and no pending events")

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	if cfg.CPUHz == 0 {
		cfg.CPUHz = sim.DefaultCPUHz
	}
	if cfg.HZ == 0 {
		cfg.HZ = DefaultHZ
	}
	if cfg.Registry == nil {
		cfg.Registry = lib.StandardRegistry()
	}
	if cfg.WakeLatencyBase == 0 {
		cfg.WakeLatencyBase = sim.Cycles(uint64(cfg.CPUHz) / 1000) // 1 ms
	}
	c := cpu.New(cfg.CPUHz)
	m := &Machine{
		cfg:           cfg,
		cpu:           c,
		clock:         c.Clock(),
		queue:         sim.NewEventQueue(),
		rng:           sim.NewRand(cfg.Seed),
		mem:           mem.New(cfg.PhysMemBytes, 0),
		table:         proc.NewTable(),
		reg:           cfg.Registry,
		tasks:         make(map[proc.PID]*task),
		stats:         make(map[proc.PID]*Stats),
		measuredKeys:  make(map[measureKey]bool),
		groupCount:    make(map[proc.PID]int),
		finalUsage:    make(map[string]map[proc.PID]metering.Usage),
		finalChildren: make(map[string]map[proc.PID]metering.Usage),
		runDone:       make(chan runSignal, 1),
	}
	m.timerFire = m.timerTick
	m.preemptFire = func() { m.needResched = true }
	m.writebackFire = m.diskIRQ
	m.barrierFire = func() { m.pauseReq = true }
	m.tickCycles = sim.Cycles(uint64(cfg.CPUHz) / cfg.HZ)

	cyclesPerMs := sim.Cycles(uint64(cfg.CPUHz) / 1000)
	switch cfg.SchedulerPolicy {
	case "", "o1":
		m.sched = sched.NewO1(cyclesPerMs)
	case "cfs":
		m.sched = sched.NewCFS(cyclesPerMs)
	default:
		panic(fmt.Sprintf("kernel: unknown scheduler policy %q", cfg.SchedulerPolicy))
	}

	accts := cfg.Accountants
	if len(accts) == 0 {
		accts = []metering.Accountant{
			metering.NewJiffy(m.tickCycles),
			metering.NewTSC(),
			metering.NewProcessAware(),
		}
	}
	m.acct = metering.NewMulti(accts...)

	m.nic = device.NewNIC(m.queue, m.clock, m.rng, m.nicRx)
	m.disk = device.NewDisk(m.queue, m.clock, mem.DiskLatency(cfg.CPUHz))
	m.initFaults(cfg.Faults)

	// A restarted machine boots mid-history: fast-forward the clock to
	// the boot instant before arming anything.
	if cfg.BootAt > 0 {
		m.cpu.Idle(cfg.BootAt)
	}

	// Arm the periodic timer.
	m.nextTickAt = m.clock.Now() + m.tickCycles
	m.queue.Schedule(m.nextTickAt, sim.KindTimer, m.timerFire)
	return m
}

// Clock exposes the machine clock (read-only use).
func (m *Machine) Clock() *sim.Clock { return m.clock }

// CPU exposes the simulated core.
func (m *Machine) CPU() *cpu.CPU { return m.cpu }

// Mem exposes the memory subsystem.
func (m *Machine) Mem() *mem.Memory { return m.mem }

// NIC exposes the network device (attacks start floods on it).
func (m *Machine) NIC() *device.NIC { return m.nic }

// Disk exposes the swap device.
func (m *Machine) Disk() *device.Disk { return m.disk }

// Registry exposes the shared-library store.
func (m *Machine) Registry() *lib.Registry { return m.reg }

// Scheduler exposes the active policy.
func (m *Machine) Scheduler() sched.Scheduler { return m.sched }

// Accountants exposes the accounting fan-out.
func (m *Machine) Accountants() *metering.Multi { return m.acct }

// TickCycles returns the jiffy length in cycles.
func (m *Machine) TickCycles() sim.Cycles { return m.tickCycles }

// Rand exposes the deterministic random source.
func (m *Machine) Rand() *sim.Rand { return m.rng }

// oomLimit returns the configured OOM major-fault threshold.
func (m *Machine) oomLimit() uint64 {
	if m.cfg.OOMMajorFaultLimit > 0 {
		return m.cfg.OOMMajorFaultLimit
	}
	return 20000
}

// Table exposes the process table.
func (m *Machine) Table() *proc.Table { return m.table }

// Stats returns the counters for a thread group (zero value if the
// group never ran).
func (m *Machine) Stats(tgid proc.PID) Stats {
	if s := m.stats[tgid]; s != nil {
		return *s
	}
	return Stats{}
}

// Measurements returns the code-identity log in load order (copy).
func (m *Machine) Measurements() []Measurement {
	out := make([]Measurement, len(m.measurements))
	copy(out, m.measurements)
	return out
}

// Usage returns the billing (first) accountant's view of a thread
// group, surviving the group's reaping.
func (m *Machine) Usage(tgid proc.PID) metering.Usage {
	accts := m.acct.Accountants()
	if len(accts) == 0 {
		return metering.Usage{}
	}
	u, _ := m.UsageBy(accts[0].Name(), tgid)
	return u
}

// UsageBy returns a named scheme's view of a thread group. For
// groups that have fully exited it returns the preserved final
// snapshot (reaping folds live entries into the parent).
func (m *Machine) UsageBy(scheme string, tgid proc.PID) (metering.Usage, bool) {
	a, ok := m.acct.ByName(scheme)
	if !ok {
		return metering.Usage{}, false
	}
	if fin, ok := m.finalUsage[scheme][tgid]; ok {
		return fin, true
	}
	return a.Usage(tgid), true
}

// ChildrenUsageBy returns a scheme's accumulated reaped-children
// usage for a thread group (getrusage(RUSAGE_CHILDREN)), surviving
// the group's own reaping.
func (m *Machine) ChildrenUsageBy(scheme string, tgid proc.PID) (metering.Usage, bool) {
	a, ok := m.acct.ByName(scheme)
	if !ok {
		return metering.Usage{}, false
	}
	if fin, ok := m.finalChildren[scheme][tgid]; ok {
		return fin, true
	}
	return a.ChildrenUsage(tgid), true
}

// SpawnConfig describes a kernel-spawned process (something init or
// a daemon would start, e.g. the shell or an attack process).
type SpawnConfig struct {
	Name string
	// Content is the image identity for integrity measurement.
	Content string
	Nice    int
	// Env is the initial environment (copied).
	Env map[string]string
	// Libs are linked at spawn (with Env's LD_PRELOAD honoured).
	// Nil links the full registry default set: libc and libm.
	Libs []string
	// Body runs the guest on the goroutine compat driver. Exactly one
	// of Body and Step must be set.
	Body guest.Routine
	// Step runs the guest on the flyweight driver: a resumable state
	// machine with no goroutine and no parked stack (see guest.Step).
	Step guest.Step
	// Fork, when set on a Step task, makes the guest checkpointable:
	// Snapshot calls it to clone the guest's continuation and state
	// (see guest.ForkFunc). A Step task without Fork — and any started
	// Body task — makes the machine return ErrNotSnapshottable.
	Fork guest.ForkFunc
}

// Spawn creates a runnable process outside any fork chain.
func (m *Machine) Spawn(sc SpawnConfig) (*proc.Proc, error) {
	if (sc.Body == nil) == (sc.Step == nil) {
		return nil, fmt.Errorf("spawn %s: exactly one of Body (goroutine driver) and Step (flyweight driver) must be set", sc.Name)
	}
	p := m.table.Create(sc.Name, nil)
	p.SetNice(sc.Nice)
	//simlint:unordered-ok map-to-map copy; insertion order cannot be observed
	for k, v := range sc.Env {
		p.Env[k] = v
	}
	p.Space = m.mem.NewSpace(sc.Name)
	linked := sc.Libs
	if linked == nil {
		for _, name := range []string{lib.LibcName, lib.LibmName} {
			if _, ok := m.reg.Get(name); ok {
				linked = append(linked, name)
			}
		}
	}
	lm, err := lib.BuildLinkMap(m.reg, p.Env[lib.PreloadEnv], linked)
	if err != nil {
		return nil, fmt.Errorf("spawn %s: %w", sc.Name, err)
	}
	t := m.newTask(p, sc.Body)
	if sc.Step != nil {
		t.stepFn = sc.Step
		t.stepCtx.t = t
		t.forkFn = sc.Fork
	}
	t.billable = true
	m.groupCount[p.TGID]++
	t.linkMap = lm
	t.image = &guest.Program{Name: sc.Name, Content: sc.Content}
	m.measure(p, MeasureProgram, sc.Name, ProgramDigest(sc.Name, sc.Content))
	for _, l := range lm.Libraries() {
		m.measure(p, MeasureLibrary, l.Name, l.Digest())
	}
	p.State = proc.Ready
	m.live++
	m.enqueue(t)
	return p, nil
}

func (m *Machine) newTask(p *proc.Proc, body guest.Routine) *task {
	t := &task{
		p:    p,
		m:    m,
		st:   m.statOf(p.TGID),
		body: body,
	}
	if body != nil {
		// grant is buffered (capacity 1) so a handoff can be published
		// before the target has parked: the send never blocks, and the
		// target consumes it on its next awaitGrant. Flyweight tasks
		// (body nil; Spawn sets stepFn) never park, so they get none.
		t.grant = make(chan struct{}, 1)
	}
	t.wakeFire = func() {
		t.wakePending = false
		m.wakeNow(t)
	}
	t.sleepFire = func() {
		t.completed = true
		m.wakeNow(t)
	}
	t.swapInFire = func() {
		m.diskIRQ()
		t.st.DiskWaitCycles += m.clock.Now() - t.blockedAt
		t.completed = true
		m.wakeNow(t)
	}
	m.tasks[p.PID] = t
	return t
}

func (m *Machine) statOf(tgid proc.PID) *Stats {
	s := m.stats[tgid]
	if s == nil {
		s = &Stats{}
		m.stats[tgid] = s
	}
	return s
}

// measureKey identifies one distinct measurement for deduplication.
// A comparable struct key keeps the per-fork dedup lookup (inherited
// images are re-measured at every fork) free of string building.
type measureKey struct {
	kind         MeasurementKind
	name, digest string
}

// measure appends to the code-identity log. Entries are deduplicated
// by (kind, name, digest), as a real integrity measurement
// architecture measures each distinct binary once; this also bounds
// the log under fork storms.
func (m *Machine) measure(p *proc.Proc, kind MeasurementKind, name, digest string) {
	key := measureKey{kind: kind, name: name, digest: digest}
	if m.measuredKeys[key] {
		return
	}
	m.measuredKeys[key] = true
	m.measurements = append(m.measurements, Measurement{
		PID: p.PID, TGID: p.TGID, Kind: kind, Name: name, Digest: digest,
	})
}

// runSignal is what a driving goroutine reports back to the parked
// Run/RunUntil caller: the run finished (err nil), failed (err set),
// or suspended at a RunUntil barrier (paused).
type runSignal struct {
	err    error
	paused bool
}

// Run executes until every spawned task has exited. It returns
// ErrDeadlock if progress becomes impossible, or an error when
// MaxSteps is exceeded.
//
// The caller drives the engine only until the first task must run
// guest code; from then on the engine travels with the grants, and
// Run parks until some driver reports the machine finished.
func (m *Machine) Run() error {
	defer m.shutdown()
	_, err := m.driveToSignal()
	return err
}

// RunUntil advances the machine until every spawned task has exited
// or virtual time reaches limit, whichever comes first. done reports
// that the machine finished (after which it is shut down and must not
// be advanced again); a false done with a nil error means the engine
// paused at the barrier and a later RunUntil may continue it. Driving
// the machine in barrier slices produces the exact history Run would:
// the barrier bounds every preemptible time advance, and only
// non-preemptible kernel service lumps may overrun it (by at most one
// lump). This is what lets a cluster interleave several machines in
// deterministic lockstep virtual time.
func (m *Machine) RunUntil(limit sim.Cycles) (done bool, err error) {
	if m.closed {
		return true, nil
	}
	if m.live == 0 {
		m.shutdown()
		return true, nil
	}
	if limit <= m.clock.Now() {
		return false, nil
	}
	m.queue.Schedule(limit, "barrier", m.barrierFire)
	done, err = m.driveToSignal()
	if done || err != nil {
		m.shutdown()
	}
	return done, err
}

// driveToSignal drives the engine on the caller's goroutine — or
// resumes the guest goroutine that paused at the previous barrier —
// until the run finishes, fails, or pauses again. It reports
// done=true when every task has exited.
func (m *Machine) driveToSignal() (bool, error) {
	if u := m.pausedDriver; u != nil {
		// Hand the engine back to the guest that paused mid-request;
		// it drives until the next signal.
		m.pausedDriver = nil
		u.grant <- struct{}{}
		sig := <-m.runDone
		return !sig.paused && sig.err == nil, sig.err
	}
	for m.live > 0 {
		if m.pauseReq {
			m.pauseReq = false
			return false, nil
		}
		if err := m.driveStep(); err != nil {
			return false, err
		}
		if u := m.pendingDriver; u != nil {
			m.pendingDriver = nil
			m.handoffTo(u)
			sig := <-m.runDone
			return !sig.paused && sig.err == nil, sig.err
		}
	}
	return true, nil
}

// NextWorkAt reports the virtual time at which this machine can next
// make progress: now if a task is on or ready for the CPU, otherwise
// the next pending event. ok is false when the machine can make no
// progress on its own — it has finished, or every remaining task is
// blocked on a condition only an external event (a cluster packet)
// can satisfy. The periodic timer tick does not count as work: ticks
// wake nothing, so a machine whose queue holds only its own ticks is
// idle until the network feeds it. (Which guest goroutine happens to
// hold the suspended engine is irrelevant to whether work exists.)
func (m *Machine) NextWorkAt() (at sim.Cycles, ok bool) {
	if m.closed || m.live == 0 {
		return 0, false
	}
	if m.current != nil || m.sched.Runnable() > 0 {
		return m.clock.Now(), true
	}
	if m.queue.PendingNonTimer() == 0 {
		return 0, false
	}
	return m.queue.PeekTime()
}

// Closed reports whether the machine has been shut down (finished or
// torn down); a closed machine can never deliver another event, so a
// cluster link counts frames sent to it as drops.
func (m *Machine) Closed() bool { return m.closed }

// IRQWork builds a reusable event callback performing cost cycles of
// interrupt-context work on the given line, billed to whichever task
// is current when it fires. Build it once and pass it to
// ScheduleIRQWork per occurrence, so recurring injected work (a
// cluster's remote-device service, fired per client I/O) does not
// allocate a closure per event.
func (m *Machine) IRQWork(irq device.IRQ, cost sim.Cycles) func() {
	return func() { m.irqWork(irq, cost) }
}

// ScheduleIRQWork schedules a callback built by IRQWork at virtual
// time at. A cluster uses it for the host-side service of remotely
// mounted devices (e.g. a neighbor machine's swap I/O against a swap
// partition this machine exports).
func (m *Machine) ScheduleIRQWork(at sim.Cycles, work func()) {
	m.queue.Schedule(at, "irq-work", work)
}

// ScheduleIRQWorkTagged is ScheduleIRQWork with a caller-chosen
// restore tag, so a cluster snapshot can re-resolve the pending work
// to the equivalent callback on a restored machine (kernel restore
// alone rejects "irq-work" events; see Restore).
func (m *Machine) ScheduleIRQWorkTagged(at sim.Cycles, tag uint64, work func()) {
	m.queue.ScheduleTagged(at, "irq-work", tag, work)
}

// Shutdown releases the machine's guest goroutines without running to
// completion. A cluster uses it to tear down remaining machines after
// one machine fails; Run and a completed RunUntil shut down
// automatically. Shutdown is idempotent, and the machine cannot be
// advanced afterwards.
func (m *Machine) Shutdown() { m.shutdown() }

// handoffTo moves the engine to task u's goroutine: starting it if it
// has never run, waking it from awaitGrant otherwise. The caller must
// stop driving immediately afterwards (park, or die if exiting).
func (m *Machine) handoffTo(u *task) {
	m.driver = u
	if !u.started {
		u.start()
		return
	}
	u.grant <- struct{}{}
}

// finish reports the run's outcome to the parked Run/RunUntil caller.
// Called by the last driving guest goroutine.
func (m *Machine) finish(err error) {
	m.runDone <- runSignal{err: err}
}

// pausePark suspends the engine at a barrier from a live guest driver:
// the task records itself for resumption, reports the pause to the
// parked RunUntil caller, and parks until the next RunUntil (or
// machine shutdown) wakes it.
func (m *Machine) pausePark(t *task) {
	m.pauseReq = false
	m.pausedDriver = t
	m.runDone <- runSignal{paused: true}
	if !t.awaitGrant() {
		panic(killPanic{})
	}
}

// pauseExit suspends the engine at a barrier from an exiting guest
// driver: the goroutine is about to die, so instead of parking it
// returns the engine to the RunUntil caller, which drives on resume.
func (m *Machine) pauseExit() {
	m.pauseReq = false
	m.driver = nil
	m.runDone <- runSignal{paused: true}
}

// shutdown unblocks any still-parked guest goroutines (they unwind
// via killPanic) so tests do not leak. Closing each task's grant
// channel wakes guests blocked waiting for a grant; guests never
// block submitting a request (the request channel is buffered), so
// this covers every parking site.
func (m *Machine) shutdown() {
	if m.closed {
		return
	}
	m.closed = true
	//simlint:unordered-ok closing each grant channel is commutative; no history event is emitted
	for _, t := range m.tasks {
		if t.grant != nil {
			// Flyweight tasks have no grant channel and no parked
			// goroutine; there is nothing to unwind.
			close(t.grant)
		}
	}
}

// fireDue pops and fires every event due at the current virtual time,
// recycling each through the queue's free list. It reports false when
// the machine has no live tasks left.
func (m *Machine) fireDue() bool {
	for {
		at, ok := m.queue.PeekTime()
		if !ok || at > m.clock.Now() {
			return true
		}
		e := m.queue.Pop()
		e.Fire()
		m.queue.Release(e)
		if m.live == 0 {
			return false
		}
	}
}

// driveStep advances the simulation by one action: firing a due
// event, dispatching, burning a compute span, or servicing one
// request. It runs on whichever goroutine holds the engine. A task
// switch is expressed by setting pendingDriver; the calling drive
// loop performs the goroutine handoff.
func (m *Machine) driveStep() error {
	if m.cfg.MaxSteps > 0 && m.steps >= m.cfg.MaxSteps {
		return fmt.Errorf("kernel: exceeded %d steps at t=%d", m.cfg.MaxSteps, m.clock.Now())
	}
	m.steps++

	// Fire everything due now.
	if !m.fireDue() {
		return nil
	}
	if m.pauseReq {
		// A RunUntil barrier fired: stop before taking another
		// action; the drive loop suspends the engine here.
		return nil
	}

	if m.current != nil && m.needResched {
		m.preemptCurrent()
	}
	m.needResched = false

	if m.current == nil {
		if !m.dispatch() {
			// Nothing runnable: idle to the next event. A queue
			// holding only the periodic tick can never wake anyone,
			// so a solo machine in that state (every live task blocked
			// on input that cannot arrive) is deadlocked rather than
			// idle; in a cluster the RunUntil barrier is always
			// pending, so lockstep slices never trip this and the
			// cluster-level stall detector owns the verdict.
			at, ok := m.queue.PeekTime()
			if !ok || m.queue.PendingNonTimer() == 0 {
				return ErrDeadlock
			}
			m.cpu.Idle(at)
			return nil
		}
	}

	t := m.current
	switch {
	case !t.started:
		if t.stepFn != nil {
			// A flyweight task's first activation runs inline on the
			// driving goroutine; there is no guest goroutine to start.
			m.stepRun(t)
			return nil
		}
		// The task's guest code has never run: hand it the engine.
		m.pendingDriver = t
	case t.cur != nil && !t.begun:
		// A posted request not yet serviced (the task lost the CPU
		// between posting and dispatch, e.g. after a yield).
		t.begun = true
		m.beginRequest(t, t.cur)
	case t.cur != nil && t.pendingUser > 0:
		m.burnCompute(t)
	case t.resume != nil:
		f := t.resume
		t.resume = nil
		f()
	case t.cur != nil && t.completed:
		m.finishRequest(t)
	default:
		return fmt.Errorf("kernel: task %v dispatched with no serviceable work", t.p)
	}
	// A flyweight task whose request was just granted resumes here,
	// still on the driving goroutine. The dispatched task is checked
	// rather than m.current: a yield grants and then vacates the CPU,
	// and the activation must still run.
	if t.stepFn != nil && t.granted {
		m.stepRun(t)
	}
	return nil
}

// dispatch picks the next task onto the CPU. Reports false when the
// runqueue is empty.
func (m *Machine) dispatch() bool {
	p := m.sched.PickNext()
	if p == nil {
		return false
	}
	t := m.tasks[p.PID]
	p.State = proc.Running
	m.current = t
	t.quantumLeft = m.sched.Quantum(p)
	if t != m.lastRun {
		t.st.ContextSwitches++
		m.chargedAdvance(m.cpu.Costs().ContextSwitch, cpu.Kernel, t)
	}
	m.lastRun = t
	return true
}

// preemptCurrent puts the running task back on the runqueue.
func (m *Machine) preemptCurrent() {
	t := m.current
	if t == nil {
		return
	}
	t.p.State = proc.Ready
	t.st.Preemptions++
	m.enqueue(t)
	m.current = nil
}

// blockCurrent removes the running task from the CPU without
// re-queueing (it is sleeping, waiting, stopped, or dead).
func (m *Machine) blockCurrent(state proc.State) {
	t := m.current
	t.p.State = state
	m.current = nil
}

// enqueue adds a task to the runqueue.
func (m *Machine) enqueue(t *task) {
	m.sched.Enqueue(t.p)
}

// wakeNow makes a blocked task runnable immediately. If scheduling
// policy says the woken task should take the CPU from the current
// one, the preemption is deferred to the next preemption point for
// the woken task's priority — never applied mid-jiffy on the spot.
// This models a non-preemptible kernel where a user-mode task keeps
// the CPU until the next scheduling opportunity (timer tick or other
// interrupt return); the density of those opportunities grows with
// the contender's priority. This deferral is what reproduces the
// scheduling attack of Fig. 7: the attacker's bursts are phase-locked
// just after scheduling points, so the victim is the task on the CPU
// whenever the accounting tick fires.
func (m *Machine) wakeNow(t *task) {
	if !t.p.Alive() || t.p.State == proc.Stopped || t.p.State == proc.Running {
		return
	}
	if t.p.State == proc.Ready {
		return // already runnable
	}
	if t.stopPending {
		// A SIGSTOP arrived while the task was blocked: it stops
		// instead of resuming, and the tracer learns of the stop.
		t.stopPending = false
		t.p.State = proc.Stopped
		t.stopReported = false
		m.notifyWaiters(t)
		return
	}
	t.p.State = proc.Ready
	m.enqueue(t)
	if m.current != nil && m.sched.ShouldPreempt(m.current.p, t.p) {
		m.schedulePreempt(t.p.Nice())
	}
}

// preemptPointsPerTick maps a contender's nice value to the number of
// sub-jiffy scheduling opportunities per tick at which it may preempt
// a running user-mode task: 2 at nice -5 up to 8 at nice -20.
// Non-negative nice gets none (it waits for quantum expiry).
func preemptPointsPerTick(nice int) sim.Cycles {
	if nice >= 0 {
		return 0
	}
	k := sim.Cycles(-nice) * 2 / 5
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return k
}

// schedulePreempt arms a reschedule at the next preemption point for
// a contender of the given nice value. Points lie on a grid of
// tick/k anchored at tick boundaries.
func (m *Machine) schedulePreempt(nice int) {
	k := preemptPointsPerTick(nice)
	if k == 0 {
		return
	}
	interval := m.tickCycles / k
	if interval == 0 {
		interval = 1
	}
	base := m.nextTickAt - m.tickCycles // current jiffy's start
	now := m.clock.Now()
	var at sim.Cycles
	if now < base {
		at = base
	} else {
		at = base + ((now-base)/interval+1)*interval
	}
	// Integer division can land the last grid point just shy of the
	// next tick — or, when interval does not divide the tick evenly,
	// past it. Snap both cases onto the tick: the wrap-prone
	// subtraction below is only meaningful for points inside the
	// jiffy, and the timer's charge (which fires first — earlier
	// event sequence number) still samples the task that ran up to
	// the boundary.
	if at >= m.nextTickAt || m.nextTickAt-at < interval/2 {
		at = m.nextTickAt
	}
	m.queue.Schedule(at, "preempt", m.preemptFire)
}

// wakeLatency returns the wakeup-to-runnable delay: a small fixed
// cost (~1/128 jiffy, ≈30 µs at HZ=250) modelling the wake-up path
// and runqueue placement.
func (m *Machine) wakeLatency(nice int) sim.Cycles {
	_ = nice
	l := m.tickCycles / 128
	if l == 0 {
		l = 1
	}
	return l
}

// wakeAfterLatency schedules a wake at now+latency(nice). Duplicate
// requests while one is pending are coalesced.
func (m *Machine) wakeAfterLatency(t *task) {
	if t.wakePending {
		return
	}
	t.wakePending = true
	at := m.clock.Now() + m.wakeLatency(t.p.Nice())
	m.queue.ScheduleTagged(at, "wake", uint64(t.p.PID), t.wakeFire)
}

// timerTick is the periodic timer interrupt: sample-charge the
// current task (the jiffy scheme's whole mechanism), run the handler,
// and re-arm.
func (m *Machine) timerTick() {
	var cur *proc.Proc
	mode := m.cpu.Mode()
	if m.current != nil {
		cur = m.current.p
		m.current.st.TicksAbsorbed++
	}
	m.acct.OnTick(cur, mode)
	m.irqWork(device.IRQTimer, m.cpu.Costs().TimerHandler)
	m.nextTickAt += m.tickCycles
	m.queue.Schedule(m.nextTickAt, sim.KindTimer, m.timerFire)
}

// rxBufCap resolves the configured receive-ring bound.
func (m *Machine) rxBufCap() int {
	if m.cfg.RxBufFrames > 0 {
		return int(m.cfg.RxBufFrames)
	}
	return 1024
}

// pushRxFrame appends a delivered frame to the receive ring, dropping
// it (counted) when the ring is full.
func (m *Machine) pushRxFrame(f device.Frame) {
	if m.rxBuf == nil {
		m.rxBuf = make([]device.Frame, m.rxBufCap())
	}
	if m.rxLen == len(m.rxBuf) {
		m.rxDropped++
		return
	}
	m.rxBuf[(m.rxHead+m.rxLen)%len(m.rxBuf)] = f
	m.rxLen++
}

// popRxFrame removes the oldest buffered frame.
func (m *Machine) popRxFrame() (device.Frame, bool) {
	if m.rxLen == 0 {
		return device.Frame{}, false
	}
	f := m.rxBuf[m.rxHead]
	m.rxBuf[m.rxHead] = device.Frame{}
	m.rxHead = (m.rxHead + 1) % len(m.rxBuf)
	m.rxLen--
	return f, true
}

// RxBufDropped reports frames dropped at the full receive ring — the
// overload signal of a host (or router) that cannot drain its input
// queue as fast as the fabric fills it.
func (m *Machine) RxBufDropped() uint64 { return m.rxDropped }

// nicRx services one received packet — parking any addressed frame in
// the receive ring for NetRecv — then completes any NetRxWait whose
// threshold the delivery crossed (softirq hands the frame to the
// socket and the scheduler wakes the reader after the usual wakeup
// latency).
func (m *Machine) nicRx() {
	// Park the frame before advancing time: irqWork can fire nested
	// deliveries whose frames must land in the ring after this one.
	if f, ok := m.nic.TakeRxFrame(); ok {
		m.pushRxFrame(f)
	}
	c := m.cpu.Costs()
	m.irqWork(device.IRQNIC, c.IRQEntry+c.IRQHandlerNIC+c.IRQExit)
	if len(m.netWaiters) == 0 {
		return
	}
	n := m.nic.Received()
	kept := m.netWaiters[:0]
	for _, t := range m.netWaiters {
		if !t.p.Alive() || t.cur == nil || t.completed {
			continue // stale entry: drop
		}
		if n > t.cur.addr {
			t.cur.ret = n
			t.completed = true
			m.wakeAfterLatency(t)
			continue
		}
		kept = append(kept, t)
	}
	for i := len(kept); i < len(m.netWaiters); i++ {
		m.netWaiters[i] = nil
	}
	m.netWaiters = kept
}

// diskIRQ runs the disk completion interrupt: entry, the completion
// handler body, and the iret path, billed to whichever task is then
// current like any IRQ. This is one of Fig. 11's inflation channels:
// the memory hog's I/O completions land on the victim.
func (m *Machine) diskIRQ() {
	c := m.cpu.Costs()
	m.irqWork(device.IRQDisk, c.IRQEntry+c.IRQHandlerDisk+c.IRQExit)
}

// irqWork advances wall time through an interrupt handler and reports
// it to the accountants against whichever task is current.
func (m *Machine) irqWork(irq device.IRQ, cost sim.Cycles) {
	prev := m.cpu.Mode()
	var cur *proc.Proc
	if m.current != nil {
		cur = m.current.p
		m.current.st.IRQCycles += cost
	}
	m.advance(cost, cpu.Interrupt, nil)
	m.acct.OnInterrupt(irq, cur, cost)
	m.cpu.SetMode(prev)
}

// advance moves virtual time forward by d cycles in the given mode,
// splitting at event boundaries so interleaved interrupts observe the
// true machine state. owner, when non-nil, receives OnRun charges.
func (m *Machine) advance(d sim.Cycles, md cpu.Mode, owner *proc.Proc) {
	for d > 0 {
		chunk := d
		if at, ok := m.queue.PeekTime(); ok {
			if at <= m.clock.Now() {
				e := m.queue.Pop()
				e.Fire()
				m.queue.Release(e)
				continue
			}
			if room := at - m.clock.Now(); room < chunk {
				chunk = room
			}
		}
		m.cpu.SetMode(md)
		m.cpu.Run(chunk)
		if owner != nil {
			m.acct.OnRun(owner, md, chunk)
		}
		d -= chunk
	}
}

// chargedAdvance is advance plus scheduler timeslice consumption for
// the task being served.
func (m *Machine) chargedAdvance(d sim.Cycles, md cpu.Mode, t *task) {
	m.advance(d, md, t.p)
	m.sched.Charge(t.p, d)
	if d >= t.quantumLeft {
		t.quantumLeft = 0
	} else {
		t.quantumLeft -= d
	}
}

// burnCompute services the current task's pending user-mode
// computation in one kernel visit: it alternates burning chunks
// (bounded by the next event and the remaining quantum) with firing
// due events, re-entering the outer step loop only when the CPU
// changes hands. Chunk boundaries, charges, and event firing order
// are identical to running one chunk per step; batching only removes
// the per-chunk trip through the step dispatcher. Each chunk still
// counts against MaxSteps (one iteration ≈ one pre-batching step),
// so the runaway guard keeps its calibration; on budget exhaustion
// the loop returns and the next driveStep reports the error.
func (m *Machine) burnCompute(t *task) {
	for {
		if m.cfg.MaxSteps > 0 && m.steps >= m.cfg.MaxSteps {
			return
		}
		m.steps++
		chunk := t.pendingUser
		if t.quantumLeft > 0 && chunk > t.quantumLeft {
			chunk = t.quantumLeft
		}
		if at, ok := m.queue.PeekTime(); ok {
			if room := at - m.clock.Now(); room < chunk {
				chunk = room
			}
		}
		if chunk > 0 {
			m.cpu.SetMode(cpu.User)
			m.cpu.Run(chunk)
			m.acct.OnRun(t.p, cpu.User, chunk)
			m.sched.Charge(t.p, chunk)
			t.pendingUser -= chunk
			if chunk >= t.quantumLeft {
				t.quantumLeft = 0
			} else {
				t.quantumLeft -= chunk
			}
		}

		if t.pendingUser == 0 && t.cur != nil && t.cur.kind == rqCompute {
			m.grantNow(t)
			return
		}
		if t.quantumLeft == 0 && m.current == t {
			if m.sched.Runnable() > 0 {
				m.preemptCurrent()
				return
			}
			t.quantumLeft = m.sched.Quantum(t.p)
		}

		// Fire whatever is due before the next chunk (the timer tick
		// bounding the chunk above, a preemption point, a wakeup).
		if !m.fireDue() {
			return
		}
		if m.pauseReq || m.needResched || m.current != t {
			// The step loop owns rescheduling and barrier decisions.
			return
		}
	}
}

// grantNow completes the current request and resumes the guest. When
// the granted task is the one driving the engine, its drive loop sees
// the granted flag and simply returns to guest code — no goroutine
// switch. Otherwise the engine is handed to the granted task.
func (m *Machine) grantNow(t *task) {
	t.cur = nil
	t.completed = false
	t.begun = false
	t.granted = true
	if t != m.driver && t.stepFn == nil {
		// Flyweight tasks have no goroutine to hand the engine to:
		// their next activation runs inline, either in the posting
		// stepRun loop (synchronous grant) or at the end of the
		// driveStep that granted them.
		m.pendingDriver = t
	}
}

// finishRequest delivers the grant for a request that completed while
// the task was blocked (disk, wait, sleep).
func (m *Machine) finishRequest(t *task) {
	m.grantNow(t)
}

// beginPosted services t's freshly posted request inline if t still
// owns the CPU after the engine's inter-request bookkeeping — the
// same preamble the step loop applies between any two guest actions:
// count the step against the runaway budget, fire due events, and
// honor a pending preemption. When t loses the CPU (preempted, or
// the budget is exhausted and the next driveStep must report it) the
// request stays posted for service at t's next dispatch.
func (m *Machine) beginPosted(t *task) {
	t.begun = false
	if m.current != t {
		return
	}
	if m.cfg.MaxSteps > 0 && m.steps >= m.cfg.MaxSteps {
		return
	}
	m.steps++
	m.fireDue() // we are servicing a live task, so live > 0 holds
	if m.pauseReq {
		// A barrier fired between requests: leave the request posted;
		// it is serviced at the task's next dispatch after resume.
		return
	}
	if m.current != nil && m.needResched {
		m.preemptCurrent()
	}
	m.needResched = false
	if m.current == t {
		t.begun = true
		m.beginRequest(t, t.cur)
	}
}
