package kernel

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/device"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/metering"
	"repro/internal/proc"
	"repro/internal/sim"
)

// irqRecorder is a test accountant that records every OnInterrupt
// charge per IRQ line, pinning exactly what the kernel bills for each
// interrupt class.
type irqRecorder struct {
	sum   map[device.IRQ]sim.Cycles
	count map[device.IRQ]int
	min   map[device.IRQ]sim.Cycles
	max   map[device.IRQ]sim.Cycles
}

func newIRQRecorder() *irqRecorder {
	return &irqRecorder{
		sum:   map[device.IRQ]sim.Cycles{},
		count: map[device.IRQ]int{},
		min:   map[device.IRQ]sim.Cycles{},
		max:   map[device.IRQ]sim.Cycles{},
	}
}

func (r *irqRecorder) Name() string                           { return "irq-recorder" }
func (r *irqRecorder) OnTick(*proc.Proc, cpu.Mode)            {}
func (r *irqRecorder) OnRun(*proc.Proc, cpu.Mode, sim.Cycles) {}
func (r *irqRecorder) Usage(proc.PID) metering.Usage          { return metering.Usage{} }
func (r *irqRecorder) OnReap(parent, child proc.PID)          {}
func (r *irqRecorder) ChildrenUsage(proc.PID) metering.Usage  { return metering.Usage{} }
func (r *irqRecorder) Snapshot() map[proc.PID]metering.Usage  { return nil }
func (r *irqRecorder) Clone() metering.Accountant             { return r }
func (r *irqRecorder) OnInterrupt(irq device.IRQ, _ *proc.Proc, d sim.Cycles) {
	r.sum[irq] += d
	r.count[irq]++
	if r.count[irq] == 1 || d < r.min[irq] {
		r.min[irq] = d
	}
	if d > r.max[irq] {
		r.max[irq] = d
	}
}

// TestDiskIRQChargesHandlerBody pins the disk completion interrupt
// cost: IRQEntry + IRQHandlerDisk + IRQExit, exactly once per
// completed I/O (reads and writebacks alike). The seed tree
// double-charged IRQEntry and omitted the handler body entirely.
func TestDiskIRQChargesHandlerBody(t *testing.T) {
	rec := newIRQRecorder()
	const pages = 8
	m := New(Config{
		Seed:         3,
		CPUHz:        1_000_000_000,
		PhysMemBytes: pages * mem.DefaultPageSize,
		Accountants:  []metering.Accountant{metering.NewTSC(), rec},
	})
	// Two sweeps of twice-RAM dirty pages: the first takes minor
	// faults and dirty evictions (writebacks), the second major
	// faults (blocking reads) on the swapped-out pages.
	_, err := m.Spawn(SpawnConfig{
		Name:    "pager",
		Content: "pager v1",
		Libs:    []string{},
		Body: func(ctx guest.Context) {
			for sweep := 0; sweep < 2; sweep++ {
				for pg := uint64(0); pg < 2*pages; pg++ {
					ctx.Store(0x100000 + pg*mem.DefaultPageSize)
					ctx.Compute(10_000)
				}
			}
			// Outlive the writeback backlog so every queued
			// completion interrupt actually fires before exit.
			ctx.Sleep(1_000_000_000)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	ios, writes := m.Disk().IOs(), m.Disk().Writes()
	if ios == 0 || writes == 0 {
		t.Fatalf("scenario did not exercise the disk: reads=%d writes=%d", ios, writes)
	}
	c := m.CPU().Costs()
	perIRQ := c.IRQEntry + c.IRQHandlerDisk + c.IRQExit
	if got, want := rec.count[device.IRQDisk], int(ios+writes); got != want {
		t.Fatalf("disk IRQs = %d, want %d (one per completed I/O)", got, want)
	}
	if rec.min[device.IRQDisk] != perIRQ || rec.max[device.IRQDisk] != perIRQ {
		t.Fatalf("disk IRQ charge in [%d, %d], want exactly %d = entry(%d)+handler(%d)+exit(%d)",
			rec.min[device.IRQDisk], rec.max[device.IRQDisk], perIRQ,
			c.IRQEntry, c.IRQHandlerDisk, c.IRQExit)
	}
	if got, want := rec.sum[device.IRQDisk], sim.Cycles(ios+writes)*perIRQ; got != want {
		t.Fatalf("total disk IRQ cycles = %d, want %d", got, want)
	}
}

// TestPreemptGridSnapsAtTickBoundary pins the schedulePreempt fix:
// when the grid arithmetic lands the preemption point past the next
// tick (any HZ where tickCycles %% k != 0), the unsigned snap test
// used to wrap and leave the point beyond the tick. It must snap onto
// the tick instead.
func TestPreemptGridSnapsAtTickBoundary(t *testing.T) {
	// tick = 1_000_250 / 250 = 4001 cycles; nice -20 gives k = 8,
	// interval = 500, so from now = 4000 the next grid point is 4500,
	// past the tick at 4001.
	m := New(Config{Seed: 1, CPUHz: 1_000_250, HZ: 250})
	if m.tickCycles != 4001 {
		t.Fatalf("tickCycles = %d, want 4001", m.tickCycles)
	}
	m.cpu.Run(4000)

	m.schedulePreempt(-20)
	at, ok := findEvent(m, "preempt")
	if !ok {
		t.Fatal("no preempt event scheduled")
	}
	if at != m.nextTickAt {
		t.Fatalf("preempt point at %d, want snapped to the tick at %d", at, m.nextTickAt)
	}
}

// TestPreemptGridMidJiffyUnaffected keeps the ordinary case honest:
// a grid point that lands inside the jiffy stays where the grid put
// it.
func TestPreemptGridMidJiffyUnaffected(t *testing.T) {
	m := New(Config{Seed: 1, CPUHz: 1_000_250, HZ: 250})
	m.cpu.Run(1000)
	m.schedulePreempt(-20) // interval 500 → next point 1500
	at, ok := findEvent(m, "preempt")
	if !ok {
		t.Fatal("no preempt event scheduled")
	}
	if at != 1500 {
		t.Fatalf("preempt point at %d, want 1500", at)
	}
}

// findEvent drains the machine queue looking for the first event of
// the given kind (destructive; test-only).
func findEvent(m *Machine, kind string) (sim.Cycles, bool) {
	for m.queue.Len() > 0 {
		e := m.queue.Pop()
		if e.Kind == kind {
			return e.At, true
		}
	}
	return 0, false
}

// TestRunUntilSlicesMatchRun drives one machine to completion in
// fine-grained RunUntil slices (a deliberately awkward slice width
// that divides neither the tick nor any cost constant) and demands
// the exact clock and accounting a plain Run produces — the guarantee
// the cluster's lockstep barrier relies on.
func TestRunUntilSlicesMatchRun(t *testing.T) {
	build := func() (*Machine, proc.PID) {
		m := New(Config{Seed: 9, CPUHz: 1_000_000_000})
		burst := sim.Cycles(300_000)
		p, err := m.Spawn(SpawnConfig{
			Name:    "worker",
			Content: "worker v1",
			Body: func(ctx guest.Context) {
				for i := 0; i < 50; i++ {
					ctx.Compute(burst)
					ctx.Sleep(burst / 3)
					ctx.Store(0x200000 + uint64(i)*64)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m, p.PID
	}

	solo, soloPID := build()
	if err := solo.Run(); err != nil {
		t.Fatal(err)
	}

	sliced, slicedPID := build()
	slice := sim.Cycles(1_234_567)
	limit := slice
	for i := 0; ; i++ {
		if i > 1_000_000 {
			t.Fatal("sliced run did not terminate")
		}
		done, err := sliced.RunUntil(limit)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		limit += slice
	}

	if got, want := sliced.Clock().Now(), solo.Clock().Now(); got != want {
		t.Fatalf("sliced clock = %d, solo = %d", got, want)
	}
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		su, _ := solo.UsageBy(scheme, soloPID)
		cu, _ := sliced.UsageBy(scheme, slicedPID)
		if su != cu {
			t.Fatalf("%s usage diverged: sliced %+v, solo %+v", scheme, cu, su)
		}
	}
}
