package kernel

import (
	"crypto/sha256"
	"encoding/hex"

	"repro/internal/proc"
	"repro/internal/sim"
)

// Stats are per-thread-group observable counters. The trustworthy
// metering layer (internal/core) reads these to corroborate or refute
// a bill: a process with hundreds of thousands of trace stops, or a
// large gap between tick-sampled and TSC-measured time, did not run
// undisturbed.
type Stats struct {
	Forks           uint64
	ThreadsSpawned  uint64
	Syscalls        uint64
	ContextSwitches uint64 // times this group was switched onto the CPU
	Preemptions     uint64 // involuntary descheduling events
	TraceStops      uint64 // ptrace-induced stops
	DebugExceptions uint64 // hardware watchpoint hits
	SignalsReceived uint64
	MinorFaults     uint64
	MajorFaults     uint64
	IRQCycles       sim.Cycles // interrupt-handler cycles taken while current
	DiskWaitCycles  sim.Cycles // blocked on swap I/O
	TicksAbsorbed   uint64     // timer ticks charged to this group
}

// MeasurementKind classifies an entry in the code-identity log.
type MeasurementKind int

const (
	// MeasureProgram is an executable image loaded by exec.
	MeasureProgram MeasurementKind = iota + 1
	// MeasureLibrary is a shared object mapped into the process.
	MeasureLibrary
	// MeasureInherited is the image a forked child starts executing
	// (its parent's) before any exec.
	MeasureInherited
)

func (k MeasurementKind) String() string {
	switch k {
	case MeasureProgram:
		return "program"
	case MeasureLibrary:
		return "library"
	case MeasureInherited:
		return "inherited"
	default:
		return "unknown"
	}
}

// Measurement is one entry of the load-time code-identity log, the
// record a TPM-backed integrity measurement architecture (the paper's
// reference [15]) would extend into a PCR.
type Measurement struct {
	PID    proc.PID
	TGID   proc.PID
	Kind   MeasurementKind
	Name   string
	Digest string
}

// absorb folds a reaped child's counters into this (parent) record,
// the statistics analogue of rusage-children accumulation.
func (s *Stats) absorb(c *Stats) {
	s.Forks += c.Forks
	s.ThreadsSpawned += c.ThreadsSpawned
	s.Syscalls += c.Syscalls
	s.ContextSwitches += c.ContextSwitches
	s.Preemptions += c.Preemptions
	s.TraceStops += c.TraceStops
	s.DebugExceptions += c.DebugExceptions
	s.SignalsReceived += c.SignalsReceived
	s.MinorFaults += c.MinorFaults
	s.MajorFaults += c.MajorFaults
	s.IRQCycles += c.IRQCycles
	s.DiskWaitCycles += c.DiskWaitCycles
	s.TicksAbsorbed += c.TicksAbsorbed
}

// ProgramDigest measures an executable image's identity.
func ProgramDigest(name, content string) string {
	h := sha256.Sum256([]byte("prog\x00" + name + "\x00" + content))
	return hex.EncodeToString(h[:])
}
