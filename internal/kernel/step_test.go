package kernel

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/metering"
	"repro/internal/proc"
	"repro/internal/sim"
)

// mixedGuest is a resumable guest exercising most of the request
// surface: compute spans, a syscall, a sleep, a yield, a clock read,
// a fork of a goroutine-driver child plus the wait that reaps it, and
// a nonzero exit. Both drivers run this exact source.
type mixedGuest struct {
	pc       int
	childPID proc.PID
	wres     guest.WaitResult
	wok      bool
	clock    sim.Cycles
}

func (g *mixedGuest) run(ctx guest.Context, r guest.Resume) guest.Step {
	switch g.pc {
	case 0:
		g.pc = 1
		ctx.Compute(1_000_000)
		return g.run
	case 1:
		g.pc = 2
		//simlint:errno-ok no faults configured; the reply lands in the next Resume anyway
		ctx.Syscall("read")
		return g.run
	case 2:
		g.pc = 3
		ctx.Fork("child", func(c guest.Context) {
			c.Compute(500_000)
			c.Exit(42)
		})
		return g.run
	case 3:
		g.childPID = proc.PID(r.Ret)
		g.pc = 4
		ctx.Wait()
		return g.run
	case 4:
		g.wres, g.wok = r.Wres, r.OK
		g.pc = 5
		ctx.Sleep(2_000_000)
		return g.run
	case 5:
		g.pc = 6
		ctx.Yield()
		return g.run
	case 6:
		g.pc = 7
		ctx.ClockNow()
		return g.run
	case 7:
		g.clock = sim.Cycles(r.Ret)
		g.pc = 8
		ctx.Compute(750_000)
		return g.run
	}
	ctx.Exit(7)
	return nil
}

// runMixed runs the mixed guest under the selected driver and returns
// the guest state plus the machine for ledger comparison.
func runMixed(t *testing.T, flyweight bool) (*mixedGuest, *Machine, proc.PID) {
	t.Helper()
	m := testMachine(t)
	g := &mixedGuest{}
	sc := SpawnConfig{Name: "mixed"}
	if flyweight {
		sc.Step = g.run
	} else {
		sc.Body = guest.StepRoutine(g.run)
	}
	p, err := m.Spawn(sc)
	if err != nil {
		t.Fatal(err)
	}
	run(t, m)
	return g, m, p.PID
}

func TestFlyweightMatchesGoroutineDriver(t *testing.T) {
	gf, mf, pf := runMixed(t, true)
	gg, mg, pg := runMixed(t, false)

	if !gf.wok || !gg.wok {
		t.Fatalf("wait reaped no child: flyweight ok=%v goroutine ok=%v", gf.wok, gg.wok)
	}
	if gf.wres.ExitCode != 42 || gg.wres.ExitCode != 42 {
		t.Fatalf("child exit codes = %d / %d, want 42", gf.wres.ExitCode, gg.wres.ExitCode)
	}
	if gf.childPID != gg.childPID || gf.wres.PID != gg.wres.PID {
		t.Fatalf("child pids diverged: flyweight fork=%d wait=%d, goroutine fork=%d wait=%d",
			gf.childPID, gf.wres.PID, gg.childPID, gg.wres.PID)
	}
	if gf.clock == 0 || gf.clock != gg.clock {
		t.Fatalf("ClockNow diverged: flyweight %d, goroutine %d", gf.clock, gg.clock)
	}
	if nf, ng := mf.Clock().Now(), mg.Clock().Now(); nf != ng {
		t.Fatalf("final virtual time diverged: flyweight %d, goroutine %d", nf, ng)
	}
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		uf, _ := mf.UsageBy(scheme, pf)
		ug, _ := mg.UsageBy(scheme, pg)
		if uf != ug {
			t.Fatalf("%s usage diverged: flyweight %+v, goroutine %+v", scheme, uf, ug)
		}
	}
}

// TestFlyweightBarrierSlices pins that driving a flyweight guest in
// RunUntil barrier slices produces the exact history Run would — the
// same invariant the goroutine driver holds, and what a cluster's
// lockstep depends on.
func TestFlyweightBarrierSlices(t *testing.T) {
	whole := func() (sim.Cycles, metering.Usage) {
		m := testMachine(t)
		g := &mixedGuest{}
		p, _ := m.Spawn(SpawnConfig{Name: "mixed", Step: g.run})
		run(t, m)
		u, _ := m.UsageBy("tsc", p.PID)
		return m.Clock().Now(), u
	}
	sliced := func(slice sim.Cycles) (sim.Cycles, metering.Usage) {
		m := testMachine(t)
		g := &mixedGuest{}
		p, _ := m.Spawn(SpawnConfig{Name: "mixed", Step: g.run})
		limit := slice
		for {
			done, err := m.RunUntil(limit)
			if err != nil {
				t.Fatalf("run until %d: %v", limit, err)
			}
			if done {
				break
			}
			limit += slice
		}
		u, _ := m.UsageBy("tsc", p.PID)
		return m.Clock().Now(), u
	}

	wantNow, wantUsage := whole()
	for _, slice := range []sim.Cycles{100_000, 777_777, 3_000_000} {
		gotNow, gotUsage := sliced(slice)
		if gotNow != wantNow || gotUsage != wantUsage {
			t.Fatalf("slice %d: now=%d usage=%+v, want now=%d usage=%+v",
				slice, gotNow, gotUsage, wantNow, wantUsage)
		}
	}
}

// TestFlyweightContractViolations pins the driver's determinism
// guards: an activation that posts twice, or returns a continuation
// without posting, is a guest bug and must fail loudly rather than
// silently diverge between drivers.
func TestFlyweightContractViolations(t *testing.T) {
	mustPanic := func(name string, step guest.Step) {
		t.Helper()
		m := testMachine(t)
		if _, err := m.Spawn(SpawnConfig{Name: name, Step: step}); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected a contract panic, got none", name)
			}
			m.Shutdown()
		}()
		_ = m.Run()
	}

	mustPanic("double-post", func(ctx guest.Context, r guest.Resume) guest.Step {
		ctx.Compute(1000)
		ctx.Sleep(1000) // second post in one activation
		return nil
	})
	mustPanic("no-post", func(ctx guest.Context, r guest.Resume) guest.Step {
		return func(guest.Context, guest.Resume) guest.Step { return nil }
	})
}

// TestSpawnRequiresExactlyOneDriver pins the SpawnConfig validation.
func TestSpawnRequiresExactlyOneDriver(t *testing.T) {
	m := testMachine(t)
	if _, err := m.Spawn(SpawnConfig{Name: "none"}); err == nil {
		t.Fatal("spawn with neither Body nor Step succeeded")
	}
	both := SpawnConfig{
		Name: "both",
		Body: func(guest.Context) {},
		Step: func(guest.Context, guest.Resume) guest.Step { return nil },
	}
	if _, err := m.Spawn(both); err == nil {
		t.Fatal("spawn with both Body and Step succeeded")
	}
	m.Shutdown()
}

// TestRetryStepMatchesBlockingRetry pins the resumable retry
// combinator against the blocking wrapper it mirrors: under the same
// injected fault schedule both must issue the same requests and land
// on the same final clock.
func TestRetryStepMatchesBlockingRetry(t *testing.T) {
	cfg := func() Config {
		return Config{
			Seed:     9,
			CPUHz:    1_000_000_000,
			MaxSteps: 50_000_000,
			Faults: &FaultSpec{Syscalls: []SyscallFault{
				// Transient failures likely but not certain.
				{Name: "read", Errno: guest.EAGAIN, ProbPPM: 400_000},
			}},
		}
	}
	const budget = 1 << 16

	type outcome struct {
		now    sim.Cycles
		faults uint64
		errs   int
	}

	blocking := func() outcome {
		m := New(cfg())
		var errs int
		m.Spawn(SpawnConfig{Name: "poll", Body: func(ctx guest.Context) {
			for i := 0; i < 8; i++ {
				if _, _, err := guest.RecvRetry(ctx, budget); err != nil {
					errs++
				}
			}
		}})
		run(t, m)
		return outcome{m.Clock().Now(), m.FaultsInjected(), errs}
	}

	resumable := func() outcome {
		m := New(cfg())
		var errs int
		type poller struct {
			i     int
			retry guest.RetryStep
			op    guest.RetryOp
			done  guest.RetryDone
			self  guest.Step
		}
		g := &poller{}
		g.op = func(ctx guest.Context) {
			//simlint:errno-ok resumable post: the errno arrives in the next activation's Resume
			ctx.NetRecv()
		}
		g.done = func(ctx guest.Context, r guest.Resume) guest.Step {
			if r.Err != nil {
				errs++
			}
			g.i++
			if g.i >= 8 {
				return nil
			}
			return g.retry.Begin(ctx, g.op, budget, g.done)
		}
		g.self = func(ctx guest.Context, r guest.Resume) guest.Step {
			return g.retry.Begin(ctx, g.op, budget, g.done)
		}
		m.Spawn(SpawnConfig{Name: "poll", Step: g.self})
		run(t, m)
		return outcome{m.Clock().Now(), m.FaultsInjected(), errs}
	}

	want := blocking()
	got := resumable()
	if want.faults == 0 {
		t.Fatal("fault schedule injected nothing; retry loop untested")
	}
	if got != want {
		t.Fatalf("resumable retry diverged: got %+v, want %+v", got, want)
	}
}
