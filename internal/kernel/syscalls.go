package kernel

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/guest"
	"repro/internal/lib"
	"repro/internal/mem"
	"repro/internal/metering"
	"repro/internal/proc"
	"repro/internal/sim"
)

// Ptrace errors surfaced to guests.
var (
	ErrPtraceNoSuchProcess = errors.New("ptrace: no such process")
	ErrPtraceAlreadyTraced = errors.New("ptrace: already traced")
	ErrPtraceNotStopped    = errors.New("ptrace: tracee not stopped")
	ErrPtraceNotTracer     = errors.New("ptrace: caller is not the tracer")
	ErrPtraceBadRegister   = errors.New("ptrace: unsupported user offset")
)

// syscallServiceUs maps generic syscall classes to service time in
// microseconds of kernel work.
var syscallServiceUs = map[string]sim.Cycles{
	"read":      2,
	"write":     2,
	"sendto":    2,
	"open":      3,
	"close":     1,
	"stat":      2,
	"getrusage": 1,
	"gettime":   1,
	"futex":     1,
	"brk":       2,
}

func (m *Machine) syscallCost(name string) sim.Cycles {
	us := syscallServiceUs[name]
	if us == 0 {
		us = 1
	}
	perUs := sim.Cycles(uint64(m.cfg.CPUHz) / 1_000_000)
	c := m.cpu.Costs()
	return c.SyscallEntry + us*perUs + c.SyscallExit
}

// beginRequest services one guest request. Kernel services are
// non-preemptible lumps (the 2.6-era server configuration); only
// rqCompute burns preemptibly.
func (m *Machine) beginRequest(t *task, r *request) {
	st := t.st
	c := m.cpu.Costs()

	switch r.kind {
	case rqCompute:
		t.pendingUser = r.cycles

	case rqAccess:
		m.serviceAccess(t, r, false)

	case rqSyscall:
		st.Syscalls++
		m.chargedAdvance(m.syscallCost(r.name), cpu.Kernel, t)
		// An injected fault fails the request after the full
		// entry/service/exit path — the kernel did the work and then
		// the device said no, so the billing is identical either way.
		if e, hit := m.injectFault(r.name); hit {
			r.err = e
		}
		m.grantNow(t)

	case rqFork:
		st.Forks++
		st.Syscalls++
		m.chargedAdvance(c.Fork, cpu.Kernel, t)
		child := m.doFork(t, r.name, r.body, false)
		r.ret = uint64(child.PID)
		m.grantNow(t)

	case rqThread:
		st.ThreadsSpawned++
		st.Syscalls++
		m.chargedAdvance(c.Fork/2, cpu.Kernel, t) // clone with shared mm is cheaper
		child := m.doFork(t, r.name, r.body, true)
		r.ret = uint64(child.PID)
		m.grantNow(t)

	case rqWait:
		st.Syscalls++
		m.chargedAdvance(c.Wait, cpu.Kernel, t)
		res, found, has := m.waitScan(t)
		switch {
		case found:
			r.wres, r.wok = res, true
			m.grantNow(t)
		case !has:
			r.wok = false
			m.grantNow(t)
		default:
			t.waitingChild = true
			t.blockedAt = m.clock.Now()
			m.blockCurrent(proc.Blocked)
		}

	case rqExit:
		m.chargedAdvance(c.ProcessExit, cpu.Kernel, t)
		t.cur = nil
		m.doExit(t, r.code)

	case rqYield:
		st.Syscalls++
		m.chargedAdvance(c.SyscallEntry+c.SchedPick+c.SyscallExit, cpu.Kernel, t)
		m.grantNow(t)
		if m.sched.Runnable() > 0 {
			t.p.State = proc.Ready
			m.enqueue(t)
			m.current = nil
		}

	case rqSleep:
		st.Syscalls++
		m.chargedAdvance(m.syscallCost("gettime"), cpu.Kernel, t)
		wakeAt := m.clock.Now() + r.cycles
		t.blockedAt = m.clock.Now()
		m.blockCurrent(proc.Blocked)
		m.queue.ScheduleTagged(wakeAt, "sleep-wake", uint64(t.p.PID), t.sleepFire)

	case rqNice:
		st.Syscalls++
		m.chargedAdvance(m.syscallCost("gettime"), cpu.Kernel, t)
		t.p.SetNice(r.nice)
		m.grantNow(t)

	case rqPtrace:
		st.Syscalls++
		r.err = m.doPtrace(t, r)
		m.grantNow(t)

	case rqUsage:
		st.Syscalls++
		m.chargedAdvance(m.syscallCost("getrusage"), cpu.Kernel, t)
		u := m.acct.Usage(t.p.TGID)
		r.u, r.s = u.User, u.System
		m.grantNow(t)

	case rqExec:
		st.Syscalls++
		r.err = m.doExec(t, r.prog)
		m.grantNow(t)

	case rqFind:
		st.Syscalls++
		m.chargedAdvance(m.syscallCost("stat"), cpu.Kernel, t)
		for _, p := range m.table.All() {
			if p.Name == r.name && p.Alive() {
				r.ret, r.wok = uint64(p.PID), true
				break
			}
		}
		m.grantNow(t)

	case rqClock:
		st.Syscalls++
		// clock_gettime(CLOCK_MONOTONIC): the read itself is the
		// syscall service; the returned instant is the clock after the
		// service, the moment control returns to the guest.
		m.chargedAdvance(m.syscallCost("gettime"), cpu.Kernel, t)
		r.ret = uint64(m.clock.Now())
		m.grantNow(t)

	case rqNetSend:
		st.Syscalls++
		if e, hit := m.injectFault("sendto"); hit {
			// The syscall fails before reaching the driver: entry/
			// service/exit are billed but not the tx path, and the NIC
			// never sees the frame.
			m.chargedAdvance(m.syscallCost("sendto"), cpu.Kernel, t)
			r.err = e
			m.grantNow(t)
			break
		}
		// sendto entry/service/exit, then the driver's tx path — ring
		// descriptor fill and doorbell — all system time of the sender.
		m.chargedAdvance(m.syscallCost("sendto")+c.NICTx, cpu.Kernel, t)
		f := r.frame
		f.Src = m.nic.Addr()
		r.wok = m.nic.TransmitTo(f)
		m.grantNow(t)

	case rqNetForward:
		st.Syscalls++
		if e, hit := m.injectFault("sendto"); hit {
			m.chargedAdvance(m.syscallCost("sendto"), cpu.Kernel, t)
			r.err = e
			m.grantNow(t)
			break
		}
		// Same driver path as a send; the frame's Src is preserved so
		// the next hop still sees the original sender.
		m.chargedAdvance(m.syscallCost("sendto")+c.NICTx, cpu.Kernel, t)
		r.wok = m.nic.TransmitTo(r.frame)
		m.grantNow(t)

	case rqNetRecv:
		st.Syscalls++
		m.chargedAdvance(m.syscallCost("read"), cpu.Kernel, t)
		if e, hit := m.injectFault("read"); hit {
			// The read fails after the billed service; any buffered
			// frame stays queued for the retry.
			r.err = e
			m.grantNow(t)
			break
		}
		r.frame, r.wok = m.popRxFrame()
		m.grantNow(t)

	case rqNetRx:
		st.Syscalls++
		m.chargedAdvance(m.syscallCost("read"), cpu.Kernel, t)
		r.ret = m.nic.Received()
		m.grantNow(t)

	case rqNetRxWait:
		st.Syscalls++
		m.chargedAdvance(m.syscallCost("read"), cpu.Kernel, t)
		if n := m.nic.Received(); n > r.addr {
			r.ret = n
			m.grantNow(t)
			break
		}
		// Block until the NIC delivers a fresh frame; nicRx completes
		// the request. Wait order is block order (deterministic).
		t.blockedAt = m.clock.Now()
		m.blockCurrent(proc.Blocked)
		m.netWaiters = append(m.netWaiters, t)

	default:
		panic(fmt.Sprintf("kernel: unknown request kind %d from %v", r.kind, t.p))
	}
}

// serviceAccess performs one guest memory access: watchpoint check,
// then the paging path. skipWatch resumes an access whose trap has
// already been taken.
func (m *Machine) serviceAccess(t *task, r *request, skipWatch bool) {
	c := m.cpu.Costs()
	st := t.st

	if !skipWatch && t.p.Tracer != nil && t.p.Debug.Matches(r.addr, r.write) {
		m.debugTrap(t, r)
		return
	}
	t.watchFired = false

	// The access itself: a couple of user-mode cycles.
	m.chargedAdvance(accessCost, cpu.User, t)

	res := t.p.Space.Touch(r.addr, r.write)
	switch res.Kind {
	case mem.NoFault:
		// Fall through to grant.
	case mem.MinorFault:
		st.MinorFaults++
		m.chargedAdvance(c.MinorFault, cpu.Kernel, t)
	case mem.MajorFault:
		st.MajorFaults++
		m.chargedAdvance(c.MajorFault+c.DiskAccessSetup, cpu.Kernel, t)
		// OOM killer: a task whose footprint dominates RAM and keeps
		// major-faulting is killed, as the paper observes ("a
		// process will be killed by the kernel due to lack of
		// physical memory"), which caps the exception-flood attack.
		if st.MajorFaults > m.oomLimit() &&
			t.p.Space.FootprintPages() > m.mem.TotalFrames()/2 {
			st.SignalsReceived++
			m.doExit(t, 137) // SIGKILL
			return
		}
	}
	// Dirty evictions queue asynchronous writeback: kernel setup time
	// now, disk occupancy later, no blocking for this task. The
	// completion interrupt (machine's writebackFire) is billed to
	// whichever task is then current.
	for i := 0; i < res.SwapOuts; i++ {
		m.chargedAdvance(c.DiskAccessSetup, cpu.Kernel, t)
		m.disk.SubmitWrite(m.writebackFire)
	}

	if res.Kind == mem.MajorFault {
		// Block until the swap-in completes (IRQ first, then wake).
		t.blockedAt = m.clock.Now()
		m.blockCurrent(proc.Blocked)
		m.disk.SubmitTagged(uint64(t.p.PID), t.swapInFire)
		return
	}
	m.grantNow(t)
}

// accessCost is the user-mode cost of one explicit guest memory
// access (a handful of cycles; guests model bulk work via Compute).
const accessCost sim.Cycles = 4

// debugTrap handles a hardware watchpoint hit: the #DB exception,
// SIGTRAP delivery to the traced task, and the stop that hands
// control to the tracer. All of it is kernel work in the victim's
// context — the thrashing attack's whole effect (Fig. 9).
func (m *Machine) debugTrap(t *task, r *request) {
	c := m.cpu.Costs()
	st := t.st
	st.DebugExceptions++
	st.TraceStops++
	st.SignalsReceived++
	m.chargedAdvance(c.DebugException+c.SignalDeliver+c.PtraceStop, cpu.Kernel, t)
	t.watchFired = true
	t.stopReported = false
	// When the tracer resumes this task, finish the interrupted
	// access (without re-trapping) at next dispatch.
	t.resume = func() { m.serviceAccess(t, r, true) }
	m.blockCurrent(proc.Stopped)
	m.notifyWaiters(t)
}

// doFork creates a child task. thread selects CLONE_VM|CLONE_THREAD
// semantics: shared address space and thread group.
func (m *Machine) doFork(t *task, name string, body guest.Routine, thread bool) *proc.Proc {
	child := m.table.Create(name, t.p)
	child.SetNice(t.p.Nice())
	if thread {
		child.TGID = t.p.TGID
		child.Space = t.p.Space
	} else {
		child.Space = m.mem.NewSpace(name)
	}
	ct := m.newTask(child, body)
	ct.linkMap = t.linkMap
	ct.image = t.image
	m.groupCount[child.TGID]++
	if !thread && t.image != nil {
		// The child initially executes the parent's image (between
		// fork and any exec) — the window the shell attack exploits.
		m.measure(child, MeasureInherited, t.image.Name, ProgramDigest(t.image.Name, t.image.Content))
	}
	child.State = proc.Ready
	m.live++
	m.enqueue(ct)
	if m.current != nil && m.sched.ShouldPreempt(m.current.p, child) {
		m.schedulePreempt(child.Nice())
	}
	return child
}

// doExec replaces the task image: links libraries per LD_PRELOAD,
// charges loader work, and records integrity measurements.
func (m *Machine) doExec(t *task, prog *guest.Program) error {
	if t.p.IsThread() {
		return fmt.Errorf("exec: %v is a thread", t.p)
	}
	lm, err := lib.BuildLinkMap(m.reg, t.p.Env[lib.PreloadEnv], prog.Libs)
	if err != nil {
		return err
	}
	c := m.cpu.Costs()
	m.chargedAdvance(c.Execve, cpu.Kernel, t)
	m.chargedAdvance(c.DynamicLink*sim.Cycles(1+len(lm.Libraries())), cpu.Kernel, t)
	t.linkMap = lm
	t.image = prog
	t.billable = true
	m.measure(t.p, MeasureProgram, prog.Name, ProgramDigest(prog.Name, prog.Content))
	for _, l := range lm.Libraries() {
		m.measure(t.p, MeasureLibrary, l.Name, l.Digest())
	}
	return nil
}

// doExit turns the current task into a zombie, releases resources,
// and notifies whoever is waiting.
func (m *Machine) doExit(t *task, code int) {
	t.p.ExitCode = code
	t.cur = nil
	t.gone = true
	m.blockCurrent(proc.Zombie)
	m.sched.Remove(t.p)
	m.live--

	// Detach and resume any tracees (ptrace detaches on tracer
	// exit), so a dead attacker cannot leave the victim frozen.
	for _, tr := range t.tracees {
		if tr.p.Tracer == t.p {
			tr.p.Tracer = nil
			tr.p.Debug = proc.DebugRegs{}
			tr.stopPending = false
			if tr.p.State == proc.Stopped {
				tr.p.State = proc.Ready
				m.enqueue(tr)
			}
		}
	}
	t.tracees = nil

	// Last task of the thread group: release the address space and
	// preserve the group's final accounting if it is billable.
	m.groupCount[t.p.TGID]--
	if m.groupCount[t.p.TGID] <= 0 {
		delete(m.groupCount, t.p.TGID)
		if t.p.Space != nil {
			t.p.Space.Release()
		}
		leader := m.tasks[t.p.TGID]
		if t.billable || (leader != nil && leader.billable) {
			m.snapshotFinalUsage(t.p.TGID)
		}
		// A zombie leader becomes reapable once its last thread
		// exits; re-notify whoever waits on it.
		if t.p.IsThread() && leader != nil && leader.p.State == proc.Zombie {
			m.notifyWaiters(leader)
		}
	}

	parent := t.p.Parent
	hasParent := parent != nil && parent.Alive()
	hasTracer := t.p.Tracer != nil && t.p.Tracer.Alive()
	if !hasParent && !hasTracer {
		// No one will reap: auto-reap as init would, folding the
		// orphan's accounting into the system bucket.
		t.p.State = proc.Reaped
		m.reapCleanup(nil, t.p)
		return
	}
	if hasParent {
		parent.PushSignal(proc.SIGCHLD)
		m.statOf(parent.TGID).SignalsReceived++
	}
	m.notifyWaiters(t)
}

// snapshotFinalUsage preserves a thread group's accounted time and
// children rollup across all schemes before reaping can fold it away.
func (m *Machine) snapshotFinalUsage(tgid proc.PID) {
	for _, a := range m.acct.Accountants() {
		name := a.Name()
		if m.finalUsage[name] == nil {
			m.finalUsage[name] = make(map[proc.PID]metering.Usage)
			m.finalChildren[name] = make(map[proc.PID]metering.Usage)
		}
		m.finalUsage[name][tgid] = a.Usage(tgid)
		m.finalChildren[name][tgid] = a.ChildrenUsage(tgid)
	}
}

// reapCleanup retires a reaped task: folds its accounting and stats
// into the reaper (or the system bucket when reaper is nil), unlinks
// it from its parent, and drops it from the tables. Thread-group
// accounting folds only when the group leader is reaped, since
// threads share the leader's TGID ledger.
func (m *Machine) reapCleanup(reaper, child *proc.Proc) {
	reaperTGID := metering.SystemPID
	if reaper != nil {
		reaperTGID = reaper.TGID
	}
	if !child.IsThread() {
		m.acct.OnReap(reaperTGID, child.TGID)
		if cs := m.stats[child.TGID]; cs != nil {
			billableChild := false
			if ct := m.tasks[child.PID]; ct != nil {
				billableChild = ct.billable
			}
			if !billableChild {
				if reaper != nil {
					m.statOf(reaperTGID).absorb(cs)
				}
				delete(m.stats, child.TGID)
			}
		}
	}
	if child.Parent != nil {
		child.Parent.RemoveChild(child)
	}
	delete(m.tasks, child.PID)
	m.table.Remove(child.PID)
}

// notifyWaiters completes a pending Wait in the parent and/or tracer
// of subject, waking them after the scheduling latency.
func (m *Machine) notifyWaiters(subject *task) {
	watchers := make([]*proc.Proc, 0, 2)
	if p := subject.p.Parent; p != nil {
		watchers = append(watchers, p)
	}
	if tr := subject.p.Tracer; tr != nil && tr != subject.p.Parent {
		watchers = append(watchers, tr)
	}
	for _, w := range watchers {
		wt := m.tasks[w.PID]
		if wt == nil || !wt.waitingChild || wt.completed || wt.cur == nil {
			continue
		}
		res, found, _ := m.waitScan(wt)
		if !found {
			continue
		}
		wt.cur.wres, wt.cur.wok = res, true
		wt.completed = true
		wt.waitingChild = false
		m.wakeAfterLatency(wt)
	}
}

// waitScan looks for a reportable child/tracee state change: a zombie
// child (reaped), a newly stopped child or tracee, or a zombie
// tracee (reported, not reaped). has reports whether any waitable
// task remains.
func (m *Machine) waitScan(t *task) (res guest.WaitResult, found, has bool) {
	for _, c := range t.p.Children {
		if c.State == proc.Reaped {
			continue
		}
		has = true
		ct := m.tasks[c.PID]
		switch {
		case c.State == proc.Zombie:
			if !c.IsThread() && m.groupCount[c.TGID] > 0 {
				// Zombie group leader with live threads: not
				// reapable until the group empties.
				continue
			}
			if c.Tracer != nil && c.Tracer != t.p && c.Tracer.Alive() {
				// A traced child is effectively reparented to its
				// tracer; the real parent reaps only after the
				// tracer observes the exit and releases it.
				continue
			}
			c.State = proc.Reaped
			res := guest.WaitResult{PID: c.PID, ExitCode: c.ExitCode}
			m.reapCleanup(t.p, c)
			return res, true, true
		case c.State == proc.Stopped && ct != nil && !ct.stopReported:
			if c.Tracer != nil && c.Tracer != t.p {
				// A ptraced child's stop notifications go to the
				// tracer, not the real parent.
				continue
			}
			ct.stopReported = true
			return guest.WaitResult{PID: c.PID, Stopped: true}, true, true
		}
	}
	for i, tr := range t.tracees {
		if tr.p.Tracer != t.p {
			continue
		}
		if tr.p.State == proc.Reaped {
			continue
		}
		has = true
		switch {
		case tr.p.State == proc.Stopped && !tr.stopReported:
			tr.stopReported = true
			return guest.WaitResult{PID: tr.p.PID, Stopped: true}, true, true
		case tr.p.State == proc.Zombie && !tr.stopReported:
			tr.stopReported = true
			res := guest.WaitResult{PID: tr.p.PID, ExitCode: tr.p.ExitCode}
			// Observing the exit releases the tracee back to its
			// real parent (implicit detach-at-death): drop the
			// trace link and let the parent reap — or reap here if
			// the parent is gone.
			tr.p.Tracer = nil
			t.tracees = append(t.tracees[:i:i], t.tracees[i+1:]...)
			if tr.p.Parent != nil && tr.p.Parent.Alive() {
				m.notifyWaiters(tr)
			} else {
				tr.p.State = proc.Reaped
				m.reapCleanup(t.p, tr.p)
			}
			return res, true, true
		}
	}
	return guest.WaitResult{}, false, has
}

// doPtrace implements the trace operations of Section IV-B2.
func (m *Machine) doPtrace(t *task, r *request) error {
	c := m.cpu.Costs()
	target, ok := m.tasks[r.ptPid]
	if !ok || !target.p.Alive() {
		return ErrPtraceNoSuchProcess
	}

	switch r.ptReq {
	case guest.PtraceAttach:
		if target.p.Tracer != nil {
			return ErrPtraceAlreadyTraced
		}
		m.chargedAdvance(m.syscallCost("futex"), cpu.Kernel, t)
		target.p.Tracer = t.p
		t.tracees = append(t.tracees, target)
		// SIGSTOP: stop the target. Kernel-side stop bookkeeping is
		// the target's system time.
		target.p.PushSignal(proc.SIGSTOP)
		tst := target.st
		tst.SignalsReceived++
		tst.TraceStops++
		m.advance(c.SignalDeliver+c.PtraceStop, cpu.Kernel, nil)
		m.acct.OnRun(target.p, cpu.Kernel, c.SignalDeliver+c.PtraceStop)
		switch target.p.State {
		case proc.Ready:
			m.sched.Remove(target.p)
			target.p.State = proc.Stopped
		case proc.Blocked:
			// The stop applies when the blocking condition
			// completes (a blocked task cannot lose its in-flight
			// kernel request).
			target.stopPending = true
		case proc.Running:
			// Attaching to the current task would stop ourselves;
			// only possible if a task traces itself.
			return ErrPtraceNoSuchProcess
		}
		target.stopReported = false
		return nil

	case guest.PtracePokeUser:
		if target.p.Tracer != t.p {
			return ErrPtraceNotTracer
		}
		if target.p.State != proc.Stopped {
			return ErrPtraceNotStopped
		}
		m.chargedAdvance(m.syscallCost("futex"), cpu.Kernel, t)
		switch r.ptAddr {
		case guest.DR0:
			target.p.Debug.DR0 = r.ptData
		case guest.DR7:
			target.p.Debug.DR7 = r.ptData
		default:
			return ErrPtraceBadRegister
		}
		return nil

	case guest.PtraceCont:
		if target.p.Tracer != t.p {
			return ErrPtraceNotTracer
		}
		if target.p.State != proc.Stopped {
			return ErrPtraceNotStopped
		}
		m.chargedAdvance(c.PtraceResume, cpu.Kernel, t)
		target.p.State = proc.Ready
		target.stopReported = false
		m.enqueue(target)
		if m.current != nil && m.sched.ShouldPreempt(m.current.p, target.p) {
			m.schedulePreempt(target.p.Nice())
		}
		return nil

	case guest.PtraceDetach:
		if target.p.Tracer != t.p {
			return ErrPtraceNotTracer
		}
		m.chargedAdvance(m.syscallCost("futex"), cpu.Kernel, t)
		target.p.Tracer = nil
		target.p.Debug = proc.DebugRegs{}
		target.stopPending = false
		for i, tr := range t.tracees {
			if tr == target {
				t.tracees = append(t.tracees[:i:i], t.tracees[i+1:]...)
				break
			}
		}
		if target.p.State == proc.Stopped {
			target.p.State = proc.Ready
			m.enqueue(target)
		}
		return nil

	default:
		return fmt.Errorf("ptrace: unknown request %v", r.ptReq)
	}
}
