package kernel

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/metering"
	"repro/internal/proc"
	"repro/internal/sim"
)

// testMachine builds a small, fast machine: 1 GHz CPU so cycles are
// nanoseconds, HZ=250 (4 ms = 4 M cycles per tick).
func testMachine(t *testing.T) *Machine {
	t.Helper()
	return New(Config{Seed: 1, CPUHz: 1_000_000_000, MaxSteps: 50_000_000})
}

func run(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.Run(); err != nil {
		t.Fatalf("machine run: %v", err)
	}
}

func TestComputeAccountedExactlyByTSC(t *testing.T) {
	m := testMachine(t)
	const work = 10_000_000 // 10 ms
	p, err := m.Spawn(SpawnConfig{Name: "job", Body: func(ctx guest.Context) {
		ctx.Compute(work)
	}})
	if err != nil {
		t.Fatal(err)
	}
	run(t, m)
	u, _ := m.UsageBy("tsc", p.PID)
	if u.User != work {
		t.Fatalf("tsc user = %d, want %d", u.User, work)
	}
	if u.System == 0 {
		t.Fatal("tsc system = 0; exit path should cost something")
	}
}

func TestJiffyQuantisesToTicks(t *testing.T) {
	m := testMachine(t)
	const work = 10_000_000 // 2.5 ticks at 4 ms ticks
	p, _ := m.Spawn(SpawnConfig{Name: "job", Body: func(ctx guest.Context) {
		ctx.Compute(work)
	}})
	run(t, m)
	j, _ := m.UsageBy("jiffy", p.PID)
	tick := m.TickCycles()
	if j.Total()%tick != 0 {
		t.Fatalf("jiffy usage %d not a multiple of tick %d", j.Total(), tick)
	}
	if j.User == 0 {
		t.Fatal("jiffy charged no user ticks for 2.5 ticks of work")
	}
}

func TestForkWaitExit(t *testing.T) {
	m := testMachine(t)
	var childPID proc.PID
	var wres guest.WaitResult
	var wok bool
	p, _ := m.Spawn(SpawnConfig{Name: "parent", Body: func(ctx guest.Context) {
		childPID = ctx.Fork("child", func(c guest.Context) {
			c.Compute(1_000_000)
			c.Exit(42)
		})
		wres, wok = ctx.Wait()
	}})
	run(t, m)
	if !wok {
		t.Fatal("wait returned no child")
	}
	if wres.PID != childPID || wres.ExitCode != 42 || wres.Stopped {
		t.Fatalf("wait result = %+v, want pid=%d code=42", wres, childPID)
	}
	st := m.Stats(p.PID)
	if st.Forks != 1 {
		t.Fatalf("forks = %d, want 1", st.Forks)
	}
	// Reaping retires the child completely: it leaves the table and
	// its usage folds into the parent's children bucket.
	if _, ok := m.Table().Get(childPID); ok {
		t.Fatal("reaped child still in process table")
	}
	cu, _ := m.ChildrenUsageBy("tsc", p.PID)
	if cu.User < 1_000_000 {
		t.Fatalf("children usage = %+v, want >= child's 1M user cycles", cu)
	}
}

func TestWaitWithNoChildren(t *testing.T) {
	m := testMachine(t)
	var wok bool
	m.Spawn(SpawnConfig{Name: "lonely", Body: func(ctx guest.Context) {
		_, wok = ctx.Wait()
	}})
	run(t, m)
	if wok {
		t.Fatal("wait with no children should report ok=false")
	}
}

func TestThreadSharesSpaceAndBilling(t *testing.T) {
	m := testMachine(t)
	p, _ := m.Spawn(SpawnConfig{Name: "leader", Body: func(ctx guest.Context) {
		ctx.SpawnThread("worker", func(c guest.Context) {
			c.Compute(2_000_000)
			c.Store(0x1000) // toucher shares leader's space
		})
		ctx.Compute(1_000_000)
		ctx.Wait()
	}})
	run(t, m)
	u, _ := m.UsageBy("tsc", p.PID)
	// 3 M compute plus the thread's one explicit memory access.
	if u.User != 3_000_000+accessCost {
		t.Fatalf("group user = %d, want %d (leader+thread)", u.User, 3_000_000+accessCost)
	}
	if st := m.Stats(p.PID); st.ThreadsSpawned != 1 {
		t.Fatalf("threads = %d, want 1", st.ThreadsSpawned)
	}
}

func TestRoundRobinSharing(t *testing.T) {
	m := testMachine(t)
	const work = 400_000_000 // 400 ms each, forces multiple quanta
	a, _ := m.Spawn(SpawnConfig{Name: "a", Body: func(ctx guest.Context) { ctx.Compute(work) }})
	b, _ := m.Spawn(SpawnConfig{Name: "b", Body: func(ctx guest.Context) { ctx.Compute(work) }})
	run(t, m)
	ua, _ := m.UsageBy("tsc", a.PID)
	ub, _ := m.UsageBy("tsc", b.PID)
	if ua.User != work || ub.User != work {
		t.Fatalf("user cycles = %d/%d, want %d each", ua.User, ub.User, work)
	}
	if m.Stats(a.PID).Preemptions == 0 && m.Stats(b.PID).Preemptions == 0 {
		t.Fatal("two competing CPU hogs should preempt each other")
	}
	// Elapsed must cover both (single core): >= 800 ms.
	if m.Clock().Now() < 2*work {
		t.Fatalf("elapsed %d < serialised work %d", m.Clock().Now(), 2*work)
	}
}

func TestSleepBlocksWithoutCharging(t *testing.T) {
	m := testMachine(t)
	p, _ := m.Spawn(SpawnConfig{Name: "sleeper", Body: func(ctx guest.Context) {
		ctx.Compute(1_000_000)
		ctx.Sleep(100_000_000) // 100 ms
		ctx.Compute(1_000_000)
	}})
	run(t, m)
	u, _ := m.UsageBy("tsc", p.PID)
	if u.User != 2_000_000 {
		t.Fatalf("user = %d, want 2000000 (sleep must not be billed)", u.User)
	}
	if m.Clock().Now() < 100_000_000 {
		t.Fatalf("elapsed %d; sleep did not advance wall time", m.Clock().Now())
	}
}

func TestYield(t *testing.T) {
	m := testMachine(t)
	var order []string
	m.Spawn(SpawnConfig{Name: "a", Body: func(ctx guest.Context) {
		ctx.Compute(1000)
		ctx.Yield()
		order = append(order, "a")
	}})
	m.Spawn(SpawnConfig{Name: "b", Body: func(ctx guest.Context) {
		ctx.Compute(1000)
		order = append(order, "b")
	}})
	run(t, m)
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestNiceChange(t *testing.T) {
	m := testMachine(t)
	p, _ := m.Spawn(SpawnConfig{Name: "p", Body: func(ctx guest.Context) {
		ctx.SetNice(-10)
		ctx.Compute(1000)
	}})
	run(t, m)
	if p.Nice() != -10 {
		t.Fatalf("nice = %d, want -10", p.Nice())
	}
}

func TestPageFaultCharging(t *testing.T) {
	m := testMachine(t)
	p, _ := m.Spawn(SpawnConfig{Name: "toucher", Body: func(ctx guest.Context) {
		for i := uint64(0); i < 32; i++ {
			ctx.Store(i * mem.DefaultPageSize)
		}
	}})
	run(t, m)
	st := m.Stats(p.PID)
	if st.MinorFaults != 32 {
		t.Fatalf("minor faults = %d, want 32", st.MinorFaults)
	}
	u, _ := m.UsageBy("tsc", p.PID)
	if u.System == 0 {
		t.Fatal("fault handling charged no system time")
	}
}

func TestMajorFaultBlocksOnDisk(t *testing.T) {
	// Two frames of RAM force eviction and swap-in.
	m := New(Config{Seed: 1, CPUHz: 1_000_000_000, PhysMemBytes: 2 * mem.DefaultPageSize, MaxSteps: 10_000_000})
	p, _ := m.Spawn(SpawnConfig{Name: "thrash", Body: func(ctx guest.Context) {
		for round := 0; round < 3; round++ {
			for pg := uint64(0); pg < 4; pg++ {
				ctx.Store(pg * mem.DefaultPageSize)
			}
		}
	}})
	run(t, m)
	st := m.Stats(p.PID)
	if st.MajorFaults == 0 {
		t.Fatal("expected major faults with 2-frame RAM")
	}
	if st.DiskWaitCycles == 0 {
		t.Fatal("major faults should accumulate disk wait")
	}
	if m.Disk().IOs() == 0 {
		t.Fatal("disk saw no I/O")
	}
	u, _ := m.UsageBy("tsc", p.PID)
	if u.System == 0 {
		t.Fatal("fault path charged no system time")
	}
}

func TestNICFloodChargesCurrentTask(t *testing.T) {
	m := testMachine(t)
	const work = 100_000_000 // 100 ms
	p, _ := m.Spawn(SpawnConfig{Name: "victim", Body: func(ctx guest.Context) {
		ctx.Compute(work)
	}})
	m.NIC().StartFlood(20_000)
	run(t, m)
	m.NIC().StopFlood()
	st := m.Stats(p.PID)
	if st.IRQCycles == 0 {
		t.Fatal("flood delivered no IRQ cycles to the victim")
	}
	ts, _ := m.UsageBy("tsc", p.PID)
	pa, _ := m.UsageBy("process-aware", p.PID)
	if ts.System <= pa.System {
		t.Fatalf("tsc system (%d) should exceed process-aware system (%d): IRQ time diverted", ts.System, pa.System)
	}
	sys, _ := m.UsageBy("process-aware", metering.SystemPID)
	if sys.System == 0 {
		t.Fatal("process-aware scheme recorded no system-account IRQ time")
	}
}

func TestPtraceWatchpointCycle(t *testing.T) {
	m := testMachine(t)
	const hits = 25
	victim, _ := m.Spawn(SpawnConfig{Name: "victim", Body: func(ctx guest.Context) {
		for i := 0; i < hits; i++ {
			ctx.Compute(10_000_000) // 10 ms per iteration: outlives attach
			ctx.Load(0x4000)        // hot variable
		}
	}})
	var attachErr error
	m.Spawn(SpawnConfig{Name: "tracer", Nice: -5, Body: func(ctx guest.Context) {
		ctx.Sleep(1_000_000) // let the victim start
		attachErr = ctx.Ptrace(guest.PtraceAttach, victim.PID, 0, 0)
		if attachErr != nil {
			return
		}
		ctx.Wait() // SIGSTOP stop is already visible; drain it
		ctx.Ptrace(guest.PtracePokeUser, victim.PID, guest.DR0, 0x4000)
		ctx.Ptrace(guest.PtracePokeUser, victim.PID, guest.DR7, 1)
		ctx.Ptrace(guest.PtraceCont, victim.PID, 0, 0)
		for {
			res, ok := ctx.Wait()
			if !ok || !res.Stopped {
				return // victim exited
			}
			ctx.Ptrace(guest.PtraceCont, victim.PID, 0, 0)
		}
	}})
	run(t, m)
	if attachErr != nil {
		t.Fatalf("attach: %v", attachErr)
	}
	st := m.Stats(victim.PID)
	if st.DebugExceptions == 0 {
		t.Fatal("no watchpoint hits recorded")
	}
	if st.DebugExceptions > hits {
		t.Fatalf("debug exceptions = %d > access count %d", st.DebugExceptions, hits)
	}
	u, _ := m.UsageBy("tsc", victim.PID)
	if u.System == 0 {
		t.Fatal("thrashing charged no system time to victim")
	}
}

func TestPtraceErrors(t *testing.T) {
	m := testMachine(t)
	victim, _ := m.Spawn(SpawnConfig{Name: "victim", Body: func(ctx guest.Context) {
		ctx.Compute(500_000_000)
	}})
	var errs []error
	m.Spawn(SpawnConfig{Name: "tracer", Nice: -5, Body: func(ctx guest.Context) {
		ctx.Sleep(1_000_000)
		errs = append(errs, ctx.Ptrace(guest.PtraceCont, victim.PID, 0, 0))      // not tracer
		errs = append(errs, ctx.Ptrace(guest.PtraceAttach, proc.PID(999), 0, 0)) // no such pid
		if err := ctx.Ptrace(guest.PtraceAttach, victim.PID, 0, 0); err != nil {
			errs = append(errs, err)
			return
		}
		errs = append(errs, ctx.Ptrace(guest.PtraceAttach, victim.PID, 0, 0))   // already traced
		errs = append(errs, ctx.Ptrace(guest.PtracePokeUser, victim.PID, 3, 1)) // bad register
		errs = append(errs, ctx.Ptrace(guest.PtraceDetach, victim.PID, 0, 0))   // ok
	}})
	run(t, m)
	if len(errs) != 5 {
		t.Fatalf("errs = %v", errs)
	}
	if errs[0] != ErrPtraceNotTracer || errs[1] != ErrPtraceNoSuchProcess ||
		errs[2] != ErrPtraceAlreadyTraced || errs[3] != ErrPtraceBadRegister || errs[4] != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
}

func TestTracerExitResumesVictim(t *testing.T) {
	m := testMachine(t)
	victim, _ := m.Spawn(SpawnConfig{Name: "victim", Body: func(ctx guest.Context) {
		for i := 0; i < 10; i++ {
			ctx.Compute(10_000_000)
			ctx.Load(0x4000)
		}
	}})
	m.Spawn(SpawnConfig{Name: "tracer", Nice: -5, Body: func(ctx guest.Context) {
		ctx.Sleep(500_000)
		if err := ctx.Ptrace(guest.PtraceAttach, victim.PID, 0, 0); err != nil {
			return
		}
		ctx.Wait()
		ctx.Ptrace(guest.PtracePokeUser, victim.PID, guest.DR0, 0x4000)
		ctx.Ptrace(guest.PtracePokeUser, victim.PID, guest.DR7, 1)
		ctx.Ptrace(guest.PtraceCont, victim.PID, 0, 0)
		ctx.Wait()
		// Exit while the victim is stopped: kernel must detach and
		// resume it, or the machine deadlocks.
	}})
	run(t, m)
	if victim.State != proc.Zombie && victim.State != proc.Reaped {
		t.Fatalf("victim state = %v, want exited", victim.State)
	}
}

func TestExecMeasuresProgramAndLibraries(t *testing.T) {
	m := testMachine(t)
	prog := &guest.Program{
		Name:    "app",
		Content: "app-v1",
		Libs:    []string{"libc.so.6", "libm.so.6"},
		Main: func(ctx guest.Context) {
			ctx.Call("malloc", 64)
		},
	}
	p, _ := m.Spawn(SpawnConfig{Name: "launcher", Body: func(ctx guest.Context) {
		ctx.Exec(prog)
	}})
	run(t, m)
	var progSeen, libcSeen bool
	for _, meas := range m.Measurements() {
		if meas.TGID != p.PID {
			continue
		}
		if meas.Kind == MeasureProgram && meas.Name == "app" {
			progSeen = true
		}
		if meas.Kind == MeasureLibrary && meas.Name == "libc.so.6" {
			libcSeen = true
		}
	}
	if !progSeen || !libcSeen {
		t.Fatalf("measurements missing prog=%v libc=%v: %+v", progSeen, libcSeen, m.Measurements())
	}
}

func TestLibraryCallChargesCaller(t *testing.T) {
	m := testMachine(t)
	p, _ := m.Spawn(SpawnConfig{Name: "caller", Body: func(ctx guest.Context) {
		for i := 0; i < 10; i++ {
			ctx.Call("malloc", 128)
		}
	}})
	run(t, m)
	u, _ := m.UsageBy("tsc", p.PID)
	if u.User == 0 {
		t.Fatal("library calls charged no user time")
	}
}

func TestUsageSyscallReflectsBillingScheme(t *testing.T) {
	m := testMachine(t)
	var mid, final sim.Cycles
	m.Spawn(SpawnConfig{Name: "self-aware", Body: func(ctx guest.Context) {
		ctx.Compute(20_000_000) // 5 ticks
		u1, s1 := ctx.Usage()
		mid = u1 + s1
		ctx.Compute(20_000_000)
		u2, s2 := ctx.Usage()
		final = u2 + s2
	}})
	run(t, m)
	if mid == 0 || final <= mid {
		t.Fatalf("usage did not grow: mid=%d final=%d", mid, final)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	build := func() (*Machine, proc.PID) {
		m := New(Config{Seed: 42, CPUHz: 1_000_000_000, MaxSteps: 10_000_000})
		p, _ := m.Spawn(SpawnConfig{Name: "w", Body: func(ctx guest.Context) {
			for i := 0; i < 50; i++ {
				ctx.Compute(sim.Cycles(1_000_000 + i*1000))
				ctx.Store(uint64(i) * 4096)
				if i%10 == 0 {
					//simlint:errno-ok fault-free fixture; the test asserts fairness via the bill
					ctx.Syscall("write")
				}
			}
		}})
		m.Spawn(SpawnConfig{Name: "rival", Body: func(ctx guest.Context) {
			for i := 0; i < 30; i++ {
				ctx.Compute(2_000_000)
				ctx.Yield()
			}
		}})
		return m, p.PID
	}
	m1, p1 := build()
	m2, p2 := build()
	run(t, m1)
	run(t, m2)
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		u1, _ := m1.UsageBy(scheme, p1)
		u2, _ := m2.UsageBy(scheme, p2)
		if u1 != u2 {
			t.Fatalf("scheme %s diverged: %+v vs %+v", scheme, u1, u2)
		}
	}
	if m1.Clock().Now() != m2.Clock().Now() {
		t.Fatalf("elapsed diverged: %d vs %d", m1.Clock().Now(), m2.Clock().Now())
	}
}

func TestConservationJiffyVsTSC(t *testing.T) {
	// Total jiffy-billed time across all tasks should be close to
	// total TSC-billed time plus interrupt overhead: ticks conserve
	// CPU, they only misattribute it.
	m := testMachine(t)
	a, _ := m.Spawn(SpawnConfig{Name: "a", Body: func(ctx guest.Context) { ctx.Compute(200_000_000) }})
	b, _ := m.Spawn(SpawnConfig{Name: "b", Body: func(ctx guest.Context) { ctx.Compute(200_000_000) }})
	run(t, m)
	var jTotal, tTotal sim.Cycles
	for _, pid := range []proc.PID{a.PID, b.PID} {
		j, _ := m.UsageBy("jiffy", pid)
		ts, _ := m.UsageBy("tsc", pid)
		jTotal += j.Total()
		tTotal += ts.Total()
	}
	if jTotal == 0 || tTotal == 0 {
		t.Fatal("no accounting recorded")
	}
	//simlint:float-ok test assertion tolerance band, not billed state
	ratio := float64(jTotal) / float64(tTotal)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("jiffy/tsc global ratio = %.3f, want ~1 (conservation)", ratio)
	}
}

func TestSpawnUnknownLibraryFails(t *testing.T) {
	m := testMachine(t)
	_, err := m.Spawn(SpawnConfig{Name: "x", Libs: []string{"nope.so"}, Body: func(guest.Context) {}})
	if err == nil {
		t.Fatal("spawn with unknown library should fail")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	m := New(Config{Seed: 1, CPUHz: 1_000_000_000, MaxSteps: 100})
	m.Spawn(SpawnConfig{Name: "hog", Body: func(ctx guest.Context) {
		for {
			ctx.Compute(1_000_000_000)
		}
	}})
	if err := m.Run(); err == nil {
		t.Fatal("runaway machine did not trip MaxSteps")
	}
}
