package kernel

import (
	"errors"
	"testing"

	"repro/internal/device"
	"repro/internal/guest"
	"repro/internal/sim"
)

// TestNetSendRoutesAndCounters pins the addressed guest tx entry
// point: frames are resolved through the NIC's routing table, stamped
// with the machine's own source address, carry/drop feedback reaches
// the guest, and frames to an unrouted destination count as transmit
// drops.
func TestNetSendRoutesAndCounters(t *testing.T) {
	m := testMachine(t)
	defer m.Shutdown()
	const self, peer = device.Addr(1), device.Addr(2)
	m.NIC().SetAddr(self)
	var carried int
	var lastSrc device.Addr
	route := m.NIC().AddTxRoute(func(f device.Frame) bool {
		carried++
		lastSrc = f.Src
		return carried%2 == 1 // wire drops every second frame
	})
	m.NIC().SetRoute(peer, route)
	var acks, nacks int
	if _, err := m.Spawn(SpawnConfig{Name: "sender", Body: func(ctx guest.Context) {
		for i := 0; i < 4; i++ {
			//simlint:errno-ok carried bool is the assertion; this fixture injects no faults
			if ok, _ := ctx.NetSend(guest.Frame{Dst: peer}); ok {
				acks++
			} else {
				nacks++
			}
		}
		//simlint:errno-ok carried bool is the assertion; this fixture injects no faults
		if ok, _ := ctx.NetSend(guest.Frame{Dst: 9}); ok { // no route to this address
			t.Error("NetSend to unrouted destination reported carried")
		}
	}}); err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if carried != 4 {
		t.Fatalf("route invoked %d times, want 4", carried)
	}
	if lastSrc != self {
		t.Fatalf("frame Src = %d, want %d (kernel must stamp the sender's address)", lastSrc, self)
	}
	if acks != 2 || nacks != 2 {
		t.Fatalf("acks=%d nacks=%d, want 2/2 (wire feedback must reach the guest)", acks, nacks)
	}
	if got := m.NIC().Transmitted(); got != 2 {
		t.Fatalf("Transmitted = %d, want 2", got)
	}
	if got := m.NIC().TxDropped(); got != 3 {
		t.Fatalf("TxDropped = %d, want 3 (2 wire drops + 1 unrouted destination)", got)
	}
}

// TestNetSendBillsSystemTime asserts the tx path is billed kernel
// work of the sender, not free.
func TestNetSendBillsSystemTime(t *testing.T) {
	m := testMachine(t)
	const peer = device.Addr(2)
	m.NIC().SetRoute(peer, m.NIC().AddTxRoute(func(device.Frame) bool { return true }))
	p, _ := m.Spawn(SpawnConfig{Name: "sender", Body: func(ctx guest.Context) {
		for i := 0; i < 1000; i++ {
			//simlint:errno-ok backpressure test; drops are counted by the NIC ledger, not the guest
			ctx.NetSend(guest.Frame{Dst: peer})
		}
	}})
	run(t, m)
	u, _ := m.UsageBy("tsc", p.PID)
	perFrame := m.CPU().Costs().NICTx
	if u.System < 1000*perFrame {
		t.Fatalf("tsc system = %d, want at least %d (1000 frames of tx-path work)", u.System, 1000*perFrame)
	}
}

// TestNetRecvDrainsFramesInArrivalOrder pins the frame receive
// buffer: injected frames surface through NetRecv in arrival order
// with headers intact, and an empty buffer reports ok=false.
func TestNetRecvDrainsFramesInArrivalOrder(t *testing.T) {
	m := testMachine(t)
	tick := m.TickCycles()
	// Inject out of schedule order; arrival order must win.
	m.NIC().InjectRxFrame(3*tick, device.Frame{Src: 7, Flow: 30, CE: true})
	m.NIC().InjectRxFrame(2*tick, device.Frame{Src: 5, Flow: 20})
	m.NIC().InjectRx(tick) // payload-less: counts, queues no frame
	var got []device.Frame
	var emptyOK bool
	if _, err := m.Spawn(SpawnConfig{Name: "reader", Body: func(ctx guest.Context) {
		seen := uint64(0)
		for seen < 3 {
			seen = ctx.NetRxWait(seen)
		}
		for {
			//simlint:errno-ok drain loop; ok bounds it and this fixture injects no faults
			f, ok, _ := ctx.NetRecv()
			if !ok {
				break
			}
			got = append(got, f)
		}
		//simlint:errno-ok emptyOK is the assertion; this fixture injects no faults
		_, emptyOK, _ = ctx.NetRecv()
	}}); err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if len(got) != 2 {
		t.Fatalf("NetRecv drained %d frames, want 2 (payload-less injection queues none)", len(got))
	}
	if got[0].Src != 5 || got[0].Flow != 20 || got[0].CE {
		t.Fatalf("first frame = %+v, want Src 5 / Flow 20 / no CE (arrival order)", got[0])
	}
	if got[1].Src != 7 || got[1].Flow != 30 || !got[1].CE {
		t.Fatalf("second frame = %+v, want Src 7 / Flow 30 / CE", got[1])
	}
	if emptyOK {
		t.Fatal("NetRecv on a drained buffer reported ok")
	}
}

// TestNetForwardPreservesSource pins the router data plane: a
// forwarded frame leaves with its original Src, while a plain send is
// stamped with the forwarder's own address.
func TestNetForwardPreservesSource(t *testing.T) {
	m := testMachine(t)
	defer m.Shutdown()
	const self, origin, dst = device.Addr(3), device.Addr(1), device.Addr(2)
	m.NIC().SetAddr(self)
	var out []device.Frame
	m.NIC().SetRoute(dst, m.NIC().AddTxRoute(func(f device.Frame) bool {
		out = append(out, f)
		return true
	}))
	if _, err := m.Spawn(SpawnConfig{Name: "fwd", Body: func(ctx guest.Context) {
		//simlint:errno-ok carried bool is the assertion; this fixture injects no faults
		if ok, _ := ctx.NetForward(guest.Frame{Src: origin, Dst: dst, Flow: 9}); !ok {
			t.Error("NetForward dropped on an open route")
		}
		//simlint:errno-ok fault-free fixture; Src rewriting is the property under test
		ctx.NetSend(guest.Frame{Src: origin, Dst: dst}) // Src must be overwritten
	}}); err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if len(out) != 2 {
		t.Fatalf("transmitted %d frames, want 2", len(out))
	}
	if out[0].Src != origin || out[0].Flow != 9 {
		t.Fatalf("forwarded frame = %+v, want Src %d preserved", out[0], origin)
	}
	if out[1].Src != self {
		t.Fatalf("sent frame Src = %d, want %d (stamped by the kernel)", out[1].Src, self)
	}
}

// TestRxBufferOverflowDrops pins the input-queue bound: frames past
// the configured ring capacity are dropped and counted, and the
// survivors are the earliest arrivals.
func TestRxBufferOverflowDrops(t *testing.T) {
	m := New(Config{Seed: 9, CPUHz: 1_000_000_000, RxBufFrames: 4})
	tick := m.TickCycles()
	for i := 0; i < 7; i++ {
		m.NIC().InjectRxFrame(tick+sim.Cycles(i), device.Frame{Flow: uint32(i)})
	}
	var drained []uint32
	if _, err := m.Spawn(SpawnConfig{Name: "reader", Body: func(ctx guest.Context) {
		seen := uint64(0)
		for seen < 7 {
			seen = ctx.NetRxWait(seen)
		}
		for {
			//simlint:errno-ok drain loop; ok bounds it and this fixture injects no faults
			f, ok, _ := ctx.NetRecv()
			if !ok {
				break
			}
			drained = append(drained, f.Flow)
		}
	}}); err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if got := m.RxBufDropped(); got != 3 {
		t.Fatalf("RxBufDropped = %d, want 3 (7 frames into a 4-deep ring)", got)
	}
	if len(drained) != 4 || drained[0] != 0 || drained[3] != 3 {
		t.Fatalf("drained %v, want the first four arrivals", drained)
	}
}

// TestNetRxWaitWakesOnDelivery pins the blocking receive: a guest
// parked in NetRxWait resumes when an injected frame's rx interrupt
// delivers, and sees the updated count.
func TestNetRxWaitWakesOnDelivery(t *testing.T) {
	m := testMachine(t)
	tick := m.TickCycles()
	m.NIC().InjectRx(3 * tick) // one frame, mid-run
	var sawWait, sawRead uint64
	if _, err := m.Spawn(SpawnConfig{Name: "reader", Body: func(ctx guest.Context) {
		sawWait = ctx.NetRxWait(0)
		sawRead = ctx.NetRx()
	}}); err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if sawWait != 1 || sawRead != 1 {
		t.Fatalf("NetRxWait = %d, NetRx = %d, want 1/1", sawWait, sawRead)
	}
	if got := m.NIC().Received(); got != 1 {
		t.Fatalf("Received = %d, want 1", got)
	}
}

// TestNetRxWaitWithoutTrafficDeadlocks pins the upgraded deadlock
// detector: a solo machine whose only task blocks on network input
// that cannot arrive — leaving nothing but timer ticks pending — is
// a deadlock, not an idle loop that burns the step budget.
func TestNetRxWaitWithoutTrafficDeadlocks(t *testing.T) {
	m := testMachine(t)
	if _, err := m.Spawn(SpawnConfig{Name: "reader", Body: func(ctx guest.Context) {
		ctx.NetRxWait(0) // no sender exists
	}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
}

// TestNextWorkAtIgnoresTimerOnlyQueues pins the cluster stall
// contract: a machine whose tasks are all blocked on network input
// reports no pending work even though its periodic tick is always
// scheduled, but an injected in-flight frame counts as work again.
func TestNextWorkAtIgnoresTimerOnlyQueues(t *testing.T) {
	m := testMachine(t)
	defer m.Shutdown()
	if _, err := m.Spawn(SpawnConfig{Name: "reader", Body: func(ctx guest.Context) {
		ctx.NetRxWait(0)
	}}); err != nil {
		t.Fatal(err)
	}
	// Advance past the blocking point in barrier slices.
	tick := m.TickCycles()
	if done, err := m.RunUntil(2 * tick); err != nil || done {
		t.Fatalf("RunUntil = (%v, %v), want paused", done, err)
	}
	if at, ok := m.NextWorkAt(); ok {
		t.Fatalf("NextWorkAt = (%d, true), want no work (only ticks pending)", at)
	}
	arrival := m.Clock().Now() + tick
	m.NIC().InjectRx(arrival)
	// With a frame in flight the machine has work again; the reported
	// time may be an earlier tick it still has to simulate first.
	if at, ok := m.NextWorkAt(); !ok || at > arrival {
		t.Fatalf("NextWorkAt = (%d, %v), want (<=%d, true) after frame injection", at, ok, arrival)
	}
	if done, err := m.RunUntil(m.Clock().Now() + 10*tick); err != nil || !done {
		t.Fatalf("RunUntil after delivery = (%v, %v), want finished", done, err)
	}
	if got := m.NIC().Received(); got != 1 {
		t.Fatalf("Received = %d, want 1", got)
	}
}

// TestScheduleIRQWorkBillsCurrentTask pins the remote-service hook:
// injected interrupt-context work lands on whichever task is current,
// exactly like a device IRQ.
func TestScheduleIRQWorkBillsCurrentTask(t *testing.T) {
	m := testMachine(t)
	tick := m.TickCycles()
	const svc = 40_000 // 40 µs at 1 GHz
	m.ScheduleIRQWork(tick, m.IRQWork(2, svc))
	p, _ := m.Spawn(SpawnConfig{Name: "job", Body: func(ctx guest.Context) {
		ctx.Compute(3 * sim.Cycles(tick))
	}})
	run(t, m)
	u, _ := m.UsageBy("process-aware", p.PID)
	sys, _ := m.UsageBy("process-aware", 0) // metering.SystemPID
	if sys.System < svc {
		t.Fatalf("system account = %d, want >= %d (process-aware diverts IRQ work)", sys.System, svc)
	}
	tscU, _ := m.UsageBy("tsc", p.PID)
	if tscU.System < svc {
		t.Fatalf("tsc system = %d, want >= %d (IRQ work billed to the current task)", tscU.System, svc)
	}
	_ = u
}

// TestClockNowMonotoneAndCharged pins the guest-visible monotonic
// clock: readings advance with the caller's own execution, include
// time spent off the CPU (sleep), and each read is a billed gettime
// syscall — the substrate ack senders arm real retransmission
// timeouts on.
func TestClockNowMonotoneAndCharged(t *testing.T) {
	m := testMachine(t)
	const burn = 1_000_000 // 1 ms at 1 GHz
	var t0, t1, t2 sim.Cycles
	p, err := m.Spawn(SpawnConfig{Name: "timer", Body: func(ctx guest.Context) {
		t0 = ctx.ClockNow()
		ctx.Compute(burn)
		t1 = ctx.ClockNow()
		ctx.Sleep(burn)
		t2 = ctx.ClockNow()
	}})
	if err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if !(t0 < t1 && t1 < t2) {
		t.Fatalf("clock not monotone: %d / %d / %d", t0, t1, t2)
	}
	if t1-t0 < burn {
		t.Fatalf("clock advanced %d across a %d-cycle compute", t1-t0, burn)
	}
	if t2-t1 < burn {
		t.Fatalf("clock advanced %d across a %d-cycle sleep (must tick while off the CPU)", t2-t1, burn)
	}
	if got := m.Stats(p.PID).Syscalls; got < 3 {
		t.Fatalf("Syscalls = %d, want ≥ 3 (each ClockNow is a billed gettime)", got)
	}
}
