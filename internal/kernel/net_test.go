package kernel

import (
	"errors"
	"testing"

	"repro/internal/guest"
	"repro/internal/sim"
)

// TestNetSendRoutesAndCounters pins the guest tx entry point: frames
// go out the registered route, carry/drop feedback reaches the guest,
// and a machine with no uplink counts transmit drops.
func TestNetSendRoutesAndCounters(t *testing.T) {
	m := testMachine(t)
	defer m.Shutdown()
	var carried int
	m.NIC().AddTxRoute(func() bool {
		carried++
		return carried%2 == 1 // wire drops every second frame
	})
	var acks, nacks int
	if _, err := m.Spawn(SpawnConfig{Name: "sender", Body: func(ctx guest.Context) {
		for i := 0; i < 4; i++ {
			if ctx.NetSend(0) {
				acks++
			} else {
				nacks++
			}
		}
		if ctx.NetSend(7) { // no such route
			t.Error("NetSend to unknown route reported carried")
		}
	}}); err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if carried != 4 {
		t.Fatalf("route invoked %d times, want 4", carried)
	}
	if acks != 2 || nacks != 2 {
		t.Fatalf("acks=%d nacks=%d, want 2/2 (wire feedback must reach the guest)", acks, nacks)
	}
	if got := m.NIC().Transmitted(); got != 2 {
		t.Fatalf("Transmitted = %d, want 2", got)
	}
	if got := m.NIC().TxDropped(); got != 3 {
		t.Fatalf("TxDropped = %d, want 3 (2 wire drops + 1 unknown route)", got)
	}
}

// TestNetSendBillsSystemTime asserts the tx path is billed kernel
// work of the sender, not free.
func TestNetSendBillsSystemTime(t *testing.T) {
	m := testMachine(t)
	m.NIC().AddTxRoute(func() bool { return true })
	p, _ := m.Spawn(SpawnConfig{Name: "sender", Body: func(ctx guest.Context) {
		for i := 0; i < 1000; i++ {
			ctx.NetSend(0)
		}
	}})
	run(t, m)
	u, _ := m.UsageBy("tsc", p.PID)
	perFrame := m.CPU().Costs().NICTx
	if u.System < 1000*perFrame {
		t.Fatalf("tsc system = %d, want at least %d (1000 frames of tx-path work)", u.System, 1000*perFrame)
	}
}

// TestNetRxWaitWakesOnDelivery pins the blocking receive: a guest
// parked in NetRxWait resumes when an injected frame's rx interrupt
// delivers, and sees the updated count.
func TestNetRxWaitWakesOnDelivery(t *testing.T) {
	m := testMachine(t)
	tick := m.TickCycles()
	m.NIC().InjectRx(3 * tick) // one frame, mid-run
	var sawWait, sawRead uint64
	if _, err := m.Spawn(SpawnConfig{Name: "reader", Body: func(ctx guest.Context) {
		sawWait = ctx.NetRxWait(0)
		sawRead = ctx.NetRx()
	}}); err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if sawWait != 1 || sawRead != 1 {
		t.Fatalf("NetRxWait = %d, NetRx = %d, want 1/1", sawWait, sawRead)
	}
	if got := m.NIC().Received(); got != 1 {
		t.Fatalf("Received = %d, want 1", got)
	}
}

// TestNetRxWaitWithoutTrafficDeadlocks pins the upgraded deadlock
// detector: a solo machine whose only task blocks on network input
// that cannot arrive — leaving nothing but timer ticks pending — is
// a deadlock, not an idle loop that burns the step budget.
func TestNetRxWaitWithoutTrafficDeadlocks(t *testing.T) {
	m := testMachine(t)
	if _, err := m.Spawn(SpawnConfig{Name: "reader", Body: func(ctx guest.Context) {
		ctx.NetRxWait(0) // no sender exists
	}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
}

// TestNextWorkAtIgnoresTimerOnlyQueues pins the cluster stall
// contract: a machine whose tasks are all blocked on network input
// reports no pending work even though its periodic tick is always
// scheduled, but an injected in-flight frame counts as work again.
func TestNextWorkAtIgnoresTimerOnlyQueues(t *testing.T) {
	m := testMachine(t)
	defer m.Shutdown()
	if _, err := m.Spawn(SpawnConfig{Name: "reader", Body: func(ctx guest.Context) {
		ctx.NetRxWait(0)
	}}); err != nil {
		t.Fatal(err)
	}
	// Advance past the blocking point in barrier slices.
	tick := m.TickCycles()
	if done, err := m.RunUntil(2 * tick); err != nil || done {
		t.Fatalf("RunUntil = (%v, %v), want paused", done, err)
	}
	if at, ok := m.NextWorkAt(); ok {
		t.Fatalf("NextWorkAt = (%d, true), want no work (only ticks pending)", at)
	}
	arrival := m.Clock().Now() + tick
	m.NIC().InjectRx(arrival)
	// With a frame in flight the machine has work again; the reported
	// time may be an earlier tick it still has to simulate first.
	if at, ok := m.NextWorkAt(); !ok || at > arrival {
		t.Fatalf("NextWorkAt = (%d, %v), want (<=%d, true) after frame injection", at, ok, arrival)
	}
	if done, err := m.RunUntil(m.Clock().Now() + 10*tick); err != nil || !done {
		t.Fatalf("RunUntil after delivery = (%v, %v), want finished", done, err)
	}
	if got := m.NIC().Received(); got != 1 {
		t.Fatalf("Received = %d, want 1", got)
	}
}

// TestScheduleIRQWorkBillsCurrentTask pins the remote-service hook:
// injected interrupt-context work lands on whichever task is current,
// exactly like a device IRQ.
func TestScheduleIRQWorkBillsCurrentTask(t *testing.T) {
	m := testMachine(t)
	tick := m.TickCycles()
	const svc = 40_000 // 40 µs at 1 GHz
	m.ScheduleIRQWork(tick, m.IRQWork(2, svc))
	p, _ := m.Spawn(SpawnConfig{Name: "job", Body: func(ctx guest.Context) {
		ctx.Compute(3 * sim.Cycles(tick))
	}})
	run(t, m)
	u, _ := m.UsageBy("process-aware", p.PID)
	sys, _ := m.UsageBy("process-aware", 0) // metering.SystemPID
	if sys.System < svc {
		t.Fatalf("system account = %d, want >= %d (process-aware diverts IRQ work)", sys.System, svc)
	}
	tscU, _ := m.UsageBy("tsc", p.PID)
	if tscU.System < svc {
		t.Fatalf("tsc system = %d, want >= %d (IRQ work billed to the current task)", tscU.System, svc)
	}
	_ = u
}
