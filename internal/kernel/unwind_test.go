package kernel

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/metering"
	"repro/internal/proc"
	"repro/internal/sim"
)

// These tests pin the compat driver's two unwinding paths directly.
// exitPanic (ctx.Exit deep in guest code) and killPanic (machine
// shutdown with guests parked mid-syscall) were previously exercised
// only incidentally through cluster teardown; here each is driven on
// a solo machine and the ledgers checked around it.

// TestExitPanicUnwindsNestedGuestCode pins that Exit called several
// frames deep in guest code unwinds the goroutine without running the
// code behind it, and that the exit itself is billed (system time)
// while no phantom user time appears.
func TestExitPanicUnwindsNestedGuestCode(t *testing.T) {
	m := testMachine(t)
	const work = 2_000_000
	reached := false
	helper := func(ctx guest.Context) {
		ctx.Compute(work)
		ctx.Exit(5)
		ctx.Compute(work) // must never run
	}
	p, err := m.Spawn(SpawnConfig{Name: "quitter", Body: func(ctx guest.Context) {
		helper(ctx)
		reached = true
	}})
	if err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if reached {
		t.Fatal("guest code after Exit ran; exitPanic did not unwind")
	}
	u, _ := m.UsageBy("tsc", p.PID)
	if u.User != work {
		t.Fatalf("tsc user = %d, want exactly %d (the pre-exit compute)", u.User, work)
	}
	if u.System == 0 {
		t.Fatal("tsc system = 0; the exit path should be billed")
	}
}

// TestExitCodeCrossesUnwind pins that the code carried by exitPanic
// reaches the parent's Wait even when Exit fires inside a nested
// helper rather than at the routine's tail.
func TestExitCodeCrossesUnwind(t *testing.T) {
	m := testMachine(t)
	deep := func(ctx guest.Context) { ctx.Exit(31) }
	var wres guest.WaitResult
	var wok bool
	_, err := m.Spawn(SpawnConfig{Name: "parent", Body: func(ctx guest.Context) {
		ctx.Fork("child", func(c guest.Context) {
			c.Compute(100_000)
			deep(c)
		})
		wres, wok = ctx.Wait()
	}})
	if err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if !wok || wres.ExitCode != 31 || wres.Stopped {
		t.Fatalf("wait = %+v ok=%v, want exit code 31", wres, wok)
	}
}

// unwindSchemes fixes the ledger snapshot order.
var unwindSchemes = []string{"jiffy", "tsc", "process-aware"}

// snapshotUsage collects every scheme's usage for a set of pids,
// indexed [scheme][pid] in unwindSchemes order.
func snapshotUsage(m *Machine, pids []proc.PID) [][]metering.Usage {
	out := make([][]metering.Usage, len(unwindSchemes))
	for si, scheme := range unwindSchemes {
		for _, pid := range pids {
			u, _ := m.UsageBy(scheme, pid)
			out[si] = append(out[si], u)
		}
	}
	return out
}

// requireSameLedgers fails if any per-pid usage moved between the two
// snapshots.
func requireSameLedgers(t *testing.T, pids []proc.PID, before, after [][]metering.Usage) {
	t.Helper()
	for si, want := range before {
		for i, u := range want {
			if after[si][i] != u {
				t.Fatalf("%s ledger for pid %d moved across the kill: %+v -> %+v",
					unwindSchemes[si], pids[i], u, after[si][i])
			}
		}
	}
}

// TestKillPanicLeavesLedgersBalanced pins the mid-syscall kill path:
// a machine paused at a barrier holds one guest parked mid-request
// (the paused driver) and one blocked in a sleep syscall. Shutting
// the machine down unwinds both via killPanic, and the unwind must
// not move a single cycle on any ledger: the kill tears down
// execution, not accounting.
func TestKillPanicLeavesLedgersBalanced(t *testing.T) {
	m := testMachine(t)
	spinner, err := m.Spawn(SpawnConfig{Name: "spinner", Body: func(ctx guest.Context) {
		for {
			ctx.Compute(50_000)
			//simlint:errno-ok no faults configured; the spin only parks the guest mid-request
			ctx.Syscall("read")
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	sleeper, err := m.Spawn(SpawnConfig{Name: "sleeper", Body: func(ctx guest.Context) {
		ctx.Sleep(1 << 40) // far past the barrier: killed mid-syscall
	}})
	if err != nil {
		t.Fatal(err)
	}

	done, err := m.RunUntil(20_000_000)
	if err != nil {
		t.Fatalf("run until barrier: %v", err)
	}
	if done {
		t.Fatal("machine finished before the barrier; nothing is parked mid-syscall")
	}

	pids := []proc.PID{spinner.PID, sleeper.PID}
	before := snapshotUsage(m, pids)
	clockBefore := m.Clock().Now()
	spinnerBefore, _ := m.UsageBy("tsc", spinner.PID)
	if spinnerBefore.User == 0 {
		t.Fatal("spinner billed no user time before the kill; test drove nothing")
	}

	m.Shutdown()

	if !m.Closed() {
		t.Fatal("machine not closed after Shutdown")
	}
	if got := m.Clock().Now(); got != clockBefore {
		t.Fatalf("shutdown advanced the clock: %d -> %d", clockBefore, got)
	}
	after := snapshotUsage(m, pids)
	requireSameLedgers(t, pids, before, after)
	// Every billed cycle must fit inside elapsed virtual time: a
	// corrupt unwind that double-charged an in-flight request would
	// push a ledger past the clock.
	var total sim.Cycles
	for _, u := range after[1] { // tsc
		total += u.Total()
	}
	if total > clockBefore {
		t.Fatalf("tsc ledgers sum to %d cycles but only %d elapsed", total, clockBefore)
	}
	// A shut-down machine must stay inert and idempotent.
	if done, err := m.RunUntil(clockBefore + 1_000_000); !done || err != nil {
		t.Fatalf("RunUntil after shutdown = (%v, %v), want (true, nil)", done, err)
	}
	m.Shutdown()
}

// TestKillPanicMidSyscallFlyweightMachineMix pins the same teardown
// on a machine mixing both drivers: the goroutine guest unwinds via
// killPanic while the flyweight guest (no goroutine, no grant
// channel) is simply abandoned, and both ledgers hold.
func TestKillPanicMidSyscallFlyweightMachineMix(t *testing.T) {
	m := testMachine(t)
	type looper struct{ pc int }
	l := &looper{}
	var step guest.Step
	step = func(ctx guest.Context, r guest.Resume) guest.Step {
		if l.pc == 0 {
			l.pc = 1
			ctx.Compute(50_000)
		} else {
			l.pc = 0
			ctx.Sleep(50_000)
		}
		return step
	}
	fly, err := m.Spawn(SpawnConfig{Name: "fly", Step: step})
	if err != nil {
		t.Fatal(err)
	}
	goro, err := m.Spawn(SpawnConfig{Name: "goro", Body: func(ctx guest.Context) {
		for {
			ctx.Compute(50_000)
			ctx.Sleep(50_000)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	done, err := m.RunUntil(20_000_000)
	if err != nil {
		t.Fatalf("run until barrier: %v", err)
	}
	if done {
		t.Fatal("machine finished; nothing live at the kill")
	}
	pids := []proc.PID{fly.PID, goro.PID}
	before := snapshotUsage(m, pids)
	uf, _ := m.UsageBy("tsc", fly.PID)
	ug, _ := m.UsageBy("tsc", goro.PID)
	if uf.User == 0 || ug.User == 0 {
		t.Fatalf("one guest billed nothing before the kill (fly %d, goro %d)", uf.User, ug.User)
	}
	m.Shutdown()
	requireSameLedgers(t, pids, before, snapshotUsage(m, pids))
}
