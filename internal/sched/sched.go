// Package sched implements the simulated schedulers. The paper's
// testbed ran Linux 2.6.29; its scheduling attack (Section IV-B1)
// depends only on two properties every general-purpose scheduler has:
// a task's nice value controls how often and how long it runs, and a
// context switch can happen in the middle of a jiffy. Two policies
// are provided so the ablation benches can compare them:
//
//   - O1: an O(1)-style priority scheduler with active/expired arrays
//     and nice-scaled timeslices (the 2.6.8–2.6.22 design).
//   - CFS: a virtual-runtime fair scheduler with the kernel's
//     prio_to_weight table (2.6.23+), for the paper's remark that CFS
//     changes the time composition but is still tick-sampled.
package sched

import (
	"container/heap"

	"repro/internal/proc"
	"repro/internal/sim"
)

// Scheduler is the policy interface the kernel drives.
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Enqueue makes p runnable.
	Enqueue(p *proc.Proc)
	// Remove takes p out of the runqueue (blocked, stopped, exited).
	// Removing a task that is not queued is a no-op.
	Remove(p *proc.Proc)
	// PickNext removes and returns the next task to run, or nil when
	// no task is runnable.
	PickNext() *proc.Proc
	// Quantum returns the timeslice to grant p for this dispatch.
	Quantum(p *proc.Proc) sim.Cycles
	// Charge records that p ran for d cycles (updates vruntime or
	// remaining-timeslice bookkeeping).
	Charge(p *proc.Proc, d sim.Cycles)
	// ShouldPreempt reports whether a newly woken task should
	// preempt the current one immediately.
	ShouldPreempt(cur, woken *proc.Proc) bool
	// Runnable reports the number of queued tasks.
	Runnable() int
	// Clone returns an independent copy of the scheduler for
	// checkpoint restore. pmap maps each original task to its clone;
	// Clone re-points queue entries through it and rebuilds the
	// per-task SchedData slots on the cloned tasks (proc.Table.Clone
	// leaves them nil).
	Clone(pmap map[*proc.Proc]*proc.Proc) Scheduler
}

// niceIndex maps a nice value to a 0..39 array index.
func niceIndex(nice int) int { return nice - proc.MinNice }

// --- O(1)-style scheduler ---

// o1Data is the per-task slot the O(1) policy keeps in SchedData.
type o1Data struct {
	queued    bool
	remaining sim.Cycles // unused timeslice
	exhausted bool       // slice ran out while running (→ expired array)
}

// prioArray is one of the O(1) scheduler's two priority arrays. The
// bucket storage grows lazily to the highest nice index ever queued
// instead of inlining all 40 slice headers, so an idle machine's
// scheduler is a few words rather than ~2 KB — which dominates both
// resident memory and checkpoint image size when thousands of
// machines are resident (see BenchmarkResidentMachines).
type prioArray struct {
	buckets [][]*proc.Proc
}

func (a *prioArray) push(idx int, p *proc.Proc) {
	for len(a.buckets) <= idx {
		a.buckets = append(a.buckets, nil)
	}
	a.buckets[idx] = append(a.buckets[idx], p)
}

// remove deletes p from bucket idx, reporting whether it was present.
func (a *prioArray) remove(idx int, p *proc.Proc) bool {
	if idx >= len(a.buckets) {
		return false
	}
	q := a.buckets[idx]
	for i, t := range q {
		if t == p {
			a.buckets[idx] = append(q[:i:i], q[i+1:]...)
			return true
		}
	}
	return false
}

// clone deep-copies the array, re-pointing entries through pmap.
// Bucket order is preserved exactly: it is the FIFO order within a
// priority level.
func (a *prioArray) clone(pmap map[*proc.Proc]*proc.Proc) prioArray {
	if len(a.buckets) == 0 {
		return prioArray{}
	}
	c := prioArray{buckets: make([][]*proc.Proc, len(a.buckets))}
	for i, q := range a.buckets {
		if len(q) == 0 {
			continue
		}
		cq := make([]*proc.Proc, len(q))
		for j, p := range q {
			cq[j] = pmap[p]
		}
		c.buckets[i] = cq
	}
	return c
}

// O1 is the active/expired priority-array scheduler.
type O1 struct {
	cyclesPerMs sim.Cycles
	active      prioArray
	expired     prioArray
	n           int
}

// NewO1 returns an O(1)-style scheduler. cyclesPerMs converts the
// millisecond-denominated timeslice formula into cycles.
func NewO1(cyclesPerMs sim.Cycles) *O1 {
	if cyclesPerMs == 0 {
		cyclesPerMs = 1
	}
	return &O1{cyclesPerMs: cyclesPerMs}
}

// Name implements Scheduler.
func (s *O1) Name() string { return "o1" }

func (s *O1) data(p *proc.Proc) *o1Data {
	d, ok := p.SchedData.(*o1Data)
	if !ok {
		d = &o1Data{}
		p.SchedData = d
	}
	return d
}

// Timeslice computes the Linux O(1) nice-to-timeslice mapping:
// 5 ms at nice 19, 100 ms at nice 0, 800 ms at nice -20.
func (s *O1) Timeslice(nice int) sim.Cycles {
	// Static priority: 120 + nice. Below 120 gets the 4x boosted
	// scale, mirroring kernel SCALE_PRIO.
	prio := 120 + nice
	base := sim.Cycles(100) // DEF_TIMESLICE in ms
	if prio < 120 {
		base *= 4
	}
	ts := base * sim.Cycles(140-prio) / 20
	if ts < 5 {
		ts = 5
	}
	return ts * s.cyclesPerMs
}

// Enqueue implements Scheduler. A task with leftover timeslice goes
// to the active array (it was preempted, woke, or is freshly forked —
// the O(1) kernel places new children in active with a share of the
// parent's slice); only a task that exhausted its slice running is
// refilled and parked in expired until the epoch swap.
func (s *O1) Enqueue(p *proc.Proc) {
	d := s.data(p)
	if d.queued {
		return
	}
	d.queued = true
	idx := niceIndex(p.Nice())
	toExpired := false
	if d.remaining == 0 {
		d.remaining = s.Timeslice(p.Nice())
		toExpired = d.exhausted
		d.exhausted = false
	}
	if toExpired {
		s.expired.push(idx, p)
	} else {
		s.active.push(idx, p)
	}
	s.n++
}

// Remove implements Scheduler.
func (s *O1) Remove(p *proc.Proc) {
	d := s.data(p)
	if !d.queued {
		return
	}
	idx := niceIndex(p.Nice())
	if s.active.remove(idx, p) || s.expired.remove(idx, p) {
		d.queued = false
		s.n--
		return
	}
	// Queued flag set but not found indicates corruption; clear and
	// continue rather than panic, keeping the simulation robust.
	d.queued = false
}

// PickNext implements Scheduler: highest priority first; when the
// active arrays drain, swap with expired (a scheduling epoch).
func (s *O1) PickNext() *proc.Proc {
	for round := 0; round < 2; round++ {
		for idx := 0; idx < len(s.active.buckets); idx++ {
			q := s.active.buckets[idx]
			if len(q) == 0 {
				continue
			}
			p := q[0]
			s.active.buckets[idx] = q[1:]
			s.data(p).queued = false
			s.n--
			return p
		}
		// Epoch boundary: expired becomes active.
		s.active, s.expired = s.expired, s.active
	}
	return nil
}

// Quantum implements Scheduler: the task's remaining slice.
func (s *O1) Quantum(p *proc.Proc) sim.Cycles {
	d := s.data(p)
	if d.remaining == 0 {
		d.remaining = s.Timeslice(p.Nice())
	}
	return d.remaining
}

// Charge implements Scheduler.
func (s *O1) Charge(p *proc.Proc, d sim.Cycles) {
	sd := s.data(p)
	if d >= sd.remaining {
		if sd.remaining > 0 {
			sd.exhausted = true
		}
		sd.remaining = 0
	} else {
		sd.remaining -= d
	}
}

// ShouldPreempt implements Scheduler: strictly higher priority
// (lower nice) wins the CPU immediately, as in the O(1) kernel.
func (s *O1) ShouldPreempt(cur, woken *proc.Proc) bool {
	if cur == nil {
		return true
	}
	return woken.Nice() < cur.Nice()
}

// Runnable implements Scheduler.
func (s *O1) Runnable() int { return s.n }

// Clone implements Scheduler. Every cloned task whose original holds
// an o1Data slot gets a fresh copy (remaining timeslice and the
// exhausted flag persist across blocks, so non-queued tasks carry
// state too); both priority arrays are rebuilt in identical order.
func (s *O1) Clone(pmap map[*proc.Proc]*proc.Proc) Scheduler {
	c := &O1{cyclesPerMs: s.cyclesPerMs, n: s.n}
	//simlint:unordered-ok each task's SchedData slot is rebuilt independently; no cross-task state depends on visit order
	for p, cp := range pmap {
		if d, ok := p.SchedData.(*o1Data); ok {
			dd := *d
			cp.SchedData = &dd
		}
	}
	c.active = s.active.clone(pmap)
	c.expired = s.expired.clone(pmap)
	return c
}

// --- CFS-like scheduler ---

// prioToWeight is the kernel's nice-to-weight table (kernel/sched.c):
// each nice step changes CPU share by ~10%.
var prioToWeight = [40]uint64{
	88761, 71755, 56483, 46273, 36291,
	29154, 23254, 18705, 14949, 11916,
	9548, 7620, 6100, 4904, 3906,
	3121, 2501, 1991, 1586, 1277,
	1024, 820, 655, 526, 423,
	335, 272, 215, 172, 137,
	110, 87, 70, 56, 45,
	36, 29, 23, 18, 15,
}

// WeightOf returns the CFS load weight for a nice value.
func WeightOf(nice int) uint64 { return prioToWeight[niceIndex(nice)] }

const nice0Weight = 1024

// cfsData is the per-task slot the CFS policy keeps in SchedData.
type cfsData struct {
	vruntime uint64 // weighted nanCycles; see Charge
	queued   bool
	seq      uint64
	index    int
}

// CFS is the virtual-runtime fair scheduler.
type CFS struct {
	cyclesPerMs sim.Cycles
	h           cfsHeap
	seq         uint64
	minVruntime uint64
}

// NewCFS returns a CFS-like scheduler.
func NewCFS(cyclesPerMs sim.Cycles) *CFS {
	if cyclesPerMs == 0 {
		cyclesPerMs = 1
	}
	return &CFS{cyclesPerMs: cyclesPerMs}
}

// Name implements Scheduler.
func (s *CFS) Name() string { return "cfs" }

func (s *CFS) data(p *proc.Proc) *cfsData {
	d, ok := p.SchedData.(*cfsData)
	if !ok {
		d = &cfsData{index: -1}
		p.SchedData = d
	}
	return d
}

// Enqueue implements Scheduler. Arrivals are placed just behind the
// current minimum vruntime (a bounded sleeper credit of half the
// scheduling latency, as CFS's place_entity does), so a task that
// blocked briefly preempts the running task on wake-up instead of
// losing its fairness claim — the behaviour the scheduling attack's
// fork/wait cycle relies on under the 2.6.23+ kernels.
func (s *CFS) Enqueue(p *proc.Proc) {
	d := s.data(p)
	if d.queued {
		return
	}
	credit := uint64(10 * s.cyclesPerMs) // sched_latency/2
	target := s.minVruntime
	if target > credit {
		target -= credit
	} else {
		target = 0
	}
	if d.vruntime < target {
		d.vruntime = target
	}
	d.queued = true
	s.seq++
	d.seq = s.seq
	heap.Push(&s.h, cfsEntry{p: p, d: d})
}

// Remove implements Scheduler.
func (s *CFS) Remove(p *proc.Proc) {
	d := s.data(p)
	if !d.queued || d.index < 0 {
		d.queued = false
		return
	}
	heap.Remove(&s.h, d.index)
	d.queued = false
	d.index = -1
}

// PickNext implements Scheduler: smallest vruntime first.
func (s *CFS) PickNext() *proc.Proc {
	if len(s.h) == 0 {
		return nil
	}
	e := heap.Pop(&s.h).(cfsEntry)
	e.d.queued = false
	e.d.index = -1
	if e.d.vruntime > s.minVruntime {
		s.minVruntime = e.d.vruntime
	}
	return e.p
}

// Quantum implements Scheduler: sched_latency (20 ms) divided among
// runnable tasks, floored at a 1 ms granularity.
func (s *CFS) Quantum(p *proc.Proc) sim.Cycles {
	latency := 20 * s.cyclesPerMs
	n := sim.Cycles(len(s.h) + 1) // queued plus the task being dispatched
	q := latency / n
	if min := s.cyclesPerMs; q < min {
		q = min
	}
	return q
}

// Charge implements Scheduler: vruntime advances by actual cycles
// scaled inversely with weight.
func (s *CFS) Charge(p *proc.Proc, d sim.Cycles) {
	sd := s.data(p)
	sd.vruntime += uint64(d) * nice0Weight / WeightOf(p.Nice())
}

// ShouldPreempt implements Scheduler: a woken task preempts when its
// vruntime is behind the current task's (simplified wakeup-granularity
// check).
func (s *CFS) ShouldPreempt(cur, woken *proc.Proc) bool {
	if cur == nil {
		return true
	}
	return s.data(woken).vruntime+uint64(s.cyclesPerMs) < s.data(cur).vruntime
}

// Runnable implements Scheduler.
func (s *CFS) Runnable() int { return len(s.h) }

// Clone implements Scheduler. The heap slice is copied element-for-
// element, so the clone's internal layout — and therefore every
// future sift decision — matches the original exactly. cfsData.index
// values are preserved by the struct copy.
func (s *CFS) Clone(pmap map[*proc.Proc]*proc.Proc) Scheduler {
	c := &CFS{cyclesPerMs: s.cyclesPerMs, seq: s.seq, minVruntime: s.minVruntime}
	//simlint:unordered-ok each task's SchedData slot is rebuilt independently; no cross-task state depends on visit order
	for p, cp := range pmap {
		if d, ok := p.SchedData.(*cfsData); ok {
			dd := *d
			cp.SchedData = &dd
		}
	}
	if len(s.h) > 0 {
		c.h = make(cfsHeap, len(s.h))
		for i, e := range s.h {
			np := pmap[e.p]
			c.h[i] = cfsEntry{p: np, d: np.SchedData.(*cfsData)}
		}
	}
	return c
}

type cfsEntry struct {
	p *proc.Proc
	d *cfsData
}

type cfsHeap []cfsEntry

func (h cfsHeap) Len() int { return len(h) }

func (h cfsHeap) Less(i, j int) bool {
	if h[i].d.vruntime != h[j].d.vruntime {
		return h[i].d.vruntime < h[j].d.vruntime
	}
	return h[i].d.seq < h[j].d.seq
}

func (h cfsHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].d.index = i
	h[j].d.index = j
}

func (h *cfsHeap) Push(x any) {
	e := x.(cfsEntry)
	e.d.index = len(*h)
	*h = append(*h, e)
}

func (h *cfsHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Interface compliance checks.
var (
	_ Scheduler = (*O1)(nil)
	_ Scheduler = (*CFS)(nil)
)
