package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/proc"
	"repro/internal/sim"
)

func mk(pid int, nice int) *proc.Proc {
	p := proc.New(proc.PID(pid), "t", nil)
	p.SetNice(nice)
	return p
}

func TestO1TimesliceFormula(t *testing.T) {
	s := NewO1(1) // 1 cycle per ms so values are in ms
	cases := map[int]sim.Cycles{
		0:   100, // DEF_TIMESLICE
		19:  5,   // MIN_TIMESLICE
		-20: 800, // max boost
	}
	for nice, want := range cases {
		if got := s.Timeslice(nice); got != want {
			t.Errorf("Timeslice(%d) = %d, want %d", nice, got, want)
		}
	}
	// Monotone: lower nice never gets a shorter slice.
	prev := sim.Cycles(0)
	for nice := proc.MaxNice; nice >= proc.MinNice; nice-- {
		ts := s.Timeslice(nice)
		if ts < prev {
			t.Fatalf("timeslice not monotone at nice %d: %d < %d", nice, ts, prev)
		}
		prev = ts
	}
}

func TestO1PriorityOrder(t *testing.T) {
	s := NewO1(1000)
	lo := mk(1, 10)
	hi := mk(2, -10)
	mid := mk(3, 0)
	s.Enqueue(lo)
	s.Enqueue(hi)
	s.Enqueue(mid)
	if s.Runnable() != 3 {
		t.Fatalf("Runnable = %d", s.Runnable())
	}
	if got := s.PickNext(); got != hi {
		t.Fatalf("first pick = %v, want hi", got)
	}
	if got := s.PickNext(); got != mid {
		t.Fatalf("second pick = %v, want mid", got)
	}
	if got := s.PickNext(); got != lo {
		t.Fatalf("third pick = %v, want lo", got)
	}
	if s.PickNext() != nil {
		t.Fatal("pick from empty queue != nil")
	}
}

func TestO1EpochSwap(t *testing.T) {
	s := NewO1(1000)
	a := mk(1, 0)
	b := mk(2, 0)
	s.Enqueue(a)
	s.Enqueue(b)
	// Both have full slices and sit in expired; the first PickNext
	// must swap arrays and still find them.
	if got := s.PickNext(); got != a {
		t.Fatalf("pick = %v, want a (FIFO within priority)", got)
	}
	// a exhausts its slice; re-enqueue sends it to expired while b
	// still has time in active.
	s.Charge(a, s.Quantum(a))
	s.Enqueue(a)
	if got := s.PickNext(); got != b {
		t.Fatalf("pick = %v, want b before expired a", got)
	}
}

func TestO1RemoveAndDoubleEnqueue(t *testing.T) {
	s := NewO1(1000)
	a := mk(1, 0)
	s.Enqueue(a)
	s.Enqueue(a) // duplicate is a no-op
	if s.Runnable() != 1 {
		t.Fatalf("duplicate enqueue counted: %d", s.Runnable())
	}
	s.Remove(a)
	if s.Runnable() != 0 || s.PickNext() != nil {
		t.Fatal("remove left task behind")
	}
	s.Remove(a) // double remove is a no-op
}

func TestO1ChargeConsumesSlice(t *testing.T) {
	s := NewO1(1000)
	a := mk(1, 0)
	q := s.Quantum(a)
	s.Charge(a, q/2)
	if got := s.Quantum(a); got != q/2 {
		t.Fatalf("remaining = %d, want %d", got, q/2)
	}
	s.Charge(a, q) // overrun clamps at zero, next Quantum refills
	if got := s.Quantum(a); got != q {
		t.Fatalf("refilled = %d, want %d", got, q)
	}
}

func TestO1Preemption(t *testing.T) {
	s := NewO1(1000)
	cur := mk(1, 0)
	hi := mk(2, -5)
	lo := mk(3, 5)
	if !s.ShouldPreempt(cur, hi) {
		t.Fatal("higher priority should preempt")
	}
	if s.ShouldPreempt(cur, lo) {
		t.Fatal("lower priority should not preempt")
	}
	if s.ShouldPreempt(cur, mk(4, 0)) {
		t.Fatal("equal priority should not preempt")
	}
	if !s.ShouldPreempt(nil, lo) {
		t.Fatal("idle CPU should always be preempted")
	}
}

func TestCFSFairPick(t *testing.T) {
	s := NewCFS(1000)
	a := mk(1, 0)
	b := mk(2, 0)
	s.Enqueue(a)
	s.Enqueue(b)
	first := s.PickNext()
	if first != a {
		t.Fatalf("tie should break by insertion order, got %v", first)
	}
	s.Charge(a, 10_000)
	s.Enqueue(a)
	if got := s.PickNext(); got != b {
		t.Fatalf("pick = %v, want b (lower vruntime)", got)
	}
}

func TestCFSWeightedCharge(t *testing.T) {
	s := NewCFS(1000)
	hi := mk(1, -20) // weight 88761
	lo := mk(2, 19)  // weight 15
	s.Charge(hi, 88761)
	s.Charge(lo, 15)
	dhi := hi.SchedData.(*cfsData)
	dlo := lo.SchedData.(*cfsData)
	if dhi.vruntime != 1024 || dlo.vruntime != 1024 {
		t.Fatalf("vruntime = %d/%d, want 1024/1024 (weight-normalised)", dhi.vruntime, dlo.vruntime)
	}
}

func TestCFSQuantumSharesLatency(t *testing.T) {
	s := NewCFS(1000)
	solo := mk(1, 0)
	if got := s.Quantum(solo); got != 20_000 {
		t.Fatalf("solo quantum = %d, want 20000 (full latency)", got)
	}
	for i := 2; i <= 40; i++ {
		s.Enqueue(mk(i, 0))
	}
	if got := s.Quantum(solo); got != 1000 {
		t.Fatalf("loaded quantum = %d, want 1000 (min granularity)", got)
	}
}

func TestCFSNewcomerStartsAtMinVruntime(t *testing.T) {
	s := NewCFS(1000)
	old := mk(1, 0)
	s.Enqueue(old)
	s.Charge(old, 1_000_000)
	s.Enqueue(old)
	_ = s.PickNext() // advances minVruntime to old's
	s.Enqueue(old)
	late := mk(2, 0)
	s.Enqueue(late)
	// The newcomer must not have vruntime 0 (which would starve old).
	d := late.SchedData.(*cfsData)
	if d.vruntime == 0 {
		t.Fatal("newcomer started at 0 vruntime, would starve the queue")
	}
}

func TestCFSRemove(t *testing.T) {
	s := NewCFS(1000)
	a, b, c := mk(1, 0), mk(2, 0), mk(3, 0)
	s.Enqueue(a)
	s.Enqueue(b)
	s.Enqueue(c)
	s.Remove(b)
	if s.Runnable() != 2 {
		t.Fatalf("Runnable = %d, want 2", s.Runnable())
	}
	got := []*proc.Proc{s.PickNext(), s.PickNext()}
	if got[0] != a || got[1] != c {
		t.Fatalf("picks = %v,%v want a,c", got[0], got[1])
	}
	s.Remove(b) // double remove no-op
}

func TestWeightTableShape(t *testing.T) {
	if WeightOf(0) != 1024 {
		t.Fatalf("WeightOf(0) = %d, want 1024", WeightOf(0))
	}
	// Each nice step should change weight by roughly 25% (the ~10%
	// CPU-share rule); check monotone decrease.
	for n := proc.MinNice; n < proc.MaxNice; n++ {
		if WeightOf(n) <= WeightOf(n+1) {
			t.Fatalf("weights not decreasing at nice %d", n)
		}
	}
}

// Property: both schedulers conserve tasks — everything enqueued is
// eventually picked exactly once, in any interleaving of enqueues.
func TestConservationProperty(t *testing.T) {
	for _, mkSched := range []func() Scheduler{
		func() Scheduler { return NewO1(1000) },
		func() Scheduler { return NewCFS(1000) },
	} {
		mkSched := mkSched
		f := func(nices []int8) bool {
			s := mkSched()
			want := map[proc.PID]bool{}
			for i, n := range nices {
				p := mk(i+1, int(n)%20)
				want[p.PID] = true
				s.Enqueue(p)
			}
			got := map[proc.PID]bool{}
			for {
				p := s.PickNext()
				if p == nil {
					break
				}
				if got[p.PID] {
					return false // picked twice
				}
				got[p.PID] = true
			}
			return len(got) == len(want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatal(err)
		}
	}
}
