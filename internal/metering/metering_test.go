package metering

import (
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/device"
	"repro/internal/proc"
	"repro/internal/sim"
)

func mkProc(pid proc.PID) *proc.Proc {
	p := proc.New(pid, "t", nil)
	return p
}

func TestUsageArithmetic(t *testing.T) {
	a := Usage{User: 10, System: 5}
	b := Usage{User: 3, System: 7}
	if got := a.Add(b); got != (Usage{User: 13, System: 12}) {
		t.Fatalf("Add = %+v", got)
	}
	if got := a.Sub(b); got != (Usage{User: 7, System: 0}) {
		t.Fatalf("Sub = %+v (system must clamp at 0)", got)
	}
	if a.Total() != 15 {
		t.Fatalf("Total = %d", a.Total())
	}
	u, s := a.Seconds(10)
	if u != 1.0 || s != 0.5 {
		t.Fatalf("Seconds = %v,%v", u, s)
	}
}

func TestJiffyChargesWholeTicks(t *testing.T) {
	a := NewJiffy(1000)
	p := mkProc(5)
	a.OnTick(p, cpu.User)
	a.OnTick(p, cpu.User)
	a.OnTick(p, cpu.Kernel)
	a.OnTick(nil, cpu.Kernel) // idle tick: charged to nobody
	u := a.Usage(5)
	if u.User != 2000 || u.System != 1000 {
		t.Fatalf("usage = %+v, want 2000/1000", u)
	}
	// OnRun and OnInterrupt must not affect jiffy accounting.
	a.OnRun(p, cpu.User, 999999)
	a.OnInterrupt(device.IRQNIC, p, 999999)
	if got := a.Usage(5); got != u {
		t.Fatalf("jiffy usage changed by OnRun/OnInterrupt: %+v", got)
	}
	if a.TickCycles() != 1000 {
		t.Fatalf("TickCycles = %d", a.TickCycles())
	}
}

func TestTSCChargesExactSlices(t *testing.T) {
	a := NewTSC()
	p := mkProc(7)
	a.OnRun(p, cpu.User, 123)
	a.OnRun(p, cpu.Kernel, 77)
	a.OnTick(p, cpu.User) // ignored
	u := a.Usage(7)
	if u.User != 123 || u.System != 77 {
		t.Fatalf("usage = %+v, want 123/77", u)
	}
	// TSC still bills interrupts to the current task (Linux flaw).
	a.OnInterrupt(device.IRQNIC, p, 50)
	if got := a.Usage(7).System; got != 127 {
		t.Fatalf("system after IRQ = %d, want 127", got)
	}
}

func TestProcessAwareDivertsIRQTime(t *testing.T) {
	a := NewProcessAware()
	p := mkProc(9)
	a.OnRun(p, cpu.User, 100)
	a.OnInterrupt(device.IRQNIC, p, 60)
	if got := a.Usage(9); got.System != 0 || got.User != 100 {
		t.Fatalf("victim usage = %+v, want 100/0", got)
	}
	if got := a.Usage(SystemPID); got.System != 60 {
		t.Fatalf("system account = %+v, want system=60", got)
	}
}

func TestThreadRollupToTGID(t *testing.T) {
	leader := mkProc(10)
	worker := proc.New(11, "w", nil)
	worker.TGID = 10
	a := NewTSC()
	a.OnRun(leader, cpu.User, 100)
	a.OnRun(worker, cpu.User, 50)
	if got := a.Usage(10).User; got != 150 {
		t.Fatalf("rolled-up user = %d, want 150", got)
	}
	if got := a.Usage(11).User; got != 0 {
		t.Fatalf("worker billed separately: %d", got)
	}
}

func TestMultiFansOut(t *testing.T) {
	j := NewJiffy(1000)
	ts := NewTSC()
	m := NewMulti(j, ts)
	p := mkProc(3)
	m.OnTick(p, cpu.User)
	m.OnRun(p, cpu.User, 400)
	m.OnInterrupt(device.IRQNIC, p, 10)
	if j.Usage(3).User != 1000 {
		t.Fatalf("jiffy did not receive tick: %+v", j.Usage(3))
	}
	if ts.Usage(3).User != 400 {
		t.Fatalf("tsc did not receive run: %+v", ts.Usage(3))
	}
	if got, ok := m.ByName("tsc"); !ok || got != Accountant(ts) {
		t.Fatal("ByName(tsc) failed")
	}
	if _, ok := m.ByName("nope"); ok {
		t.Fatal("ByName(nope) succeeded")
	}
	if len(m.Accountants()) != 2 {
		t.Fatal("Accountants() wrong length")
	}
	if m.Usage(3) != j.Usage(3) {
		t.Fatal("Multi.Usage should delegate to first accountant")
	}
	m.Add(NewProcessAware())
	if len(m.Accountants()) != 3 {
		t.Fatal("Add did not register")
	}
}

func TestEmptyMulti(t *testing.T) {
	m := NewMulti()
	if m.Usage(1) != (Usage{}) {
		t.Fatal("empty multi usage not zero")
	}
	if m.Snapshot() != nil {
		t.Fatal("empty multi snapshot not nil")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	a := NewTSC()
	p := mkProc(2)
	a.OnRun(p, cpu.User, 10)
	snap := a.Snapshot()
	snap[2] = Usage{User: 999}
	if a.Usage(2).User != 10 {
		t.Fatal("snapshot mutation leaked into ledger")
	}
}

func TestReapFoldsIntoChildrenBucket(t *testing.T) {
	a := NewTSC()
	parent := mkProc(1)
	child := mkProc(2)
	grandchild := mkProc(3)
	a.OnRun(child, cpu.User, 100)
	a.OnRun(grandchild, cpu.Kernel, 40)
	// Child reaps grandchild, then parent reaps child: the
	// grandchild's time must cascade into the parent's bucket.
	a.OnReap(child.PID, grandchild.PID)
	if got := a.ChildrenUsage(child.PID); got.System != 40 {
		t.Fatalf("child's children bucket = %+v, want system=40", got)
	}
	a.OnReap(parent.PID, child.PID)
	got := a.ChildrenUsage(parent.PID)
	if got.User != 100 || got.System != 40 {
		t.Fatalf("parent children bucket = %+v, want 100/40", got)
	}
	// Child's entries are gone.
	if a.Usage(child.PID) != (Usage{}) || a.ChildrenUsage(child.PID) != (Usage{}) {
		t.Fatal("reaped child ledger entries not dropped")
	}
	// Reaping a task with no usage is a no-op.
	a.OnReap(parent.PID, proc.PID(99))
}

func TestMultiReapFansOut(t *testing.T) {
	j := NewJiffy(100)
	ts := NewTSC()
	m := NewMulti(j, ts)
	child := mkProc(5)
	m.OnTick(child, cpu.User)
	m.OnRun(child, cpu.User, 70)
	m.OnReap(1, 5)
	if j.ChildrenUsage(1).User != 100 || ts.ChildrenUsage(1).User != 70 {
		t.Fatalf("fan-out reap: jiffy=%+v tsc=%+v", j.ChildrenUsage(1), ts.ChildrenUsage(1))
	}
	if m.ChildrenUsage(1) != j.ChildrenUsage(1) {
		t.Fatal("Multi.ChildrenUsage should delegate to first scheme")
	}
	if NewMulti().ChildrenUsage(1) != (Usage{}) {
		t.Fatal("empty multi children usage not zero")
	}
}

func TestSortedPIDs(t *testing.T) {
	snap := map[proc.PID]Usage{5: {}, 1: {}, 3: {}}
	got := SortedPIDs(snap)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("SortedPIDs = %v", got)
	}
}

// Property: for any slice sequence, TSC total equals the sum of all
// slices, and jiffy total equals ticks*tickCycles — the two schemes
// agree exactly when every slice is a whole number of ticks.
func TestConservationProperty(t *testing.T) {
	f := func(slices []uint16) bool {
		j := NewJiffy(100)
		ts := NewTSC()
		p := mkProc(1)
		var total sim.Cycles
		var ticks uint64
		for _, s := range slices {
			d := sim.Cycles(s%50) * 100 // whole ticks
			ts.OnRun(p, cpu.User, d)
			for k := sim.Cycles(0); k < d; k += 100 {
				j.OnTick(p, cpu.User)
				ticks++
			}
			total += d
		}
		return ts.Usage(1).User == total && j.Usage(1).User == sim.Cycles(ticks)*100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
