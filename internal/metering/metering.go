// Package metering implements the CPU-time accounting schemes the
// paper analyses (Section III-A) and the fine-grained scheme it calls
// for (Section VI-B):
//
//   - JiffyAccountant is the commodity-OS scheme: at every timer
//     interrupt the whole tick is charged to whichever task happens
//     to be current, as user or system time depending on its mode.
//     Every attack in the paper inflates the numbers this scheme
//     reports.
//   - TSCAccountant charges the exact cycle count of every execution
//     slice at context-switch granularity using the time-stamp
//     counter, eliminating the sampling error the scheduling attack
//     exploits — but it still bills interrupt-handler time to the
//     current task, as Linux does.
//   - ProcessAwareAccountant additionally attributes interrupt
//     handler time to a dedicated system account (after Zhang & West,
//     "Process-aware interrupt scheduling and accounting", RTSS'06,
//     the paper's reference [27]), closing the interrupt-flooding
//     channel.
//
// The kernel drives all registered accountants in parallel, so an
// experiment can report "billed by the vulnerable scheme" next to
// "ground truth" for the same run.
package metering

import (
	"sort"

	"repro/internal/cpu"
	"repro/internal/device"
	"repro/internal/proc"
	"repro/internal/sim"
)

// SystemPID is the pseudo-account the process-aware scheme bills
// interrupt handling to.
const SystemPID proc.PID = 0

// Usage is the accounted CPU time of one task, in cycles. User and
// System mirror utime and stime.
type Usage struct {
	User   sim.Cycles
	System sim.Cycles
}

// Total returns user plus system cycles.
func (u Usage) Total() sim.Cycles { return u.User + u.System }

// Add returns the element-wise sum.
func (u Usage) Add(v Usage) Usage {
	return Usage{User: u.User + v.User, System: u.System + v.System}
}

// Sub returns the element-wise difference, clamping at zero so a
// comparison between two schemes cannot underflow.
func (u Usage) Sub(v Usage) Usage {
	d := Usage{}
	if u.User > v.User {
		d.User = u.User - v.User
	}
	if u.System > v.System {
		d.System = u.System - v.System
	}
	return d
}

// Seconds converts the usage to (user, system) virtual seconds.
func (u Usage) Seconds(freq sim.Hz) (user, system float64) {
	//simlint:float-ok presentation-only conversion; bills and ledgers stay in integer ticks
	return float64(u.User) / float64(freq), float64(u.System) / float64(freq)
}

// Accountant observes execution and answers usage queries. The kernel
// invokes the On* hooks; experiments read Usage/Snapshot.
type Accountant interface {
	// Name identifies the scheme in reports.
	Name() string
	// OnTick fires at each timer interrupt. cur is the task that was
	// current when the interrupt arrived (nil if the CPU was idle)
	// and mode is the privilege mode it was executing in.
	OnTick(cur *proc.Proc, mode cpu.Mode)
	// OnRun reports that task p executed for d cycles in mode m.
	// The kernel emits one call per uninterrupted execution slice.
	OnRun(p *proc.Proc, m cpu.Mode, d sim.Cycles)
	// OnInterrupt reports d cycles of handler time for irq taken
	// while cur (possibly nil) was current.
	OnInterrupt(irq device.IRQ, cur *proc.Proc, d sim.Cycles)
	// Usage returns the accounted time for a billing entity. Threads
	// are rolled up into their thread group leader (TGID), matching
	// how a provider bills a job.
	Usage(pid proc.PID) Usage
	// OnReap folds a reaped child's own and accumulated-children
	// usage into the parent's children bucket (cutime/cstime, as
	// wait4 does) and drops the child's ledger entries, bounding
	// memory for fork-storm workloads.
	OnReap(parent, child proc.PID)
	// ChildrenUsage returns the accumulated usage of the entity's
	// reaped descendants (getrusage(RUSAGE_CHILDREN)).
	ChildrenUsage(pid proc.PID) Usage
	// Snapshot returns all per-entity usages, keyed by TGID.
	Snapshot() map[proc.PID]Usage
	// Clone returns an independent deep copy of the accountant and its
	// ledgers, for checkpoint restore.
	Clone() Accountant
}

// ledger accumulates usage keyed by TGID, plus a children bucket fed
// by reaping. The charge path is hot — every execution slice and
// every timer tick land here for every scheme — so the last-charged
// entry is cached: consecutive charges to the same thread group (the
// overwhelmingly common case, since the current task absorbs runs of
// slices) skip the map lookup entirely.
type ledger struct {
	byTGID   map[proc.PID]*Usage
	children map[proc.PID]*Usage

	lastTGID proc.PID
	last     *Usage
}

func newLedger() ledger {
	return ledger{
		byTGID:   make(map[proc.PID]*Usage),
		children: make(map[proc.PID]*Usage),
	}
}

// reap folds child (own + its accumulated children) into parent's
// children bucket and forgets the child.
func (l *ledger) reap(parent, child proc.PID) {
	var folded Usage
	if u := l.byTGID[child]; u != nil {
		folded = folded.Add(*u)
	}
	if cu := l.children[child]; cu != nil {
		folded = folded.Add(*cu)
	}
	delete(l.byTGID, child)
	delete(l.children, child)
	if l.lastTGID == child {
		l.last = nil
	}
	if folded == (Usage{}) {
		return
	}
	pc := l.children[parent]
	if pc == nil {
		pc = &Usage{}
		l.children[parent] = pc
	}
	*pc = pc.Add(folded)
}

func (l *ledger) childrenUsage(pid proc.PID) Usage {
	if u := l.children[pid]; u != nil {
		return *u
	}
	return Usage{}
}

func (l *ledger) entry(pid proc.PID) *Usage {
	if l.last != nil && l.lastTGID == pid {
		return l.last
	}
	u := l.byTGID[pid]
	if u == nil {
		u = &Usage{}
		l.byTGID[pid] = u
	}
	l.lastTGID, l.last = pid, u
	return u
}

func (l *ledger) chargeTask(p *proc.Proc, m cpu.Mode, d sim.Cycles) {
	if p == nil {
		return
	}
	u := l.entry(p.TGID)
	if m == cpu.User {
		u.User += d
	} else {
		u.System += d
	}
}

func (l *ledger) usage(pid proc.PID) Usage {
	if u := l.byTGID[pid]; u != nil {
		return *u
	}
	return Usage{}
}

// clone deep-copies both ledgers. The last-charged cache is carried
// over (re-pointed at the cloned entry) so the clone's lookup
// behaviour matches the original's from the first charge.
func (l *ledger) clone() ledger {
	c := ledger{
		byTGID:   make(map[proc.PID]*Usage, len(l.byTGID)),
		children: make(map[proc.PID]*Usage, len(l.children)),
	}
	//simlint:unordered-ok deep copy into a map keyed identically
	for pid, u := range l.byTGID {
		cu := *u
		c.byTGID[pid] = &cu
	}
	//simlint:unordered-ok deep copy into a map keyed identically
	for pid, u := range l.children {
		cu := *u
		c.children[pid] = &cu
	}
	if l.last != nil {
		c.lastTGID = l.lastTGID
		c.last = c.byTGID[l.lastTGID]
	}
	return c
}

func (l *ledger) snapshot() map[proc.PID]Usage {
	out := make(map[proc.PID]Usage, len(l.byTGID))
	//simlint:unordered-ok map-to-map copy; callers order via SortedPIDs
	for pid, u := range l.byTGID {
		out[pid] = *u
	}
	return out
}

// JiffyAccountant is the vulnerable commodity scheme: one whole tick
// is charged to the current task at every timer interrupt.
type JiffyAccountant struct {
	tick sim.Cycles // cycles per jiffy
	l    ledger
}

// NewJiffy returns a jiffy accountant for the given tick length in
// cycles (freq / HZ).
func NewJiffy(tickCycles sim.Cycles) *JiffyAccountant {
	return &JiffyAccountant{tick: tickCycles, l: newLedger()}
}

// Name implements Accountant.
func (a *JiffyAccountant) Name() string { return "jiffy" }

// TickCycles returns the cycles-per-tick this accountant bills at.
func (a *JiffyAccountant) TickCycles() sim.Cycles { return a.tick }

// OnTick charges one full tick to the current task.
func (a *JiffyAccountant) OnTick(cur *proc.Proc, mode cpu.Mode) {
	a.l.chargeTask(cur, mode, a.tick)
}

// OnRun is ignored: the jiffy scheme only samples at ticks.
func (a *JiffyAccountant) OnRun(*proc.Proc, cpu.Mode, sim.Cycles) {}

// OnInterrupt is ignored: handler time is captured implicitly when a
// tick lands during or after the handler, exactly the imprecision the
// paper describes.
func (a *JiffyAccountant) OnInterrupt(device.IRQ, *proc.Proc, sim.Cycles) {}

// Usage implements Accountant.
func (a *JiffyAccountant) Usage(pid proc.PID) Usage { return a.l.usage(pid) }

// OnReap implements Accountant.
func (a *JiffyAccountant) OnReap(parent, child proc.PID) { a.l.reap(parent, child) }

// ChildrenUsage implements Accountant.
func (a *JiffyAccountant) ChildrenUsage(pid proc.PID) Usage { return a.l.childrenUsage(pid) }

// Snapshot implements Accountant.
func (a *JiffyAccountant) Snapshot() map[proc.PID]Usage { return a.l.snapshot() }

// Clone implements Accountant.
func (a *JiffyAccountant) Clone() Accountant {
	return &JiffyAccountant{tick: a.tick, l: a.l.clone()}
}

// TSCAccountant charges exact slice lengths. Interrupt time is still
// billed to the current task (system time), like Linux but precise.
type TSCAccountant struct {
	l ledger
}

// NewTSC returns a TSC accountant.
func NewTSC() *TSCAccountant { return &TSCAccountant{l: newLedger()} }

// Name implements Accountant.
func (a *TSCAccountant) Name() string { return "tsc" }

// OnTick is ignored: precision comes from OnRun.
func (a *TSCAccountant) OnTick(*proc.Proc, cpu.Mode) {}

// OnRun charges the exact slice.
func (a *TSCAccountant) OnRun(p *proc.Proc, m cpu.Mode, d sim.Cycles) {
	a.l.chargeTask(p, m, d)
}

// OnInterrupt bills handler time to the interrupted task's system
// time, preserving Linux's attribution flaw at cycle precision.
func (a *TSCAccountant) OnInterrupt(_ device.IRQ, cur *proc.Proc, d sim.Cycles) {
	a.l.chargeTask(cur, cpu.Kernel, d)
}

// Usage implements Accountant.
func (a *TSCAccountant) Usage(pid proc.PID) Usage { return a.l.usage(pid) }

// OnReap implements Accountant.
func (a *TSCAccountant) OnReap(parent, child proc.PID) { a.l.reap(parent, child) }

// ChildrenUsage implements Accountant.
func (a *TSCAccountant) ChildrenUsage(pid proc.PID) Usage { return a.l.childrenUsage(pid) }

// Snapshot implements Accountant.
func (a *TSCAccountant) Snapshot() map[proc.PID]Usage { return a.l.snapshot() }

// Clone implements Accountant.
func (a *TSCAccountant) Clone() Accountant { return &TSCAccountant{l: a.l.clone()} }

// ProcessAwareAccountant is the paper's fine-grained scheme: exact
// slices plus interrupt time diverted to SystemPID.
type ProcessAwareAccountant struct {
	l ledger
}

// NewProcessAware returns a process-aware accountant.
func NewProcessAware() *ProcessAwareAccountant {
	return &ProcessAwareAccountant{l: newLedger()}
}

// Name implements Accountant.
func (a *ProcessAwareAccountant) Name() string { return "process-aware" }

// OnTick is ignored: precision comes from OnRun.
func (a *ProcessAwareAccountant) OnTick(*proc.Proc, cpu.Mode) {}

// OnRun charges the exact slice.
func (a *ProcessAwareAccountant) OnRun(p *proc.Proc, m cpu.Mode, d sim.Cycles) {
	a.l.chargeTask(p, m, d)
}

// OnInterrupt bills handler time to the system account, not the
// victim of the interrupt.
func (a *ProcessAwareAccountant) OnInterrupt(_ device.IRQ, _ *proc.Proc, d sim.Cycles) {
	a.l.entry(SystemPID).System += d
}

// Usage implements Accountant.
func (a *ProcessAwareAccountant) Usage(pid proc.PID) Usage { return a.l.usage(pid) }

// OnReap implements Accountant.
func (a *ProcessAwareAccountant) OnReap(parent, child proc.PID) { a.l.reap(parent, child) }

// ChildrenUsage implements Accountant.
func (a *ProcessAwareAccountant) ChildrenUsage(pid proc.PID) Usage { return a.l.childrenUsage(pid) }

// Snapshot implements Accountant.
func (a *ProcessAwareAccountant) Snapshot() map[proc.PID]Usage { return a.l.snapshot() }

// Clone implements Accountant.
func (a *ProcessAwareAccountant) Clone() Accountant {
	return &ProcessAwareAccountant{l: a.l.clone()}
}

// Multi fans hooks out to several accountants so one run yields every
// scheme's view of the same execution. The charge hooks iterate the
// accountant slice directly; name resolution is an index map built at
// registration, so no per-charge string work happens anywhere.
type Multi struct {
	accts   []Accountant
	indexOf map[string]int
}

// NewMulti returns a fan-out over the given accountants.
func NewMulti(accts ...Accountant) *Multi {
	m := &Multi{accts: accts, indexOf: make(map[string]int, len(accts))}
	for i, a := range accts {
		if _, dup := m.indexOf[a.Name()]; !dup {
			m.indexOf[a.Name()] = i
		}
	}
	return m
}

// Add registers another accountant.
func (m *Multi) Add(a Accountant) {
	if _, dup := m.indexOf[a.Name()]; !dup {
		m.indexOf[a.Name()] = len(m.accts)
	}
	m.accts = append(m.accts, a)
}

// Accountants returns the registered schemes in registration order.
func (m *Multi) Accountants() []Accountant {
	out := make([]Accountant, len(m.accts))
	copy(out, m.accts)
	return out
}

// ByName returns the first accountant with the given name.
func (m *Multi) ByName(name string) (Accountant, bool) {
	i, ok := m.indexOf[name]
	if !ok {
		return nil, false
	}
	return m.accts[i], true
}

// Name implements Accountant.
func (m *Multi) Name() string { return "multi" }

// OnTick implements Accountant.
func (m *Multi) OnTick(cur *proc.Proc, mode cpu.Mode) {
	for _, a := range m.accts {
		a.OnTick(cur, mode)
	}
}

// OnRun implements Accountant.
func (m *Multi) OnRun(p *proc.Proc, mode cpu.Mode, d sim.Cycles) {
	for _, a := range m.accts {
		a.OnRun(p, mode, d)
	}
}

// OnInterrupt implements Accountant.
func (m *Multi) OnInterrupt(irq device.IRQ, cur *proc.Proc, d sim.Cycles) {
	for _, a := range m.accts {
		a.OnInterrupt(irq, cur, d)
	}
}

// Usage implements Accountant using the first registered scheme.
func (m *Multi) Usage(pid proc.PID) Usage {
	if len(m.accts) == 0 {
		return Usage{}
	}
	return m.accts[0].Usage(pid)
}

// OnReap implements Accountant.
func (m *Multi) OnReap(parent, child proc.PID) {
	for _, a := range m.accts {
		a.OnReap(parent, child)
	}
}

// ChildrenUsage implements Accountant using the first registered
// scheme.
func (m *Multi) ChildrenUsage(pid proc.PID) Usage {
	if len(m.accts) == 0 {
		return Usage{}
	}
	return m.accts[0].ChildrenUsage(pid)
}

// Snapshot implements Accountant using the first registered scheme.
func (m *Multi) Snapshot() map[proc.PID]Usage {
	if len(m.accts) == 0 {
		return nil
	}
	return m.accts[0].Snapshot()
}

// Clone implements Accountant: every registered scheme is cloned in
// registration order. The result is a *Multi, so callers restoring a
// machine can assert it back.
func (m *Multi) Clone() Accountant {
	accts := make([]Accountant, len(m.accts))
	for i, a := range m.accts {
		accts[i] = a.Clone()
	}
	return NewMulti(accts...)
}

// Interface compliance checks.
var (
	_ Accountant = (*JiffyAccountant)(nil)
	_ Accountant = (*TSCAccountant)(nil)
	_ Accountant = (*ProcessAwareAccountant)(nil)
	_ Accountant = (*Multi)(nil)
)

// SortedPIDs returns the keys of a snapshot in ascending order, for
// deterministic report rendering.
func SortedPIDs(snap map[proc.PID]Usage) []proc.PID {
	pids := make([]proc.PID, 0, len(snap))
	//simlint:unordered-ok key harvest for the sort below; output is totally ordered
	for pid := range snap {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}
