package workloads

import (
	"strings"

	"repro/internal/guest"
	"repro/internal/sim"
)

// piDigits is how many digits of π program P computes (a real spigot
// run; the result is checked by tests against the known expansion).
const piDigits = 600

// BuildPi constructs program P, modelled on the open-source pi
// calculator the paper uses: Rabinowitz–Wagon spigot. The inner-loop
// accumulator y (HotAddrP) is the paper's watchpoint target,
// "accessed about 10^7 times" — we access it once per inner
// iteration batch, with the batch size derived from Params.Touches.
// Baseline: 110 virtual seconds of user time.
func BuildPi(p Params) (*guest.Program, *Result) {
	const defaultSeconds = 110.0
	seconds := defaultSeconds
	if p.SecondsOverride > 0 {
		seconds = p.SecondsOverride
	}

	// Total inner-loop operations of the spigot: the array has
	// 10*digits/3 cells and is swept once per digit.
	arrLen := 10 * piDigits / 3
	totalOps := uint64(piDigits) * uint64(arrLen)

	touches := p.Touches
	if touches == 0 {
		touches = 30_000
	}
	if touches > totalOps {
		touches = totalOps
	}
	batch := totalOps / touches
	if batch == 0 {
		batch = 1
	}
	opCost := secondsToCycles(p.freq(), seconds) / sim.Cycles(totalOps)
	if opCost == 0 {
		opCost = 1
	}

	res := &Result{}
	prog := &guest.Program{
		Name:    "pi",
		Content: "pi spigot v1 (sourceforge projectpi model)",
		Libs:    []string{"libc.so.6", "libm.so.6"},
		Main: func(ctx guest.Context) {
			// The spigot's digit array, heap-allocated like the real
			// C program (rounded up to the shared working-set size).
			arr := ctx.Call1("malloc", workingSetBytes)
			var batchNo uint64
			a := make([]int, arrLen)
			for i := range a {
				a[i] = 2
			}
			var out strings.Builder
			var opsSinceTouch uint64
			var pending sim.Cycles
			nines := 0
			predigit := 0
			first := true

			for d := 0; d < piDigits; d++ {
				q := 0
				for i := arrLen - 1; i >= 0; i-- {
					y := 10*a[i] + q*(i+1) // the paper's variable y
					a[i] = y % (2*i + 1)
					q = y / (2*i + 1)

					pending += opCost
					opsSinceTouch++
					if opsSinceTouch >= batch {
						ctx.Compute(pending)
						pending = 0
						opsSinceTouch = 0
						ctx.Store(HotAddrP) // y lives here
						touchWorkingSet(ctx, arr, batchNo)
						// The digit buffer grows in chunks: the
						// allocator traffic Fig. 6 interposes on.
						chunk := ctx.Call1("malloc", 256)
						ctx.Call1("free", chunk)
						batchNo++
					}
				}
				a[0] = q % 10
				q /= 10
				switch {
				case q == 9:
					nines++
				case q == 10:
					out.WriteByte(byte('0' + predigit + 1))
					for ; nines > 0; nines-- {
						out.WriteByte('0')
					}
					predigit = 0
				default:
					if !first {
						out.WriteByte(byte('0' + predigit))
					}
					first = false
					for ; nines > 0; nines-- {
						out.WriteByte('9')
					}
					predigit = q
				}
			}
			out.WriteByte(byte('0' + predigit))
			ctx.Compute(pending)
			ctx.Call1("free", arr)
			//simlint:errno-ok modeled benchmark epilogue; the digits live in res.Output, not the write
			ctx.Syscall("write")     // print the digits
			ctx.Syscall("getrusage") //simlint:errno-ok modeled benchmark epilogue; usage poll is ballast, not control flow
			res.Output = out.String()
			res.Done = true
		},
	}
	return prog, res
}
