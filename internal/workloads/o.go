package workloads

import (
	"strconv"

	"repro/internal/guest"
)

// BuildO constructs program O, the paper's own loop program: a
// CPU-bound counting loop whose control variable lives at HotAddrO
// and is re-read every iteration — the address the thrashing attack
// watches. Baseline: 50 virtual seconds of user time.
func BuildO(p Params) (*guest.Program, *Result) {
	const defaultSeconds = 50.0
	seconds := defaultSeconds
	if p.SecondsOverride > 0 {
		seconds = p.SecondsOverride
	}
	touches := p.Touches
	if touches == 0 {
		touches = 20_000
	}
	total := secondsToCycles(p.freq(), seconds)
	chunk, rem := splitBudget(total, touches)

	res := &Result{}
	prog := &guest.Program{
		Name:    "ours",
		Content: "program-O loop v1",
		Libs:    []string{"libc.so.6", "libm.so.6"},
		Main: func(ctx guest.Context) {
			// The program's data buffer; its pages age and rotate.
			buf := ctx.Call1("malloc", workingSetBytes)
			var counter uint64
			for i := uint64(0); i < touches; i++ {
				c := chunk
				if i < uint64(rem) {
					c++
				}
				ctx.Compute(c)
				// Loop-control variable access: the watch target.
				ctx.Load(HotAddrO)
				ctx.Store(HotAddrO)
				touchWorkingSet(ctx, buf, i)
				// Per-iteration scratch record, as the paper's
				// allocator-exercising loop program does — the
				// substitution attack's call sites.
				scratch := ctx.Call1("malloc", 128)
				ctx.Call1("free", scratch)
				counter++
			}
			ctx.Call1("free", buf)
			ctx.Syscall("getrusage") //simlint:errno-ok modeled benchmark epilogue; usage poll is ballast, not control flow
			res.Output = strconv.FormatUint(counter, 10)
			res.Done = true
		},
	}
	return prog, res
}
