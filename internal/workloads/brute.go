package workloads

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"

	"repro/internal/guest"
	"repro/internal/sim"
)

// Brute really cracks this preimage: the MD5 of a four-letter
// lowercase word, like the author-supplied brutefile the paper runs
// against MD5.
const brutePlaintext = "utex"

// bruteThreads matches the program's "spawns many threads" design —
// the property that defeats the scheduling attack in Fig. 8.
const bruteThreads = 8

// bruteAlphabet is the candidate character set.
const bruteAlphabet = "abcdefghijklmnopqrstuvwxyz"

// bruteBatch is how many candidates a worker hashes between
// synchronisation points with the leader.
const bruteBatch = 512

// BuildBrute constructs program B: a multi-threaded MD5 brute-force
// search that genuinely finds brutePlaintext's hash. The leader
// dispatches candidate ranges and maintains the shared progress
// counter `count` (HotAddrB, the paper's crack_len watch target,
// accessed ~895k times in thrash mode); workers hash real candidates
// with crypto/md5. Baseline: 200 virtual seconds of user time spread
// across the thread group, plus futex-style synchronisation system
// time.
func BuildBrute(p Params) (*guest.Program, *Result) {
	const defaultSeconds = 200.0
	seconds := defaultSeconds
	if p.SecondsOverride > 0 {
		seconds = p.SecondsOverride
	}
	target := md5.Sum([]byte(brutePlaintext))
	targetHex := hex.EncodeToString(target[:])

	n := len(bruteAlphabet)
	space := uint64(n * n * n * n) // 26^4 = 456,976 candidates
	totalBatches := space / bruteBatch
	// The leader does ~3% of the CPU work (progress accounting and
	// result collation), spread across the whole run, so it is
	// schedulable — and traceable — for the run's full duration;
	// workers split the hashing budget.
	leaderCycles := secondsToCycles(p.freq(), seconds*0.03)
	leaderChunk := leaderCycles / sim.Cycles(totalBatches)
	perCandidate := secondsToCycles(p.freq(), seconds*0.97) / sim.Cycles(space)
	if perCandidate == 0 {
		perCandidate = 1
	}

	// Leader's count-variable touch schedule: spread the requested
	// touches over the batches it processes.
	touches := p.Touches
	if touches == 0 {
		touches = totalBatches
	}
	touchesPerBatch := touches / totalBatches
	if touchesPerBatch == 0 {
		touchesPerBatch = 1
	}

	res := &Result{}
	prog := &guest.Program{
		Name:    "brute",
		Content: "brute2 md5 cracker v0.3",
		Libs:    []string{"libc.so.6"},
		Main: func(ctx guest.Context) {
			found := make(chan string, 1)
			// Candidate index decoding: i -> 4 letters.
			word := func(i uint64) string {
				b := []byte{
					bruteAlphabet[(i/uint64(n*n*n))%uint64(n)],
					bruteAlphabet[(i/uint64(n*n))%uint64(n)],
					bruteAlphabet[(i/uint64(n))%uint64(n)],
					bruteAlphabet[i%uint64(n)],
				}
				return string(b)
			}

			per := space / bruteThreads
			for w := 0; w < bruteThreads; w++ {
				lo := uint64(w) * per
				hi := lo + per
				if w == bruteThreads-1 {
					hi = space
				}
				ctx.SpawnThread(fmt.Sprintf("brute-w%d", w), func(c guest.Context) {
					// Worker-local candidate buffer.
					buf := c.Call1("malloc", bruteBatch*8)
					for start := lo; start < hi; start += bruteBatch {
						end := start + bruteBatch
						if end > hi {
							end = hi
						}
						// Hash the batch for real, then charge its
						// modelled cost in one slice.
						for i := start; i < end; i++ {
							h := md5.Sum([]byte(word(i)))
							if h == target {
								select {
								case found <- word(i):
								default:
								}
							}
						}
						c.Compute(perCandidate * sim.Cycles(end-start))
						// Candidate strings are built in small
						// heap chunks (brute2's per-try buffers).
						for g := uint64(0); g < bruteBatch/64; g++ {
							tmp := c.Call1("malloc", 64)
							c.Call1("free", tmp)
						}
						// Synchronise progress with the leader.
						c.Syscall("futex") //simlint:errno-ok modeled benchmark binary; the futex is pure CPU-time ballast
					}
					c.Call1("free", buf)
				})
			}

			// Leader: account worker progress in `count` while
			// workers run, then reap them.
			lbuf := ctx.Call1("malloc", workingSetBytes)
			for b := uint64(0); b < totalBatches; b++ {
				for k := uint64(0); k < touchesPerBatch; k++ {
					ctx.Store(HotAddrB) // count++ in crack_len()
				}
				ctx.Compute(leaderChunk) // progress accounting
				touchWorkingSet(ctx, lbuf, b)
				if b%64 == 0 {
					ctx.Syscall("futex") //simlint:errno-ok modeled benchmark binary; the futex is pure CPU-time ballast
				}
			}
			for {
				if _, ok := ctx.Wait(); !ok {
					break
				}
			}
			ctx.Syscall("getrusage") //simlint:errno-ok modeled benchmark epilogue; usage poll is ballast, not control flow
			select {
			case w := <-found:
				res.Output = w + " " + targetHex
			default:
				res.Output = "not-found " + targetHex
			}
			res.Done = true
		},
	}
	return prog, res
}

// BrutePlaintext exposes the planted preimage for test verification.
func BrutePlaintext() string { return brutePlaintext }
