package workloads

import (
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// runProgram executes a built workload on a fresh machine via exec,
// returning the machine and the launcher pid (= billing TGID).
func runProgram(t *testing.T, prog *guest.Program) (*kernel.Machine, *kernel.Machine) {
	t.Helper()
	m := kernel.New(kernel.Config{Seed: 1, CPUHz: 1_000_000_000, MaxSteps: 100_000_000})
	_, err := m.Spawn(kernel.SpawnConfig{Name: prog.Name, Body: func(ctx guest.Context) {
		ctx.Exec(prog)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run %s: %v", prog.Name, err)
	}
	return m, m
}

func params() Params {
	// Short runs for tests: 0.2–0.5 virtual seconds at 1 GHz.
	return Params{Freq: 1_000_000_000, SecondsOverride: 0.3}
}

func TestSpecsComplete(t *testing.T) {
	specs := Specs()
	if len(specs) != 4 {
		t.Fatalf("specs = %d, want 4", len(specs))
	}
	keys := map[string]bool{}
	for _, s := range specs {
		keys[s.Key] = true
		if s.HotAddr == 0 || s.DefaultThrashTouches == 0 || s.Build == nil {
			t.Errorf("spec %s incomplete: %+v", s.Key, s)
		}
	}
	for _, k := range []string{"O", "P", "W", "B"} {
		if !keys[k] {
			t.Errorf("missing spec %s", k)
		}
	}
	if _, err := SpecByKey("P"); err != nil {
		t.Error(err)
	}
	if _, err := SpecByKey("Z"); err == nil {
		t.Error("SpecByKey(Z) should fail")
	}
}

func TestOCompletes(t *testing.T) {
	prog, res := BuildO(params())
	runProgram(t, prog)
	if !res.Done {
		t.Fatal("O did not complete")
	}
	if res.Output != "20000" {
		t.Fatalf("O counter = %s, want 20000 (default touches)", res.Output)
	}
}

func TestPiComputesRealDigits(t *testing.T) {
	prog, res := BuildPi(params())
	runProgram(t, prog)
	if !res.Done {
		t.Fatal("P did not complete")
	}
	const want = "31415926535897932384626433832795028841971693993751"
	if !strings.HasPrefix(res.Output, want) {
		t.Fatalf("pi output prefix = %q, want %q", res.Output[:50], want)
	}
	if len(res.Output) < piDigits-2 {
		t.Fatalf("pi produced %d digits, want ~%d", len(res.Output), piDigits)
	}
}

func TestWhetstoneCompletes(t *testing.T) {
	prog, res := BuildWhetstone(params())
	runProgram(t, prog)
	if !res.Done {
		t.Fatal("W did not complete")
	}
	if !strings.HasPrefix(res.Output, "check=") {
		t.Fatalf("W output = %q", res.Output)
	}
	if strings.Contains(res.Output, "NaN") || strings.Contains(res.Output, "Inf") {
		t.Fatalf("W check diverged: %s", res.Output)
	}
}

func TestBruteFindsPreimage(t *testing.T) {
	prog, res := BuildBrute(params())
	runProgram(t, prog)
	if !res.Done {
		t.Fatal("B did not complete")
	}
	if !strings.HasPrefix(res.Output, BrutePlaintext()+" ") {
		t.Fatalf("B output = %q, want prefix %q", res.Output, BrutePlaintext())
	}
}

func TestBaselineDurationsCalibrated(t *testing.T) {
	// With no override, each program's TSC user time should land on
	// its calibrated baseline (within 5%: request overheads add a
	// little).
	want := map[string]float64{"O": 50, "P": 110, "W": 160, "B": 200}
	for _, s := range Specs() {
		s := s
		t.Run(s.Key, func(t *testing.T) {
			freq := sim.Hz(1_000_000_000)
			prog, _ := s.Build(Params{Freq: freq})
			m := kernel.New(kernel.Config{Seed: 1, CPUHz: freq, MaxSteps: 500_000_000})
			p, err := m.Spawn(kernel.SpawnConfig{Name: prog.Name, Body: func(ctx guest.Context) {
				ctx.Exec(prog)
			}})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			u, _ := m.UsageBy("tsc", p.PID)
			got := float64(u.User) / float64(freq)
			if got < want[s.Key]*0.95 || got > want[s.Key]*1.05 {
				t.Fatalf("%s baseline user = %.1fs, want ~%.0fs", s.Key, got, want[s.Key])
			}
		})
	}
}

func TestTouchesParameterHonoured(t *testing.T) {
	p := params()
	p.Touches = 5000
	prog, res := BuildO(p)
	m, _ := runProgram(t, prog)
	_ = m
	if res.Output != "5000" {
		t.Fatalf("O with Touches=5000 looped %s times", res.Output)
	}
}

func TestWhetstoneCallCounts(t *testing.T) {
	if WhetstoneSqrtCalls() != uint64(whetstoneLoops)*sqrtCallsPerLoop {
		t.Fatal("WhetstoneSqrtCalls inconsistent")
	}
	if c := whetstoneChunkAt(1_000_000_000, 160); c == 0 {
		t.Fatal("whetstone chunk = 0")
	}
}

func TestBruteSpawnsThreads(t *testing.T) {
	prog, _ := BuildBrute(params())
	m := kernel.New(kernel.Config{Seed: 1, CPUHz: 1_000_000_000, MaxSteps: 100_000_000})
	p, _ := m.Spawn(kernel.SpawnConfig{Name: prog.Name, Body: func(ctx guest.Context) {
		ctx.Exec(prog)
	}})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats(p.PID)
	if st.ThreadsSpawned != bruteThreads {
		t.Fatalf("threads = %d, want %d", st.ThreadsSpawned, bruteThreads)
	}
	if st.Syscalls == 0 {
		t.Fatal("brute made no syscalls (futex sync expected)")
	}
}
