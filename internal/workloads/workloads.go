// Package workloads implements the paper's four test programs
// (Section V-A) as genuine computations driven through the guest API:
//
//	O — "our program": a CPU-bound loop with a hot control variable.
//	P — Pi: a spigot algorithm that really computes digits of π.
//	W — Whetstone: the classic mixed-kernel benchmark with real
//	    floating-point math and libm calls.
//	B — Brute: a multi-threaded MD5 brute-forcer (crypto/md5) that
//	    really finds the preimage of a target hash.
//
// Each program charges virtual cycles proportional to the work it
// performs, calibrated so baseline CPU seconds land in the paper's
// range. Each exposes a hot virtual address that the thrashing attack
// watches, and calls malloc/sqrt through the dynamic linker so the
// substitution attack has real call sites.
package workloads

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/sim"
)

// Hot variable addresses, one page apart, fixed per program so the
// thrashing attack can arm watchpoints (paper: O's loop control
// variable, P's y, W's T1, B's count).
const (
	HotAddrO uint64 = 0x0001_0000
	HotAddrP uint64 = 0x0002_0000
	HotAddrW uint64 = 0x0003_0000
	HotAddrB uint64 = 0x0004_0000
)

// Params tunes a workload build.
type Params struct {
	// Freq is the machine's CPU frequency; per-operation cycle costs
	// are derived from it so baseline virtual seconds stay constant
	// across machine configurations. Zero selects the default
	// 2.53 GHz.
	Freq sim.Hz
	// Touches overrides the number of hot-variable accesses the
	// program performs (the thrashing attack raises this to the
	// paper's figures). Zero selects a sparse default.
	Touches uint64
	// SecondsOverride rescales the baseline user-CPU seconds; zero
	// keeps the program's calibrated default.
	SecondsOverride float64
}

func (p Params) freq() sim.Hz {
	if p.Freq == 0 {
		return sim.DefaultCPUHz
	}
	return p.Freq
}

// Result captures what a workload actually computed, so tests can
// verify execution correctness (the threat model's "server does not
// risk the correctness of program execution").
type Result struct {
	// Output is the program's observable result: π digits, the
	// Whetstone checksum, the cracked preimage, or O's counter.
	Output string
	// Done marks that main ran to completion.
	Done bool
}

// Spec describes one victim program.
type Spec struct {
	Key     string // "O", "P", "W", "B"
	Name    string
	HotAddr uint64
	// BaselineSeconds is the calibrated user-CPU baseline at default
	// parameters; experiments scale from it.
	BaselineSeconds float64
	// DefaultThrashTouches is the hot-variable access count the
	// thrashing experiment uses (paper counts, P scaled 10x down;
	// see EXPERIMENTS.md).
	DefaultThrashTouches uint64
	// Build constructs the program; the returned Result is filled
	// in as the program runs inside the simulation.
	Build func(p Params) (*guest.Program, *Result)
}

// Specs returns the four victim programs in the paper's order.
func Specs() []Spec {
	return []Spec{
		{Key: "O", Name: "ours", HotAddr: HotAddrO, BaselineSeconds: 50, DefaultThrashTouches: 1_000_000, Build: BuildO},
		{Key: "P", Name: "pi", HotAddr: HotAddrP, BaselineSeconds: 110, DefaultThrashTouches: 1_000_000, Build: BuildPi},
		{Key: "W", Name: "whetstone", HotAddr: HotAddrW, BaselineSeconds: 160, DefaultThrashTouches: 200_000, Build: BuildWhetstone},
		{Key: "B", Name: "brute", HotAddr: HotAddrB, BaselineSeconds: 200, DefaultThrashTouches: 895_000, Build: BuildBrute},
	}
}

// SpecByKey returns the spec for one of "O","P","W","B".
func SpecByKey(key string) (Spec, error) {
	for _, s := range Specs() {
		if s.Key == key {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown program %q", key)
}

// secondsToCycles converts virtual seconds to cycles at freq.
func secondsToCycles(freq sim.Hz, s float64) sim.Cycles {
	return sim.Cycles(s * float64(freq))
}

// splitBudget divides a total cycle budget into n near-equal chunks,
// returning the base chunk and the remainder distributed to the
// first chunks.
func splitBudget(total sim.Cycles, n uint64) (chunk, rem sim.Cycles) {
	if n == 0 {
		n = 1
	}
	return total / sim.Cycles(n), total % sim.Cycles(n)
}

// wsPages is each program's rotating data working set in pages. The
// rotation keeps a realistic spread of page ages, so under the
// exception-flooding attack's memory pressure the colder pages are
// evicted and the program takes major faults on their next use.
const wsPages = 64

// pageSize mirrors mem.DefaultPageSize without importing the package.
const pageSize = 4096

// touchWorkingSet stores into the i-th working-set page of the
// buffer at base.
func touchWorkingSet(ctx guest.Context, base, i uint64) {
	ctx.Store(base + (i%wsPages)*pageSize)
}

// workingSetBytes is the allocation size backing the rotation.
const workingSetBytes = wsPages * pageSize
