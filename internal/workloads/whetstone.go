package workloads

import (
	"fmt"
	"math"

	"repro/internal/guest"
	"repro/internal/sim"
)

// whetstoneLoops is the outer iteration count of the benchmark.
const whetstoneLoops = 15_000

// sqrtCallsPerLoop drives the substitution-attack surface: W is the
// libm-heavy program, so sqrt interposition amplifies strongly
// (Fig. 6).
const sqrtCallsPerLoop = 10

// BuildWhetstone constructs program W: the classic Whetstone mix —
// array arithmetic, conditional jumps, integer work, and
// transcendental-function modules that really call sqrt/sin/cos/exp/
// log through the dynamic linker. T1 (HotAddrW) is the paper's
// watchpoint variable, "accessed about 2x10^5 times". Baseline: 160
// virtual seconds of user time.
func BuildWhetstone(p Params) (*guest.Program, *Result) {
	const defaultSeconds = 160.0
	seconds := defaultSeconds
	if p.SecondsOverride > 0 {
		seconds = p.SecondsOverride
	}
	touches := p.Touches
	if touches == 0 {
		touches = whetstoneLoops // one T1 access per outer loop
	}
	// Touch T1 potentially several times per loop to reach the
	// requested count.
	touchesPerLoop := touches / whetstoneLoops
	if touchesPerLoop == 0 {
		touchesPerLoop = 1
	}
	chunk, _ := splitBudget(secondsToCycles(p.freq(), seconds), whetstoneLoops)

	res := &Result{}
	prog := &guest.Program{
		Name:    "whetstone",
		Content: "whetstone.c netlib v1.2",
		Libs:    []string{"libc.so.6", "libm.so.6"},
		Main: func(ctx guest.Context) {
			// Module working set, allocated like the C benchmark's
			// arrays.
			e1addr := ctx.Call1("malloc", workingSetBytes)
			t1 := 0.50025 // the watched variable T1
			e1 := [4]float64{1.0, -1.0, -1.0, -1.0}
			x, y := 0.75, 0.50
			var check float64

			for l := 0; l < whetstoneLoops; l++ {
				// Module 1/2: simple float identifiers and array
				// elements. T1 is read throughout the modules, so
				// its accesses interleave with the arithmetic —
				// which is what makes the watchpoint storm dense in
				// Fig. 9 rather than bunched at loop ends.
				sub := chunk / sim.Cycles(touchesPerLoop)
				for k := uint64(0); k < touchesPerLoop; k++ {
					ctx.Compute(sub)
					ctx.Load(HotAddrW)
				}
				ctx.Compute(chunk - sub*sim.Cycles(touchesPerLoop))
				for k := 0; k < 4; k++ {
					e1[k] = (e1[0] + e1[1] + e1[2] - e1[3]) * t1
				}
				// Module 6-ish: trig and roots through libm, the
				// substitution attack's target call sites.
				for k := 0; k < sqrtCallsPerLoop; k++ {
					bits := ctx.Call1("sqrt", math.Float64bits(x*x+y*y))
					x = math.Float64frombits(bits) * 0.75
					if x == 0 {
						x = 0.75
					}
				}
				y = math.Float64frombits(ctx.Call1("exp", math.Float64bits(math.Min(x, 1.0)))) / math.E
				check += e1[2] + x + y
				touchWorkingSet(ctx, e1addr, uint64(l))
				// Occasional allocator traffic.
				if l%8 == 0 {
					b := ctx.Call1("malloc", 256)
					ctx.Call1("free", b)
				}
			}
			ctx.Call1("free", e1addr)
			ctx.Syscall("getrusage") //simlint:errno-ok modeled benchmark epilogue; usage poll is ballast, not control flow
			res.Output = fmt.Sprintf("check=%.6f", check)
			res.Done = true
		},
	}
	return prog, res
}

// WhetstoneSqrtCalls reports the total genuine sqrt call count, used
// by experiments to predict substitution-attack inflation.
func WhetstoneSqrtCalls() uint64 {
	return uint64(whetstoneLoops) * sqrtCallsPerLoop
}

// whetstoneChunkAt exposes the per-loop compute chunk for tests.
func whetstoneChunkAt(freq sim.Hz, seconds float64) sim.Cycles {
	c, _ := splitBudget(secondsToCycles(freq, seconds), whetstoneLoops)
	return c
}
