package lib

import (
	"strings"
	"testing"

	"repro/internal/guest"
)

func stub(name string, fns ...string) *Library {
	l := &Library{Name: name, Content: "v1 " + name, Funcs: map[string]guest.LibFunc{}}
	for _, fn := range fns {
		l.Funcs[fn] = func(guest.Context, []uint64) uint64 { return 0 }
	}
	return l
}

func TestBuildLinkMapOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Install(stub("libc.so.6", "malloc"))
	reg.Install(stub("evil.so", "malloc"))
	lm, err := BuildLinkMap(reg, "evil.so", []string{"libc.so.6"})
	if err != nil {
		t.Fatal(err)
	}
	libs := lm.Libraries()
	if len(libs) != 2 || libs[0].Name != "evil.so" || libs[1].Name != "libc.so.6" {
		t.Fatalf("order = %v", libs)
	}
}

func TestPreloadShadowsSymbol(t *testing.T) {
	reg := NewRegistry()
	genuine := stub("libc.so.6", "malloc", "free")
	evil := stub("evil.so", "malloc")
	reg.Install(genuine)
	reg.Install(evil)
	lm, err := BuildLinkMap(reg, "evil.so", []string{"libc.so.6"})
	if err != nil {
		t.Fatal(err)
	}
	_, from, ok := lm.Resolve("malloc")
	if !ok || from != evil {
		t.Fatalf("malloc resolved from %v, want evil.so", from)
	}
	_, from, ok = lm.Resolve("free")
	if !ok || from != genuine {
		t.Fatalf("free resolved from %v, want libc", from)
	}
	if _, _, ok := lm.Resolve("nonexistent"); ok {
		t.Fatal("resolved undefined symbol")
	}
}

func TestResolveAfterChainsToGenuine(t *testing.T) {
	reg := NewRegistry()
	genuine := stub("libc.so.6", "malloc")
	evil := stub("evil.so", "malloc")
	reg.Install(genuine)
	reg.Install(evil)
	lm, _ := BuildLinkMap(reg, "evil.so", []string{"libc.so.6"})
	_, from, ok := lm.ResolveAfter("evil.so", "malloc")
	if !ok || from != genuine {
		t.Fatalf("RTLD_NEXT malloc from %v, want libc", from)
	}
	if _, _, ok := lm.ResolveAfter("libc.so.6", "malloc"); ok {
		t.Fatal("resolution past the last definition should fail")
	}
}

func TestUnknownPreloadSkippedUnknownLinkFails(t *testing.T) {
	reg := NewRegistry()
	reg.Install(stub("libc.so.6", "malloc"))
	lm, err := BuildLinkMap(reg, "ghost.so", []string{"libc.so.6"})
	if err != nil {
		t.Fatalf("unknown preload should be skipped, got %v", err)
	}
	if len(lm.Libraries()) != 1 {
		t.Fatalf("libraries = %d, want 1", len(lm.Libraries()))
	}
	if _, err := BuildLinkMap(reg, "", []string{"missing.so"}); err == nil {
		t.Fatal("unknown linked library should fail")
	}
}

func TestDuplicatePreloadDeduped(t *testing.T) {
	reg := NewRegistry()
	reg.Install(stub("libc.so.6", "malloc"))
	lm, err := BuildLinkMap(reg, "libc.so.6:libc.so.6", []string{"libc.so.6"})
	if err != nil {
		t.Fatal(err)
	}
	if len(lm.Libraries()) != 1 {
		t.Fatalf("libraries = %d, want deduped 1", len(lm.Libraries()))
	}
}

func TestDigestTracksContent(t *testing.T) {
	a := &Library{Name: "x.so", Content: "v1"}
	b := &Library{Name: "x.so", Content: "v2 with attack code"}
	if a.Digest() == b.Digest() {
		t.Fatal("different content produced identical digests")
	}
	if a.Digest() != (&Library{Name: "x.so", Content: "v1"}).Digest() {
		t.Fatal("digest not deterministic")
	}
	if len(a.Digest()) != 64 {
		t.Fatalf("digest length = %d, want 64 hex chars", len(a.Digest()))
	}
}

func TestLinkMapDigests(t *testing.T) {
	reg := NewRegistry()
	reg.Install(stub("a.so"))
	reg.Install(stub("b.so"))
	lm, _ := BuildLinkMap(reg, "a.so", []string{"b.so"})
	ds := lm.Digests()
	if len(ds) != 2 || ds[0] == ds[1] {
		t.Fatalf("digests = %v", ds)
	}
}

func TestStandardRegistry(t *testing.T) {
	reg := StandardRegistry()
	for _, name := range []string{LibcName, LibmName} {
		if _, ok := reg.Get(name); !ok {
			t.Fatalf("standard registry missing %s", name)
		}
	}
	libc, _ := reg.Get(LibcName)
	for _, fn := range []string{"malloc", "free", "memcpy"} {
		if _, ok := libc.Funcs[fn]; !ok {
			t.Errorf("libc missing %s", fn)
		}
	}
	libm, _ := reg.Get(LibmName)
	for _, fn := range []string{"sqrt", "exp", "log", "sin", "cos", "atan"} {
		if _, ok := libm.Funcs[fn]; !ok {
			t.Errorf("libm missing %s", fn)
		}
	}
	if !strings.Contains(libc.Content, "genuine") {
		t.Error("libc content tag should mark it genuine")
	}
}

func TestEmptyPreloadEntries(t *testing.T) {
	reg := StandardRegistry()
	lm, err := BuildLinkMap(reg, " : :: ", []string{LibcName})
	if err != nil {
		t.Fatal(err)
	}
	if len(lm.Libraries()) != 1 {
		t.Fatalf("libraries = %d, want 1", len(lm.Libraries()))
	}
}
