// Package lib models shared libraries and the dynamic linker,
// including the LD_PRELOAD interposition mechanism both
// shared-library attacks use (Section IV-A2): a preloaded library's
// constructor runs in the victim's context before main, and its
// exported symbols shadow identically named symbols in libraries
// linked later.
package lib

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/guest"
)

// Library is a shared object: exported functions plus optional
// constructor and destructor routines run at load and unload.
type Library struct {
	Name string
	// Content stands in for the object's bytes for integrity
	// measurement; change the behaviour, change the content.
	Content string
	// Constructor runs in process context before main (startup
	// loading) or before dlopen returns (dynamic loading).
	Constructor guest.Routine
	// Destructor runs after main returns or at dlclose.
	Destructor guest.Routine
	// Funcs are the exported symbols.
	Funcs map[string]guest.LibFunc
}

// Digest returns the measurement of the library's identity, the
// value a TPM-backed integrity log would record at load time.
func (l *Library) Digest() string {
	h := sha256.Sum256([]byte("lib\x00" + l.Name + "\x00" + l.Content))
	return hex.EncodeToString(h[:])
}

// Registry is the system's collection of installed shared objects,
// keyed by name — the simulated /usr/lib.
type Registry struct {
	libs map[string]*Library
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{libs: make(map[string]*Library)}
}

// Install adds or replaces a library by name.
func (r *Registry) Install(l *Library) { r.libs[l.Name] = l }

// Get looks up a library by name.
func (r *Registry) Get(name string) (*Library, bool) {
	l, ok := r.libs[name]
	return l, ok
}

// LinkMap is a process's resolved library list in search order:
// LD_PRELOAD entries first, then the executable's linked libraries.
// Symbol resolution walks the list front to back, which is exactly
// what makes preload-based function substitution work.
type LinkMap struct {
	ordered []*Library
}

// PreloadEnv is the environment variable the linker honours.
const PreloadEnv = "LD_PRELOAD"

// BuildLinkMap resolves a program's libraries against the registry,
// honouring the colon-separated LD_PRELOAD value. Unknown preload
// names are skipped (ld.so warns and continues); unknown linked
// library names are an error (the program cannot start).
func BuildLinkMap(reg *Registry, preload string, linked []string) (*LinkMap, error) {
	lm := &LinkMap{}
	seen := map[string]bool{}
	add := func(l *Library) {
		if !seen[l.Name] {
			seen[l.Name] = true
			lm.ordered = append(lm.ordered, l)
		}
	}
	for _, name := range strings.Split(preload, ":") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if l, ok := reg.Get(name); ok {
			add(l)
		}
	}
	for _, name := range linked {
		l, ok := reg.Get(name)
		if !ok {
			return nil, fmt.Errorf("link: library %q not found", name)
		}
		add(l)
	}
	return lm, nil
}

// Libraries returns the link map in search order (copy).
func (m *LinkMap) Libraries() []*Library {
	out := make([]*Library, len(m.ordered))
	copy(out, m.ordered)
	return out
}

// Resolve returns the first definition of fn in search order.
func (m *LinkMap) Resolve(fn string) (guest.LibFunc, *Library, bool) {
	for _, l := range m.ordered {
		if f, ok := l.Funcs[fn]; ok {
			return f, l, true
		}
	}
	return nil, nil, false
}

// ResolveAfter returns the next definition of fn after the library
// named afterLib — the RTLD_NEXT lookup an interposer uses to chain
// to the genuine implementation.
func (m *LinkMap) ResolveAfter(afterLib, fn string) (guest.LibFunc, *Library, bool) {
	past := false
	for _, l := range m.ordered {
		if !past {
			if l.Name == afterLib {
				past = true
			}
			continue
		}
		if f, ok := l.Funcs[fn]; ok {
			return f, l, true
		}
	}
	return nil, nil, false
}

// Digests returns the measurement of every object in the link map,
// in load order — the evidence a source-integrity verifier checks.
func (m *LinkMap) Digests() []string {
	out := make([]string, len(m.ordered))
	for i, l := range m.ordered {
		out[i] = l.Digest()
	}
	return out
}
