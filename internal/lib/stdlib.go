package lib

import (
	"math"

	"repro/internal/guest"
	"repro/internal/proc"
	"repro/internal/sim"
)

// Cycle costs of the genuine C-library functions, loosely calibrated
// to glibc on the paper's hardware. Attack interposers add their own
// cost on top of these, which is the whole point of the substitution
// attack.
const (
	MallocCost sim.Cycles = 400
	FreeCost   sim.Cycles = 250
	SqrtCost   sim.Cycles = 40
	MemcpyCost sim.Cycles = 2 // per 16-byte chunk, min applied below
)

// LibcName is the name of the standard C library object.
const LibcName = "libc.so.6"

// LibmName is the math library object (sqrt lives here, as in the
// paper's substitution experiment).
const LibmName = "libm.so.6"

// heap is the per-process allocator backing the genuine malloc: a
// bump pointer plus size-class free lists, so free() really recycles
// chunks the way glibc's fastbins do. Recycling matters beyond
// realism: a malloc/free loop re-touches the same simulated pages
// instead of growing the address space (and the host-side page table)
// without bound.
type heap struct {
	next       uint64
	sizeOf     map[uint64]uint64   // chunk address → rounded size
	freed      map[uint64]bool     // chunk address → currently on a free list
	freeBySize map[uint64][]uint64 // rounded size → freed chunks (LIFO)
}

// HeapBase is where simulated process heaps start.
const HeapBase uint64 = 0x0060_0000

// NewLibc builds the genuine C library. Heap state is per-process
// and lives inside this instance, so each simulated machine should
// install a fresh copy.
func NewLibc() *Library {
	heaps := make(map[proc.PID]*heap)
	heapOf := func(pid proc.PID) *heap {
		h := heaps[pid]
		if h == nil {
			h = &heap{
				next:       HeapBase,
				sizeOf:     make(map[uint64]uint64),
				freed:      make(map[uint64]bool),
				freeBySize: make(map[uint64][]uint64),
			}
			heaps[pid] = h
		}
		return h
	}
	alloc := func(pid proc.PID, size uint64) uint64 {
		h := heapOf(pid)
		if size == 0 {
			size = 1
		}
		// Round to 16-byte alignment like glibc.
		size = (size + 15) &^ 15
		if bin := h.freeBySize[size]; len(bin) > 0 {
			addr := bin[len(bin)-1]
			h.freeBySize[size] = bin[:len(bin)-1]
			h.freed[addr] = false
			return addr
		}
		addr := h.next
		h.next += size
		h.sizeOf[addr] = size
		return addr
	}
	release := func(pid proc.PID, addr uint64) {
		h := heapOf(pid)
		size := h.sizeOf[addr]
		if size == 0 || h.freed[addr] {
			return // not a live chunk of this heap (or a double free)
		}
		h.freed[addr] = true
		h.freeBySize[size] = append(h.freeBySize[size], addr)
	}
	return &Library{
		Name:    LibcName,
		Content: "glibc-2.9 genuine",
		Funcs: map[string]guest.LibFunc{
			"malloc": func(ctx guest.Context, args []uint64) uint64 {
				ctx.Compute(MallocCost)
				var size uint64
				if len(args) > 0 {
					size = args[0]
				}
				addr := alloc(ctx.PID(), size)
				// First-touch of the returned chunk's header page.
				ctx.Store(addr)
				return addr
			},
			"free": func(ctx guest.Context, args []uint64) uint64 {
				ctx.Compute(FreeCost)
				if len(args) > 0 && args[0] != 0 {
					ctx.Load(args[0])
					release(ctx.PID(), args[0])
				}
				return 0
			},
			"memcpy": func(ctx guest.Context, args []uint64) uint64 {
				// args: dst, src, n
				var n uint64
				if len(args) > 2 {
					n = args[2]
				}
				chunks := sim.Cycles(n/16 + 1)
				ctx.Compute(chunks * MemcpyCost)
				if len(args) > 1 {
					ctx.Load(args[1])
				}
				if len(args) > 0 {
					ctx.Store(args[0])
				}
				return 0
			},
		},
	}
}

// NewLibm builds the genuine math library.
func NewLibm() *Library {
	return &Library{
		Name:    LibmName,
		Content: "libm-2.9 genuine",
		Funcs: map[string]guest.LibFunc{
			"sqrt": func(ctx guest.Context, args []uint64) uint64 {
				ctx.Compute(SqrtCost)
				var x float64
				if len(args) > 0 {
					x = math.Float64frombits(args[0])
				}
				return math.Float64bits(math.Sqrt(x))
			},
			"exp": func(ctx guest.Context, args []uint64) uint64 {
				ctx.Compute(SqrtCost * 2)
				var x float64
				if len(args) > 0 {
					x = math.Float64frombits(args[0])
				}
				return math.Float64bits(math.Exp(x))
			},
			"log": func(ctx guest.Context, args []uint64) uint64 {
				ctx.Compute(SqrtCost * 2)
				var x float64
				if len(args) > 0 {
					x = math.Float64frombits(args[0])
				}
				return math.Float64bits(math.Log(x))
			},
			"sin": func(ctx guest.Context, args []uint64) uint64 {
				ctx.Compute(SqrtCost * 3)
				var x float64
				if len(args) > 0 {
					x = math.Float64frombits(args[0])
				}
				return math.Float64bits(math.Sin(x))
			},
			"cos": func(ctx guest.Context, args []uint64) uint64 {
				ctx.Compute(SqrtCost * 3)
				var x float64
				if len(args) > 0 {
					x = math.Float64frombits(args[0])
				}
				return math.Float64bits(math.Cos(x))
			},
			"atan": func(ctx guest.Context, args []uint64) uint64 {
				ctx.Compute(SqrtCost * 3)
				var x float64
				if len(args) > 0 {
					x = math.Float64frombits(args[0])
				}
				return math.Float64bits(math.Atan(x))
			},
		},
	}
}

// StandardRegistry returns a registry with the genuine libc and libm
// installed — the clean system image before any attack tampering.
func StandardRegistry() *Registry {
	r := NewRegistry()
	r.Install(NewLibc())
	r.Install(NewLibm())
	return r
}
