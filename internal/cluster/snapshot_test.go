package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// snapSender is a forkable flyweight pktgen: it transmits addressed
// frames through the kernel routing table (NetSend — the transport a
// cluster restore preserves) with jittered pacing off the machine rng.
type snapSender struct {
	dst    guest.Addr
	frames int
	gap    sim.Cycles
	i      int
	drops  int
}

func (g *snapSender) run(ctx guest.Context, _ guest.Resume) guest.Step {
	if g.i >= g.frames {
		return nil
	}
	g.i++
	//simlint:errno-ok resumable post: the outcome arrives in afterSend's Resume
	ctx.NetSend(guest.Frame{Dst: g.dst, Flow: 5})
	return g.afterSend
}

func (g *snapSender) afterSend(ctx guest.Context, r guest.Resume) guest.Step {
	if r.Err != nil || !r.OK {
		g.drops++
	}
	ctx.Sleep(ctx.Rand().Jitter(g.gap, g.gap/4+1))
	return g.run
}

func (g *snapSender) fork(cur guest.Step) (guest.Forked, error) {
	c := *g
	s, ok := guest.RebindStep(cur,
		[]guest.Step{g.run, g.afterSend},
		[]guest.Step{c.run, c.afterSend})
	if !ok {
		return guest.Forked{}, fmt.Errorf("snapSender: unknown continuation")
	}
	return guest.Forked{Step: s, Fork: c.fork, State: &c}, nil
}

// snapWatcher is a forkable infinite sink: it blocks in NetRxWait
// forever, consuming deliveries on a Service machine so the cluster
// retires it at quiescence.
type snapWatcher struct {
	seen    uint64
	started bool
}

func (w *snapWatcher) run(ctx guest.Context, r guest.Resume) guest.Step {
	if w.started {
		w.seen = r.Ret
	}
	w.started = true
	ctx.NetRxWait(w.seen)
	return w.run
}

func (w *snapWatcher) fork(cur guest.Step) (guest.Forked, error) {
	c := *w
	s, ok := guest.RebindStep(cur, []guest.Step{w.run}, []guest.Step{c.run})
	if !ok {
		return guest.Forked{}, fmt.Errorf("snapWatcher: unknown continuation")
	}
	return guest.Forked{Step: s, Fork: c.fork, State: &c}, nil
}

// snapClusterCfg builds a three-machine fabric dense in cluster
// mechanisms: a pktgen sender, a faulted forwarding router (read and
// sendto faults exercise the retry paths across the checkpoint), and
// a sink receiver, joined by a finite-rate FIFO hop and a flapped
// DRR+RED bottleneck hop. Every guest is a forkable flyweight, so the
// whole fabric is snapshottable mid-run.
func snapClusterCfg(seed int64, frames int, crashAt, restartAfter sim.Cycles) Config {
	return Config{
		Machines: []MachineSpec{
			{
				Name:   "sender",
				Config: kernel.Config{Seed: seed, CPUHz: testHz},
				Boot: func(c *Cluster, m *kernel.Machine) error {
					g := &snapSender{dst: c.AddrOf(2), frames: frames, gap: 40_000}
					_, err := m.Spawn(kernel.SpawnConfig{
						Name: "pktgen", Content: "pktgen v1", Step: g.run, Fork: g.fork,
					})
					return err
				},
			},
			{
				Name: "router",
				Config: kernel.Config{
					Seed: seed + 1, CPUHz: testHz,
					Faults: &kernel.FaultSpec{Seed: seed + 9, Syscalls: []kernel.SyscallFault{
						{Name: "read", Errno: guest.EIO, ProbPPM: 60_000},
						{Name: "sendto", Errno: guest.EAGAIN, ProbPPM: 60_000},
					}},
				},
				Service: true,
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					step, fork := ForwarderGuest(3_000)
					_, err := m.Spawn(kernel.SpawnConfig{
						Name: "fwd", Content: "fwd v1", Step: step, Fork: fork,
					})
					return err
				},
			},
			{
				Name:         "receiver",
				Config:       kernel.Config{Seed: seed + 2, CPUHz: testHz},
				Service:      true,
				CrashAt:      crashAt,
				RestartAfter: restartAfter,
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					w := &snapWatcher{}
					_, err := m.Spawn(kernel.SpawnConfig{
						Name: "sink", Content: "sink v1", Step: w.run, Fork: w.fork,
					})
					return err
				},
			},
		},
		Links: []LinkSpec{
			{From: 0, To: 1, LatencyUs: 40, PacketsPerSecond: 30_000, QueueDepth: 16},
			{
				From: 1, To: 2, LatencyUs: 40, PacketsPerSecond: 12_000, QueueDepth: 16,
				Qdisc: QdiscDRR,
				RED:   &REDSpec{MinDepth: 4, MaxDepth: 12, MaxPct: 30, Weight: 7},
				Flap:  &FlapSpec{FirstDownUs: 1_500, DownUs: 300, UpUs: 2_000},
			},
		},
		Routes: []RouteSpec{
			{On: 0, Dst: 2, Via: 1},
			{On: 2, Dst: 0, Via: 1},
		},
	}
}

// snapBarrier pauses the fabric mid-transfer: the sender is roughly a
// third through its frames, the router mid-drain, the bottleneck
// between flap windows.
const snapBarrier = sim.Cycles(2_500_000)

// renderCluster flattens a finished cluster's observable outcome —
// every incarnation's clock, fault, and NIC ledgers plus every link
// direction's wire counters — so bit-identical histories compare as
// string equality.
func renderCluster(c *Cluster) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d\n", c.Now())
	for i := 0; i < c.Size(); i++ {
		for j, m := range c.Incarnations(i) {
			fmt.Fprintf(&b, "%s.%d clock=%d faults=%d rxdrop=%d nicrx=%d\n",
				c.Name(i), j, m.Clock().Now(), m.FaultsInjected(), m.RxBufDropped(), m.NIC().Received())
			for _, ms := range m.Measurements() {
				fmt.Fprintf(&b, "  task %s pid=%d digest=%s\n", ms.Name, ms.PID, ms.Digest)
			}
		}
	}
	for i := 0; i < c.Links(); i++ {
		l := c.Link(i)
		for d, dir := range []*Link{l, l.Reverse()} {
			fmt.Fprintf(&b, "link%d.%d sent=%d delivered=%d dropped=%d queued=%d marked=%d early=%d\n",
				i, d, dir.Sent(), dir.Delivered(), dir.Dropped(), dir.Queued(), dir.Marked(), dir.EarlyDropped())
		}
	}
	return b.String()
}

// TestClusterSnapshotRestoreIdentical is the cluster-level byte-
// identity oracle: pause mid-run at a barrier, snapshot, and the
// original continued to completion must render identically to a
// restored cluster continued to completion — twice, from the same
// image, proving the image survives restores untouched.
func TestClusterSnapshotRestoreIdentical(t *testing.T) {
	orig, err := New(snapClusterCfg(301, 160, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	done, err := orig.RunUntil(snapBarrier)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("fabric finished before the snapshot barrier; the checkpoint would capture a dead cluster")
	}
	img, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if img.Machines() != 3 {
		t.Fatalf("image holds %d machines, want 3", img.Machines())
	}
	if at := img.At(); at < snapBarrier {
		t.Fatalf("image frontier %d is before the barrier %d", at, snapBarrier)
	}
	if err := orig.Run(); err != nil {
		t.Fatal(err)
	}
	want := renderCluster(orig)
	for k := 0; k < 2; k++ {
		r, err := Restore(img)
		if err != nil {
			t.Fatalf("restore %d: %v", k, err)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("restore %d run: %v", k, err)
		}
		if got := renderCluster(r); got != want {
			t.Fatalf("restore %d diverged from the original:\n--- original\n%s--- restored\n%s", k, want, got)
		}
	}
}

// TestClusterForkDivergence proves forks are independent and diverge
// only through post-fork inputs: two restores from one image, one
// perturbed by an extra guest spawned after the fork, run to
// completion. The unperturbed fork matches the original; the
// perturbed one does not.
func TestClusterForkDivergence(t *testing.T) {
	orig, err := New(snapClusterCfg(303, 160, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orig.RunUntil(snapBarrier); err != nil {
		t.Fatal(err)
	}
	img, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	// The post-fork input: an extra compute job on the perturbed
	// fork's sender machine, shifting its scheduling from here on.
	if err := spawnBusy(perturbed.Machine(0), "intruder", 0.001); err != nil {
		t.Fatal(err)
	}
	if err := orig.Run(); err != nil {
		t.Fatal(err)
	}
	if err := clean.Run(); err != nil {
		t.Fatal(err)
	}
	if err := perturbed.Run(); err != nil {
		t.Fatal(err)
	}
	want := renderCluster(orig)
	if got := renderCluster(clean); got != want {
		t.Fatalf("unperturbed fork diverged from the original:\n--- original\n%s--- fork\n%s", want, got)
	}
	if got := renderCluster(perturbed); got == want {
		t.Fatal("perturbed fork rendered identically to the original; the perturbation never took")
	}
}

// TestClusterCrashRestartReplay pins the pending-failure rule: a
// snapshot taken while CrashAt is still in the future carries the
// schedule as plain data, so the restored cluster takes the crash,
// the reboot, and the incarnation split identically.
func TestClusterCrashRestartReplay(t *testing.T) {
	orig, err := New(snapClusterCfg(307, 160, 4_000_000, 500_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orig.RunUntil(snapBarrier); err != nil {
		t.Fatal(err)
	}
	img, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Run(); err != nil {
		t.Fatal(err)
	}
	if n := len(orig.Incarnations(2)); n != 2 {
		t.Fatalf("receiver served %d incarnations, want 2 (crash + reboot)", n)
	}
	want := renderCluster(orig)
	r, err := Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got := renderCluster(r); got != want {
		t.Fatalf("restored cluster's crash/restart history diverged:\n--- original\n%s--- restored\n%s", want, got)
	}
	// And the flip side of the rule: once the crash has happened the
	// cluster owns a retired incarnation and is no longer
	// snapshottable.
	if _, err := orig.Snapshot(); !errors.Is(err, kernel.ErrNotSnapshottable) {
		t.Fatalf("snapshot after a crash/reboot = %v, want ErrNotSnapshottable", err)
	}
}

// TestClusterSnapshotRejects pins the refusal surface: goroutine-
// driver guests and finished fabrics are not snapshottable, and both
// report kernel.ErrNotSnapshottable.
func TestClusterSnapshotRejects(t *testing.T) {
	t.Run("goroutine guest", func(t *testing.T) {
		cfg := Config{
			Machines: []MachineSpec{
				{
					Config: kernel.Config{Seed: 311, CPUHz: testHz},
					Boot: func(_ *Cluster, m *kernel.Machine) error {
						return spawnBusy(m, "legacy", 0.01)
					},
				},
				{
					Config: kernel.Config{Seed: 312, CPUHz: testHz},
					Boot: func(_ *Cluster, m *kernel.Machine) error {
						return spawnBusy(m, "peer", 0.01)
					},
				},
			},
			Links: []LinkSpec{{From: 0, To: 1}},
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunUntil(100_000); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Snapshot(); !errors.Is(err, kernel.ErrNotSnapshottable) {
			t.Fatalf("snapshot with started goroutine guests = %v, want ErrNotSnapshottable", err)
		}
	})
	t.Run("finished cluster", func(t *testing.T) {
		c, err := New(snapClusterCfg(313, 20, 0, 0))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Snapshot(); !errors.Is(err, kernel.ErrNotSnapshottable) {
			t.Fatalf("snapshot of a finished cluster = %v, want ErrNotSnapshottable", err)
		}
	})
}
