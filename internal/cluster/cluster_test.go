package cluster

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/metering"
	"repro/internal/sim"
)

const testHz sim.Hz = 1_000_000_000 // 1 GHz for easy math

// busyBody returns a guest that alternates compute bursts and sleeps
// for roughly `seconds` of virtual time — enough structure (timer
// ticks, wakeups, preemption chances) to make lockstep divergence
// visible.
func busyBody(seconds float64) guest.Routine {
	burst := sim.Cycles(float64(testHz) * seconds / 200)
	return func(ctx guest.Context) {
		for i := 0; i < 100; i++ {
			ctx.Compute(burst)
			ctx.Sleep(burst)
		}
	}
}

func spawnBusy(m *kernel.Machine, name string, seconds float64) error {
	_, err := m.Spawn(kernel.SpawnConfig{
		Name:    name,
		Content: name + " v1",
		Body:    busyBody(seconds),
	})
	return err
}

func TestLockstepMatchesSoloRun(t *testing.T) {
	cfg := kernel.Config{Seed: 11, CPUHz: testHz}

	solo := kernel.New(cfg)
	sp, err := solo.Spawn(kernel.SpawnConfig{Name: "busy", Content: "busy v1", Body: busyBody(0.2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.Run(); err != nil {
		t.Fatal(err)
	}

	cl, err := New(Config{Machines: []MachineSpec{{
		Config: cfg,
		Boot: func(_ *Cluster, m *kernel.Machine) error {
			return spawnBusy(m, "busy", 0.2)
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	cm := cl.Machine(0)

	if got, want := cm.Clock().Now(), solo.Clock().Now(); got != want {
		t.Errorf("lockstep clock = %d, solo = %d (histories diverged)", got, want)
	}
	// PID allocation is deterministic, so the cluster machine's busy
	// task carries the same pid as the solo machine's.
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		su, _ := solo.UsageBy(scheme, sp.PID)
		cu, _ := cm.UsageBy(scheme, sp.PID)
		if su != cu {
			t.Errorf("%s usage: lockstep %+v, solo %+v", scheme, cu, su)
		}
	}
}

func TestCrossMachineFloodDelivers(t *testing.T) {
	const packets = 500
	cfg := Config{
		Machines: []MachineSpec{
			{
				Config: kernel.Config{Seed: 21, CPUHz: testHz},
				Boot: func(c *Cluster, m *kernel.Machine) error {
					link := c.Link(0)
					interval := sim.Cycles(testHz / 10_000) // 10k pps
					_, err := m.Spawn(kernel.SpawnConfig{
						Name:    "pktgen",
						Content: "pktgen v1",
						Body: func(ctx guest.Context) {
							for i := 0; i < packets; i++ {
								link.Send()
								ctx.Syscall("sendto")
								ctx.Sleep(interval)
							}
						},
					})
					return err
				},
			},
			{
				Config: kernel.Config{Seed: 22, CPUHz: testHz},
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					// Outlives the flood, so every packet arrives
					// while the victim still simulates.
					return spawnBusy(m, "victim", 0.2)
				},
			},
		},
		Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 200}},
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}

	if got := cl.Link(0).Sent(); got != packets {
		t.Errorf("link sent %d packets, want %d", got, packets)
	}
	victim := cl.Machine(1)
	if got := victim.NIC().Received(); got != packets {
		t.Errorf("victim NIC received %d packets, want %d", got, packets)
	}
	if attacker := cl.Machine(0).NIC().Received(); attacker != 0 {
		t.Errorf("attacker NIC received %d of its own packets", attacker)
	}
	// Every rx interrupt's handler time lands on the victim machine's
	// system account under process-aware accounting.
	sys, ok := victim.UsageBy("process-aware", metering.SystemPID)
	if !ok || sys.System == 0 {
		t.Errorf("victim system account = %+v, want nonzero interrupt time", sys)
	}
}

// TestClusterDeterminism runs the flood scenario twice and demands
// bit-identical histories.
func TestClusterDeterminism(t *testing.T) {
	run := func() (sim.Cycles, sim.Cycles, uint64) {
		cl, err := New(Config{
			Machines: []MachineSpec{
				{
					Config: kernel.Config{Seed: 31, CPUHz: testHz},
					Boot: func(c *Cluster, m *kernel.Machine) error {
						link := c.Link(0)
						interval := sim.Cycles(testHz / 40_000)
						_, err := m.Spawn(kernel.SpawnConfig{
							Name:    "pktgen",
							Content: "pktgen v1",
							Body: func(ctx guest.Context) {
								for i := 0; i < 1000; i++ {
									link.Send()
									ctx.Sleep(ctx.Rand().Jitter(interval, interval/4+1))
								}
							},
						})
						return err
					},
				},
				{
					Config: kernel.Config{Seed: 32, CPUHz: testHz},
					Boot: func(_ *Cluster, m *kernel.Machine) error {
						return spawnBusy(m, "victim", 0.1)
					},
				},
			},
			Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 300}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		return cl.Machine(0).Clock().Now(), cl.Machine(1).Clock().Now(), cl.Machine(1).NIC().Received()
	}
	a0, a1, arx := run()
	b0, b1, brx := run()
	if a0 != b0 || a1 != b1 || arx != brx {
		t.Fatalf("same-seed cluster histories diverged: (%d,%d,%d) vs (%d,%d,%d)", a0, a1, arx, b0, b1, brx)
	}
	if arx == 0 {
		t.Fatal("no packets delivered")
	}
}

func TestClusterRejectsMixedClocks(t *testing.T) {
	_, err := New(Config{Machines: []MachineSpec{
		{Config: kernel.Config{Seed: 1, CPUHz: testHz}},
		{Config: kernel.Config{Seed: 2, CPUHz: testHz * 2}},
	}})
	if err == nil {
		t.Fatal("want error for mixed CPU clocks")
	}
}

func TestClusterStallDetection(t *testing.T) {
	// A machine whose only task sleeps forever... is not expressible
	// (Sleep always schedules a wake), so the stall guard instead
	// covers a machine waiting on a wait() that can never complete.
	cl, err := New(Config{Machines: []MachineSpec{{
		Config: kernel.Config{Seed: 5, CPUHz: testHz},
		Boot: func(_ *Cluster, m *kernel.Machine) error {
			_, err := m.Spawn(kernel.SpawnConfig{
				Name:    "waiter",
				Content: "waiter v1",
				Body: func(ctx guest.Context) {
					ctx.Fork("child", func(c guest.Context) {
						c.Compute(1000)
					})
					for {
						if _, ok := ctx.Wait(); !ok {
							break
						}
					}
				},
			})
			return err
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	// This scenario completes normally — it pins that ordinary
	// parent/child reaping works under lockstep too.
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}
