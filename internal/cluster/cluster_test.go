package cluster

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/metering"
	"repro/internal/sim"
)

const testHz sim.Hz = 1_000_000_000 // 1 GHz for easy math

// busyBody returns a guest that alternates compute bursts and sleeps
// for roughly `seconds` of virtual time — enough structure (timer
// ticks, wakeups, preemption chances) to make lockstep divergence
// visible.
func busyBody(seconds float64) guest.Routine {
	//simlint:float-ok test-only burst shaping; the result is integral Cycles before any accounting
	burst := sim.Cycles(float64(testHz) * seconds / 200)
	return func(ctx guest.Context) {
		for i := 0; i < 100; i++ {
			ctx.Compute(burst)
			ctx.Sleep(burst)
		}
	}
}

func spawnBusy(m *kernel.Machine, name string, seconds float64) error {
	_, err := m.Spawn(kernel.SpawnConfig{
		Name:    name,
		Content: name + " v1",
		Body:    busyBody(seconds),
	})
	return err
}

func TestLockstepMatchesSoloRun(t *testing.T) {
	cfg := kernel.Config{Seed: 11, CPUHz: testHz}

	solo := kernel.New(cfg)
	sp, err := solo.Spawn(kernel.SpawnConfig{Name: "busy", Content: "busy v1", Body: busyBody(0.2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.Run(); err != nil {
		t.Fatal(err)
	}

	cl, err := New(Config{Machines: []MachineSpec{{
		Config: cfg,
		Boot: func(_ *Cluster, m *kernel.Machine) error {
			return spawnBusy(m, "busy", 0.2)
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	cm := cl.Machine(0)

	if got, want := cm.Clock().Now(), solo.Clock().Now(); got != want {
		t.Errorf("lockstep clock = %d, solo = %d (histories diverged)", got, want)
	}
	// PID allocation is deterministic, so the cluster machine's busy
	// task carries the same pid as the solo machine's.
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		su, _ := solo.UsageBy(scheme, sp.PID)
		cu, _ := cm.UsageBy(scheme, sp.PID)
		if su != cu {
			t.Errorf("%s usage: lockstep %+v, solo %+v", scheme, cu, su)
		}
	}
}

func TestCrossMachineFloodDelivers(t *testing.T) {
	const packets = 500
	cfg := Config{
		Machines: []MachineSpec{
			{
				Config: kernel.Config{Seed: 21, CPUHz: testHz},
				Boot: func(c *Cluster, m *kernel.Machine) error {
					link := c.Link(0)
					interval := sim.Cycles(testHz / 10_000) // 10k pps
					_, err := m.Spawn(kernel.SpawnConfig{
						Name:    "pktgen",
						Content: "pktgen v1",
						Body: func(ctx guest.Context) {
							for i := 0; i < packets; i++ {
								link.Send(Frame{Src: 1, Dst: 2})
								//simlint:errno-ok fault-free fixture; the test asserts on the rendered bill
								ctx.Syscall("sendto")
								ctx.Sleep(interval)
							}
						},
					})
					return err
				},
			},
			{
				Config: kernel.Config{Seed: 22, CPUHz: testHz},
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					// Outlives the flood, so every packet arrives
					// while the victim still simulates.
					return spawnBusy(m, "victim", 0.2)
				},
			},
		},
		Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 200}},
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}

	if got := cl.Link(0).Sent(); got != packets {
		t.Errorf("link sent %d packets, want %d", got, packets)
	}
	victim := cl.Machine(1)
	if got := victim.NIC().Received(); got != packets {
		t.Errorf("victim NIC received %d packets, want %d", got, packets)
	}
	if attacker := cl.Machine(0).NIC().Received(); attacker != 0 {
		t.Errorf("attacker NIC received %d of its own packets", attacker)
	}
	// Every rx interrupt's handler time lands on the victim machine's
	// system account under process-aware accounting.
	sys, ok := victim.UsageBy("process-aware", metering.SystemPID)
	if !ok || sys.System == 0 {
		t.Errorf("victim system account = %+v, want nonzero interrupt time", sys)
	}
}

// TestClusterDeterminism runs the flood scenario twice and demands
// bit-identical histories.
func TestClusterDeterminism(t *testing.T) {
	run := func() (sim.Cycles, sim.Cycles, uint64) {
		cl, err := New(Config{
			Machines: []MachineSpec{
				{
					Config: kernel.Config{Seed: 31, CPUHz: testHz},
					Boot: func(c *Cluster, m *kernel.Machine) error {
						link := c.Link(0)
						interval := sim.Cycles(testHz / 40_000)
						_, err := m.Spawn(kernel.SpawnConfig{
							Name:    "pktgen",
							Content: "pktgen v1",
							Body: func(ctx guest.Context) {
								for i := 0; i < 1000; i++ {
									link.Send(Frame{Src: 1, Dst: 2})
									ctx.Sleep(ctx.Rand().Jitter(interval, interval/4+1))
								}
							},
						})
						return err
					},
				},
				{
					Config: kernel.Config{Seed: 32, CPUHz: testHz},
					Boot: func(_ *Cluster, m *kernel.Machine) error {
						return spawnBusy(m, "victim", 0.1)
					},
				},
			},
			Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 300}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		return cl.Machine(0).Clock().Now(), cl.Machine(1).Clock().Now(), cl.Machine(1).NIC().Received()
	}
	a0, a1, arx := run()
	b0, b1, brx := run()
	if a0 != b0 || a1 != b1 || arx != brx {
		t.Fatalf("same-seed cluster histories diverged: (%d,%d,%d) vs (%d,%d,%d)", a0, a1, arx, b0, b1, brx)
	}
	if arx == 0 {
		t.Fatal("no packets delivered")
	}
}

// TestLinkTailDropAccounting saturates a slow wire and demands the
// deterministic tail-drop bookkeeping: Sent = Delivered + Dropped,
// drops occur, and the victim receives exactly the delivered frames.
func TestLinkTailDropAccounting(t *testing.T) {
	const offered = 4000
	cfg := Config{
		Machines: []MachineSpec{
			{
				Config: kernel.Config{Seed: 41, CPUHz: testHz},
				Boot: func(c *Cluster, m *kernel.Machine) error {
					link := c.Link(0)
					interval := sim.Cycles(testHz / 40_000) // 40k pps offered
					_, err := m.Spawn(kernel.SpawnConfig{
						Name:    "pktgen",
						Content: "pktgen v1",
						Body: func(ctx guest.Context) {
							for i := 0; i < offered; i++ {
								link.Send(Frame{Src: 1, Dst: 2})
								ctx.Sleep(interval)
							}
						},
					})
					return err
				},
			},
			{
				Config: kernel.Config{Seed: 42, CPUHz: testHz},
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					return spawnBusy(m, "victim", 0.3)
				},
			},
		},
		// A 10k-pps wire with a shallow queue against a 40k-pps
		// offered rate: steady-state drops ~3/4.
		Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 200, PacketsPerSecond: 10_000, QueueDepth: 16}},
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	l := cl.Link(0)
	if l.Sent() != offered {
		t.Fatalf("Sent = %d, want %d", l.Sent(), offered)
	}
	if l.Sent() != l.Delivered()+l.Dropped() {
		t.Fatalf("Sent %d != Delivered %d + Dropped %d", l.Sent(), l.Delivered(), l.Dropped())
	}
	if l.Dropped() < offered/2 {
		t.Fatalf("Dropped = %d of %d, want heavy tail-drop at 4x oversubscription", l.Dropped(), offered)
	}
	if got := cl.Machine(1).NIC().Received(); got != l.Delivered() {
		t.Fatalf("victim received %d, link delivered %d", got, l.Delivered())
	}
}

// TestLinkSendToFinishedMachineCountsDropped pins the accounting fix:
// frames offered after the destination machine completes are dropped,
// not silently lost between Sent and Delivered.
func TestLinkSendToFinishedMachineCountsDropped(t *testing.T) {
	const packets = 300
	cfg := Config{
		Machines: []MachineSpec{
			{
				Config: kernel.Config{Seed: 51, CPUHz: testHz},
				Boot: func(c *Cluster, m *kernel.Machine) error {
					link := c.Link(0)
					interval := sim.Cycles(testHz / 1000) // 1 ms apart: outlives the victim by far
					_, err := m.Spawn(kernel.SpawnConfig{
						Name:    "pktgen",
						Content: "pktgen v1",
						Body: func(ctx guest.Context) {
							for i := 0; i < packets; i++ {
								link.Send(Frame{Src: 1, Dst: 2})
								ctx.Sleep(interval)
							}
						},
					})
					return err
				},
			},
			{
				Config: kernel.Config{Seed: 52, CPUHz: testHz},
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					// Finishes after ~10 ms; most frames arrive later.
					return spawnBusy(m, "victim", 0.01)
				},
			},
		},
		Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 200}},
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	l := cl.Link(0)
	if l.Sent() != packets {
		t.Fatalf("Sent = %d, want %d", l.Sent(), packets)
	}
	if l.Sent() != l.Delivered()+l.Dropped() {
		t.Fatalf("Sent %d != Delivered %d + Dropped %d", l.Sent(), l.Delivered(), l.Dropped())
	}
	if l.Dropped() == 0 {
		t.Fatal("no drops recorded for frames offered after the victim finished")
	}
	if got := cl.Machine(1).NIC().Received(); got > l.Delivered() {
		t.Fatalf("victim received %d > delivered %d", got, l.Delivered())
	}
}

// TestBidirectionalReplyDelivers exercises the reverse path through
// the billed guest tx entry point: machine 0 sends one addressed
// frame; machine 1's responder blocks in NetRxWait, reads the frame's
// headers via NetRecv, acks the frame's own Src over the reverse
// direction, and machine 0's waiter sees the ack.
func TestBidirectionalReplyDelivers(t *testing.T) {
	var gotAck uint64
	var ackFrame Frame
	cfg := Config{
		Machines: []MachineSpec{
			{
				Config: kernel.Config{Seed: 61, CPUHz: testHz},
				Boot: func(c *Cluster, m *kernel.Machine) error {
					peer := c.AddrOf(1)
					_, err := m.Spawn(kernel.SpawnConfig{
						Name:    "sender",
						Content: "sender v1",
						Body: func(ctx guest.Context) {
							//simlint:errno-ok carried bool is the assertion; this fixture injects no faults
							if ok, _ := ctx.NetSend(guest.Frame{Dst: peer, Flow: 42}); !ok {
								t.Error("forward send dropped on an idle wire")
							}
							gotAck = ctx.NetRxWait(0)
							//simlint:errno-ok fault-free fixture; only the ack frame's payload is under test
							ackFrame, _, _ = ctx.NetRecv()
						},
					})
					return err
				},
			},
			{
				Config: kernel.Config{Seed: 62, CPUHz: testHz},
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					_, err := m.Spawn(kernel.SpawnConfig{
						Name:    "echod",
						Content: "echod v1",
						Body: func(ctx guest.Context) {
							ctx.NetRxWait(0)
							//simlint:errno-ok fault-free fixture; ok is checked on the line below
							f, ok, _ := ctx.NetRecv()
							if !ok {
								t.Error("no frame behind the rx interrupt")
							}
							//simlint:errno-ok carried bool is the assertion; this fixture injects no faults
							if ok, _ := ctx.NetSend(guest.Frame{Dst: f.Src, Flow: f.Flow}); !ok {
								t.Error("reverse send dropped on an idle wire")
							}
						},
					})
					return err
				},
			},
		},
		Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 250}},
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if gotAck != 1 {
		t.Fatalf("sender saw %d acks, want 1", gotAck)
	}
	if ackFrame.Src != 2 || ackFrame.Flow != 42 {
		t.Fatalf("ack frame = %+v, want Src 2 / Flow 42 (responder acks the frame's own sender and flow)", ackFrame)
	}
	fwd := cl.Link(0)
	if fwd.Delivered() != 1 || fwd.Reverse().Delivered() != 1 {
		t.Fatalf("forward delivered %d, reverse delivered %d, want 1/1", fwd.Delivered(), fwd.Reverse().Delivered())
	}
}

// TestAckPacedFlowShapedByVictimResponsiveness pins the tentpole's
// headline property: a window-paced sender's effective rate is set by
// how fast the victim's responder can turn frames into acks, so
// loading the victim machine with a compute-bound job measurably
// stretches the same transfer.
func TestAckPacedFlowShapedByVictimResponsiveness(t *testing.T) {
	const frames = 200
	const window = 8
	run := func(loadVictim bool) sim.Cycles {
		cfg := Config{
			Machines: []MachineSpec{
				{
					Config: kernel.Config{Seed: 71, CPUHz: testHz},
					Boot: func(_ *Cluster, m *kernel.Machine) error {
						_, err := m.Spawn(kernel.SpawnConfig{
							Name:    "sender",
							Content: "ack-paced pktgen v1",
							Body: func(ctx guest.Context) {
								sent, acked := uint64(0), uint64(0)
								for sent < frames {
									for sent < frames && sent < acked+window {
										//simlint:errno-ok fault-free fixture; delivery is asserted via the ack counters
										ctx.NetSend(guest.Frame{Dst: 2})
										sent++
									}
									acked = ctx.NetRxWait(acked)
								}
							},
						})
						return err
					},
				},
				{
					Config: kernel.Config{Seed: 72, CPUHz: testHz},
					Boot: func(_ *Cluster, m *kernel.Machine) error {
						if loadVictim {
							// A nice -10 compute hog competes with echod
							// for the victim CPU, delaying every ack.
							if _, err := m.Spawn(kernel.SpawnConfig{
								Name:    "cruncher",
								Content: "cruncher v1",
								Nice:    -10,
								Body: func(ctx guest.Context) {
									ctx.Compute(sim.Cycles(float64(testHz) * 0.5))
								},
							}); err != nil {
								return err
							}
						}
						_, err := m.Spawn(kernel.SpawnConfig{
							Name:    "echod",
							Content: "echod v1",
							Body: func(ctx guest.Context) {
								seen, ackedBack := uint64(0), uint64(0)
								for ackedBack < frames {
									seen = ctx.NetRxWait(seen)
									for ackedBack < seen {
										//simlint:errno-ok fault-free fixture; delivery is asserted via the ack counters
										ctx.NetSend(guest.Frame{Dst: 1})
										ackedBack++
									}
								}
							},
						})
						return err
					},
				},
			},
			Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 250}},
		}
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		if got := cl.Link(0).Delivered(); got != frames {
			t.Fatalf("delivered %d frames, want %d", got, frames)
		}
		return cl.Machine(0).Clock().Now()
	}
	idle := run(false)
	loaded := run(true)
	if loaded <= idle {
		t.Fatalf("loaded victim finished transfer in %d cycles, idle in %d: ack pacing did not shape the sender", loaded, idle)
	}
}

// TestClusterStalledOnNetworkWait pins ErrStalled: every machine
// blocked on network input with nothing in flight is a stall, not an
// endless tick loop.
func TestClusterStalledOnNetworkWait(t *testing.T) {
	cl, err := New(Config{Machines: []MachineSpec{{
		Config: kernel.Config{Seed: 81, CPUHz: testHz},
		Boot: func(_ *Cluster, m *kernel.Machine) error {
			_, err := m.Spawn(kernel.SpawnConfig{
				Name:    "reader",
				Content: "reader v1",
				Body: func(ctx guest.Context) {
					ctx.NetRxWait(0) // nothing will ever arrive
				},
			})
			return err
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != ErrStalled {
		t.Fatalf("Run = %v, want ErrStalled", err)
	}
}

// TestSharedSwapBillsHost pins the cross-machine exception-flood
// substrate: a neighbor's page I/O against the swap device the host
// exports lands rx interrupts plus service work on the host, visible
// in its process-aware system account, while the disks contend
// through one shared channel.
func TestSharedSwapBillsHost(t *testing.T) {
	const pageSize = 4096
	cfg := Config{
		Machines: []MachineSpec{
			{
				// Host: a long-lived busy job absorbs the remote service.
				Config: kernel.Config{Seed: 91, CPUHz: testHz},
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					return spawnBusy(m, "victim", 0.4)
				},
			},
			{
				// Neighbor: tiny RAM, sweeps twice its RAM so it pages.
				Config: kernel.Config{Seed: 92, CPUHz: testHz, PhysMemBytes: 1 << 20},
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					_, err := m.Spawn(kernel.SpawnConfig{
						Name:    "memhog",
						Content: "memhog v1",
						Body: func(ctx guest.Context) {
							const pages = 2 * (1 << 20) / pageSize
							for n := 0; n < pages+40; n++ {
								ctx.Store(uint64(n%pages) * pageSize)
								ctx.Compute(2000)
							}
						},
					})
					return err
				},
			},
		},
		Links:      []LinkSpec{{From: 1, To: 0, LatencyUs: 300}},
		SharedSwap: &SharedSwapSpec{Host: 0, Clients: []int{1}},
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	host, neighbor := cl.Machine(0), cl.Machine(1)
	ios := neighbor.Disk().IOs() + neighbor.Disk().Writes()
	if ios == 0 {
		t.Fatal("neighbor hog issued no I/O against the shared swap")
	}
	if rx := host.NIC().Received(); rx == 0 {
		t.Fatal("host NIC saw no remote swap request frames")
	}
	sys, ok := host.UsageBy("process-aware", metering.SystemPID)
	if !ok || sys.System == 0 {
		t.Fatalf("host system account = %+v, want nonzero remote-service time", sys)
	}
}

// TestSharedSwapRejectsBadSpecs covers shared-swap validation.
func TestSharedSwapRejectsBadSpecs(t *testing.T) {
	mk := func(ss *SharedSwapSpec) error {
		_, err := New(Config{
			Machines: []MachineSpec{
				{Config: kernel.Config{Seed: 1, CPUHz: testHz}},
				{Config: kernel.Config{Seed: 2, CPUHz: testHz}},
			},
			SharedSwap: ss,
		})
		return err
	}
	for _, tc := range []struct {
		name string
		ss   *SharedSwapSpec
	}{
		{"host out of range", &SharedSwapSpec{Host: 5, Clients: []int{1}}},
		{"client out of range", &SharedSwapSpec{Host: 0, Clients: []int{9}}},
		{"no clients", &SharedSwapSpec{Host: 0}},
		{"host as client", &SharedSwapSpec{Host: 0, Clients: []int{0}}},
		{"duplicate client", &SharedSwapSpec{Host: 0, Clients: []int{1, 1}}},
	} {
		if err := mk(tc.ss); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestBottleneckRejectsMismatchedParams covers shared-pipe validation.
func TestBottleneckRejectsMismatchedParams(t *testing.T) {
	_, err := New(Config{
		Machines: []MachineSpec{
			{Config: kernel.Config{Seed: 1, CPUHz: testHz}},
			{Config: kernel.Config{Seed: 2, CPUHz: testHz}},
			{Config: kernel.Config{Seed: 3, CPUHz: testHz}},
		},
		Links: []LinkSpec{
			{From: 0, To: 2, PacketsPerSecond: 10_000, Bottleneck: "up"},
			{From: 1, To: 2, PacketsPerSecond: 20_000, Bottleneck: "up"},
		},
	})
	if err == nil {
		t.Fatal("mismatched bottleneck params accepted")
	}
}

func TestClusterRejectsMixedClocks(t *testing.T) {
	_, err := New(Config{Machines: []MachineSpec{
		{Config: kernel.Config{Seed: 1, CPUHz: testHz}},
		{Config: kernel.Config{Seed: 2, CPUHz: testHz * 2}},
	}})
	if err == nil {
		t.Fatal("want error for mixed CPU clocks")
	}
}

func TestClusterStallDetection(t *testing.T) {
	// A machine whose only task sleeps forever... is not expressible
	// (Sleep always schedules a wake), so the stall guard instead
	// covers a machine waiting on a wait() that can never complete.
	cl, err := New(Config{Machines: []MachineSpec{{
		Config: kernel.Config{Seed: 5, CPUHz: testHz},
		Boot: func(_ *Cluster, m *kernel.Machine) error {
			_, err := m.Spawn(kernel.SpawnConfig{
				Name:    "waiter",
				Content: "waiter v1",
				Body: func(ctx guest.Context) {
					ctx.Fork("child", func(c guest.Context) {
						c.Compute(1000)
					})
					for {
						if _, ok := ctx.Wait(); !ok {
							break
						}
					}
				},
			})
			return err
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	// This scenario completes normally — it pins that ordinary
	// parent/child reaping works under lockstep too.
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}
