// Cluster checkpoint/fork: Snapshot captures a whole lockstep fabric
// — every machine's kernel image plus every link's and pipe's wire
// state — at a round boundary (the quiesced instant RunUntil leaves
// the cluster at), and Restore rebuilds an independent cluster that
// continues the identical history. The image is immutable and
// reusable: restoring it twice yields two clusters that diverge only
// through post-restore inputs, which is what a campaign's shared-
// warmup fork amounts to one level up from kernel.Machine.Fork.
//
// Scope: a cluster is snapshottable while every member is live. A
// finished, crashed, or reboot-pending machine is a retired
// incarnation whose ledgers the original cluster owns; checkpoint
// before the failure instead — a snapshot taken with CrashAt still
// pending replays the crash, the restart, and the per-incarnation
// ledgers identically on both sides. Guests that transmit host-side
// on captured *Link handles (rather than through the kernel routing
// table via NetSend/NetForward) do not survive a cluster restore:
// the restored fabric has its own links, so such guests must be
// declared forkless and checkpointed before they spawn.
package cluster

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// linkDirImage is one link direction's serialisable state.
type linkDirImage struct {
	sent      uint64
	delivered uint64
	dropped   uint64
	queued    uint64
	marked    uint64
	earlyDrop uint64
	downAt    sim.Cycles
}

// pipeImage is one pipe's serialisable dynamic state. The static
// shape (rate, depth, RED policy, qdisc, flap schedule) is rebuilt
// from the Config; only what the run mutated is carried.
type pipeImage struct {
	lastArrival sim.Cycles
	rngState    uint64
	avgFP       uint64
	busyUntil   sim.Cycles
	commitClock sim.Cycles
	kickArmed   bool
	drr         *device.DRR // frozen backlog clone; nil on FIFO pipes
	homeIdx     int         // machine whose queue runs the kick timer; -1 on FIFO pipes
}

// ClusterImage is a Cluster's full checkpoint: the declaration it was
// built from, one kernel image per machine, the pending crash
// schedule, and every link direction's and pipe's wire state. Images
// are immutable — Restore deep-copies all mutable state — so one
// image serves any number of restores.
type ClusterImage struct {
	cfg      Config
	machines []*kernel.MachineImage
	crashAt  []sim.Cycles
	links    []linkDirImage // 2 per declared link: forward, then reverse
	pipes    []pipeImage    // by pipe id (wiring order)
}

// At reports the image's lockstep frontier: the earliest machine
// clock, the instant the restored cluster resumes from.
func (img *ClusterImage) At() sim.Cycles {
	var min sim.Cycles
	for i, mi := range img.machines {
		if t := mi.At(); i == 0 || t < min {
			min = t
		}
	}
	return min
}

// Machines reports the number of machine images.
func (img *ClusterImage) Machines() int { return len(img.machines) }

// snapDir captures one link direction.
func snapDir(l *Link) linkDirImage {
	return linkDirImage{
		sent:      l.sent,
		delivered: l.delivered,
		dropped:   l.dropped,
		queued:    l.queued,
		marked:    l.marked,
		earlyDrop: l.earlyDrop,
		downAt:    l.downAt,
	}
}

// applyDir overlays one link direction from its image.
func applyDir(l *Link, di linkDirImage) {
	//simlint:ledger-ok restore overlay: the image holds a balanced ledger captured at the barrier; all four counters land together
	l.sent = di.sent
	//simlint:ledger-ok restore overlay: the image holds a balanced ledger captured at the barrier; all four counters land together
	l.delivered = di.delivered
	//simlint:ledger-ok restore overlay: the image holds a balanced ledger captured at the barrier; all four counters land together
	l.dropped = di.dropped
	//simlint:ledger-ok restore overlay: the image holds a balanced ledger captured at the barrier; all four counters land together
	l.queued = di.queued
	l.marked = di.marked
	l.earlyDrop = di.earlyDrop
	l.downAt = di.downAt
}

// Snapshot captures the cluster's complete deterministic state at a
// round boundary (between Run rounds — in practice, after a RunUntil
// barrier). Every machine must be live and individually
// snapshottable; a finished, crashed, or reboot-pending member makes
// the cluster unsnapshottable (errors.Is kernel.ErrNotSnapshottable),
// as does any machine hosting goroutine-driver guests or forkless
// step guests. A still-pending CrashAt schedule is plain data and is
// carried: the restored cluster takes the crash, reboot, and
// incarnation split identically.
func (c *Cluster) Snapshot() (*ClusterImage, error) {
	for i := range c.machines {
		if c.done[i] || c.crashed[i] || c.restartAt[i] > 0 || len(c.prior[i]) > 0 {
			return nil, fmt.Errorf("cluster: %s has finished, crashed, or rebooted; snapshot requires every machine live: %w",
				c.machineDesc(i), kernel.ErrNotSnapshottable)
		}
	}
	img := &ClusterImage{
		cfg:      c.cfg,
		machines: make([]*kernel.MachineImage, len(c.machines)),
		crashAt:  append([]sim.Cycles(nil), c.crashAt...),
	}
	for i, m := range c.machines {
		mi, err := m.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("cluster: %s: %w", c.machineDesc(i), err)
		}
		img.machines[i] = mi
	}
	for _, l := range c.links {
		img.links = append(img.links, snapDir(l), snapDir(l.rev))
	}
	for _, p := range c.pipes {
		pi := pipeImage{
			lastArrival: p.lastArrival,
			rngState:    p.rng.State(),
			avgFP:       p.avgFP,
			busyUntil:   p.busyUntil,
			commitClock: p.commitClock,
			kickArmed:   p.kickArmed,
			homeIdx:     -1,
		}
		if p.drr != nil {
			pi.drr = p.drr.Clone()
			for i, m := range c.machines {
				if m.NIC() == p.home {
					pi.homeIdx = i
					break
				}
			}
			if pi.homeIdx < 0 {
				return nil, fmt.Errorf("cluster: pipe %d's kick timer is homed on a retired machine: %w",
					p.id, kernel.ErrNotSnapshottable)
			}
		}
		img.pipes = append(img.pipes, pi)
	}
	return img, nil
}

// Restore rebuilds an independent cluster from an image: machines are
// restored from their kernel images (pending cluster-owned events —
// DRR kick timers, shared-swap service work — are re-pointed at the
// rebuilt wiring), links and pipes are rewired from the declaration
// in the identical order, and the wire state is overlaid. Boot
// routines do NOT run again: the tasks they spawned are part of the
// machine images. The restored cluster continues the image's history
// under the same barrier sequence; the image remains valid for
// further restores.
func Restore(img *ClusterImage) (*Cluster, error) {
	c, freq, perUs, err := shellFrom(img.cfg)
	if err != nil {
		return nil, err
	}
	// Cluster-owned events restore through late-bound lookups: the
	// pipes and the shared-swap callback are wired after the machines,
	// but nothing fires until the cluster advances.
	ext := func(kind string, tag uint64) (func(), bool) {
		switch kind {
		case "pipe-service":
			return func() { c.pipes[tag].kickFire() }, true
		case "irq-work":
			return func() { c.swapFire() }, true
		}
		return nil, false
	}
	for i, mi := range img.machines {
		m, err := kernel.RestoreWith(mi, ext)
		if err != nil {
			c.Shutdown()
			return nil, fmt.Errorf("cluster: restore %s: %w", c.machineDesc(i), err)
		}
		c.machines[i] = m
	}
	if err := c.wire(freq, perUs, true); err != nil {
		return nil, err
	}
	copy(c.crashAt, img.crashAt)
	if len(img.links) != 2*len(c.links) || len(img.pipes) != len(c.pipes) {
		c.Shutdown()
		return nil, fmt.Errorf("cluster: image wiring mismatch: %d link directions and %d pipes in image, %d and %d rebuilt",
			len(img.links), len(img.pipes), 2*len(c.links), len(c.pipes))
	}
	for i, l := range c.links {
		applyDir(l, img.links[2*i])
		applyDir(l.rev, img.links[2*i+1])
	}
	for i, p := range c.pipes {
		pi := img.pipes[i]
		p.lastArrival = pi.lastArrival
		p.rng.SetState(pi.rngState)
		p.avgFP = pi.avgFP
		p.busyUntil = pi.busyUntil
		p.commitClock = pi.commitClock
		p.kickArmed = pi.kickArmed
		if pi.drr != nil {
			// Clone again: the image's backlog stays frozen for reuse.
			p.drr = pi.drr.Clone()
			p.home = c.machines[pi.homeIdx].NIC()
		}
	}
	return c, nil
}

// Fork snapshots the cluster and restores an independent copy: both
// continue the identical history from the fork instant until their
// inputs diverge. The snapshot's validity rules apply.
func (c *Cluster) Fork() (*Cluster, error) {
	img, err := c.Snapshot()
	if err != nil {
		return nil, err
	}
	return Restore(img)
}
