package cluster

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// pktgenSpec spawns a raw link.Send generator offering `count` copies
// of frame at fixed spacing.
func pktgenSpec(seed int64, link int, frame Frame, count int, interval sim.Cycles) MachineSpec {
	return MachineSpec{
		Config: kernel.Config{Seed: seed, CPUHz: testHz},
		Boot: func(c *Cluster, m *kernel.Machine) error {
			l := c.Link(link)
			_, err := m.Spawn(kernel.SpawnConfig{
				Name:    "pktgen",
				Content: "pktgen v1",
				Body: func(ctx guest.Context) {
					for i := 0; i < count; i++ {
						l.Send(frame)
						ctx.Sleep(interval)
					}
				},
			})
			return err
		},
	}
}

func sinkSpec(seed int64, seconds float64) MachineSpec {
	return MachineSpec{
		Config: kernel.Config{Seed: seed, CPUHz: testHz},
		Boot: func(_ *Cluster, m *kernel.Machine) error {
			return spawnBusy(m, "sink", seconds)
		},
	}
}

// TestByteAccurateZeroBytesFallback pins the Frame.Bytes==0 fallback:
// a zero-Bytes frame and an explicitly minimum-size frame produce
// bit-identical wire histories, because both occupy exactly one
// serialisation slot.
func TestByteAccurateZeroBytesFallback(t *testing.T) {
	run := func(bytes uint32) (uint64, uint64, sim.Cycles) {
		cl, err := New(Config{
			Machines: []MachineSpec{
				pktgenSpec(101, 0, Frame{Src: 1, Dst: 2, Bytes: bytes}, 3000, sim.Cycles(testHz/40_000)),
				sinkSpec(102, 0.3),
			},
			Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 200, PacketsPerSecond: 10_000, QueueDepth: 16}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		return cl.Link(0).Delivered(), cl.Link(0).Dropped(), cl.Machine(1).Clock().Now()
	}
	d0, x0, c0 := run(0)
	d1, x1, c1 := run(84)
	if d0 != d1 || x0 != x1 || c0 != c1 {
		t.Errorf("Bytes==0 (%d/%d/%d) and Bytes==84 (%d/%d/%d) histories diverged", d0, x0, c0, d1, x1, c1)
	}
	if x0 == 0 {
		t.Error("saturated wire produced no drops (scenario too weak to pin anything)")
	}
}

// TestByteAccurateMixedFrameSizes pins byte-accurate serialisation on
// one pipe: the same offered schedule with MTU frames instead of
// minimum frames occupies ~18x the wire, so the same queue bound
// sheds far more of them.
func TestByteAccurateMixedFrameSizes(t *testing.T) {
	run := func(bytes uint32) (uint64, uint64) {
		cl, err := New(Config{
			Machines: []MachineSpec{
				pktgenSpec(111, 0, Frame{Src: 1, Dst: 2, Bytes: bytes}, 2000, sim.Cycles(testHz/8_000)),
				sinkSpec(112, 0.3),
			},
			Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 200, PacketsPerSecond: 10_000, QueueDepth: 32}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		return cl.Link(0).Delivered(), cl.Link(0).Dropped()
	}
	smallDel, smallDrop := run(0)
	bigDel, bigDrop := run(1500)
	// 8k minimum frames/s fit a 10k-slot wire: no congestion at all.
	if smallDrop != 0 {
		t.Errorf("minimum frames at 0.8x capacity dropped %d (delivered %d), want 0", smallDrop, smallDel)
	}
	// The same schedule in MTU frames offers ~14x the wire's bytes.
	if bigDrop <= smallDrop || bigDel >= smallDel/2 {
		t.Errorf("MTU frames: delivered %d dropped %d vs minimum frames %d/%d — byte size invisible to the wire",
			bigDel, bigDrop, smallDel, smallDrop)
	}
}

// drrContention builds the shared-egress contention topology: a hog
// blasting MTU frames and a sparse minimum-frame flow through one
// bottleneck pipe into a sink, under the given discipline.
func drrContention(t *testing.T, qdisc string, red *REDSpec) *Cluster {
	t.Helper()
	mk := func(from int) LinkSpec {
		return LinkSpec{
			From: from, To: 2, LatencyUs: 200,
			PacketsPerSecond: 10_000, QueueDepth: 64,
			Bottleneck: "egress", Qdisc: qdisc, RED: red,
		}
	}
	cl, err := New(Config{
		Machines: []MachineSpec{
			// Hog: MTU frames at 2000/s = ~36k slots/s on a 10k wire.
			pktgenSpec(121, 0, Frame{Src: 1, Dst: 3, Flow: 1, Bytes: 1500}, 600, sim.Cycles(testHz/2_000)),
			// Sparse flow: 100 minimum frames at 500/s = 5% of the wire.
			pktgenSpec(122, 1, Frame{Src: 2, Dst: 3, Flow: 2}, 100, sim.Cycles(testHz/500)),
			sinkSpec(123, 0.4),
		},
		Links: []LinkSpec{mk(0), mk(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestDRRProtectsSparseFlow pins per-flow fairness: a sparse flow
// needing 5% of a wire that an MTU hog oversubscribes 3.6x loses
// frames under FIFO but sails through untouched under DRR, where the
// hog's own backlog absorbs every drop. Both runs end with the
// backlog drained (Queued 0) and the three-term identity collapsed
// back to Sent = Delivered + Dropped.
func TestDRRProtectsSparseFlow(t *testing.T) {
	fifo := drrContention(t, QdiscFIFO, nil)
	if got := fifo.Link(1).Dropped(); got == 0 {
		t.Errorf("FIFO dropped none of the sparse flow behind a 3.6x hog (delivered %d)", fifo.Link(1).Delivered())
	}
	drr := drrContention(t, QdiscDRR, nil)
	if got := drr.Link(1).Dropped(); got != 0 {
		t.Errorf("DRR dropped %d sparse-flow frames, want 0 (fairness must protect the 5%% flow)", got)
	}
	if got := drr.Link(1).Delivered(); got != 100 {
		t.Errorf("DRR delivered %d of 100 sparse-flow frames", got)
	}
	if drr.Link(0).Dropped() == 0 {
		t.Error("DRR shed none of the hog's backlog at 3.6x oversubscription")
	}
	for i := 0; i < 2; i++ {
		l := drr.Link(i)
		if l.Queued() != 0 {
			t.Errorf("link %d ended with %d frames still queued", i, l.Queued())
		}
		if l.Sent() != l.Delivered()+l.Dropped() {
			t.Errorf("link %d: Sent %d != Delivered %d + Dropped %d after drain", i, l.Sent(), l.Delivered(), l.Dropped())
		}
	}
}

// TestEWMARedDeterminismAndSmoothing pins the EWMA estimator: same
// seed, same counters, twice over (parallel campaigns rely on this);
// and a heavy weight visibly lags the instantaneous depth — the
// estimator tolerates what instantaneous RED would already punish.
func TestEWMARedDeterminismAndSmoothing(t *testing.T) {
	run := func(weight uint64) (uint64, uint64, uint64) {
		red := &REDSpec{MinDepth: 4, MaxDepth: 32, MaxPct: 50, Weight: weight}
		cl, err := New(Config{
			Machines: []MachineSpec{
				pktgenSpec(131, 0, Frame{Src: 1, Dst: 2, ECN: true}, 2000, sim.Cycles(testHz/40_000)),
				sinkSpec(132, 0.2),
			},
			Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 200, PacketsPerSecond: 10_000, QueueDepth: 64, RED: red}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		l := cl.Link(0)
		return l.Marked(), l.EarlyDropped(), l.Delivered()
	}
	m1, e1, d1 := run(8)
	m2, e2, d2 := run(8)
	if m1 != m2 || e1 != e2 || d1 != d2 {
		t.Errorf("same-seed EWMA RED histories diverged: (%d,%d,%d) vs (%d,%d,%d)", m1, e1, d1, m2, e2, d2)
	}
	inst, _, _ := run(0)
	if inst == 0 {
		t.Fatal("instantaneous RED marked nothing on a 4x-oversubscribed wire")
	}
	if m1 >= inst {
		t.Errorf("EWMA(8) marked %d ≥ instantaneous %d: the average should lag the ramp-up", m1, inst)
	}
}

// TestQdiscValidation covers the qdisc spec checks.
func TestQdiscValidation(t *testing.T) {
	mk := func(ls LinkSpec) error {
		_, err := New(Config{
			Machines: []MachineSpec{
				{Config: kernel.Config{Seed: 1, CPUHz: testHz}},
				{Config: kernel.Config{Seed: 2, CPUHz: testHz}},
				{Config: kernel.Config{Seed: 3, CPUHz: testHz}},
			},
			Links: []LinkSpec{ls},
		})
		return err
	}
	for _, tc := range []struct {
		name string
		ls   LinkSpec
	}{
		{"unknown qdisc", LinkSpec{From: 0, To: 1, Qdisc: "wfq"}},
		{"quantum without drr", LinkSpec{From: 0, To: 1, QuantumBytes: 512}},
		{"drr on infinite wire", LinkSpec{From: 0, To: 1, Qdisc: QdiscDRR, PacketsPerSecond: UnlimitedPPS}},
		{"red weight over 16", LinkSpec{From: 0, To: 1, RED: &REDSpec{MinDepth: 4, MaxDepth: 16, MaxPct: 50, Weight: 17}}},
	} {
		if err := mk(tc.ls); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Bottleneck pipes must agree on discipline and quantum.
	_, err := New(Config{
		Machines: []MachineSpec{
			{Config: kernel.Config{Seed: 1, CPUHz: testHz}},
			{Config: kernel.Config{Seed: 2, CPUHz: testHz}},
			{Config: kernel.Config{Seed: 3, CPUHz: testHz}},
		},
		Links: []LinkSpec{
			{From: 0, To: 2, Qdisc: QdiscDRR, Bottleneck: "up"},
			{From: 1, To: 2, Bottleneck: "up"},
		},
	})
	if err == nil {
		t.Error("bottleneck qdisc mismatch accepted")
	}
}
