package cluster

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/sim"
)

// The forwarding daemon is the cluster's hottest guest — every frame
// crossing a router activates it — so it runs on the flyweight driver:
// forwarderStep below is an explicit resumable state machine
// (guest.Step) holding its loop position in a few words of struct
// state instead of a parked goroutine stack. Forwarder wraps the same
// machine for spawn sites still using the goroutine driver; both forms
// issue the identical request sequence, so histories replay
// bit-for-bit regardless of driver.

// DefaultForwardUs is a software router's per-frame lookup/queue
// service when a forwarder leaves it unset: ~3 µs of FIB lookup,
// header rewrite, and queue handling.
const DefaultForwardUs = 3

// forwarderBudget is the retry budget against injected read/sendto
// faults: generous enough to outlast a transient, bounded so a
// hard-faulted router drops the frame and moves on instead of wedging
// the fabric. With no faults configured the retry paths never touch
// the clock, so healthy histories replay bit-for-bit.
func forwarderBudget(lookup sim.Cycles) sim.Cycles {
	budget := 64 * lookup
	if budget < 1<<16 {
		budget = 1 << 16
	}
	return budget
}

// forwarderStep is the resumable forwarding daemon. Its activation
// cycle mirrors the original blocking loop exactly: block for traffic
// (NetRxWait), drain the receive buffer via retried reads, spend
// lookup cycles per frame, and retransmit via retried forwards.
type forwarderStep struct {
	lookup sim.Cycles
	budget sim.Cycles
	self   guest.Addr
	seen   uint64
	frame  guest.Frame
	retry  guest.RetryStep

	// Bound once at start so steady-state activations allocate
	// nothing: the whole daemon is this struct plus the closures.
	recvOp   guest.RetryOp
	recvDone guest.RetryDone
	fwdOp    guest.RetryOp
	fwdDone  guest.RetryDone
	wait     guest.Step
}

// start is the first activation: bind the continuations, learn the
// machine's address, and block for the first delivery.
func (g *forwarderStep) start(ctx guest.Context, _ guest.Resume) guest.Step {
	g.self = ctx.NetAddr()
	g.recvOp = func(ctx guest.Context) {
		//simlint:errno-ok resumable post: the errno arrives in the next activation's Resume
		ctx.NetRecv()
	}
	g.recvDone = g.afterRecv
	g.fwdOp = func(ctx guest.Context) {
		//simlint:errno-ok resumable post: the errno arrives in the next activation's Resume
		ctx.NetForward(g.frame)
	}
	g.fwdDone = g.afterForward
	g.wait = g.afterWait
	ctx.NetRxWait(g.seen)
	return g.wait
}

// afterWait resumes with the delivery count and begins draining.
func (g *forwarderStep) afterWait(ctx guest.Context, r guest.Resume) guest.Step {
	g.seen = r.Ret
	return g.retry.Begin(ctx, g.recvOp, g.budget, g.recvDone)
}

// afterRecv resumes with a retried read's outcome.
func (g *forwarderStep) afterRecv(ctx guest.Context, r guest.Resume) guest.Step {
	if r.Err != nil || !r.OK {
		// A persistent read fault leaves the frame buffered (err, not
		// ok, distinguishes it from a drained queue); the next
		// delivery wakes the daemon to try again.
		ctx.NetRxWait(g.seen)
		return g.wait
	}
	g.frame = r.Frame
	if g.lookup > 0 {
		ctx.Compute(g.lookup)
		return g.afterLookup
	}
	return g.route(ctx)
}

// afterLookup resumes once the per-frame table work is billed.
func (g *forwarderStep) afterLookup(ctx guest.Context, _ guest.Resume) guest.Step {
	return g.route(ctx)
}

// route consumes or retransmits the held frame.
func (g *forwarderStep) route(ctx guest.Context) guest.Step {
	if g.frame.Dst == g.self {
		// Addressed to the router itself: consumed; drain the next.
		return g.retry.Begin(ctx, g.recvOp, g.budget, g.recvDone)
	}
	return g.retry.Begin(ctx, g.fwdOp, g.budget, g.fwdDone)
}

// afterForward drops any error — a forward still failing after the
// budget is this router's drop; recovery belongs to the end hosts —
// and drains the next frame.
func (g *forwarderStep) afterForward(ctx guest.Context, _ guest.Resume) guest.Step {
	return g.retry.Begin(ctx, g.recvOp, g.budget, g.recvDone)
}

// fork clones the daemon for a checkpoint: the copy's continuations
// and retry are rebound onto the clone, so both daemons resume the
// same activation against their own machines. recvOp captures nothing
// and is shared; fwdOp closes over the held frame and is rebuilt.
func (g *forwarderStep) fork(cur guest.Step) (guest.Forked, error) {
	c := *g
	c.recvDone = c.afterRecv
	c.fwdOp = func(ctx guest.Context) {
		//simlint:errno-ok resumable post: the errno arrives in the next activation's Resume
		ctx.NetForward(c.frame)
	}
	c.fwdDone = c.afterForward
	c.wait = c.afterWait
	var op guest.RetryOp
	var done guest.RetryDone
	switch {
	case guest.SameOp(g.retry.Op(), g.recvOp):
		op, done = c.recvOp, c.recvDone
	case guest.SameOp(g.retry.Op(), g.fwdOp):
		op, done = c.fwdOp, c.fwdDone
	}
	g.retry.ForkInto(&c.retry, op, done)
	s, ok := guest.RebindStep(cur,
		[]guest.Step{g.start, g.afterWait, g.afterLookup, g.retry.Self()},
		[]guest.Step{c.start, c.afterWait, c.afterLookup, c.retry.Self()})
	if !ok {
		return guest.Forked{}, fmt.Errorf("cluster: forwarder holds an unrecognised continuation")
	}
	return guest.Forked{Step: s, Fork: c.fork, State: &c}, nil
}

// ForwarderStep returns the forwarding guest as a resumable state
// machine for the flyweight driver. See Forwarder for the daemon's
// semantics; the two are the same machine.
func ForwarderStep(lookup sim.Cycles) guest.Step {
	step, _ := ForwarderGuest(lookup)
	return step
}

// ForwarderGuest returns the forwarding daemon's first activation
// plus its fork hook, for spawn sites that want the router
// checkpointable (kernel.SpawnConfig{Step: step, Fork: fork}).
func ForwarderGuest(lookup sim.Cycles) (guest.Step, guest.ForkFunc) {
	g := &forwarderStep{lookup: lookup, budget: forwarderBudget(lookup)}
	return g.start, g.fork
}

// Forwarder returns the forwarding guest a router machine runs: it
// blocks for traffic, then drains the kernel's receive buffer,
// spending lookup cycles of user-mode table work per frame before
// retransmitting it — Src preserved — toward its destination via
// NetForward. Every step is billed on the router machine like any
// guest's work (the receive interrupts, the read and sendto
// syscalls, the lookup cycles), so the router's own bill is a
// first-class observable: an attacker flooding through a shared
// router inflates the router's metered time without ever running an
// instruction there. Spawn it on a MachineSpec with Service set —
// the daemon never exits; the cluster retires it when the fabric
// quiesces.
func Forwarder(lookup sim.Cycles) guest.Routine {
	return guest.StepRoutine(ForwarderStep(lookup))
}
