package cluster

import (
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// pacedSender spawns a guest offering `frames` frames to the peer at
// a fixed inter-send gap, ignoring wire verdicts — the link counters
// are the test's ground truth.
func pacedSender(peerIdx int, frames int, gap sim.Cycles) func(*Cluster, *kernel.Machine) error {
	return func(c *Cluster, m *kernel.Machine) error {
		dst := c.AddrOf(peerIdx)
		_, err := m.Spawn(kernel.SpawnConfig{
			Name:    "pacer",
			Content: "paced sender v1",
			Body: func(ctx guest.Context) {
				for i := 0; i < frames; i++ {
					//simlint:errno-ok the chaos harness asserts on billing invariants, not per-send errno
					ctx.NetSend(guest.Frame{Dst: dst, Flow: uint32(i)})
					ctx.Sleep(gap)
				}
			},
		})
		return err
	}
}

// drainDaemon spawns a never-exiting receive loop — the standard
// Service-machine peer for crash and flap scenarios.
func drainDaemon(c *Cluster, m *kernel.Machine) error {
	_, err := m.Spawn(kernel.SpawnConfig{
		Name:    "drain",
		Content: "drain daemon v1",
		Body: func(ctx guest.Context) {
			seen := uint64(0)
			for {
				seen = ctx.NetRxWait(seen)
				for {
					if _, ok, err := ctx.NetRecv(); !ok || err != nil {
						break
					}
				}
			}
		},
	})
	return err
}

// checkBalanced asserts every declared link direction's conservation
// identity: Sent = Delivered + Dropped + Queued.
func checkBalanced(t *testing.T, cl *Cluster) {
	t.Helper()
	for i := 0; i < cl.Links(); i++ {
		for _, l := range []*Link{cl.Link(i), cl.Link(i).Reverse()} {
			if l.Sent() != l.Delivered()+l.Dropped()+l.Queued() {
				t.Errorf("link %d: sent %d != delivered %d + dropped %d + queued %d",
					i, l.Sent(), l.Delivered(), l.Dropped(), l.Queued())
			}
		}
	}
}

// TestCrashOfBlockedMachineDoesNotDeadlockBarrier is the regression
// pin for the lockstep barrier: a machine parked in NetRxWait reports
// no pending work, so before the fix a CrashAt on it could leave the
// barrier with tmin = none and Run would spin or stall forever. The
// pending crash must count as scheduled work and fire even though the
// machine's own event queue is silent.
func TestCrashOfBlockedMachineDoesNotDeadlockBarrier(t *testing.T) {
	crashAt := sim.Cycles(testHz / 100) // 10 ms in, machine 1 still blocked
	cl, err := New(Config{
		Machines: []MachineSpec{
			{
				Config: kernel.Config{Seed: 201, CPUHz: testHz},
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					return spawnBusy(m, "job", 0.05)
				},
			},
			{
				Config:  kernel.Config{Seed: 202, CPUHz: testHz},
				Service: true,
				CrashAt: crashAt,
				Boot:    drainDaemon,
			},
		},
		Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 200}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatalf("Run = %v, want clean completion through the crash", err)
	}
	if !cl.Crashed(1) {
		t.Error("blocked machine's scheduled crash never fired")
	}
	if !cl.Done(1) {
		t.Error("crashed machine not marked done")
	}
	checkBalanced(t, cl)
}

// TestCrashSeversInFlightFrames pins the teardown semantics: frames
// offered to a crashed destination (including frames already on the
// wire whose arrival lands past the crash instant) become counted
// drops, never silent losses, so the per-link conservation identity
// survives the crash.
func TestCrashSeversInFlightFrames(t *testing.T) {
	perUs := sim.Cycles(testHz / 1_000_000)
	crashAt := sim.Cycles(testHz / 50) // 20 ms
	const frames = 100
	cl, err := New(Config{
		Machines: []MachineSpec{
			{
				Config: kernel.Config{Seed: 211, CPUHz: testHz},
				// 100 frames, one every 500 µs: the stream spans 50 ms,
				// straddling the 20 ms crash.
				Boot: pacedSender(1, frames, 500*perUs),
			},
			{
				Config:  kernel.Config{Seed: 212, CPUHz: testHz},
				Service: true,
				CrashAt: crashAt,
				Boot:    drainDaemon,
			},
		},
		Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 300}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Crashed(1) {
		t.Fatal("receiver never crashed")
	}
	l := cl.Link(0)
	if l.Delivered() == 0 {
		t.Error("nothing delivered before the crash")
	}
	if l.Dropped() == 0 {
		t.Error("no drops after the crash — severed frames went uncounted")
	}
	if l.Sent() != frames {
		t.Errorf("Sent = %d, want %d (the sender machine outlives the crash and keeps offering)", l.Sent(), frames)
	}
	checkBalanced(t, cl)
}

// TestCrashRestartRunsSecondIncarnation pins the reboot path: with
// RestartAfter armed the machine comes back with fresh task state,
// the incarnation list grows, frames flow again after the outage, and
// both incarnations' deliveries plus the outage drops balance the
// sender's offers.
func TestCrashRestartRunsSecondIncarnation(t *testing.T) {
	perUs := sim.Cycles(testHz / 1_000_000)
	const frames = 100
	cl, err := New(Config{
		Machines: []MachineSpec{
			{
				Config: kernel.Config{Seed: 221, CPUHz: testHz},
				Boot:   pacedSender(1, frames, 500*perUs),
			},
			{
				Config:       kernel.Config{Seed: 222, CPUHz: testHz},
				Service:      true,
				CrashAt:      sim.Cycles(testHz / 50),  // down at 20 ms
				RestartAfter: sim.Cycles(testHz / 100), // back at 30 ms
				Boot:         drainDaemon,
			},
		},
		Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 300}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Crashed(1) {
		t.Fatal("receiver never crashed")
	}
	incs := cl.Incarnations(1)
	if len(incs) != 2 {
		t.Fatalf("incarnations = %d, want 2 (crashed original + reboot)", len(incs))
	}
	first, second := incs[0], incs[1]
	if first.NIC().Received() == 0 || second.NIC().Received() == 0 {
		t.Errorf("received %d/%d frames across incarnations, want both nonzero",
			first.NIC().Received(), second.NIC().Received())
	}
	l := cl.Link(0)
	if l.Dropped() == 0 {
		t.Error("no drops across a 10 ms outage inside a continuous stream")
	}
	if got := first.NIC().Received() + second.NIC().Received(); got != l.Delivered() {
		t.Errorf("incarnations received %d, link delivered %d — deliveries leaked across the reboot", got, l.Delivered())
	}
	checkBalanced(t, cl)
}

// TestRestartExpiresStrandedDRRBacklog is the regression pin for the
// crash-during-DRR-service strand: the receiver dies while frames are
// still parked in its pipe's backlog, the kick timer dies with it, and
// before the fix the residual Queued frames sat stranded through the
// outage and were then served into the *fresh* incarnation once
// restart re-homed the timer — stale traffic addressed to a machine
// that no longer exists. Restart must instead expire the dead
// incarnation's backlog into the drop ledger: Queued drains to zero,
// the reboot sees none of the pre-crash frames, and the conservation
// identity holds at every instant.
func TestRestartExpiresStrandedDRRBacklog(t *testing.T) {
	perUs := sim.Cycles(testHz / 1_000_000)
	const frames = 100
	burstThenLinger := func(c *Cluster, m *kernel.Machine) error {
		dst := c.AddrOf(1)
		_, err := m.Spawn(kernel.SpawnConfig{
			Name:    "burst",
			Content: "burst sender v1",
			Body: func(ctx guest.Context) {
				// 100 frames at 50 µs apart: 2x the wire's 10k pps, so a
				// deep backlog stands when the receiver dies at 7 ms —
				// after the sender went quiet at 5 ms, which is what
				// leaves the strand to the kick timer alone.
				for i := 0; i < frames; i++ {
					//simlint:errno-ok the chaos harness asserts on billing invariants, not per-send errno
					ctx.NetSend(guest.Frame{Dst: dst, Flow: uint32(i % 4)})
					ctx.Sleep(50 * perUs)
				}
				// Outlive the 12 ms reboot so the restart actually fires
				// and any stale frame would have time to leak.
				ctx.Sleep(25_000 * perUs)
			},
		})
		return err
	}
	cl, err := New(Config{
		Machines: []MachineSpec{
			{
				Config: kernel.Config{Seed: 231, CPUHz: testHz},
				Boot:   burstThenLinger,
			},
			{
				Config:       kernel.Config{Seed: 232, CPUHz: testHz},
				Service:      true,
				CrashAt:      sim.Cycles(testHz * 7 / 1_000), // down at 7 ms, backlog standing
				RestartAfter: sim.Cycles(testHz * 5 / 1_000), // back at 12 ms
				Boot:         drainDaemon,
			},
		},
		Links: []LinkSpec{{
			From: 0, To: 1, LatencyUs: 200,
			PacketsPerSecond: 10_000, QueueDepth: 96, Qdisc: QdiscDRR,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Crashed(1) {
		t.Fatal("receiver never crashed")
	}
	incs := cl.Incarnations(1)
	if len(incs) != 2 {
		t.Fatalf("incarnations = %d, want 2", len(incs))
	}
	l := cl.Link(0)
	if l.Queued() != 0 {
		t.Errorf("Queued = %d after the run, want 0 — restart stranded the dead pipe's backlog", l.Queued())
	}
	if l.Delivered() == 0 {
		t.Error("nothing delivered before the crash")
	}
	if l.Dropped() == 0 {
		t.Error("no drops — the expired backlog went uncounted")
	}
	if got := incs[1].NIC().Received(); got != 0 {
		t.Errorf("fresh incarnation received %d frames, want 0 — pre-crash backlog leaked across the reboot", got)
	}
	if got := incs[0].NIC().Received(); got != l.Delivered() {
		t.Errorf("first incarnation received %d, link delivered %d", got, l.Delivered())
	}
	if l.Sent() != frames {
		t.Errorf("Sent = %d, want %d", l.Sent(), frames)
	}
	checkBalanced(t, cl)
}

// TestFlapWindowDropsThenResumes pins FIFO flap semantics: offers
// inside a scheduled outage window are counted drops, offers before
// and after are carried, and the ledger stays balanced.
func TestFlapWindowDropsThenResumes(t *testing.T) {
	perUs := sim.Cycles(testHz / 1_000_000)
	const frames = 100
	cl, err := New(Config{
		Machines: []MachineSpec{
			{
				Config: kernel.Config{Seed: 231, CPUHz: testHz},
				// One frame every 500 µs for 50 ms, across a single
				// 10 ms outage starting at 15 ms.
				Boot: pacedSender(1, frames, 500*perUs),
			},
			{
				Config:  kernel.Config{Seed: 232, CPUHz: testHz},
				Service: true,
				Boot:    drainDaemon,
			},
		},
		Links: []LinkSpec{{
			From: 0, To: 1, LatencyUs: 300,
			Flap: &FlapSpec{FirstDownUs: 15_000, DownUs: 10_000},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	l := cl.Link(0)
	if l.Dropped() == 0 {
		t.Error("no drops across a 10 ms outage inside a continuous stream")
	}
	if l.Delivered() == 0 {
		t.Error("nothing delivered outside the outage window")
	}
	// ~20 of 100 offers land inside the window (10 ms of a 50 ms
	// stream at 2k pps); everything else must be carried.
	if l.Dropped() >= l.Delivered() {
		t.Errorf("dropped %d >= delivered %d for a window covering ~20%% of the stream", l.Dropped(), l.Delivered())
	}
	checkBalanced(t, cl)
}

// TestPeriodicFlapRepeats pins the periodic form: with UpUs set the
// outage recurs, so a stream long enough to span several periods
// takes drops from more than one window — strictly more than the same
// stream loses to a single window of the same length.
func TestPeriodicFlapRepeats(t *testing.T) {
	perUs := sim.Cycles(testHz / 1_000_000)
	const frames = 100
	build := func(flap *FlapSpec) *Link {
		cl, err := New(Config{
			Machines: []MachineSpec{
				{
					Config: kernel.Config{Seed: 241, CPUHz: testHz},
					Boot:   pacedSender(1, frames, 500*perUs),
				},
				{
					Config:  kernel.Config{Seed: 242, CPUHz: testHz},
					Service: true,
					Boot:    drainDaemon,
				},
			},
			Links: []LinkSpec{{From: 0, To: 1, LatencyUs: 300, Flap: flap}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		checkBalanced(t, cl)
		return cl.Link(0)
	}
	single := build(&FlapSpec{FirstDownUs: 5_000, DownUs: 5_000})
	periodic := build(&FlapSpec{FirstDownUs: 5_000, DownUs: 5_000, UpUs: 10_000})
	if single.Dropped() == 0 || periodic.Dropped() == 0 {
		t.Fatalf("drops single=%d periodic=%d, want both nonzero", single.Dropped(), periodic.Dropped())
	}
	if periodic.Dropped() <= single.Dropped() {
		t.Errorf("periodic windows dropped %d <= single window's %d, want more (the outage recurs)",
			periodic.Dropped(), single.Dropped())
	}
}

// TestChaosSpecValidation covers the construction-time checks the
// chaos layer added: restart without a crash, crash under shared
// swap, flap on a shared bottleneck, and a zero-length outage.
func TestChaosSpecValidation(t *testing.T) {
	mspec := func(name string) MachineSpec {
		return MachineSpec{Name: name, Config: kernel.Config{Seed: 1, CPUHz: testHz}}
	}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			name: "restart without crash",
			cfg: Config{Machines: []MachineSpec{
				{Name: "a", Config: kernel.Config{Seed: 1, CPUHz: testHz}, RestartAfter: 100},
			}},
			want: "RestartAfter without CrashAt",
		},
		{
			name: "crash under shared swap",
			cfg: Config{
				Machines: []MachineSpec{
					{Name: "a", Config: kernel.Config{Seed: 1, CPUHz: testHz}, CrashAt: 100},
					mspec("b"),
				},
				SharedSwap: &SharedSwapSpec{Host: 1, Clients: []int{0}},
			},
			want: "shared swap",
		},
		{
			name: "flap on a bottleneck",
			cfg: Config{
				Machines: []MachineSpec{mspec("a"), mspec("b")},
				Links: []LinkSpec{{
					From: 0, To: 1, Bottleneck: "up", PacketsPerSecond: 1000,
					Flap: &FlapSpec{FirstDownUs: 10, DownUs: 10},
				}},
			},
			want: "bottleneck",
		},
		{
			name: "zero-length outage",
			cfg: Config{
				Machines: []MachineSpec{mspec("a"), mspec("b")},
				Links: []LinkSpec{{
					From: 0, To: 1,
					Flap: &FlapSpec{FirstDownUs: 10},
				}},
			},
			want: "DownUs 0",
		},
	}
	for _, tc := range cases {
		_, err := New(tc.cfg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
