// Package cluster runs several simulated machines as one deterministic
// topology: N seeded, self-contained kernel.Machines plus modeled
// network links between their NICs. This is the substrate the paper's
// externally driven attacks actually need — the interrupt flood of
// Fig. 10 is launched from a second PC, not from inside the victim —
// so the flooding attacker becomes a genuine machine whose transmit
// schedule crosses a link instead of an in-machine event generator.
//
// Links are bidirectional, finite-capacity channels. Each declared
// LinkSpec yields a forward direction (From→To) and a reverse
// direction (To→From, via Link.Reverse); each direction serialises
// frames at the wire's packet rate through a bounded queue with
// deterministic tail-drop, counted in Sent/Delivered/Dropped. Both
// directions are registered as NIC transmit routes on their sending
// machines, so guests transmit through the billed kernel tx path
// (guest.Context.NetSend) and receivers can reply — ack-paced flows
// whose rate is shaped by the receiver's responsiveness.
//
// Serialisation is byte-accurate: a frame occupies the wire for
// Frame.Bytes at the link's byte rate (PacketsPerSecond minimum-size
// frames per second), with zero-Bytes frames costing exactly one
// per-frame slot — the pre-byte model, preserved bit-for-bit. Each
// link direction runs a queueing discipline (LinkSpec.Qdisc): FIFO by
// default, or DRR with per-Frame.Flow queues and a byte quantum so a
// flooding flow cannot starve a sparse one on a congested egress.
// RED queue feedback can gate on an EWMA depth estimate
// (REDSpec.Weight) instead of the instantaneous backlog.
//
// Machines advance in deterministic lockstep virtual time. Each round
// the cluster computes the earliest time any machine can make
// progress (the min-next-event-time barrier), extends it by the
// lookahead — the smallest cross-machine signal flight time — and
// advances every machine to that barrier with Machine.RunUntil. A
// packet sent at or after the barrier base arrives at least one
// lookahead later, so no machine ever needs an event from a region
// another machine has not yet simulated; the round-robin order within
// a round is fixed, so the whole cluster history is a pure function
// of its seeds.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Frame is one addressed fabric frame (see device.Frame): Src/Dst
// fabric addresses, a flow id, a payload size, and the ECN
// capability and congestion-experienced bits.
type Frame = device.Frame

// Addr is a fabric address (see device.Addr). A cluster assigns
// machine i the address Addr(i+1); zero is reserved for
// "unaddressed".
type Addr = device.Addr

// DefaultLatencyUs is the one-way link latency when a LinkSpec leaves
// it zero: 500 µs, a 2008-era switched-LAN round trip's half.
const DefaultLatencyUs = 500

// DefaultLinkPPS is the wire's packet capacity when a LinkSpec leaves
// it zero: ~148.8k minimum-size frames per second, a saturated
// 100 Mb/s link.
const DefaultLinkPPS = 148_800

// UnlimitedPPS selects an infinite-rate wire: no serialisation gap,
// no queue, no drops — the idealised lossless pipe of the first
// cluster model. A lossless infinite-rate link replays histories
// recorded under that model bit-for-bit.
const UnlimitedPPS = math.MaxUint64

// DefaultQueueDepth is a link direction's tail-drop queue bound, in
// packets, when a LinkSpec leaves it zero (a shallow 2008-era switch
// port buffer). A frame that would have to queue this deep behind
// earlier frames is dropped instead of delivered.
const DefaultQueueDepth = 64

// DefaultSwapServiceUs is the host-side CPU service per remote swap
// page when a SharedSwapSpec leaves it zero: ~40 µs of block-layer,
// copy, and reply work, in line with 2008-era NFS/NBD page service.
const DefaultSwapServiceUs = 40

// Queueing disciplines a LinkSpec.Qdisc may select.
const (
	// QdiscFIFO is the default first-come-first-served wire: frames
	// serialise in offer order through one virtual horizon, and a
	// flooding flow freely starves everything behind it. An empty
	// Qdisc resolves to FIFO, which replays pre-qdisc histories
	// bit-for-bit.
	QdiscFIFO = "fifo"
	// QdiscDRR arms deficit-round-robin per-flow fairness: each
	// Frame.Flow gets its own queue, active flows are served a byte
	// quantum per round, and under buffer pressure backlog is shed
	// from the fattest flow — so a flood caps its own share of a
	// congested egress instead of monopolising it.
	QdiscDRR = "drr"
)

// DefaultQuantumBytes is DRR's per-flow byte quantum when a LinkSpec
// leaves it zero: one maximum-size Ethernet frame, the smallest
// quantum that keeps packet-at-a-time DRR work-conserving.
const DefaultQuantumBytes = 1514

// MachineSpec declares one cluster member.
type MachineSpec struct {
	// Name optionally names the machine for diagnostics. Non-empty
	// names must be unique within a cluster.
	Name string
	// Config assembles the machine; every machine in a cluster must
	// share one CPUHz so the lockstep barrier is a single timebase.
	Config kernel.Config
	// Boot spawns the machine's initial processes (shell, workload,
	// attack daemons). It runs during New after every machine and
	// link is built but before any machine advances, so a guest body
	// may capture a link (c.Link(i)) to transmit on.
	Boot func(c *Cluster, m *kernel.Machine) error
	// Service marks a machine whose tasks may legitimately block on
	// network input forever (a forwarding router's daemon, an echo
	// responder). When every unfinished machine is a service machine
	// and no frame is in flight, the cluster shuts the service
	// machines down and completes instead of reporting ErrStalled.
	// The retirement is machine-granular: if a Service machine also
	// hosts a finite job, a stall of that job is indistinguishable
	// from quiescence here, so callers co-hosting jobs with daemons
	// must verify the job's own completion after Run.
	Service bool
	// CrashAt, when nonzero, schedules a hard machine failure at that
	// virtual cycle: the machine is torn down mid-run exactly like
	// Shutdown — tasks unwound, pending events dead — and frames
	// already in flight toward it are counted as link drops, so
	// Sent = Delivered + Dropped + Queued survives the failure. The
	// crash is scheduled work for the lockstep barrier: a machine
	// blocked forever on network input still dies on time. A machine
	// whose tasks all exit before CrashAt cancels the crash. One-shot:
	// a restarted incarnation does not crash again.
	CrashAt sim.Cycles
	// RestartAfter, when nonzero, reboots the crashed machine that
	// many cycles after CrashAt: a fresh kernel.Machine built from
	// this spec (clock fast-forwarded to the reboot instant, first
	// timer tick one jiffy later), rewired identically — same fabric
	// address, routes, links — with Boot run again. Task state is
	// fresh; ledgers are per-incarnation and survive only as the sum
	// over Cluster.Incarnations. Frames offered while the machine was
	// down stay dropped. Requires CrashAt.
	RestartAfter sim.Cycles
}

// FlapSpec schedules deterministic outage windows on one direction of
// a link: the wire goes down at FirstDownUs, stays down for DownUs,
// and — with UpUs nonzero — repeats forever with period DownUs+UpUs
// (UpUs zero makes it a single outage). A FIFO direction drops every
// frame offered while down; a DRR direction keeps admitted backlog
// queued and resumes serving when the window ends. The schedule is
// pure virtual time, so flapped histories replay bit-for-bit, and a
// nil spec leaves the wire permanently up (bit-identical to today).
type FlapSpec struct {
	// FirstDownUs is when the first outage begins, in microseconds of
	// virtual time (zero: down from boot).
	FirstDownUs uint64
	// DownUs is each outage's length in microseconds; must be nonzero
	// when the spec is armed.
	DownUs uint64
	// UpUs is the gap between outages; zero means the single window
	// [FirstDownUs, FirstDownUs+DownUs) is the whole schedule.
	UpUs uint64
}

// LinkSpec declares one bidirectional link between two machines'
// NICs. Each direction gets its own serialisation/queue state from
// the same rate and depth parameters.
type LinkSpec struct {
	// From and To index Config.Machines.
	From, To int
	// LatencyUs is the one-way propagation delay in microseconds;
	// zero selects DefaultLatencyUs.
	LatencyUs uint64
	// PacketsPerSecond is the wire's serialisation capacity; packets
	// offered faster queue behind each other and tail-drop beyond
	// QueueDepth. Zero selects DefaultLinkPPS; UnlimitedPPS selects
	// an idealised lossless infinite-rate wire.
	PacketsPerSecond uint64
	// QueueDepth bounds each direction's queue, in packets; zero
	// selects DefaultQueueDepth. Ignored under UnlimitedPPS.
	QueueDepth uint64
	// Bottleneck, when non-empty, names a shared last-hop pipe: the
	// forward directions of all links carrying the same tag serialise
	// through one queue (N attackers converging on one victim share
	// the victim's ingress wire). Tagged links must agree on
	// PacketsPerSecond and QueueDepth (after default resolution).
	// Reverse directions keep private pipes.
	//
	// Sharing granularity is the lockstep round: within one round,
	// frames from different machines reach the pipe in machine order
	// rather than strict virtual-time order (the sender needs its
	// carry/drop feedback synchronously, so resolution cannot be
	// deferred to the barrier). A later-indexed machine's frame may
	// therefore queue behind — or tail-drop after — an earlier-
	// indexed machine's virtually-later frame; the skew is bounded by
	// one lookahead window (the smallest link latency) and the
	// history remains a pure function of the Config.
	Bottleneck string
	// RED, when non-nil, arms RED/ECN-style queue feedback on both of
	// this link's directions (each direction keeps its own queue
	// state and random stream). Nil keeps pure tail-drop, which
	// replays pre-RED histories bit-for-bit. Bottleneck-tagged links
	// must agree on RED parameters like they agree on rate and depth.
	RED *REDSpec
	// Qdisc selects both directions' egress queueing discipline:
	// QdiscFIFO (the default; "" resolves to it) or QdiscDRR.
	// Bottleneck-tagged links must agree on the discipline and its
	// quantum. DRR needs a finite-rate wire (an infinite-rate pipe
	// has no queue to schedule), so it rejects UnlimitedPPS.
	Qdisc string
	// QuantumBytes is DRR's per-flow byte quantum; zero selects
	// DefaultQuantumBytes. Only meaningful with Qdisc QdiscDRR.
	QuantumBytes uint64
	// Flap, when non-nil, arms outage windows on the forward (From→To)
	// direction; RevFlap on the reverse. Flapped links cannot share a
	// Bottleneck pipe (a shared wire cannot take per-link outages).
	Flap    *FlapSpec
	RevFlap *FlapSpec
}

// REDSpec parameterises one pipe's random-early-detection policy.
// When a frame would queue q deep (in serialisation slots) behind
// earlier frames:
//
//   - q < MinDepth: carried unmolested;
//   - MinDepth <= q < MaxDepth: marked-or-dropped with probability
//     ramping linearly from ~0 up to MaxPct%;
//   - q >= MaxDepth: always marked-or-dropped.
//
// An ECN-capable frame (Frame.ECN) is marked — CE set, still carried
// — so an ack-paced sender can back off without losing the frame;
// anything else is early-dropped. The coin flips come from the
// pipe's own seeded splitmix64 stream, so histories stay a pure
// function of the Config. The hard QueueDepth tail-drop bound still
// applies above all of this.
type REDSpec struct {
	// MinDepth and MaxDepth are the early-feedback thresholds in
	// queue slots; MinDepth must be < MaxDepth, and MaxDepth at most
	// the link's resolved QueueDepth.
	MinDepth, MaxDepth uint64
	// MaxPct is the mark/drop probability (percent, 1..100) reached
	// as the queue grows to MaxDepth.
	MaxPct uint64
	// Weight, when nonzero, replaces the instantaneous queue depth
	// with an EWMA estimate before the thresholds apply: every
	// offered frame folds its depth observation in as
	// avg += (q - avg) / 2^Weight (16.16 fixed point), so transient
	// bursts no longer trip early feedback while sustained congestion
	// still does — classic RED averaging. Zero keeps the
	// instantaneous depth, which replays pre-EWMA histories
	// bit-for-bit. Weight is capped at 16.
	Weight uint64
}

// validate checks a RED spec against its link's resolved queue depth.
func (r *REDSpec) validate(depth uint64) error {
	if r.MinDepth >= r.MaxDepth {
		return fmt.Errorf("RED MinDepth %d must be < MaxDepth %d", r.MinDepth, r.MaxDepth)
	}
	if r.MaxDepth > depth {
		return fmt.Errorf("RED MaxDepth %d exceeds queue depth %d", r.MaxDepth, depth)
	}
	if r.MaxPct == 0 || r.MaxPct > 100 {
		return fmt.Errorf("RED MaxPct %d must be in 1..100", r.MaxPct)
	}
	if r.Weight > 16 {
		return fmt.Errorf("RED Weight %d exceeds 16 (the average would adapt too slowly to ever gate)", r.Weight)
	}
	return nil
}

// RouteSpec installs one static routing-table entry: on machine On,
// frames addressed to machine Dst leave through On's link to the
// directly connected neighbor Via. Direct-neighbor routes are
// installed automatically from Links; RouteSpecs express the
// multi-hop paths behind routers.
type RouteSpec struct {
	On, Dst, Via int
}

// SharedSwapSpec declares that one machine (Host) physically owns the
// swap device that the Clients mount remotely: all their disks share
// one occupancy channel (I/O contends for the same spindle), and each
// client page I/O additionally bills the host — a NIC rx interrupt
// plus ServiceUs of swap-server work at the I/O's completion — to
// whichever task is then current there. This is the cross-machine
// exception-flood substrate: a memory hog on a neighbor machine
// pressures the shared swap while the victim is billed on the host.
//
// Swap request frames are injected into the host NIC directly rather
// than traversing a declared Link: they see no wire serialisation,
// queue drops, or sender-side tx billing. The shared device-occupancy
// channel is what gates swap throughput; a lossy swap transport would
// need request/retry semantics and is future work.
type SharedSwapSpec struct {
	Host    int
	Clients []int
	// ServiceUs is the host-side CPU service per remote page; zero
	// selects DefaultSwapServiceUs.
	ServiceUs uint64
}

// Config assembles a Cluster.
type Config struct {
	Machines []MachineSpec
	Links    []LinkSpec
	// Routes are static multi-hop routing-table entries on top of the
	// automatic direct-neighbor routes.
	Routes []RouteSpec
	// SharedSwap, when non-nil, couples machines' swap devices into
	// one physically shared device hosted by one machine.
	SharedSwap *SharedSwapSpec
	// MaxCycles bounds total virtual time as a runaway guard; zero
	// selects one virtual hour.
	MaxCycles sim.Cycles
}

// ErrStalled is returned by Run when unfinished machines remain but
// none can ever make progress: every remaining task is blocked on
// network input (NetRxWait, wait-forever) and no frame is in flight.
var ErrStalled = errors.New("cluster: unfinished machines but no machine has pending work")

// pipe is one direction's serialisation and queue state. Links
// declared with the same Bottleneck tag share one pipe for their
// forward directions. rng perturbs per-frame service time when the
// wire is the binding constraint (variable frame sizes); it is seeded
// from the cluster seed and the pipe's declaration position, so
// histories stay a pure function of the Config.
//
// A pipe runs one of two engines. FIFO (the default) is the virtual
// horizon model: lastArrival tracks the wire's committed tail and an
// offered frame either rides it or tail-drops — no frame is ever
// held back, so the sender learns carry/drop synchronously and
// histories replay the pre-qdisc model bit-for-bit. DRR holds a real
// per-flow backlog (drr non-nil): offered frames park in
// deficit-round-robin queues and depart as the wire serves them, one
// service-time event at a time, with the kick timer on the home
// machine draining whatever the senders' own offers do not.
type pipe struct {
	gap         sim.Cycles // serialisation spacing per minimum-frame slot at wire capacity; 0 = infinite rate
	depth       uint64     // queue bound in minimum-frame slots
	red         *REDSpec   // nil: pure tail-drop
	lastArrival sim.Cycles
	rng         *sim.Rand
	avgFP       uint64 // EWMA queue estimate, 16.16 fixed point (RED Weight > 0)

	// Flap schedule in cycles (flapDown 0: never down). flapPeriod 0
	// with flapDown armed means one outage window only.
	flapFirst  sim.Cycles
	flapDown   sim.Cycles
	flapPeriod sim.Cycles

	// DRR engine state (nil drr selects the FIFO horizon above).
	drr         *device.DRR
	quantum     uint64
	home        *device.NIC // machine whose event queue runs the kick timer
	byTag       []*Link     // queued-entry tag -> owning link
	busyUntil   sim.Cycles  // wire committed through here
	commitClock sim.Cycles  // monotone max of observed offer/kick times
	kickArmed   bool
	kickFire    func()

	// id is the pipe's position in the cluster's wiring-order pipe
	// table — the restore tag stamped on its "pipe-service" events, so
	// a checkpoint restore can re-point a pending kick at the rebuilt
	// pipe's kickFire.
	id uint64
}

// svcBytes reports the serialisation time of wb wire bytes: the
// per-slot gap scaled by the frame's occupancy, so a minimum-size (or
// zero-Bytes) frame costs exactly one gap — the per-frame slot model,
// preserved bit-for-bit — and an MTU frame costs ~18 of them.
func (p *pipe) svcBytes(wb uint64) sim.Cycles {
	if wb == device.MinFrameBytes {
		return p.gap
	}
	return sim.Cycles(uint64(p.gap) * wb / device.MinFrameBytes)
}

// jitterSvc perturbs one frame's service time deterministically
// (variable header/framing overhead; also keeps a saturated pipe off
// an exact modular grid that could phase-lock with the receiver's
// timer ticks).
func (p *pipe) jitterSvc(svc sim.Cycles) sim.Cycles {
	g := p.rng.Jitter(svc, svc/4+1)
	if g == 0 {
		g = 1
	}
	return g
}

// redSample feeds one queue-depth observation (in slots) to the RED
// estimator and returns the depth the thresholds gate on: the
// instantaneous sample itself at Weight zero (bit-compatible with the
// pre-EWMA policy), otherwise the running EWMA.
func (p *pipe) redSample(q uint64) uint64 {
	r := p.red
	if r == nil || r.Weight == 0 {
		return q
	}
	qFP := q << 16
	if qFP >= p.avgFP {
		p.avgFP += (qFP - p.avgFP) >> r.Weight
	} else {
		p.avgFP -= (p.avgFP - qFP) >> r.Weight
	}
	return p.avgFP >> 16
}

// redHit decides whether a frame whose queue estimate is q takes
// early feedback, drawing from the pipe's deterministic stream only
// when the policy is armed and the estimate has reached MinDepth.
func (p *pipe) redHit(q uint64) bool {
	r := p.red
	if r == nil || q < r.MinDepth {
		return false
	}
	if q >= r.MaxDepth {
		return true
	}
	// Probability ramps linearly over [MinDepth, MaxDepth) up to
	// MaxPct%, evaluated in 1/65536 units with one draw per decision.
	prob := (q - r.MinDepth + 1) * r.MaxPct * 65536 / ((r.MaxDepth - r.MinDepth) * 100)
	return uint64(p.rng.Int63n(65536)) < prob
}

// applyFlap arms one direction's outage schedule, converting the
// spec's microsecond windows to cycles.
func (p *pipe) applyFlap(fs *FlapSpec, perUs sim.Cycles) {
	if fs == nil {
		return
	}
	p.flapFirst = sim.Cycles(fs.FirstDownUs) * perUs
	p.flapDown = sim.Cycles(fs.DownUs) * perUs
	if fs.UpUs > 0 {
		p.flapPeriod = p.flapDown + sim.Cycles(fs.UpUs)*perUs
	}
}

// flapDefer reports the first instant at or after t when the wire is
// up — t itself when no outage window covers it.
func (p *pipe) flapDefer(t sim.Cycles) sim.Cycles {
	if p.flapDown == 0 || t < p.flapFirst {
		return t
	}
	off := t - p.flapFirst
	if p.flapPeriod > 0 {
		off %= p.flapPeriod
	} else if off >= p.flapDown {
		return t
	}
	if off < p.flapDown {
		return t + (p.flapDown - off)
	}
	return t
}

// register adds a link to a DRR pipe's tag table so queued entries
// can be delivered and accounted on the link they were offered to.
func (p *pipe) register(l *Link) uint32 {
	p.byTag = append(p.byTag, l)
	return uint32(len(p.byTag) - 1)
}

// Link is one direction of a network path between two machines' NICs.
// Send is only safe from code that runs while the cluster advances
// the sending machine (guest routines, event callbacks) or between
// rounds — the same single-driver discipline every machine API has.
type Link struct {
	from, to *kernel.Machine
	latency  sim.Cycles
	pipe     *pipe
	rev      *Link
	tag      uint32 // this link's entry tag in a DRR pipe's table
	// downAt is the destination's scheduled CrashAt: a frame arriving
	// at or after it lands on a dead machine and is dropped at the
	// wire instead (the sender learns synchronously, the accounting
	// identity holds through the crash). Cleared when the destination
	// restarts. Zero: no crash scheduled.
	downAt sim.Cycles

	sent      uint64
	delivered uint64
	dropped   uint64
	queued    uint64
	marked    uint64
	earlyDrop uint64
}

// Sent reports frames offered to this direction since construction.
func (l *Link) Sent() uint64 { return l.sent }

// Delivered reports frames handed to the destination NIC's event
// queue. A frame still in flight when the destination machine halts
// is lost there; that window is bounded by one link latency.
func (l *Link) Delivered() uint64 { return l.delivered }

// Dropped reports frames not delivered: tail-dropped at the wire's
// queue, RED-early-dropped, shed by DRR's buffer-steal policy, or
// offered after the destination machine had finished.
func (l *Link) Dropped() uint64 { return l.dropped }

// Queued reports frames currently parked in a DRR pipe's backlog,
// accepted but not yet served by the wire (always zero on a FIFO
// direction, which commits every carried frame at offer time). At
// any instant Sent = Delivered + Dropped + Queued; a run that drains
// its flows ends with Queued zero and the classic two-term identity.
func (l *Link) Queued() uint64 { return l.queued }

// Marked reports ECN-capable frames this direction carried with a
// fresh CE congestion mark from its RED policy.
func (l *Link) Marked() uint64 { return l.marked }

// EarlyDropped reports the subset of Dropped that RED discarded
// before the hard tail-drop bound (non-ECN frames under congestion).
func (l *Link) EarlyDropped() uint64 { return l.earlyDrop }

// Latency reports the one-way propagation delay in cycles.
func (l *Link) Latency() sim.Cycles { return l.latency }

// Reverse returns the opposite direction of this link.
func (l *Link) Reverse() *Link { return l.rev }

// Send offers one addressed frame to this direction.
//
// On a FIFO pipe a carried frame arrives at the destination NIC one
// latency after the sender's current virtual time — no earlier than
// one byte-accurate serialisation time (the frame's wire bytes at
// the pipe's rate; one gap-slot for zero-Bytes frames) after the
// previous frame on the same pipe — and raises one receive interrupt
// there, parking the frame in the destination kernel's receive
// buffer. A frame that would queue QueueDepth or more gap-slots
// deep, or whose destination machine has already finished, is
// tail-dropped instead; with RED armed, a frame whose queue estimate
// (instantaneous, or EWMA with Weight set) passes MinDepth may take
// early feedback first — a CE mark if it is ECN-capable, an early
// drop otherwise. Sent = Delivered + Dropped always holds on FIFO.
//
// On a DRR pipe an accepted frame parks in its flow's queue and
// departs when the round-robin wire serves it, so Send reporting
// true means admitted, not yet delivered (Sent = Delivered + Dropped
// + Queued). Under buffer pressure the fattest flow's freshest
// backlog is shed to admit the newcomer — unless the newcomer's own
// flow is the hog, in which case it is the drop.
func (l *Link) Send(f Frame) bool {
	l.sent++
	if l.to.Closed() {
		l.dropped++
		return false
	}
	if l.pipe.drr != nil {
		return l.pipe.sendDRR(l, f)
	}
	now := l.from.Clock().Now()
	if l.pipe.flapDefer(now) > now {
		// The wire is in a flap-down window: a FIFO direction has no
		// backlog to hold the frame in, so the offer is a loss.
		l.dropped++
		return false
	}
	arrive := now + l.latency
	if p := l.pipe; p.gap > 0 {
		svc := p.svcBytes(device.WireBytes(f))
		if floor := p.lastArrival + svc; arrive < floor {
			queued := uint64((floor - arrive) / p.gap)
			if queued >= p.depth {
				l.dropped++
				return false
			}
			if p.redHit(p.redSample(queued)) {
				if !f.ECN {
					l.dropped++
					l.earlyDrop++
					return false
				}
				if !f.CE {
					l.marked++
				}
				f.CE = true
			}
			// The wire is the binding constraint: per-frame service
			// time varies with frame size, so perturb the nominal
			// service time (deterministically). Without this a
			// saturated pipe delivers on an exact modular grid that
			// can phase-lock with the receiver's timer-tick grid and
			// bias what the tick sampler observes. Frames never
			// arrive before their own flight time or out of order.
			if jittered := p.lastArrival + p.jitterSvc(svc); jittered > arrive {
				arrive = jittered
			}
		} else {
			// Uncongested offer: the EWMA estimator still observes the
			// empty queue so the average decays between bursts.
			p.redSample(0)
		}
		p.lastArrival = arrive
	}
	if l.downAt > 0 && arrive >= l.downAt {
		// The frame would land after the destination's scheduled
		// crash: it occupied the wire but arrives at a dead machine.
		l.dropped++
		return false
	}
	l.delivered++
	l.to.NIC().InjectRxFrame(arrive, f)
	return true
}

// deliver hands a wire-committed frame to the destination NIC at its
// departure time plus this link's propagation delay — or counts a
// drop when the destination machine has since finished.
func (l *Link) deliver(depart sim.Cycles, f Frame) {
	arrive := depart + l.latency
	if l.to.Closed() || (l.downAt > 0 && arrive >= l.downAt) {
		l.dropped++
		return
	}
	l.delivered++
	l.to.NIC().InjectRxFrame(arrive, f)
}

// sendDRR offers one frame to a DRR pipe at the sending machine's
// current virtual time. Like the Bottleneck sharing model, offers
// reach the pipe in lockstep machine order rather than strict
// virtual-time order, so the commit clock is the monotone maximum of
// observed offer times and a frame offered "in the past" (bounded by
// one lookahead window) queues as if it arrived at the frontier.
func (p *pipe) sendDRR(l *Link, f Frame) bool {
	if now := l.from.Clock().Now(); now > p.commitClock {
		p.commitClock = now
	}
	p.drain()
	wb := device.WireBytes(f)
	if p.drr.Len() == 0 && p.busyUntil <= p.commitClock {
		start := p.busyUntil
		if now := l.from.Clock().Now(); now > start {
			start = now
		}
		if p.flapDefer(start) == start {
			// Wire idle and up: store-and-forward the frame
			// immediately. The EWMA estimator still observes the empty
			// queue (as the FIFO path does) so the average decays
			// between bursts.
			p.redSample(0)
			p.busyUntil = start + p.jitterSvc(p.svcBytes(wb))
			l.deliver(p.busyUntil, f)
			return true
		}
		// Flap-down window: fall through and park the frame in the
		// backlog; drain resumes service when the window ends.
	}
	// Wire busy: admit under the buffer policy. Capacity is QueueDepth
	// minimum-frame slots' worth of bytes; under pressure the fattest
	// flow sheds its freshest backlog until the newcomer fits.
	capBytes := p.depth * device.MinFrameBytes
	for p.drr.Bytes()+wb > capBytes {
		hog, ok := p.drr.LongestFlow()
		if !ok || hog == f.Flow {
			l.dropped++
			return false
		}
		e, _ := p.drr.StealFrom(hog)
		el := p.byTag[e.Tag]
		el.queued--
		el.dropped++
	}
	// RED gates on the backlog ahead of the newcomer, in slots.
	if p.redHit(p.redSample(p.drr.Bytes() / device.MinFrameBytes)) {
		if !f.ECN {
			l.dropped++
			l.earlyDrop++
			return false
		}
		if !f.CE {
			l.marked++
		}
		f.CE = true
	}
	p.drr.Enqueue(device.QdiscEntry{F: f, Cost: wb, Tag: l.tag})
	l.queued++
	p.armKick()
	return true
}

// drain commits backlogged frames onto the wire in DRR order for as
// long as the committed horizon trails the commit clock: each
// committed frame occupies the wire for its jittered byte-accurate
// service time and is delivered on its own link at departure.
func (p *pipe) drain() {
	for p.drr.Len() > 0 {
		// A flap-down window suspends service: the committed horizon
		// jumps to the window's end and the backlog waits there.
		if up := p.flapDefer(p.busyUntil); up > p.busyUntil {
			p.busyUntil = up
		}
		if p.busyUntil > p.commitClock {
			return
		}
		e, _ := p.drr.Dequeue()
		el := p.byTag[e.Tag]
		el.queued--
		p.busyUntil += p.jitterSvc(p.svcBytes(e.Cost))
		el.deliver(p.busyUntil, e.F)
	}
}

// armKick schedules the pipe's service timer at the wire's committed
// horizon on the home machine (the first declared link's receiver),
// so backlog keeps draining — one frame per firing — after the
// senders go quiet. Without it, queued frames would wait for the
// next offer that may never come.
func (p *pipe) armKick() {
	if p.kickArmed || p.drr.Len() == 0 {
		return
	}
	p.kickArmed = true
	// A flap-down window pushes the kick to the window's end: the
	// timer is what revives a parked backlog once senders go quiet.
	p.home.ScheduleEgressTagged(p.flapDefer(p.busyUntil), p.id, p.kickFire)
}

// Cluster is a set of machines advancing in lockstep plus the links
// between them.
type Cluster struct {
	machines  []*kernel.Machine
	names     []string
	service   []bool
	links     []*Link
	done      []bool
	lookahead sim.Cycles
	maxCycles sim.Cycles

	// Crash/restart state. specs keeps the original declarations so a
	// restart can rebuild its machine; txRoutes and routeTab record
	// the wiring (transmit routes in registration order, the
	// post-wiring routing table) so a fresh incarnation is rewired
	// identically. crashAt/restartAt are the pending schedule (zero:
	// none); prior holds retired incarnations, oldest first.
	specs     []MachineSpec
	txRoutes  [][]func(Frame) bool
	routeTab  []map[Addr]int
	crashAt   []sim.Cycles
	restartAt []sim.Cycles
	crashed   []bool
	prior     [][]*kernel.Machine

	// Checkpoint support. cfg keeps the whole declaration (a restore
	// rebuilds the wiring from it); pipes is every distinct pipe in
	// wiring order, indexed by pipe.id; swapFire is the shared-swap
	// host's reusable IRQ-work callback, late-bound so a restored
	// machine's pending "irq-work" events can resolve to it.
	cfg      Config
	pipes    []*pipe
	swapFire func()
}

// newPipe builds one direction's serialisation state from a spec.
// seed drives the pipe's service-time perturbation and RED coin
// flips; qdisc/quantum select the queue engine, and home is the
// machine whose event queue runs a DRR pipe's service timer.
func newPipe(freq sim.Hz, pps, depth uint64, red *REDSpec, seed int64, qdisc string, quantum uint64, home *device.NIC) *pipe {
	if pps == 0 {
		pps = DefaultLinkPPS
	}
	if depth == 0 {
		depth = DefaultQueueDepth
	}
	var gap sim.Cycles
	if pps != UnlimitedPPS {
		gap = sim.Cycles(uint64(freq) / pps)
		if gap == 0 {
			gap = 1
		}
	}
	p := &pipe{gap: gap, depth: depth, red: red, rng: sim.NewRand(seed)}
	if qdisc == QdiscDRR {
		if quantum == 0 {
			quantum = DefaultQuantumBytes
		}
		p.drr = device.NewDRR(quantum)
		p.quantum = quantum
		p.home = home
		p.kickFire = func() {
			p.kickArmed = false
			if now := p.home.Now(); now > p.commitClock {
				p.commitClock = now
			}
			p.drain()
			p.armKick()
		}
	}
	return p
}

// AddrOf reports machine i's fabric address (machine i is addressed
// i+1; zero is reserved).
func (c *Cluster) AddrOf(i int) Addr {
	if i < 0 || i >= len(c.machines) {
		panic(fmt.Sprintf("cluster: AddrOf(%d) out of range: cluster has %d machines", i, len(c.machines)))
	}
	return Addr(i + 1)
}

// machineDesc names machine i for error messages.
func (c *Cluster) machineDesc(i int) string {
	if c.names[i] != "" {
		return fmt.Sprintf("machine %d (%s)", i, c.names[i])
	}
	return fmt.Sprintf("machine %d", i)
}

// shellFrom validates a Config and builds the Cluster shell — every
// per-machine array sized and filled, no machines yet. New populates
// the machine slots with fresh kernels; Restore populates them from a
// checkpoint image. The returned freq/perUs are the cluster timebase.
func shellFrom(cfg Config) (c *Cluster, freq sim.Hz, perUs sim.Cycles, err error) {
	if len(cfg.Machines) == 0 {
		return nil, 0, 0, fmt.Errorf("cluster: no machines")
	}
	// The image-reuse path keeps a ClusterImage alive across restores,
	// so the shell's view of the declaration must not alias caller
	// slices that might be mutated between runs.
	cfg.Machines = append([]MachineSpec(nil), cfg.Machines...)
	cfg.Links = append([]LinkSpec(nil), cfg.Links...)
	cfg.Routes = append([]RouteSpec(nil), cfg.Routes...)
	c = &Cluster{
		machines:  make([]*kernel.Machine, len(cfg.Machines)),
		names:     make([]string, len(cfg.Machines)),
		service:   make([]bool, len(cfg.Machines)),
		done:      make([]bool, len(cfg.Machines)),
		maxCycles: cfg.MaxCycles,
		specs:     cfg.Machines,
		txRoutes:  make([][]func(Frame) bool, len(cfg.Machines)),
		routeTab:  make([]map[Addr]int, len(cfg.Machines)),
		crashAt:   make([]sim.Cycles, len(cfg.Machines)),
		restartAt: make([]sim.Cycles, len(cfg.Machines)),
		crashed:   make([]bool, len(cfg.Machines)),
		prior:     make([][]*kernel.Machine, len(cfg.Machines)),
		cfg:       cfg,
	}
	freq = cfg.Machines[0].Config.CPUHz
	if freq == 0 {
		freq = sim.DefaultCPUHz
	}
	if c.maxCycles == 0 {
		c.maxCycles = sim.Cycles(freq) * 3600
	}
	seenNames := make(map[string]int)
	for i, ms := range cfg.Machines {
		f := ms.Config.CPUHz
		if f == 0 {
			f = sim.DefaultCPUHz
		}
		if f != freq {
			return nil, 0, 0, fmt.Errorf("cluster: machine %d runs at %d Hz, machine 0 at %d Hz (one timebase required)", i, f, freq)
		}
		if ms.Name != "" {
			if prev, dup := seenNames[ms.Name]; dup {
				return nil, 0, 0, fmt.Errorf("cluster: machines %d and %d both named %q (names must be unique)", prev, i, ms.Name)
			}
			seenNames[ms.Name] = i
		}
		if ms.RestartAfter > 0 && ms.CrashAt == 0 {
			return nil, 0, 0, fmt.Errorf("cluster: machine %d sets RestartAfter without CrashAt (nothing to restart)", i)
		}
		if ms.CrashAt > 0 && cfg.SharedSwap != nil {
			return nil, 0, 0, fmt.Errorf("cluster: machine %d arms CrashAt under a shared swap device (crash/restart does not compose with cross-machine swap billing)", i)
		}
		c.crashAt[i] = ms.CrashAt
		c.names[i] = ms.Name
		c.service[i] = ms.Service
	}
	perUs = sim.Cycles(uint64(freq) / 1_000_000)
	if perUs == 0 {
		perUs = 1
	}
	return c, freq, perUs, nil
}

// New builds the machines, assigns each a fabric address (machine i
// gets Addr(i+1)), wires the links (registering both directions as
// NIC transmit routes on their sending machines, in Config.Links
// order: each link contributes its forward direction to From's route
// list, then its reverse direction to To's, installing
// direct-neighbor routing-table entries as it goes), applies static
// Routes, couples any shared swap, and runs every Boot routine. On
// any error the already-built machines are shut down.
func New(cfg Config) (*Cluster, error) {
	c, freq, perUs, err := shellFrom(cfg)
	if err != nil {
		return nil, err
	}
	for i, ms := range c.cfg.Machines {
		c.machines[i] = kernel.New(ms.Config)
		c.machines[i].NIC().SetAddr(Addr(i + 1))
	}
	if err := c.wire(freq, perUs, false); err != nil {
		return nil, err
	}
	for i, ms := range c.cfg.Machines {
		if ms.Boot == nil {
			continue
		}
		if err := ms.Boot(c, c.machines[i]); err != nil {
			c.Shutdown()
			return nil, fmt.Errorf("cluster: boot machine %d: %w", i, err)
		}
	}
	return c, nil
}

// wire builds every link, pipe, and route from the stored Config onto
// the current machine set, snapshots the routing table, computes the
// lookahead, and couples any shared swap. It is the common back half
// of New and the checkpoint Restore path: on the restore path
// (restored true) the machines already carry their addresses, tables,
// and disk-channel horizons, so wiring only re-registers the transmit
// closures (in the identical order, preserving route indices) and
// re-points the shared swap channel instead of creating a fresh one.
// On any error the already-built machines are shut down.
func (c *Cluster) wire(freq sim.Hz, perUs sim.Cycles, restored bool) error {
	cfg := c.cfg
	shared := make(map[string]*pipe)
	// Every distinct pipe is registered in wiring order; its position
	// is its checkpoint identity (pipe.id), the restore tag its
	// "pipe-service" kick events carry. Bottleneck-shared pipes are
	// registered once, at their first declaring link.
	seenPipes := make(map[*pipe]bool)
	addPipe := func(p *pipe) {
		if seenPipes[p] {
			return
		}
		seenPipes[p] = true
		p.id = uint64(len(c.pipes))
		c.pipes = append(c.pipes, p)
	}
	// nbrRoute[on] maps a directly connected neighbor index to the
	// first route on machine `on` that reaches it — what static
	// RouteSpecs resolve Via through.
	nbrRoute := make([]map[int]int, len(c.machines))
	addRoute := func(on, neighbor, route int) {
		if nbrRoute[on] == nil {
			nbrRoute[on] = make(map[int]int)
		}
		if _, ok := nbrRoute[on][neighbor]; !ok {
			nbrRoute[on][neighbor] = route
		}
		nic := c.machines[on].NIC()
		if _, ok := nic.RouteTo(Addr(neighbor + 1)); !ok {
			nic.SetRoute(Addr(neighbor+1), route)
		}
	}
	for li, ls := range cfg.Links {
		if ls.From < 0 || ls.From >= len(c.machines) || ls.To < 0 || ls.To >= len(c.machines) {
			c.Shutdown()
			return fmt.Errorf("cluster: link %d connects %d->%d, but machine indices range over 0..%d", li, ls.From, ls.To, len(c.machines)-1)
		}
		if ls.From == ls.To {
			c.Shutdown()
			return fmt.Errorf("cluster: link %d is a self-link on %s (loopback is not a wire)", li, c.machineDesc(ls.From))
		}
		qdisc := ls.Qdisc
		switch qdisc {
		case "":
			qdisc = QdiscFIFO
		case QdiscFIFO, QdiscDRR:
		default:
			c.Shutdown()
			return fmt.Errorf("cluster: link %d selects unknown qdisc %q (have %q, %q)", li, ls.Qdisc, QdiscFIFO, QdiscDRR)
		}
		if qdisc != QdiscDRR && ls.QuantumBytes != 0 {
			c.Shutdown()
			return fmt.Errorf("cluster: link %d sets QuantumBytes %d without Qdisc %q (FIFO has no per-flow quantum)", li, ls.QuantumBytes, QdiscDRR)
		}
		if qdisc == QdiscDRR && ls.PacketsPerSecond == UnlimitedPPS {
			c.Shutdown()
			return fmt.Errorf("cluster: link %d arms qdisc %q on an infinite-rate wire (no queue to schedule)", li, QdiscDRR)
		}
		if (ls.Flap != nil || ls.RevFlap != nil) && ls.Bottleneck != "" {
			c.Shutdown()
			return fmt.Errorf("cluster: link %d arms flap windows on bottleneck %q (a shared pipe cannot take per-link outages)", li, ls.Bottleneck)
		}
		for _, fs := range []*FlapSpec{ls.Flap, ls.RevFlap} {
			if fs != nil && fs.DownUs == 0 {
				c.Shutdown()
				return fmt.Errorf("cluster: link %d flap window has DownUs 0 (an outage must have a length)", li)
			}
		}
		latUs := ls.LatencyUs
		if latUs == 0 {
			latUs = DefaultLatencyUs
		}
		pipeSeed := cfg.Machines[0].Config.Seed*1_000_003 + int64(li)*2
		fwdPipe := newPipe(freq, ls.PacketsPerSecond, ls.QueueDepth, ls.RED, pipeSeed, qdisc, ls.QuantumBytes, c.machines[ls.To].NIC())
		if ls.RED != nil {
			if err := ls.RED.validate(fwdPipe.depth); err != nil {
				c.Shutdown()
				return fmt.Errorf("cluster: link %d: %w", li, err)
			}
		}
		if ls.Bottleneck != "" {
			if b, ok := shared[ls.Bottleneck]; ok {
				// Compare resolved parameters, so an explicit value and
				// the default it resolves to are not a false mismatch.
				if b.gap != fwdPipe.gap || b.depth != fwdPipe.depth || !redEqual(b.red, fwdPipe.red) ||
					(b.drr != nil) != (fwdPipe.drr != nil) || b.quantum != fwdPipe.quantum {
					c.Shutdown()
					return fmt.Errorf("cluster: link %d bottleneck %q resolves to gap=%d depth=%d red=%v drr=%v quantum=%d, earlier link resolved gap=%d depth=%d red=%v drr=%v quantum=%d",
						li, ls.Bottleneck, fwdPipe.gap, fwdPipe.depth, fwdPipe.red, fwdPipe.drr != nil, fwdPipe.quantum,
						b.gap, b.depth, b.red, b.drr != nil, b.quantum)
				}
				fwdPipe = b
			} else {
				shared[ls.Bottleneck] = fwdPipe
			}
		}
		fwd := &Link{
			from:    c.machines[ls.From],
			to:      c.machines[ls.To],
			latency: sim.Cycles(latUs) * perUs,
			pipe:    fwdPipe,
		}
		rev := &Link{
			from:    c.machines[ls.To],
			to:      c.machines[ls.From],
			latency: fwd.latency,
			pipe:    newPipe(freq, ls.PacketsPerSecond, ls.QueueDepth, ls.RED, pipeSeed+1, qdisc, ls.QuantumBytes, c.machines[ls.From].NIC()),
		}
		fwd.rev, rev.rev = rev, fwd
		fwd.pipe.applyFlap(ls.Flap, perUs)
		rev.pipe.applyFlap(ls.RevFlap, perUs)
		fwd.downAt = cfg.Machines[ls.To].CrashAt
		rev.downAt = cfg.Machines[ls.From].CrashAt
		addPipe(fwdPipe)
		addPipe(rev.pipe)
		if fwdPipe.drr != nil {
			fwd.tag = fwdPipe.register(fwd)
		}
		if rev.pipe.drr != nil {
			rev.tag = rev.pipe.register(rev)
		}
		addRoute(ls.From, ls.To, c.addTxRoute(ls.From, fwd.Send))
		addRoute(ls.To, ls.From, c.addTxRoute(ls.To, rev.Send))
		c.links = append(c.links, fwd)
	}
	for ri, rs := range cfg.Routes {
		if err := c.installRoute(rs, nbrRoute); err != nil {
			c.Shutdown()
			return fmt.Errorf("cluster: route %d: %w", ri, err)
		}
	}
	// Snapshot every machine's post-wiring routing table so a
	// restarted incarnation can be rewired identically.
	for i, m := range c.machines {
		tab := make(map[Addr]int)
		for j := range c.machines {
			if r, ok := m.NIC().RouteTo(Addr(j + 1)); ok {
				tab[Addr(j+1)] = r
			}
		}
		c.routeTab[i] = tab
	}
	// The lookahead is the shortest cross-machine signal flight time:
	// one round may only span a window narrower than it. With no
	// links, machines are independent; a tick-sized window keeps
	// rounds cheap without any correctness constraint.
	c.lookahead = 0
	for _, l := range c.links {
		if c.lookahead == 0 || l.latency < c.lookahead {
			c.lookahead = l.latency
		}
	}
	if c.lookahead == 0 {
		c.lookahead = sim.Cycles(uint64(freq) / kernel.DefaultHZ)
	}
	if ss := cfg.SharedSwap; ss != nil {
		if err := c.wireSharedSwap(ss, freq, perUs, restored); err != nil {
			c.Shutdown()
			return err
		}
	}
	return nil
}

// addTxRoute registers a link direction's Send as a transmit route on
// machine on's NIC, recording it so a restarted incarnation can replay
// the registrations in the same order (route indices must survive a
// reboot: the routing-table snapshot refers to them).
func (c *Cluster) addTxRoute(on int, send func(Frame) bool) int {
	c.txRoutes[on] = append(c.txRoutes[on], send)
	return c.machines[on].NIC().AddTxRoute(send)
}

// redEqual compares two RED resolutions for bottleneck agreement.
func redEqual(a, b *REDSpec) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// installRoute validates one static route and writes the routing-
// table entry on its machine.
func (c *Cluster) installRoute(rs RouteSpec, nbrRoute []map[int]int) error {
	n := len(c.machines)
	if rs.On < 0 || rs.On >= n || rs.Dst < 0 || rs.Dst >= n || rs.Via < 0 || rs.Via >= n {
		return fmt.Errorf("{On:%d Dst:%d Via:%d} references machines outside 0..%d", rs.On, rs.Dst, rs.Via, n-1)
	}
	if rs.Dst == rs.On {
		return fmt.Errorf("%s routes to itself", c.machineDesc(rs.On))
	}
	route, ok := nbrRoute[rs.On][rs.Via]
	if !ok {
		return fmt.Errorf("%s has no link to via-%s", c.machineDesc(rs.On), c.machineDesc(rs.Via))
	}
	nic := c.machines[rs.On].NIC()
	if existing, ok := nic.RouteTo(Addr(rs.Dst + 1)); ok && existing != route {
		return fmt.Errorf("%s already routes to %s via a different next hop", c.machineDesc(rs.On), c.machineDesc(rs.Dst))
	}
	nic.SetRoute(Addr(rs.Dst+1), route)
	return nil
}

// wireSharedSwap couples the spec'd machines' disks through one
// shared occupancy channel and bills the host for every client I/O.
// On the checkpoint-restore path (restored true) the host's disk
// already carries the shared channel's horizons from the image (every
// sharer held the same channel, so the host's clone is authoritative);
// the clients are re-pointed at it instead of a fresh idle channel.
func (c *Cluster) wireSharedSwap(ss *SharedSwapSpec, freq sim.Hz, perUs sim.Cycles, restored bool) error {
	if ss.Host < 0 || ss.Host >= len(c.machines) {
		return fmt.Errorf("cluster: shared swap host %d out of range (%d machines)", ss.Host, len(c.machines))
	}
	if len(ss.Clients) == 0 {
		return fmt.Errorf("cluster: shared swap declares no clients")
	}
	seen := map[int]bool{ss.Host: true}
	host := c.machines[ss.Host]
	ch := host.Disk().Channel()
	if !restored {
		ch = device.NewDiskChannel()
		host.Disk().Share(ch)
	}
	svcUs := ss.ServiceUs
	if svcUs == 0 {
		svcUs = DefaultSwapServiceUs
	}
	svc := sim.Cycles(svcUs) * perUs
	// One reusable service callback per cluster: the per-I/O path
	// allocates nothing. It is also recorded on the cluster so a
	// checkpoint restore can re-point the host's pending "irq-work"
	// events at it.
	svcFire := host.IRQWork(device.IRQDisk, svc)
	c.swapFire = svcFire
	for _, ci := range ss.Clients {
		if ci < 0 || ci >= len(c.machines) {
			return fmt.Errorf("cluster: shared swap client %d out of range (%d machines)", ci, len(c.machines))
		}
		if seen[ci] {
			return fmt.Errorf("cluster: shared swap lists machine %d twice", ci)
		}
		seen[ci] = true
		cm := c.machines[ci]
		cm.Disk().Share(ch)
		cm.Disk().OnIO(func(complete sim.Cycles) {
			if host.Closed() {
				return
			}
			// The request frame's rx interrupt plus the swap server's
			// block-layer/copy/reply work land on the host at the
			// I/O's completion, billed to whichever task is current.
			// (Modeling simplification: swap request frames are
			// injected directly rather than traversing a Link, so
			// they see no wire serialisation, queue drops, or
			// sender-side tx billing — the device-occupancy channel
			// below is what gates swap throughput.)
			host.NIC().InjectRx(complete)
			host.ScheduleIRQWork(complete, svcFire)
		})
	}
	// Swap notifications fly one disk latency ahead at minimum; keep
	// the lockstep window comfortably inside that horizon.
	if dl := mem.DiskLatency(freq) / 2; c.lookahead > dl && dl > 0 {
		c.lookahead = dl
	}
	return nil
}

// Size reports the number of machines.
func (c *Cluster) Size() int { return len(c.machines) }

// Machine returns cluster member i. It panics with a descriptive
// message on an out-of-range index.
func (c *Cluster) Machine(i int) *kernel.Machine {
	if i < 0 || i >= len(c.machines) {
		panic(fmt.Sprintf("cluster: Machine(%d) out of range: cluster has %d machines (0..%d)", i, len(c.machines), len(c.machines)-1))
	}
	return c.machines[i]
}

// Name reports machine i's declared name ("" if unnamed).
func (c *Cluster) Name(i int) string {
	if i < 0 || i >= len(c.names) {
		panic(fmt.Sprintf("cluster: Name(%d) out of range: cluster has %d machines (0..%d)", i, len(c.names), len(c.names)-1))
	}
	return c.names[i]
}

// Link returns the forward direction of the i-th declared link. It
// panics with a descriptive message on an out-of-range index.
func (c *Cluster) Link(i int) *Link {
	if i < 0 || i >= len(c.links) {
		panic(fmt.Sprintf("cluster: Link(%d) out of range: cluster declares %d links (0..%d)", i, len(c.links), len(c.links)-1))
	}
	return c.links[i]
}

// Links reports the number of declared links.
func (c *Cluster) Links() int { return len(c.links) }

// Done reports whether machine i has finished (every task exited).
func (c *Cluster) Done(i int) bool { return c.done[i] }

// Now reports the earliest virtual time any machine still has to
// simulate — the cluster's lockstep frontier. With every machine
// finished it reports the latest machine clock instead.
func (c *Cluster) Now() sim.Cycles {
	var frontier sim.Cycles
	first := true
	for i, m := range c.machines {
		if c.done[i] {
			continue
		}
		if t := m.Clock().Now(); first || t < frontier {
			frontier, first = t, false
		}
	}
	if first {
		for _, m := range c.machines {
			if t := m.Clock().Now(); t > frontier {
				frontier = t
			}
		}
	}
	return frontier
}

// Run advances all machines in lockstep rounds until every machine's
// tasks have exited. On error (including a machine failure, and the
// ErrStalled case where every unfinished machine is blocked on
// network input with nothing in flight) the whole cluster is shut
// down.
func (c *Cluster) Run() error {
	for {
		st, err := c.round(0)
		if err != nil {
			return err
		}
		if st == roundAllDone {
			return nil
		}
	}
}

// RunUntil advances lockstep rounds until every machine has finished
// (returning true) or the cluster's next round would start at or past
// the virtual-time barrier `stop` (returning false). At a false
// return every machine stands quiesced at a common round boundary at
// or after stop — the state Snapshot captures — and a subsequent Run
// or RunUntil continues the same history the restored image replays.
//
// Slicing a run with RunUntil clamps round windows to the barrier, so
// the round structure — and therefore the exact interleaving of
// cross-machine event insertion — can differ from an unsliced Run of
// the same Config. A cluster history is a pure function of (Config,
// the sequence of barriers it was advanced through); two runs that
// share a prefix of barriers share that prefix of history.
func (c *Cluster) RunUntil(stop sim.Cycles) (bool, error) {
	for {
		st, err := c.round(stop)
		if err != nil {
			return false, err
		}
		switch st {
		case roundAllDone:
			return true, nil
		case roundPaused:
			return false, nil
		}
	}
}

// round outcomes.
const (
	roundRan     = iota // one lockstep round executed
	roundAllDone        // every machine has finished
	roundPaused         // stop barrier reached before the round ran
)

// round executes one lockstep round. With stop nonzero the round is
// clamped to the barrier: a round whose base has reached stop does
// not run (roundPaused), and a round spanning it ends exactly there.
// A window narrower than the lookahead is always safe — the lookahead
// is an upper bound on how far a round may reach, not a lower one.
func (c *Cluster) round(stop sim.Cycles) (int, error) {
	{
		// The barrier base: the earliest time any unfinished machine
		// can make progress on its own. A pending crash is scheduled
		// work even when the machine is blocked on network input — it
		// must die on time whether or not it would ever have run again
		// — and a crashed machine with a reboot pending has that
		// reboot as its next work. Without either clause a scheduled
		// failure on the barrier's min machine would wedge Run.
		var tmin sim.Cycles
		haveWork, allDone := false, true
		for i, m := range c.machines {
			if c.done[i] {
				if at := c.restartAt[i]; at > 0 {
					allDone = false
					if !haveWork || at < tmin {
						tmin = at
					}
					haveWork = true
				}
				continue
			}
			allDone = false
			at, ok := m.NextWorkAt()
			if ca := c.crashAt[i]; ca > 0 && (!ok || ca < at) {
				at, ok = ca, true
			}
			if !ok {
				continue // waiting for network input
			}
			if !haveWork || at < tmin {
				tmin = at
			}
			haveWork = true
		}
		if allDone {
			return roundAllDone, nil
		}
		if !haveWork {
			// Every unfinished machine is blocked on network input with
			// nothing in flight. If all of them are service machines
			// (daemons that wait for traffic forever), the fabric has
			// quiesced: retire them and complete. Anything else is a
			// genuine stall.
			allService := true
			for i := range c.machines {
				if !c.done[i] && !c.service[i] {
					allService = false
					break
				}
			}
			if allService {
				for i, m := range c.machines {
					if !c.done[i] {
						m.Shutdown()
						c.done[i] = true
					}
				}
				return roundAllDone, nil
			}
			c.Shutdown()
			return 0, ErrStalled
		}
		if stop > 0 && tmin >= stop {
			return roundPaused, nil
		}
		target := tmin + c.lookahead
		if stop > 0 && target > stop {
			target = stop
		}
		if target > c.maxCycles {
			c.Shutdown()
			return 0, fmt.Errorf("cluster: exceeded %d virtual cycles (runaway scenario?)", c.maxCycles)
		}
		// Reboot any crashed machine whose restart instant this round
		// reaches, before the round runs: the fresh incarnation then
		// advances with everyone else.
		for i := range c.machines {
			if at := c.restartAt[i]; at > 0 && at <= target {
				if err := c.restart(i, at); err != nil {
					c.Shutdown()
					return 0, err
				}
			}
		}
		// Fixed machine order per round keeps cross-machine event
		// insertion — and therefore the whole history — deterministic.
		for i, m := range c.machines {
			if c.done[i] {
				continue
			}
			limit := target
			if ca := c.crashAt[i]; ca > 0 && ca < limit {
				limit = ca
			}
			done, err := m.RunUntil(limit)
			if err != nil {
				c.Shutdown()
				return 0, fmt.Errorf("cluster: machine %d: %w", i, err)
			}
			c.done[i] = done
			if done {
				// Finished naturally ahead of any scheduled crash:
				// nothing left to kill.
				c.crashAt[i] = 0
				continue
			}
			if ca := c.crashAt[i]; ca > 0 && ca <= limit {
				c.crash(i)
			}
		}
		return roundRan, nil
	}
}

// crash takes machine i's scheduled failure: the machine is torn down
// mid-run — in-flight guests unwound, pending events (kick timers
// included) dead — and any configured reboot is armed. Frames heading
// toward it were already written off at the wire by the link's downAt
// horizon, so Sent = Delivered + Dropped + Queued holds through the
// failure.
func (c *Cluster) crash(i int) {
	c.machines[i].Shutdown()
	c.done[i] = true
	c.crashed[i] = true
	if ra := c.specs[i].RestartAfter; ra > 0 {
		c.restartAt[i] = c.crashAt[i] + ra
	}
	c.crashAt[i] = 0
}

// restart boots a fresh incarnation of crashed machine i at virtual
// time at: a new kernel.Machine from the original spec, its clock
// fast-forwarded to the reboot instant via Config.BootAt (first timer
// tick one jiffy later), rewired exactly like the original — same
// fabric address, transmit routes replayed in registration order,
// routing table restored from the post-wiring snapshot — with every
// link re-pointed at it and any DRR pipe whose service timer lived on
// the dead incarnation re-homed. Residual DRR backlog addressed to
// the dead incarnation is expired into the drop ledger first — the
// fresh machine takes new traffic only. Task state is fresh (the
// spec's Boot
// runs again); ledgers are per-incarnation, so cumulative accounting
// sums over Incarnations.
func (c *Cluster) restart(i int, at sim.Cycles) error {
	old := c.machines[i]
	c.prior[i] = append(c.prior[i], old)
	mcfg := c.specs[i].Config
	mcfg.BootAt = at
	m := kernel.New(mcfg)
	m.NIC().SetAddr(Addr(i + 1))
	for _, send := range c.txRoutes[i] {
		m.NIC().AddTxRoute(send)
	}
	for j := range c.machines {
		if r, ok := c.routeTab[i][Addr(j+1)]; ok {
			m.NIC().SetRoute(Addr(j+1), r)
		}
	}
	oldNIC := old.NIC()
	// Expire the dead incarnation's residual backlog before any link is
	// re-pointed: frames still parked in a DRR pipe for a link into the
	// crashed machine were accepted by the wire but addressed to an
	// incarnation that no longer exists — serving them after the reboot
	// would deliver stale traffic into the fresh machine. They become
	// counted drops on the link that offered them, so Queued drains to
	// Dropped and Sent = Delivered + Dropped + Queued holds across the
	// reboot.
	purged := make(map[*pipe]bool)
	for _, l := range c.links {
		for _, d := range [2]*Link{l, l.rev} {
			p := d.pipe
			if p.drr == nil || d.to != old || purged[p] {
				continue
			}
			purged[p] = true
			p.drr.Expire(
				func(e device.QdiscEntry) bool { return p.byTag[e.Tag].to == old },
				func(e device.QdiscEntry) {
					el := p.byTag[e.Tag]
					el.queued--
					el.dropped++
				})
		}
	}
	for _, l := range c.links {
		for _, d := range [2]*Link{l, l.rev} {
			if d.from == old {
				d.from = m
			}
			if d.to == old {
				d.to = m
				// Frames written off while the machine was down stay
				// dropped; the revived machine takes new traffic.
				d.downAt = 0
			}
			if p := d.pipe; p.drr != nil && p.home == oldNIC {
				// The pipe's kick timer died with the old incarnation:
				// re-home it and pick the backlog back up. Nobody
				// served the wire while the home was dead, so the
				// committed horizon resumes no earlier than the reboot
				// instant (also keeping the fresh event queue free of
				// past-time events).
				p.home = m.NIC()
				p.kickArmed = false
				if p.busyUntil < at {
					p.busyUntil = at
				}
				p.armKick()
			}
		}
	}
	c.machines[i] = m
	c.done[i] = false
	c.restartAt[i] = 0
	if boot := c.specs[i].Boot; boot != nil {
		if err := boot(c, m); err != nil {
			return fmt.Errorf("cluster: reboot machine %d at cycle %d: %w", i, at, err)
		}
	}
	return nil
}

// Crashed reports whether machine i took its scheduled crash. It
// stays true across a restart — the current incarnation is a reboot.
func (c *Cluster) Crashed(i int) bool {
	if i < 0 || i >= len(c.crashed) {
		panic(fmt.Sprintf("cluster: Crashed(%d) out of range: cluster has %d machines (0..%d)", i, len(c.crashed), len(c.crashed)-1))
	}
	return c.crashed[i]
}

// Incarnations returns every kernel machine that has served as member
// i: retired incarnations oldest-first, the current one last (a
// machine that never crashed has exactly one). A ledger that must
// survive a crash — a billing scheme's cumulative charge, an
// interrupt count — is the sum over incarnations.
func (c *Cluster) Incarnations(i int) []*kernel.Machine {
	if i < 0 || i >= len(c.machines) {
		panic(fmt.Sprintf("cluster: Incarnations(%d) out of range: cluster has %d machines (0..%d)", i, len(c.machines), len(c.machines)-1))
	}
	out := make([]*kernel.Machine, 0, len(c.prior[i])+1)
	out = append(out, c.prior[i]...)
	return append(out, c.machines[i])
}

// Shutdown tears down every machine's guest goroutines. Run calls it
// on failure; callers abandoning a cluster early must call it to
// avoid leaking parked goroutines. It is idempotent.
func (c *Cluster) Shutdown() {
	for _, m := range c.machines {
		if m != nil {
			m.Shutdown()
		}
	}
}
