// Package cluster runs several simulated machines as one deterministic
// topology: N seeded, self-contained kernel.Machines plus modeled
// network links between their NICs. This is the substrate the paper's
// externally driven attacks actually need — the interrupt flood of
// Fig. 10 is launched from a second PC, not from inside the victim —
// so the flooding attacker becomes a genuine machine whose transmit
// schedule crosses a link instead of an in-machine event generator.
//
// Machines advance in deterministic lockstep virtual time. Each round
// the cluster computes the earliest time any machine can make
// progress (the min-next-event-time barrier), extends it by the
// lookahead — the smallest link latency — and advances every machine
// to that barrier with Machine.RunUntil. A packet sent at or after
// the barrier base arrives at least one lookahead later, so no
// machine ever needs an event from a region another machine has not
// yet simulated; the round-robin order within a round is fixed, so
// the whole cluster history is a pure function of its seeds.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// DefaultLatencyUs is the one-way link latency when a LinkSpec leaves
// it zero: 500 µs, a 2008-era switched-LAN round trip's half.
const DefaultLatencyUs = 500

// DefaultLinkPPS is the wire's packet capacity when a LinkSpec leaves
// it zero: ~148.8k minimum-size frames per second, a saturated
// 100 Mb/s link.
const DefaultLinkPPS = 148_800

// MachineSpec declares one cluster member.
type MachineSpec struct {
	// Config assembles the machine; every machine in a cluster must
	// share one CPUHz so the lockstep barrier is a single timebase.
	Config kernel.Config
	// Boot spawns the machine's initial processes (shell, workload,
	// attack daemons). It runs during New after every machine and
	// link is built but before any machine advances, so a guest body
	// may capture a link (c.Link(i)) to transmit on.
	Boot func(c *Cluster, m *kernel.Machine) error
}

// LinkSpec declares one one-way link between two machines' NICs.
type LinkSpec struct {
	// From and To index Config.Machines.
	From, To int
	// LatencyUs is the one-way propagation delay in microseconds;
	// zero selects DefaultLatencyUs.
	LatencyUs uint64
	// PacketsPerSecond is the wire's serialisation capacity; packets
	// offered faster queue behind each other. Zero selects
	// DefaultLinkPPS.
	PacketsPerSecond uint64
}

// Config assembles a Cluster.
type Config struct {
	Machines []MachineSpec
	Links    []LinkSpec
	// MaxCycles bounds total virtual time as a runaway guard; zero
	// selects one virtual hour.
	MaxCycles sim.Cycles
}

// ErrStalled is returned by Run when unfinished machines remain but
// none can ever make progress, even given network input that will
// never arrive.
var ErrStalled = errors.New("cluster: unfinished machines but no machine has pending work")

// Link is a one-way network path from one machine's NIC to another's.
// Send is only safe from code that runs while the cluster advances
// the sending machine (guest routines, event callbacks) or between
// rounds — the same single-driver discipline every machine API has.
type Link struct {
	from, to    *kernel.Machine
	latency     sim.Cycles
	gap         sim.Cycles // serialisation spacing at wire capacity
	lastArrival sim.Cycles
	sent        uint64
}

// Sent reports the packets carried since construction.
func (l *Link) Sent() uint64 { return l.sent }

// Latency reports the one-way propagation delay in cycles.
func (l *Link) Latency() sim.Cycles { return l.latency }

// Send transmits one packet: it arrives at the destination NIC one
// latency after the sender's current virtual time, no earlier than
// one serialisation gap after the previous packet's arrival, and
// raises one receive interrupt there.
func (l *Link) Send() {
	arrive := l.from.Clock().Now() + l.latency
	if min := l.lastArrival + l.gap; arrive < min {
		arrive = min
	}
	l.lastArrival = arrive
	l.sent++
	l.to.NIC().InjectRx(arrive)
}

// Cluster is a set of machines advancing in lockstep plus the links
// between them.
type Cluster struct {
	machines  []*kernel.Machine
	links     []*Link
	done      []bool
	lookahead sim.Cycles
	maxCycles sim.Cycles
}

// New builds the machines, wires the links, and runs every Boot
// routine. On any error the already-built machines are shut down.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Machines) == 0 {
		return nil, fmt.Errorf("cluster: no machines")
	}
	c := &Cluster{
		machines:  make([]*kernel.Machine, len(cfg.Machines)),
		done:      make([]bool, len(cfg.Machines)),
		maxCycles: cfg.MaxCycles,
	}
	freq := cfg.Machines[0].Config.CPUHz
	if freq == 0 {
		freq = sim.DefaultCPUHz
	}
	if c.maxCycles == 0 {
		c.maxCycles = sim.Cycles(freq) * 3600
	}
	for i, ms := range cfg.Machines {
		f := ms.Config.CPUHz
		if f == 0 {
			f = sim.DefaultCPUHz
		}
		if f != freq {
			return nil, fmt.Errorf("cluster: machine %d runs at %d Hz, machine 0 at %d Hz (one timebase required)", i, f, freq)
		}
		c.machines[i] = kernel.New(ms.Config)
	}
	perUs := sim.Cycles(uint64(freq) / 1_000_000)
	if perUs == 0 {
		perUs = 1
	}
	for li, ls := range cfg.Links {
		if ls.From < 0 || ls.From >= len(c.machines) || ls.To < 0 || ls.To >= len(c.machines) {
			c.Shutdown()
			return nil, fmt.Errorf("cluster: link %d connects %d->%d, have %d machines", li, ls.From, ls.To, len(c.machines))
		}
		latUs := ls.LatencyUs
		if latUs == 0 {
			latUs = DefaultLatencyUs
		}
		pps := ls.PacketsPerSecond
		if pps == 0 {
			pps = DefaultLinkPPS
		}
		gap := sim.Cycles(uint64(freq) / pps)
		if gap == 0 {
			gap = 1
		}
		c.links = append(c.links, &Link{
			from:    c.machines[ls.From],
			to:      c.machines[ls.To],
			latency: sim.Cycles(latUs) * perUs,
			gap:     gap,
		})
	}
	// The lookahead is the shortest link latency: one round may only
	// span a window narrower than any cross-machine signal's flight
	// time. With no links, machines are independent; a tick-sized
	// window keeps rounds cheap without any correctness constraint.
	c.lookahead = 0
	for _, l := range c.links {
		if c.lookahead == 0 || l.latency < c.lookahead {
			c.lookahead = l.latency
		}
	}
	if c.lookahead == 0 {
		c.lookahead = sim.Cycles(uint64(freq) / kernel.DefaultHZ)
	}
	for i, ms := range cfg.Machines {
		if ms.Boot == nil {
			continue
		}
		if err := ms.Boot(c, c.machines[i]); err != nil {
			c.Shutdown()
			return nil, fmt.Errorf("cluster: boot machine %d: %w", i, err)
		}
	}
	return c, nil
}

// Size reports the number of machines.
func (c *Cluster) Size() int { return len(c.machines) }

// Machine returns cluster member i.
func (c *Cluster) Machine(i int) *kernel.Machine { return c.machines[i] }

// Link returns the i-th declared link.
func (c *Cluster) Link(i int) *Link { return c.links[i] }

// Done reports whether machine i has finished (every task exited).
func (c *Cluster) Done(i int) bool { return c.done[i] }

// Now reports the earliest virtual time any machine still has to
// simulate — the cluster's lockstep frontier. With every machine
// finished it reports the latest machine clock instead.
func (c *Cluster) Now() sim.Cycles {
	var frontier sim.Cycles
	first := true
	for i, m := range c.machines {
		if c.done[i] {
			continue
		}
		if t := m.Clock().Now(); first || t < frontier {
			frontier, first = t, false
		}
	}
	if first {
		for _, m := range c.machines {
			if t := m.Clock().Now(); t > frontier {
				frontier = t
			}
		}
	}
	return frontier
}

// Run advances all machines in lockstep rounds until every machine's
// tasks have exited. On error (including a machine failure) the whole
// cluster is shut down.
func (c *Cluster) Run() error {
	for {
		// The barrier base: the earliest time any unfinished machine
		// can make progress on its own.
		var tmin sim.Cycles
		haveWork, allDone := false, true
		for i, m := range c.machines {
			if c.done[i] {
				continue
			}
			allDone = false
			at, ok := m.NextWorkAt()
			if !ok {
				continue // waiting for network input
			}
			if !haveWork || at < tmin {
				tmin = at
			}
			haveWork = true
		}
		if allDone {
			return nil
		}
		if !haveWork {
			c.Shutdown()
			return ErrStalled
		}
		target := tmin + c.lookahead
		if target > c.maxCycles {
			c.Shutdown()
			return fmt.Errorf("cluster: exceeded %d virtual cycles (runaway scenario?)", c.maxCycles)
		}
		// Fixed machine order per round keeps cross-machine event
		// insertion — and therefore the whole history — deterministic.
		for i, m := range c.machines {
			if c.done[i] {
				continue
			}
			done, err := m.RunUntil(target)
			if err != nil {
				c.Shutdown()
				return fmt.Errorf("cluster: machine %d: %w", i, err)
			}
			c.done[i] = done
		}
	}
}

// Shutdown tears down every machine's guest goroutines. Run calls it
// on failure; callers abandoning a cluster early must call it to
// avoid leaking parked goroutines. It is idempotent.
func (c *Cluster) Shutdown() {
	for _, m := range c.machines {
		if m != nil {
			m.Shutdown()
		}
	}
}
