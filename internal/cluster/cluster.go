// Package cluster runs several simulated machines as one deterministic
// topology: N seeded, self-contained kernel.Machines plus modeled
// network links between their NICs. This is the substrate the paper's
// externally driven attacks actually need — the interrupt flood of
// Fig. 10 is launched from a second PC, not from inside the victim —
// so the flooding attacker becomes a genuine machine whose transmit
// schedule crosses a link instead of an in-machine event generator.
//
// Links are bidirectional, finite-capacity channels. Each declared
// LinkSpec yields a forward direction (From→To) and a reverse
// direction (To→From, via Link.Reverse); each direction serialises
// frames at the wire's packet rate through a bounded queue with
// deterministic tail-drop, counted in Sent/Delivered/Dropped. Both
// directions are registered as NIC transmit routes on their sending
// machines, so guests transmit through the billed kernel tx path
// (guest.Context.NetSend) and receivers can reply — ack-paced flows
// whose rate is shaped by the receiver's responsiveness.
//
// Machines advance in deterministic lockstep virtual time. Each round
// the cluster computes the earliest time any machine can make
// progress (the min-next-event-time barrier), extends it by the
// lookahead — the smallest cross-machine signal flight time — and
// advances every machine to that barrier with Machine.RunUntil. A
// packet sent at or after the barrier base arrives at least one
// lookahead later, so no machine ever needs an event from a region
// another machine has not yet simulated; the round-robin order within
// a round is fixed, so the whole cluster history is a pure function
// of its seeds.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

// DefaultLatencyUs is the one-way link latency when a LinkSpec leaves
// it zero: 500 µs, a 2008-era switched-LAN round trip's half.
const DefaultLatencyUs = 500

// DefaultLinkPPS is the wire's packet capacity when a LinkSpec leaves
// it zero: ~148.8k minimum-size frames per second, a saturated
// 100 Mb/s link.
const DefaultLinkPPS = 148_800

// UnlimitedPPS selects an infinite-rate wire: no serialisation gap,
// no queue, no drops — the idealised lossless pipe of the first
// cluster model. A lossless infinite-rate link replays histories
// recorded under that model bit-for-bit.
const UnlimitedPPS = math.MaxUint64

// DefaultQueueDepth is a link direction's tail-drop queue bound, in
// packets, when a LinkSpec leaves it zero (a shallow 2008-era switch
// port buffer). A frame that would have to queue this deep behind
// earlier frames is dropped instead of delivered.
const DefaultQueueDepth = 64

// DefaultSwapServiceUs is the host-side CPU service per remote swap
// page when a SharedSwapSpec leaves it zero: ~40 µs of block-layer,
// copy, and reply work, in line with 2008-era NFS/NBD page service.
const DefaultSwapServiceUs = 40

// MachineSpec declares one cluster member.
type MachineSpec struct {
	// Config assembles the machine; every machine in a cluster must
	// share one CPUHz so the lockstep barrier is a single timebase.
	Config kernel.Config
	// Boot spawns the machine's initial processes (shell, workload,
	// attack daemons). It runs during New after every machine and
	// link is built but before any machine advances, so a guest body
	// may capture a link (c.Link(i)) to transmit on.
	Boot func(c *Cluster, m *kernel.Machine) error
}

// LinkSpec declares one bidirectional link between two machines'
// NICs. Each direction gets its own serialisation/queue state from
// the same rate and depth parameters.
type LinkSpec struct {
	// From and To index Config.Machines.
	From, To int
	// LatencyUs is the one-way propagation delay in microseconds;
	// zero selects DefaultLatencyUs.
	LatencyUs uint64
	// PacketsPerSecond is the wire's serialisation capacity; packets
	// offered faster queue behind each other and tail-drop beyond
	// QueueDepth. Zero selects DefaultLinkPPS; UnlimitedPPS selects
	// an idealised lossless infinite-rate wire.
	PacketsPerSecond uint64
	// QueueDepth bounds each direction's queue, in packets; zero
	// selects DefaultQueueDepth. Ignored under UnlimitedPPS.
	QueueDepth uint64
	// Bottleneck, when non-empty, names a shared last-hop pipe: the
	// forward directions of all links carrying the same tag serialise
	// through one queue (N attackers converging on one victim share
	// the victim's ingress wire). Tagged links must agree on
	// PacketsPerSecond and QueueDepth (after default resolution).
	// Reverse directions keep private pipes.
	//
	// Sharing granularity is the lockstep round: within one round,
	// frames from different machines reach the pipe in machine order
	// rather than strict virtual-time order (the sender needs its
	// carry/drop feedback synchronously, so resolution cannot be
	// deferred to the barrier). A later-indexed machine's frame may
	// therefore queue behind — or tail-drop after — an earlier-
	// indexed machine's virtually-later frame; the skew is bounded by
	// one lookahead window (the smallest link latency) and the
	// history remains a pure function of the Config.
	Bottleneck string
}

// SharedSwapSpec declares that one machine (Host) physically owns the
// swap device that the Clients mount remotely: all their disks share
// one occupancy channel (I/O contends for the same spindle), and each
// client page I/O additionally bills the host — a NIC rx interrupt
// plus ServiceUs of swap-server work at the I/O's completion — to
// whichever task is then current there. This is the cross-machine
// exception-flood substrate: a memory hog on a neighbor machine
// pressures the shared swap while the victim is billed on the host.
//
// Swap request frames are injected into the host NIC directly rather
// than traversing a declared Link: they see no wire serialisation,
// queue drops, or sender-side tx billing. The shared device-occupancy
// channel is what gates swap throughput; a lossy swap transport would
// need request/retry semantics and is future work.
type SharedSwapSpec struct {
	Host    int
	Clients []int
	// ServiceUs is the host-side CPU service per remote page; zero
	// selects DefaultSwapServiceUs.
	ServiceUs uint64
}

// Config assembles a Cluster.
type Config struct {
	Machines []MachineSpec
	Links    []LinkSpec
	// SharedSwap, when non-nil, couples machines' swap devices into
	// one physically shared device hosted by one machine.
	SharedSwap *SharedSwapSpec
	// MaxCycles bounds total virtual time as a runaway guard; zero
	// selects one virtual hour.
	MaxCycles sim.Cycles
}

// ErrStalled is returned by Run when unfinished machines remain but
// none can ever make progress: every remaining task is blocked on
// network input (NetRxWait, wait-forever) and no frame is in flight.
var ErrStalled = errors.New("cluster: unfinished machines but no machine has pending work")

// pipe is one direction's serialisation and queue state. Links
// declared with the same Bottleneck tag share one pipe for their
// forward directions. rng perturbs per-frame service time when the
// wire is the binding constraint (variable frame sizes); it is seeded
// from the cluster seed and the pipe's declaration position, so
// histories stay a pure function of the Config.
type pipe struct {
	gap         sim.Cycles // serialisation spacing at wire capacity; 0 = infinite rate
	depth       uint64     // tail-drop bound in packets
	lastArrival sim.Cycles
	rng         *sim.Rand
}

// Link is one direction of a network path between two machines' NICs.
// Send is only safe from code that runs while the cluster advances
// the sending machine (guest routines, event callbacks) or between
// rounds — the same single-driver discipline every machine API has.
type Link struct {
	from, to *kernel.Machine
	latency  sim.Cycles
	pipe     *pipe
	rev      *Link

	sent      uint64
	delivered uint64
	dropped   uint64
}

// Sent reports frames offered to this direction since construction.
func (l *Link) Sent() uint64 { return l.sent }

// Delivered reports frames handed to the destination NIC's event
// queue. A frame still in flight when the destination machine halts
// is lost there; that window is bounded by one link latency.
func (l *Link) Delivered() uint64 { return l.delivered }

// Dropped reports frames not delivered: tail-dropped at the wire's
// queue, or offered after the destination machine had finished.
func (l *Link) Dropped() uint64 { return l.dropped }

// Latency reports the one-way propagation delay in cycles.
func (l *Link) Latency() sim.Cycles { return l.latency }

// Reverse returns the opposite direction of this link.
func (l *Link) Reverse() *Link { return l.rev }

// Send offers one frame to this direction. A carried frame arrives at
// the destination NIC one latency after the sender's current virtual
// time — no earlier than one serialisation gap after the previous
// frame on the same pipe — and raises one receive interrupt there. A
// frame that would queue QueueDepth or more gap-slots deep, or whose
// destination machine has already finished, is tail-dropped instead;
// Send reports whether the frame was carried. Sent = Delivered +
// Dropped always holds.
func (l *Link) Send() bool {
	l.sent++
	if l.to.Closed() {
		l.dropped++
		return false
	}
	arrive := l.from.Clock().Now() + l.latency
	if p := l.pipe; p.gap > 0 {
		if floor := p.lastArrival + p.gap; arrive < floor {
			if queued := uint64((floor - arrive) / p.gap); queued >= p.depth {
				l.dropped++
				return false
			}
			// The wire is the binding constraint: per-frame service
			// time varies with frame size, so perturb the nominal gap
			// (deterministically). Without this a saturated pipe
			// delivers on an exact modular grid that can phase-lock
			// with the receiver's timer-tick grid and bias what the
			// tick sampler observes. Frames never arrive before their
			// own flight time or out of order.
			g := p.rng.Jitter(p.gap, p.gap/4+1)
			if g == 0 {
				g = 1
			}
			if jittered := p.lastArrival + g; jittered > arrive {
				arrive = jittered
			}
		}
		p.lastArrival = arrive
	}
	l.delivered++
	l.to.NIC().InjectRx(arrive)
	return true
}

// Cluster is a set of machines advancing in lockstep plus the links
// between them.
type Cluster struct {
	machines  []*kernel.Machine
	links     []*Link
	done      []bool
	lookahead sim.Cycles
	maxCycles sim.Cycles
}

// newPipe builds one direction's serialisation state from a spec.
// seed drives the pipe's service-time perturbation.
func newPipe(freq sim.Hz, pps, depth uint64, seed int64) *pipe {
	if pps == 0 {
		pps = DefaultLinkPPS
	}
	if depth == 0 {
		depth = DefaultQueueDepth
	}
	var gap sim.Cycles
	if pps != UnlimitedPPS {
		gap = sim.Cycles(uint64(freq) / pps)
		if gap == 0 {
			gap = 1
		}
	}
	return &pipe{gap: gap, depth: depth, rng: sim.NewRand(seed)}
}

// New builds the machines, wires the links (registering both
// directions as NIC transmit routes on their sending machines, in
// Config.Links order: each link contributes its forward direction to
// From's route list, then its reverse direction to To's), couples any
// shared swap, and runs every Boot routine. On any error the
// already-built machines are shut down.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Machines) == 0 {
		return nil, fmt.Errorf("cluster: no machines")
	}
	c := &Cluster{
		machines:  make([]*kernel.Machine, len(cfg.Machines)),
		done:      make([]bool, len(cfg.Machines)),
		maxCycles: cfg.MaxCycles,
	}
	freq := cfg.Machines[0].Config.CPUHz
	if freq == 0 {
		freq = sim.DefaultCPUHz
	}
	if c.maxCycles == 0 {
		c.maxCycles = sim.Cycles(freq) * 3600
	}
	for i, ms := range cfg.Machines {
		f := ms.Config.CPUHz
		if f == 0 {
			f = sim.DefaultCPUHz
		}
		if f != freq {
			return nil, fmt.Errorf("cluster: machine %d runs at %d Hz, machine 0 at %d Hz (one timebase required)", i, f, freq)
		}
		c.machines[i] = kernel.New(ms.Config)
	}
	perUs := sim.Cycles(uint64(freq) / 1_000_000)
	if perUs == 0 {
		perUs = 1
	}
	shared := make(map[string]*pipe)
	for li, ls := range cfg.Links {
		if ls.From < 0 || ls.From >= len(c.machines) || ls.To < 0 || ls.To >= len(c.machines) {
			c.Shutdown()
			return nil, fmt.Errorf("cluster: link %d connects %d->%d, have %d machines", li, ls.From, ls.To, len(c.machines))
		}
		latUs := ls.LatencyUs
		if latUs == 0 {
			latUs = DefaultLatencyUs
		}
		pipeSeed := cfg.Machines[0].Config.Seed*1_000_003 + int64(li)*2
		fwdPipe := newPipe(freq, ls.PacketsPerSecond, ls.QueueDepth, pipeSeed)
		if ls.Bottleneck != "" {
			if b, ok := shared[ls.Bottleneck]; ok {
				// Compare resolved parameters, so an explicit value and
				// the default it resolves to are not a false mismatch.
				if b.gap != fwdPipe.gap || b.depth != fwdPipe.depth {
					c.Shutdown()
					return nil, fmt.Errorf("cluster: link %d bottleneck %q resolves to gap=%d depth=%d, earlier link resolved gap=%d depth=%d",
						li, ls.Bottleneck, fwdPipe.gap, fwdPipe.depth, b.gap, b.depth)
				}
				fwdPipe = b
			} else {
				shared[ls.Bottleneck] = fwdPipe
			}
		}
		fwd := &Link{
			from:    c.machines[ls.From],
			to:      c.machines[ls.To],
			latency: sim.Cycles(latUs) * perUs,
			pipe:    fwdPipe,
		}
		rev := &Link{
			from:    c.machines[ls.To],
			to:      c.machines[ls.From],
			latency: fwd.latency,
			pipe:    newPipe(freq, ls.PacketsPerSecond, ls.QueueDepth, pipeSeed+1),
		}
		fwd.rev, rev.rev = rev, fwd
		c.machines[ls.From].NIC().AddTxRoute(fwd.Send)
		c.machines[ls.To].NIC().AddTxRoute(rev.Send)
		c.links = append(c.links, fwd)
	}
	// The lookahead is the shortest cross-machine signal flight time:
	// one round may only span a window narrower than it. With no
	// links, machines are independent; a tick-sized window keeps
	// rounds cheap without any correctness constraint.
	c.lookahead = 0
	for _, l := range c.links {
		if c.lookahead == 0 || l.latency < c.lookahead {
			c.lookahead = l.latency
		}
	}
	if c.lookahead == 0 {
		c.lookahead = sim.Cycles(uint64(freq) / kernel.DefaultHZ)
	}
	if ss := cfg.SharedSwap; ss != nil {
		if err := c.wireSharedSwap(ss, freq, perUs); err != nil {
			c.Shutdown()
			return nil, err
		}
	}
	for i, ms := range cfg.Machines {
		if ms.Boot == nil {
			continue
		}
		if err := ms.Boot(c, c.machines[i]); err != nil {
			c.Shutdown()
			return nil, fmt.Errorf("cluster: boot machine %d: %w", i, err)
		}
	}
	return c, nil
}

// wireSharedSwap couples the spec'd machines' disks through one
// shared occupancy channel and bills the host for every client I/O.
func (c *Cluster) wireSharedSwap(ss *SharedSwapSpec, freq sim.Hz, perUs sim.Cycles) error {
	if ss.Host < 0 || ss.Host >= len(c.machines) {
		return fmt.Errorf("cluster: shared swap host %d out of range (%d machines)", ss.Host, len(c.machines))
	}
	if len(ss.Clients) == 0 {
		return fmt.Errorf("cluster: shared swap declares no clients")
	}
	seen := map[int]bool{ss.Host: true}
	ch := device.NewDiskChannel()
	host := c.machines[ss.Host]
	host.Disk().Share(ch)
	svcUs := ss.ServiceUs
	if svcUs == 0 {
		svcUs = DefaultSwapServiceUs
	}
	svc := sim.Cycles(svcUs) * perUs
	// One reusable service callback per cluster: the per-I/O path
	// allocates nothing.
	svcFire := host.IRQWork(device.IRQDisk, svc)
	for _, ci := range ss.Clients {
		if ci < 0 || ci >= len(c.machines) {
			return fmt.Errorf("cluster: shared swap client %d out of range (%d machines)", ci, len(c.machines))
		}
		if seen[ci] {
			return fmt.Errorf("cluster: shared swap lists machine %d twice", ci)
		}
		seen[ci] = true
		cm := c.machines[ci]
		cm.Disk().Share(ch)
		cm.Disk().OnIO(func(complete sim.Cycles) {
			if host.Closed() {
				return
			}
			// The request frame's rx interrupt plus the swap server's
			// block-layer/copy/reply work land on the host at the
			// I/O's completion, billed to whichever task is current.
			// (Modeling simplification: swap request frames are
			// injected directly rather than traversing a Link, so
			// they see no wire serialisation, queue drops, or
			// sender-side tx billing — the device-occupancy channel
			// below is what gates swap throughput.)
			host.NIC().InjectRx(complete)
			host.ScheduleIRQWork(complete, svcFire)
		})
	}
	// Swap notifications fly one disk latency ahead at minimum; keep
	// the lockstep window comfortably inside that horizon.
	if dl := mem.DiskLatency(freq) / 2; c.lookahead > dl && dl > 0 {
		c.lookahead = dl
	}
	return nil
}

// Size reports the number of machines.
func (c *Cluster) Size() int { return len(c.machines) }

// Machine returns cluster member i.
func (c *Cluster) Machine(i int) *kernel.Machine { return c.machines[i] }

// Link returns the forward direction of the i-th declared link.
func (c *Cluster) Link(i int) *Link { return c.links[i] }

// Links reports the number of declared links.
func (c *Cluster) Links() int { return len(c.links) }

// Done reports whether machine i has finished (every task exited).
func (c *Cluster) Done(i int) bool { return c.done[i] }

// Now reports the earliest virtual time any machine still has to
// simulate — the cluster's lockstep frontier. With every machine
// finished it reports the latest machine clock instead.
func (c *Cluster) Now() sim.Cycles {
	var frontier sim.Cycles
	first := true
	for i, m := range c.machines {
		if c.done[i] {
			continue
		}
		if t := m.Clock().Now(); first || t < frontier {
			frontier, first = t, false
		}
	}
	if first {
		for _, m := range c.machines {
			if t := m.Clock().Now(); t > frontier {
				frontier = t
			}
		}
	}
	return frontier
}

// Run advances all machines in lockstep rounds until every machine's
// tasks have exited. On error (including a machine failure, and the
// ErrStalled case where every unfinished machine is blocked on
// network input with nothing in flight) the whole cluster is shut
// down.
func (c *Cluster) Run() error {
	for {
		// The barrier base: the earliest time any unfinished machine
		// can make progress on its own.
		var tmin sim.Cycles
		haveWork, allDone := false, true
		for i, m := range c.machines {
			if c.done[i] {
				continue
			}
			allDone = false
			at, ok := m.NextWorkAt()
			if !ok {
				continue // waiting for network input
			}
			if !haveWork || at < tmin {
				tmin = at
			}
			haveWork = true
		}
		if allDone {
			return nil
		}
		if !haveWork {
			c.Shutdown()
			return ErrStalled
		}
		target := tmin + c.lookahead
		if target > c.maxCycles {
			c.Shutdown()
			return fmt.Errorf("cluster: exceeded %d virtual cycles (runaway scenario?)", c.maxCycles)
		}
		// Fixed machine order per round keeps cross-machine event
		// insertion — and therefore the whole history — deterministic.
		for i, m := range c.machines {
			if c.done[i] {
				continue
			}
			done, err := m.RunUntil(target)
			if err != nil {
				c.Shutdown()
				return fmt.Errorf("cluster: machine %d: %w", i, err)
			}
			c.done[i] = done
		}
	}
}

// Shutdown tears down every machine's guest goroutines. Run calls it
// on failure; callers abandoning a cluster early must call it to
// avoid leaking parked goroutines. It is idempotent.
func (c *Cluster) Shutdown() {
	for _, m := range c.machines {
		if m != nil {
			m.Shutdown()
		}
	}
}
