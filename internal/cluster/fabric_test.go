package cluster

import (
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// TestForwarderRoutesAcrossHops pins the routed fabric end to end:
// A → router → B over static routes, with the router a real Service
// machine running the forwarding daemon. B sees A's frames with the
// original Src preserved across the hop and acks them back through
// the router; the cluster completes by retiring the quiesced router.
func TestForwarderRoutesAcrossHops(t *testing.T) {
	const frames = 5
	var got []Frame
	var acked uint64
	cl, err := New(Config{
		Machines: []MachineSpec{
			{
				Name:   "a",
				Config: kernel.Config{Seed: 101, CPUHz: testHz},
				Boot: func(c *Cluster, m *kernel.Machine) error {
					dst := c.AddrOf(2)
					router := c.AddrOf(1)
					_, err := m.Spawn(kernel.SpawnConfig{
						Name:    "sender",
						Content: "sender v1",
						Body: func(ctx guest.Context) {
							for i := 0; i < frames; i++ {
								//simlint:errno-ok carried bool is the assertion; this fixture injects no faults
								if ok, _ := ctx.NetSend(guest.Frame{Dst: dst, Flow: 9}); !ok {
									t.Error("send refused on an open routed path")
								}
							}
							// A frame addressed to the router itself is
							// consumed there, not re-routed or miscounted
							// as a transmit drop.
							//simlint:errno-ok fault-free fixture; the router-addressed frame's fate is asserted via counters
							ctx.NetSend(guest.Frame{Dst: router, Flow: 1})
							for acked < frames {
								acked = ctx.NetRxWait(acked)
							}
						},
					})
					return err
				},
			},
			{
				Name:    "router",
				Config:  kernel.Config{Seed: 102, CPUHz: testHz},
				Service: true,
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					_, err := m.Spawn(kernel.SpawnConfig{
						Name:    "fwd",
						Content: "fwd v1",
						Body:    Forwarder(3000),
					})
					return err
				},
			},
			{
				Name:   "b",
				Config: kernel.Config{Seed: 103, CPUHz: testHz},
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					_, err := m.Spawn(kernel.SpawnConfig{
						Name:    "responder",
						Content: "responder v1",
						Body: func(ctx guest.Context) {
							seen := uint64(0)
							for len(got) < frames {
								seen = ctx.NetRxWait(seen)
								for {
									//simlint:errno-ok drain loop; ok bounds it and this fixture injects no faults
									f, ok, _ := ctx.NetRecv()
									if !ok {
										break
									}
									got = append(got, f)
									//simlint:errno-ok fault-free fixture; echo delivery is asserted via the got slice
									ctx.NetSend(guest.Frame{Dst: f.Src, Flow: f.Flow})
								}
							}
						},
					})
					return err
				},
			},
		},
		Links: []LinkSpec{
			{From: 0, To: 1, LatencyUs: 200},
			{From: 1, To: 2, LatencyUs: 200},
		},
		Routes: []RouteSpec{
			{On: 0, Dst: 2, Via: 1}, // A reaches B through the router
			{On: 2, Dst: 0, Via: 1}, // and B's acks come back the same way
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatalf("Run = %v, want clean completion (service router retired at quiesce)", err)
	}
	if !cl.Done(1) {
		t.Error("router not marked done after quiesce")
	}
	if len(got) != frames {
		t.Fatalf("B received %d frames, want %d", len(got), frames)
	}
	for _, f := range got {
		if f.Src != cl.AddrOf(0) || f.Flow != 9 {
			t.Fatalf("frame %+v: want Src %d / Flow 9 preserved across the router hop", f, cl.AddrOf(0))
		}
	}
	if acked != frames {
		t.Fatalf("A saw %d acks, want %d", acked, frames)
	}
	// The router paid for the forwarding: its daemon's billed time is
	// nonzero under the machine's own (jiffy-first) accounting fan-out,
	// and its NIC carried both directions.
	rm := cl.Machine(1)
	if tx := rm.NIC().Transmitted(); tx != 2*frames {
		t.Errorf("router transmitted %d frames, want %d (data + acks)", tx, 2*frames)
	}
	if drops := rm.NIC().TxDropped(); drops != 0 {
		t.Errorf("router counted %d tx drops, want 0 (the self-addressed frame is consumed, not re-routed)", drops)
	}
	u, ok := rm.UsageBy("tsc", 1) // fwd is the router's first (pid 1) task
	if !ok || u.User == 0 || u.System == 0 {
		t.Errorf("router fwd usage = %+v, want nonzero user (lookup) and system (rx/tx syscalls)", u)
	}
}

// TestServiceMachineQuiesces pins the completion rule: a cluster
// whose only unfinished machine is a Service daemon blocked on
// network input completes cleanly instead of reporting ErrStalled.
func TestServiceMachineQuiesces(t *testing.T) {
	mk := func(service bool) error {
		cl, err := New(Config{Machines: []MachineSpec{
			{
				Config: kernel.Config{Seed: 111, CPUHz: testHz},
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					return spawnBusy(m, "job", 0.01)
				},
			},
			{
				Config:  kernel.Config{Seed: 112, CPUHz: testHz},
				Service: service,
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					_, err := m.Spawn(kernel.SpawnConfig{
						Name:    "daemon",
						Content: "daemon v1",
						Body: func(ctx guest.Context) {
							ctx.NetRxWait(0) // nothing ever arrives
						},
					})
					return err
				},
			},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return cl.Run()
	}
	if err := mk(true); err != nil {
		t.Errorf("service daemon: Run = %v, want nil", err)
	}
	if err := mk(false); err != ErrStalled {
		t.Errorf("non-service daemon: Run = %v, want ErrStalled", err)
	}
}

// redBurst drives `n` frames through a RED-armed 1k-pps wire in one
// tight burst (no virtual time between sends, so the queue builds
// deterministically) and returns the link for counter inspection.
func redBurst(t *testing.T, n int, ecn bool, red *REDSpec) *Link {
	t.Helper()
	cl, err := New(Config{
		Machines: []MachineSpec{
			{
				Config: kernel.Config{Seed: 121, CPUHz: testHz},
				Boot: func(c *Cluster, m *kernel.Machine) error {
					link := c.Link(0)
					_, err := m.Spawn(kernel.SpawnConfig{
						Name:    "burster",
						Content: "burster v1",
						Body: func(ctx guest.Context) {
							for i := 0; i < n; i++ {
								link.Send(Frame{Src: 1, Dst: 2, ECN: ecn})
							}
							ctx.Compute(1000)
						},
					})
					return err
				},
			},
			{
				Config: kernel.Config{Seed: 122, CPUHz: testHz},
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					return spawnBusy(m, "sink", 0.3)
				},
			},
		},
		Links: []LinkSpec{{
			From: 0, To: 1, LatencyUs: 200,
			PacketsPerSecond: 1000, QueueDepth: 64, RED: red,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	return cl.Link(0)
}

// TestREDEarlyDropsJunkAndMarksECN pins the queue-feedback policy:
// under the same congestion, non-ECN frames take early drops between
// the thresholds while ECN-capable frames are CE-marked and carried,
// with tail-drop at the hard bound the only way an ECN frame dies.
func TestREDEarlyDropsJunkAndMarksECN(t *testing.T) {
	red := &REDSpec{MinDepth: 8, MaxDepth: 32, MaxPct: 50}

	junk := redBurst(t, 100, false, red)
	if junk.Sent() != 100 || junk.Sent() != junk.Delivered()+junk.Dropped() {
		t.Fatalf("junk accounting: sent %d, delivered %d, dropped %d", junk.Sent(), junk.Delivered(), junk.Dropped())
	}
	if junk.EarlyDropped() == 0 {
		t.Error("no early drops on a 100-frame non-ECN burst through RED(8,32)")
	}
	if junk.Marked() != 0 {
		t.Errorf("Marked = %d on non-ECN traffic, want 0", junk.Marked())
	}

	ecn := redBurst(t, 100, true, red)
	if ecn.EarlyDropped() != 0 {
		t.Errorf("EarlyDropped = %d on ECN traffic, want 0 (marks replace early drops)", ecn.EarlyDropped())
	}
	if ecn.Marked() == 0 {
		t.Error("no CE marks on a 100-frame ECN burst through RED(8,32)")
	}
	// Marks let the queue run past MaxDepth, so the burst tail must
	// hit the hard bound: ECN traffic still tail-drops there.
	if ecn.Dropped() == 0 {
		t.Error("no tail drops on a 100-frame ECN burst into a 64-deep queue")
	}
	// ECN carries more of the same burst than junk: marks are not
	// losses.
	if ecn.Delivered() <= junk.Delivered() {
		t.Errorf("ECN delivered %d <= junk delivered %d, want more (early feedback without loss)", ecn.Delivered(), junk.Delivered())
	}

	// Determinism: the probabilistic policy draws from the pipe's
	// seeded stream, so a rerun is bit-identical.
	again := redBurst(t, 100, false, red)
	if again.Delivered() != junk.Delivered() || again.EarlyDropped() != junk.EarlyDropped() {
		t.Errorf("RED rerun diverged: delivered %d/%d, early %d/%d",
			again.Delivered(), junk.Delivered(), again.EarlyDropped(), junk.EarlyDropped())
	}

	// RED disabled: same burst, pure tail-drop, no feedback counters.
	plain := redBurst(t, 100, false, nil)
	if plain.Marked() != 0 || plain.EarlyDropped() != 0 {
		t.Errorf("tail-drop-only wire recorded marks=%d early=%d", plain.Marked(), plain.EarlyDropped())
	}
}

// TestBottleneckSameCycleMachineOrder pins the documented resolution
// caveat on shared pipes: within one lockstep round, frames reach the
// bottleneck in machine order, not virtual-time order. Machine 0
// transmits late in the round, machine 1 early; with a depth-1 shared
// queue it is machine 1's virtually-earlier frame that finds the slot
// taken and drops.
func TestBottleneckSameCycleMachineOrder(t *testing.T) {
	send := func(c *Cluster, li int, sleep sim.Cycles) func(*Cluster, *kernel.Machine) error {
		_ = c
		return func(c *Cluster, m *kernel.Machine) error {
			link := c.Link(li)
			_, err := m.Spawn(kernel.SpawnConfig{
				Name:    "pktgen",
				Content: "pktgen v1",
				Body: func(ctx guest.Context) {
					ctx.Sleep(sleep)
					link.Send(Frame{Src: Addr(li + 1), Dst: 3})
				},
			})
			return err
		}
	}
	perUs := sim.Cycles(testHz / 1_000_000)
	cl, err := New(Config{
		Machines: []MachineSpec{
			{Config: kernel.Config{Seed: 131, CPUHz: testHz}, Boot: send(nil, 0, 800*perUs)},
			{Config: kernel.Config{Seed: 132, CPUHz: testHz}, Boot: send(nil, 1, 300*perUs)},
			{
				Config: kernel.Config{Seed: 133, CPUHz: testHz},
				Boot: func(_ *Cluster, m *kernel.Machine) error {
					return spawnBusy(m, "sink", 0.05)
				},
			},
		},
		// A 1k-pps wire (1 ms serialisation gap) with a depth-1 queue:
		// the second frame offered within one gap of the first drops.
		// Both sends land in the first lockstep round (width = the
		// 1000 µs lookahead), machine 0 first.
		Links: []LinkSpec{
			{From: 0, To: 2, LatencyUs: 1000, PacketsPerSecond: 1000, QueueDepth: 1, Bottleneck: "ingress"},
			{From: 1, To: 2, LatencyUs: 1000, PacketsPerSecond: 1000, QueueDepth: 1, Bottleneck: "ingress"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	l0, l1 := cl.Link(0), cl.Link(1)
	if l0.Delivered() != 1 || l0.Dropped() != 0 {
		t.Errorf("machine 0 (virtually later, resolved first): delivered %d dropped %d, want 1/0", l0.Delivered(), l0.Dropped())
	}
	if l1.Delivered() != 0 || l1.Dropped() != 1 {
		t.Errorf("machine 1 (virtually earlier, resolved second): delivered %d dropped %d, want 0/1", l1.Delivered(), l1.Dropped())
	}
}

// TestClusterValidation covers the construction-time input checks:
// duplicate machine names, self-links, out-of-range link endpoints,
// and malformed static routes all fail with descriptive errors.
func TestClusterValidation(t *testing.T) {
	mspec := func(name string) MachineSpec {
		return MachineSpec{Name: name, Config: kernel.Config{Seed: 1, CPUHz: testHz}}
	}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			name: "duplicate names",
			cfg: Config{Machines: []MachineSpec{
				mspec("node"), mspec("node"),
			}},
			want: "both named",
		},
		{
			name: "self link",
			cfg: Config{
				Machines: []MachineSpec{mspec("a"), mspec("b")},
				Links:    []LinkSpec{{From: 1, To: 1}},
			},
			want: "self-link",
		},
		{
			name: "link endpoint out of range",
			cfg: Config{
				Machines: []MachineSpec{mspec("a"), mspec("b")},
				Links:    []LinkSpec{{From: 0, To: 7}},
			},
			want: "machine indices range over",
		},
		{
			name: "route machine out of range",
			cfg: Config{
				Machines: []MachineSpec{mspec("a"), mspec("b")},
				Links:    []LinkSpec{{From: 0, To: 1}},
				Routes:   []RouteSpec{{On: 0, Dst: 5, Via: 1}},
			},
			want: "references machines outside",
		},
		{
			name: "route to self",
			cfg: Config{
				Machines: []MachineSpec{mspec("a"), mspec("b")},
				Links:    []LinkSpec{{From: 0, To: 1}},
				Routes:   []RouteSpec{{On: 0, Dst: 0, Via: 1}},
			},
			want: "routes to itself",
		},
		{
			name: "route via non-neighbor",
			cfg: Config{
				Machines: []MachineSpec{mspec("a"), mspec("b"), mspec("c")},
				Links:    []LinkSpec{{From: 0, To: 1}},
				Routes:   []RouteSpec{{On: 0, Dst: 1, Via: 2}},
			},
			want: "no link to",
		},
		{
			name: "conflicting routes",
			cfg: Config{
				Machines: []MachineSpec{mspec("a"), mspec("b"), mspec("c"), mspec("d")},
				Links:    []LinkSpec{{From: 0, To: 1}, {From: 0, To: 2}},
				Routes: []RouteSpec{
					{On: 0, Dst: 3, Via: 1},
					{On: 0, Dst: 3, Via: 2},
				},
			},
			want: "different next hop",
		},
		{
			name: "bad RED thresholds",
			cfg: Config{
				Machines: []MachineSpec{mspec("a"), mspec("b")},
				Links:    []LinkSpec{{From: 0, To: 1, RED: &REDSpec{MinDepth: 32, MaxDepth: 8, MaxPct: 50}}},
			},
			want: "MinDepth",
		},
		{
			name: "RED past queue depth",
			cfg: Config{
				Machines: []MachineSpec{mspec("a"), mspec("b")},
				Links:    []LinkSpec{{From: 0, To: 1, QueueDepth: 16, RED: &REDSpec{MinDepth: 4, MaxDepth: 32, MaxPct: 50}}},
			},
			want: "exceeds queue depth",
		},
		{
			name: "bottleneck RED mismatch",
			cfg: Config{
				Machines: []MachineSpec{mspec("a"), mspec("b"), mspec("c")},
				Links: []LinkSpec{
					{From: 0, To: 2, Bottleneck: "up", RED: &REDSpec{MinDepth: 8, MaxDepth: 32, MaxPct: 50}},
					{From: 1, To: 2, Bottleneck: "up"},
				},
			},
			want: "bottleneck",
		},
	}
	for _, tc := range cases {
		_, err := New(tc.cfg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestAccessorBoundsPanics pins the descriptive out-of-range panics
// on Cluster's indexed accessors.
func TestAccessorBoundsPanics(t *testing.T) {
	cl, err := New(Config{Machines: []MachineSpec{
		{Config: kernel.Config{Seed: 1, CPUHz: testHz}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	expectPanic := func(name, want string, fn func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			msg, _ := r.(string)
			if !strings.Contains(msg, want) {
				t.Errorf("%s: panic %q does not mention %q", name, r, want)
			}
		}()
		fn()
	}
	expectPanic("Machine", "Machine(3) out of range", func() { cl.Machine(3) })
	expectPanic("Link", "Link(0) out of range", func() { cl.Link(0) })
	expectPanic("AddrOf", "AddrOf(-1) out of range", func() { cl.AddrOf(-1) })
	expectPanic("Name", "Name(9) out of range", func() { cl.Name(9) })
}
