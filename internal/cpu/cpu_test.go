package cpu

import (
	"testing"

	"repro/internal/sim"
)

func TestNewDefaults(t *testing.T) {
	c := New(0)
	if c.Clock().Freq() != sim.DefaultCPUHz {
		t.Fatalf("freq = %d, want %d", c.Clock().Freq(), sim.DefaultCPUHz)
	}
	if c.Mode() != Kernel {
		t.Fatalf("boot mode = %v, want kernel", c.Mode())
	}
}

func TestRunChargesMode(t *testing.T) {
	c := New(1_000_000)
	c.SetMode(User)
	c.Run(100)
	c.SetMode(Kernel)
	c.Run(50)
	c.SetMode(Interrupt)
	c.Run(25)
	u, k, i := c.Utilization()
	if u != 100 || k != 50 || i != 25 {
		t.Fatalf("utilization = %d/%d/%d, want 100/50/25", u, k, i)
	}
	if c.TSC() != 175 {
		t.Fatalf("TSC = %d, want 175", c.TSC())
	}
}

func TestIdleAdvancesWithoutCharge(t *testing.T) {
	c := New(1_000_000)
	c.Idle(500)
	u, k, i := c.Utilization()
	if u != 0 || k != 0 || i != 0 {
		t.Fatalf("idle charged cycles: %d/%d/%d", u, k, i)
	}
	if c.TSC() != 500 {
		t.Fatalf("TSC = %d, want 500", c.TSC())
	}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{User: "user", Kernel: "kernel", Interrupt: "interrupt", Mode(0): "invalid"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestDefaultCostsScaleWithFreq(t *testing.T) {
	lo := DefaultCosts(1_000_000_000)
	hi := DefaultCosts(2_000_000_000)
	if hi.ContextSwitch != 2*lo.ContextSwitch {
		t.Fatalf("ContextSwitch did not scale: %d vs %d", lo.ContextSwitch, hi.ContextSwitch)
	}
	if hi.Fork != 2*lo.Fork {
		t.Fatalf("Fork did not scale: %d vs %d", lo.Fork, hi.Fork)
	}
	// Degenerate tiny frequency must not produce zero-cost microseconds.
	tiny := DefaultCosts(10)
	if tiny.ContextSwitch == 0 {
		t.Fatal("tiny frequency produced zero context-switch cost")
	}
}

func TestCostRelationships(t *testing.T) {
	m := DefaultCosts(sim.DefaultCPUHz)
	// The paper's attack analysis depends on these orderings: a major
	// fault costs more than a minor one, ptrace stop/resume dominates
	// a bare context switch, and execve+linking dominates fork.
	if m.MajorFault <= m.MinorFault {
		t.Fatal("major fault should cost more than minor fault")
	}
	if m.PtraceStop+m.PtraceResume <= m.ContextSwitch {
		t.Fatal("ptrace round trip should cost more than a context switch")
	}
	if m.Execve+m.DynamicLink <= m.Fork {
		t.Fatal("execve+link should cost more than fork")
	}
}
