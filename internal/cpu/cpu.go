// Package cpu models the simulated processor: a single core with a
// virtual time-stamp counter (TSC), a privilege mode, and a cost
// table for kernel-level operations. The paper's testbed is a single
// enabled core of an Intel E7200 at 2.53 GHz; the defaults here match
// that configuration.
package cpu

import (
	"repro/internal/sim"
)

// Mode is the processor privilege mode. Accounting charges cycles to
// a process's user or system time depending on the mode at the
// moment of the charge, mirroring utime/stime in Linux.
type Mode int

const (
	// User mode: executing the program's own instructions.
	User Mode = iota + 1
	// Kernel mode: executing on behalf of a process inside the OS
	// (syscall service, fault handling, signal delivery).
	Kernel
	// Interrupt mode: executing a hardware interrupt handler. The
	// vulnerable accountant treats this as Kernel time of the
	// current process; process-aware accounting separates it.
	Interrupt
)

// String implements fmt.Stringer for diagnostics.
func (m Mode) String() string {
	switch m {
	case User:
		return "user"
	case Kernel:
		return "kernel"
	case Interrupt:
		return "interrupt"
	default:
		return "invalid"
	}
}

// CostModel holds cycle costs for the kernel operations the
// simulation charges explicitly. Values are loosely calibrated to a
// 2008-era 2.53 GHz core running Linux 2.6.29: a context switch in
// the low microseconds, syscall entry in the hundreds of nanoseconds,
// fork around 60 µs, execve plus dynamic linking around a
// millisecond. Only the ratios matter for reproducing the paper's
// shapes.
type CostModel struct {
	ContextSwitch   sim.Cycles // save/restore registers, switch mm, TLB effects
	SyscallEntry    sim.Cycles // mode switch into the kernel
	SyscallExit     sim.Cycles // return to user mode
	IRQEntry        sim.Cycles // interrupt gate, register save
	IRQHandlerNIC   sim.Cycles // NIC rx handler body per packet
	IRQHandlerDisk  sim.Cycles // disk completion handler body per I/O
	NICTx           sim.Cycles // NIC tx path per frame (ring fill, doorbell)
	IRQExit         sim.Cycles // iret path
	TimerHandler    sim.Cycles // timer tick bookkeeping itself
	MinorFault      sim.Cycles // page present in page cache / zero page
	MajorFault      sim.Cycles // fault handler CPU work excluding disk wait
	SignalDeliver   sim.Cycles // set up signal frame
	SignalReturn    sim.Cycles // sigreturn
	DebugException  sim.Cycles // #DB exception dispatch (watchpoint hit)
	PtraceStop      sim.Cycles // tracee stop bookkeeping, notify tracer
	PtraceResume    sim.Cycles // tracer PTRACE_CONT service
	Fork            sim.Cycles // copy task struct, COW page tables
	Execve          sim.Cycles // load image, tear down old mm
	DynamicLink     sim.Cycles // ld.so relocation work per library
	ProcessExit     sim.Cycles // exit path, notify parent
	Wait            sim.Cycles // waitpid service
	SchedPick       sim.Cycles // scheduler pick_next_task work
	DiskAccessSetup sim.Cycles // request queue work for one swap I/O
}

// DefaultCosts returns the calibrated cost model for the given clock
// frequency. Costs scale linearly with frequency so virtual seconds
// stay constant if the experiment changes the clock.
func DefaultCosts(freq sim.Hz) CostModel {
	// perUs is the cycle count of one microsecond at freq.
	perUs := sim.Cycles(freq / 1_000_000)
	if perUs == 0 {
		perUs = 1
	}
	return CostModel{
		ContextSwitch:   3 * perUs,
		SyscallEntry:    perUs / 4,
		SyscallExit:     perUs / 4,
		IRQEntry:        perUs / 2,
		IRQHandlerNIC:   2 * perUs,
		IRQHandlerDisk:  2 * perUs,
		NICTx:           2 * perUs,
		IRQExit:         perUs / 2,
		TimerHandler:    perUs,
		MinorFault:      2 * perUs,
		MajorFault:      25 * perUs,
		SignalDeliver:   3 * perUs,
		SignalReturn:    2 * perUs,
		DebugException:  4 * perUs,
		PtraceStop:      8 * perUs,
		PtraceResume:    6 * perUs,
		Fork:            60 * perUs,
		Execve:          250 * perUs,
		DynamicLink:     400 * perUs,
		ProcessExit:     40 * perUs,
		Wait:            5 * perUs,
		SchedPick:       perUs,
		DiskAccessSetup: 10 * perUs,
	}
}

// CPU is the simulated core. It owns the global clock: reading the
// TSC is reading the clock, exactly as RDTSC reads wall cycles on
// real hardware.
type CPU struct {
	clock *sim.Clock
	costs CostModel
	mode  Mode

	userCycles      sim.Cycles
	kernelCycles    sim.Cycles
	interruptCycles sim.Cycles
}

// New returns a CPU at the given frequency with the default cost
// model. A zero frequency selects the paper's 2.53 GHz.
func New(freq sim.Hz) *CPU {
	if freq == 0 {
		freq = sim.DefaultCPUHz
	}
	return &CPU{
		clock: sim.NewClock(freq),
		costs: DefaultCosts(freq),
		mode:  Kernel, // boots in kernel mode
	}
}

// Clock returns the CPU's clock.
func (c *CPU) Clock() *sim.Clock { return c.clock }

// Clone returns an independent CPU with the same cost model, mode,
// per-mode totals, and an equally-advanced clock (checkpoint restore).
func (c *CPU) Clone() *CPU {
	cp := *c
	cp.clock = c.clock.Clone()
	return &cp
}

// Costs returns the active cost model.
func (c *CPU) Costs() CostModel { return c.costs }

// SetCosts replaces the cost model (used by ablation experiments).
func (c *CPU) SetCosts(m CostModel) { c.costs = m }

// TSC returns the current time-stamp counter value.
func (c *CPU) TSC() sim.Cycles { return c.clock.Now() }

// Mode returns the current privilege mode.
func (c *CPU) Mode() Mode { return c.mode }

// SetMode switches privilege mode. The switch itself is free; callers
// charge explicit entry/exit costs from the cost model.
func (c *CPU) SetMode(m Mode) { c.mode = m }

// Run advances virtual time by d cycles in the current mode and
// returns the TSC after the advance. Per-mode totals feed machine
// utilisation reports.
func (c *CPU) Run(d sim.Cycles) sim.Cycles {
	switch c.mode {
	case User:
		c.userCycles += d
	case Interrupt:
		c.interruptCycles += d
	default:
		c.kernelCycles += d
	}
	c.clock.Advance(d)
	return c.clock.Now()
}

// Idle advances virtual time without charging any mode, used when no
// process is runnable and the core halts until the next event.
func (c *CPU) Idle(until sim.Cycles) {
	c.clock.AdvanceTo(until)
}

// Utilization reports the total cycles spent per mode since boot.
func (c *CPU) Utilization() (user, kernel, interrupt sim.Cycles) {
	return c.userCycles, c.kernelCycles, c.interruptCycles
}
