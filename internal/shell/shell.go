// Package shell models the command shell that launches user jobs.
// Its fork-then-exec structure is the launch-time attack surface of
// Section IV-A1: CPU metering for the job starts the instant the
// child process exists, yet the child spends its first moments
// executing *shell* code — so a provider that patches the shell to
// run extra instructions between fork() and execve() bills that work
// to the customer.
package shell

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/proc"
)

// StockContent is the measurement identity of the unmodified shell,
// matching the paper's testbed shell.
const StockContent = "bash-3.2 stock ubuntu-8.10"

// Job is one command line: a program to execute with optional extra
// environment (e.g. an attack-supplied LD_PRELOAD) and nice value.
type Job struct {
	Prog *guest.Program
	// Env entries are set in the child before exec, as
	// `VAR=val ./prog` would.
	Env map[string]string
	// Nice applies to the child (run via nice(1)).
	Nice int
}

// Config shapes the shell process itself.
type Config struct {
	// Content overrides the shell's measured identity; the shell
	// attack replaces it (patched bash binary).
	Content string
	// Inject, when non-nil, runs in the child between fork and exec
	// — the paper's shell attack payload, inserted in
	// execute_disk_command() between make_child() and
	// shell_execve().
	Inject guest.Routine
	// Nice is the shell's own nice value.
	Nice int
	// Env is the shell's login environment, inherited by jobs.
	Env map[string]string
}

// Session tracks a launched shell and the jobs it has run. Fields are
// filled in while the machine runs; read them after Machine.Run
// returns.
type Session struct {
	Shell *proc.Proc
	// JobPIDs holds the pid of each job's process, in submission
	// order, once forked.
	JobPIDs []proc.PID
}

// Launch spawns a shell process that runs the given jobs in order,
// waiting for each to finish — `./prog; ./prog2` at a prompt. The
// shell exits after the last job, so Machine.Run terminates.
func Launch(m *kernel.Machine, cfg Config, jobs ...Job) (*Session, error) {
	content := cfg.Content
	if content == "" {
		content = StockContent
	}
	sess := &Session{}
	body := func(ctx guest.Context) {
		for _, job := range jobs {
			job := job
			pid := ctx.Fork(job.Prog.Name, func(c guest.Context) {
				// The window between fork and exec: the child is
				// billed from birth but still runs shell code.
				if cfg.Inject != nil {
					cfg.Inject(c)
				}
				if job.Nice != 0 {
					c.SetNice(job.Nice)
				}
				for k, v := range job.Env {
					c.Setenv(k, v)
				}
				c.Exec(job.Prog)
			})
			sess.JobPIDs = append(sess.JobPIDs, pid)
			for {
				res, ok := ctx.Wait()
				if !ok {
					break
				}
				if res.PID == pid && !res.Stopped {
					break
				}
			}
		}
	}
	p, err := m.Spawn(kernel.SpawnConfig{
		Name:    "shell",
		Content: content,
		Nice:    cfg.Nice,
		Env:     cfg.Env,
		Body:    body,
	})
	if err != nil {
		return nil, fmt.Errorf("launch shell: %w", err)
	}
	sess.Shell = p
	return sess, nil
}
