package shell

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/lib"
)

func machine(t *testing.T) *kernel.Machine {
	t.Helper()
	return kernel.New(kernel.Config{Seed: 1, CPUHz: 1_000_000_000, MaxSteps: 20_000_000})
}

func prog(name string, ran *bool) *guest.Program {
	return &guest.Program{
		Name:    name,
		Content: name + "-v1",
		Libs:    []string{lib.LibcName},
		Main: func(ctx guest.Context) {
			ctx.Compute(5_000_000)
			*ran = true
		},
	}
}

func TestLaunchRunsJobsInOrder(t *testing.T) {
	m := machine(t)
	var ranA, ranB bool
	sess, err := Launch(m, Config{},
		Job{Prog: prog("a", &ranA)},
		Job{Prog: prog("b", &ranB)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !ranA || !ranB {
		t.Fatalf("jobs ran: a=%v b=%v", ranA, ranB)
	}
	if len(sess.JobPIDs) != 2 {
		t.Fatalf("JobPIDs = %v", sess.JobPIDs)
	}
	if sess.JobPIDs[0] == sess.JobPIDs[1] {
		t.Fatal("jobs shared a pid")
	}
	if sess.Shell == nil || sess.Shell.Name != "shell" {
		t.Fatal("shell process missing")
	}
}

func TestJobEnvAppliedBeforeExec(t *testing.T) {
	m := machine(t)
	var seen string
	p := &guest.Program{
		Name: "envjob", Content: "v1", Libs: []string{lib.LibcName},
		Main: func(ctx guest.Context) { seen = ctx.Getenv("MARKER") },
	}
	_, err := Launch(m, Config{}, Job{Prog: p, Env: map[string]string{"MARKER": "on"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != "on" {
		t.Fatalf("job env MARKER = %q, want on", seen)
	}
}

func TestJobNiceApplied(t *testing.T) {
	m := machine(t)
	niceSeen := 99
	p := &guest.Program{
		Name: "nicejob", Content: "v1", Libs: []string{lib.LibcName},
		Main: func(ctx guest.Context) {
			niceSeen = ctx.Nice()
		},
	}
	if _, err := Launch(m, Config{}, Job{Prog: p, Nice: 10}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if niceSeen != 10 {
		t.Fatalf("job saw nice %d, want 10 (nice(1) semantics)", niceSeen)
	}
}

func TestInjectedCodeBilledToJob(t *testing.T) {
	mClean := machine(t)
	var r1 bool
	sessClean, err := Launch(mClean, Config{}, Job{Prog: prog("victim", &r1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := mClean.Run(); err != nil {
		t.Fatal(err)
	}

	mEvil := machine(t)
	var r2 bool
	const payload = 50_000_000
	sessEvil, err := Launch(mEvil, Config{
		Content: "bash PATCHED",
		Inject:  func(c guest.Context) { c.Compute(payload) },
	}, Job{Prog: prog("victim", &r2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := mEvil.Run(); err != nil {
		t.Fatal(err)
	}

	clean, _ := mClean.UsageBy("tsc", sessClean.JobPIDs[0])
	evil, _ := mEvil.UsageBy("tsc", sessEvil.JobPIDs[0])
	gain := evil.User - clean.User
	if gain != payload {
		t.Fatalf("injected payload billed %d cycles to the job, want %d", gain, payload)
	}
}

func TestTamperedShellChangesMeasurement(t *testing.T) {
	digests := func(content string) map[string]string {
		m := machine(t)
		var ran bool
		Launch(m, Config{Content: content}, Job{Prog: prog("victim", &ran)})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		out := map[string]string{}
		for _, meas := range m.Measurements() {
			out[meas.Kind.String()+"/"+meas.Name] = meas.Digest
		}
		return out
	}
	stock := digests("")
	patched := digests(StockContent + " PATCHED")
	if stock["program/shell"] == patched["program/shell"] {
		t.Fatal("patched shell digest identical to stock")
	}
	// The job child inherits the shell image pre-exec: the inherited
	// measurement must also differ.
	if stock["inherited/shell"] == patched["inherited/shell"] {
		t.Fatal("inherited shell measurement identical")
	}
	// The victim program itself is untouched.
	if stock["program/victim"] != patched["program/victim"] {
		t.Fatal("victim digest changed although binary untouched")
	}
}
