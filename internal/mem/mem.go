// Package mem implements the simulated demand-paged virtual memory
// subsystem: per-process address spaces, a finite physical frame
// pool, LRU reclaim, and a swap device. It exists to reproduce the
// paper's exception-flooding attack (Section IV-B4 / Fig. 11), where
// an attacker that over-commits physical memory forces the victim to
// take page faults whose handler time is billed to the victim's
// system time.
package mem

import (
	"fmt"

	"repro/internal/sim"
)

// DefaultPageSize is the simulated page size in bytes (x86 4 KiB).
const DefaultPageSize = 4096

// DefaultPhysBytes is the simulated physical memory. The paper's
// testbed had 2 GiB requested against less physical memory; we model
// 1 GiB of RAM so a 2 GiB attacker footprint over-commits it.
const DefaultPhysBytes = 1 << 30

// FaultKind classifies the outcome of a memory access.
type FaultKind int

const (
	// NoFault: the page was resident; the access hit.
	NoFault FaultKind = iota + 1
	// MinorFault: first touch of a demand-zero page; a frame was
	// allocated without disk I/O.
	MinorFault
	// MajorFault: the page had been swapped out; satisfying the
	// access required a disk read.
	MajorFault
)

func (k FaultKind) String() string {
	switch k {
	case NoFault:
		return "hit"
	case MinorFault:
		return "minor"
	case MajorFault:
		return "major"
	default:
		return "invalid"
	}
}

// FaultResult describes what the MMU/fault path did for one access.
type FaultResult struct {
	Kind      FaultKind
	Evictions int // frames reclaimed from other pages to satisfy this access
	SwapOuts  int // evictions that were dirty and required a disk write
	SwapIn    bool
}

// pageState tracks one virtual page of one address space.
type pageState struct {
	space   *Space
	vpage   uint64
	present bool
	swapped bool
	dirty   bool

	// LRU list linkage (intrusive, deterministic).
	prev, next *pageState
}

// Space is a per-process virtual address space.
type Space struct {
	mem   *Memory
	name  string
	pages map[uint64]*pageState

	resident   int
	minor      uint64
	major      uint64
	evictedOut uint64 // this space's pages reclaimed by pressure
	released   bool
}

// Memory is the machine-wide physical memory manager.
type Memory struct {
	pageSize    uint64
	totalFrames int
	usedFrames  int

	// Intrusive LRU list of resident pages: head is least recently
	// used, tail is most recently used.
	lruHead, lruTail *pageState

	spaces   []*Space
	swapIns  uint64
	swapOuts uint64
}

// New returns a Memory with the given physical size and page size.
// Zero values select the defaults.
func New(physBytes, pageSize uint64) *Memory {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if physBytes == 0 {
		physBytes = DefaultPhysBytes
	}
	return &Memory{
		pageSize:    pageSize,
		totalFrames: int(physBytes / pageSize),
	}
}

// PageSize returns the page size in bytes.
func (m *Memory) PageSize() uint64 { return m.pageSize }

// TotalFrames returns the number of physical frames.
func (m *Memory) TotalFrames() int { return m.totalFrames }

// UsedFrames returns the number of frames currently resident.
func (m *Memory) UsedFrames() int { return m.usedFrames }

// SwapTraffic reports cumulative swap-in and swap-out page counts.
func (m *Memory) SwapTraffic() (ins, outs uint64) { return m.swapIns, m.swapOuts }

// NewSpace creates an address space labelled name for diagnostics.
func (m *Memory) NewSpace(name string) *Space {
	s := &Space{mem: m, name: name, pages: make(map[uint64]*pageState)}
	m.spaces = append(m.spaces, s)
	return s
}

// Name returns the diagnostic label.
func (s *Space) Name() string { return s.name }

// Resident returns the number of this space's pages currently in RAM.
func (s *Space) Resident() int { return s.resident }

// Faults returns cumulative minor and major fault counts.
func (s *Space) Faults() (minor, major uint64) { return s.minor, s.major }

// EvictedOut returns how many times this space's pages were reclaimed
// due to memory pressure from any space.
func (s *Space) EvictedOut() uint64 { return s.evictedOut }

// FootprintPages returns the number of pages this space has ever
// touched (resident or swapped).
func (s *Space) FootprintPages() int { return len(s.pages) }

// Touch performs one memory access at byte address addr. write marks
// the page dirty. The returned FaultResult tells the kernel what to
// charge: minor faults cost handler CPU, major faults additionally
// cost a disk read, and each dirty eviction costs a disk write.
func (s *Space) Touch(addr uint64, write bool) FaultResult {
	if s.released {
		panic(fmt.Sprintf("mem: touch on released space %q", s.name))
	}
	vpage := addr / s.mem.pageSize
	p := s.pages[vpage]
	if p == nil {
		p = &pageState{space: s, vpage: vpage}
		s.pages[vpage] = p
	}

	if p.present {
		s.mem.lruMoveToTail(p)
		if write {
			p.dirty = true
		}
		return FaultResult{Kind: NoFault}
	}

	// Fault path: need a frame.
	res := FaultResult{Kind: MinorFault}
	if p.swapped {
		res.Kind = MajorFault
		res.SwapIn = true
		s.mem.swapIns++
		s.major++
	} else {
		s.minor++
	}

	for s.mem.usedFrames >= s.mem.totalFrames {
		victim := s.mem.lruHead
		if victim == nil {
			panic("mem: frame accounting corrupt: no LRU victim but frames exhausted")
		}
		res.Evictions++
		if s.mem.evict(victim) {
			res.SwapOuts++
		}
	}

	p.present = true
	p.swapped = false
	p.dirty = write
	s.mem.usedFrames++
	s.resident++
	s.mem.lruPushTail(p)
	return res
}

// Release frees every frame the space holds and forgets its pages,
// modelling process exit.
func (s *Space) Release() {
	if s.released {
		return
	}
	for _, p := range s.pages {
		if p.present {
			s.mem.lruRemove(p)
			s.mem.usedFrames--
		}
	}
	s.pages = nil
	s.resident = 0
	s.released = true
}

// evict reclaims the frame backing p, swapping it out if dirty. It
// reports whether a swap-out (disk write) was required.
func (m *Memory) evict(p *pageState) (swappedOut bool) {
	m.lruRemove(p)
	p.present = false
	p.swapped = true
	if p.dirty {
		m.swapOuts++
		swappedOut = true
	}
	p.dirty = false
	m.usedFrames--
	p.space.resident--
	p.space.evictedOut++
	return swappedOut
}

func (m *Memory) lruPushTail(p *pageState) {
	p.prev = m.lruTail
	p.next = nil
	if m.lruTail != nil {
		m.lruTail.next = p
	} else {
		m.lruHead = p
	}
	m.lruTail = p
}

func (m *Memory) lruRemove(p *pageState) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		m.lruHead = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		m.lruTail = p.prev
	}
	p.prev, p.next = nil, nil
}

func (m *Memory) lruMoveToTail(p *pageState) {
	if m.lruTail == p {
		return
	}
	m.lruRemove(p)
	m.lruPushTail(p)
}

// DiskLatency models the swap device: cycles of wall time one page of
// swap I/O takes. At 2.53 GHz, 5 ms (2007-era 7200 rpm seek+transfer)
// is ~12.6 M cycles. The process is blocked, not charged CPU, for
// this period; only the handler cost from the CPU cost model is
// charged as stime.
func DiskLatency(freq sim.Hz) sim.Cycles {
	return sim.Cycles(freq / 200) // 5 ms
}

// Clone returns an independent deep copy of the whole memory
// subsystem for checkpoint restore, plus the old→new Space mapping so
// callers can re-point their Space references. The intrusive LRU list
// is rebuilt by walking head→tail, so future eviction order is
// identical to the original's.
func (m *Memory) Clone() (*Memory, map[*Space]*Space) {
	cm := &Memory{
		pageSize:    m.pageSize,
		totalFrames: m.totalFrames,
		usedFrames:  m.usedFrames,
		swapIns:     m.swapIns,
		swapOuts:    m.swapOuts,
	}
	smap := make(map[*Space]*Space, len(m.spaces))
	// pmap carries each page to its clone so the LRU walk below can
	// link the copies in the original recency order.
	var pmap map[*pageState]*pageState
	var pages int
	for _, s := range m.spaces {
		pages += len(s.pages)
	}
	pmap = make(map[*pageState]*pageState, pages)
	cm.spaces = make([]*Space, len(m.spaces))
	for i, s := range m.spaces {
		cs := &Space{
			mem:        cm,
			name:       s.name,
			resident:   s.resident,
			minor:      s.minor,
			major:      s.major,
			evictedOut: s.evictedOut,
			released:   s.released,
		}
		if s.pages != nil {
			cs.pages = make(map[uint64]*pageState, len(s.pages))
			//simlint:unordered-ok deep copy into a map keyed identically; no iteration-order-dependent state is produced
			for vp, p := range s.pages {
				cp := &pageState{space: cs, vpage: p.vpage, present: p.present, swapped: p.swapped, dirty: p.dirty}
				cs.pages[vp] = cp
				pmap[p] = cp
			}
		}
		cm.spaces[i] = cs
		smap[s] = cs
	}
	for p := m.lruHead; p != nil; p = p.next {
		cm.lruPushTail(pmap[p])
	}
	return cm, smap
}
