package mem

import (
	"testing"
	"testing/quick"
)

func TestFirstTouchIsMinorFault(t *testing.T) {
	m := New(16*DefaultPageSize, 0)
	s := m.NewSpace("a")
	res := s.Touch(0, false)
	if res.Kind != MinorFault {
		t.Fatalf("first touch = %v, want minor", res.Kind)
	}
	if res2 := s.Touch(100, false); res2.Kind != NoFault {
		t.Fatalf("same-page retouch = %v, want hit", res2.Kind)
	}
	minor, major := s.Faults()
	if minor != 1 || major != 0 {
		t.Fatalf("faults = %d/%d, want 1/0", minor, major)
	}
}

func TestEvictionAndMajorFault(t *testing.T) {
	m := New(2*DefaultPageSize, 0) // two frames only
	s := m.NewSpace("a")
	s.Touch(0*DefaultPageSize, true) // dirty page 0
	s.Touch(1*DefaultPageSize, false)
	res := s.Touch(2*DefaultPageSize, false) // must evict LRU (page 0, dirty)
	if res.Evictions != 1 || res.SwapOuts != 1 {
		t.Fatalf("evictions/swapouts = %d/%d, want 1/1", res.Evictions, res.SwapOuts)
	}
	back := s.Touch(0, false) // page 0 was swapped out
	if back.Kind != MajorFault || !back.SwapIn {
		t.Fatalf("return touch = %+v, want major fault with swap-in", back)
	}
	ins, outs := m.SwapTraffic()
	if ins != 1 || outs != 1 {
		t.Fatalf("swap traffic = %d/%d, want 1/1", ins, outs)
	}
}

func TestLRUOrder(t *testing.T) {
	m := New(2*DefaultPageSize, 0)
	s := m.NewSpace("a")
	s.Touch(0*DefaultPageSize, false)
	s.Touch(1*DefaultPageSize, false)
	s.Touch(0*DefaultPageSize, false) // page 0 now MRU, page 1 is LRU
	s.Touch(2*DefaultPageSize, false) // evicts page 1
	if res := s.Touch(0, false); res.Kind != NoFault {
		t.Fatalf("page 0 should have survived (MRU), got %v", res.Kind)
	}
	if res := s.Touch(1*DefaultPageSize, false); res.Kind != MajorFault {
		t.Fatalf("page 1 should have been evicted, got %v", res.Kind)
	}
}

func TestCleanEvictionNeedsNoSwapOut(t *testing.T) {
	m := New(1*DefaultPageSize, 0)
	s := m.NewSpace("a")
	s.Touch(0, false) // clean
	res := s.Touch(DefaultPageSize, false)
	if res.Evictions != 1 || res.SwapOuts != 0 {
		t.Fatalf("clean eviction = %+v, want 1 eviction 0 swapouts", res)
	}
}

func TestCrossSpacePressure(t *testing.T) {
	m := New(8*DefaultPageSize, 0)
	victim := m.NewSpace("victim")
	attacker := m.NewSpace("attacker")
	for i := uint64(0); i < 4; i++ {
		victim.Touch(i*DefaultPageSize, false)
	}
	// Attacker streams through 16 pages, evicting everything.
	for i := uint64(0); i < 16; i++ {
		attacker.Touch(i*DefaultPageSize, true)
	}
	if victim.Resident() != 0 {
		t.Fatalf("victim resident = %d, want 0 after attacker sweep", victim.Resident())
	}
	if victim.EvictedOut() != 4 {
		t.Fatalf("victim evictions = %d, want 4", victim.EvictedOut())
	}
	// Victim's next touches are all major faults: the attack's effect.
	for i := uint64(0); i < 4; i++ {
		if res := victim.Touch(i*DefaultPageSize, false); res.Kind != MajorFault {
			t.Fatalf("victim retouch page %d = %v, want major", i, res.Kind)
		}
	}
}

func TestRelease(t *testing.T) {
	m := New(4*DefaultPageSize, 0)
	s := m.NewSpace("a")
	for i := uint64(0); i < 4; i++ {
		s.Touch(i*DefaultPageSize, false)
	}
	if m.UsedFrames() != 4 {
		t.Fatalf("used = %d, want 4", m.UsedFrames())
	}
	s.Release()
	if m.UsedFrames() != 0 {
		t.Fatalf("used after release = %d, want 0", m.UsedFrames())
	}
	s.Release() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("touch after release did not panic")
		}
	}()
	s.Touch(0, false)
}

func TestFrameAccountingInvariant(t *testing.T) {
	// Property: usedFrames never exceeds totalFrames and equals the
	// sum of per-space residency, under arbitrary access patterns.
	f := func(addrs []uint16, writes []bool) bool {
		m := New(4*DefaultPageSize, 0)
		a := m.NewSpace("a")
		b := m.NewSpace("b")
		for i, ad := range addrs {
			w := i < len(writes) && writes[i]
			sp := a
			if ad%2 == 1 {
				sp = b
			}
			sp.Touch(uint64(ad)*97, w)
			if m.UsedFrames() > m.TotalFrames() {
				return false
			}
			if a.Resident()+b.Resident() != m.UsedFrames() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskLatency(t *testing.T) {
	if got := DiskLatency(2_530_000_000); got != 12_650_000 {
		t.Fatalf("DiskLatency = %d, want 12650000 (5ms at 2.53GHz)", got)
	}
}

func TestFaultKindString(t *testing.T) {
	for k, want := range map[FaultKind]string{NoFault: "hit", MinorFault: "minor", MajorFault: "major", FaultKind(0): "invalid"} {
		if got := k.String(); got != want {
			t.Errorf("FaultKind(%d) = %q, want %q", int(k), got, want)
		}
	}
}
