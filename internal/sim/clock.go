// Package sim provides the deterministic discrete-event simulation
// substrate: a virtual clock measured in CPU cycles, an event queue,
// and a seeded random source. Everything above this package (CPU,
// kernel, scheduler, workloads) advances time exclusively through
// these primitives, which is what makes whole-machine runs
// reproducible bit-for-bit across hosts.
package sim

import (
	"fmt"
	"time"
)

// Cycles is a quantity of virtual CPU cycles. The simulated machine's
// TSC (time stamp counter) is a running total of Cycles.
type Cycles uint64

// Hz is a clock frequency in cycles per second.
type Hz uint64

// DefaultCPUHz matches the paper's testbed: an Intel E7200 at 2.53 GHz
// with one core disabled.
const DefaultCPUHz Hz = 2_530_000_000

// Clock converts between virtual cycles and virtual wall time for a
// fixed frequency, and tracks the current virtual now.
type Clock struct {
	freq Hz
	now  Cycles
}

// NewClock returns a clock running at freq cycles per second,
// starting at cycle zero.
func NewClock(freq Hz) *Clock {
	if freq == 0 {
		freq = DefaultCPUHz
	}
	return &Clock{freq: freq}
}

// Freq reports the clock frequency in cycles per second.
func (c *Clock) Freq() Hz { return c.freq }

// Now returns the current virtual time in cycles since boot.
func (c *Clock) Now() Cycles { return c.now }

// Advance moves virtual time forward by d cycles.
func (c *Clock) Advance(d Cycles) { c.now += d }

// AdvanceTo moves virtual time forward to t. It panics if t is in the
// past: the event loop must never run time backwards, and doing so
// indicates a corrupted event queue rather than a recoverable error.
func (c *Clock) AdvanceTo(t Cycles) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moving backwards: now=%d target=%d", c.now, t))
	}
	c.now = t
}

// Clone returns an independent clock at the same frequency and
// current time (checkpoint restore).
func (c *Clock) Clone() *Clock {
	cp := *c
	return &cp
}

// Seconds converts a cycle count to virtual seconds at this clock's
// frequency.
func (c *Clock) Seconds(d Cycles) float64 {
	return float64(d) / float64(c.freq)
}

// Duration converts a cycle count to a time.Duration of virtual time.
func (c *Clock) Duration(d Cycles) time.Duration {
	sec := float64(d) / float64(c.freq)
	return time.Duration(sec * float64(time.Second))
}

// CyclesOf converts a virtual duration to cycles at this clock's
// frequency.
func (c *Clock) CyclesOf(d time.Duration) Cycles {
	return Cycles(d.Seconds() * float64(c.freq))
}

// CyclesPerSecond returns the number of cycles in one virtual second.
func (c *Clock) CyclesPerSecond() Cycles { return Cycles(c.freq) }
