package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var got []int
	q.Schedule(30, "c", func() { got = append(got, 3) })
	q.Schedule(10, "a", func() { got = append(got, 1) })
	q.Schedule(20, "b", func() { got = append(got, 2) })
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", got)
	}
}

func TestEventQueueStableTies(t *testing.T) {
	q := NewEventQueue()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(100, "tie", func() { got = append(got, i) })
	}
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order at %d = %d, want %d (insertion order)", i, v, i)
		}
	}
}

func TestEventQueueCancel(t *testing.T) {
	q := NewEventQueue()
	fired := false
	e := q.Schedule(5, "x", func() { fired = true })
	q.Schedule(6, "y", func() {})
	q.Cancel(e)
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel is a no-op.
	q.Cancel(e)
	q.Cancel(nil)
}

// TestEventQueueCancelRecycles pins the fix for cancelled events
// being dropped on the floor: Cancel must return the event to the
// free list so cancel/schedule cycles (NIC flood start/stop) reuse
// storage instead of allocating.
func TestEventQueueCancelRecycles(t *testing.T) {
	q := NewEventQueue()
	e := q.Schedule(5, "x", func() {})
	q.Cancel(e)
	e2 := q.Schedule(7, "y", func() {})
	if e2 != e {
		t.Fatal("Cancel did not recycle the event through the free list")
	}
	if e2.At != 7 || e2.Kind != "y" || e2.Cancelled() {
		t.Fatalf("recycled event carries stale state: %+v", e2)
	}
	// Steady state: a cancel/schedule cycle allocates nothing.
	if allocs := testing.AllocsPerRun(100, func() {
		ev := q.Schedule(9, "z", func() {})
		q.Cancel(ev)
	}); allocs > 0 {
		t.Fatalf("cancel/schedule cycle allocates %.1f objects per run", allocs)
	}
}

func TestEventQueuePeek(t *testing.T) {
	q := NewEventQueue()
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue reported ok")
	}
	q.Schedule(42, "x", func() {})
	at, ok := q.PeekTime()
	if !ok || at != 42 {
		t.Fatalf("PeekTime = %d,%v want 42,true", at, ok)
	}
	if q.Pop() == nil {
		t.Fatal("Pop returned nil on non-empty queue")
	}
	if q.Pop() != nil {
		t.Fatal("Pop returned event on empty queue")
	}
}

func TestEventQueueSortedProperty(t *testing.T) {
	f := func(times []uint32) bool {
		q := NewEventQueue()
		for _, at := range times {
			q.Schedule(Cycles(at), "p", func() {})
		}
		var popped []Cycles
		for q.Len() > 0 {
			popped = append(popped, q.Pop().At)
		}
		return sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] < popped[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("same-seed streams diverged at %d: %d vs %d", i, x, y)
		}
	}
}

func TestRandJitter(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(100, 50)
		if v < 75 || v >= 125 {
			t.Fatalf("Jitter(100,50) = %d outside [75,125)", v)
		}
	}
	if got := r.Jitter(100, 0); got != 100 {
		t.Fatalf("Jitter with zero spread = %d, want 100", got)
	}
	// Base smaller than spread/2 must clamp at zero, not underflow.
	for i := 0; i < 1000; i++ {
		v := r.Jitter(10, 100)
		if v >= 1<<63 {
			t.Fatalf("Jitter underflowed: %d", v)
		}
	}
}
